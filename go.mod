module spjoin

go 1.22
