package spjoin

// Benchmarks regenerating every table and figure of the paper (at a reduced
// workload scale so `go test -bench` stays quick; run cmd/experiments at
// -scale 1.0 for the full-scale numbers recorded in EXPERIMENTS.md), plus
// ablation benchmarks for the design choices called out in DESIGN.md.
//
// The per-figure benchmarks report the paper's own metric (virtual response
// time, disk accesses) via b.ReportMetric in addition to wall time.

import (
	"io"
	"testing"
	"time"

	"path/filepath"
	"spjoin/internal/exp"

	"spjoin/internal/flight"
	"spjoin/internal/join"
	"spjoin/internal/pagefile"
	"spjoin/internal/parjoin"
	"spjoin/internal/parnative"
	"spjoin/internal/partjoin"
	"spjoin/internal/rtree"
	"spjoin/internal/runtimeobs"
	"spjoin/internal/tiger"
	"spjoin/internal/zorder"
)

// benchScale keeps bench iterations in the low-millisecond range.
const benchScale = 0.02

func benchWorkload(b *testing.B) *exp.Workload {
	b.Helper()
	return exp.NewWorkload(benchScale, 42)
}

// --- one benchmark per paper table/figure -------------------------------

func BenchmarkTable1(b *testing.B) {
	streets, mixed := tiger.Maps(benchScale, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.73)
		s := rtree.BulkLoadSTR(rtree.DefaultParams(), mixed, 0.73)
		_ = r.Stats()
		_ = s.Stats()
	}
}

func BenchmarkTable2(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Table2(w, io.Discard)
	}
}

func BenchmarkFig5(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Fig5(w, io.Discard)
	}
}

func BenchmarkFig7(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Fig7(w, io.Discard)
	}
}

func BenchmarkFig8(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Fig8(w, io.Discard)
	}
}

func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := benchWorkload(b) // fresh workload: Fig9 memoizes its sweep
		exp.Fig9(w, io.Discard)
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := benchWorkload(b)
		exp.Fig10(w, io.Discard)
	}
}

// --- representative single-configuration benches ------------------------

// BenchmarkSimulatedJoin runs one simulated parallel join per named variant
// and reports the virtual response time and disk accesses alongside wall
// time.
func BenchmarkSimulatedJoin(b *testing.B) {
	w := benchWorkload(b)
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		b.Run(v, func(b *testing.B) {
			var res parjoin.Result
			for i := 0; i < b.N; i++ {
				res = parjoin.Run(w.R, w.S, parjoin.DefaultConfig(8, 8, w.Pages(800, 8)).Variant(v))
			}
			b.ReportMetric(res.ResponseTime.Seconds(), "virtual-s")
			b.ReportMetric(float64(res.DiskAccesses), "disk-accesses")
		})
	}
}

// BenchmarkSequentialJoin measures the pure CPU cost of the [BKS 93] filter
// join.
func BenchmarkSequentialJoin(b *testing.B) {
	w := benchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		join.Sequential(w.R, w.S, join.Options{})
	}
}

// BenchmarkKernelExpand isolates the join kernel's steady state: node sweep
// caches are prebuilt and the scratch buffers warmed, so the measured loop is
// exactly the per-node-pair work the traversal repeats. Both sub-benchmarks
// must report 0 allocs/op — that is the zero-allocation contract of
// join.Scratch (see DESIGN.md, "Kernel layers").
func BenchmarkKernelExpand(b *testing.B) {
	w := benchWorkload(b)
	w.R.PrepareSweep()
	w.S.PrepareSweep()
	src := join.DirectSource{R: w.R, S: w.S}
	root, ok := join.RootPair(w.R, w.S)
	if !ok {
		b.Fatal("empty workload")
	}

	b.Run("expand-root", func(b *testing.B) {
		nr := src.Node(join.SideR, root.RPage, root.RLevel)
		ns := src.Node(join.SideS, root.SPage, root.SLevel)
		var sc join.Scratch
		sc.Expand(nr, ns, join.Options{}) // warm the scratch buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc.Expand(nr, ns, join.Options{})
		}
	})

	b.Run("engine-run", func(b *testing.B) {
		e := join.Engine{
			Src:           src,
			OnCandidates:  func([]join.Candidate) {},
			OnComparisons: func(int) {},
		}
		e.Run(root) // warm scratch and traversal stack to steady state
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Run(root)
		}
	})
}

// --- in-memory engine head-to-head (DESIGN.md: partition-based engine) ---

// BenchmarkPartitionJoin measures the grid-partitioned in-memory join in
// steady state: the Joiner is reused across unchanged inputs, so after
// warm-up every buffer is grown to size, each join is allocation-free
// (the zero-allocation contract pinned by TestJoinerReuseZeroAlloc), and
// the mirror-check pass proves the cached tile segments reusable — the
// join is one sequential scan plus the per-tile sweeps.
func BenchmarkPartitionJoin(b *testing.B) {
	streets, mixed := tiger.Maps(benchScale, 42)
	var j partjoin.Joiner
	defer j.Close()
	cfg := partjoin.Config{}
	j.Join(streets, mixed, cfg) // warm buffers and pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Join(streets, mixed, cfg)
	}
}

// BenchmarkPartitionJoinIntrospected is BenchmarkPartitionJoin with the
// full introspection path on: Config.Introspect (top-tile and heat-grid
// collection inside the engine) plus assembling a flight.Record and adding
// it to a warm recorder every join — exactly what cmd/spjoin does per
// execution under -explain. The delta against BenchmarkPartitionJoin is
// the documented enabled-path overhead; the recorder keeps this
// allocation-free in steady state.
func BenchmarkPartitionJoinIntrospected(b *testing.B) {
	streets, mixed := tiger.Maps(benchScale, 42)
	var j partjoin.Joiner
	defer j.Close()
	cfg := partjoin.Config{Introspect: true}
	flights := flight.NewRecorder(16)
	record := func() {
		res := j.Join(streets, mixed, cfg)
		rec := flight.Record{
			Engine: "partition",
			NR:     len(streets), NS: len(mixed),
			Candidates: len(res.Candidates), Comparisons: res.Comparisons,
			GX: res.GX, GY: res.GY, Partitions: res.Partitions,
			PhaseNS:  res.PhaseNS,
			TopTiles: res.TopTiles,
			HeatW:    res.HeatW, HeatH: res.HeatH, Heat: res.Heat,
		}
		flights.Add(&rec)
	}
	record() // warm buffers, pool and ring slots
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		record()
	}
}

// BenchmarkPartitionJoinHealth is BenchmarkPartitionJoinIntrospected with
// the runtime health observatory on top: a runtimeobs.Sampler window
// bracketing each join (two runtime/metrics reads reduced to scalars), a
// live-progress slot receiving every work unit, and the Health window
// stored in the flight record. The delta against Introspected is the
// sampler+progress overhead: ~3µs fixed per window (two runtime/metrics
// reads, see BenchmarkSamplerWindow) plus two contended atomic adds per
// work unit — a few percent at this toy scale (~64µs joins, hundreds of
// units), vanishing on realistic joins. Steady state stays 0 allocs/op.
func BenchmarkPartitionJoinHealth(b *testing.B) {
	streets, mixed := tiger.Maps(benchScale, 42)
	var j partjoin.Joiner
	defer j.Close()
	live := runtimeobs.NewLive()
	cfg := partjoin.Config{Introspect: true, Progress: live.NewProgress("partition")}
	flights := flight.NewRecorder(16)
	sampler := runtimeobs.NewSampler()
	record := func() {
		t0 := time.Now()
		sampler.Begin()
		res := j.Join(streets, mixed, cfg)
		rec := flight.Record{
			Engine: "partition",
			NR:     len(streets), NS: len(mixed),
			Candidates: len(res.Candidates), Comparisons: res.Comparisons,
			GX: res.GX, GY: res.GY, Partitions: res.Partitions,
			PhaseNS:  res.PhaseNS,
			TopTiles: res.TopTiles,
			HeatW:    res.HeatW, HeatH: res.HeatH, Heat: res.Heat,
			Health:   sampler.End(time.Since(t0).Nanoseconds(), res.Workers),
		}
		flights.Add(&rec)
	}
	record() // warm buffers, pool, ring slots and the sampler
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		record()
	}
}

// BenchmarkPartitionJoinCold defeats the Joiner's reuse cache by moving
// one rectangle across the world every iteration (staying inside the data
// MBR so the grid geometry itself is representative), forcing the
// worst-tier fallback each time: re-sort the disturbed order, recount,
// re-scatter. This is the honest cost of joining fresh data with a warm
// Joiner.
func BenchmarkPartitionJoinCold(b *testing.B) {
	streets, mixed := tiger.Maps(benchScale, 42)
	var j partjoin.Joiner
	defer j.Close()
	cfg := partjoin.Config{}
	j.Join(streets, mixed, cfg) // warm buffers and pool
	home := streets[len(streets)/2].Rect
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := home
		if i%2 == 1 {
			w := r.MaxX - r.MinX
			r.MinX = home.MinX * 0.5
			r.MaxX = r.MinX + w
		}
		streets[len(streets)/2].Rect = r
		j.Join(streets, mixed, cfg)
	}
}

// skewedSides builds the clustered workload the refinement benchmarks
// share: both sides pile up on the same gaussian hot spots (shared
// centerSeed), the distribution where a uniform grid leaves one tile with
// a quadratic sweep.
func skewedSides() (r, s []rtree.Item) {
	return tiger.GaussianClusters(12000, 4, 2, 0.05, 41, 42),
		tiger.GaussianClusters(12000, 4, 2, 0.05, 41, 43)
}

// BenchmarkPartitionJoinSkewed is the adversarial baseline: the clustered
// workload on the uniform grid with tile refinement disabled — the
// hottest tile dominates the join.
func BenchmarkPartitionJoinSkewed(b *testing.B) {
	r, s := skewedSides()
	var j partjoin.Joiner
	defer j.Close()
	cfg := partjoin.Config{RefineThreshold: partjoin.RefineDisabled}
	j.Join(r, s, cfg) // warm buffers and pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Join(r, s, cfg)
	}
}

// BenchmarkPartitionJoinSkewedRefined is the same workload with the
// adaptive refinement at its auto threshold: hot tiles split into
// subtiles until every work unit is back in the sweep sweet spot. Steady
// state reuses the cached refinement schedule, so this stays
// allocation-free like BenchmarkPartitionJoin.
func BenchmarkPartitionJoinSkewedRefined(b *testing.B) {
	r, s := skewedSides()
	var j partjoin.Joiner
	defer j.Close()
	cfg := partjoin.Config{RefineThreshold: 0}
	j.Join(r, s, cfg) // warm buffers, pool and refinement schedule
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Join(r, s, cfg)
	}
}

// BenchmarkNativeTreeJoin is the tree-based comparison point: the same
// workload joined by the work-stealing native executor over prebuilt
// R*-trees (tree construction excluded, like the partition benchmark
// excludes nothing — it has no build phase).
func BenchmarkNativeTreeJoin(b *testing.B) {
	streets, mixed := tiger.Maps(benchScale, 42)
	r := rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.73)
	s := rtree.BulkLoadSTR(rtree.DefaultParams(), mixed, 0.73)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parnative.Join(r, s, parnative.Config{})
	}
}

// BenchmarkPartitionJoinColdSkewed is the cold path on clustered data at
// 10x the refinement benchmarks' cardinality: every iteration disturbs
// one rectangle's order so the pipelined build re-sorts, recounts and
// re-scatters a workload whose tiles are heavily skewed — hot tiles route
// through the in-pipeline refinement hand-off instead of the uniform
// sweep. Gates the cold build against the regime where readiness matters
// most (many tiles, a few huge ones). Declared after the other snapshot
// benchmarks on purpose: its 240k-rect working set inflates the GC-paced
// heap for the rest of the process, so it must run last in a
// whole-snapshot `go test -bench` invocation to keep the smaller
// benchmarks' figures comparable.
func BenchmarkPartitionJoinColdSkewed(b *testing.B) {
	r := tiger.GaussianClusters(120000, 4, 2, 0.05, 41, 42)
	s := tiger.GaussianClusters(120000, 4, 2, 0.05, 41, 43)
	var j partjoin.Joiner
	defer j.Close()
	cfg := partjoin.Config{}
	j.Join(r, s, cfg) // warm buffers and pool
	home := r[len(r)/2].Rect
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc := home
		if i%2 == 1 {
			w := rc.MaxX - rc.MinX
			rc.MinX = home.MinX * 0.5
			rc.MaxX = rc.MinX + w
		}
		r[len(r)/2].Rect = rc
		j.Join(r, s, cfg)
	}
}

// --- ablation benches (DESIGN.md: design choices) ------------------------

// BenchmarkAblationRestriction compares the sequential join with and
// without the search-space restriction of §2.2 (technique i).
func BenchmarkAblationRestriction(b *testing.B) {
	w := benchWorkload(b)
	for _, on := range []bool{true, false} {
		name := map[bool]string{true: "on", false: "off"}[on]
		b.Run(name, func(b *testing.B) {
			opts := join.Options{DisableRestriction: !on}
			comparisons := 0
			for i := 0; i < b.N; i++ {
				comparisons = 0
				root, _ := join.RootPair(w.R, w.S)
				e := join.Engine{
					Src:           join.DirectSource{R: w.R, S: w.S},
					Opts:          opts,
					OnCandidate:   func(join.Candidate) {},
					OnComparisons: func(n int) { comparisons += n },
				}
				e.Run(root)
			}
			b.ReportMetric(float64(comparisons), "comparisons")
		})
	}
}

// BenchmarkAblationSweep compares the plane-sweep node join (technique ii)
// against nested loops.
func BenchmarkAblationSweep(b *testing.B) {
	w := benchWorkload(b)
	for _, sweep := range []bool{true, false} {
		name := map[bool]string{true: "plane-sweep", false: "nested-loops"}[sweep]
		b.Run(name, func(b *testing.B) {
			opts := join.Options{NestedLoops: !sweep}
			for i := 0; i < b.N; i++ {
				join.Sequential(w.R, w.S, opts)
			}
		})
	}
}

// BenchmarkAblationPathBuffer compares the simulated join with and without
// the per-processor R*-tree path buffers.
func BenchmarkAblationPathBuffer(b *testing.B) {
	w := benchWorkload(b)
	for _, on := range []bool{true, false} {
		name := map[bool]string{true: "on", false: "off"}[on]
		b.Run(name, func(b *testing.B) {
			cfg := parjoin.DefaultConfig(8, 8, w.Pages(800, 8))
			cfg.PathBuffer = on
			var res parjoin.Result
			for i := 0; i < b.N; i++ {
				res = parjoin.Run(w.R, w.S, cfg)
			}
			b.ReportMetric(res.ResponseTime.Seconds(), "virtual-s")
			b.ReportMetric(float64(res.Buffer.Accesses()), "buffer-accesses")
		})
	}
}

// BenchmarkAblationTaskDepth varies the task-creation descend threshold
// (TaskFactor): larger factors split the join into more, smaller tasks.
func BenchmarkAblationTaskDepth(b *testing.B) {
	w := benchWorkload(b)
	for _, factor := range []int{1, 3, 12} {
		b.Run(map[int]string{1: "factor1", 3: "factor3", 12: "factor12"}[factor], func(b *testing.B) {
			cfg := parjoin.DefaultConfig(8, 8, w.Pages(800, 8))
			cfg.TaskFactor = factor
			var res parjoin.Result
			for i := 0; i < b.N; i++ {
				res = parjoin.Run(w.R, w.S, cfg)
			}
			b.ReportMetric(res.ResponseTime.Seconds(), "virtual-s")
			b.ReportMetric(float64(res.TasksCreated), "tasks")
		})
	}
}

// BenchmarkAblationMinSplit varies the minimum work-load size worth
// splitting during task reassignment.
func BenchmarkAblationMinSplit(b *testing.B) {
	w := benchWorkload(b)
	for _, min := range []int{2, 8, 32} {
		b.Run(map[int]string{2: "min2", 8: "min8", 32: "min32"}[min], func(b *testing.B) {
			cfg := parjoin.DefaultConfig(8, 8, w.Pages(800, 8)).Variant("lsr")
			cfg.Reassign = parjoin.ReassignAll
			cfg.MinSteal = min
			var res parjoin.Result
			for i := 0; i < b.N; i++ {
				res = parjoin.Run(w.R, w.S, cfg)
			}
			b.ReportMetric(res.ResponseTime.Seconds(), "virtual-s")
			b.ReportMetric(float64(res.Reassignments), "reassignments")
		})
	}
}

// BenchmarkAblationSTR compares tree construction by dynamic insertion
// against STR bulk loading.
func BenchmarkAblationSTR(b *testing.B) {
	streets, _ := tiger.Maps(benchScale, 42)
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := rtree.New(rtree.DefaultParams())
			for _, it := range streets {
				t.Insert(it.ID, it.Rect)
			}
		}
	})
	b.Run("str", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.73)
		}
	})
}

// BenchmarkBaselines compares the three filter-join approaches on the same
// workload: the R*-tree join of this paper, the same join over Guttman
// R-trees, and the z-ordering merge join of [OM 88].
func BenchmarkBaselines(b *testing.B) {
	streets, mixed := tiger.Maps(benchScale, 42)
	rstarR := rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.73)
	rstarS := rtree.BulkLoadSTR(rtree.DefaultParams(), mixed, 0.73)

	buildGuttman := func(items []rtree.Item) *rtree.Tree {
		t := rtree.New(rtree.GuttmanParams(rtree.QuadraticSplit))
		for _, it := range items {
			t.Insert(it.ID, it.Rect)
		}
		return t
	}
	guttR := buildGuttman(streets)
	guttS := buildGuttman(mixed)

	b.Run("rstar-join", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(join.Sequential(rstarR, rstarS, join.Options{}))
		}
		b.ReportMetric(float64(n), "candidates")
	})
	b.Run("guttman-join", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(join.Sequential(guttR, guttS, join.Options{}))
		}
		b.ReportMetric(float64(n), "candidates")
	})
	b.Run("zorder-join", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(zorder.JoinItems(streets, mixed, 20))
		}
		b.ReportMetric(float64(n), "candidates")
	})
}

// BenchmarkOutOfCoreJoin measures the filter join over trees persisted in
// real page files, through a buffer pool far smaller than the files
// (actual disk I/O, not the simulator).
func BenchmarkOutOfCoreJoin(b *testing.B) {
	streets, mixed := tiger.Maps(benchScale, 42)
	dir := b.TempDir()
	save := func(items []rtree.Item, name string) *rtree.PagedTree {
		pf, err := pagefile.Create(filepath.Join(dir, name))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { pf.Close() })
		tree := rtree.BulkLoadSTR(rtree.DefaultParams(), items, 0.73)
		if err := tree.SaveToPageFile(pf); err != nil {
			b.Fatal(err)
		}
		pt, err := rtree.OpenPagedTree(pf, 32)
		if err != nil {
			b.Fatal(err)
		}
		return pt
	}
	r := save(streets, "r.spjf")
	s := save(mixed, "s.spjf")
	b.ResetTimer()
	var reads int64
	for i := 0; i < b.N; i++ {
		_, stats, err := join.PagedSequential(r, s, join.Options{})
		if err != nil {
			b.Fatal(err)
		}
		reads = stats.Reads()
	}
	b.ReportMetric(float64(reads), "page-reads")
}
