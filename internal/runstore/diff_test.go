package runstore

import (
	"bytes"
	"strings"
	"testing"
)

func readStore(t *testing.T, recs ...Record) *Store {
	t.Helper()
	s, err := Read(bytes.NewReader(writeStore(t, recs...)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDiffEqualStores(t *testing.T) {
	mk := func() *Store {
		return readStore(t,
			sampleRecord("fig5", map[string]string{"variant": "gd"}, map[string]float64{"disk": 16243, "response_s": 154.5}),
			sampleRecord("fig7", map[string]string{"variant": "lsr"}, map[string]float64{"disk": 19036}),
		)
	}
	if divs := Diff(mk(), mk(), DiffOpts{Digests: true}); len(divs) != 0 {
		t.Fatalf("equal stores diverged: %+v", divs)
	}
}

// TestDiffPerturbedMetric pins the acceptance contract: one perturbed
// metric must produce a divergence (cmd/runsdiff exits nonzero on it).
func TestDiffPerturbedMetric(t *testing.T) {
	a := readStore(t,
		sampleRecord("fig5", map[string]string{"variant": "gd"}, map[string]float64{"disk": 16243, "response_s": 154.5}))
	b := readStore(t,
		sampleRecord("fig5", map[string]string{"variant": "gd"}, map[string]float64{"disk": 16244, "response_s": 154.5}))
	divs := Diff(a, b, DiffOpts{})
	if len(divs) != 1 {
		t.Fatalf("got %d divergences, want exactly 1: %+v", len(divs), divs)
	}
	d := divs[0]
	if d.Kind != "metric" || d.Metric != "disk" || d.A != 16243 || d.B != 16244 {
		t.Fatalf("divergence = %+v", d)
	}
	if !strings.Contains(d.Detail, "variant=gd") || !strings.Contains(d.Detail, "disk") {
		t.Fatalf("detail must name the offending cell and metric: %q", d.Detail)
	}
}

func TestDiffTolerance(t *testing.T) {
	a := readStore(t, sampleRecord("fig9", map[string]string{"n": "8"}, map[string]float64{"response_s": 100, "disk": 1000}))
	b := readStore(t, sampleRecord("fig9", map[string]string{"n": "8"}, map[string]float64{"response_s": 104, "disk": 1000}))
	if divs := Diff(a, b, DiffOpts{Tol: 0.05}); len(divs) != 0 {
		t.Fatalf("4%% drift above 5%% tolerance? %+v", divs)
	}
	if divs := Diff(a, b, DiffOpts{Tol: 0.01}); len(divs) != 1 {
		t.Fatalf("4%% drift under 1%% tolerance must diverge: %+v", divs)
	}
	// Per-metric override: exact disk, loose response.
	divs := Diff(a, b, DiffOpts{Tol: 0, MetricTol: map[string]float64{"response_s": 0.1}})
	if len(divs) != 0 {
		t.Fatalf("per-metric tolerance ignored: %+v", divs)
	}
}

func TestDiffMissingCellsAndMetrics(t *testing.T) {
	a := readStore(t,
		sampleRecord("fig5", map[string]string{"variant": "gd"}, map[string]float64{"disk": 1, "extra": 2}),
		sampleRecord("fig5", map[string]string{"variant": "lsr"}, map[string]float64{"disk": 1}))
	b := readStore(t,
		sampleRecord("fig5", map[string]string{"variant": "gd"}, map[string]float64{"disk": 1}),
		sampleRecord("fig5", map[string]string{"variant": "gsrr"}, map[string]float64{"disk": 1}))
	divs := Diff(a, b, DiffOpts{})
	kinds := map[string]int{}
	for _, d := range divs {
		kinds[d.Kind]++
	}
	// lsr only in a, gsrr only in b, metric "extra" only in a's gd.
	if kinds["missing"] != 3 || len(divs) != 3 {
		t.Fatalf("divergences = %+v", divs)
	}
}

func TestDiffDigests(t *testing.T) {
	ra := sampleRecord("fig5", map[string]string{"variant": "gd"}, map[string]float64{"disk": 1})
	ra.MetricsDigest, ra.TimelineDigest = "aaaa", "tttt"
	rb := ra
	rb.MetricsDigest = "bbbb"
	a, b := readStore(t, ra), readStore(t, rb)
	if divs := Diff(a, b, DiffOpts{}); len(divs) != 0 {
		t.Fatalf("digest compare must be opt-in: %+v", divs)
	}
	divs := Diff(a, b, DiffOpts{Digests: true})
	if len(divs) != 1 || divs[0].Kind != "digest" || divs[0].Metric != "metrics_digest" {
		t.Fatalf("digest divergence = %+v", divs)
	}
}

func TestRenderDiff(t *testing.T) {
	var buf bytes.Buffer
	if n := RenderDiff(&buf, nil, 5, 5); n != 0 || !strings.Contains(buf.String(), "OK") {
		t.Fatalf("clean render: n=%d out=%q", n, buf.String())
	}
	buf.Reset()
	divs := []Divergence{{Kind: "metric", Cell: "fig5|variant=gd", Metric: "disk", Detail: "fig5|variant=gd: disk = 1 vs 2"}}
	if n := RenderDiff(&buf, divs, 5, 5); n != 1 || !strings.Contains(buf.String(), "1 divergence") {
		t.Fatalf("diverged render: n=%d out=%q", n, buf.String())
	}
}
