package runstore

import (
	"fmt"
	"io"
	"sort"

	"spjoin/internal/stats"
)

// DiffOpts controls a store-to-store comparison.
type DiffOpts struct {
	// Tol is the default relative tolerance (stats.RelDiff) above which a
	// metric counts as diverged. 0 demands exact equality — the right
	// default for the deterministic simulator.
	Tol float64
	// MetricTol overrides Tol per metric name (e.g. wall-clock metrics on
	// a noisy host).
	MetricTol map[string]float64
	// Digests also compares the metrics/timeline digests of aligned cells
	// (only meaningful at Tol 0: digests differ whenever anything does).
	Digests bool
}

// Divergence is one difference between two stores.
type Divergence struct {
	// Kind classifies the difference: "metric" (value out of tolerance),
	// "missing" (cell or metric present on one side only), "digest".
	Kind string
	// Cell is the record key; Metric the metric (or digest) name.
	Cell, Metric string
	// A and B are the two values (metric divergences only).
	A, B float64
	// Rel is stats.RelDiff(A, B).
	Rel float64
	// Detail is the rendered one-line description.
	Detail string
}

// Diff compares two stores cell-by-cell and metric-by-metric. The result
// is deterministic: divergences are sorted by cell key then metric.
func Diff(a, b *Store, opts DiffOpts) []Divergence {
	var out []Divergence
	missing := func(kind, cell, metric, detail string) {
		out = append(out, Divergence{Kind: kind, Cell: cell, Metric: metric, Detail: detail})
	}

	for i := range a.Records {
		ra := &a.Records[i]
		key := ra.Key()
		rb, ok := b.byKey[key]
		if !ok {
			missing("missing", key, "", fmt.Sprintf("%s: cell only in first store", key))
			continue
		}
		names := make([]string, 0, len(ra.Metrics))
		for name := range ra.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			va := ra.Metrics[name]
			vb, ok := rb.Metrics[name]
			if !ok {
				missing("missing", key, name, fmt.Sprintf("%s: metric %q only in first store", key, name))
				continue
			}
			tol := opts.Tol
			if t, ok := opts.MetricTol[name]; ok {
				tol = t
			}
			if rel := stats.RelDiff(va, vb); rel > tol {
				out = append(out, Divergence{
					Kind: "metric", Cell: key, Metric: name, A: va, B: vb, Rel: rel,
					Detail: fmt.Sprintf("%s: %s = %v vs %v (rel %.4f > tol %.4f)", key, name, va, vb, rel, tol),
				})
			}
		}
		for name := range rb.Metrics {
			if _, ok := ra.Metrics[name]; !ok {
				missing("missing", key, name, fmt.Sprintf("%s: metric %q only in second store", key, name))
			}
		}
		if opts.Digests {
			if ra.MetricsDigest != rb.MetricsDigest {
				missing("digest", key, "metrics_digest",
					fmt.Sprintf("%s: metrics digest %.12s vs %.12s", key, ra.MetricsDigest, rb.MetricsDigest))
			}
			if ra.TimelineDigest != rb.TimelineDigest {
				missing("digest", key, "timeline_digest",
					fmt.Sprintf("%s: timeline digest %.12s vs %.12s", key, ra.TimelineDigest, rb.TimelineDigest))
			}
		}
	}
	for i := range b.Records {
		key := b.Records[i].Key()
		if _, ok := a.byKey[key]; !ok {
			missing("missing", key, "", fmt.Sprintf("%s: cell only in second store", key))
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// RenderDiff writes one line per divergence plus a summary line, and
// returns how many divergences there were.
func RenderDiff(w io.Writer, divs []Divergence, aCells, bCells int) int {
	for _, d := range divs {
		fmt.Fprintln(w, d.Detail)
	}
	if len(divs) == 0 {
		fmt.Fprintf(w, "runsdiff: OK — %d cells match\n", aCells)
	} else {
		fmt.Fprintf(w, "runsdiff: %d divergence(s) across %d vs %d cells\n", len(divs), aCells, bCells)
	}
	return len(divs)
}
