package runstore

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sampleRecord builds a sealed, valid record for tests.
func sampleRecord(exp string, params map[string]string, metrics map[string]float64) Record {
	rec := Record{
		Experiment: exp,
		Params:     params,
		Seed:       42,
		Scale:      0.1,
		Engine:     "sim",
		GitRev:     "deadbeef",
		Metrics:    metrics,
	}
	rec.Seal()
	return rec
}

func writeStore(t *testing.T, recs ...Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteReadRoundTrip(t *testing.T) {
	data := writeStore(t,
		sampleRecord("fig5", map[string]string{"variant": "gd", "procs": "8", "buffer": "800"},
			map[string]float64{"disk": 16243, "response_s": 154.5}),
		sampleRecord("fig5", map[string]string{"variant": "lsr", "procs": "8", "buffer": "800"},
			map[string]float64{"disk": 19036, "response_s": 183.7}),
	)
	s, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("read %d records, want 2", s.Len())
	}
	rec, ok := s.Find("fig5", map[string]string{"procs": "8", "variant": "gd", "buffer": "800"})
	if !ok {
		t.Fatal("gd cell not found (param order must not matter)")
	}
	if rec.Metrics["disk"] != 16243 {
		t.Fatalf("disk = %v", rec.Metrics["disk"])
	}
	if v, err := s.Metric("fig5", map[string]string{"variant": "lsr", "procs": "8", "buffer": "800"}, "response_s"); err != nil || v != 183.7 {
		t.Fatalf("Metric = %v, %v", v, err)
	}
	if _, err := s.Metric("fig5", map[string]string{"variant": "nope"}, "disk"); err == nil {
		t.Fatal("missing cell must error")
	}
	if _, err := s.Metric("fig5", map[string]string{"variant": "gd", "procs": "8", "buffer": "800"}, "nope"); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Fatalf("missing metric must error naming the metric, got %v", err)
	}
}

func TestWriteDeterministic(t *testing.T) {
	rec := func() Record {
		return sampleRecord("fig7", map[string]string{"variant": "gd", "reassign": "all"},
			map[string]float64{"disk": 16237, "response_s": 154.5, "first_s": 154.1})
	}
	a := writeStore(t, rec())
	b := writeStore(t, rec())
	if !bytes.Equal(a, b) {
		t.Fatalf("writer not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	rec := sampleRecord("fig5", nil, map[string]float64{"disk": 1})
	rec.V = 99
	data, _ := marshalLine(rec)
	if _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: %v", err)
	}
}

func TestReadRejectsTamperedConfig(t *testing.T) {
	data := writeStore(t, sampleRecord("fig5", map[string]string{"procs": "8"}, map[string]float64{"disk": 1}))
	tampered := bytes.Replace(data, []byte(`"procs":"8"`), []byte(`"procs":"24"`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper replacement did not apply")
	}
	if _, err := Read(bytes.NewReader(tampered)); err == nil || !strings.Contains(err.Error(), "config hash") {
		t.Fatalf("tampered params accepted: %v", err)
	}
}

func TestReadRejectsDuplicateCell(t *testing.T) {
	rec := sampleRecord("fig5", map[string]string{"procs": "8"}, map[string]float64{"disk": 1})
	data := append(writeStore(t, rec), writeStore(t, rec)...)
	if _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate cell accepted: %v", err)
	}
}

func TestReadRejectsGarbageAndEmptyMetrics(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	rec := sampleRecord("fig5", nil, map[string]float64{})
	rec.Seal()
	data, _ := marshalLine(rec)
	if _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "no metrics") {
		t.Fatalf("metricless record accepted: %v", err)
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	data := writeStore(t, sampleRecord("fig5", nil, map[string]float64{"disk": 1}))
	padded := append([]byte("\n\n"), data...)
	padded = append(padded, '\n')
	s, err := Read(bytes.NewReader(padded))
	if err != nil || s.Len() != 1 {
		t.Fatalf("blank-line store: %v, len %d", err, s.Len())
	}
}

func TestGridGrouping(t *testing.T) {
	var recs []Record
	for _, buffer := range []string{"1600", "200", "800"} {
		for _, variant := range []string{"lsr", "gd"} {
			recs = append(recs, sampleRecord("fig5",
				map[string]string{"buffer": buffer, "variant": variant, "procs": "8"},
				map[string]float64{"disk": float64(len(buffer) * 100)}))
		}
	}
	// A second procs level must be excluded by the match below.
	recs = append(recs, sampleRecord("fig5",
		map[string]string{"buffer": "200", "variant": "gd", "procs": "24"},
		map[string]float64{"disk": 999}))
	s, err := Read(bytes.NewReader(writeStore(t, recs...)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Grid("fig5", "buffer", "variant", map[string]string{"procs": "8"})
	if err != nil {
		t.Fatal(err)
	}
	// Numeric axis sorts numerically: 200 < 800 < 1600.
	if want := []string{"200", "800", "1600"}; !equalStrings(g.Rows, want) {
		t.Fatalf("rows = %v, want %v", g.Rows, want)
	}
	if want := []string{"gd", "lsr"}; !equalStrings(g.Cols, want) {
		t.Fatalf("cols = %v, want %v", g.Cols, want)
	}
	if v, ok := g.Metric("800", "gd", "disk"); !ok || v != 300 {
		t.Fatalf("cell(800, gd) = %v, %v", v, ok)
	}
	if g.Cell("200", "nope") != nil {
		t.Fatal("missing cell must be nil")
	}
	// Without pinning procs, two records land in one cell.
	if _, err := s.Grid("fig5", "buffer", "variant", nil); err == nil {
		t.Fatal("ambiguous grid must error")
	}
}

func TestAxisLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"2", "10", true},
		{"10", "2", false},
		{"gd", "lsr", true},
		{"1", "x", true}, // mixed falls back to lexical
	}
	for _, c := range cases {
		if got := AxisLess(c.a, c.b); got != c.want {
			t.Errorf("AxisLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// marshalLine encodes a record verbatim — without Writer's sealing — so
// tests can construct invalid lines.
func marshalLine(rec Record) ([]byte, error) {
	data, err := json.Marshal(rec)
	return append(data, '\n'), err
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
