// Package runstore is the structured run-record store of the experiment
// observatory: every sweep cell cmd/experiments executes becomes one
// provenance-stamped JSONL record (schema version, experiment, grid
// parameters, config hash, seed, scale, engine, git revision, flattened
// metrics, metrics/timeline digests). A validating reader loads a store
// and groups records into figure grids; package claims evaluates the
// paper's qualitative results over those grids, and cmd/runsdiff compares
// two stores metric-by-metric.
//
// The format is line-oriented JSON so stores concatenate, diff and grep
// like logs; writing is deterministic (encoding/json sorts map keys), so
// two identical sweeps produce byte-identical stores — the property that
// makes a run store a regression artifact rather than a report.
package runstore

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Version is the current run-record schema version. Readers accept only
// records whose "v" field matches a known version.
const Version = 1

// Record is one experiment-grid cell: a single join run (or measurement)
// with its full configuration identity and outcome metrics.
type Record struct {
	// V is the schema version (Version).
	V int `json:"v"`
	// Experiment names the figure/table the cell belongs to (fig5, fig7,
	// fig9, table1, sn, est, ...).
	Experiment string `json:"experiment"`
	// Params are the grid axes that identify the cell within its
	// experiment: variant, procs, disks, buffer, reassign, victim, n, d...
	// Values are strings so axes stay schema-free; numeric axes parse on
	// demand (AxisLess sorts them numerically).
	Params map[string]string `json:"params,omitempty"`
	// ConfigHash is the SHA-256 over the canonical configuration identity
	// (version, experiment, params, seed, scale, engine). The reader
	// recomputes and checks it, so hand-edited cells fail validation.
	ConfigHash string `json:"config_hash"`
	// Seed, Scale and Engine stamp the workload provenance. Engine is
	// "sim" for the paper's simulated machine (the only engine the
	// experiment harness sweeps today).
	Seed   int64   `json:"seed"`
	Scale  float64 `json:"scale"`
	Engine string  `json:"engine"`
	// GitRev is the source revision that produced the record ("unknown"
	// outside a git checkout). Not part of the config hash: the same
	// configuration must keep the same identity across revisions so
	// cmd/runsdiff can align stores from two builds.
	GitRev string `json:"git_rev,omitempty"`
	// Metrics are the flattened outcome measures (disk accesses, response
	// seconds, finisher spread, buffer hit classes, timeline per-kind
	// totals, ...).
	Metrics map[string]float64 `json:"metrics"`
	// MetricsDigest is the SHA-256 over the run's full metrics-registry
	// JSON; TimelineDigest is the span recorder's digest and Spans its
	// span count. Together they pin the complete observable behavior of
	// the run, far beyond the flattened metrics.
	MetricsDigest  string `json:"metrics_digest,omitempty"`
	TimelineDigest string `json:"timeline_digest,omitempty"`
	Spans          int    `json:"spans,omitempty"`
}

// Key identifies the cell across stores: experiment plus sorted params.
// Two stores' records align on Key regardless of revision or outcome.
func (r *Record) Key() string {
	var sb strings.Builder
	sb.WriteString(r.Experiment)
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteByte('|')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(r.Params[k])
	}
	return sb.String()
}

// hash computes the canonical configuration hash.
func (r *Record) hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|%s|seed=%d|scale=%s|engine=%s",
		r.V, r.Key(), r.Seed, strconv.FormatFloat(r.Scale, 'g', -1, 64), r.Engine)
	return hex.EncodeToString(h.Sum(nil))
}

// Seal stamps the schema version and config hash. Writers call it; tests
// building synthetic records can too.
func (r *Record) Seal() {
	r.V = Version
	r.ConfigHash = r.hash()
}

// Validate checks the record against the schema: known version, non-empty
// experiment and metrics, and a config hash that matches the recomputed
// canonical hash.
func (r *Record) Validate() error {
	if r.V != Version {
		return fmt.Errorf("runstore: unsupported schema version %d (want %d)", r.V, Version)
	}
	if r.Experiment == "" {
		return fmt.Errorf("runstore: record missing experiment")
	}
	if len(r.Metrics) == 0 {
		return fmt.Errorf("runstore: record %s has no metrics", r.Key())
	}
	if r.Engine == "" {
		return fmt.Errorf("runstore: record %s missing engine", r.Key())
	}
	if want := r.hash(); r.ConfigHash != want {
		return fmt.Errorf("runstore: record %s config hash %.12s does not match recomputed %.12s",
			r.Key(), r.ConfigHash, want)
	}
	return nil
}

// Writer appends sealed records to an io.Writer as JSONL.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write seals and appends one record. The first error latches and fails
// all subsequent writes.
func (w *Writer) Write(rec Record) error {
	if w.err != nil {
		return w.err
	}
	rec.Seal()
	if err := rec.Validate(); err != nil {
		w.err = err
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		w.err = err
		return err
	}
	data = append(data, '\n')
	if _, err := w.w.Write(data); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns how many records were written.
func (w *Writer) Count() int { return w.n }

// Flush drains the buffer; returns the first error of the writer's life.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// Store is a loaded, validated run store with cell lookup by key.
type Store struct {
	Records []Record
	byKey   map[string]*Record
}

// Read parses and validates a JSONL run store. Blank lines are skipped;
// any malformed or invalid record fails the whole read (a run store is a
// regression artifact — a partially valid one is worse than none).
// Duplicate cells (same Key) are rejected.
func Read(r io.Reader) (*Store, error) {
	s := &Store{byKey: map[string]*Record{}}
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("runstore: line %d: %w", line, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		key := rec.Key()
		if seen[key] {
			return nil, fmt.Errorf("runstore: line %d: duplicate cell %s", line, key)
		}
		seen[key] = true
		s.Records = append(s.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	for i := range s.Records {
		s.byKey[s.Records[i].Key()] = &s.Records[i]
	}
	return s, nil
}

// ReadFile loads a run store from disk.
func ReadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.Records) }

// Find returns the unique cell with exactly these params.
func (s *Store) Find(experiment string, params map[string]string) (*Record, bool) {
	rec, ok := s.byKey[(&Record{Experiment: experiment, Params: params}).Key()]
	return rec, ok
}

// Metric returns one metric of one cell, with an error naming the cell
// when the cell or metric is missing — the lookup the claim engine
// reports offenders through.
func (s *Store) Metric(experiment string, params map[string]string, metric string) (float64, error) {
	rec, ok := s.Find(experiment, params)
	if !ok {
		return 0, fmt.Errorf("cell %s not in run store",
			(&Record{Experiment: experiment, Params: params}).Key())
	}
	v, ok := rec.Metrics[metric]
	if !ok {
		return 0, fmt.Errorf("cell %s has no metric %q", rec.Key(), metric)
	}
	return v, nil
}

// Select returns every record of the experiment whose params contain
// match as a subset, in store order.
func (s *Store) Select(experiment string, match map[string]string) []*Record {
	var out []*Record
	for i := range s.Records {
		rec := &s.Records[i]
		if rec.Experiment != experiment {
			continue
		}
		ok := true
		for k, v := range match {
			if rec.Params[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, rec)
		}
	}
	return out
}

// Experiments returns the distinct experiment names, sorted.
func (s *Store) Experiments() []string {
	seen := map[string]bool{}
	var out []string
	for i := range s.Records {
		if !seen[s.Records[i].Experiment] {
			seen[s.Records[i].Experiment] = true
			out = append(out, s.Records[i].Experiment)
		}
	}
	sort.Strings(out)
	return out
}

// Grid is a figure grid over one experiment: rows and columns are the
// distinct values of two param axes (every other axis fixed by the match
// that built the grid), each cell at most one record.
type Grid struct {
	Experiment       string
	RowAxis, ColAxis string
	Rows, Cols       []string
	cells            map[string]*Record
}

// Grid groups the records selected by (experiment, match) into a grid
// over rowAxis × colAxis. Axis values sort numerically when every value
// parses as a number, lexically otherwise. Records missing either axis,
// or two records landing in one cell, are errors.
func (s *Store) Grid(experiment, rowAxis, colAxis string, match map[string]string) (*Grid, error) {
	g := &Grid{Experiment: experiment, RowAxis: rowAxis, ColAxis: colAxis, cells: map[string]*Record{}}
	rowSeen, colSeen := map[string]bool{}, map[string]bool{}
	for _, rec := range s.Select(experiment, match) {
		row, ok := rec.Params[rowAxis]
		if !ok {
			return nil, fmt.Errorf("runstore: record %s has no axis %q", rec.Key(), rowAxis)
		}
		col, ok := rec.Params[colAxis]
		if !ok {
			return nil, fmt.Errorf("runstore: record %s has no axis %q", rec.Key(), colAxis)
		}
		ck := row + "\x00" + col
		if _, dup := g.cells[ck]; dup {
			return nil, fmt.Errorf("runstore: grid %s: two records in cell (%s=%s, %s=%s); fix the match to pin the free axes",
				experiment, rowAxis, row, colAxis, col)
		}
		g.cells[ck] = rec
		if !rowSeen[row] {
			rowSeen[row] = true
			g.Rows = append(g.Rows, row)
		}
		if !colSeen[col] {
			colSeen[col] = true
			g.Cols = append(g.Cols, col)
		}
	}
	sortAxis(g.Rows)
	sortAxis(g.Cols)
	return g, nil
}

// Cell returns the record at (row, col), nil when empty.
func (g *Grid) Cell(row, col string) *Record {
	return g.cells[row+"\x00"+col]
}

// Metric returns the metric at (row, col); ok is false when the cell or
// metric is missing.
func (g *Grid) Metric(row, col, metric string) (float64, bool) {
	rec := g.Cell(row, col)
	if rec == nil {
		return 0, false
	}
	v, ok := rec.Metrics[metric]
	return v, ok
}

// sortAxis orders axis values numerically when they all parse, lexically
// otherwise.
func sortAxis(vals []string) {
	allNum := true
	for _, v := range vals {
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			allNum = false
			break
		}
	}
	sort.Slice(vals, func(i, j int) bool {
		if allNum {
			a, _ := strconv.ParseFloat(vals[i], 64)
			b, _ := strconv.ParseFloat(vals[j], 64)
			return a < b
		}
		return vals[i] < vals[j]
	})
}

// AxisLess reports whether axis value a orders before b (numeric-aware,
// matching sortAxis) — exported for the claim engine's series sweeps.
func AxisLess(a, b string) bool {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		return fa < fb
	}
	return a < b
}
