package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spjoin/internal/geom"
)

func TestMinDist(t *testing.T) {
	r := geom.NewRect(2, 2, 4, 4)
	cases := []struct {
		x, y, want float64
	}{
		{3, 3, 0},              // inside
		{2, 2, 0},              // corner
		{0, 3, 2},              // left
		{6, 3, 2},              // right
		{3, 0, 2},              // below
		{3, 7, 3},              // above
		{0, 0, math.Sqrt2 * 2}, // diagonal to corner (2,2)
	}
	for _, c := range cases {
		if got := minDist(c.x, c.y, r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("minDist(%g,%g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

func bruteNN(items []Item, x, y float64, k int) []Neighbor {
	out := make([]Neighbor, len(items))
	for i, it := range items {
		out[i] = Neighbor{ID: it.ID, Rect: it.Rect, Dist: minDist(x, y, it.Rect)}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 500, 31)
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		k := 1 + rng.Intn(20)
		got := tree.NearestNeighbors(x, y, k)
		want := bruteNN(items, x, y, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			// Distances must agree; IDs may differ under exact ties.
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: dist %g, want %g",
					trial, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestNearestNeighborsSortedAscending(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 300, 33)
	got := tree.NearestNeighbors(500, 500, 50)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
		t.Fatal("results not sorted by distance")
	}
}

func TestNearestNeighborsKLargerThanTree(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 20, 34)
	got := tree.NearestNeighbors(0, 0, 100)
	if len(got) != len(items) {
		t.Fatalf("got %d results, want all %d", len(got), len(items))
	}
}

func TestNearestNeighborsEdgeCases(t *testing.T) {
	empty := New(smallParams())
	if got := empty.NearestNeighbors(0, 0, 5); got != nil {
		t.Fatalf("empty tree returned %v", got)
	}
	tree, _ := buildRandom(t, smallParams(), 10, 35)
	if got := tree.NearestNeighbors(0, 0, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := tree.NearestNeighbors(0, 0, -3); got != nil {
		t.Fatalf("negative k returned %v", got)
	}
}

func TestNearest(t *testing.T) {
	tree := New(smallParams())
	if _, ok := tree.Nearest(0, 0); ok {
		t.Fatal("Nearest on empty tree returned ok")
	}
	tree.Insert(7, geom.NewRect(10, 10, 11, 11))
	tree.Insert(8, geom.NewRect(50, 50, 51, 51))
	n, ok := tree.Nearest(0, 0)
	if !ok || n.ID != 7 {
		t.Fatalf("Nearest = %+v/%v, want entry 7", n, ok)
	}
	// Query point inside an entry => distance 0.
	n, _ = tree.Nearest(50.5, 50.5)
	if n.ID != 8 || n.Dist != 0 {
		t.Fatalf("Nearest inside = %+v", n)
	}
}

func TestNearestDeterministicTies(t *testing.T) {
	tree := New(smallParams())
	r := geom.NewRect(5, 5, 6, 6)
	for i := 0; i < 30; i++ {
		tree.Insert(EntryID(i), r) // all equidistant
	}
	a := tree.NearestNeighbors(0, 0, 10)
	b := tree.NearestNeighbors(0, 0, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-breaking not deterministic")
		}
	}
}

func BenchmarkNearestNeighbors(b *testing.B) {
	tree := BulkLoadSTR(DefaultParams(), randomItems(50000, 1), 0.9)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.NearestNeighbors(rng.Float64()*1000, rng.Float64()*1000, 10)
	}
}
