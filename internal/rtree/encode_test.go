package rtree

import (
	"bytes"
	"reflect"
	"testing"

	"spjoin/internal/geom"
)

func roundTrip(t *testing.T, tree *Tree) *Tree {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatalf("ReadTree: %v", err)
	}
	return got
}

func assertTreesEqual(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.Len() != b.Len() || a.Height() != b.Height() || a.Root() != b.Root() {
		t.Fatalf("shape mismatch: len %d/%d height %d/%d root %d/%d",
			a.Len(), b.Len(), a.Height(), b.Height(), a.Root(), b.Root())
	}
	if a.Params() != b.Params() {
		t.Fatalf("params mismatch: %+v vs %+v", a.Params(), b.Params())
	}
	if len(a.nodes) != len(b.nodes) {
		t.Fatalf("page counts differ: %d vs %d", len(a.nodes), len(b.nodes))
	}
	// Sweep caches are derived data built at different times (decode builds
	// eagerly, dynamic trees lazily); materialize both sides so DeepEqual
	// compares their contents instead of nil vs. built.
	a.PrepareSweep()
	b.PrepareSweep()
	for i := range a.nodes {
		na, nb := a.nodes[i], b.nodes[i]
		if (na == nil) != (nb == nil) {
			t.Fatalf("page %d presence differs", i)
		}
		if na == nil {
			continue
		}
		if !reflect.DeepEqual(*na, *nb) {
			t.Fatalf("page %d differs:\n%+v\n%+v", i, *na, *nb)
		}
	}
}

func TestEncodeRoundTripInserted(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 500, 21)
	assertTreesEqual(t, tree, roundTrip(t, tree))
}

func TestEncodeRoundTripSTR(t *testing.T) {
	tree := BulkLoadSTR(DefaultParams(), randomItems(3000, 22), 0.73)
	assertTreesEqual(t, tree, roundTrip(t, tree))
}

func TestEncodeRoundTripEmpty(t *testing.T) {
	tree := New(smallParams())
	assertTreesEqual(t, tree, roundTrip(t, tree))
}

func TestEncodeRoundTripWithFreedPages(t *testing.T) {
	// Deletion frees pages; the encoding must preserve page numbering with
	// holes so disk placement survives.
	tree, items := buildRandom(t, smallParams(), 300, 23)
	for i := 0; i < 200; i++ {
		if !tree.Delete(items[i].ID, items[i].Rect) {
			t.Fatalf("delete %d failed", i)
		}
	}
	got := roundTrip(t, tree)
	assertTreesEqual(t, tree, got)
	// Mutations must keep working on the decoded tree.
	got.Insert(9999, geom.NewRect(1, 1, 2, 2))
	if err := got.CheckIntegrity(); err != nil {
		t.Fatalf("decoded tree broken after insert: %v", err)
	}
}

func TestDecodedTreeSearches(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 400, 24)
	got := roundTrip(t, tree)
	for _, it := range items[:50] {
		found := false
		got.Search(it.Rect, func(id EntryID, r geom.Rect) bool {
			if id == it.ID && r == it.Rect {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("decoded tree lost entry %d", it.ID)
		}
	}
}

func TestReadTreeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("BOGUS---------------"),
		[]byte("RST1"), // truncated header
	}
	for i, data := range cases {
		if _, err := ReadTree(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: ReadTree accepted garbage", i)
		}
	}
}

func TestReadTreeRejectsTruncatedBody(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 100, 25)
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 3} {
		if _, err := ReadTree(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("ReadTree accepted truncation at %d", cut)
		}
	}
}

func TestReadTreeRejectsCorruptedStructure(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 100, 26)
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip bytes in the body; either decoding fails or the integrity check
	// rejects the tree — silent acceptance of a broken structure would be
	// the bug. Some flips only touch rectangle bits and survive both (the
	// tree stays structurally valid), so count rejections.
	rejected := 0
	for off := 40; off < len(data)-8 && off < 400; off += 17 {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0xFF
		if _, err := ReadTree(bytes.NewReader(corrupt)); err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("no corruption was ever detected")
	}
}

func BenchmarkEncode(b *testing.B) {
	tree := BulkLoadSTR(DefaultParams(), randomItems(10000, 1), 0.73)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		tree.WriteTo(&buf)
	}
}

func BenchmarkDecode(b *testing.B) {
	tree := BulkLoadSTR(DefaultParams(), randomItems(10000, 1), 0.73)
	var buf bytes.Buffer
	tree.WriteTo(&buf)
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadTree(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
