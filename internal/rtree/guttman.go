package rtree

import (
	"math"

	"spjoin/internal/geom"
)

// The paper's method "is directly applicable to the other members of the
// [R-tree] family" (§2.2). This file adds Guttman's original R-tree
// [Gut 84] as an alternative configuration: quadratic or linear node
// splitting, least-enlargement subtree choice at every level, and no forced
// reinsertion. Select it via Params.Split (and typically ReinsertFrac 0).

// SplitStrategy selects the node-splitting algorithm.
type SplitStrategy uint8

const (
	// RStarSplit is the margin-driven topological split of [BKSS 90]
	// (the default).
	RStarSplit SplitStrategy = iota
	// QuadraticSplit is Guttman's quadratic-cost split: seed the two groups
	// with the pair wasting the most area, then assign entries by greatest
	// preference.
	QuadraticSplit
	// LinearSplit is Guttman's linear-cost split: seed with the entries of
	// greatest normalized separation, assign the rest in arrival order.
	LinearSplit
)

func (s SplitStrategy) String() string {
	switch s {
	case RStarSplit:
		return "rstar"
	case QuadraticSplit:
		return "quadratic"
	case LinearSplit:
		return "linear"
	default:
		return "SplitStrategy(?)"
	}
}

// GuttmanParams returns the paper-default page geometry configured as a
// classic Guttman R-tree with the given split strategy: no forced
// reinsertion, least-enlargement ChooseLeaf.
func GuttmanParams(split SplitStrategy) Params {
	p := DefaultParams()
	p.Split = split
	p.ReinsertFrac = 0
	return p
}

// splitEntries dispatches on the configured strategy.
func (t *Tree) splitEntries(entries []Entry, minFill int) (group1, group2 []Entry) {
	switch t.params.Split {
	case QuadraticSplit:
		return quadraticSplit(entries, minFill)
	case LinearSplit:
		return linearSplit(entries, minFill)
	default:
		return rstarSplit(entries, minFill)
	}
}

// quadraticSplit implements Guttman's quadratic split.
func quadraticSplit(entries []Entry, minFill int) (group1, group2 []Entry) {
	// PickSeeds: the pair whose combined rectangle wastes the most area.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}
	group1 = append(group1, entries[seedA])
	group2 = append(group2, entries[seedB])
	mbr1, mbr2 := entries[seedA].Rect, entries[seedB].Rect

	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group must take every remainder to reach minFill, do so.
		if len(group1)+len(rest) == minFill {
			group1 = append(group1, rest...)
			return group1, group2
		}
		if len(group2)+len(rest) == minFill {
			group2 = append(group2, rest...)
			return group1, group2
		}
		// PickNext: the entry with the greatest preference for one group.
		best, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := mbr1.Enlargement(e.Rect)
			d2 := mbr2.Enlargement(e.Rect)
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				best, bestDiff = i, diff
			}
		}
		e := rest[best]
		rest = append(rest[:best], rest[best+1:]...)
		d1 := mbr1.Enlargement(e.Rect)
		d2 := mbr2.Enlargement(e.Rect)
		// Resolve ties by smaller area, then smaller group.
		toFirst := d1 < d2
		if d1 == d2 {
			if a1, a2 := mbr1.Area(), mbr2.Area(); a1 != a2 {
				toFirst = a1 < a2
			} else {
				toFirst = len(group1) <= len(group2)
			}
		}
		if toFirst {
			group1 = append(group1, e)
			mbr1 = mbr1.Union(e.Rect)
		} else {
			group2 = append(group2, e)
			mbr2 = mbr2.Union(e.Rect)
		}
	}
	return group1, group2
}

// linearSplit implements Guttman's linear split.
func linearSplit(entries []Entry, minFill int) (group1, group2 []Entry) {
	seedA, seedB := linearPickSeeds(entries)
	group1 = append(group1, entries[seedA])
	group2 = append(group2, entries[seedB])
	mbr1, mbr2 := entries[seedA].Rect, entries[seedB].Rect

	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for i, e := range rest {
		remaining := len(rest) - i // unassigned entries including e
		// Force-assign when a group needs every remainder to reach the
		// minimum fill.
		if len(group1)+remaining <= minFill {
			group1 = append(group1, e)
			mbr1 = mbr1.Union(e.Rect)
			continue
		}
		if len(group2)+remaining <= minFill {
			group2 = append(group2, e)
			mbr2 = mbr2.Union(e.Rect)
			continue
		}
		if mbr1.Enlargement(e.Rect) <= mbr2.Enlargement(e.Rect) {
			group1 = append(group1, e)
			mbr1 = mbr1.Union(e.Rect)
		} else {
			group2 = append(group2, e)
			mbr2 = mbr2.Union(e.Rect)
		}
	}
	return group1, group2
}

// linearPickSeeds finds the two entries with the greatest normalized
// separation along either axis.
func linearPickSeeds(entries []Entry) (int, int) {
	// Along each axis: the entry with the highest MinX (low side) and the
	// one with the lowest MaxX (high side), normalized by the total width.
	bestSep := math.Inf(-1)
	seedA, seedB := 0, 1
	for axis := 0; axis < 2; axis++ {
		lo := func(r geom.Rect) float64 {
			if axis == 0 {
				return r.MinX
			}
			return r.MinY
		}
		hi := func(r geom.Rect) float64 {
			if axis == 0 {
				return r.MaxX
			}
			return r.MaxY
		}
		highestLow, lowestHigh := 0, 0
		minLo, maxHi := math.Inf(1), math.Inf(-1)
		for i, e := range entries {
			if lo(e.Rect) > lo(entries[highestLow].Rect) {
				highestLow = i
			}
			if hi(e.Rect) < hi(entries[lowestHigh].Rect) {
				lowestHigh = i
			}
			minLo = math.Min(minLo, lo(e.Rect))
			maxHi = math.Max(maxHi, hi(e.Rect))
		}
		width := maxHi - minLo
		if width <= 0 {
			continue
		}
		sep := (lo(entries[highestLow].Rect) - hi(entries[lowestHigh].Rect)) / width
		if sep > bestSep && highestLow != lowestHigh {
			bestSep, seedA, seedB = sep, highestLow, lowestHigh
		}
	}
	if seedA == seedB { // fully degenerate input: any pair works
		seedB = (seedA + 1) % len(entries)
	}
	return seedA, seedB
}
