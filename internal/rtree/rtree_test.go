package rtree

import (
	"math/rand"
	"testing"

	"spjoin/internal/geom"
	"spjoin/internal/storage"
)

// smallParams gives low fanout so structural cases (splits, reinserts,
// height growth) trigger with few entries.
func smallParams() Params {
	return Params{MaxDirEntries: 5, MaxDataEntries: 5, MinFillFrac: 0.4, ReinsertFrac: 0.3}
}

func randRect(rng *rand.Rand, world, maxSide float64) geom.Rect {
	x := rng.Float64() * world
	y := rng.Float64() * world
	return geom.NewRect(x, y, x+rng.Float64()*maxSide, y+rng.Float64()*maxSide)
}

func buildRandom(t *testing.T, params Params, n int, seed int64) (*Tree, []Item) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tree := New(params)
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{ID: EntryID(i), Rect: randRect(rng, 1000, 20)}
		tree.Insert(items[i].ID, items[i].Rect)
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after %d inserts: %v", n, err)
	}
	return tree, items
}

func TestEmptyTree(t *testing.T) {
	tree := New(smallParams())
	if tree.Len() != 0 {
		t.Errorf("Len = %d, want 0", tree.Len())
	}
	if tree.Height() != 1 {
		t.Errorf("Height = %d, want 1", tree.Height())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Errorf("empty tree integrity: %v", err)
	}
	if tree.Count(geom.NewRect(0, 0, 1, 1)) != 0 {
		t.Error("empty tree returned results")
	}
	if !tree.MBR().IsEmpty() {
		t.Error("empty tree MBR not empty")
	}
}

func TestInsertFewNoSplit(t *testing.T) {
	tree := New(smallParams())
	for i := 0; i < 5; i++ {
		tree.Insert(EntryID(i), geom.NewRect(float64(i), 0, float64(i)+0.5, 1))
	}
	if tree.Height() != 1 {
		t.Errorf("Height = %d, want 1 (no split yet)", tree.Height())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestRootSplitGrowsHeight(t *testing.T) {
	tree := New(smallParams())
	for i := 0; i < 6; i++ {
		tree.Insert(EntryID(i), geom.NewRect(float64(i), 0, float64(i)+0.5, 1))
	}
	if tree.Height() != 2 {
		t.Errorf("Height = %d, want 2 after root split", tree.Height())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 6 {
		t.Errorf("Len = %d, want 6", tree.Len())
	}
}

func TestInsertInvalidRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(empty rect) did not panic")
		}
	}()
	New(smallParams()).Insert(0, geom.EmptyRect())
}

func TestSearchMatchesBruteForce(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 500, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		q := randRect(rng, 1000, 120)
		got := map[EntryID]bool{}
		tree.Search(q, func(id EntryID, r geom.Rect) bool {
			if !r.Intersects(q) {
				t.Fatalf("Search returned non-intersecting entry %d", id)
			}
			got[id] = true
			return true
		})
		want := 0
		for _, it := range items {
			if it.Rect.Intersects(q) {
				want++
				if !got[it.ID] {
					t.Fatalf("trial %d: Search missed entry %d", trial, it.ID)
				}
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), want)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 100, 3)
	calls := 0
	tree.Search(tree.MBR(), func(EntryID, geom.Rect) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("visitor called %d times, want exactly 5", calls)
	}
}

func TestLargeBuildIntegrityAndUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("large build")
	}
	tree, _ := buildRandom(t, DefaultParams(), 20000, 4)
	s := tree.Stats()
	if s.DataEntries != 20000 {
		t.Fatalf("DataEntries = %d", s.DataEntries)
	}
	// R*-tree utilization is typically around 70%; accept a broad band.
	if s.AvgLeafFill < 0.55 || s.AvgLeafFill > 0.95 {
		t.Errorf("leaf utilization %.2f outside [0.55, 0.95]", s.AvgLeafFill)
	}
	if s.Height < 3 {
		t.Errorf("height %d suspiciously small for 20k entries at fanout 26", s.Height)
	}
}

func TestDuplicateRectsAllowed(t *testing.T) {
	tree := New(smallParams())
	r := geom.NewRect(1, 1, 2, 2)
	for i := 0; i < 50; i++ {
		tree.Insert(EntryID(i), r)
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if got := tree.Count(r); got != 50 {
		t.Fatalf("Count = %d, want 50", got)
	}
}

func TestDeleteBasic(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 200, 5)
	for i, it := range items {
		if !tree.Delete(it.ID, it.Rect) {
			t.Fatalf("Delete(%d) not found", it.ID)
		}
		if tree.Len() != len(items)-i-1 {
			t.Fatalf("Len = %d after %d deletes", tree.Len(), i+1)
		}
		if i%20 == 0 {
			if err := tree.CheckIntegrity(); err != nil {
				t.Fatalf("integrity after deleting %d: %v", i+1, err)
			}
		}
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after deleting all: %v", err)
	}
	if tree.Height() != 1 {
		t.Errorf("height after deleting all = %d, want 1", tree.Height())
	}
}

func TestDeleteNotFound(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 50, 6)
	if tree.Delete(999, geom.NewRect(0, 0, 1, 1)) {
		t.Error("Delete of absent id returned true")
	}
	// Same rect, wrong id.
	if tree.Delete(999, items[0].Rect) {
		t.Error("Delete with mismatched id returned true")
	}
	if tree.Len() != 50 {
		t.Errorf("Len changed to %d", tree.Len())
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree := New(smallParams())
	live := map[EntryID]geom.Rect{}
	next := EntryID(0)
	for step := 0; step < 2000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			r := randRect(rng, 100, 5)
			tree.Insert(next, r)
			live[next] = r
			next++
		} else {
			// Delete a pseudo-random live entry deterministically.
			k := EntryID(-1)
			target := rng.Intn(len(live))
			i := 0
			for id := EntryID(0); id < next; id++ {
				if _, ok := live[id]; ok {
					if i == target {
						k = id
						break
					}
					i++
				}
			}
			if !tree.Delete(k, live[k]) {
				t.Fatalf("step %d: Delete(%d) failed", step, k)
			}
			delete(live, k)
		}
		if step%200 == 0 {
			if err := tree.CheckIntegrity(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tree.Len() != len(live) {
				t.Fatalf("step %d: Len=%d, live=%d", step, tree.Len(), len(live))
			}
		}
	}
	// Final full verification via search.
	found := 0
	tree.Search(geom.NewRect(-1, -1, 101, 101), func(id EntryID, r geom.Rect) bool {
		if want, ok := live[id]; !ok || want != r {
			t.Fatalf("entry %d/%v not expected", id, r)
		}
		found++
		return true
	})
	if found != len(live) {
		t.Fatalf("found %d entries, want %d", found, len(live))
	}
}

func TestStatsTable1Shape(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 300, 8)
	s := tree.Stats()
	if s.DataEntries != 300 {
		t.Errorf("DataEntries = %d", s.DataEntries)
	}
	if s.DataPages == 0 || s.DirectoryPages == 0 {
		t.Errorf("pages = %d/%d, want > 0", s.DataPages, s.DirectoryPages)
	}
	dataPages, dirPages := tree.NumPages()
	if dataPages != s.DataPages || dirPages != s.DirectoryPages {
		t.Errorf("NumPages (%d,%d) != Stats (%d,%d)",
			dataPages, dirPages, s.DataPages, s.DirectoryPages)
	}
	if s.RootEntries != len(tree.Node(tree.Root()).Entries) {
		t.Error("RootEntries mismatch")
	}
}

func TestNodeKind(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 50, 9)
	tree.Walk(func(n *Node) {
		want := storage.DirectoryPage
		if n.Level == 0 {
			want = storage.DataPage
		}
		if n.Kind() != want {
			t.Fatalf("page %d level %d kind %v", n.Page, n.Level, n.Kind())
		}
	})
}

func TestAccessFreedPagePanics(t *testing.T) {
	tree := New(smallParams())
	defer func() {
		if recover() == nil {
			t.Fatal("Node(freed) did not panic")
		}
	}()
	tree.Node(storage.PageID(999))
}

func TestParamsValidate(t *testing.T) {
	cases := []Params{
		{MaxDirEntries: 2, MaxDataEntries: 10, MinFillFrac: 0.4, ReinsertFrac: 0.3},
		{MaxDirEntries: 10, MaxDataEntries: 10, MinFillFrac: 0, ReinsertFrac: 0.3},
		{MaxDirEntries: 10, MaxDataEntries: 10, MinFillFrac: 0.7, ReinsertFrac: 0.3},
		{MaxDirEntries: 10, MaxDataEntries: 10, MinFillFrac: 0.4, ReinsertFrac: 1.0},
	}
	for i, p := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic for %+v", i, p)
				}
			}()
			New(p)
		}()
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.MaxDirEntries != 102 {
		t.Errorf("MaxDirEntries = %d, want 102 (4096/40)", p.MaxDirEntries)
	}
	if p.MaxDataEntries != 26 {
		t.Errorf("MaxDataEntries = %d, want 26 (4096/156)", p.MaxDataEntries)
	}
}

func TestReinsertDisabled(t *testing.T) {
	// ReinsertFrac 0 must still build a correct tree (pure split mode).
	p := smallParams()
	p.ReinsertFrac = 0
	rng := rand.New(rand.NewSource(10))
	tree := New(p)
	for i := 0; i < 300; i++ {
		tree.Insert(EntryID(i), randRect(rng, 100, 5))
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionDeterministic(t *testing.T) {
	build := func() Stats {
		rng := rand.New(rand.NewSource(11))
		tree := New(smallParams())
		for i := 0; i < 500; i++ {
			tree.Insert(EntryID(i), randRect(rng, 100, 5))
		}
		return tree.Stats()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("two identical builds differ: %+v vs %+v", a, b)
	}
}
