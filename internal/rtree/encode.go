package rtree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"spjoin/internal/geom"
	"spjoin/internal/storage"
)

// Binary tree serialization. The format mirrors the paged layout the paper
// assumes on disk: a fixed header followed by one record per page in page-
// number order, so page numbers — and therefore the disk-array placement —
// survive a round trip exactly.
//
// Layout (all little-endian):
//
//	magic "RST1" | params (4 × u32/f64) | size u64 | root i32 | pageCount u32
//	per page: present u8 | level u16 | parent i32 | entryCount u16 | entries
//	per entry: rect (4 × f64) | child i32 | obj i32
const encodeMagic = "RST1"

// WriteTo serializes the tree. It implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(encodeMagic)
	writeU32(&buf, uint32(t.params.MaxDirEntries))
	writeU32(&buf, uint32(t.params.MaxDataEntries))
	writeF64(&buf, t.params.MinFillFrac)
	writeF64(&buf, t.params.ReinsertFrac)
	buf.WriteByte(byte(t.params.Split))
	writeU64(&buf, uint64(t.size))
	writeI32(&buf, int32(t.root))
	writeU32(&buf, uint32(len(t.nodes)))
	for _, n := range t.nodes {
		if n == nil {
			buf.WriteByte(0)
			continue
		}
		buf.WriteByte(1)
		writeU16(&buf, uint16(n.Level))
		writeI32(&buf, int32(n.Parent))
		writeU16(&buf, uint16(len(n.Entries)))
		for i := range n.Entries {
			e := &n.Entries[i]
			writeF64(&buf, e.Rect.MinX)
			writeF64(&buf, e.Rect.MinY)
			writeF64(&buf, e.Rect.MaxX)
			writeF64(&buf, e.Rect.MaxY)
			writeI32(&buf, int32(e.Child))
			writeI32(&buf, int32(e.Obj))
		}
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadTree deserializes a tree written by WriteTo and verifies its
// structural integrity.
func ReadTree(r io.Reader) (*Tree, error) {
	br := &byteReader{r: r}
	magic := make([]byte, 4)
	br.read(magic)
	if string(magic) != encodeMagic {
		return nil, fmt.Errorf("rtree: bad magic %q", magic)
	}
	params := Params{
		MaxDirEntries:  int(br.u32()),
		MaxDataEntries: int(br.u32()),
		MinFillFrac:    br.f64(),
		ReinsertFrac:   br.f64(),
		Split:          SplitStrategy(br.u8()),
	}
	size := int(br.u64())
	root := storage.PageID(br.i32())
	pageCount := int(br.u32())
	if br.err != nil {
		return nil, fmt.Errorf("rtree: truncated header: %w", br.err)
	}
	if pageCount < 0 || pageCount > 1<<28 {
		return nil, fmt.Errorf("rtree: implausible page count %d", pageCount)
	}

	t := &Tree{params: params, root: root, size: size}
	t.nodes = make([]*Node, pageCount)
	for page := 0; page < pageCount; page++ {
		present := br.u8()
		if present == 0 {
			continue
		}
		n := &Node{
			Page:   storage.PageID(page),
			Level:  int(br.u16()),
			Parent: storage.PageID(br.i32()),
		}
		entryCount := int(br.u16())
		if br.err != nil {
			return nil, fmt.Errorf("rtree: truncated page %d: %w", page, br.err)
		}
		maxEntries := params.MaxDirEntries
		if maxEntries < params.MaxDataEntries {
			maxEntries = params.MaxDataEntries
		}
		if entryCount > maxEntries {
			return nil, fmt.Errorf("rtree: page %d claims %d entries (max %d)",
				page, entryCount, maxEntries)
		}
		if entryCount > 0 {
			n.Entries = make([]Entry, entryCount)
		}
		for i := range n.Entries {
			e := &n.Entries[i]
			e.Rect = geom.Rect{
				MinX: br.f64(), MinY: br.f64(),
				MaxX: br.f64(), MaxY: br.f64(),
			}
			e.Child = storage.PageID(br.i32())
			e.Obj = EntryID(br.i32())
		}
		t.nodes[page] = n
	}
	if br.err != nil {
		return nil, fmt.Errorf("rtree: truncated body: %w", br.err)
	}
	if err := t.CheckIntegrity(); err != nil {
		return nil, fmt.Errorf("rtree: decoded tree invalid: %w", err)
	}
	t.PrepareSweep()
	return t, nil
}

// --- little-endian helpers ----------------------------------------------

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeI32(buf *bytes.Buffer, v int32) { writeU32(buf, uint32(v)) }

func writeF64(buf *bytes.Buffer, v float64) { writeU64(buf, math.Float64bits(v)) }

// byteReader reads fixed-width little-endian values, remembering the first
// error so call sites stay linear.
type byteReader struct {
	r   io.Reader
	err error
}

func (b *byteReader) read(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = io.ReadFull(b.r, p)
}

func (b *byteReader) u8() uint8 {
	var p [1]byte
	b.read(p[:])
	return p[0]
}

func (b *byteReader) u16() uint16 {
	var p [2]byte
	b.read(p[:])
	return binary.LittleEndian.Uint16(p[:])
}

func (b *byteReader) u32() uint32 {
	var p [4]byte
	b.read(p[:])
	return binary.LittleEndian.Uint32(p[:])
}

func (b *byteReader) u64() uint64 {
	var p [8]byte
	b.read(p[:])
	return binary.LittleEndian.Uint64(p[:])
}

func (b *byteReader) i32() int32 { return int32(b.u32()) }

func (b *byteReader) f64() float64 { return math.Float64frombits(b.u64()) }
