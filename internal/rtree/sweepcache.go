package rtree

import (
	"fmt"
	"math"

	"spjoin/internal/geom"
)

// Per-node sweep cache. R*-tree nodes are immutable once a tree is built
// (the paper builds its trees and joins them read-only), yet each node
// participates in many node-pair expansions during a join. The join kernel
// therefore needs, over and over, the same three derived views of a node:
// a structure-of-arrays copy of the entry rectangles, the entry order
// sorted by lower x-value (the plane-sweep order of §2.2), and the node's
// MBR. The cache computes them once per node — at bulk-load/decode time for
// trees built in one shot, lazily on first join use otherwise — so the
// kernel never sorts or copies entry rects on the hot path.
//
// Dynamic trees stay correct: every operation that changes a node's entry
// list (insert, split, reinsertion, deletion, MBR adjustment) drops the
// node's cache, and the next join rebuilds it.
type sweepCache struct {
	// rects[i] is Entries[i].Rect — contiguous, so the sweep's inner loop
	// walks 32-byte rects instead of 48-byte entries.
	rects []geom.Rect
	// order holds the entry indices sorted by (MinX, MinY, index).
	order []int32
	// mbr is the union of all entry rects.
	mbr geom.Rect
	// planes is the coordinate-plane (SoA) view of rects, in entry order,
	// with the quantized mirror built over mbr — what the vectorized
	// filter kernels consume. Entry order (not sweep order) keeps visit
	// orders and bitmask index spaces identical to the rect view.
	planes geom.Planes
}

// ensureSweep returns the node's sweep cache, building it if absent. The
// build is deterministic, so rebuilding is always safe; however, a first
// call is a write to the node — callers joining one tree from several
// goroutines must precompute the caches with Tree.PrepareSweep.
func (n *Node) ensureSweep() *sweepCache {
	if n.sweep != nil {
		return n.sweep
	}
	c := &sweepCache{
		rects: make([]geom.Rect, len(n.Entries)),
		order: make([]int32, len(n.Entries)),
		mbr:   geom.EmptyRect(),
	}
	for i := range n.Entries {
		r := n.Entries[i].Rect
		c.rects[i] = r
		c.order[i] = int32(i)
		c.mbr = c.mbr.Union(r)
	}
	geom.SortOrderByMinX(c.rects, c.order)
	c.planes.FromRects(c.rects)
	c.planes.Quantize(c.mbr)
	n.sweep = c
	return c
}

// SweepView returns the node's cached join views: the entry rectangles as a
// contiguous slice (aligned with Entries), the entry order sorted by
// ascending (MinX, MinY, index), and the node's MBR. The returned slices
// are shared — callers must not modify them. The cache is built on first
// use; see ensureSweep for the concurrency contract.
func (n *Node) SweepView() (rects []geom.Rect, order []int32, mbr geom.Rect) {
	c := n.ensureSweep()
	return c.rects, c.order, c.mbr
}

// PlanesView returns the node's cached coordinate-plane view (aligned
// with Entries, quantized over the node MBR), the MinX-sorted entry
// order, and the node MBR. Shared, read-only; same build/concurrency
// contract as SweepView.
func (n *Node) PlanesView() (planes *geom.Planes, order []int32, mbr geom.Rect) {
	c := n.ensureSweep()
	return &c.planes, c.order, c.mbr
}

// invalidateSweep drops the cached views. Every mutation of n.Entries —
// appends, rebuilds, and in-place rectangle adjustments — must call this.
func (n *Node) invalidateSweep() {
	n.sweep = nil
}

// checkSweepCache verifies that a present cache still matches the node's
// entries — a stale cache means some mutation path forgot invalidateSweep.
// CheckIntegrity runs it on every node, so the test suite catches missed
// invalidations immediately. A nil cache is always fine.
func (n *Node) checkSweepCache() error {
	c := n.sweep
	if c == nil {
		return nil
	}
	if len(c.rects) != len(n.Entries) || len(c.order) != len(n.Entries) {
		return fmt.Errorf("rtree: page %d sweep cache holds %d rects for %d entries (stale cache)",
			n.Page, len(c.rects), len(n.Entries))
	}
	for i := range n.Entries {
		if c.rects[i] != n.Entries[i].Rect {
			return fmt.Errorf("rtree: page %d sweep cache rect %d = %v, entry has %v (stale cache)",
				n.Page, i, c.rects[i], n.Entries[i].Rect)
		}
	}
	for i := 1; i < len(c.order); i++ {
		a, b := c.rects[c.order[i-1]], c.rects[c.order[i]]
		if !rectOrderOK(a, b, int(c.order[i-1]), int(c.order[i])) {
			return fmt.Errorf("rtree: page %d sweep order broken at %d (stale cache)", n.Page, i)
		}
	}
	if c.planes.Len() != len(n.Entries) {
		return fmt.Errorf("rtree: page %d sweep cache planes hold %d rects for %d entries (stale cache)",
			n.Page, c.planes.Len(), len(n.Entries))
	}
	if !c.planes.HasQuant() {
		return fmt.Errorf("rtree: page %d sweep cache planes lack the quantized mirror", n.Page)
	}
	for i := range n.Entries {
		if !rectBitsEqual(c.planes.RectAt(i), n.Entries[i].Rect) {
			return fmt.Errorf("rtree: page %d sweep cache plane %d = %v, entry has %v (stale cache)",
				n.Page, i, c.planes.RectAt(i), n.Entries[i].Rect)
		}
	}
	return nil
}

// rectBitsEqual compares two rects bit for bit (so a faithfully copied
// NaN coordinate does not read as stale).
func rectBitsEqual(a, b geom.Rect) bool {
	return math.Float64bits(a.MinX) == math.Float64bits(b.MinX) &&
		math.Float64bits(a.MinY) == math.Float64bits(b.MinY) &&
		math.Float64bits(a.MaxX) == math.Float64bits(b.MaxX) &&
		math.Float64bits(a.MaxY) == math.Float64bits(b.MaxY)
}

// rectOrderOK reports whether (a, ia) may precede (b, ib) in sweep order.
func rectOrderOK(a, b geom.Rect, ia, ib int) bool {
	if a.MinX != b.MinX {
		return a.MinX < b.MinX
	}
	if a.MinY != b.MinY {
		return a.MinY < b.MinY
	}
	return ia < ib
}

// PrepareSweep precomputes the sweep cache of every live node. Call it once
// before joining a tree from multiple goroutines: afterwards SweepView only
// reads, so concurrent joins need no synchronization on the tree.
func (t *Tree) PrepareSweep() {
	for _, n := range t.nodes {
		if n != nil {
			n.ensureSweep()
		}
	}
}
