// Package rtree implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger [BKSS 90]: a height-balanced, paged spatial access method storing
// minimum bounding rectangles. It provides the classic dynamic operations
// (insert with forced reinsertion, margin-driven node splitting, deletion
// with tree condensation), window queries, and an STR bulk loader as an
// extension.
//
// Nodes are kept in an in-memory node store addressed by page number; page
// numbers are assigned densely in allocation order, which is what the
// paper's simulated disk array keys on (page mod #disks). The buffer and
// disk layers charge virtual-time costs per page access while the node data
// itself always stays addressable, cleanly separating correctness from the
// cost model.
package rtree

import (
	"fmt"

	"spjoin/internal/geom"
	"spjoin/internal/storage"
)

// EntryID identifies one spatial object (a data entry).
type EntryID int32

// Entry is one slot of a node: in a directory node Child points to the node
// one level below and Rect is that subtree's MBR; in a leaf Obj identifies
// the object whose MBR is Rect.
type Entry struct {
	Rect  geom.Rect
	Child storage.PageID // directory entry: child page, else InvalidPage
	Obj   EntryID        // leaf entry: object id
}

// Node is one page of the tree. Level 0 nodes are leaves (data pages);
// higher levels are directory pages. The paper's trees have height 3, i.e.
// root level 2.
type Node struct {
	Page    storage.PageID
	Parent  storage.PageID // InvalidPage for the root
	Level   int
	Entries []Entry

	// sweep caches the join views of this node (SoA rects, MinX order,
	// MBR); nil until built. See sweepcache.go.
	sweep *sweepCache
}

// Kind returns the storage classification of the node's page.
func (n *Node) Kind() storage.PageKind {
	if n.Level == 0 {
		return storage.DataPage
	}
	return storage.DirectoryPage
}

// MBR returns the minimum bounding rectangle of all entries.
func (n *Node) MBR() geom.Rect {
	mbr := geom.EmptyRect()
	for i := range n.Entries {
		mbr = mbr.Union(n.Entries[i].Rect)
	}
	return mbr
}

// Params fixes the page geometry of a tree. The paper's configuration is
// 4 KB pages with 40-byte directory entries and 156-byte data entries.
type Params struct {
	// MaxDirEntries is the directory page capacity (paper: 4096/40 = 102).
	MaxDirEntries int
	// MaxDataEntries is the data page capacity (paper: 4096/156 = 26).
	MaxDataEntries int
	// MinFillFrac is the minimum node utilization m/M (R*-tree default 0.4).
	MinFillFrac float64
	// ReinsertFrac is the share of entries removed on forced reinsertion
	// (R*-tree default 0.3; set 0 for Guttman behavior).
	ReinsertFrac float64
	// Split selects the node-splitting algorithm; the zero value is the
	// R*-tree split, QuadraticSplit/LinearSplit give Guttman's R-tree.
	Split SplitStrategy
}

// DefaultParams returns the paper's page configuration.
func DefaultParams() Params {
	return ParamsForPageSize(4096, 40, 156)
}

// ParamsForPageSize derives capacities from a page size and entry sizes in
// bytes, with the standard R*-tree tuning constants.
func ParamsForPageSize(pageSize, dirEntrySize, dataEntrySize int) Params {
	return Params{
		MaxDirEntries:  pageSize / dirEntrySize,
		MaxDataEntries: pageSize / dataEntrySize,
		MinFillFrac:    0.4,
		ReinsertFrac:   0.3,
	}
}

// validate panics on unusable parameters; tree construction is programmer
// controlled, so misconfiguration is a bug rather than a runtime error.
func (p Params) validate() {
	if p.MaxDirEntries < 4 || p.MaxDataEntries < 4 {
		panic(fmt.Sprintf("rtree: capacities too small: dir=%d data=%d (need >= 4)",
			p.MaxDirEntries, p.MaxDataEntries))
	}
	if p.MinFillFrac <= 0 || p.MinFillFrac > 0.5 {
		panic(fmt.Sprintf("rtree: MinFillFrac %g out of (0, 0.5]", p.MinFillFrac))
	}
	if p.ReinsertFrac < 0 || p.ReinsertFrac >= 1 {
		panic(fmt.Sprintf("rtree: ReinsertFrac %g out of [0, 1)", p.ReinsertFrac))
	}
}

// Tree is an R*-tree. Create trees with New; the zero value is not usable.
type Tree struct {
	params Params
	nodes  []*Node // node store indexed by PageID
	root   storage.PageID
	size   int // number of data entries
}

// New returns an empty R*-tree with the given page parameters.
func New(params Params) *Tree {
	params.validate()
	t := &Tree{params: params, root: storage.InvalidPage}
	t.root = t.allocNode(0).Page
	return t
}

// Params returns the tree's page parameters.
func (t *Tree) Params() Params { return t.params }

// Len returns the number of data entries.
func (t *Tree) Len() int { return t.size }

// Root returns the root's page number.
func (t *Tree) Root() storage.PageID { return t.root }

// Height returns the number of levels (paper convention: a root at level 2
// gives height 3). An empty tree has height 1.
func (t *Tree) Height() int { return t.node(t.root).Level + 1 }

// Node returns the node stored on the given page. It panics on an invalid
// or stale page number.
func (t *Tree) Node(id storage.PageID) *Node {
	n := t.node(id)
	if n == nil {
		panic(fmt.Sprintf("rtree: access to freed page %d", id))
	}
	return n
}

// NumPages returns the number of allocated (live) pages by kind.
func (t *Tree) NumPages() (dataPages, dirPages int) {
	for _, n := range t.nodes {
		if n == nil {
			continue
		}
		if n.Level == 0 {
			dataPages++
		} else {
			dirPages++
		}
	}
	return dataPages, dirPages
}

// MBR returns the bounding rectangle of the whole tree (empty if no data).
func (t *Tree) MBR() geom.Rect { return t.node(t.root).MBR() }

func (t *Tree) node(id storage.PageID) *Node {
	if id < 0 || int(id) >= len(t.nodes) {
		return nil
	}
	return t.nodes[id]
}

// allocNode appends a fresh node at the given level and returns it. Page
// numbers grow densely; freed pages are not recycled (the paper builds its
// trees once and joins them read-only, so fragmentation is irrelevant and
// stable numbering keeps disk placement reproducible).
func (t *Tree) allocNode(level int) *Node {
	n := &Node{
		Page:   storage.PageID(len(t.nodes)),
		Parent: storage.InvalidPage,
		Level:  level,
	}
	t.nodes = append(t.nodes, n)
	return n
}

// freeNode drops a node from the store (used by deletion's condense step).
func (t *Tree) freeNode(id storage.PageID) {
	t.nodes[id] = nil
}

// capacity returns the maximum entry count of n.
func (t *Tree) capacity(n *Node) int {
	if n.Level == 0 {
		return t.params.MaxDataEntries
	}
	return t.params.MaxDirEntries
}

// minFill returns the minimum entry count of a non-root node at n's level.
func (t *Tree) minFill(n *Node) int {
	m := int(t.params.MinFillFrac * float64(t.capacity(n)))
	if m < 1 {
		m = 1
	}
	return m
}

// Search calls visit for every data entry whose MBR intersects query.
// Returning false stops the search. It returns the number of node accesses
// performed (for tuning experiments).
//
// Nodes carrying a sweep cache (built by PrepareSweep or a previous join)
// are scanned through the vectorized batch kernel over the cached
// coordinate planes; the per-entry predicate, visit order, early stop and
// access count are identical either way.
func (t *Tree) Search(query geom.Rect, visit func(id EntryID, r geom.Rect) bool) int {
	accesses := 0
	var rec func(id storage.PageID) bool
	rec = func(id storage.PageID) bool {
		n := t.Node(id)
		accesses++
		if c := n.sweep; c != nil && len(n.Entries) <= 128 {
			var mask [2]uint64
			geom.IntersectBatchPlanes(query, &c.planes, mask[:])
			for i := range n.Entries {
				if mask[i>>6]>>(uint(i)&63)&1 == 0 {
					continue
				}
				e := &n.Entries[i]
				if n.Level == 0 {
					if !visit(e.Obj, e.Rect) {
						return false
					}
				} else if !rec(e.Child) {
					return false
				}
			}
			return true
		}
		for i := range n.Entries {
			e := &n.Entries[i]
			if !e.Rect.Intersects(query) {
				continue
			}
			if n.Level == 0 {
				if !visit(e.Obj, e.Rect) {
					return false
				}
			} else if !rec(e.Child) {
				return false
			}
		}
		return true
	}
	rec(t.root)
	return accesses
}

// Count returns the number of data entries intersecting query.
func (t *Tree) Count(query geom.Rect) int {
	count := 0
	t.Search(query, func(EntryID, geom.Rect) bool {
		count++
		return true
	})
	return count
}

// Walk visits every live node, top-down. Used by integrity checks and
// statistics.
func (t *Tree) Walk(visit func(n *Node)) {
	var rec func(id storage.PageID)
	rec = func(id storage.PageID) {
		n := t.Node(id)
		visit(n)
		if n.Level > 0 {
			for i := range n.Entries {
				rec(n.Entries[i].Child)
			}
		}
	}
	rec(t.root)
}
