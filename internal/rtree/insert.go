package rtree

import (
	"sort"

	"spjoin/internal/geom"
	"spjoin/internal/storage"
)

// Insert adds one data entry (object id with its MBR) to the tree, using the
// full R*-tree insertion algorithm: ChooseSubtree, forced reinsertion on the
// first overflow per level, and the margin-driven split otherwise.
func (t *Tree) Insert(id EntryID, r geom.Rect) {
	if !r.Valid() {
		panic("rtree: Insert with invalid rectangle " + r.String())
	}
	// One reinsertion per level per top-level insertion ([BKSS 90] OT1).
	reinserted := make(map[int]bool)
	t.insertEntry(Entry{Rect: r, Child: storage.InvalidPage, Obj: id}, 0, reinserted)
	t.size++
}

// insertEntry places e at the given level, handling overflow treatment.
func (t *Tree) insertEntry(e Entry, level int, reinserted map[int]bool) {
	n := t.chooseSubtree(e.Rect, level)
	n.Entries = append(n.Entries, e)
	n.invalidateSweep()
	if level > 0 {
		t.Node(e.Child).Parent = n.Page
	}
	if len(n.Entries) > t.capacity(n) {
		t.overflow(n, reinserted)
	} else {
		t.adjustMBRUp(n)
	}
}

// chooseSubtree descends from the root to the node at the target level along
// the least-enlargement path ([BKSS 90] CS2): when the children are leaves,
// pick the entry whose rectangle needs the least overlap enlargement;
// otherwise the least area enlargement. Ties fall to smaller area, then to
// lower entry index for determinism.
func (t *Tree) chooseSubtree(r geom.Rect, level int) *Node {
	n := t.Node(t.root)
	for n.Level > level {
		best := 0
		if t.params.Split == RStarSplit && n.Level == 1 && level == 0 {
			best = pickMinOverlapEnlargement(n.Entries, r)
		} else {
			// Guttman's ChooseLeaf (and the R*-tree directory criterion):
			// least area enlargement.
			best = pickMinAreaEnlargement(n.Entries, r)
		}
		n = t.Node(n.Entries[best].Child)
	}
	return n
}

// pickMinOverlapEnlargement returns the index of the entry whose rectangle's
// overlap with its siblings grows least when extended by r.
func pickMinOverlapEnlargement(entries []Entry, r geom.Rect) int {
	best := 0
	bestOverlap := overlapEnlargement(entries, 0, r)
	bestArea := entries[0].Rect.Enlargement(r)
	for i := 1; i < len(entries); i++ {
		o := overlapEnlargement(entries, i, r)
		if o > bestOverlap {
			continue
		}
		a := entries[i].Rect.Enlargement(r)
		if o < bestOverlap || a < bestArea ||
			(a == bestArea && entries[i].Rect.Area() < entries[best].Rect.Area()) {
			best, bestOverlap, bestArea = i, o, a
		}
	}
	return best
}

// overlapEnlargement computes how much the total overlap of entries[i] with
// its siblings increases when entries[i].Rect is enlarged to include r.
func overlapEnlargement(entries []Entry, i int, r geom.Rect) float64 {
	old := entries[i].Rect
	grown := old.Union(r)
	var delta float64
	for j := range entries {
		if j == i {
			continue
		}
		delta += grown.OverlapArea(entries[j].Rect) - old.OverlapArea(entries[j].Rect)
	}
	return delta
}

// pickMinAreaEnlargement returns the index of the entry needing the least
// area enlargement to include r; ties fall to smaller area.
func pickMinAreaEnlargement(entries []Entry, r geom.Rect) int {
	best := 0
	bestEnl := entries[0].Rect.Enlargement(r)
	bestArea := entries[0].Rect.Area()
	for i := 1; i < len(entries); i++ {
		enl := entries[i].Rect.Enlargement(r)
		area := entries[i].Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// overflow applies the R*-tree overflow treatment to a node holding one
// entry beyond capacity: forced reinsertion on the first overflow at the
// node's level, split otherwise.
func (t *Tree) overflow(n *Node, reinserted map[int]bool) {
	if n.Page != t.root && !reinserted[n.Level] && t.params.ReinsertFrac > 0 {
		reinserted[n.Level] = true
		t.reinsert(n, reinserted)
		return
	}
	t.splitNode(n, reinserted)
}

// reinsert removes the ReinsertFrac share of entries whose centers lie
// farthest from the node's MBR center and re-inserts them top-down ("close
// reinsert": nearest first), tightening the node.
func (t *Tree) reinsert(n *Node, reinserted map[int]bool) {
	p := int(t.params.ReinsertFrac * float64(len(n.Entries)))
	if p < 1 {
		p = 1
	}
	center := n.MBR()
	type distEntry struct {
		dist float64
		e    Entry
	}
	all := make([]distEntry, len(n.Entries))
	for i, e := range n.Entries {
		all[i] = distEntry{dist: e.Rect.CenterDist2(center), e: e}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].dist > all[j].dist })

	removed := make([]Entry, p)
	for i := 0; i < p; i++ {
		removed[i] = all[i].e
	}
	n.Entries = n.Entries[:0]
	for i := p; i < len(all); i++ {
		n.Entries = append(n.Entries, all[i].e)
	}
	n.invalidateSweep()
	t.adjustMBRUp(n)

	// Close reinsert: smallest distance first (reverse of removal order).
	for i := p - 1; i >= 0; i-- {
		t.insertEntry(removed[i], n.Level, reinserted)
	}
}

// adjustMBRUp recomputes the parent entry rectangles along the path from n
// to the root. It stops early once an ancestor's stored MBR is already
// exact.
func (t *Tree) adjustMBRUp(n *Node) {
	for n.Parent != storage.InvalidPage {
		parent := t.Node(n.Parent)
		i := parent.entryIndexOf(n.Page)
		mbr := n.MBR()
		if parent.Entries[i].Rect == mbr {
			return
		}
		parent.Entries[i].Rect = mbr
		parent.invalidateSweep()
		n = parent
	}
}

// entryIndexOf returns the index of the entry pointing at child.
func (n *Node) entryIndexOf(child storage.PageID) int {
	for i := range n.Entries {
		if n.Entries[i].Child == child {
			return i
		}
	}
	panic("rtree: parent/child link broken")
}
