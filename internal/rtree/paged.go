package rtree

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"spjoin/internal/geom"
	"spjoin/internal/pagefile"
	"spjoin/internal/storage"
)

// Real paged persistence: a tree is stored one node per 4 KB page in a
// pagefile.File, preserving the node numbering (file page = node page + 1,
// page 0 being the file header). A PagedTree then serves nodes through a
// real pinning buffer pool, so joins and queries can run out-of-core with
// actual I/O — the disk-resident setting the paper assumes, as opposed to
// the cost-model simulation of package storage.

// node page layout (little-endian):
//
//	level u16 | entryCount u16 | parent i32 | present u8 | entries... |
//	... | crc32 (IEEE, over bytes [0, PageSize-4)) in the last 4 bytes
//	entry: minx,miny,maxx,maxy f64 | child i32 | obj i32   (40 bytes)
const (
	pageHdrLevel   = 0
	pageHdrCount   = 2
	pageHdrParent  = 4
	pageHdrPresent = 8
	pageHdrSize    = 9
	pageEntrySize  = 40
	pageCrcOffset  = pagefile.PageSize - 4
)

// maxEntriesPerPage is how many 40-byte entries fit between header and
// checksum.
const maxEntriesPerPage = (pageCrcOffset - pageHdrSize) / pageEntrySize

// pagedMetaSize is the tree metadata stored in the file header.
const pagedMetaSize = 4 + 4 + 8 + 8 + 1 + 8 + 4 + 4

// SaveToPageFile writes the tree into a freshly created page file, one node
// per page, and stores the tree metadata in the file header. The file must
// be empty (just created).
func (t *Tree) SaveToPageFile(pf *pagefile.File) error {
	if pf.PageCount() != 1 {
		return fmt.Errorf("rtree: SaveToPageFile needs an empty page file, got %d pages", pf.PageCount())
	}
	if t.params.MaxDirEntries > maxEntriesPerPage || t.params.MaxDataEntries > maxEntriesPerPage {
		return fmt.Errorf("rtree: fanout %d/%d exceeds page capacity %d",
			t.params.MaxDirEntries, t.params.MaxDataEntries, maxEntriesPerPage)
	}
	var buf [pagefile.PageSize]byte
	for _, n := range t.nodes {
		id, err := pf.Allocate()
		if err != nil {
			return err
		}
		for i := range buf {
			buf[i] = 0
		}
		if n != nil {
			if err := encodeNodePage(n, buf[:]); err != nil {
				return err
			}
		}
		if err := pf.WritePage(id, buf[:]); err != nil {
			return err
		}
	}
	meta := make([]byte, pagedMetaSize)
	binary.LittleEndian.PutUint32(meta[0:], uint32(t.params.MaxDirEntries))
	binary.LittleEndian.PutUint32(meta[4:], uint32(t.params.MaxDataEntries))
	binary.LittleEndian.PutUint64(meta[8:], math.Float64bits(t.params.MinFillFrac))
	binary.LittleEndian.PutUint64(meta[16:], math.Float64bits(t.params.ReinsertFrac))
	meta[24] = byte(t.params.Split)
	binary.LittleEndian.PutUint64(meta[25:], uint64(t.size))
	binary.LittleEndian.PutUint32(meta[33:], uint32(t.root))
	binary.LittleEndian.PutUint32(meta[37:], uint32(len(t.nodes)))
	if err := pf.SetMeta(meta); err != nil {
		return err
	}
	return pf.Sync()
}

func encodeNodePage(n *Node, buf []byte) error {
	if len(n.Entries) > maxEntriesPerPage {
		return fmt.Errorf("rtree: node %d has %d entries, page fits %d",
			n.Page, len(n.Entries), maxEntriesPerPage)
	}
	binary.LittleEndian.PutUint16(buf[pageHdrLevel:], uint16(n.Level))
	binary.LittleEndian.PutUint16(buf[pageHdrCount:], uint16(len(n.Entries)))
	binary.LittleEndian.PutUint32(buf[pageHdrParent:], uint32(int32(n.Parent)))
	buf[pageHdrPresent] = 1
	off := pageHdrSize
	for i := range n.Entries {
		e := &n.Entries[i]
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.MinX))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(e.Rect.MinY))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(e.Rect.MaxX))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(e.Rect.MaxY))
		binary.LittleEndian.PutUint32(buf[off+32:], uint32(int32(e.Child)))
		binary.LittleEndian.PutUint32(buf[off+36:], uint32(int32(e.Obj)))
		off += pageEntrySize
	}
	binary.LittleEndian.PutUint32(buf[pageCrcOffset:], crc32.ChecksumIEEE(buf[:pageCrcOffset]))
	return nil
}

func decodeNodePage(page storage.PageID, buf []byte) (*Node, error) {
	if buf[pageHdrPresent] == 0 {
		return nil, fmt.Errorf("rtree: page %d holds no node", page)
	}
	want := binary.LittleEndian.Uint32(buf[pageCrcOffset:])
	if got := crc32.ChecksumIEEE(buf[:pageCrcOffset]); got != want {
		return nil, fmt.Errorf("rtree: page %d checksum mismatch (%08x != %08x): on-disk corruption",
			page, got, want)
	}
	n := &Node{
		Page:   page,
		Level:  int(binary.LittleEndian.Uint16(buf[pageHdrLevel:])),
		Parent: storage.PageID(int32(binary.LittleEndian.Uint32(buf[pageHdrParent:]))),
	}
	count := int(binary.LittleEndian.Uint16(buf[pageHdrCount:]))
	if count > maxEntriesPerPage {
		return nil, fmt.Errorf("rtree: page %d claims %d entries", page, count)
	}
	n.Entries = make([]Entry, count)
	off := pageHdrSize
	for i := range n.Entries {
		e := &n.Entries[i]
		e.Rect = geom.Rect{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+24:])),
		}
		e.Child = storage.PageID(int32(binary.LittleEndian.Uint32(buf[off+32:])))
		e.Obj = EntryID(int32(binary.LittleEndian.Uint32(buf[off+36:])))
		off += pageEntrySize
	}
	// Decoded nodes are private to the caller and read-only; building the
	// sweep cache at load time keeps the join kernel sort-free out-of-core
	// too.
	n.ensureSweep()
	return n, nil
}

// PagedTree serves a persisted tree's nodes through a real buffer pool.
// It is read-only; Node and Search are safe for concurrent use because the
// buffer pool serializes all page access.
type PagedTree struct {
	pf     *pagefile.File
	pool   *pagefile.BufferPool
	params Params
	root   storage.PageID
	size   int
	pages  int
}

// OpenPagedTree opens a tree saved with SaveToPageFile, buffering up to
// poolFrames pages in memory.
func OpenPagedTree(pf *pagefile.File, poolFrames int) (*PagedTree, error) {
	meta := pf.Meta()
	if len(meta) != pagedMetaSize {
		return nil, fmt.Errorf("rtree: page file metadata %d bytes, want %d", len(meta), pagedMetaSize)
	}
	pt := &PagedTree{
		pf:   pf,
		pool: pagefile.NewBufferPool(pf, poolFrames),
		params: Params{
			MaxDirEntries:  int(binary.LittleEndian.Uint32(meta[0:])),
			MaxDataEntries: int(binary.LittleEndian.Uint32(meta[4:])),
			MinFillFrac:    math.Float64frombits(binary.LittleEndian.Uint64(meta[8:])),
			ReinsertFrac:   math.Float64frombits(binary.LittleEndian.Uint64(meta[16:])),
			Split:          SplitStrategy(meta[24]),
		},
		size:  int(binary.LittleEndian.Uint64(meta[25:])),
		root:  storage.PageID(int32(binary.LittleEndian.Uint32(meta[33:]))),
		pages: int(binary.LittleEndian.Uint32(meta[37:])),
	}
	if pt.pages+1 != pf.PageCount() {
		return nil, fmt.Errorf("rtree: metadata claims %d node pages, file has %d",
			pt.pages, pf.PageCount()-1)
	}
	return pt, nil
}

// Params returns the stored page parameters.
func (pt *PagedTree) Params() Params { return pt.params }

// Len returns the number of data entries.
func (pt *PagedTree) Len() int { return pt.size }

// Root returns the root node's page number.
func (pt *PagedTree) Root() storage.PageID { return pt.root }

// Pool exposes the buffer pool (I/O statistics).
func (pt *PagedTree) Pool() *pagefile.BufferPool { return pt.pool }

// Node reads (through the buffer pool) and decodes one node.
func (pt *PagedTree) Node(page storage.PageID) (*Node, error) {
	if page < 0 || int(page) >= pt.pages {
		return nil, fmt.Errorf("rtree: page %d out of range [0, %d)", page, pt.pages)
	}
	fileID := pagefile.PageID(page + 1)
	buf, err := pt.pool.Fix(fileID)
	if err != nil {
		return nil, err
	}
	defer pt.pool.Unfix(fileID)
	return decodeNodePage(page, buf)
}

// CheckIntegrity verifies the persisted tree's structural invariants the
// way Tree.CheckIntegrity does, reading every node through the pool: page
// checksums (enforced by decoding), directory MBRs matching subtree MBRs,
// fill bounds, level steps, parent pointers, and the reachable entry count.
func (pt *PagedTree) CheckIntegrity() error {
	root, err := pt.Node(pt.root)
	if err != nil {
		return err
	}
	if root.Parent != storage.InvalidPage {
		return fmt.Errorf("rtree: root has parent %d", root.Parent)
	}
	minFill := func(n *Node) int {
		capacity := pt.params.MaxDirEntries
		if n.Level == 0 {
			capacity = pt.params.MaxDataEntries
		}
		m := int(pt.params.MinFillFrac * float64(capacity))
		if m < 1 {
			m = 1
		}
		return m
	}
	count := 0
	var check func(n *Node) error
	check = func(n *Node) error {
		if n.Page != pt.root && len(n.Entries) < minFill(n) {
			return fmt.Errorf("rtree: page %d underfull: %d < %d",
				n.Page, len(n.Entries), minFill(n))
		}
		for i := range n.Entries {
			e := &n.Entries[i]
			if n.Level == 0 {
				count++
				continue
			}
			child, err := pt.Node(e.Child)
			if err != nil {
				return err
			}
			if child.Level != n.Level-1 {
				return fmt.Errorf("rtree: page %d (level %d) has child %d at level %d",
					n.Page, n.Level, child.Page, child.Level)
			}
			if child.Parent != n.Page {
				return fmt.Errorf("rtree: child %d parent pointer %d, want %d",
					child.Page, child.Parent, n.Page)
			}
			if got := child.MBR(); e.Rect != got {
				return fmt.Errorf("rtree: page %d entry %d MBR %v, subtree MBR %v",
					n.Page, i, e.Rect, got)
			}
			if err := check(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(root); err != nil {
		return err
	}
	if count != pt.size {
		return fmt.Errorf("rtree: reachable entries %d != stored size %d", count, pt.size)
	}
	return nil
}

// Stats walks the persisted tree and computes the same summary as
// Tree.Stats.
func (pt *PagedTree) Stats() (Stats, error) {
	s := Stats{DataEntries: pt.size}
	if pt.size == 0 {
		s.Height = 1
		return s, nil
	}
	var leafEntries, dirEntries int
	var rec func(page storage.PageID) error
	rec = func(page storage.PageID) error {
		n, err := pt.Node(page)
		if err != nil {
			return err
		}
		if n.Level+1 > s.Height {
			s.Height = n.Level + 1
		}
		if n.Level == 0 {
			s.DataPages++
			leafEntries += len(n.Entries)
			return nil
		}
		s.DirectoryPages++
		dirEntries += len(n.Entries)
		for i := range n.Entries {
			if err := rec(n.Entries[i].Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(pt.root); err != nil {
		return s, err
	}
	root, err := pt.Node(pt.root)
	if err != nil {
		return s, err
	}
	s.RootEntries = len(root.Entries)
	if s.DataPages > 0 {
		s.AvgLeafFill = float64(leafEntries) / float64(s.DataPages*pt.params.MaxDataEntries)
	}
	if s.DirectoryPages > 0 {
		s.AvgDirFill = float64(dirEntries) / float64(s.DirectoryPages*pt.params.MaxDirEntries)
	}
	return s, nil
}

// Search runs a window query against the paged tree.
func (pt *PagedTree) Search(query geom.Rect, visit func(id EntryID, r geom.Rect) bool) error {
	if pt.size == 0 {
		return nil
	}
	var rec func(page storage.PageID) (bool, error)
	rec = func(page storage.PageID) (bool, error) {
		n, err := pt.Node(page)
		if err != nil {
			return false, err
		}
		for i := range n.Entries {
			e := &n.Entries[i]
			if !e.Rect.Intersects(query) {
				continue
			}
			if n.Level == 0 {
				if !visit(e.Obj, e.Rect) {
					return false, nil
				}
			} else if cont, err := rec(e.Child); err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec(pt.root)
	return err
}
