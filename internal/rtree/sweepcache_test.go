package rtree

import (
	"testing"

	"spjoin/internal/geom"
)

// sweepViewMatchesEntries checks one node's sweep view against its live
// entries: same rects, order sorted by the (MinX, MinY, index) total order.
func sweepViewMatchesEntries(t *testing.T, n *Node) {
	t.Helper()
	rects, order, mbr := n.SweepView()
	if len(rects) != len(n.Entries) || len(order) != len(n.Entries) {
		t.Fatalf("page %d: view sizes %d/%d, want %d",
			n.Page, len(rects), len(order), len(n.Entries))
	}
	for i, e := range n.Entries {
		if rects[i] != e.Rect {
			t.Fatalf("page %d: cached rect %d = %v, want %v", n.Page, i, rects[i], e.Rect)
		}
	}
	for k := 1; k < len(order); k++ {
		a, b := rects[order[k-1]], rects[order[k]]
		if !rectLessByMinX(a, b, int(order[k-1]), int(order[k])) {
			t.Fatalf("page %d: cached order not sorted at %d", n.Page, k)
		}
	}
	if len(n.Entries) > 0 && mbr != n.MBR() {
		t.Fatalf("page %d: cached MBR %v, want %v", n.Page, mbr, n.MBR())
	}
}

func rectLessByMinX(a, b geom.Rect, ia, ib int) bool {
	if a.MinX != b.MinX {
		return a.MinX < b.MinX
	}
	if a.MinY != b.MinY {
		return a.MinY < b.MinY
	}
	return ia < ib
}

func TestSweepCacheFreshAfterInserts(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 200, 31)
	tree.PrepareSweep()
	// Mutate while caches exist: every touched node must invalidate.
	more := randomItems(200, 32)
	for _, it := range more {
		tree.Insert(it.ID+10000, it.Rect)
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatalf("stale sweep cache after inserts: %v", err)
	}
	tree.eachNode(func(n *Node) { sweepViewMatchesEntries(t, n) })
	_ = items
}

func TestSweepCacheFreshAfterDeletes(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 300, 33)
	tree.PrepareSweep()
	for i := 0; i < 250; i++ {
		if !tree.Delete(items[i].ID, items[i].Rect) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatalf("stale sweep cache after deletes: %v", err)
	}
	tree.eachNode(func(n *Node) { sweepViewMatchesEntries(t, n) })
}

func TestSweepCacheInterleavedMutations(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 150, 34)
	for round := 0; round < 4; round++ {
		tree.PrepareSweep()
		extra := randomItems(50, int64(35+round))
		for _, it := range extra {
			tree.Insert(it.ID+EntryID(20000+round*1000), it.Rect)
		}
		for i := round * 20; i < (round+1)*20; i++ {
			if !tree.Delete(items[i].ID, items[i].Rect) {
				t.Fatalf("round %d: delete %d failed", round, i)
			}
		}
		if err := tree.CheckIntegrity(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestPrepareSweepBuildsEveryNode(t *testing.T) {
	tree := BulkLoadSTR(DefaultParams(), randomItems(2000, 36), 0.73)
	// BulkLoadSTR prepares eagerly already; verify the invariant holds.
	count := 0
	tree.eachNode(func(n *Node) {
		count++
		if n.sweep == nil {
			t.Fatalf("page %d has no sweep cache after bulk load", n.Page)
		}
		sweepViewMatchesEntries(t, n)
	})
	if count == 0 {
		t.Fatal("no nodes visited")
	}
}

// eachNode visits every live node of the tree (test helper).
func (t *Tree) eachNode(visit func(*Node)) {
	for _, n := range t.nodes {
		if n != nil {
			visit(n)
		}
	}
}
