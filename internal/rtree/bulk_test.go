package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spjoin/internal/geom"
)

func randomItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: EntryID(i), Rect: randRect(rng, 1000, 10)}
	}
	return items
}

func TestBulkLoadEmpty(t *testing.T) {
	tree := BulkLoadSTR(smallParams(), nil, 1.0)
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Fatalf("empty STR tree: len=%d height=%d", tree.Len(), tree.Height())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadSingle(t *testing.T) {
	tree := BulkLoadSTR(smallParams(), randomItems(1, 1), 1.0)
	if tree.Len() != 1 || tree.Height() != 1 {
		t.Fatalf("len=%d height=%d", tree.Len(), tree.Height())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadIntegritySizes(t *testing.T) {
	for _, n := range []int{2, 5, 6, 25, 26, 27, 100, 1000} {
		tree := BulkLoadSTR(smallParams(), randomItems(n, int64(n)), 1.0)
		if tree.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tree.Len())
		}
		if err := tree.CheckIntegrity(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBulkLoadSearchMatchesBruteForce(t *testing.T) {
	items := randomItems(2000, 3)
	tree := BulkLoadSTR(DefaultParams(), items, 0.9)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		q := randRect(rng, 1000, 150)
		got := 0
		tree.Search(q, func(id EntryID, r geom.Rect) bool {
			got++
			return true
		})
		want := 0
		for _, it := range items {
			if it.Rect.Intersects(q) {
				want++
			}
		}
		if got != want {
			t.Fatalf("trial %d: %d results, want %d", trial, got, want)
		}
	}
}

func TestBulkLoadUtilization(t *testing.T) {
	tree := BulkLoadSTR(DefaultParams(), randomItems(10000, 5), 1.0)
	s := tree.Stats()
	if s.AvgLeafFill < 0.95 {
		t.Errorf("STR fill 1.0 gave leaf utilization %.2f, want >= 0.95", s.AvgLeafFill)
	}
	tree70 := BulkLoadSTR(DefaultParams(), randomItems(10000, 5), 0.7)
	s70 := tree70.Stats()
	if s70.DataPages <= s.DataPages {
		t.Errorf("fill 0.7 should need more data pages: %d vs %d",
			s70.DataPages, s.DataPages)
	}
}

func TestBulkLoadRejectsBadFill(t *testing.T) {
	for _, fill := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fill %g: no panic", fill)
				}
			}()
			BulkLoadSTR(smallParams(), randomItems(10, 1), fill)
		}()
	}
}

func TestBulkLoadSupportsMutation(t *testing.T) {
	// An STR-built tree must accept subsequent inserts and deletes.
	items := randomItems(500, 6)
	tree := BulkLoadSTR(smallParams(), items, 0.8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		tree.Insert(EntryID(1000+i), randRect(rng, 1000, 10))
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
	for i := 0; i < 200; i++ {
		if !tree.Delete(items[i].ID, items[i].Rect) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatalf("after deletes: %v", err)
	}
	if tree.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tree.Len())
	}
}

func TestQuickBulkLoadAllReachable(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%300 + 1
		items := randomItems(n, seed)
		tree := BulkLoadSTR(smallParams(), items, 1.0)
		if err := tree.CheckIntegrity(); err != nil {
			return false
		}
		seen := map[EntryID]bool{}
		tree.Search(tree.MBR(), func(id EntryID, r geom.Rect) bool {
			seen[id] = true
			return true
		})
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree := New(DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Insert(EntryID(i), randRect(rng, 10000, 10))
	}
}

func BenchmarkBulkLoadSTR10k(b *testing.B) {
	items := randomItems(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoadSTR(DefaultParams(), items, 1.0)
	}
}

func BenchmarkSearch(b *testing.B) {
	tree := BulkLoadSTR(DefaultParams(), randomItems(50000, 1), 0.9)
	rng := rand.New(rand.NewSource(2))
	queries := make([]geom.Rect, 256)
	for i := range queries {
		queries[i] = randRect(rng, 1000, 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Search(queries[i%len(queries)], func(EntryID, geom.Rect) bool { return true })
	}
}
