package rtree

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"spjoin/internal/storage"
)

// Parallel STR bulk load. The sequential loader's per-level work — one
// global stable sort by center x, per-slab stable sorts by center y, and
// entry copies into nodes — is embarrassingly parallel, and because a
// stable sort's output is a unique sequence (equal keys keep input order),
// a chunked stable sort + stable merge produces exactly the permutation
// sort.SliceStable would. Page numbers are assigned by the owner goroutine
// in the same dense order allocNode uses, so the parallel loader's trees
// are byte-identical to BulkLoadSTR's under WriteTo.
//
// The identity argument requires the comparators to be strict weak orders,
// which holds for any input without NaN coordinates (NaN centers make
// "stable sort" itself ambiguous; such rects are rejected by
// CheckIntegrity anyway).

// Thresholds below which the parallel paths fall back to the sequential
// code: goroutine fan-out costs more than it saves on small inputs.
// Package variables so tests can force the parallel path on tiny trees.
var (
	parallelBulkMinItems   = 4096
	parallelPackMinEntries = 2048
)

// BulkLoadSTRParallel builds the same tree as BulkLoadSTR — byte-identical
// under WriteTo — using the given number of goroutines for the sort, pack,
// and sweep-cache phases. workers <= 0 means GOMAXPROCS. Small inputs and
// workers == 1 fall back to the sequential loader.
func BulkLoadSTRParallel(params Params, items []Item, fill float64, workers int) *Tree {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(items) < parallelBulkMinItems {
		return BulkLoadSTR(params, items, fill)
	}
	params.validate()
	if fill <= 0 || fill > 1 {
		panic("rtree: STR fill factor out of (0, 1]")
	}
	t := &Tree{params: params, root: storage.InvalidPage}
	if len(items) == 0 {
		t.root = t.allocNode(0).Page
		return t
	}

	leafCap := int(float64(params.MaxDataEntries) * fill)
	if leafCap < 1 {
		leafCap = 1
	}
	entries := make([]Entry, len(items))
	parallelRanges(workers, len(items), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			entries[i] = Entry{Rect: items[i].Rect, Child: storage.InvalidPage, Obj: items[i].ID}
		}
	})
	level := 0
	nodes := t.packLevelParallel(entries, level, leafCap, workers)

	dirCap := int(float64(params.MaxDirEntries) * fill)
	if dirCap < 2 {
		dirCap = 2
	}
	for len(nodes) > 1 {
		level++
		parentEntries := make([]Entry, len(nodes))
		for i, n := range nodes {
			parentEntries[i] = Entry{Rect: n.MBR(), Child: n.Page, Obj: -1}
		}
		levelCap := dirCap
		if len(parentEntries) <= params.MaxDirEntries {
			levelCap = params.MaxDirEntries
		}
		parents := t.packLevelParallel(parentEntries, level, levelCap, workers)
		for _, p := range parents {
			for i := range p.Entries {
				t.Node(p.Entries[i].Child).Parent = p.Page
			}
		}
		nodes = parents
	}
	t.root = nodes[0].Page
	t.size = len(items)
	parallelRanges(workers, len(t.nodes), func(lo, hi int) {
		for _, n := range t.nodes[lo:hi] {
			if n != nil {
				n.ensureSweep()
			}
		}
	})
	return t
}

// packLevelParallel is packLevel with the sorts and entry copies spread
// over workers goroutines. The node boundaries are identical to the
// sequential tiling: sliceSize is a multiple of maxEntries, so every run
// of maxEntries entries starts at a global multiple of maxEntries and
// node k holds entries [k*maxEntries, (k+1)*maxEntries).
func (t *Tree) packLevelParallel(entries []Entry, level, maxEntries, workers int) []*Node {
	if workers == 1 || len(entries) < parallelPackMinEntries {
		return t.packLevel(entries, level, maxEntries)
	}
	p := (len(entries) + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(p))))
	sliceSize := sliceCount * maxEntries

	parallelStableSort(entries, workers, func(a, b *Entry) bool {
		return a.Rect.CenterX() < b.Rect.CenterX()
	})

	slabs := (len(entries) + sliceSize - 1) / sliceSize
	parallelRanges(workers, slabs, func(lo, hi int) {
		for slab := lo; slab < hi; slab++ {
			start := slab * sliceSize
			end := start + sliceSize
			if end > len(entries) {
				end = len(entries)
			}
			slice := entries[start:end]
			sort.SliceStable(slice, func(i, j int) bool {
				return slice[i].Rect.CenterY() < slice[j].Rect.CenterY()
			})
		}
	})

	// allocNode sequentially so page numbering matches the sequential
	// loader exactly; only the entry copies fan out.
	nodes := make([]*Node, p)
	for k := range nodes {
		nodes[k] = t.allocNode(level)
	}
	parallelRanges(workers, p, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			s := k * maxEntries
			e := s + maxEntries
			if e > len(entries) {
				e = len(entries)
			}
			nodes[k].Entries = append([]Entry(nil), entries[s:e]...)
		}
	})
	return t.rebalanceTail(nodes)
}

// parallelRanges splits [0, n) into one contiguous range per worker and
// runs f on each concurrently, returning when all are done.
func parallelRanges(workers, n int, f func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			f(lo, hi)
		}()
	}
	wg.Wait()
}

// parallelStableSort sorts entries exactly as sort.SliceStable(entries,
// less) would: contiguous chunks are stable-sorted concurrently, then
// adjacent runs are merged pairwise with ties taken from the left run.
// Chunks partition the input in order, so left-priority merging preserves
// the original order of equal keys — the defining property of the (unique)
// stable sort result.
func parallelStableSort(entries []Entry, workers int, less func(a, b *Entry) bool) {
	n := len(entries)
	if n == 0 {
		return
	}
	chunks := workers
	if chunks > n {
		chunks = n
	}
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		bounds[i] = n * i / chunks
	}
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		s := entries[bounds[c]:bounds[c+1]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sort.SliceStable(s, func(i, j int) bool { return less(&s[i], &s[j]) })
		}()
	}
	wg.Wait()

	scratch := make([]Entry, n)
	src, dst := entries, scratch
	for len(bounds) > 2 {
		merged := make([]int, 1, len(bounds)/2+2)
		var wg sync.WaitGroup
		runs := len(bounds) - 1
		for r := 0; r < runs; r += 2 {
			lo := bounds[r]
			if r+1 == runs { // odd run out: carry it into dst unchanged
				hi := bounds[r+1]
				wg.Add(1)
				go func() {
					defer wg.Done()
					copy(dst[lo:hi], src[lo:hi])
				}()
				merged = append(merged, hi)
				continue
			}
			mid, hi := bounds[r+1], bounds[r+2]
			wg.Add(1)
			go func() {
				defer wg.Done()
				mergeStable(dst[lo:hi], src[lo:mid], src[mid:hi], less)
			}()
			merged = append(merged, hi)
		}
		wg.Wait()
		bounds = merged
		src, dst = dst, src
	}
	if &src[0] != &entries[0] {
		copy(entries, src)
	}
}

// mergeStable merges sorted runs a and b into dst (len(dst) == len(a) +
// len(b)), taking from a on ties so stability is preserved when a precedes
// b in the original order.
func mergeStable(dst, a, b []Entry, less func(x, y *Entry) bool) {
	k := 0
	for len(a) > 0 && len(b) > 0 {
		if less(&b[0], &a[0]) {
			dst[k] = b[0]
			b = b[1:]
		} else {
			dst[k] = a[0]
			a = a[1:]
		}
		k++
	}
	copy(dst[k:], a)
	copy(dst[k+len(a):], b)
}
