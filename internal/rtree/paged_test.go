package rtree

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spjoin/internal/geom"
	"spjoin/internal/pagefile"
	"spjoin/internal/storage"
)

func savedTree(t *testing.T, tree *Tree, poolFrames int) *PagedTree {
	t.Helper()
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "tree.spjf"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	if err := tree.SaveToPageFile(pf); err != nil {
		t.Fatal(err)
	}
	pt, err := OpenPagedTree(pf, poolFrames)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestPagedTreeRoundTrip(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 400, 61)
	pt := savedTree(t, tree, 64)
	if pt.Len() != tree.Len() || pt.Root() != tree.Root() || pt.Params() != tree.Params() {
		t.Fatalf("metadata mismatch: %d/%d %d/%d", pt.Len(), tree.Len(), pt.Root(), tree.Root())
	}
	// Every node identical.
	tree.Walk(func(n *Node) {
		got, err := pt.Node(n.Page)
		if err != nil {
			t.Fatalf("Node(%d): %v", n.Page, err)
		}
		if got.Level != n.Level || got.Parent != n.Parent || len(got.Entries) != len(n.Entries) {
			t.Fatalf("node %d header mismatch", n.Page)
		}
		for i := range n.Entries {
			if got.Entries[i] != n.Entries[i] {
				t.Fatalf("node %d entry %d differs", n.Page, i)
			}
		}
	})
	_ = items
}

func TestPagedTreeSearchMatchesInMemory(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 600, 62)
	pt := savedTree(t, tree, 16) // pool much smaller than the tree
	queries := []geom.Rect{
		geom.NewRect(0, 0, 100, 100),
		geom.NewRect(500, 500, 600, 600),
		geom.NewRect(-10, -10, 2000, 2000),
	}
	for qi, q := range queries {
		want := map[EntryID]bool{}
		tree.Search(q, func(id EntryID, _ geom.Rect) bool {
			want[id] = true
			return true
		})
		got := map[EntryID]bool{}
		if err := pt.Search(q, func(id EntryID, _ geom.Rect) bool {
			got[id] = true
			return true
		}); err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
	}
	_ = items
	if pt.Pool().Misses() == 0 {
		t.Fatal("no physical reads happened")
	}
}

func TestPagedTreeSmallPoolEvicts(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 600, 63)
	pt := savedTree(t, tree, 4)
	// Two full scans: the tiny pool forces re-reads on the second scan.
	all := geom.NewRect(-1e9, -1e9, 1e9, 1e9)
	pt.Search(all, func(EntryID, geom.Rect) bool { return true })
	first := pt.Pool().Misses()
	pt.Search(all, func(EntryID, geom.Rect) bool { return true })
	second := pt.Pool().Misses() - first
	if second == 0 {
		t.Fatal("second scan hit entirely in a 4-frame pool — impossible")
	}
}

func TestSaveToPageFileRejectsNonEmpty(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 10, 64)
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "x.spjf"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, err := pf.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := tree.SaveToPageFile(pf); err == nil {
		t.Fatal("save into non-empty file succeeded")
	}
}

func TestSaveToPageFileRejectsHugeFanout(t *testing.T) {
	tree := New(Params{MaxDirEntries: 200, MaxDataEntries: 26, MinFillFrac: 0.4, ReinsertFrac: 0.3})
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "y.spjf"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if err := tree.SaveToPageFile(pf); err == nil {
		t.Fatal("fanout beyond page capacity accepted")
	}
}

func TestOpenPagedTreeRejectsBadMeta(t *testing.T) {
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "z.spjf"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, err := OpenPagedTree(pf, 8); err == nil {
		t.Fatal("open of non-tree page file succeeded")
	}
}

func TestPagedTreeDefaultParamsFanoutFits(t *testing.T) {
	// The paper's page geometry must fit the real page layout.
	if DefaultParams().MaxDirEntries > maxEntriesPerPage {
		t.Fatalf("directory fanout %d exceeds real page capacity %d",
			DefaultParams().MaxDirEntries, maxEntriesPerPage)
	}
}

func TestPagedTreeWithFreedPages(t *testing.T) {
	tree, items := buildRandom(t, smallParams(), 300, 65)
	for i := 0; i < 150; i++ {
		tree.Delete(items[i].ID, items[i].Rect)
	}
	pt := savedTree(t, tree, 32)
	count := 0
	if err := pt.Search(geom.NewRect(-1e9, -1e9, 1e9, 1e9),
		func(EntryID, geom.Rect) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 150 {
		t.Fatalf("found %d entries, want 150", count)
	}
	// Reading a freed node page must error, not crash.
	freed := false
	for p := 0; p < pt.pages; p++ {
		if _, err := pt.Node(storage.PageID(p)); err != nil {
			freed = true
			break
		}
	}
	if !freed {
		t.Log("no freed pages encountered (tree compacted differently); acceptable")
	}
}

func TestPagedTreeDetectsCorruption(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 100, 66)
	path := filepath.Join(t.TempDir(), "c.spjf")
	pf, err := pagefile.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.SaveToPageFile(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	// Flip one byte in the middle of the second page (the first node).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := int64(pagefile.PageSize + 100)
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	pf2, err := pagefile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	pt, err := OpenPagedTree(pf2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Node(0); err == nil {
		t.Fatal("corrupted page decoded without error")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption error lacks checksum mention: %v", err)
	}
}

func TestPagedNearestNeighborsMatchesInMemory(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 400, 67)
	pt := savedTree(t, tree, 16)
	for _, q := range [][2]float64{{0, 0}, {500, 500}, {1000, 0}} {
		want := tree.NearestNeighbors(q[0], q[1], 10)
		got, err := pt.NearestNeighbors(q[0], q[1], 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %v: %d results, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("query %v rank %d: dist %g, want %g", q, i, got[i].Dist, want[i].Dist)
			}
		}
	}
	// Edge cases mirror the in-memory API.
	if got, err := pt.NearestNeighbors(0, 0, 0); err != nil || got != nil {
		t.Fatalf("k=0: %v, %v", got, err)
	}
}

func TestPagedCheckIntegrity(t *testing.T) {
	tree, _ := buildRandom(t, smallParams(), 300, 68)
	pt := savedTree(t, tree, 16)
	if err := pt.CheckIntegrity(); err != nil {
		t.Fatalf("valid persisted tree failed verification: %v", err)
	}
}
