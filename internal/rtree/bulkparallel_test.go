package rtree

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// forceParallel lowers the fallback thresholds so the parallel code paths
// run even on tiny inputs, restoring them when the test ends.
func forceParallel(t *testing.T) {
	t.Helper()
	savedBulk, savedPack := parallelBulkMinItems, parallelPackMinEntries
	parallelBulkMinItems, parallelPackMinEntries = 0, 0
	t.Cleanup(func() {
		parallelBulkMinItems, parallelPackMinEntries = savedBulk, savedPack
	})
}

func encodeTree(t *testing.T, tree *Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// checkParallelIdentical builds the same input sequentially and in
// parallel and requires byte-identical WriteTo encodings — page numbering,
// node contents, parent pointers, everything.
func checkParallelIdentical(t *testing.T, params Params, items []Item, fill float64, workers int) {
	t.Helper()
	seq := BulkLoadSTR(params, items, fill)
	par := BulkLoadSTRParallel(params, items, fill, workers)
	if err := par.CheckIntegrity(); err != nil {
		t.Fatalf("n=%d fill=%g workers=%d: parallel tree invalid: %v",
			len(items), fill, workers, err)
	}
	if !bytes.Equal(encodeTree(t, seq), encodeTree(t, par)) {
		t.Fatalf("n=%d fill=%g workers=%d: parallel encoding differs from sequential",
			len(items), fill, workers)
	}
}

func TestBulkLoadSTRParallelByteIdentical(t *testing.T) {
	forceParallel(t)
	for _, n := range []int{0, 1, 2, 17, 18, 19, 100, 1000, 5000} {
		items := randomItems(n, int64(n)+11)
		for _, fill := range []float64{0.5, 0.73, 1.0} {
			for _, workers := range []int{2, 3, 8} {
				checkParallelIdentical(t, smallParams(), items, fill, workers)
			}
		}
	}
	// Paper-sized pages exercise very different slab geometry.
	checkParallelIdentical(t, DefaultParams(), randomItems(20000, 3), 0.73, 8)
}

// TestBulkLoadSTRParallelCorpusShapes replays every committed encode-fuzz
// corpus input through both loaders: the shapes the fuzzer found
// interesting for the serializer are exactly the ones with unusual tail /
// rebalance behavior.
func TestBulkLoadSTRParallelCorpusShapes(t *testing.T) {
	forceParallel(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzEncodeDecode")
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no encode fuzz corpus: %v", err)
	}
	tested := 0
	for _, f := range files {
		raw, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if !strings.HasPrefix(line, "[]byte(") {
				continue
			}
			quoted := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
			data, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("%s: bad corpus line %q: %v", f.Name(), line, err)
			}
			items := fuzzItems([]byte(data))
			for _, workers := range []int{2, 8} {
				checkParallelIdentical(t, DefaultParams(), items, 0.73, workers)
			}
			tested++
		}
	}
	if tested == 0 {
		t.Fatal("corpus directory exists but yielded no inputs")
	}
}

func TestBulkLoadSTRParallelFallback(t *testing.T) {
	// Below the threshold (or with one worker) the parallel entry point
	// must hand off to the sequential loader — trivially identical.
	items := randomItems(500, 9)
	checkParallelIdentical(t, smallParams(), items, 0.8, 1)
	checkParallelIdentical(t, smallParams(), items, 0.8, 4)
}

func BenchmarkBulkLoadSTR(b *testing.B) {
	items := randomItems(100000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoadSTR(DefaultParams(), items, 1.0)
	}
}

func BenchmarkBulkLoadSTRParallel(b *testing.B) {
	items := randomItems(100000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoadSTRParallel(DefaultParams(), items, 1.0, 0)
	}
}
