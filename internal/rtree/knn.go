package rtree

import (
	"container/heap"
	"math"

	"spjoin/internal/geom"
	"spjoin/internal/storage"
)

// Nearest-neighbor search — one of the "other operations such as neighbor
// and window queries" the paper's §5 names for its future parallel query
// framework. The implementation is the standard best-first traversal
// (Hjaltason/Samet): a priority queue ordered by minimum distance to the
// query point, mixing nodes and data entries.

// Neighbor is one nearest-neighbor result.
type Neighbor struct {
	ID   EntryID
	Rect geom.Rect
	// Dist is the minimum Euclidean distance from the query point to the
	// entry's MBR (0 if the point lies inside).
	Dist float64
}

// minDist returns the minimum distance from point (x, y) to rectangle r.
func minDist(x, y float64, r geom.Rect) float64 {
	dx := 0.0
	switch {
	case x < r.MinX:
		dx = r.MinX - x
	case x > r.MaxX:
		dx = x - r.MaxX
	}
	dy := 0.0
	switch {
	case y < r.MinY:
		dy = r.MinY - y
	case y > r.MaxY:
		dy = y - r.MaxY
	}
	return math.Sqrt(dx*dx + dy*dy)
}

// nodeMinDist is minDist for entry i of n, reading the coordinates from
// the node's sweep-cache planes when present: the kNN scan then walks four
// dense float64 streams instead of striding 48-byte entries. Same
// arithmetic on the same values, so distances are bit-identical.
func nodeMinDist(n *Node, x, y float64, i int) float64 {
	c := n.sweep
	if c == nil {
		return minDist(x, y, n.Entries[i].Rect)
	}
	p := &c.planes
	dx := 0.0
	switch {
	case x < p.MinX[i]:
		dx = p.MinX[i] - x
	case x > p.MaxX[i]:
		dx = x - p.MaxX[i]
	}
	dy := 0.0
	switch {
	case y < p.MinY[i]:
		dy = p.MinY[i] - y
	case y > p.MaxY[i]:
		dy = y - p.MaxY[i]
	}
	return math.Sqrt(dx*dx + dy*dy)
}

// nnItem is a priority-queue element: either a node to expand or a data
// entry (page == InvalidPage).
type nnItem struct {
	dist float64
	seq  int // tie-break for determinism
	page storage.PageID
	id   EntryID
	rect geom.Rect
}

type nnHeap []nnItem

func (h nnHeap) Len() int { return len(h) }
func (h nnHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].seq < h[j].seq
}
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NearestNeighbors returns the k data entries closest to the point (x, y)
// in ascending distance order (fewer if the tree holds fewer entries).
// Ties are broken deterministically by discovery order.
func (t *Tree) NearestNeighbors(x, y float64, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	var pq nnHeap
	seq := 0
	push := func(it nnItem) {
		it.seq = seq
		seq++
		heap.Push(&pq, it)
	}
	push(nnItem{dist: 0, page: t.root})

	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 && len(out) < k {
		it := heap.Pop(&pq).(nnItem)
		if it.page == storage.InvalidPage {
			out = append(out, Neighbor{ID: it.id, Rect: it.rect, Dist: it.dist})
			continue
		}
		n := t.Node(it.page)
		for i := range n.Entries {
			e := &n.Entries[i]
			d := nodeMinDist(n, x, y, i)
			if n.Level == 0 {
				push(nnItem{dist: d, page: storage.InvalidPage, id: e.Obj, rect: e.Rect})
			} else {
				push(nnItem{dist: d, page: e.Child})
			}
		}
	}
	return out
}

// Nearest returns the single closest entry to (x, y), or ok=false for an
// empty tree.
func (t *Tree) Nearest(x, y float64) (Neighbor, bool) {
	nn := t.NearestNeighbors(x, y, 1)
	if len(nn) == 0 {
		return Neighbor{}, false
	}
	return nn[0], true
}

// NearestNeighbors runs the same best-first search out-of-core against a
// persisted tree, paging nodes through the buffer pool.
func (pt *PagedTree) NearestNeighbors(x, y float64, k int) ([]Neighbor, error) {
	if k <= 0 || pt.size == 0 {
		return nil, nil
	}
	var pq nnHeap
	seq := 0
	push := func(it nnItem) {
		it.seq = seq
		seq++
		heap.Push(&pq, it)
	}
	push(nnItem{dist: 0, page: pt.root})

	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 && len(out) < k {
		it := heap.Pop(&pq).(nnItem)
		if it.page == storage.InvalidPage {
			out = append(out, Neighbor{ID: it.id, Rect: it.rect, Dist: it.dist})
			continue
		}
		n, err := pt.Node(it.page)
		if err != nil {
			return nil, err
		}
		for i := range n.Entries {
			e := &n.Entries[i]
			d := nodeMinDist(n, x, y, i)
			if n.Level == 0 {
				push(nnItem{dist: d, page: storage.InvalidPage, id: e.Obj, rect: e.Rect})
			} else {
				push(nnItem{dist: d, page: e.Child})
			}
		}
	}
	return out, nil
}
