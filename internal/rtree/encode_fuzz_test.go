package rtree

// Fuzz harness for the binary tree serialization: any tree the fuzzer can
// build — dynamic inserts with splits and reinsertions, bulk loads,
// deletions leaving free pages — must survive WriteTo/ReadTree with its
// structure, its page numbering and its sweep-cache views intact.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"spjoin/internal/geom"
)

// fuzzItems derives a deterministic item list from raw fuzz bytes: eight
// bytes per item, decoded as small integer coordinates so every rectangle
// is finite and well-formed (the encoder's job is structure, not NaN
// handling — CheckIntegrity rejects malformed rects independently).
func fuzzItems(data []byte) []Item {
	var items []Item
	for i := 0; i+8 <= len(data) && len(items) < 600; i += 8 {
		x := float64(int16(binary.LittleEndian.Uint16(data[i:])))
		y := float64(int16(binary.LittleEndian.Uint16(data[i+2:])))
		w := float64(data[i+4]%64) + 1
		h := float64(data[i+5]%64) + 1
		items = append(items, Item{
			ID:   EntryID(len(items) + 1),
			Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h},
		})
	}
	return items
}

func FuzzEncodeDecode(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add(bytes.Repeat([]byte{9, 30, 200, 14, 7, 250, 0, 1}, 40), uint8(1))
	f.Add(bytes.Repeat([]byte{0xff, 0x7f, 0, 0x80, 63, 63, 1, 2}, 120), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		items := fuzzItems(data)

		var tree *Tree
		switch mode % 3 {
		case 0: // dynamic build: exercises splits and reinsertions
			tree = New(DefaultParams())
			for _, it := range items {
				tree.Insert(it.ID, it.Rect)
			}
		case 1: // bulk load (STR packing, different page layout)
			tree = BulkLoadSTR(DefaultParams(), items, 0.73)
		default: // dynamic build, then delete a third: free pages, holes
			tree = New(DefaultParams())
			for _, it := range items {
				tree.Insert(it.ID, it.Rect)
			}
			for i, it := range items {
				if i%3 == 0 {
					tree.Delete(it.ID, it.Rect)
				}
			}
		}
		if err := tree.CheckIntegrity(); err != nil {
			t.Fatalf("built tree invalid before encoding: %v", err)
		}

		var buf bytes.Buffer
		if _, err := tree.WriteTo(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		decoded, err := ReadTree(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := decoded.CheckIntegrity(); err != nil {
			t.Fatalf("decoded tree invalid: %v", err)
		}

		if decoded.Len() != tree.Len() || decoded.Root() != tree.Root() ||
			len(decoded.nodes) != len(tree.nodes) {
			t.Fatalf("shape changed: len %d->%d root %d->%d pages %d->%d",
				tree.Len(), decoded.Len(), tree.Root(), decoded.Root(),
				len(tree.nodes), len(decoded.nodes))
		}
		tree.PrepareSweep()
		for page, orig := range tree.nodes {
			got := decoded.nodes[page]
			if (orig == nil) != (got == nil) {
				t.Fatalf("page %d: presence changed across round trip", page)
			}
			if orig == nil {
				continue
			}
			if got.Level != orig.Level || got.Parent != orig.Parent ||
				len(got.Entries) != len(orig.Entries) {
				t.Fatalf("page %d: header changed: level %d->%d parent %d->%d entries %d->%d",
					page, orig.Level, got.Level, orig.Parent, got.Parent,
					len(orig.Entries), len(got.Entries))
			}
			for i := range orig.Entries {
				if orig.Entries[i] != got.Entries[i] {
					t.Fatalf("page %d entry %d changed: %+v -> %+v",
						page, i, orig.Entries[i], got.Entries[i])
				}
			}
			// The decoded tree must present identical join views: same
			// rects, same plane-sweep order, same MBR.
			oRects, oOrder, oMBR := orig.SweepView()
			dRects, dOrder, dMBR := got.SweepView()
			if oMBR != dMBR || len(oRects) != len(dRects) || len(oOrder) != len(dOrder) {
				t.Fatalf("page %d: sweep view shape changed", page)
			}
			for i := range oRects {
				if oRects[i] != dRects[i] {
					t.Fatalf("page %d: sweep rect %d changed: %v -> %v", page, i, oRects[i], dRects[i])
				}
				if oOrder[i] != dOrder[i] {
					t.Fatalf("page %d: sweep order %d changed: %d -> %d", page, i, oOrder[i], dOrder[i])
				}
			}
		}
	})
}
