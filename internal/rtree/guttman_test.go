package rtree

import (
	"bytes"
	"math/rand"
	"testing"

	"spjoin/internal/geom"
)

func guttmanSmall(split SplitStrategy) Params {
	return Params{MaxDirEntries: 6, MaxDataEntries: 6, MinFillFrac: 0.4,
		ReinsertFrac: 0, Split: split}
}

func TestGuttmanParams(t *testing.T) {
	p := GuttmanParams(QuadraticSplit)
	if p.Split != QuadraticSplit || p.ReinsertFrac != 0 {
		t.Fatalf("GuttmanParams = %+v", p)
	}
	if p.MaxDirEntries != 102 {
		t.Fatal("page geometry must match the paper default")
	}
}

func TestSplitStrategyString(t *testing.T) {
	if RStarSplit.String() != "rstar" || QuadraticSplit.String() != "quadratic" ||
		LinearSplit.String() != "linear" {
		t.Fatal("SplitStrategy.String broken")
	}
	if SplitStrategy(9).String() == "" {
		t.Fatal("unknown strategy must format")
	}
}

func buildVariant(t *testing.T, split SplitStrategy, n int, seed int64) (*Tree, []Item) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tree := New(guttmanSmall(split))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: EntryID(i), Rect: randRect(rng, 1000, 20)}
		tree.Insert(items[i].ID, items[i].Rect)
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatalf("%v integrity: %v", split, err)
	}
	return tree, items
}

func TestGuttmanVariantsBuildAndSearch(t *testing.T) {
	for _, split := range []SplitStrategy{QuadraticSplit, LinearSplit} {
		tree, items := buildVariant(t, split, 800, int64(split))
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 20; trial++ {
			q := randRect(rng, 1000, 100)
			got := 0
			tree.Search(q, func(EntryID, geom.Rect) bool { got++; return true })
			want := 0
			for _, it := range items {
				if it.Rect.Intersects(q) {
					want++
				}
			}
			if got != want {
				t.Fatalf("%v trial %d: %d results, want %d", split, trial, got, want)
			}
		}
	}
}

func TestGuttmanDelete(t *testing.T) {
	for _, split := range []SplitStrategy{QuadraticSplit, LinearSplit} {
		tree, items := buildVariant(t, split, 300, 77)
		for i, it := range items {
			if !tree.Delete(it.ID, it.Rect) {
				t.Fatalf("%v: delete %d failed", split, i)
			}
		}
		if err := tree.CheckIntegrity(); err != nil {
			t.Fatalf("%v after deletes: %v", split, err)
		}
		if tree.Len() != 0 {
			t.Fatalf("%v: %d entries left", split, tree.Len())
		}
	}
}

func TestGuttmanEncodeRoundTrip(t *testing.T) {
	tree, _ := buildVariant(t, QuadraticSplit, 200, 78)
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params().Split != QuadraticSplit {
		t.Fatalf("split strategy lost in round trip: %v", got.Params().Split)
	}
}

func TestQuadraticSplitRespectsMinFill(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		entries := make([]Entry, 7)
		for i := range entries {
			entries[i] = Entry{Rect: randRect(rng, 100, 10), Obj: EntryID(i)}
		}
		g1, g2 := quadraticSplit(entries, 2)
		if len(g1) < 2 || len(g2) < 2 || len(g1)+len(g2) != 7 {
			t.Fatalf("trial %d: groups %d/%d", trial, len(g1), len(g2))
		}
	}
}

func TestLinearSplitRespectsMinFill(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		entries := make([]Entry, 7)
		for i := range entries {
			entries[i] = Entry{Rect: randRect(rng, 100, 10), Obj: EntryID(i)}
		}
		g1, g2 := linearSplit(entries, 2)
		if len(g1) < 2 || len(g2) < 2 || len(g1)+len(g2) != 7 {
			t.Fatalf("trial %d: groups %d/%d", trial, len(g1), len(g2))
		}
	}
}

func TestSplitsHandleIdenticalRects(t *testing.T) {
	r := geom.NewRect(1, 1, 2, 2)
	entries := make([]Entry, 7)
	for i := range entries {
		entries[i] = Entry{Rect: r, Obj: EntryID(i)}
	}
	for _, split := range []func([]Entry, int) ([]Entry, []Entry){
		quadraticSplit, linearSplit, rstarSplit,
	} {
		g1, g2 := split(entries, 2)
		if len(g1) < 2 || len(g2) < 2 || len(g1)+len(g2) != 7 {
			t.Fatalf("degenerate split gave %d/%d", len(g1), len(g2))
		}
	}
}

func TestRStarBeatsGuttmanOnOverlap(t *testing.T) {
	// The R*-tree's raison d'être: less directory overlap means fewer node
	// accesses per window query. Verify the ordering holds on a clustered
	// workload (this is the family comparison behind the ablation bench).
	rng := rand.New(rand.NewSource(8))
	items := make([]Item, 3000)
	for i := range items {
		cx, cy := float64(i%10)*100, float64((i/10)%10)*100
		x := cx + rng.NormFloat64()*20
		y := cy + rng.NormFloat64()*20
		items[i] = Item{ID: EntryID(i), Rect: geom.NewRect(x, y, x+rng.Float64()*5, y+rng.Float64()*5)}
	}
	build := func(p Params) *Tree {
		tr := New(p)
		for _, it := range items {
			tr.Insert(it.ID, it.Rect)
		}
		return tr
	}
	rstar := build(Params{MaxDirEntries: 10, MaxDataEntries: 10, MinFillFrac: 0.4, ReinsertFrac: 0.3})
	gutt := build(guttmanSmall(QuadraticSplit))
	accesses := func(tr *Tree) int {
		total := 0
		qrng := rand.New(rand.NewSource(9))
		for q := 0; q < 200; q++ {
			x, y := qrng.Float64()*1000, qrng.Float64()*1000
			total += tr.Search(geom.NewRect(x, y, x+30, y+30),
				func(EntryID, geom.Rect) bool { return true })
		}
		return total
	}
	ra, ga := accesses(rstar), accesses(gutt)
	// Different fanouts (10 vs 6) make a strict comparison unfair; rebuild
	// Guttman with the same fanout.
	gutt10 := build(Params{MaxDirEntries: 10, MaxDataEntries: 10, MinFillFrac: 0.4, ReinsertFrac: 0, Split: QuadraticSplit})
	ga = accesses(gutt10)
	if ra > ga*12/10 {
		t.Errorf("R*-tree accesses %d much worse than Guttman %d", ra, ga)
	}
	t.Logf("window-query node accesses: R* %d, Guttman quadratic %d", ra, ga)
}
