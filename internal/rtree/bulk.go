package rtree

import (
	"math"
	"sort"

	"spjoin/internal/geom"
	"spjoin/internal/storage"
)

// Item is one object for bulk loading.
type Item struct {
	ID   EntryID
	Rect geom.Rect
}

// BulkLoadSTR builds a tree from items with the Sort-Tile-Recursive packing
// algorithm (Leutenegger et al.): items are sorted by center x, cut into
// vertical slices, each slice sorted by center y, and packed into leaves at
// the given fill factor. Upper levels pack the level below the same way.
//
// STR trees have near-100% utilization at fill 1.0; the paper's trees were
// built dynamically (≈70% utilization), so the experiment harness uses
// Insert while STR serves as a faster alternative and as the ablation
// baseline BenchmarkAblationSTR.
func BulkLoadSTR(params Params, items []Item, fill float64) *Tree {
	params.validate()
	if fill <= 0 || fill > 1 {
		panic("rtree: STR fill factor out of (0, 1]")
	}
	t := &Tree{params: params, root: storage.InvalidPage}
	if len(items) == 0 {
		t.root = t.allocNode(0).Page
		return t
	}

	// Pack leaves.
	leafCap := int(float64(params.MaxDataEntries) * fill)
	if leafCap < 1 {
		leafCap = 1
	}
	entries := make([]Entry, len(items))
	for i, it := range items {
		entries[i] = Entry{Rect: it.Rect, Child: storage.InvalidPage, Obj: it.ID}
	}
	level := 0
	nodes := t.packLevel(entries, level, leafCap)

	// Pack directory levels until a single node remains.
	dirCap := int(float64(params.MaxDirEntries) * fill)
	if dirCap < 2 {
		dirCap = 2
	}
	for len(nodes) > 1 {
		level++
		parentEntries := make([]Entry, len(nodes))
		for i, n := range nodes {
			parentEntries[i] = Entry{Rect: n.MBR(), Child: n.Page, Obj: -1}
		}
		// The root may be filled to capacity rather than to the fill factor
		// (a dynamically built root is not fill-limited either); this keeps
		// the height minimal, matching the paper's height-3 trees.
		levelCap := dirCap
		if len(parentEntries) <= params.MaxDirEntries {
			levelCap = params.MaxDirEntries
		}
		parents := t.packLevel(parentEntries, level, levelCap)
		for _, p := range parents {
			for i := range p.Entries {
				t.Node(p.Entries[i].Child).Parent = p.Page
			}
		}
		nodes = parents
	}
	t.root = nodes[0].Page
	t.size = len(items)
	// Build time is the one moment every node is known immutable: precompute
	// the join sweep caches so the first join never sorts.
	t.PrepareSweep()
	return t
}

// packLevel tiles entries into nodes of the given level: sort by center x,
// cut into ceil(sqrt(p)) vertical slices of slice*cap entries, sort each
// slice by center y, emit runs of cap entries.
func (t *Tree) packLevel(entries []Entry, level, maxEntries int) []*Node {
	p := (len(entries) + maxEntries - 1) / maxEntries // number of nodes
	sliceCount := int(math.Ceil(math.Sqrt(float64(p))))
	sliceSize := sliceCount * maxEntries

	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Rect.CenterX() < entries[j].Rect.CenterX()
	})

	var nodes []*Node
	for start := 0; start < len(entries); start += sliceSize {
		end := start + sliceSize
		if end > len(entries) {
			end = len(entries)
		}
		slice := entries[start:end]
		sort.SliceStable(slice, func(i, j int) bool {
			return slice[i].Rect.CenterY() < slice[j].Rect.CenterY()
		})
		for s := 0; s < len(slice); s += maxEntries {
			e := s + maxEntries
			if e > len(slice) {
				e = len(slice)
			}
			n := t.allocNode(level)
			n.Entries = append([]Entry(nil), slice[s:e]...)
			nodes = append(nodes, n)
		}
	}

	return t.rebalanceTail(nodes)
}

// rebalanceTail fixes up the short tail of a freshly packed level. Only the
// globally last node can be short (every other run is exactly maxEntries
// long). If it falls below the minimum fill, steal entries from its (full)
// predecessor so both satisfy the R*-tree invariant — unless the
// predecessor cannot spare them without going underfull itself, in which
// case the two nodes together hold fewer than two minimum fills, which
// always fits a single node (minFill ≤ capacity/2): merge them instead.
func (t *Tree) rebalanceTail(nodes []*Node) []*Node {
	if len(nodes) >= 2 {
		last := nodes[len(nodes)-1]
		if need := t.minFill(last) - len(last.Entries); need > 0 {
			prev := nodes[len(nodes)-2]
			if cut := len(prev.Entries) - need; cut >= t.minFill(prev) {
				moved := append([]Entry(nil), prev.Entries[cut:]...)
				prev.Entries = prev.Entries[:cut]
				last.Entries = append(moved, last.Entries...)
			} else {
				prev.Entries = append(prev.Entries, last.Entries...)
				t.freeNode(last.Page)
				nodes = nodes[:len(nodes)-1]
			}
		}
	}
	return nodes
}
