package rtree

import (
	"fmt"

	"spjoin/internal/storage"
)

// Stats summarizes the tree the way the paper's Table 1 does.
type Stats struct {
	Height         int
	DataEntries    int
	DataPages      int
	DirectoryPages int
	RootEntries    int
	AvgLeafFill    float64 // average data-page utilization
	AvgDirFill     float64 // average directory-page utilization
}

// Stats computes the Table 1 summary of the tree.
func (t *Tree) Stats() Stats {
	s := Stats{Height: t.Height(), DataEntries: t.Len()}
	var leafEntries, dirEntries int
	t.Walk(func(n *Node) {
		if n.Level == 0 {
			s.DataPages++
			leafEntries += len(n.Entries)
		} else {
			s.DirectoryPages++
			dirEntries += len(n.Entries)
		}
	})
	s.RootEntries = len(t.Node(t.root).Entries)
	if s.DataPages > 0 {
		s.AvgLeafFill = float64(leafEntries) /
			float64(s.DataPages*t.params.MaxDataEntries)
	}
	if s.DirectoryPages > 0 {
		s.AvgDirFill = float64(dirEntries) /
			float64(s.DirectoryPages*t.params.MaxDirEntries)
	}
	return s
}

// CheckIntegrity verifies the structural invariants of the R*-tree and
// returns the first violation found, or nil. It is used by the test suite
// after every mutation sequence.
//
// Invariants checked:
//  1. every directory entry's rectangle is exactly the MBR of its subtree;
//  2. every non-root node holds between minFill and capacity entries, the
//     root holds between 1 (or 0 when empty) and capacity;
//  3. all leaves are at level 0 and each level decreases by one per step;
//  4. parent pointers match the directory structure;
//  5. the number of reachable data entries equals Len().
func (t *Tree) CheckIntegrity() error {
	root := t.node(t.root)
	if root == nil {
		return fmt.Errorf("rtree: root page %d missing", t.root)
	}
	if root.Parent != storage.InvalidPage {
		return fmt.Errorf("rtree: root has parent %d", root.Parent)
	}
	if len(root.Entries) > t.capacity(root) {
		return fmt.Errorf("rtree: root overfull: %d > %d", len(root.Entries), t.capacity(root))
	}
	if root.Level > 0 && len(root.Entries) < 2 && t.size > 0 {
		return fmt.Errorf("rtree: directory root with %d entries", len(root.Entries))
	}

	count := 0
	var check func(n *Node) error
	check = func(n *Node) error {
		if err := n.checkSweepCache(); err != nil {
			return err
		}
		if n.Page != t.root {
			if len(n.Entries) < t.minFill(n) {
				return fmt.Errorf("rtree: page %d underfull: %d < %d",
					n.Page, len(n.Entries), t.minFill(n))
			}
			if len(n.Entries) > t.capacity(n) {
				return fmt.Errorf("rtree: page %d overfull: %d > %d",
					n.Page, len(n.Entries), t.capacity(n))
			}
		}
		for i := range n.Entries {
			e := &n.Entries[i]
			if n.Level == 0 {
				if e.Child != storage.InvalidPage {
					return fmt.Errorf("rtree: leaf %d entry %d has child pointer", n.Page, i)
				}
				count++
				continue
			}
			child := t.node(e.Child)
			if child == nil {
				return fmt.Errorf("rtree: page %d entry %d points to freed page %d",
					n.Page, i, e.Child)
			}
			if child.Level != n.Level-1 {
				return fmt.Errorf("rtree: page %d (level %d) has child %d at level %d",
					n.Page, n.Level, child.Page, child.Level)
			}
			if child.Parent != n.Page {
				return fmt.Errorf("rtree: child %d parent pointer %d, want %d",
					child.Page, child.Parent, n.Page)
			}
			if got := child.MBR(); e.Rect != got {
				return fmt.Errorf("rtree: page %d entry %d MBR %v, subtree MBR %v",
					n.Page, i, e.Rect, got)
			}
			if err := check(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: reachable entries %d != Len() %d", count, t.size)
	}
	return nil
}
