package rtree

import (
	"sort"

	"spjoin/internal/geom"
	"spjoin/internal/storage"
)

// splitNode splits an overflowing node with the R*-tree topological split
// [BKSS 90]: choose the split axis by minimum margin sum over all candidate
// distributions, then the distribution with minimum overlap (ties: minimum
// total area). The split may propagate an overflow to the parent.
func (t *Tree) splitNode(n *Node, reinserted map[int]bool) {
	group1, group2 := t.splitEntries(n.Entries, t.minFill(n))

	sibling := t.allocNode(n.Level)
	n.Entries = group1
	n.invalidateSweep()
	sibling.Entries = group2
	if n.Level > 0 {
		for i := range sibling.Entries {
			t.Node(sibling.Entries[i].Child).Parent = sibling.Page
		}
	}

	if n.Page == t.root {
		// Grow the tree: a fresh root adopts both halves.
		newRoot := t.allocNode(n.Level + 1)
		newRoot.Entries = []Entry{
			{Rect: n.MBR(), Child: n.Page, Obj: -1},
			{Rect: sibling.MBR(), Child: sibling.Page, Obj: -1},
		}
		n.Parent = newRoot.Page
		sibling.Parent = newRoot.Page
		t.root = newRoot.Page
		return
	}

	parent := t.Node(n.Parent)
	sibling.Parent = parent.Page
	parent.Entries[parent.entryIndexOf(n.Page)].Rect = n.MBR()
	parent.Entries = append(parent.Entries,
		Entry{Rect: sibling.MBR(), Child: sibling.Page, Obj: -1})
	parent.invalidateSweep()
	if len(parent.Entries) > t.capacity(parent) {
		t.overflow(parent, reinserted)
	} else {
		t.adjustMBRUp(parent)
	}
}

// rstarSplit partitions entries (len = capacity+1) into two groups, each
// holding at least minFill entries, with the [BKSS 90] margin-driven split.
func rstarSplit(entries []Entry, minFill int) (group1, group2 []Entry) {
	// Work on copies sorted four ways: by lower/upper value on each axis.
	byXLow := append([]Entry(nil), entries...)
	sort.SliceStable(byXLow, func(i, j int) bool {
		if byXLow[i].Rect.MinX != byXLow[j].Rect.MinX {
			return byXLow[i].Rect.MinX < byXLow[j].Rect.MinX
		}
		return byXLow[i].Rect.MaxX < byXLow[j].Rect.MaxX
	})
	byXHigh := append([]Entry(nil), entries...)
	sort.SliceStable(byXHigh, func(i, j int) bool {
		if byXHigh[i].Rect.MaxX != byXHigh[j].Rect.MaxX {
			return byXHigh[i].Rect.MaxX < byXHigh[j].Rect.MaxX
		}
		return byXHigh[i].Rect.MinX < byXHigh[j].Rect.MinX
	})
	byYLow := append([]Entry(nil), entries...)
	sort.SliceStable(byYLow, func(i, j int) bool {
		if byYLow[i].Rect.MinY != byYLow[j].Rect.MinY {
			return byYLow[i].Rect.MinY < byYLow[j].Rect.MinY
		}
		return byYLow[i].Rect.MaxY < byYLow[j].Rect.MaxY
	})
	byYHigh := append([]Entry(nil), entries...)
	sort.SliceStable(byYHigh, func(i, j int) bool {
		if byYHigh[i].Rect.MaxY != byYHigh[j].Rect.MaxY {
			return byYHigh[i].Rect.MaxY < byYHigh[j].Rect.MaxY
		}
		return byYHigh[i].Rect.MinY < byYHigh[j].Rect.MinY
	})

	marginX := distributionMarginSum(byXLow, minFill) + distributionMarginSum(byXHigh, minFill)
	marginY := distributionMarginSum(byYLow, minFill) + distributionMarginSum(byYHigh, minFill)

	var sortings [2][]Entry
	if marginX <= marginY {
		sortings = [2][]Entry{byXLow, byXHigh}
	} else {
		sortings = [2][]Entry{byYLow, byYHigh}
	}

	bestOverlap := -1.0
	bestArea := 0.0
	var bestSorted []Entry
	bestSplit := 0
	for _, sorted := range sortings {
		prefixes, suffixes := groupMBRs(sorted)
		for k := minFill; k <= len(sorted)-minFill; k++ {
			left, right := prefixes[k-1], suffixes[k]
			overlap := left.OverlapArea(right)
			area := left.Area() + right.Area()
			if bestOverlap < 0 || overlap < bestOverlap ||
				(overlap == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = overlap, area
				bestSorted, bestSplit = sorted, k
			}
		}
	}
	group1 = append([]Entry(nil), bestSorted[:bestSplit]...)
	group2 = append([]Entry(nil), bestSorted[bestSplit:]...)
	return group1, group2
}

// distributionMarginSum sums the margins of both groups over every legal
// split position of the sorted entry sequence (the axis-goodness measure).
func distributionMarginSum(sorted []Entry, minFill int) float64 {
	prefixes, suffixes := groupMBRs(sorted)
	var sum float64
	for k := minFill; k <= len(sorted)-minFill; k++ {
		sum += prefixes[k-1].Margin() + suffixes[k].Margin()
	}
	return sum
}

// groupMBRs returns prefixes[i] = MBR(sorted[0..i]) and
// suffixes[i] = MBR(sorted[i..]).
func groupMBRs(sorted []Entry) (prefixes, suffixes []geom.Rect) {
	n := len(sorted)
	prefixes = make([]geom.Rect, n)
	suffixes = make([]geom.Rect, n+1)
	acc := geom.EmptyRect()
	for i := 0; i < n; i++ {
		acc = acc.Union(sorted[i].Rect)
		prefixes[i] = acc
	}
	suffixes[n] = geom.EmptyRect()
	acc = geom.EmptyRect()
	for i := n - 1; i >= 0; i-- {
		acc = acc.Union(sorted[i].Rect)
		suffixes[i] = acc
	}
	return prefixes, suffixes
}

// Delete removes the data entry with the given id and rectangle. It returns
// false if no such entry exists. Underfull nodes are condensed: their
// remaining entries are reinserted at their original level and empty paths
// collapse, possibly shrinking the tree height.
func (t *Tree) Delete(id EntryID, r geom.Rect) bool {
	leaf, idx := t.findLeaf(t.Node(t.root), id, r)
	if leaf == nil {
		return false
	}
	leaf.Entries = append(leaf.Entries[:idx], leaf.Entries[idx+1:]...)
	leaf.invalidateSweep()
	t.size--
	t.condense(leaf)

	// Shrink the root while it is a directory node with a single child.
	root := t.Node(t.root)
	for root.Level > 0 && len(root.Entries) == 1 {
		child := t.Node(root.Entries[0].Child)
		child.Parent = storage.InvalidPage
		t.freeNode(root.Page)
		t.root = child.Page
		root = child
	}
	return true
}

// findLeaf locates the leaf and entry index holding (id, r).
func (t *Tree) findLeaf(n *Node, id EntryID, r geom.Rect) (*Node, int) {
	for i := range n.Entries {
		e := &n.Entries[i]
		if !e.Rect.Intersects(r) {
			continue
		}
		if n.Level == 0 {
			if e.Obj == id && e.Rect == r {
				return n, i
			}
			continue
		}
		if leaf, idx := t.findLeaf(t.Node(e.Child), id, r); leaf != nil {
			return leaf, idx
		}
	}
	return nil, -1
}

// condense walks from a shrunken node to the root, dissolving nodes that
// fall below the minimum fill and reinserting their entries at the original
// level (Guttman's CondenseTree adapted to the R*-tree insertion).
func (t *Tree) condense(n *Node) {
	type orphan struct {
		level   int
		entries []Entry
	}
	var orphans []orphan

	for n.Parent != storage.InvalidPage {
		parent := t.Node(n.Parent)
		if len(n.Entries) < t.minFill(n) {
			i := parent.entryIndexOf(n.Page)
			parent.Entries = append(parent.Entries[:i], parent.Entries[i+1:]...)
			parent.invalidateSweep()
			orphans = append(orphans, orphan{level: n.Level, entries: n.Entries})
			t.freeNode(n.Page)
		} else {
			t.adjustMBRUp(n)
		}
		n = parent
	}
	t.adjustMBRUp(n)

	// Reinsert orphans, higher levels first so directory entries land above
	// the leaves they reference.
	reinserted := make(map[int]bool)
	for i := len(orphans) - 1; i >= 0; i-- {
		o := orphans[i]
		for _, e := range o.entries {
			// The tree may have shrunk below the orphan's level; re-rooting
			// handles that by splitting naturally on overflow. Guard anyway:
			// inserting a directory entry at a level >= root level means the
			// subtree becomes the new root's sibling — handled by inserting
			// at the highest existing level.
			level := o.level
			if rootLevel := t.Node(t.root).Level; level > rootLevel {
				level = rootLevel
			}
			t.insertEntry(e, level, reinserted)
		}
	}
}
