package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"empty slice", []float64{}, Summary{}},
		{"single", []float64{7}, Summary{Min: 7, Max: 7, Mean: 7, N: 1}},
		{"ascending", []float64{1, 2, 3}, Summary{Min: 1, Max: 3, Mean: 2, N: 3}},
		{"unordered", []float64{3, 1, 2}, Summary{Min: 1, Max: 3, Mean: 2, N: 3}},
		{"negative", []float64{-4, 4}, Summary{Min: -4, Max: 4, Mean: 0, N: 2}},
		{"constant", []float64{5, 5, 5, 5}, Summary{Min: 5, Max: 5, Mean: 5, N: 4}},
		{"zeros", []float64{0, 0}, Summary{Min: 0, Max: 0, Mean: 0, N: 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Summarize(c.in); got != c.want {
				t.Fatalf("Summarize(%v) = %+v, want %+v", c.in, got, c.want)
			}
		})
	}
}

func TestSummarySkew(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 1},
		{"balanced", []float64{4, 4, 4}, 1},
		{"skewed", []float64{1, 1, 4}, 2}, // mean 2, max 4
		{"zero mean", []float64{0, 0}, 0},
		{"mixed zero mean", []float64{-4, 4}, 0}, // guarded: mean 0
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Summarize(c.in).Skew(); math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("Skew(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestRelDiff(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		want float64
	}{
		{"equal", 5, 5, 0},
		{"both zero", 0, 0, 0},
		{"zero vs nonzero", 0, 3, 1},
		{"nonzero vs zero", 3, 0, 1},
		{"ten percent", 100, 90, 0.1},
		{"symmetric", 90, 100, 0.1},
		{"negative", -100, -90, 0.1},
		{"sign flip", -1, 1, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := RelDiff(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("RelDiff(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
		})
	}
}

func TestSpeedups(t *testing.T) {
	got := Speedups([]float64{100, 50, 25})
	want := []float64{1, 2, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Speedups = %v, want %v", got, want)
		}
	}
}

func TestSpeedupsEdge(t *testing.T) {
	if Speedups(nil) != nil {
		t.Fatal("nil input must return nil")
	}
	got := Speedups([]float64{10, 0})
	if got[1] != 0 {
		t.Fatalf("zero time speedup = %v, want 0", got[1])
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Title", "a", "b")
	tab.AddRow(1, "x")
	tab.AddRow(2.5, "y")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Title", "a", "b", "1", "x", "2.50", "y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "h")
	tab.AddRow("v")
	var buf bytes.Buffer
	tab.Render(&buf)
	if strings.Contains(buf.String(), "---") {
		t.Fatal("untitled table must not render a rule")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5"},
		{-3, "-3"},
		{1234.5, "1234.5"},
		{0.125, "0.12"},
		{99.5, "99.50"},
		{150.25, "150.2"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
