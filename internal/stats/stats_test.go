package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 || s.N != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.N != 1 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSpeedups(t *testing.T) {
	got := Speedups([]float64{100, 50, 25})
	want := []float64{1, 2, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Speedups = %v, want %v", got, want)
		}
	}
}

func TestSpeedupsEdge(t *testing.T) {
	if Speedups(nil) != nil {
		t.Fatal("nil input must return nil")
	}
	got := Speedups([]float64{10, 0})
	if got[1] != 0 {
		t.Fatalf("zero time speedup = %v, want 0", got[1])
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Title", "a", "b")
	tab.AddRow(1, "x")
	tab.AddRow(2.5, "y")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Title", "a", "b", "1", "x", "2.50", "y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "h")
	tab.AddRow("v")
	var buf bytes.Buffer
	tab.Render(&buf)
	if strings.Contains(buf.String(), "---") {
		t.Fatal("untitled table must not render a rule")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5"},
		{-3, "-3"},
		{1234.5, "1234.5"},
		{0.125, "0.12"},
		{99.5, "99.50"},
		{150.25, "150.2"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
