// Package stats provides the small numeric and rendering helpers the
// experiment harness uses: series summaries and aligned text tables in the
// style of the paper's tables and figure captions.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// Summary describes a numeric series.
type Summary struct {
	Min, Max, Mean float64
	N              int
}

// Skew returns the max/mean load-balance ratio of the summarized series
// (1.0 = perfectly balanced, 0 for an empty or zero-mean series). This is
// the imbalance measure the paper's §3.3 reassignment targets and the
// claim engine checks over grid cells.
func (s Summary) Skew() float64 {
	if s.N == 0 || s.Mean == 0 {
		return 0
	}
	return s.Max / s.Mean
}

// Summarize computes min, max and mean of xs (zero Summary for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Min: xs[0], Max: xs[0], N: len(xs)}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	return s
}

// RelDiff returns the relative difference |a-b| / max(|a|, |b|) — the
// symmetric measure the run-store diff and the ratio predicates use. Two
// zeros differ by 0; a zero against a non-zero differs by 1.
func RelDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Abs(a)
	if m := math.Abs(b); m > den {
		den = m
	}
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// Speedups converts a response-time series t(n) into speed-ups t1/t(n),
// where t1 is the first element. Non-positive entries yield 0.
func Speedups(times []float64) []float64 {
	if len(times) == 0 {
		return nil
	}
	t1 := times[0]
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = t1 / t
		}
	}
	return out
}

// Table renders rows as an aligned text table with a title and a header
// line. Cells are converted with %v; floats should be pre-formatted by the
// caller when a specific precision matters.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title)))
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	}
	for _, row := range t.rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be useful.
func FormatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
