package tiger

import (
	"testing"

	"spjoin/internal/geom"
	"spjoin/internal/rtree"
)

func TestMapsCardinalities(t *testing.T) {
	streets, mixed := Maps(1.0, 42)
	if len(streets) != DefaultStreetCount {
		t.Errorf("streets = %d, want %d", len(streets), DefaultStreetCount)
	}
	if len(mixed) != DefaultMixedCount {
		t.Errorf("mixed = %d, want %d", len(mixed), DefaultMixedCount)
	}
}

func TestMapsScaled(t *testing.T) {
	streets, mixed := Maps(0.01, 42)
	if len(streets) != DefaultStreetCount/100 {
		t.Errorf("scaled streets = %d, want %d", len(streets), DefaultStreetCount/100)
	}
	if len(mixed) != DefaultMixedCount/100 {
		t.Errorf("scaled mixed = %d, want %d", len(mixed), DefaultMixedCount/100)
	}
}

func TestMapsTinyScaleFloor(t *testing.T) {
	streets, mixed := Maps(1e-9, 1)
	if len(streets) != 1 || len(mixed) != 1 {
		t.Fatalf("floor failed: %d, %d", len(streets), len(mixed))
	}
}

func TestMapsRejectNonPositiveScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on scale 0")
		}
	}()
	Maps(0, 1)
}

func checkItems(t *testing.T, items []rtree.Item) {
	t.Helper()
	world := geom.NewRect(0, 0, World, World)
	for i, it := range items {
		if it.ID != rtree.EntryID(i) {
			t.Fatalf("item %d has ID %d", i, it.ID)
		}
		if !it.Rect.Valid() {
			t.Fatalf("item %d has invalid rect %v", i, it.Rect)
		}
		if !world.Contains(it.Rect) {
			t.Fatalf("item %d rect %v outside world", i, it.Rect)
		}
	}
}

func TestStreetsWellFormed(t *testing.T) {
	checkItems(t, Streets(5000, 7))
}

func TestMixedWellFormed(t *testing.T) {
	checkItems(t, MixedFeatures(5000, 7))
}

func TestDeterminism(t *testing.T) {
	a, b := Streets(2000, 3), Streets(2000, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streets diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c, d := MixedFeatures(2000, 3), MixedFeatures(2000, 3)
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("mixed diverge at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := Streets(100, 1), Streets(100, 2)
	same := 0
	for i := range a {
		if a[i].Rect == b[i].Rect {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical maps")
	}
}

func TestStreetsSmallerThanMixedFeatures(t *testing.T) {
	// Streets are short segments; map-2 features are much longer on
	// average. Compare mean margins.
	streets := Streets(5000, 9)
	mixed := MixedFeatures(5000, 9)
	avg := func(items []rtree.Item) float64 {
		var sum float64
		for _, it := range items {
			sum += it.Rect.Margin()
		}
		return sum / float64(len(items))
	}
	s, m := avg(streets), avg(mixed)
	if m < 2*s {
		t.Errorf("mixed mean margin %.3f not clearly larger than streets %.3f", m, s)
	}
}

func TestStreetsClustered(t *testing.T) {
	// At least half the streets land inside town bounding boxes.
	centers, _ := towns(11)
	streets := Streets(5000, 11)
	inTown := 0
	for _, it := range streets {
		for _, c := range centers {
			// Generous halo: towns spread Gaussian beyond their nominal box.
			halo := geom.NewRect(c.MinX-5, c.MinY-5, c.MaxX+5, c.MaxY+5)
			if halo.Intersects(it.Rect) {
				inTown++
				break
			}
		}
	}
	if frac := float64(inTown) / float64(len(streets)); frac < 0.5 {
		t.Errorf("only %.0f%% of streets near towns, want >= 50%%", frac*100)
	}
}

func TestMapsOverlap(t *testing.T) {
	// The two maps must actually join: a decent number of cross-map MBR
	// intersections per object.
	streets, mixed := Maps(0.005, 5)
	hits := 0
	for _, s := range streets {
		for _, m := range mixed {
			if s.Rect.Intersects(m.Rect) {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Fatal("no cross-map intersections at all")
	}
}

func TestTreeShapeAtFullScaleIsTable1Like(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale build")
	}
	streets, mixed := Maps(1.0, 42)
	t1 := rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.73)
	t2 := rtree.BulkLoadSTR(rtree.DefaultParams(), mixed, 0.73)
	for i, tr := range []*rtree.Tree{t1, t2} {
		s := tr.Stats()
		if s.Height != 3 {
			t.Errorf("tree%d height = %d, want 3 (Table 1)", i+1, s.Height)
		}
		if s.DataPages < 5500 || s.DataPages > 8500 {
			t.Errorf("tree%d data pages = %d, want ≈ 7000 (Table 1)", i+1, s.DataPages)
		}
		if s.DirectoryPages < 60 || s.DirectoryPages > 140 {
			t.Errorf("tree%d directory pages = %d, want ≈ 95 (Table 1)", i+1, s.DirectoryPages)
		}
	}
}

func TestFeaturesAlignWithItems(t *testing.T) {
	fs := StreetFeatures(2000, 42)
	items := Streets(2000, 42)
	for i := range fs {
		if fs[i].ID != items[i].ID || fs[i].Rect != items[i].Rect {
			t.Fatalf("feature %d misaligned with item", i)
		}
	}
	ms := MixedFeaturesExact(2000, 42)
	mitems := MixedFeatures(2000, 42)
	for i := range ms {
		if ms[i].ID != mitems[i].ID || ms[i].Rect != mitems[i].Rect {
			t.Fatalf("mixed feature %d misaligned with item", i)
		}
	}
}

func TestFeatureMBRsConservative(t *testing.T) {
	// The filter MBR must contain the exact geometry, at least for shapes
	// fully inside the world (shapes leaving the world are clipped by the
	// MBR clamp, which is fine for the bounded workload).
	world := geom.NewRect(0, 0, World, World)
	for _, fs := range [][]Feature{StreetFeatures(3000, 7), MixedFeaturesExact(3000, 7)} {
		for i, f := range fs {
			b := f.Shape.Bounds()
			if !world.Contains(b) {
				continue // clipped at the world edge
			}
			grown := geom.NewRect(f.Rect.MinX-1e-9, f.Rect.MinY-1e-9,
				f.Rect.MaxX+1e-9, f.Rect.MaxY+1e-9)
			if !grown.Contains(b) {
				t.Fatalf("feature %d: MBR %v does not contain shape bounds %v", i, f.Rect, b)
			}
		}
	}
}

func TestMixedFeatureKinds(t *testing.T) {
	fs := MixedFeaturesExact(3000, 11)
	boxes, segs := 0, 0
	for _, f := range fs {
		if _, ok := f.Shape.IsBox(); ok {
			boxes++
		} else {
			segs++
		}
	}
	// 40% boundaries (boxes), 60% rivers+rails (segments), loosely.
	if boxes < 900 || boxes > 1500 {
		t.Errorf("boxes = %d of 3000, want ≈ 1200", boxes)
	}
	if segs+boxes != 3000 {
		t.Errorf("kinds do not cover all features")
	}
}

func TestItemsProjection(t *testing.T) {
	fs := StreetFeatures(10, 3)
	items := Items(fs)
	if len(items) != len(fs) {
		t.Fatal("Items length mismatch")
	}
	for i := range fs {
		if items[i].ID != fs[i].ID || items[i].Rect != fs[i].Rect {
			t.Fatal("Items projection wrong")
		}
	}
}
