// Package tiger synthesizes the two test maps of the paper's §4.1. The
// originals come from US Census TIGER/Line files for Californian counties:
// map 1 holds 131,443 street segments, map 2 holds 127,312 administrative
// boundaries, rivers and railway tracks. Those files are not shipped here,
// so this package generates maps with the same cardinalities and the same
// qualitative MBR statistics: streets are small, thin, strongly clustered
// around population centers; map 2 features are fewer but much longer, with
// boundary polygons of medium extent.
//
// The generator is fully deterministic in (seed, scale): identical inputs
// give identical maps, which keeps every experiment reproducible.
package tiger

import (
	"math"
	"math/rand"

	"spjoin/internal/geom"
	"spjoin/internal/refine"
	"spjoin/internal/rtree"
)

// World is the square coordinate space [0, World]² shared by both maps, in
// abstract kilometers.
const World = 600.0

// Paper cardinalities (Table 1).
const (
	DefaultStreetCount = 131443
	DefaultMixedCount  = 127312
)

// townCount is the number of population clusters streets concentrate in.
const townCount = 48

// towns returns deterministic cluster centers with Zipf-like weights; the
// same centers are used by both maps so that their features overlap the way
// real street and boundary data does.
func towns(seed int64) ([]geom.Rect, []float64) {
	rng := rand.New(rand.NewSource(seed ^ 0x7077_6e73)) // "towns"
	centers := make([]geom.Rect, townCount)
	weights := make([]float64, townCount)
	var total float64
	for i := range centers {
		cx := rng.Float64() * World
		cy := rng.Float64() * World
		spread := 1.5 + rng.Float64()*4 // town radius in km
		centers[i] = geom.NewRect(cx-spread, cy-spread, cx+spread, cy+spread)
		weights[i] = 1 / float64(i+1) // Zipf: few big cities, many hamlets
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	return centers, weights
}

// pickTown samples a town index by weight.
func pickTown(rng *rand.Rand, weights []float64) int {
	u := rng.Float64()
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// clamp keeps a rectangle inside the world square.
func clamp(r geom.Rect) geom.Rect {
	return geom.NewRect(
		math.Max(0, math.Min(World, r.MinX)),
		math.Max(0, math.Min(World, r.MinY)),
		math.Max(0, math.Min(World, r.MaxX)),
		math.Max(0, math.Min(World, r.MaxY)),
	)
}

// segmentFrom builds the exact segment starting at (x, y) with the given
// heading and length.
func segmentFrom(x, y, heading, length float64) refine.Segment {
	return refine.Segment{
		X1: x, Y1: y,
		X2: x + math.Cos(heading)*length,
		Y2: y + math.Sin(heading)*length,
	}
}

// segmentRect builds the MBR of a line segment from (x, y) with the given
// heading and length; thin segments get a minimal width so areas stay
// positive.
func segmentRect(x, y, heading, length float64) geom.Rect {
	dx := math.Cos(heading) * length
	dy := math.Sin(heading) * length
	r := geom.NewRect(x, y, x+dx, y+dy)
	const minExtent = 1e-4
	if r.MaxX-r.MinX < minExtent {
		r.MaxX = r.MinX + minExtent
	}
	if r.MaxY-r.MinY < minExtent {
		r.MaxY = r.MinY + minExtent
	}
	return clamp(r)
}

// Feature couples one object's exact geometry (segment or box) with the
// conservative MBR the filter step indexes.
type Feature struct {
	ID    rtree.EntryID
	Shape refine.Shape
	Rect  geom.Rect
}

// Items projects features onto their filter-step items.
func Items(fs []Feature) []rtree.Item {
	items := make([]rtree.Item, len(fs))
	for i, f := range fs {
		items[i] = rtree.Item{ID: f.ID, Rect: f.Rect}
	}
	return items
}

// StreetFeatures generates the map 1 analogue with exact geometry: count
// street segments, 80% clustered in towns (grid-aligned short segments,
// like city blocks), 20% rural connectors with arbitrary headings and
// longer spans.
func StreetFeatures(count int, seed int64) []Feature {
	rng := rand.New(rand.NewSource(seed))
	centers, weights := towns(seed)
	fs := make([]Feature, count)
	for i := range fs {
		var x, y, heading, length float64
		if rng.Float64() < 0.8 {
			t := pickTown(rng, weights)
			c := centers[t]
			spread := (c.MaxX - c.MinX) / 2
			x = c.CenterX() + rng.NormFloat64()*spread/2
			y = c.CenterY() + rng.NormFloat64()*spread/2
			// City blocks: axis-parallel, 30–150 m.
			length = 0.03 + rng.Float64()*0.12
			heading = 0.0
			if rng.Intn(2) == 1 {
				heading = math.Pi / 2
			}
		} else {
			x = rng.Float64() * World
			y = rng.Float64() * World
			length = 0.2 + rng.Float64()*1.2 // rural connector roads
			heading = rng.Float64() * 2 * math.Pi
		}
		seg := segmentFrom(x, y, heading, length)
		fs[i] = Feature{
			ID:    rtree.EntryID(i),
			Shape: refine.SegmentShape(seg),
			Rect:  segmentRect(x, y, heading, length),
		}
	}
	return fs
}

// Streets generates the map 1 items (MBRs only); see StreetFeatures.
func Streets(count int, seed int64) []rtree.Item {
	return Items(StreetFeatures(count, seed))
}

// MixedFeaturesExact generates the map 2 analogue with exact geometry:
// administrative boundaries (40%, medium rectangles around towns), rivers
// (35%, long gently sloped segments) and railway tracks (25%, long straight
// segments).
func MixedFeaturesExact(count int, seed int64) []Feature {
	rng := rand.New(rand.NewSource(seed + 1))
	centers, weights := towns(seed)
	fs := make([]Feature, count)
	for i := range fs {
		var f Feature
		f.ID = rtree.EntryID(i)
		switch u := rng.Float64(); {
		case u < 0.40: // administrative boundary piece
			t := pickTown(rng, weights)
			c := centers[t]
			x := c.CenterX() + rng.NormFloat64()*8
			y := c.CenterY() + rng.NormFloat64()*8
			w := 0.05 + rng.Float64()*0.5
			h := 0.05 + rng.Float64()*0.5
			r := clamp(geom.NewRect(x, y, x+w, y+h))
			f.Shape = refine.BoxShape(r)
			f.Rect = r
		case u < 0.75: // river reach: long, gently sloped
			x := rng.Float64() * World
			y := rng.Float64() * World
			length := 0.3 + rng.Float64()*2.0
			heading := rng.Float64() * 2 * math.Pi
			f.Shape = refine.SegmentShape(segmentFrom(x, y, heading, length))
			f.Rect = segmentRect(x, y, heading, length)
		default: // railway track piece: long and straight
			x := rng.Float64() * World
			y := rng.Float64() * World
			length := 0.8 + rng.Float64()*3.2
			heading := rng.Float64() * math.Pi
			f.Shape = refine.SegmentShape(segmentFrom(x, y, heading, length))
			f.Rect = segmentRect(x, y, heading, length)
		}
		fs[i] = f
	}
	return fs
}

// MixedFeatures generates the map 2 items (MBRs only); see
// MixedFeaturesExact.
func MixedFeatures(count int, seed int64) []rtree.Item {
	return Items(MixedFeaturesExact(count, seed))
}

// Maps returns both test maps at a fraction of the paper's cardinality:
// scale 1.0 gives 131,443 and 127,312 objects; smaller scales shrink both
// proportionally (minimum 1 object each). Tests and quick benchmarks use
// small scales; the experiment harness uses 1.0.
func Maps(scale float64, seed int64) (streets, mixed []rtree.Item) {
	if scale <= 0 {
		panic("tiger: scale must be positive")
	}
	nStreets := int(float64(DefaultStreetCount) * scale)
	nMixed := int(float64(DefaultMixedCount) * scale)
	if nStreets < 1 {
		nStreets = 1
	}
	if nMixed < 1 {
		nMixed = 1
	}
	return Streets(nStreets, seed), MixedFeatures(nMixed, seed)
}
