package tiger

import (
	"math"
	"math/rand"

	"spjoin/internal/geom"
	"spjoin/internal/rtree"
	"spjoin/internal/stats"
)

// Skewed workload generators for the partition engine's adversarial cases:
// the uniform grid of package partjoin assumes roughly even tile load, and
// these generators produce exactly the distributions that break that
// assumption (the Join Product Skew shapes). All are deterministic in
// their arguments; two sides of a join share cluster geometry by sharing
// centerSeed while drawing their own points from seed.

// Uniform generates n small rectangles spread evenly over the world
// square — the baseline the skewed distributions are compared against.
func Uniform(n int, maxSide float64, seed int64) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		x := rng.Float64() * World
		y := rng.Float64() * World
		w := rng.Float64() * maxSide
		h := rng.Float64() * maxSide
		items[i] = rtree.Item{ID: rtree.EntryID(i), Rect: clamp(geom.NewRect(x, y, x+w, y+h))}
	}
	return items
}

// GaussianClusters generates n small rectangles drawn from `clusters`
// gaussian blobs of standard deviation sigma. The cluster centers are a
// function of centerSeed alone, so two sides built with the same
// centerSeed (and different seeds) pile up in the same places — the
// overlapping-hotspot case where a uniform grid degenerates. Smaller
// sigma means sharper skew.
func GaussianClusters(n, clusters int, sigma, maxSide float64, centerSeed, seed int64) []rtree.Item {
	crng := rand.New(rand.NewSource(centerSeed ^ 0x636c_7573)) // "clus"
	cx := make([]float64, clusters)
	cy := make([]float64, clusters)
	for i := range cx {
		cx[i] = (0.1 + 0.8*crng.Float64()) * World
		cy[i] = (0.1 + 0.8*crng.Float64()) * World
	}
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		c := rng.Intn(clusters)
		x := cx[c] + rng.NormFloat64()*sigma
		y := cy[c] + rng.NormFloat64()*sigma
		w := rng.Float64() * maxSide
		h := rng.Float64() * maxSide
		items[i] = rtree.Item{ID: rtree.EntryID(i), Rect: clamp(geom.NewRect(x, y, x+w, y+h))}
	}
	return items
}

// ZipfTiles generates n small rectangles whose tile occupancy over a
// gridDim×gridDim partition of the world follows a Zipf law with exponent
// skew: tile k (in a seed-shuffled rank order) receives weight
// 1/(k+1)^skew. skew 0 is uniform-per-tile; 1 and above concentrates most
// of the data in a handful of tiles.
func ZipfTiles(n, gridDim int, skew, maxSide float64, seed int64) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	tiles := gridDim * gridDim
	ranks := rng.Perm(tiles) // which tile gets rank k's weight
	weights := make([]float64, tiles)
	total := 0.0
	for k, t := range ranks {
		weights[t] = 1 / math.Pow(float64(k+1), skew)
		total += weights[t]
	}
	cum := make([]float64, tiles)
	acc := 0.0
	for t := range weights {
		acc += weights[t] / total
		cum[t] = acc
	}
	side := World / float64(gridDim)
	items := make([]rtree.Item, n)
	for i := range items {
		u := rng.Float64()
		t := 0
		for t < tiles-1 && cum[t] < u {
			t++
		}
		x := (float64(t%gridDim) + rng.Float64()) * side
		y := (float64(t/gridDim) + rng.Float64()) * side
		w := rng.Float64() * maxSide
		h := rng.Float64() * maxSide
		items[i] = rtree.Item{ID: rtree.EntryID(i), Rect: clamp(geom.NewRect(x, y, x+w, y+h))}
	}
	return items
}

// DiagonalLine generates n small rectangles jittered around the world
// diagonal — the classic correlated distribution: every occupied tile
// lies on the diagonal, so a g×g grid keeps only g of its g² tiles busy.
func DiagonalLine(n int, jitter, maxSide float64, seed int64) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		d := rng.Float64() * World
		x := d + rng.NormFloat64()*jitter
		y := d + rng.NormFloat64()*jitter
		w := rng.Float64() * maxSide
		h := rng.Float64() * maxSide
		items[i] = rtree.Item{ID: rtree.EntryID(i), Rect: clamp(geom.NewRect(x, y, x+w, y+h))}
	}
	return items
}

// OccupancySkew measures a distribution's tile skew the way the planner
// does: center-point occupancy over a gridDim×gridDim partition of the
// world, reported as max/mean over all tiles (≈1 = perfectly even,
// higher = hotter hot spots; empty tiles count toward the mean, so
// concentration always raises the figure).
func OccupancySkew(items []rtree.Item, gridDim int) float64 {
	counts := make([]float64, gridDim*gridDim)
	inv := float64(gridDim) / World
	for i := range items {
		r := &items[i].Rect
		tx := clampDim(int(((r.MinX+r.MaxX)/2)*inv), gridDim)
		ty := clampDim(int(((r.MinY+r.MaxY)/2)*inv), gridDim)
		counts[ty*gridDim+tx]++
	}
	return stats.Summarize(counts).Skew()
}

func clampDim(v, g int) int {
	if v < 0 {
		return 0
	}
	if v >= g {
		return g - 1
	}
	return v
}
