package tiger

import (
	"testing"

	"spjoin/internal/rtree"
)

// TestSkewGeneratorRanges pins each generator's occupancy skew (max/mean
// over non-empty tiles of a 16×16 probe grid) to the range it is designed
// to produce, so the skew experiment's "three skew levels" stay three
// distinguishable levels.
func TestSkewGeneratorRanges(t *testing.T) {
	const n, probe = 20000, 16
	cases := []struct {
		name     string
		items    []rtree.Item
		lo, hi   float64
		maxTiles int // 0 = no occupied-tile bound
	}{
		{"uniform", Uniform(n, 0.5, 1), 1.0, 2.0, 0},
		{"gauss-mild", GaussianClusters(n, 8, 60, 0.5, 7, 1), 2.5, 10, 0},
		{"gauss-medium", GaussianClusters(n, 8, 20, 0.5, 7, 1), 10, 35, 0},
		{"gauss-extreme", GaussianClusters(n, 8, 5, 0.5, 7, 1), 25, 120, 0},
		{"zipf-1.2", ZipfTiles(n, probe, 1.2, 0.5, 1), 30, 200, 0},
		{"diagonal", DiagonalLine(n, 3, 0.5, 1), 8, 30, 3 * probe},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if len(c.items) != n {
				t.Fatalf("generated %d items, want %d", len(c.items), n)
			}
			got := OccupancySkew(c.items, probe)
			if got < c.lo || got > c.hi {
				t.Errorf("occupancy skew %.2f outside [%v, %v]", got, c.lo, c.hi)
			}
			if c.maxTiles > 0 {
				occ := occupiedTiles(c.items, probe)
				if occ > c.maxTiles {
					t.Errorf("%d occupied tiles, want <= %d (correlated data)", occ, c.maxTiles)
				}
			}
		})
	}
}

// TestSkewGeneratorsDeterministic pins seed determinism: same arguments,
// same items; shared centerSeed, shared cluster centers.
func TestSkewGeneratorsDeterministic(t *testing.T) {
	a := GaussianClusters(500, 4, 10, 0.5, 42, 1)
	b := GaussianClusters(500, 4, 10, 0.5, 42, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs across identical calls", i)
		}
	}
	// Different point seed, same centerSeed: different items, but the two
	// sides must pile up in the same tiles (that is the generator's whole
	// point for join workloads).
	c := GaussianClusters(500, 4, 10, 0.5, 42, 2)
	if a[0] == c[0] {
		t.Fatal("different seeds produced identical first item")
	}
	hotA, hotC := hottestTile(a, 8), hottestTile(c, 8)
	if hotA != hotC {
		t.Errorf("shared centerSeed but hottest tile differs: %d vs %d", hotA, hotC)
	}
}

func occupiedTiles(items []rtree.Item, g int) int {
	seen := make(map[int]bool)
	inv := float64(g) / World
	for i := range items {
		r := &items[i].Rect
		tx := clampDim(int(((r.MinX+r.MaxX)/2)*inv), g)
		ty := clampDim(int(((r.MinY+r.MaxY)/2)*inv), g)
		seen[ty*g+tx] = true
	}
	return len(seen)
}

func hottestTile(items []rtree.Item, g int) int {
	counts := make([]int, g*g)
	inv := float64(g) / World
	for i := range items {
		r := &items[i].Rect
		tx := clampDim(int(((r.MinX+r.MaxX)/2)*inv), g)
		ty := clampDim(int(((r.MinY+r.MaxY)/2)*inv), g)
		counts[ty*g+tx]++
	}
	best := 0
	for t, c := range counts {
		if c > counts[best] {
			best = t
		}
		_ = c
	}
	return best
}
