package pagefile

import (
	"os"
	"testing"
)

// osWriteFile avoids importing os twice in the other test file.
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func poolSetup(t *testing.T, pages, frames int) (*File, *BufferPool, []PageID) {
	t.Helper()
	pf := tempFile(t)
	ids := make([]PageID, pages)
	buf := make([]byte, PageSize)
	for i := range ids {
		id, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		buf[0] = byte(i + 1)
		if err := pf.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	pf.Reads, pf.Writes = 0, 0
	return pf, NewBufferPool(pf, frames), ids
}

func TestPoolHitMiss(t *testing.T) {
	pf, bp, ids := poolSetup(t, 3, 2)
	data, err := bp.Fix(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 1 {
		t.Fatalf("page content %d, want 1", data[0])
	}
	bp.Unfix(ids[0])
	if _, err := bp.Fix(ids[0]); err != nil {
		t.Fatal(err)
	}
	bp.Unfix(ids[0])
	if bp.Hits() != 1 || bp.Misses() != 1 {
		t.Fatalf("hits/misses %d/%d, want 1/1", bp.Hits(), bp.Misses())
	}
	if pf.Reads != 1 {
		t.Fatalf("physical reads %d, want 1", pf.Reads)
	}
}

func TestPoolEvictsLRU(t *testing.T) {
	pf, bp, ids := poolSetup(t, 3, 2)
	for _, id := range ids { // touch 3 pages through 2 frames
		if _, err := bp.Fix(id); err != nil {
			t.Fatal(err)
		}
		bp.Unfix(id)
	}
	if bp.Resident() != 2 {
		t.Fatalf("resident %d, want 2", bp.Resident())
	}
	// ids[0] was evicted; re-fix causes another physical read.
	before := pf.Reads
	if _, err := bp.Fix(ids[0]); err != nil {
		t.Fatal(err)
	}
	bp.Unfix(ids[0])
	if pf.Reads != before+1 {
		t.Fatal("evicted page not re-read")
	}
}

func TestPoolWriteBackDirty(t *testing.T) {
	pf, bp, ids := poolSetup(t, 3, 2)
	data, err := bp.Fix(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 0xAB
	bp.MarkDirty(ids[0])
	bp.Unfix(ids[0])
	// Force eviction of ids[0] by touching the other two pages.
	bp.Fix(ids[1])
	bp.Unfix(ids[1])
	bp.Fix(ids[2])
	bp.Unfix(ids[2])
	// Direct file read must observe the write-back.
	buf := make([]byte, PageSize)
	if err := pf.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatalf("dirty page not written back: %x", buf[0])
	}
}

func TestPoolFlush(t *testing.T) {
	pf, bp, ids := poolSetup(t, 1, 2)
	data, _ := bp.Fix(ids[0])
	data[0] = 0x7E
	bp.MarkDirty(ids[0])
	bp.Unfix(ids[0])
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	pf.ReadPage(ids[0], buf)
	if buf[0] != 0x7E {
		t.Fatal("Flush did not persist")
	}
}

func TestPoolPinnedPagesSurvive(t *testing.T) {
	_, bp, ids := poolSetup(t, 3, 2)
	if _, err := bp.Fix(ids[0]); err != nil { // stays pinned
		t.Fatal(err)
	}
	bp.Fix(ids[1])
	bp.Unfix(ids[1])
	if _, err := bp.Fix(ids[2]); err != nil { // must evict ids[1], not ids[0]
		t.Fatal(err)
	}
	bp.Unfix(ids[2])
	if bp.Hits() != 0 {
		t.Fatalf("unexpected hits %d", bp.Hits())
	}
	// ids[0] must still be resident (hit).
	if _, err := bp.Fix(ids[0]); err != nil {
		t.Fatal(err)
	}
	if bp.Hits() != 1 {
		t.Fatal("pinned page was evicted")
	}
	bp.Unfix(ids[0])
	bp.Unfix(ids[0])
}

func TestPoolAllPinnedError(t *testing.T) {
	_, bp, ids := poolSetup(t, 3, 2)
	bp.Fix(ids[0])
	bp.Fix(ids[1])
	if _, err := bp.Fix(ids[2]); err == nil {
		t.Fatal("fixing into a fully pinned pool succeeded")
	}
}

func TestPoolFixNew(t *testing.T) {
	pf, bp, _ := poolSetup(t, 1, 2)
	id, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	data, err := bp.FixNew(id)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 0x11
	bp.Unfix(id)
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	pf.ReadPage(id, buf)
	if buf[0] != 0x11 {
		t.Fatal("FixNew content not persisted")
	}
	if _, err := bp.FixNew(id); err == nil {
		t.Fatal("FixNew of resident page succeeded")
	}
}

func TestPoolUnfixPanics(t *testing.T) {
	_, bp, ids := poolSetup(t, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Unfix of unpinned page did not panic")
		}
	}()
	bp.Unfix(ids[0])
}

func TestPoolCapacityPanics(t *testing.T) {
	pf := tempFile(t)
	defer func() {
		if recover() == nil {
			t.Fatal("NewBufferPool(0) did not panic")
		}
	}()
	NewBufferPool(pf, 0)
}
