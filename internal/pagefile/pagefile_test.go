package pagefile

import (
	"bytes"
	"path/filepath"
	"testing"
)

func tempFile(t *testing.T) *File {
	t.Helper()
	pf, err := Create(filepath.Join(t.TempDir(), "test.spjf"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func TestAllocateReadWrite(t *testing.T) {
	pf := tempFile(t)
	id, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == InvalidPage {
		t.Fatal("allocated header page id")
	}
	data := make([]byte, PageSize)
	copy(data, "hello pages")
	if err := pf.WritePage(id, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := pf.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back differs")
	}
	if pf.Reads != 1 || pf.Writes != 1 {
		t.Fatalf("I/O counters %d/%d, want 1/1", pf.Reads, pf.Writes)
	}
}

func TestFreshPageIsZeroed(t *testing.T) {
	pf := tempFile(t)
	id, _ := pf.Allocate()
	buf := make([]byte, PageSize)
	buf[0] = 0xFF
	if err := pf.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.spjf")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := pf.Allocate()
	data := make([]byte, PageSize)
	copy(data, "persistent")
	pf.WritePage(id, data)
	if err := pf.SetMeta([]byte("tree-meta")); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	if string(pf2.Meta()) != "tree-meta" {
		t.Fatalf("meta = %q", pf2.Meta())
	}
	if pf2.PageCount() != 2 {
		t.Fatalf("page count %d, want 2", pf2.PageCount())
	}
	got := make([]byte, PageSize)
	if err := pf2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:10], []byte("persistent")) {
		t.Fatal("content lost across reopen")
	}
}

func TestFreeAndRecycle(t *testing.T) {
	pf := tempFile(t)
	a, _ := pf.Allocate()
	b, _ := pf.Allocate()
	if err := pf.Free(a); err != nil {
		t.Fatal(err)
	}
	c, _ := pf.Allocate()
	if c != a {
		t.Fatalf("recycled page %d, want %d", c, a)
	}
	_ = b
	// Free list across reopen.
	if err := pf.Free(b); err != nil {
		t.Fatal(err)
	}
	path := pf.f.Name()
	pf.Close()
	pf2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	d, err := pf2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if d != b {
		t.Fatalf("reopened recycle gave %d, want %d", d, b)
	}
}

func TestFreeInvalid(t *testing.T) {
	pf := tempFile(t)
	if err := pf.Free(0); err == nil {
		t.Error("freeing header succeeded")
	}
	if err := pf.Free(99); err == nil {
		t.Error("freeing unallocated page succeeded")
	}
}

func TestReadWriteBounds(t *testing.T) {
	pf := tempFile(t)
	buf := make([]byte, PageSize)
	if err := pf.ReadPage(0, buf); err == nil {
		t.Error("read of header via ReadPage succeeded")
	}
	if err := pf.ReadPage(5, buf); err == nil {
		t.Error("read past end succeeded")
	}
	if err := pf.ReadPage(1, make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := writeFile(path, []byte("this is not a page file, far too short anyway")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted garbage")
	}
}

func TestClosedFileOperations(t *testing.T) {
	pf := tempFile(t)
	pf.Close()
	if _, err := pf.Allocate(); err != ErrClosed {
		t.Errorf("Allocate after close: %v", err)
	}
	if err := pf.ReadPage(1, make([]byte, PageSize)); err != ErrClosed {
		t.Errorf("ReadPage after close: %v", err)
	}
	if err := pf.SetMeta(nil); err != ErrClosed {
		t.Errorf("SetMeta after close: %v", err)
	}
	if err := pf.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestSetMetaTooLarge(t *testing.T) {
	pf := tempFile(t)
	if err := pf.SetMeta(make([]byte, PageSize)); err == nil {
		t.Fatal("oversized meta accepted")
	}
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}
