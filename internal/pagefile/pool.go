package pagefile

import (
	"fmt"
	"sync"
)

// BufferPool is a real pinning LRU buffer pool over a page file: a fixed
// number of frames, read-through on miss, least-recently-used replacement
// skipping pinned frames. It mirrors the [GR 93] buffer the paper assumes,
// but against actual file I/O.
//
// The pool is safe for concurrent use; it serializes all operations (and
// thereby all file access) with one mutex. Page bytes returned by Fix stay
// valid until the matching Unfix because pinned frames are never evicted.
type BufferPool struct {
	mu       sync.Mutex
	file     *File
	capacity int
	frames   map[PageID]*frame
	head     *frame // most recently used
	tail     *frame

	hits, misses int64
}

type frame struct {
	id         PageID
	data       [PageSize]byte
	pins       int
	dirty      bool
	prev, next *frame
}

// NewBufferPool creates a pool with the given number of frames
// (capacity >= 1).
func NewBufferPool(file *File, capacity int) *BufferPool {
	if capacity < 1 {
		panic(fmt.Sprintf("pagefile: pool capacity %d < 1", capacity))
	}
	return &BufferPool{
		file:     file,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
	}
}

// Hits and Misses report the pool's request counters.
func (bp *BufferPool) Hits() int64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits
}

// Misses reports the number of requests that needed physical I/O.
func (bp *BufferPool) Misses() int64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.misses
}

// Fix pins the page in memory and returns its bytes. The caller must call
// Unfix when done; the returned slice is valid until then. Mutations must
// be followed by MarkDirty before Unfix.
func (bp *BufferPool) Fix(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.hits++
		fr.pins++
		bp.moveToFront(fr)
		return fr.data[:], nil
	}
	bp.misses++
	fr, err := bp.allocFrame(id)
	if err != nil {
		return nil, err
	}
	if err := bp.file.ReadPage(id, fr.data[:]); err != nil {
		bp.remove(fr)
		return nil, err
	}
	fr.pins = 1
	return fr.data[:], nil
}

// FixNew pins a frame for a freshly allocated page without reading from
// disk (its content starts zeroed).
func (bp *BufferPool) FixNew(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if _, ok := bp.frames[id]; ok {
		return nil, fmt.Errorf("pagefile: FixNew of resident page %d", id)
	}
	fr, err := bp.allocFrame(id)
	if err != nil {
		return nil, err
	}
	fr.pins = 1
	fr.dirty = true
	return fr.data[:], nil
}

// allocFrame makes room (evicting if needed) and links a fresh frame.
func (bp *BufferPool) allocFrame(id PageID) (*frame, error) {
	if len(bp.frames) >= bp.capacity {
		victim := bp.tail
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil {
			return nil, fmt.Errorf("pagefile: all %d frames pinned", bp.capacity)
		}
		if victim.dirty {
			if err := bp.file.WritePage(victim.id, victim.data[:]); err != nil {
				return nil, err
			}
		}
		bp.remove(victim)
	}
	fr := &frame{id: id}
	bp.pushFront(fr)
	bp.frames[id] = fr
	return fr, nil
}

// MarkDirty records that the pinned page was modified and must reach disk.
func (bp *BufferPool) MarkDirty(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("pagefile: MarkDirty of unpinned page %d", id))
	}
	fr.dirty = true
}

// Unfix releases one pin.
func (bp *BufferPool) Unfix(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("pagefile: Unfix of unpinned page %d", id))
	}
	fr.pins--
}

// Flush writes every dirty frame back to the file.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for fr := bp.head; fr != nil; fr = fr.next {
		if fr.dirty {
			if err := bp.file.WritePage(fr.id, fr.data[:]); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Resident returns the number of buffered pages (diagnostics).
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

func (bp *BufferPool) pushFront(fr *frame) {
	fr.prev = nil
	fr.next = bp.head
	if bp.head != nil {
		bp.head.prev = fr
	}
	bp.head = fr
	if bp.tail == nil {
		bp.tail = fr
	}
}

func (bp *BufferPool) remove(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		bp.head = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		bp.tail = fr.prev
	}
	delete(bp.frames, fr.id)
}

func (bp *BufferPool) moveToFront(fr *frame) {
	if bp.head == fr {
		return
	}
	bp.remove(fr)
	bp.pushFront(fr)
	bp.frames[fr.id] = fr
}
