// Package pagefile is a real paged storage engine: fixed-size 4 KB pages in
// a single file, with a header page, a free list, an application metadata
// area and a pinning LRU buffer pool. Where package storage *simulates* the
// paper's disk array in virtual time, this package performs actual I/O —
// internal/rtree builds on it to persist trees and join them out-of-core.
package pagefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// PageSize is the fixed page size in bytes (the paper's 4 KB).
const PageSize = 4096

// PageID addresses one page of a file. Page 0 is the header and is never
// handed out.
type PageID int32

// InvalidPage is returned when no page is available/applicable.
const InvalidPage PageID = 0

const (
	magic         = "SPJF"
	headerMagic   = 0
	headerPages   = 4  // u32 page count (including header)
	headerFree    = 8  // i32 free list head (0 = none)
	headerMetaLen = 12 // u16 application metadata length
	headerMeta    = 14 // metadata bytes
	maxMetaLen    = PageSize - headerMeta
)

// ErrClosed is returned for operations on a closed file.
var ErrClosed = errors.New("pagefile: file closed")

// File is a paged file. It is not safe for concurrent use; wrap access in
// the BufferPool (which serializes) or external locking.
type File struct {
	f         *os.File
	pageCount int32
	freeHead  PageID
	meta      []byte
	closed    bool

	// Reads and Writes count physical page transfers (diagnostics and the
	// out-of-core join's I/O metric).
	Reads, Writes int64
}

// Create creates (or truncates) a paged file.
func Create(path string) (*File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	pf := &File{f: f, pageCount: 1}
	if err := pf.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return pf, nil
}

// Open opens an existing paged file and validates its header.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	pf := &File{f: f}
	var header [PageSize]byte
	if _, err := f.ReadAt(header[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: reading header: %w", err)
	}
	if string(header[headerMagic:headerMagic+4]) != magic {
		f.Close()
		return nil, fmt.Errorf("pagefile: %s is not a page file", path)
	}
	pf.pageCount = int32(binary.LittleEndian.Uint32(header[headerPages:]))
	pf.freeHead = PageID(binary.LittleEndian.Uint32(header[headerFree:]))
	metaLen := int(binary.LittleEndian.Uint16(header[headerMetaLen:]))
	if metaLen > maxMetaLen {
		f.Close()
		return nil, fmt.Errorf("pagefile: corrupt metadata length %d", metaLen)
	}
	pf.meta = append([]byte(nil), header[headerMeta:headerMeta+metaLen]...)
	if pf.pageCount < 1 {
		f.Close()
		return nil, fmt.Errorf("pagefile: corrupt page count %d", pf.pageCount)
	}
	return pf, nil
}

// writeHeader persists the header page.
func (pf *File) writeHeader() error {
	var header [PageSize]byte
	copy(header[headerMagic:], magic)
	binary.LittleEndian.PutUint32(header[headerPages:], uint32(pf.pageCount))
	binary.LittleEndian.PutUint32(header[headerFree:], uint32(pf.freeHead))
	binary.LittleEndian.PutUint16(header[headerMetaLen:], uint16(len(pf.meta)))
	copy(header[headerMeta:], pf.meta)
	_, err := pf.f.WriteAt(header[:], 0)
	return err
}

// Meta returns the application metadata stored in the header.
func (pf *File) Meta() []byte { return append([]byte(nil), pf.meta...) }

// SetMeta stores up to 4 KB minus header of application metadata.
func (pf *File) SetMeta(meta []byte) error {
	if pf.closed {
		return ErrClosed
	}
	if len(meta) > maxMetaLen {
		return fmt.Errorf("pagefile: metadata %d bytes exceeds %d", len(meta), maxMetaLen)
	}
	pf.meta = append([]byte(nil), meta...)
	return pf.writeHeader()
}

// PageCount returns the number of pages including the header.
func (pf *File) PageCount() int { return int(pf.pageCount) }

// Allocate returns a fresh (or recycled) page id.
func (pf *File) Allocate() (PageID, error) {
	if pf.closed {
		return InvalidPage, ErrClosed
	}
	if pf.freeHead != 0 {
		id := pf.freeHead
		var buf [PageSize]byte
		if err := pf.ReadPage(id, buf[:]); err != nil {
			return InvalidPage, err
		}
		pf.freeHead = PageID(binary.LittleEndian.Uint32(buf[:4]))
		return id, pf.writeHeader()
	}
	id := PageID(pf.pageCount)
	pf.pageCount++
	var zero [PageSize]byte
	if _, err := pf.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		pf.pageCount--
		return InvalidPage, err
	}
	return id, pf.writeHeader()
}

// Free recycles a page onto the free list. Freeing the header or an
// unallocated page is an error.
func (pf *File) Free(id PageID) error {
	if pf.closed {
		return ErrClosed
	}
	if id <= 0 || int32(id) >= pf.pageCount {
		return fmt.Errorf("pagefile: cannot free page %d", id)
	}
	var buf [PageSize]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(pf.freeHead))
	if _, err := pf.f.WriteAt(buf[:], int64(id)*PageSize); err != nil {
		return err
	}
	pf.freeHead = id
	return pf.writeHeader()
}

// ReadPage fills buf (len PageSize) with the page's content.
func (pf *File) ReadPage(id PageID, buf []byte) error {
	if pf.closed {
		return ErrClosed
	}
	if err := pf.checkPage(id, len(buf)); err != nil {
		return err
	}
	if _, err := pf.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	pf.Reads++
	return nil
}

// WritePage stores buf (len PageSize) as the page's content.
func (pf *File) WritePage(id PageID, buf []byte) error {
	if pf.closed {
		return ErrClosed
	}
	if err := pf.checkPage(id, len(buf)); err != nil {
		return err
	}
	if _, err := pf.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagefile: write page %d: %w", id, err)
	}
	pf.Writes++
	return nil
}

func (pf *File) checkPage(id PageID, bufLen int) error {
	if bufLen < PageSize {
		return fmt.Errorf("pagefile: buffer %d bytes, need %d", bufLen, PageSize)
	}
	if id <= 0 || int32(id) >= pf.pageCount {
		return fmt.Errorf("pagefile: page %d out of range [1, %d)", id, pf.pageCount)
	}
	return nil
}

// Sync flushes to stable storage.
func (pf *File) Sync() error {
	if pf.closed {
		return ErrClosed
	}
	return pf.f.Sync()
}

// Close syncs and closes the file.
func (pf *File) Close() error {
	if pf.closed {
		return nil
	}
	pf.closed = true
	if err := pf.f.Sync(); err != nil {
		pf.f.Close()
		return err
	}
	return pf.f.Close()
}
