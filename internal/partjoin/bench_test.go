package partjoin

import (
	"fmt"
	"testing"

	"spjoin/internal/tiger"
)

// BenchmarkJoinGrid sweeps the grid side on the seed workload — the
// tuning data behind autoGrid's rects-per-tile constant.
func BenchmarkJoinGrid(b *testing.B) {
	streets, mixed := tiger.Maps(0.02, 42)
	for _, g := range []int{0, 4, 6, 8, 11, 16, 24} {
		b.Run(fmt.Sprintf("grid%d", g), func(b *testing.B) {
			var j Joiner
			defer j.Close()
			cfg := Config{Grid: g}
			j.Join(streets, mixed, cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j.Join(streets, mixed, cfg)
			}
		})
	}
}
