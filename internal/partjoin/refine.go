package partjoin

import (
	"sort"

	"spjoin/internal/geom"
)

// Adaptive tile refinement: the uniform grid degrades on clustered inputs —
// one hot tile can hold a large fraction of both sides, so its sweep
// dominates the join no matter how many workers idle beside it (the Join
// Product Skew problem). After the counting-sort scatter, tiles whose
// estimated sweep cost exceeds a threshold are therefore split recursively
// into refineK×refineK subtiles, and the per-tile join schedule becomes a
// schedule of work units: unrefined tiles plus refined leaf subtiles,
// largest estimated sweep first.
//
// Correctness hinges on the reference-point rule surviving the split. Each
// split freezes its own geometry (origin + inverse cell extents) in the
// refNode it creates, and the emit-time ownership walk re-evaluates the
// exact same clamped monotone expression the assignment used. The
// reference point p = (max MinX, min MaxY) of an intersecting pair lies
// inside both rects, so at every level p's subcell is inside both rects'
// clamped cell ranges — the chain of subcells containing p therefore leads
// to exactly one leaf holding both rects, and only that leaf's ownership
// walk succeeds. Every other unit drops the pair as a duplicate, exactly
// like the root grid's cross-tile duplicates.

const (
	// RefineDisabled as Config.RefineThreshold turns refinement off.
	RefineDisabled = -1

	// refineK is the per-axis fan-out of one split (refineK² subcells).
	refineK = 4

	// refineMaxDepth caps the recursion: with refineK=4 six levels refine a
	// tile 4096× per axis, far past any realistic cluster density.
	refineMaxDepth = 6

	// refineMinCost floors the auto threshold: below ~32k estimated sweep
	// steps a tile joins faster than it splits.
	refineMinCost = 1 << 15

	// refineBudgetFactor bounds the refinement arenas at a multiple of the
	// root assignment size. Replication can compound level over level on
	// adversarial inputs (every rect spanning every subcell); the budget
	// turns that into "stop refining", never into unbounded memory.
	refineBudgetFactor = 8
)

// workUnit is one schedulable join task: a root tile (node < 0) or a
// refined leaf subtile (node indexes Joiner.refNodes).
type workUnit struct {
	tile int32
	node int32
}

// refNode is one subtile produced by a split. It stores the frozen
// geometry of the split that created it, so assignment (splitSeg) and the
// emit-time ownership test share the exact expression — which is what
// keeps the duplicate suppression exact under refinement.
type refNode struct {
	parent int32 // parent refNode index, or -1 when the parent is the root tile
	tile   int32 // root tile id (the root reference-point check still applies)
	sx, sy int32 // this node's subcell in the split that created it

	// The creating split maps a point p to subcell
	//   (clampTile(int((p.x-orgX)*invW), kx), clampTile(int((p.y-orgY)*invH), ky)).
	// A degenerate axis keeps k=1 and inv=0, mirroring the root grid's
	// collapsed-stripe convention.
	kx, ky     int32
	orgX, orgY float64
	invW, invH float64

	// Segment ranges into the refinement arenas (refRIdx/refSIdx and the
	// position-space refRPlanes/refSPlanes). Only leaf nodes are joined,
	// but interior nodes keep their ranges for the recursion.
	rLo, rHi int32
	sLo, sHi int32
}

// refCell is the geometry with which a cell's contents would be split:
// the candidate child grid of one tile or subtile.
type refCell struct {
	orgX, orgY float64
	invW, invH float64
	kx, ky     int32
}

// rootCell returns the split geometry of root tile (tx, ty): its own
// extent divided refineK ways per non-degenerate axis.
func (j *Joiner) rootCell(tx, ty int) refCell {
	c := refCell{kx: 1, ky: 1, orgX: j.minX, orgY: j.minY}
	if j.invW > 0 {
		c.orgX = j.minX + float64(tx)/j.invW
		c.invW = refineK * j.invW
		c.kx = refineK
	}
	if j.invH > 0 {
		c.orgY = j.minY + float64(ty)/j.invH
		c.invH = refineK * j.invH
		c.ky = refineK
	}
	return c
}

// childCell returns the split geometry of subcell (cx, cy) of cell: the
// same construction one level finer.
func childCell(cell refCell, cx, cy int32) refCell {
	c := refCell{kx: 1, ky: 1, orgX: cell.orgX, orgY: cell.orgY}
	if cell.invW > 0 {
		c.orgX = cell.orgX + float64(cx)/cell.invW
		c.invW = refineK * cell.invW
		c.kx = refineK
	}
	if cell.invH > 0 {
		c.orgY = cell.orgY + float64(cy)/cell.invH
		c.invH = refineK * cell.invH
		c.ky = refineK
	}
	return c
}

// cellRange returns the inclusive subcell range of r under cell — the same
// clamped monotone mapping tileOf applies at the root. An inverted rect
// (EmptyRect) yields an inverted range and is assigned nowhere, matching
// its root-grid fate.
func cellRange(r *geom.Rect, cell refCell) (x0, y0, x1, y1 int32) {
	x0 = int32(clampTile(int((r.MinX-cell.orgX)*cell.invW), int(cell.kx)))
	x1 = int32(clampTile(int((r.MaxX-cell.orgX)*cell.invW), int(cell.kx)))
	y0 = int32(clampTile(int((r.MinY-cell.orgY)*cell.invH), int(cell.ky)))
	y1 = int32(clampTile(int((r.MaxY-cell.orgY)*cell.invH), int(cell.ky)))
	return
}

// resolveThreshold turns Config.RefineThreshold into the two working cost
// bounds: trigger (a tile costlier than this is refined at all) and
// recurse (a subtile costlier than this is split further). A negative raw
// disables refinement; a positive raw is explicit and serves as both
// bounds, so tests and the planner control the depth directly. Zero — the
// default — derives the trigger from the schedule itself: a tile is hot
// when its sweep cost approaches a worker's fair share of the total (such
// a tile bounds the join's wall time single-handedly, the definition of a
// straggler). Deliberately not relative to the mean tile: on all-cluster
// inputs every non-empty tile is expensive and a mean-relative rule would
// see no outliers at all. Once a tile is hot, recursion continues down to
// refineMinCost — the sweep's sweet spot — because the benefit of
// splitting (subcell separation pruning comparisons) keeps paying far
// below the straggler bound.
func (j *Joiner) resolveThreshold(raw int64) (trigger, recurse int64) {
	if raw != 0 {
		return raw, raw
	}
	if len(j.cost) == 0 {
		return RefineDisabled, RefineDisabled
	}
	var total int64
	for _, c := range j.cost {
		total += c
	}
	trigger = total / int64(4*j.workers)
	if trigger < refineMinCost {
		trigger = refineMinCost
	}
	return trigger, refineMinCost
}

// buildUnits turns the non-empty tiles (j.tiles/j.cost) into the join
// phase's work-unit schedule, refining tiles costlier than thr. It runs
// sequentially on the owner goroutine — splitting is a small counting
// sort per hot tile — and finishes by filling the refinement planes in
// parallel and sorting the units largest-first.
func (j *Joiner) buildUnits(trigger, recurse int64) {
	j.units = j.units[:0]
	j.ucost = j.ucost[:0]
	j.refNodes = j.refNodes[:0]
	j.refRIdx = j.refRIdx[:0]
	j.refSIdx = j.refSIdx[:0]
	j.refinedTiles, j.subtiles = 0, 0
	j.refBudget = refineBudgetFactor * (len(j.rPart.idx) + len(j.sPart.idx))
	for i, t := range j.tiles {
		c := j.cost[i]
		if trigger >= 0 && c > trigger {
			before := len(j.units)
			if j.refineRoot(t, recurse) {
				j.refinedTiles++
				j.subtiles += len(j.units) - before
				continue
			}
		}
		j.units = append(j.units, workUnit{tile: t, node: -1})
		j.ucost = append(j.ucost, c)
	}
	j.refRPlanes.Reset(len(j.refRIdx))
	j.refSPlanes.Reset(len(j.refSIdx))
	if len(j.refRIdx)+len(j.refSIdx) > 0 {
		j.runPhase(phaseRefineFill)
	}
	j.order.j = j
	sort.Sort(&j.order)
}

// refineRoot splits root tile t. It reports whether a split was committed
// (the subtree's leaf units were appended — possibly none, when no subcell
// holds both sides and the tile provably owns no pairs); false means no
// profitable split exists and the caller joins the tile whole.
func (j *Joiner) refineRoot(t int32, thr int64) bool {
	rLo, rHi := j.rPart.starts[t], j.rPart.starts[t+1]
	sLo, sHi := j.sPart.starts[t], j.sPart.starts[t+1]
	cell := j.rootCell(int(t)%j.gx, int(t)/j.gx)
	return j.splitSeg(j.rPart.idx[rLo:rHi], j.sPart.idx[sLo:sHi], cell, -1, t, 0, thr)
}

// splitSeg attempts to split one cell's segments under the given child
// geometry: count both sides into the subcells, decide whether the split
// pays, scatter into the refinement arenas, create the live child nodes
// and recurse into the still-hot ones. Parent segments are passed as
// slices — either root tile segments or (possibly stale generations of)
// the arenas; stale backing arrays remain valid to read, and nodes store
// index ranges, never views.
func (j *Joiner) splitSeg(rSeg, sSeg []int32, cell refCell, parent, tile int32, depth int, thr int64) bool {
	k := cell.kx * cell.ky
	if k <= 1 {
		return false // degenerate in both axes: nothing to split by
	}
	var rCnt, sCnt [refineK * refineK]int32
	countCells(j.rRects, rSeg, cell, rCnt[:k])
	countCells(j.sRects, sSeg, cell, sCnt[:k])

	pn, psn := int64(len(rSeg)), int64(len(sSeg))
	parentCost := pn*psn + pn + psn
	var sumCost, maxCost int64
	live := 0
	for c := int32(0); c < k; c++ {
		rn, sn := int64(rCnt[c]), int64(sCnt[c])
		if rn == 0 || sn == 0 {
			continue
		}
		live++
		cc := rn*sn + rn + sn
		sumCost += cc
		if cc > maxCost {
			maxCost = cc
		}
	}
	// No subcell holds both sides: the reference point of any intersecting
	// pair would land in a subcell containing both rects, so the cell owns
	// no pairs at all — prune it from the schedule entirely.
	if live == 0 {
		return true
	}
	// Progress rule. A single live subcell is a zoom: commit so the next
	// level can separate a cluster tighter than this cell (the depth cap
	// bounds fruitless zooming). Otherwise require strict progress on the
	// dominant subcell and tolerate a little boundary-replication growth
	// in the total — a split whose biggest piece shrinks can pay hugely
	// one level down even when replication nudges the sum past the parent.
	if live > 1 && (maxCost >= parentCost || sumCost > parentCost+parentCost/8) {
		return false
	}
	var rTotal, sTotal int32
	for c := int32(0); c < k; c++ {
		rTotal += rCnt[c]
		sTotal += sCnt[c]
	}
	if len(j.refRIdx)+int(rTotal)+len(j.refSIdx)+int(sTotal) > j.refBudget {
		return false
	}

	// Reserve arena ranges and scatter. Walking the parent segment in
	// order keeps every child segment sweep-sorted (the root segments are,
	// inductively so is every level).
	rBase := extendArena(&j.refRIdx, int(rTotal))
	sBase := extendArena(&j.refSIdx, int(sTotal))
	var rCur, sCur [refineK * refineK]int32
	off := rBase
	for c := int32(0); c < k; c++ {
		rCur[c] = off
		off += rCnt[c]
	}
	off = sBase
	for c := int32(0); c < k; c++ {
		sCur[c] = off
		off += sCnt[c]
	}
	scatterCells(j.rRects, rSeg, cell, j.refRIdx, rCur[:k])
	scatterCells(j.sRects, sSeg, cell, j.refSIdx, sCur[:k])

	// Create the live children; recurse into the ones still over budget.
	rOff, sOff := rBase, sBase
	for cy := int32(0); cy < cell.ky; cy++ {
		for cx := int32(0); cx < cell.kx; cx++ {
			c := cy*cell.kx + cx
			crn, csn := rCnt[c], sCnt[c]
			rLo, sLo := rOff, sOff
			rOff += crn
			sOff += csn
			if crn == 0 || csn == 0 {
				continue
			}
			node := int32(len(j.refNodes))
			j.refNodes = append(j.refNodes, refNode{
				parent: parent, tile: tile, sx: cx, sy: cy,
				kx: cell.kx, ky: cell.ky,
				orgX: cell.orgX, orgY: cell.orgY,
				invW: cell.invW, invH: cell.invH,
				rLo: rLo, rHi: rLo + crn, sLo: sLo, sHi: sLo + csn,
			})
			childCost := int64(crn)*int64(csn) + int64(crn) + int64(csn)
			if childCost > thr && depth+1 < refineMaxDepth {
				// Recursion may grow (and move) the arenas, so the child
				// views are resliced fresh from the saved index ranges on
				// every iteration; a moved backing array stays readable.
				if j.splitSeg(j.refRIdx[rLo:rLo+crn], j.refSIdx[sLo:sLo+csn],
					childCell(cell, cx, cy), node, tile, depth+1, thr) {
					continue
				}
			}
			j.units = append(j.units, workUnit{tile: tile, node: node})
			j.ucost = append(j.ucost, childCost)
		}
	}
	return true
}

// countCells counts how many rects of seg overlap each subcell of cell.
func countCells(rects []geom.Rect, seg []int32, cell refCell, cnt []int32) {
	for _, i := range seg {
		x0, y0, x1, y1 := cellRange(&rects[i], cell)
		for cy := y0; cy <= y1; cy++ {
			base := cy * cell.kx
			for cx := x0; cx <= x1; cx++ {
				cnt[base+cx]++
			}
		}
	}
}

// scatterCells writes seg's rect indices into the arena at the per-subcell
// cursors, preserving seg order within every subcell.
func scatterCells(rects []geom.Rect, seg []int32, cell refCell, arena []int32, cur []int32) {
	for _, i := range seg {
		x0, y0, x1, y1 := cellRange(&rects[i], cell)
		for cy := y0; cy <= y1; cy++ {
			base := cy * cell.kx
			for cx := x0; cx <= x1; cx++ {
				arena[cur[base+cx]] = i
				cur[base+cx]++
			}
		}
	}
}

// extendArena grows s by n slots and returns the offset of the new range.
// Doubling keeps steady-state rebuilds allocation-free once the arena has
// seen its high-water mark.
func extendArena(s *[]int32, n int) int32 {
	base := len(*s)
	if base+n <= cap(*s) {
		*s = (*s)[:base+n]
	} else {
		grown := make([]int32, base+n, 2*(base+n))
		copy(grown, *s)
		*s = grown
	}
	return int32(base)
}

// refineFillChunk is phaseRefineFill: copy this worker's chunk of the
// refinement arenas into the position-space planes, the exact analogue of
// fillChunk for the subtile segments.
func (j *Joiner) refineFillChunk(w int) {
	lo, hi := j.chunkRange(len(j.refRIdx), w)
	for pos := lo; pos < hi; pos++ {
		j.refRPlanes.SetRect(pos, j.rRects[j.refRIdx[pos]])
	}
	lo, hi = j.chunkRange(len(j.refSIdx), w)
	for pos := lo; pos < hi; pos++ {
		j.refSPlanes.SetRect(pos, j.sRects[j.refSIdx[pos]])
	}
}

// joinSub joins one refined leaf subtile, the node analogue of joinTile.
func (j *Joiner) joinSub(ws *workerState, n int32) int {
	nd := &j.refNodes[n]
	rSeg := j.refRIdx[nd.rLo:nd.rHi]
	sSeg := j.refSIdx[nd.sLo:nd.sHi]
	rView := j.refRPlanes.View(int(nd.rLo), int(nd.rHi))
	sView := j.refSPlanes.View(int(nd.sLo), int(nd.sHi))
	t := int(nd.tile)
	return j.joinSegs(ws, rSeg, sSeg, &rView, &sView, t%j.gx, t/j.gx, n)
}

// ownsRefined walks the node chain checking that the reference point
// (px, py) falls in this subtile at every split level. Each check
// re-evaluates the creating split's frozen mapping — the same expression
// assignment used — so exactly the leaf on p's subcell chain passes.
func (j *Joiner) ownsRefined(node int32, px, py float64) bool {
	for m := node; m >= 0; {
		nd := &j.refNodes[m]
		if int32(clampTile(int((px-nd.orgX)*nd.invW), int(nd.kx))) != nd.sx ||
			int32(clampTile(int((py-nd.orgY)*nd.invH), int(nd.ky))) != nd.sy {
			return false
		}
		m = nd.parent
	}
	return true
}
