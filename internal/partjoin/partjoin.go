// Package partjoin implements a partition-based parallel in-memory spatial
// join: instead of traversing two R*-trees in tandem (package parnative),
// both rectangle sets are bucketed onto a uniform grid and every tile is
// joined independently with the zero-allocation SoA plane-sweep.
//
// The design follows the in-memory results of Tsitsigkos & Mamoulis
// ("Parallel In-Memory Evaluation of Spatial Joins", arXiv:1908.11740):
//
//   - Each side is first sorted globally by (MinX, MinY, index) — the
//     plane-sweep order. The sort is adaptive: repeated joins reuse the
//     previous order, and the counting pass verifies it in flight (a
//     stale order triggers a sort and recount).
//   - Assignment replicates each rectangle into every tile its MBR
//     overlaps, via a parallel two-pass counting sort (count, prefix-sum,
//     scatter) into one flat index array — no per-item allocation. The
//     scatter walks the sweep order, so every tile segment comes out
//     already sweep-sorted and the per-tile joins never sort.
//   - Each tile segment carries a coordinate-plane (SoA) copy of its
//     rectangles in segment position order, so the per-tile sweep
//     (geom.SweepPairsPlanesDense) walks dense float64 streams with no
//     index indirection; tiles are scheduled largest-first over a
//     parnative.Pool so stragglers start early.
//   - A pair intersecting in several tiles is reported exactly once, by
//     the reference-point method: only the tile containing the top-left
//     corner of the intersection of the two MBRs reports it.
//
// A Joiner is reusable, and aggressively so: after a warm-up run the whole
// join performs zero heap allocations, and a re-join over unchanged inputs
// skips the sort and the bucketing entirely — a sequential compare pass
// proves the cached tile segments still exact, so only the sweeps and the
// result assembly run. Mutated inputs degrade gracefully: in-tile changes
// keep the segments, cross-tile changes recount, reorderings re-sort.
package partjoin

import (
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"spjoin/internal/geom"
	"spjoin/internal/join"
	"spjoin/internal/metrics"
	"spjoin/internal/parnative"
	"spjoin/internal/rtree"
	"spjoin/internal/runtimeobs"
	"spjoin/internal/sim"
	"spjoin/internal/timeline"
)

// Config controls a partition-based join.
type Config struct {
	// Workers is the parallelism degree (default: GOMAXPROCS).
	Workers int
	// Grid is the number of tiles per axis (Grid×Grid tiles over the data
	// MBR). 0 picks a size proportional to sqrt of the input cardinality.
	Grid int
	// Sorted returns the candidates sorted by (R, S) id so results are
	// deterministic regardless of scheduling.
	Sorted bool
	// Barrier forces the pre-pipeline cold-path build: scatter, fill and
	// sweep run as separate full pool barriers instead of the fused
	// pipelined phase. The results are bit-identical either way — the flag
	// exists as the reference engine for the pipelined path's equivalence
	// tests and as an escape hatch.
	Barrier bool
	// RefineThreshold controls adaptive tile refinement (see refine.go):
	// 0 derives a threshold from the tile cost distribution (the default —
	// refinement engages only when the grid is skewed), RefineDisabled
	// (any negative value) turns refinement off, and a positive value is
	// the explicit per-tile sweep-cost bound above which a tile is split.
	RefineThreshold int64
	// Metrics, when set, receives the run's counters under the "partjoin."
	// prefix (partitions joined, duplicates suppressed, per-worker pairs).
	Metrics *metrics.Registry
	// Timeline, when set, records one wall-clock cpu-sweep span per tile
	// join plus one phase span per worker per pipeline phase. Size it with
	// timeline.NewWallRecorder over the resolved worker count; each worker
	// writes only its own track.
	Timeline *timeline.Recorder
	// Introspect, when true, additionally fills Result.TopTiles and
	// Result.Heat from the work-unit schedule (one O(units) scan). Off by
	// default so the hot path stays free of the extra pass; the phase
	// timings in Result.PhaseNS are cheap enough to be always on.
	Introspect bool
	// Progress, when set, receives live progress for the join: the slot is
	// Started when the join begins, the work-unit schedule (units and
	// summed sweep cost) is published once built — adjusted if refinement
	// reshapes it — and every completed unit is reported as it finishes.
	// Observation-only: a nil slot costs one nil-check per unit.
	Progress *runtimeobs.Progress
}

// Introspection constants: the downsampled tile-cost heat grid is at most
// HeatSide×HeatSide cells, and TopTileK work units are reported per join.
const (
	HeatSide = 16
	TopTileK = 8
)

// TileCost is one work unit of the join schedule, reported (largest
// estimated sweep cost first) in Result.TopTiles.
type TileCost struct {
	// TX, TY are the root tile coordinates of the unit.
	TX, TY int
	// Refined marks a refined leaf subtile (false = whole root tile).
	Refined bool
	// Cost is the unit's estimated sweep cost (rn*sn + rn + sn).
	Cost int64
}

// Result of a partition-based join.
type Result struct {
	// Candidates is the filter-step output — exactly the intersecting
	// (R item, S item) pairs, each reported once. The slice is owned by
	// the Joiner and valid until its next Join call.
	Candidates []join.Candidate
	// GX, GY are the grid dimensions used.
	GX, GY int
	// Partitions is the number of work units joined: unrefined non-empty
	// tiles plus refined leaf subtiles (units holding rectangles of both
	// sides).
	Partitions int
	// RefinedTiles is the number of hot tiles the adaptive refinement
	// split; Subtiles is the number of leaf subtile units they became.
	RefinedTiles int
	Subtiles     int
	// Duplicates is the number of cross-tile duplicate pairs suppressed by
	// the reference-point test.
	Duplicates int
	// Comparisons is the number of rectangle pairs tested across all tiles.
	Comparisons int
	// Workers is the parallelism degree used; PerWorker counts the
	// candidate pairs each worker emitted (view owned by the Joiner).
	Workers   int
	PerWorker []int
	// PhaseNS is the wall time spent in each pipeline phase, indexed by the
	// timeline.Phase* constants. Always filled — the cost is a handful of
	// clock reads — and a phase the run skipped reads zero, so the steady
	// state's fast path is visible as empty sort/partition buckets.
	PhaseNS [timeline.NumPhases]int64
	// PipelineNS is the wall time of the fused scatter+fill+sweep pipeline
	// phase on a cold pipelined build, and zero on warm (fast-path) or
	// Barrier joins. When set, the partition/fill/sweep/refine buckets of
	// PhaseNS hold per-worker busy time summed across workers rather than
	// phase wall time — the phases overlap inside the pipeline, so wall
	// attribution per phase no longer exists.
	PipelineNS int64
	// TopTiles and Heat are filled only under Config.Introspect. TopTiles
	// holds the TopTileK costliest work units of the schedule; Heat is the
	// schedule's cost mass folded onto a row-major HeatW×HeatH grid
	// (HeatW = min(GX, HeatSide)). Both are views owned by the Joiner.
	TopTiles []TileCost
	Heat     []int64
	HeatW    int
	HeatH    int
}

// Join buckets the two rectangle sets onto a uniform grid and returns all
// intersecting pairs. It is the one-shot form of Joiner.Join; callers with
// repeated joins hold a Joiner to amortize its buffers and worker pool.
func Join(r, s []rtree.Item, cfg Config) Result {
	var j Joiner
	defer j.Close()
	res := j.Join(r, s, cfg)
	// The one-shot Joiner dies with this call; detach the result views.
	res.Candidates = append([]join.Candidate(nil), res.Candidates...)
	res.PerWorker = append([]int(nil), res.PerWorker...)
	res.TopTiles = append([]TileCost(nil), res.TopTiles...)
	res.Heat = append([]int64(nil), res.Heat...)
	return res
}

// phase identifiers: the Joiner runs its parallel phases over one
// parnative.Pool, dispatching on j.phase in RunWorker.
const (
	phaseMirror      = iota // copy items into SoA mirrors, union chunk MBRs
	phaseMirrorCheck        // compare items against mirrors, copy changes
	phaseSort               // sort both sides into global sweep order
	phaseCount              // count tile occupancy per worker chunk
	phaseScatter            // scatter rect indices into tile segments
	phaseFill               // fill the tile-segment coordinate planes
	phaseVerify             // re-verify sweep order and tile codes in place
	phaseRefineFill         // fill the refinement-arena coordinate planes
	phaseJoin               // sweep the work units, largest first
	phasePipeline           // fused scatter+fill+sweep+refine (see pipeline.go)
)

// batchMax is the small-side threshold below which a tile skips the
// sort+sweep and tests the few rects of one side against the gathered
// other side with the branchless batch-intersect kernel.
const batchMax = 8

// gridSide holds the counting-sort state of one input side.
type gridSide struct {
	counts   []int32 // workers×tiles count matrix, then scatter cursors
	starts   []int32 // tiles+1 segment boundaries into idx
	idx      []int32 // rect indices grouped by tile
	disorder []uint8 // per-worker flag: chunk out of order or codes stale
	mono     []uint8 // per-worker flag: chunk's tile columns ascend (see pipeline.go)

	// planes is the coordinate-plane copy of the tile segments, in segment
	// position space: planes rectangle p is rects[idx[p]]. Replicating the
	// coordinates here is what makes the per-tile sweep stride-free — both
	// sides of every tile are contiguous, sweep-sorted runs of the four
	// plane arrays. Filled by phaseFill after each scatter and refreshed on
	// the fast path only when the mirror check patched something.
	planes geom.Planes
}

// clearFlags resets the disorder flags ahead of a verification pass.
func (g *gridSide) clearFlags(workers int) {
	if cap(g.disorder) < workers {
		g.disorder = make([]uint8, workers)
	}
	g.disorder = g.disorder[:workers]
	clear(g.disorder)
}

// unsorted reports whether any worker's count pass found its chunk out of
// sweep order (flags set by bucketChunk, cleared by reset).
func (g *gridSide) unsorted(workers int) bool {
	for _, d := range g.disorder[:workers] {
		if d != 0 {
			return true
		}
	}
	return false
}

// workerState is the per-worker scratch and local counters; counters are
// flushed once after the join phase so the hot loop stays uncontended.
type workerState struct {
	cands      []join.Candidate
	hits       []geom.IndexPair
	mask       []uint64
	candSorter join.CandidateSorter

	pairs, dups, comps, parts int64

	// phaseNS is the worker's busy time per phase inside the fused pipeline
	// phase, summed into Result.PhaseNS after the run (idle spin excluded).
	phaseNS [timeline.NumPhases]int64
}

// Joiner holds the reusable state of the partition-based join: SoA mirrors
// of the inputs, the counting-sort buckets, per-worker scratch, and a
// persistent parnative.Pool. A Joiner is for use by a single goroutine;
// Close releases the pool's goroutines.
type Joiner struct {
	pool     *parnative.Pool
	workers  int
	phase    int32
	sortRuns bool // workers sort their runs before leaving phaseJoin

	rItems, sItems []rtree.Item
	rRects, sRects []geom.Rect
	rIDs, sIDs     []rtree.EntryID
	rOrd, sOrd     []int32 // global sweep orders, persisted across joins
	rTile, sTile   []int64 // per-sweep-position packed tile ranges
	rScr, sScr     []int32 // repair-sort scratch (geom.SortOrderByMinXScratch)

	// Count-phase controls: countMask selects the sides phaseCount walks
	// (bit 1 = R, bit 2 = S) and countVerify whether the pass doubles as the
	// sweep-order verification. The recount after a sort covers only the
	// sides whose order actually broke (redoR/redoS), with verification off
	// — the order is freshly sorted, so every rect must be counted even if
	// a NaN key leaves residual comparison oddities.
	countMask    uint8
	countVerify  bool
	redoR, redoS bool

	gx, gy     int
	minX, minY float64
	invW, invH float64

	rPart, sPart gridSide

	// Fast-path validity: when true, the tile segments (idx/starts), the
	// cached tile codes and the grid geometry above all describe the
	// mirrors as of the last full bucketing, so a join whose inputs still
	// match the mirrors can skip straight to the sweep phase.
	cacheOK                bool
	cGX, cRLen, cSLen, cWk int
	mdirty                 []uint8 // per-worker flag: mirror check saw a change

	bounds []geom.Rect // per-worker chunk MBR unions (phaseMirror)

	tiles []int32 // non-empty tile ids (schedule source)
	cost  []int64 // matching estimated cost per tiles entry

	// Work-unit schedule: unrefined tiles plus refined leaf subtiles,
	// sorted largest-first. The refinement arenas (refRIdx/refSIdx and
	// their position-space planes) are the subtile analogue of
	// gridSide.idx/planes; refNodes holds the frozen split geometry the
	// emit-time ownership walk re-evaluates. unitsOK + cThr gate the
	// clean-fast-path reuse of the whole schedule.
	units                  []workUnit
	ucost                  []int64
	refNodes               []refNode
	refRIdx                []int32
	refSIdx                []int32
	refRPlanes             geom.Planes
	refSPlanes             geom.Planes
	refBudget              int
	refinedTiles, subtiles int
	unitsOK                bool
	cThr                   int64

	order  tileOrder // reusable sorter over units/ucost
	cursor atomic.Int64
	prog   *runtimeobs.Progress // live-progress slot of the current join (may be nil)

	// Pipelined-build state (see pipeline.go): the cost-descending root
	// schedule (pOrder indexes j.tiles), its claim table, the per-worker
	// scatter frontiers and the refinement hand-off.
	pOrder                 []int32
	pipeOrd                pipeOrder
	ready                  parnative.ReadyQueue
	pipe                   pipeState
	pipeTrigger, pipeRecur int64
	pipelineNS             int64

	ws   []workerState
	runs [][]join.Candidate // per-worker run views for the sorted merge

	out       []join.Candidate
	perWorker []int

	met   *partMetrics
	rec   *timeline.Recorder
	epoch time.Time

	phaseNS  [timeline.NumPhases]int64
	topTiles []TileCost
	heat     []int64
}

// Close releases the Joiner's worker pool. The Joiner may be reused after
// Close (a new pool is created on demand).
func (j *Joiner) Close() {
	if j.pool != nil {
		j.pool.Close()
		j.pool = nil
	}
}

// Join computes all intersecting pairs between r and s. Rectangles must be
// finite (NaN/Inf coordinates land in an edge tile and are then subject to
// the comparison semantics of geom.Rect.Intersects, which never matches
// NaN). The returned Candidates and PerWorker slices are views owned by
// the Joiner, valid until the next Join call.
func (j *Joiner) Join(r, s []rtree.Item, cfg Config) Result {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := Result{Workers: workers}
	if len(r) == 0 || len(s) == 0 {
		j.perWorker = growInts(j.perWorker, workers)
		res.PerWorker = j.perWorker
		return res
	}
	j.sortRuns = cfg.Sorted
	if j.pool == nil || j.workers != workers {
		if j.pool != nil {
			j.pool.Close()
		}
		j.pool = parnative.NewPool(workers)
		j.workers = workers
	}
	j.rItems, j.sItems = r, s
	j.prog = cfg.Progress
	j.prog.Start()
	j.met = nil
	if cfg.Metrics != nil {
		j.met = newPartMetrics(cfg.Metrics, workers)
	}
	j.rec = cfg.Timeline
	if j.rec != nil {
		if got := len(j.rec.Procs()); got != workers {
			panic("partjoin: Timeline track count does not match Workers (size with NewWallRecorder)")
		}
		j.epoch = time.Now()
	}
	j.phaseNS = [timeline.NumPhases]int64{}

	// Phase 1: bring the SoA mirrors (what the sweep kernel consumes) in
	// sync with the items, as cheaply as the situation allows.
	//
	// The tile segments (idx/starts), the cached tile codes and the grid
	// geometry depend only on the mirrors, the sweep orders and the
	// cardinalities — so when a cache from a previous full bucketing is
	// on hand, a sequential compare-and-copy pass settles how much of it
	// survives:
	//
	//   - nothing changed: the segments are still exact; skip straight to
	//     the sweep phase. The steady-state join is then one sequential
	//     scan plus the sweeps — no sort, no bucketing.
	//   - some items changed: the mirrors were patched in place; a verify
	//     pass re-derives each rect's tile code and checks the sweep
	//     order. If every code matches under the cached grid geometry the
	//     segments remain exact (assignment depends only on the codes)
	//     and the sweep proceeds; otherwise fall through to a full
	//     bucketing. The cached geometry stays frozen while the codes
	//     hold — rects drifting outside the old data MBR clamp into the
	//     border tiles, which the reference-point dedup handles exactly.
	//
	// The full (cold) path mirrors unconditionally, unions the data MBR,
	// derives the grid and runs the two-pass counting sort below.
	j.rRects = growRects(j.rRects, len(r))
	j.sRects = growRects(j.sRects, len(s))
	j.rIDs = growIDs(j.rIDs, len(r))
	j.sIDs = growIDs(j.sIDs, len(s))
	g := cfg.Grid
	if g <= 0 {
		g = autoGrid(len(r)+len(s), workers)
	}
	fast := j.cacheOK && j.cGX == g && j.cWk == workers &&
		j.cRLen == len(r) && j.cSLen == len(s)
	clean := false     // fast with bit-identical coordinates: schedule reusable
	pipelined := false // cold build fused into the pipelined phase
	if fast {
		j.mdirty = growFlags(j.mdirty, workers)
		j.runPhase(phaseMirrorCheck)
		changed := false
		for _, d := range j.mdirty[:workers] {
			if d != 0 {
				changed = true
				break
			}
		}
		if changed {
			j.rPart.clearFlags(workers)
			j.sPart.clearFlags(workers)
			j.runPhase(phaseVerify)
			fast = !j.rPart.unsorted(workers) && !j.sPart.unsorted(workers)
			if fast {
				// The segments survived the mutation but the segment
				// planes still hold the old coordinates: re-fill them
				// from the patched mirrors.
				j.runPhase(phaseFill)
			}
		}
		clean = fast && !changed
	}
	if !fast {
		j.bounds = growRects(j.bounds, workers)
		j.runPhase(phaseMirror)
		mbr := geom.EmptyRect()
		for _, b := range j.bounds[:workers] {
			mbr = mbr.Union(b)
		}

		// Global sweep orders. The persisted order arrays carry the
		// previous join's permutation; the count pass verifies it while
		// counting, so a stale cache over still-sorted inputs pays no
		// sort.
		j.rOrd = prepOrder(j.rOrd, len(r))
		j.sOrd = prepOrder(j.sOrd, len(s))

		// Grid geometry. Degenerate extents (all rects on one line)
		// collapse that axis to a single stripe via invW/invH = 0.
		j.gx, j.gy = g, g
		j.minX, j.minY = mbr.MinX, mbr.MinY
		j.invW = safeInv(mbr.MaxX-mbr.MinX, g)
		j.invH = safeInv(mbr.MaxY-mbr.MinY, g)
		tiles := j.gx * j.gy

		// Two-pass counting sort of both sides into tile segments. The
		// count pass caches each rect's tile range; the scatter pass
		// walks the sweep order, so tile segments come out sweep-sorted.
		j.rTile = growCodes(j.rTile, len(r))
		j.sTile = growCodes(j.sTile, len(s))
		j.rPart.reset(workers, tiles)
		j.sPart.reset(workers, tiles)
		j.countMask, j.countVerify = 3, true
		j.runPhase(phaseCount)
		j.redoR = j.rPart.unsorted(workers)
		j.redoS = j.sPart.unsorted(workers)
		if j.redoR || j.redoS {
			// An order array is stale (first join, or the inputs
			// changed): sort the broken sides and recount them — and only
			// them; an intact side keeps its first-pass counts and codes.
			// The abandoned partial count is the cold-path price for the
			// steady state's free check.
			j.runPhase(phaseSort)
			mask := uint8(0)
			if j.redoR {
				j.rPart.reset(workers, tiles)
				mask |= 1
			}
			if j.redoS {
				j.sPart.reset(workers, tiles)
				mask |= 2
			}
			j.countMask, j.countVerify = mask, false
			j.runPhase(phaseCount)
		}
		j.rPart.prefixSum(workers, tiles)
		j.sPart.prefixSum(workers, tiles)
		if cfg.Barrier {
			j.runPhase(phaseScatter)
			j.runPhase(phaseFill)
		} else {
			pipelined = true
		}
		j.cacheOK = true
		j.cGX, j.cWk = g, workers
		j.cRLen, j.cSLen = len(r), len(s)
	}
	// Phase 5: schedule and sweep. The per-worker result state resets first
	// — the pipelined build sweeps inside its fused phase.
	j.ws = growStates(j.ws, workers)
	for w := range j.ws[:workers] {
		ws := &j.ws[w]
		ws.cands = ws.cands[:0]
		ws.pairs, ws.dups, ws.comps, ws.parts = 0, 0, 0, 0
		ws.phaseNS = [timeline.NumPhases]int64{}
	}
	j.pipelineNS = 0
	if pipelined {
		// Cold pipelined build: scatter, fill, refinement and the sweeps
		// run overlapped in one pool phase; the canonical work-unit
		// schedule is reconstructed afterwards so the reuse tiers see the
		// exact state a barrier build would have left.
		j.pipelineRun(cfg)
	} else if !(clean && j.unitsOK && j.cThr == cfg.RefineThreshold) {
		// Work-unit schedule: non-empty tiles largest-first, hot tiles
		// refined into leaf subtiles (see refine.go) so one dense cluster
		// cannot turn into a single straggling sweep. A clean fast-path
		// join over bit-identical coordinates reuses the previous schedule
		// outright — assignment and refinement are functions of the
		// coordinates — while a patched join rebuilds it.
		// The refine bucket gets this whole block's wall time; runPhase
		// accrues the inner refine-fill there too, so overwrite the bucket
		// with the block total instead of double counting.
		refBefore := j.phaseNS[timeline.PhaseRefine]
		tRef := time.Now()
		if j.rec != nil {
			j.rec.BeginSpan(0, wallSince(j.epoch), timeline.KindPhase,
				sim.SpanArgs{A: timeline.PhaseRefine})
		}
		tiles := j.gx * j.gy
		j.tiles = j.tiles[:0]
		j.cost = j.cost[:0]
		for t := 0; t < tiles; t++ {
			rn := int64(j.rPart.starts[t+1] - j.rPart.starts[t])
			sn := int64(j.sPart.starts[t+1] - j.sPart.starts[t])
			if rn == 0 || sn == 0 {
				continue
			}
			j.tiles = append(j.tiles, int32(t))
			j.cost = append(j.cost, rn*sn+rn+sn)
		}
		j.buildUnits(j.resolveThreshold(cfg.RefineThreshold))
		j.unitsOK = true
		j.cThr = cfg.RefineThreshold
		if j.rec != nil {
			j.rec.EndSpan(0, wallSince(j.epoch), sim.SpanArgs{}, false)
		}
		j.phaseNS[timeline.PhaseRefine] = refBefore + time.Since(tRef).Nanoseconds()
	}
	if !pipelined {
		// Join the work units over the pool, workers pulling from the
		// shared cursor (the pipelined build already swept everything).
		j.prog.SetTotal(int64(len(j.units)), sumCost(j.ucost))
		j.cursor.Store(0)
		j.runPhase(phaseJoin)
	}

	// Assemble. With Sorted the workers already left their runs sorted
	// (they sort before leaving the join phase), so only a k-way merge
	// remains on this goroutine.
	tMerge := time.Now()
	var spanMerge sim.Time
	if j.rec != nil {
		spanMerge = wallSince(j.epoch)
	}
	j.perWorker = growInts(j.perWorker, workers)
	total := 0
	for w := range j.ws[:workers] {
		ws := &j.ws[w]
		total += len(ws.cands)
		j.perWorker[w] = int(ws.pairs)
		res.Duplicates += int(ws.dups)
		res.Comparisons += int(ws.comps)
		res.Partitions += int(ws.parts)
		j.met.flushWorker(w, ws.pairs, ws.dups, ws.comps, ws.parts)
	}
	if cap(j.out) < total {
		j.out = make([]join.Candidate, 0, total+total/4)
	}
	j.out = j.out[:0]
	if cfg.Sorted {
		j.runs = growRuns(j.runs, workers)
		for w := range j.ws[:workers] {
			j.runs[w] = j.ws[w].cands
		}
		j.out = join.MergeCandidateRuns(j.out, j.runs[:workers])
	} else {
		for w := range j.ws[:workers] {
			j.out = append(j.out, j.ws[w].cands...)
		}
	}
	res.Candidates = j.out
	res.GX, res.GY = j.gx, j.gy
	res.RefinedTiles, res.Subtiles = j.refinedTiles, j.subtiles
	res.PerWorker = j.perWorker
	j.phaseNS[timeline.PhaseMerge] += time.Since(tMerge).Nanoseconds()
	if j.rec != nil {
		j.rec.Complete(0, spanMerge, wallSince(j.epoch), timeline.KindPhase,
			sim.SpanArgs{A: timeline.PhaseMerge})
	}
	res.PhaseNS = j.phaseNS
	res.PipelineNS = j.pipelineNS
	if cfg.Introspect {
		j.fillIntrospection(&res)
	}
	j.met.finish(&res)
	j.prog.Finish()
	return res
}

// sumCost totals a cost slice for the progress layer's schedule size.
func sumCost(cost []int64) int64 {
	var sum int64
	for _, c := range cost {
		sum += c
	}
	return sum
}

// fillIntrospection reports the schedule's cost structure under
// Config.Introspect: the TopTileK costliest work units (the schedule is
// already sorted largest-first, so the head of units is the answer) and
// the unit cost mass folded onto an at-most HeatSide² heat grid. One
// O(units) scan; the buffers live on the Joiner, so the steady state
// stays allocation-free with introspection on.
func (j *Joiner) fillIntrospection(res *Result) {
	k := len(j.units)
	if k > TopTileK {
		k = TopTileK
	}
	j.topTiles = j.topTiles[:0]
	for i := 0; i < k; i++ {
		u := j.units[i]
		j.topTiles = append(j.topTiles, TileCost{
			TX: int(u.tile) % j.gx, TY: int(u.tile) / j.gx,
			Refined: u.node >= 0, Cost: j.ucost[i],
		})
	}
	res.TopTiles = j.topTiles

	hw, hh := j.gx, j.gy
	if hw > HeatSide {
		hw = HeatSide
	}
	if hh > HeatSide {
		hh = HeatSide
	}
	if cap(j.heat) < hw*hh {
		j.heat = make([]int64, hw*hh, HeatSide*HeatSide)
	} else {
		j.heat = j.heat[:hw*hh]
		clear(j.heat)
	}
	for i, u := range j.units {
		t := int(u.tile)
		hx := (t % j.gx) * hw / j.gx
		hy := (t / j.gx) * hh / j.gy
		j.heat[hy*hw+hx] += j.ucost[i]
	}
	res.Heat, res.HeatW, res.HeatH = j.heat, hw, hh
}

// runPhase executes one parallel phase over the pool, accruing its wall
// time into the matching pipeline-phase bucket of Result.PhaseNS.
func (j *Joiner) runPhase(phase int32) {
	j.phase = phase
	t0 := time.Now()
	j.pool.Run(j)
	j.phaseNS[timelinePhase(phase)] += time.Since(t0).Nanoseconds()
}

// timelinePhase maps an internal phase id onto the canonical wall-join
// phase enumeration shared with the timeline and the flight recorder.
func timelinePhase(phase int32) int {
	switch phase {
	case phaseMirror, phaseMirrorCheck, phaseVerify:
		return timeline.PhasePrep
	case phaseSort:
		return timeline.PhaseSort
	case phaseCount, phaseScatter:
		return timeline.PhasePartition
	case phaseFill:
		return timeline.PhaseFill
	case phaseRefineFill:
		return timeline.PhaseRefine
	default:
		return timeline.PhaseSweep
	}
}

// RunWorker implements parnative.PoolTask: dispatch the current phase,
// bracketing it with a per-worker phase span when a timeline is attached
// (tile sweep spans then nest inside the join-phase span).
func (j *Joiner) RunWorker(w int) {
	if j.rec != nil {
		j.rec.BeginSpan(w, wallSince(j.epoch), timeline.KindPhase,
			sim.SpanArgs{A: int64(timelinePhase(j.phase))})
	}
	switch j.phase {
	case phaseMirror:
		j.mirrorChunk(w)
	case phaseSort:
		j.sortSides(w)
	case phaseCount:
		j.bucketChunk(w, false)
	case phaseScatter:
		j.bucketChunk(w, true)
	case phaseFill:
		j.fillChunk(w)
	case phaseMirrorCheck:
		j.mirrorCheckChunk(w)
	case phaseVerify:
		j.verifyChunk(w)
	case phaseRefineFill:
		j.refineFillChunk(w)
	case phaseJoin:
		j.joinTiles(w)
	case phasePipeline:
		j.pipeWorker(w)
	}
	if j.rec != nil {
		j.rec.EndSpan(w, wallSince(j.epoch), sim.SpanArgs{}, false)
	}
}

// chunkRange splits n into j.workers contiguous chunks.
func (j *Joiner) chunkRange(n, w int) (int, int) {
	return n * w / j.workers, n * (w + 1) / j.workers
}

// mirrorChunk copies this worker's item chunks into the SoA mirrors and
// unions their MBR. The union is open-coded comparisons rather than
// Rect.Union — math.Min/Max's NaN handling costs ~2× on this hot pass,
// and a NaN coordinate contributing nothing to the bounds is fine (the
// rect still lands in a border tile via the clamped tileOf).
func (j *Joiner) mirrorChunk(w int) {
	mbr := geom.EmptyRect()
	lo, hi := j.chunkRange(len(j.rItems), w)
	for i := lo; i < hi; i++ {
		it := &j.rItems[i]
		j.rRects[i] = it.Rect
		j.rIDs[i] = it.ID
		mbr = unionFast(mbr, it.Rect)
	}
	lo, hi = j.chunkRange(len(j.sItems), w)
	for i := lo; i < hi; i++ {
		it := &j.sItems[i]
		j.sRects[i] = it.Rect
		j.sIDs[i] = it.ID
		mbr = unionFast(mbr, it.Rect)
	}
	j.bounds[w] = mbr
}

func unionFast(m geom.Rect, r geom.Rect) geom.Rect {
	if r.MinX < m.MinX {
		m.MinX = r.MinX
	}
	if r.MinY < m.MinY {
		m.MinY = r.MinY
	}
	if r.MaxX > m.MaxX {
		m.MaxX = r.MaxX
	}
	if r.MaxY > m.MaxY {
		m.MaxY = r.MaxY
	}
	return m
}

// sortSides brings the out-of-order sides (per the count pass's disorder
// flags, latched into redoR/redoS) into sweep order, using the repair sort
// so a lightly disturbed persisted order costs a scan plus a small merge
// rather than a full quicksort. With two or more workers the sides sort
// concurrently (the other workers idle — the phase is bounded by the
// larger side either way).
func (j *Joiner) sortSides(w int) {
	if j.workers >= 2 {
		if w == 0 && j.redoR {
			j.rScr = geom.SortOrderByMinXScratch(j.rRects[:len(j.rItems)], j.rOrd, j.rScr)
		}
		if w == 1 && j.redoS {
			j.sScr = geom.SortOrderByMinXScratch(j.sRects[:len(j.sItems)], j.sOrd, j.sScr)
		}
		return
	}
	if j.redoR {
		j.rScr = geom.SortOrderByMinXScratch(j.rRects[:len(j.rItems)], j.rOrd, j.rScr)
	}
	if j.redoS {
		j.sScr = geom.SortOrderByMinXScratch(j.sRects[:len(j.sItems)], j.sOrd, j.sScr)
	}
}

// bucketChunk is one pass of the counting sort over this worker's chunks
// of both sides, walking each side's global sweep order: scatter=false
// counts tile occupancy (caching each rect's tile range as a packed
// code), scatter=true writes the rect indices into the tile segments
// reserved by the prefix sum. The per-(worker, tile) cursor cells make
// the scatter race-free, and because chunks cover ascending sweep
// positions and the prefix sum is worker-major, every tile segment comes
// out sorted in sweep order — SweepPairsSoA's precondition — without any
// per-tile sort.
func (j *Joiner) bucketChunk(w int, scatter bool) {
	tiles := j.gx * j.gy
	sides := [2]struct {
		part  *gridSide
		rects []geom.Rect
		ord   []int32
		codes []int64
	}{
		{&j.rPart, j.rRects, j.rOrd, j.rTile},
		{&j.sPart, j.sRects, j.sOrd, j.sTile},
	}
	for si, side := range sides {
		if !scatter && j.countMask&(1<<si) == 0 {
			continue // side kept its previous (completed) count and codes
		}
		cur := side.part.counts[w*tiles : (w+1)*tiles]
		lo, hi := j.chunkRange(len(side.ord), w)
		if !scatter {
			if lo == hi {
				continue
			}
			// With countVerify the count pass doubles as the sweep-order
			// verification: it already gathers every rect in sweep order,
			// so carrying the previous rect makes the sortedness check free
			// and spares a dedicated scan phase in the steady state.
			// Position lo with lo == 0 self-compares, which trivially
			// passes (the index tiebreak is strict). On the first violation
			// the chunk's counts are abandoned — Join re-sorts and recounts
			// the side with verification off, so the recount is total even
			// when NaN keys leave residual comparison oddities after the
			// sort.
			verify := j.countVerify
			pi := side.ord[lo]
			if lo > 0 {
				pi = side.ord[lo-1]
			}
			prev := &side.rects[pi]
			lastX0 := 0
			for pos := lo; pos < hi; pos++ {
				ci := side.ord[pos]
				r := &side.rects[ci]
				if verify {
					if r.MinX < prev.MinX ||
						(r.MinX == prev.MinX &&
							(r.MinY < prev.MinY || (r.MinY == prev.MinY && ci < pi))) {
						side.part.disorder[w] = 1
						break
					}
					prev, pi = r, ci
				}
				x0, y0 := j.tileOf(r.MinX, r.MinY)
				x1, y1 := j.tileOf(r.MaxX, r.MaxY)
				// The pipelined scatter's per-tile readiness relies on tile
				// columns ascending along the chunk; a sorted order
				// guarantees that except under NaN coordinates (which
				// compare as ordered but clamp to column 0), so the count
				// detects violations here and the pipeline falls back to
				// whole-scatter readiness.
				if x0 < lastX0 {
					side.part.mono[w] = 0
				}
				lastX0 = x0
				side.codes[pos] = packTiles(x0, y0, x1, y1)
				if x0 == x1 && y0 == y1 { // the common single-tile rect
					cur[y0*j.gx+x0]++
					continue
				}
				for ty := y0; ty <= y1; ty++ {
					base := ty * j.gx
					for tx := x0; tx <= x1; tx++ {
						cur[base+tx]++
					}
				}
			}
			continue
		}
		for pos := lo; pos < hi; pos++ {
			i := side.ord[pos]
			x0, y0, x1, y1 := unpackTiles(side.codes[pos])
			if x0 == x1 && y0 == y1 {
				c := y0*j.gx + x0
				side.part.idx[cur[c]] = i
				cur[c]++
				continue
			}
			for ty := y0; ty <= y1; ty++ {
				base := ty * j.gx
				for tx := x0; tx <= x1; tx++ {
					side.part.idx[cur[base+tx]] = i
					cur[base+tx]++
				}
			}
		}
	}
}

// mirrorCheckChunk is the steady-state fast path's first half: a
// sequential compare of this worker's item chunks against the SoA
// mirrors, patching any divergence in place and flagging that something
// changed (a change triggers the verify pass, and — if the segments
// survive — a segment-plane refill). On unchanged inputs this pass is
// the only per-item work before the sweeps, so the compare runs on raw
// coordinate bits: integer compares beat float compares here, a
// faithfully mirrored NaN reads as unchanged (it is), and a ±0 sign flip
// reads as changed (conservative — the verify pass then passes).
func (j *Joiner) mirrorCheckChunk(w int) {
	dirty := uint8(0)
	lo, hi := j.chunkRange(len(j.rItems), w)
	for i := lo; i < hi; i++ {
		it := &j.rItems[i]
		if rectChanged(&j.rRects[i], &it.Rect) || j.rIDs[i] != it.ID {
			j.rRects[i] = it.Rect
			j.rIDs[i] = it.ID
			dirty = 1
		}
	}
	lo, hi = j.chunkRange(len(j.sItems), w)
	for i := lo; i < hi; i++ {
		it := &j.sItems[i]
		if rectChanged(&j.sRects[i], &it.Rect) || j.sIDs[i] != it.ID {
			j.sRects[i] = it.Rect
			j.sIDs[i] = it.ID
			dirty = 1
		}
	}
	j.mdirty[w] = dirty
}

// fillChunk copies this worker's chunk of each side's tile segments into
// the segment coordinate planes: position p of the planes becomes
// rects[idx[p]]. The writes are contiguous streams; the gathered reads
// are the price of de-striding every subsequent sweep over the segment.
func (j *Joiner) fillChunk(w int) {
	sides := [2]struct {
		part  *gridSide
		rects []geom.Rect
	}{
		{&j.rPart, j.rRects},
		{&j.sPart, j.sRects},
	}
	for _, side := range sides {
		idx := side.part.idx
		lo, hi := j.chunkRange(len(idx), w)
		for pos := lo; pos < hi; pos++ {
			side.part.planes.SetRect(pos, side.rects[idx[pos]])
		}
	}
}

// rectChanged compares a mirror rect against an item rect bit for bit.
// The XOR-OR accumulation is branchless: in the steady state every rect
// matches, so one predictable test per rect beats four short-circuit
// compares.
func rectChanged(a, b *geom.Rect) bool {
	d := math.Float64bits(a.MinX) ^ math.Float64bits(b.MinX)
	d |= math.Float64bits(a.MinY) ^ math.Float64bits(b.MinY)
	d |= math.Float64bits(a.MaxX) ^ math.Float64bits(b.MaxX)
	d |= math.Float64bits(a.MaxY) ^ math.Float64bits(b.MaxY)
	return d != 0
}

// verifyChunk decides whether the cached tile segments survive an input
// mutation: walking this worker's chunk of each sweep order, it checks the
// order still holds and that every rect's tile range (under the frozen
// grid geometry) still packs to its cached code. Assignment depends only
// on the codes, so all-match means idx/starts are still exact and no
// re-bucketing is needed; the first violation flags the side's disorder
// slot and Join falls back to the full counting sort.
func (j *Joiner) verifyChunk(w int) {
	sides := [2]struct {
		part  *gridSide
		rects []geom.Rect
		ord   []int32
		codes []int64
	}{
		{&j.rPart, j.rRects, j.rOrd, j.rTile},
		{&j.sPart, j.sRects, j.sOrd, j.sTile},
	}
	for _, side := range sides {
		lo, hi := j.chunkRange(len(side.ord), w)
		if lo == hi {
			continue
		}
		pi := side.ord[lo]
		if lo > 0 {
			pi = side.ord[lo-1]
		}
		prev := &side.rects[pi]
		for pos := lo; pos < hi; pos++ {
			ci := side.ord[pos]
			r := &side.rects[ci]
			if r.MinX < prev.MinX ||
				(r.MinX == prev.MinX &&
					(r.MinY < prev.MinY || (r.MinY == prev.MinY && ci < pi))) {
				side.part.disorder[w] = 1
				break
			}
			prev, pi = r, ci
			x0, y0 := j.tileOf(r.MinX, r.MinY)
			x1, y1 := j.tileOf(r.MaxX, r.MaxY)
			if packTiles(x0, y0, x1, y1) != side.codes[pos] {
				side.part.disorder[w] = 1
				break
			}
		}
	}
}

// packTiles/unpackTiles encode a rect's inclusive tile range in one int64
// (10 bits per coordinate fits the 1024 grid cap), so the scatter pass
// reuses the count pass's tileOf work.
func packTiles(x0, y0, x1, y1 int) int64 {
	return int64(x0) | int64(y0)<<10 | int64(x1)<<20 | int64(y1)<<30
}

func unpackTiles(c int64) (x0, y0, x1, y1 int) {
	return int(c & 1023), int(c >> 10 & 1023), int(c >> 20 & 1023), int(c >> 30 & 1023)
}

// joinTiles pulls work units off the shared cursor (largest first) and
// joins each; with Sorted pending the worker sorts its run before
// returning so the merge on the owner goroutine is all that remains
// single-threaded.
func (j *Joiner) joinTiles(w int) {
	ws := &j.ws[w]
	for {
		k := int(j.cursor.Add(1)) - 1
		if k >= len(j.units) {
			break
		}
		u := j.units[k]
		t := int(u.tile)
		var t0 sim.Time
		if j.rec != nil {
			t0 = wallSince(j.epoch)
		}
		before := len(ws.cands)
		var comps int
		if u.node < 0 {
			comps = j.joinTile(ws, t)
		} else {
			comps = j.joinSub(ws, u.node)
		}
		ws.parts++
		j.prog.UnitDone(j.ucost[k])
		if j.rec != nil {
			j.rec.Complete(w, t0, wallSince(j.epoch), timeline.KindCPUSweep, sim.SpanArgs{
				A: int64(t % j.gx), B: int64(t / j.gx),
				C: int64(len(ws.cands) - before), D: int64(comps),
			})
		}
	}
	ws.pairs = int64(len(ws.cands))
	if j.sortRuns {
		ws.candSorter.Cands = ws.cands
		sort.Sort(&ws.candSorter)
		ws.candSorter.Cands = nil
	}
}

// joinTile joins one unrefined tile's two segments.
func (j *Joiner) joinTile(ws *workerState, t int) int {
	rLo, rHi := int(j.rPart.starts[t]), int(j.rPart.starts[t+1])
	sLo, sHi := int(j.sPart.starts[t]), int(j.sPart.starts[t+1])
	rSeg := j.rPart.idx[rLo:rHi]
	sSeg := j.sPart.idx[sLo:sHi]
	rView := j.rPart.planes.View(rLo, rHi)
	sView := j.sPart.planes.View(sLo, sHi)
	return j.joinSegs(ws, rSeg, sSeg, &rView, &sView, t%j.gx, t/j.gx, -1)
}

// joinSegs joins one work unit's two segments and appends the surviving
// pairs to ws.cands, returning the comparison count. The sweep runs in
// segment position space over the contiguous plane views; hit positions
// map back to rect indices through the idx segments for the dedup and
// emit. node < 0 is a root tile; otherwise the refNode whose ownership
// chain the emit must check.
func (j *Joiner) joinSegs(ws *workerState, rSeg, sSeg []int32, rView, sView *geom.Planes, tx, ty int, node int32) int {
	// Tiny-side units: batch-testing each small-side rect against the
	// larger side's plane segment beats the sweep's bookkeeping.
	if len(rSeg) <= batchMax || len(sSeg) <= batchMax {
		return j.joinTileBatch(ws, rSeg, sSeg, rView, sView, tx, ty, node)
	}

	// Segments are already in sweep order (see bucketChunk; refinement
	// scatters preserve the order level by level).
	var comps int
	ws.hits, comps = geom.SweepPairsPlanesDense(rView, sView, ws.hits[:0])
	ws.comps += int64(comps)
	for _, h := range ws.hits {
		j.emit(ws, rSeg[h.R], sSeg[h.S], tx, ty, node)
	}
	return comps
}

// joinTileBatch is the small-unit path: every rect of the smaller side is
// batch-tested against the larger side's contiguous plane segment with
// the vectorized bitmask kernel.
func (j *Joiner) joinTileBatch(ws *workerState, rSeg, sSeg []int32, rView, sView *geom.Planes, tx, ty int, node int32) int {
	small, large, largeView := rSeg, sSeg, sView
	rSmall := true
	if len(sSeg) < len(rSeg) {
		small, large, largeView = sSeg, rSeg, rView
		rSmall = false
	}
	smallRects := j.rRects
	if !rSmall {
		smallRects = j.sRects
	}
	w := geom.MaskWords(len(large))
	if cap(ws.mask) < w {
		ws.mask = make([]uint64, w, w*2)
	}
	ws.mask = ws.mask[:w]
	comps := 0
	for _, si := range small {
		geom.IntersectBatchPlanes(smallRects[si], largeView, ws.mask)
		comps += len(large)
		for i, li := range large {
			if ws.mask[i>>6]>>(uint(i)&63)&1 != 0 {
				if rSmall {
					j.emit(ws, si, li, tx, ty, node)
				} else {
					j.emit(ws, li, si, tx, ty, node)
				}
			}
		}
	}
	ws.comps += int64(comps)
	return comps
}

// emit reports the intersecting pair (rIdx, sIdx) iff the current work
// unit owns it: the reference-point method keeps the pair only in the
// unit containing the top-left corner of the intersection of the two
// MBRs. That corner lies inside both rects, hence inside one of the tiles
// (and, per split level, one of the subcells) both were assigned to, so
// every pair is reported exactly once. For refined units the root tile
// check is followed by the node chain's frozen subcell checks.
func (j *Joiner) emit(ws *workerState, rIdx, sIdx int32, tx, ty int, node int32) {
	a := &j.rRects[rIdx]
	b := &j.sRects[sIdx]
	px := a.MinX // left edge of the intersection
	if b.MinX > px {
		px = b.MinX
	}
	py := a.MaxY // top edge of the intersection
	if b.MaxY < py {
		py = b.MaxY
	}
	ox, oy := j.tileOf(px, py)
	if ox != tx || oy != ty {
		ws.dups++
		return
	}
	if node >= 0 && !j.ownsRefined(node, px, py) {
		ws.dups++
		return
	}
	ws.cands = append(ws.cands, join.Candidate{
		R: j.rIDs[rIdx], S: j.sIDs[sIdx], RRect: *a, SRect: *b,
	})
}

// tileOf maps a point to its tile coordinates. The mapping is monotone in
// each coordinate and shared by rect assignment and the reference-point
// test, which is what makes the dedup exact: clamping sends the data MBR's
// max edge (and any stray non-finite value) into the border tiles.
func (j *Joiner) tileOf(x, y float64) (int, int) {
	return clampTile(int((x-j.minX)*j.invW), j.gx), clampTile(int((y-j.minY)*j.invH), j.gy)
}

func clampTile(v, g int) int {
	if v < 0 {
		return 0
	}
	if v >= g {
		return g - 1
	}
	return v
}

// safeInv returns g/width, the tiles-per-unit factor, or 0 when the axis
// has no extent (then every rect lands in stripe 0).
func safeInv(width float64, g int) float64 {
	if width > 0 {
		return float64(g) / width
	}
	return 0
}

// AutoGrid reports the grid side Join would pick for n = len(r)+len(s)
// rectangles and the given worker count when Config.Grid is zero. It is
// exported for the planner (internal/plan), which records the resolved
// grid in its decision instead of leaving it implicit.
func AutoGrid(n, workers int) int {
	if workers <= 0 {
		workers = 1
	}
	return autoGrid(n, workers)
}

// AutoGridSkewed is AutoGrid with an occupancy-skew correction for the
// cold path. Clustered inputs pack most rectangles into few tiles, so the
// ~160-per-tile default leaves the hot tiles far over budget on the very
// first join — before the refinement pass has any cost feedback. A
// modestly finer grid splits those hot tiles up front and gives the
// pipelined build more ready tiles to overlap with the trailing scatter.
// skew is the probe-grid occupancy skew (plan.Stats.Skew, max/mean over
// cells); values at or below 2.5 — the uniform regime, matching the
// planner's refinement threshold — leave the grid unchanged, and the
// boost is logarithmic and capped at 1.5x so a pathological probe cannot
// push the grid off its sweet spot.
func AutoGridSkewed(n, workers int, skew float64) int {
	g := AutoGrid(n, workers)
	if skew > 2.5 {
		boost := 1 + math.Log2(skew/2.5)/6
		if boost > 1.5 {
			boost = 1.5
		}
		g = int(float64(g)*boost + 0.5)
		if g > 1024 {
			g = 1024
		}
	}
	return g
}

// autoGrid picks the default grid side: about 160 rects per tile keeps the
// per-tile sweeps in their sweet spot — finer grids buy little pruning but
// pay linearly in bucketing and duplicate suppression (see BenchmarkJoinGrid
// for the sweep behind the constant) — with a floor so every worker sees
// several tiles.
func autoGrid(n, workers int) int {
	g := int(math.Sqrt(float64(n)/160.0) + 0.5)
	if min := int(math.Ceil(math.Sqrt(float64(4 * workers)))); g < min {
		g = min
	}
	if g < 1 {
		g = 1
	}
	if g > 1024 {
		g = 1024
	}
	return g
}

// reset prepares the counting-sort state for a run: zeroed counts and
// disorder flags, sized boundary array.
func (g *gridSide) reset(workers, tiles int) {
	n := workers * tiles
	if cap(g.counts) < n {
		g.counts = make([]int32, n)
	} else {
		g.counts = g.counts[:n]
		clear(g.counts)
	}
	if cap(g.starts) < tiles+1 {
		g.starts = make([]int32, tiles+1)
	} else {
		g.starts = g.starts[:tiles+1]
	}
	if cap(g.disorder) < workers {
		g.disorder = make([]uint8, workers)
	} else {
		g.disorder = g.disorder[:workers]
		clear(g.disorder)
	}
	if cap(g.mono) < workers {
		g.mono = make([]uint8, workers)
	} else {
		g.mono = g.mono[:workers]
	}
	for i := range g.mono {
		g.mono[i] = 1
	}
}

// monotone reports whether every worker's chunk had ascending tile columns
// in the last completed count (the pipelined readiness precondition).
func (g *gridSide) monotone(workers int) bool {
	for _, m := range g.mono[:workers] {
		if m == 0 {
			return false
		}
	}
	return true
}

// prefixSum turns the count matrix into scatter cursors and fills the tile
// segment boundaries, sizing idx for the scatter pass.
func (g *gridSide) prefixSum(workers, tiles int) {
	total := int32(0)
	for t := 0; t < tiles; t++ {
		g.starts[t] = total
		for w := 0; w < workers; w++ {
			c := g.counts[w*tiles+t]
			g.counts[w*tiles+t] = total
			total += c
		}
	}
	g.starts[tiles] = total
	if cap(g.idx) < int(total) {
		g.idx = make([]int32, total, total+total/4)
	} else {
		g.idx = g.idx[:total]
	}
	g.planes.Reset(int(total))
}

// tileOrder sorts j.units (and the parallel j.ucost) by descending cost,
// ties on ascending (tile, node) for determinism.
type tileOrder struct{ j *Joiner }

func (o *tileOrder) Len() int { return len(o.j.units) }
func (o *tileOrder) Less(i, k int) bool {
	if o.j.ucost[i] != o.j.ucost[k] {
		return o.j.ucost[i] > o.j.ucost[k]
	}
	a, b := o.j.units[i], o.j.units[k]
	if a.tile != b.tile {
		return a.tile < b.tile
	}
	return a.node < b.node
}
func (o *tileOrder) Swap(i, k int) {
	o.j.units[i], o.j.units[k] = o.j.units[k], o.j.units[i]
	o.j.ucost[i], o.j.ucost[k] = o.j.ucost[k], o.j.ucost[i]
}

// wallSince returns wall milliseconds since epoch, the native timeline's
// clock.
func wallSince(epoch time.Time) sim.Time {
	return sim.Time(float64(time.Since(epoch)) / float64(time.Millisecond))
}

// grow helpers: length-setting reslices that only allocate on first growth.

func growRects(s []geom.Rect, n int) []geom.Rect {
	if cap(s) < n {
		return make([]geom.Rect, n)
	}
	return s[:n]
}

func growIDs(s []rtree.EntryID, n int) []rtree.EntryID {
	if cap(s) < n {
		return make([]rtree.EntryID, n)
	}
	return s[:n]
}

// prepOrder sizes a persistent order array: an unchanged length keeps the
// previous permutation (likely near-sorted), a changed one resets to
// identity so the array stays a valid permutation of the rect indices.
func prepOrder(ord []int32, n int) []int32 {
	if len(ord) == n {
		return ord
	}
	if cap(ord) < n {
		ord = make([]int32, n)
	} else {
		ord = ord[:n]
	}
	for i := range ord {
		ord[i] = int32(i)
	}
	return ord
}

func growCodes(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growFlags(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func growStates(s []workerState, n int) []workerState {
	if cap(s) < n {
		out := make([]workerState, n)
		copy(out, s)
		return out
	}
	return s[:n]
}

func growRuns(s [][]join.Candidate, n int) [][]join.Candidate {
	if cap(s) < n {
		return make([][]join.Candidate, n)
	}
	return s[:n]
}
