package partjoin

import (
	"testing"

	"spjoin/internal/runtimeobs"
)

// checkProgressSettled pins the engine's progress contract after a join:
// the slot is closed, both axes are fully consumed (done == total on
// units and cost), and the unit count equals the work units the engine
// says it joined — so pruned refinements and released claims all balance.
func checkProgressSettled(t *testing.T, p *runtimeobs.Progress, res Result, stage string, seq uint64) {
	t.Helper()
	st, ok := p.Status()
	if !ok {
		t.Fatalf("%s: progress slot never started", stage)
	}
	if st.Running {
		t.Fatalf("%s: slot still running after Join returned", stage)
	}
	if st.Seq != seq {
		t.Fatalf("%s: seq %d, want %d", stage, st.Seq, seq)
	}
	if st.UnitsDone != st.UnitsTotal {
		t.Fatalf("%s: units %d/%d not settled", stage, st.UnitsDone, st.UnitsTotal)
	}
	if st.CostDone != st.CostTotal {
		t.Fatalf("%s: cost %d/%d not settled", stage, st.CostDone, st.CostTotal)
	}
	if st.UnitsDone != int64(res.Partitions) {
		t.Fatalf("%s: %d units reported done, engine joined %d partitions",
			stage, st.UnitsDone, res.Partitions)
	}
	if res.Partitions > 0 && st.CostDone <= 0 {
		t.Fatalf("%s: no cost recorded across %d partitions", stage, res.Partitions)
	}
	if st.Frac != 1 || st.ETANS != 0 {
		t.Fatalf("%s: settled slot reports frac=%v eta=%d", stage, st.Frac, st.ETANS)
	}
}

// TestPartitionJoinProgress drives every build tier of the engine — cold
// pipelined (with in-phase refinement reshaping the schedule), clean
// fast-path rejoin, barrier reference build, and refinement disabled —
// against one reusable progress slot and pins the settled accounting.
func TestPartitionJoinProgress(t *testing.T) {
	r, s := clusteredItems(1200, 0.02, 7)
	live := runtimeobs.NewLive()
	prog := live.NewProgress("partition")
	var j Joiner
	defer j.Close()

	seq := uint64(0)
	run := func(stage string, cfg Config) Result {
		t.Helper()
		cfg.Progress = prog
		cfg.Sorted = true
		res := j.Join(r, s, cfg)
		seq++
		checkProgressSettled(t, prog, res, stage, seq)
		return res
	}

	cold := run("cold-pipelined", Config{Workers: 4, RefineThreshold: 1})
	if cold.RefinedTiles == 0 {
		t.Fatal("cold run did not refine; the reshaped-schedule path is untested")
	}
	run("clean-rejoin", Config{Workers: 4, RefineThreshold: 1})
	var jb Joiner
	defer jb.Close()
	seqB := uint64(0)
	barrier := Config{Workers: 4, RefineThreshold: 1, Barrier: true, Progress: prog, Sorted: true}
	resB := jb.Join(r, s, barrier)
	seqB = seq + 1
	checkProgressSettled(t, prog, resB, "barrier", seqB)
	seq = seqB
	run("unrefined", Config{Workers: 2, RefineThreshold: RefineDisabled})

	// In-flight visibility: the registry shows nothing once all joins are
	// done, and an empty-input join never opens a window.
	if got := live.Snapshot(); len(got) != 0 {
		t.Fatalf("idle registry snapshot: %+v", got)
	}
	before, _ := prog.Status()
	res := j.Join(nil, s, Config{Workers: 2, Progress: prog})
	if res.Candidates != nil {
		t.Fatal("empty join returned candidates")
	}
	after, _ := prog.Status()
	if after.Seq != before.Seq {
		t.Fatal("empty-input join opened a progress window")
	}
}

// TestPartitionJoinProgressNil pins that a join without a slot behaves
// identically (the nil-check hot path).
func TestPartitionJoinProgressNil(t *testing.T) {
	r, s := clusteredItems(1500, 0.05, 9)
	var withP, without Joiner
	defer withP.Close()
	defer without.Close()
	prog := runtimeobs.NewProgress("partition")
	a, _ := sortedPairs(&withP, r, s, Config{Workers: 3, Progress: prog})
	b, _ := sortedPairs(&without, r, s, Config{Workers: 3})
	if len(a) != len(b) {
		t.Fatalf("progress changed the result: %d vs %d pairs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs with progress attached", i)
		}
	}
}
