package partjoin

import (
	"math"
	"testing"

	"spjoin/internal/geom"
	"spjoin/internal/rtree"
)

// fuzzJoinInput decodes a fuzz payload into two rect sets plus a grid shape
// and worker count. Layout: [nr, grid, workers, sorted, rect bytes...] with
// four bytes per rect (x, y, w, h on a small integer lattice, so touching
// edges and exact tile-boundary hits are common).
func fuzzJoinInput(data []byte) (r, s []rtree.Item, cfg Config) {
	if len(data) < 4 {
		return nil, nil, Config{Workers: 1}
	}
	nr := int(data[0]) % 24
	cfg.Grid = int(data[1]) % 24
	cfg.Workers = 1 + int(data[2])%4
	cfg.Sorted = data[3]&1 != 0
	data = data[4:]

	var rects []geom.Rect
	for len(data) >= 4 {
		x := float64(data[0] % 32)
		y := float64(data[1] % 32)
		w := float64(data[2] % 8)
		h := float64(data[3] % 8)
		data = data[4:]
		rects = append(rects, geom.NewRect(x, y, x+w, y+h))
	}
	if nr > len(rects) {
		nr = len(rects)
	}
	return items(rects[:nr], 0), items(rects[nr:], 10000), cfg
}

// FuzzPartitionJoin checks the partition engine against the brute-force
// oracle on arbitrary rect sets, grid shapes, and worker counts: the
// candidate set must be exactly the intersecting pairs, with no pair
// reported twice (toSet fails on duplicates). Each input also drives the
// Joiner's reuse cache: an identical re-join (segment reuse), then a
// mutation derived from the payload and a third join, which must track
// the mutated inputs whichever fallback tier it lands in.
func FuzzPartitionJoin(f *testing.F) {
	f.Add([]byte{2, 4, 1, 0, 0, 0, 4, 4, 1, 1, 4, 4, 3, 3, 2, 2, 8, 8, 1, 1})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{7, 1, 3, 1, 5, 5, 0, 0, 5, 5, 0, 0, 5, 5, 0, 0})
	f.Add([]byte{3, 23, 2, 1, 0, 0, 7, 7, 8, 8, 7, 7, 16, 16, 7, 7, 24, 24, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, s, cfg := fuzzJoinInput(data)
		var j Joiner
		defer j.Close()
		check := func(stage string) {
			t.Helper()
			got := toSet(t, j.Join(r, s, cfg).Candidates)
			want := bruteSet(r, s)
			if len(got) != len(want) {
				t.Fatalf("cfg %+v %s: %d pairs, want %d", cfg, stage, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("cfg %+v %s: missing pair %v", cfg, stage, k)
				}
			}
		}
		check("cold")
		check("rejoin")
		if len(r) > 0 && len(data) >= 4 {
			i := int(data[2]) % len(r)
			switch data[3] % 3 {
			case 0: // grow within the world — may stay in-tile or cross
				r[i].Rect.MaxX += float64(data[0] % 8)
				r[i].Rect.MaxY += float64(data[1] % 8)
			case 1: // move left — typically breaks the sweep order
				r[i].Rect.MinX = -float64(data[0] % 16)
			case 2: // change identity only
				r[i].ID += 777
			}
			check("mutated")
		}
	})
}

// FuzzPartitionJoinPipelined pins the pipelined cold-path build to the
// brute-force oracle AND to the pre-pipeline barrier engine's exact sorted
// pair sequence, over the same degenerate inputs (NaN, empty, duplicate
// stacks) and refinement tiers the refined fuzz covers — the pipeline's
// per-tile readiness, fused scatter+fill and in-phase refinement hand-off
// must be invisible in the results. The mutation stages drive the reuse
// cache back through the pipelined rebuild (a broken sweep order lands in
// the per-side repair sort; an identity change stays on the fast path).
func FuzzPartitionJoinPipelined(f *testing.F) {
	f.Add([]byte{2, 1, 1, 0, 0, 0, 4, 4, 1, 1, 4, 4, 3, 3, 2, 2, 8, 8, 1, 1})
	f.Add([]byte{0, 0, 0, 0})
	// All-in-one-tile stack: identical rects, grid 1, threshold 1.
	f.Add([]byte{7, 1, 3, 1, 5, 5, 0, 0, 5, 5, 0, 0, 5, 5, 0, 0, 5, 5, 0, 0})
	// NaN + empty + duplicate injections (0xF0/0xF1/0xF2 markers) — NaN
	// MinX breaks the scatter's column monotonicity, forcing the
	// whole-scatter readiness fallback.
	f.Add([]byte{9, 1, 2, 1, 0xF0, 0xF1, 0xF2, 3, 1, 1, 4, 4, 2, 2, 8, 8, 6, 6, 1, 1, 9, 9, 2, 2})
	// Boundary lattice: rects touching at multiples of 8.
	f.Add([]byte{6, 2, 2, 1, 0, 0, 8, 8, 8, 8, 8, 8, 16, 16, 8, 8, 0, 8, 8, 8, 8, 0, 8, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, s, cfg := fuzzRefinedInput(data)
		cfg.Sorted = true
		ref := cfg
		ref.Barrier = true
		var jp, jb Joiner
		defer jp.Close()
		defer jb.Close()
		check := func(stage string) {
			t.Helper()
			res := jp.Join(r, s, cfg)
			got := toSet(t, res.Candidates)
			want := bruteSet(r, s)
			if len(got) != len(want) {
				t.Fatalf("cfg %+v %s: %d pairs, want %d", cfg, stage, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("cfg %+v %s: missing pair %v", cfg, stage, k)
				}
			}
			// Exact pair-sequence equality against the barrier engine.
			bres := jb.Join(r, s, ref)
			if len(bres.Candidates) != len(res.Candidates) {
				t.Fatalf("cfg %+v %s: pipelined %d pairs, barrier %d",
					cfg, stage, len(res.Candidates), len(bres.Candidates))
			}
			for i := range bres.Candidates {
				if bres.Candidates[i].R != res.Candidates[i].R ||
					bres.Candidates[i].S != res.Candidates[i].S {
					t.Fatalf("cfg %+v %s: pair %d differs: pipelined (%d,%d) vs barrier (%d,%d)",
						cfg, stage, i, res.Candidates[i].R, res.Candidates[i].S,
						bres.Candidates[i].R, bres.Candidates[i].S)
				}
			}
			if res.Partitions != bres.Partitions || res.Duplicates != bres.Duplicates {
				t.Fatalf("cfg %+v %s: pipelined parts/dups %d/%d vs barrier %d/%d",
					cfg, stage, res.Partitions, res.Duplicates,
					bres.Partitions, bres.Duplicates)
			}
		}
		check("cold")
		check("rejoin")
		if len(r) > 0 && len(data) >= 4 {
			i := int(data[2]) % len(r)
			switch data[3] % 3 {
			case 0: // grow within the world — may stay in-tile or cross
				r[i].Rect.MaxX += float64(data[0] % 8)
				r[i].Rect.MaxY += float64(data[1] % 8)
			case 1: // move left — typically breaks the sweep order
				r[i].Rect.MinX = -float64(data[0] % 16)
			case 2: // change identity only
				r[i].ID += 777
			}
			check("mutated")
		}
	})
}

// fuzzRefinedInput decodes the refined-fuzz payload: the base layout of
// fuzzJoinInput plus a refinement threshold selector and special-rect
// injection. Byte 1 (grid) doubles as the threshold source so tiny
// explicit thresholds (forcing deep refinement on small inputs) and auto
// mode both occur; rect bytes with a 0xF? x-coordinate are replaced by
// NaN/EmptyRect/duplicate shapes.
func fuzzRefinedInput(data []byte) (r, s []rtree.Item, cfg Config) {
	r, s, cfg = fuzzJoinInput(data)
	if len(data) < 4 {
		return r, s, cfg
	}
	switch data[1] % 4 {
	case 0:
		cfg.RefineThreshold = 0 // auto
	case 1:
		cfg.RefineThreshold = 1 // refine everything splittable
	case 2:
		cfg.RefineThreshold = 16
	case 3:
		cfg.RefineThreshold = 256
	}
	// Degenerate injections driven by the raw payload: NaN rects, empty
	// rects, and exact duplicates of rect 0 (duplicate-heavy stacks).
	nan := math.NaN()
	for i := range r {
		switch data[(i+1)%len(data)] {
		case 0xF0:
			r[i].Rect = geom.Rect{MinX: nan, MinY: nan, MaxX: nan, MaxY: nan}
		case 0xF1:
			r[i].Rect = geom.EmptyRect()
		case 0xF2:
			if len(r) > 0 {
				r[i].Rect = r[0].Rect
			}
		}
	}
	return r, s, cfg
}

// FuzzPartitionJoinRefined pins the refined engine to the brute-force
// oracle AND to the unrefined engine's exact sorted pair sequence, across
// skewed/degenerate/duplicate-heavy inputs and the Joiner reuse tiers
// after mutations. Sorted mode is forced so the two engines' outputs are
// comparable element by element.
func FuzzPartitionJoinRefined(f *testing.F) {
	f.Add([]byte{2, 1, 1, 0, 0, 0, 4, 4, 1, 1, 4, 4, 3, 3, 2, 2, 8, 8, 1, 1})
	f.Add([]byte{0, 0, 0, 0})
	// All-in-one-tile stack: identical rects, grid 1, threshold 1.
	f.Add([]byte{7, 1, 3, 1, 5, 5, 0, 0, 5, 5, 0, 0, 5, 5, 0, 0, 5, 5, 0, 0})
	// NaN + empty + duplicate injections (0xF0/0xF1/0xF2 markers).
	f.Add([]byte{9, 1, 2, 1, 0xF0, 0xF1, 0xF2, 3, 1, 1, 4, 4, 2, 2, 8, 8, 6, 6, 1, 1, 9, 9, 2, 2})
	// Boundary lattice: rects touching at multiples of 8.
	f.Add([]byte{6, 2, 2, 1, 0, 0, 8, 8, 8, 8, 8, 8, 16, 16, 8, 8, 0, 8, 8, 8, 8, 0, 8, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, s, cfg := fuzzRefinedInput(data)
		cfg.Sorted = true
		base := cfg
		base.RefineThreshold = RefineDisabled
		var jr, ju Joiner
		defer jr.Close()
		defer ju.Close()
		check := func(stage string) {
			t.Helper()
			res := jr.Join(r, s, cfg)
			got := toSet(t, res.Candidates)
			want := bruteSet(r, s)
			if len(got) != len(want) {
				t.Fatalf("cfg %+v %s: %d pairs, want %d", cfg, stage, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("cfg %+v %s: missing pair %v", cfg, stage, k)
				}
			}
			// Exact pair-sequence equality against the unrefined engine.
			ref := ju.Join(r, s, base)
			if len(ref.Candidates) != len(res.Candidates) {
				t.Fatalf("cfg %+v %s: refined %d pairs, unrefined %d",
					cfg, stage, len(res.Candidates), len(ref.Candidates))
			}
			for i := range ref.Candidates {
				if ref.Candidates[i].R != res.Candidates[i].R ||
					ref.Candidates[i].S != res.Candidates[i].S {
					t.Fatalf("cfg %+v %s: pair %d differs: refined (%d,%d) vs unrefined (%d,%d)",
						cfg, stage, i, res.Candidates[i].R, res.Candidates[i].S,
						ref.Candidates[i].R, ref.Candidates[i].S)
				}
			}
		}
		check("cold")
		check("rejoin")
		if len(r) > 0 && len(data) >= 4 {
			i := int(data[2]) % len(r)
			switch data[3] % 3 {
			case 0: // grow within the world — may stay in-tile or cross
				r[i].Rect.MaxX += float64(data[0] % 8)
				r[i].Rect.MaxY += float64(data[1] % 8)
			case 1: // move left — typically breaks the sweep order
				r[i].Rect.MinX = -float64(data[0] % 16)
			case 2: // change identity only
				r[i].ID += 777
			}
			check("mutated")
		}
	})
}
