package partjoin

import (
	"testing"

	"spjoin/internal/geom"
	"spjoin/internal/rtree"
)

// fuzzJoinInput decodes a fuzz payload into two rect sets plus a grid shape
// and worker count. Layout: [nr, grid, workers, sorted, rect bytes...] with
// four bytes per rect (x, y, w, h on a small integer lattice, so touching
// edges and exact tile-boundary hits are common).
func fuzzJoinInput(data []byte) (r, s []rtree.Item, cfg Config) {
	if len(data) < 4 {
		return nil, nil, Config{Workers: 1}
	}
	nr := int(data[0]) % 24
	cfg.Grid = int(data[1]) % 24
	cfg.Workers = 1 + int(data[2])%4
	cfg.Sorted = data[3]&1 != 0
	data = data[4:]

	var rects []geom.Rect
	for len(data) >= 4 {
		x := float64(data[0] % 32)
		y := float64(data[1] % 32)
		w := float64(data[2] % 8)
		h := float64(data[3] % 8)
		data = data[4:]
		rects = append(rects, geom.NewRect(x, y, x+w, y+h))
	}
	if nr > len(rects) {
		nr = len(rects)
	}
	return items(rects[:nr], 0), items(rects[nr:], 10000), cfg
}

// FuzzPartitionJoin checks the partition engine against the brute-force
// oracle on arbitrary rect sets, grid shapes, and worker counts: the
// candidate set must be exactly the intersecting pairs, with no pair
// reported twice (toSet fails on duplicates). Each input also drives the
// Joiner's reuse cache: an identical re-join (segment reuse), then a
// mutation derived from the payload and a third join, which must track
// the mutated inputs whichever fallback tier it lands in.
func FuzzPartitionJoin(f *testing.F) {
	f.Add([]byte{2, 4, 1, 0, 0, 0, 4, 4, 1, 1, 4, 4, 3, 3, 2, 2, 8, 8, 1, 1})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{7, 1, 3, 1, 5, 5, 0, 0, 5, 5, 0, 0, 5, 5, 0, 0})
	f.Add([]byte{3, 23, 2, 1, 0, 0, 7, 7, 8, 8, 7, 7, 16, 16, 7, 7, 24, 24, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, s, cfg := fuzzJoinInput(data)
		var j Joiner
		defer j.Close()
		check := func(stage string) {
			t.Helper()
			got := toSet(t, j.Join(r, s, cfg).Candidates)
			want := bruteSet(r, s)
			if len(got) != len(want) {
				t.Fatalf("cfg %+v %s: %d pairs, want %d", cfg, stage, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("cfg %+v %s: missing pair %v", cfg, stage, k)
				}
			}
		}
		check("cold")
		check("rejoin")
		if len(r) > 0 && len(data) >= 4 {
			i := int(data[2]) % len(r)
			switch data[3] % 3 {
			case 0: // grow within the world — may stay in-tile or cross
				r[i].Rect.MaxX += float64(data[0] % 8)
				r[i].Rect.MaxY += float64(data[1] % 8)
			case 1: // move left — typically breaks the sweep order
				r[i].Rect.MinX = -float64(data[0] % 16)
			case 2: // change identity only
				r[i].ID += 777
			}
			check("mutated")
		}
	})
}
