package partjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"spjoin/internal/geom"
	"spjoin/internal/join"
	"spjoin/internal/metrics"
	"spjoin/internal/rtree"
	"spjoin/internal/tiger"
	"spjoin/internal/timeline"
)

type pairKey struct{ r, s rtree.EntryID }

func toSet(tb testing.TB, cands []join.Candidate) map[pairKey]bool {
	tb.Helper()
	set := make(map[pairKey]bool, len(cands))
	for _, c := range cands {
		k := pairKey{c.R, c.S}
		if set[k] {
			tb.Fatalf("duplicate candidate %v", k)
		}
		set[k] = true
	}
	return set
}

// items wraps rects as rtree items with ids distinct across both sides.
func items(rects []geom.Rect, base rtree.EntryID) []rtree.Item {
	out := make([]rtree.Item, len(rects))
	for i, r := range rects {
		out[i] = rtree.Item{ID: base + rtree.EntryID(i), Rect: r}
	}
	return out
}

func randomRects(rng *rand.Rand, n int, world, maxSide float64) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		x := rng.Float64() * world
		y := rng.Float64() * world
		out[i] = geom.NewRect(x, y, x+rng.Float64()*maxSide, y+rng.Float64()*maxSide)
	}
	return out
}

// bruteSet is the oracle: every intersecting (R item, S item) pair.
func bruteSet(r, s []rtree.Item) map[pairKey]bool {
	set := make(map[pairKey]bool)
	for _, a := range r {
		for _, b := range s {
			if a.Rect.Intersects(b.Rect) {
				set[pairKey{a.ID, b.ID}] = true
			}
		}
	}
	return set
}

func checkJoin(t *testing.T, r, s []rtree.Item, cfg Config) Result {
	t.Helper()
	res := Join(r, s, cfg)
	got := toSet(t, res.Candidates)
	want := bruteSet(r, s)
	if len(got) != len(want) {
		t.Fatalf("cfg %+v: %d pairs, want %d", cfg, len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("cfg %+v: missing pair %v", cfg, k)
		}
	}
	return res
}

// TestPartitionJoinMatchesSequential proves the partition engine's
// candidate set identical to the tree-based sequential join on the seed
// TIGER-style workload (the acceptance-criteria cross-check).
func TestPartitionJoinMatchesSequential(t *testing.T) {
	streets, mixed := tiger.Maps(0.02, 42)
	params := rtree.Params{MaxDirEntries: 12, MaxDataEntries: 12, MinFillFrac: 0.4, ReinsertFrac: 0.3}
	r := rtree.BulkLoadSTR(params, streets, 0.8)
	s := rtree.BulkLoadSTR(params, mixed, 0.8)
	seq := join.Sequential(r, s, join.Options{})
	want := toSet(t, seq)

	for _, workers := range []int{1, 2, 4, 8} {
		for _, grid := range []int{0, 1, 4, 23} {
			res := Join(streets, mixed, Config{Workers: workers, Grid: grid})
			got := toSet(t, res.Candidates)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d grid=%d: candidate set differs from sequential join (%d vs %d pairs)",
					workers, grid, len(got), len(want))
			}
		}
	}
}

func TestPartitionJoinGridShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{1, 5, 60, 400} {
		r := items(randomRects(rng, n, 100, 12), 0)
		s := items(randomRects(rng, n, 100, 12), 10000)
		for _, grid := range []int{0, 1, 2, 3, 7, 16, 33} {
			for _, workers := range []int{1, 3} {
				checkJoin(t, r, s, Config{Workers: workers, Grid: grid})
			}
		}
	}
}

// TestPartitionJoinDuplicateSuppression uses rects far larger than a tile
// so almost every pair spans many tiles; the set must stay exact and the
// suppressed-duplicate count must be substantial.
func TestPartitionJoinDuplicateSuppression(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := items(randomRects(rng, 80, 100, 60), 0)
	s := items(randomRects(rng, 80, 100, 60), 10000)
	res := checkJoin(t, r, s, Config{Workers: 4, Grid: 8})
	if res.Duplicates == 0 {
		t.Fatal("expected cross-tile duplicates to be suppressed with tile-spanning rects")
	}
}

// TestPartitionJoinTouchingEdges pins tile-boundary behavior: rects that
// touch exactly on grid lines.
func TestPartitionJoinTouchingEdges(t *testing.T) {
	var rs, ss []geom.Rect
	// A lattice of abutting unit squares; each shares edges with neighbors.
	for y := 0.0; y < 8; y++ {
		for x := 0.0; x < 8; x++ {
			rs = append(rs, geom.NewRect(x, y, x+1, y+1))
		}
	}
	// Shifted by exactly one tile width under grid=8 over [0,8]: every S
	// rect lands on tile boundaries.
	for _, r := range rs {
		ss = append(ss, geom.NewRect(r.MinX+1, r.MinY, r.MaxX+1, r.MaxY))
	}
	r := items(rs, 0)
	s := items(ss, 10000)
	for _, grid := range []int{1, 2, 8} {
		checkJoin(t, r, s, Config{Workers: 2, Grid: grid})
	}
}

func TestPartitionJoinEmptyInputs(t *testing.T) {
	r := items(randomRects(rand.New(rand.NewSource(1)), 5, 10, 2), 0)
	for _, tc := range [][2][]rtree.Item{{nil, r}, {r, nil}, {nil, nil}} {
		res := Join(tc[0], tc[1], Config{Workers: 2})
		if len(res.Candidates) != 0 || res.Partitions != 0 {
			t.Fatalf("empty join returned %+v", res)
		}
	}
}

// TestPartitionJoinSorted pins the deterministic output order: sorted runs
// merge to exactly the fully sorted candidate list, for any worker count.
func TestPartitionJoinSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	r := items(randomRects(rng, 300, 100, 8), 0)
	s := items(randomRects(rng, 300, 100, 8), 10000)

	ref := Join(r, s, Config{Workers: 1, Sorted: true})
	want := append([]join.Candidate(nil), ref.Candidates...)
	sorted := append([]join.Candidate(nil), want...)
	join.SortCandidates(sorted)
	if !reflect.DeepEqual(want, sorted) {
		t.Fatal("sorted output is not actually in (R, S) order")
	}
	for _, workers := range []int{2, 4, 7} {
		for run := 0; run < 3; run++ {
			res := Join(r, s, Config{Workers: workers, Sorted: true})
			if !reflect.DeepEqual(res.Candidates, want) {
				t.Fatalf("workers=%d run %d: sorted output differs", workers, run)
			}
		}
	}
}

// TestJoinerReuseZeroAlloc pins the steady-state allocation contract of a
// reused Joiner.
func TestJoinerReuseZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	r := items(randomRects(rng, 500, 100, 6), 0)
	s := items(randomRects(rng, 500, 100, 6), 10000)
	for _, cfg := range []Config{
		{Workers: 1},
		{Workers: 1, Sorted: true},
		{Workers: 2},
		{Workers: 2, Sorted: true},
	} {
		var j Joiner
		j.Join(r, s, cfg) // warm up buffers and pool
		allocs := testing.AllocsPerRun(20, func() { j.Join(r, s, cfg) })
		j.Close()
		if allocs != 0 {
			t.Errorf("cfg %+v: %.1f allocs per join, want 0", cfg, allocs)
		}
	}
}

// TestJoinerReuseMutatedInputs drives one Joiner through every cache
// transition of the steady-state fast path: unchanged re-joins (cursor
// snapshot reuse), a within-tile move (codes still match — the fused
// verify keeps the fast path but the sweep must see the new extents), a
// cross-tile move (code mismatch mid-pass → full recount), an
// order-breaking move (sort + recount), and a cardinality change. Each
// join is checked against the brute-force oracle.
func TestJoinerReuseMutatedInputs(t *testing.T) {
	for _, workers := range []int{1, 3} {
		rng := rand.New(rand.NewSource(53))
		r := items(randomRects(rng, 400, 100, 5), 0)
		s := items(randomRects(rng, 400, 100, 5), 10000)
		cfg := Config{Workers: workers, Grid: 5}
		var j Joiner
		defer j.Close()

		check := func(stage string) {
			t.Helper()
			got := toSet(t, j.Join(r, s, cfg).Candidates)
			want := bruteSet(r, s)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d %s: %d pairs, want %d", workers, stage, len(got), len(want))
			}
		}
		check("cold")
		check("steady")
		check("steady2")

		// Within-tile mutation: nudge a rect's extent by less than a tile
		// (tiles are 20 units wide) without reordering MinX. The cached
		// codes still match, so the fast path survives — and must join
		// with the mutated extents, not the old ones.
		r[100].Rect.MaxX += 0.5
		r[100].Rect.MaxY -= 0.25
		check("within-tile mutation")

		// Cross-tile mutation: stretch a rect across the whole world so
		// its tile range changes and the verify pass bails out.
		s[7].Rect.MaxX = 99
		s[7].Rect.MaxY = 99
		check("cross-tile mutation")

		// Order-breaking mutation: move a rect's MinX far left so the
		// persisted sweep order is stale and the sort fallback runs.
		r[300].Rect.MinX = 0.001
		check("order-breaking mutation")

		// Cardinality change invalidates the cursor snapshots outright.
		s = append(s, rtree.Item{ID: 99999, Rect: geom.NewRect(1, 1, 90, 90)})
		check("appended item")
		check("steady after append")
	}
}

func TestPartitionJoinMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	r := items(randomRects(rng, 200, 100, 20), 0)
	s := items(randomRects(rng, 200, 100, 20), 10000)
	reg := metrics.NewRegistry()
	res := Join(r, s, Config{Workers: 3, Grid: 6, Metrics: reg})

	counters := reg.Snapshot().Counters
	if got := counters["partjoin.partitions"]; got != int64(res.Partitions) {
		t.Errorf("partitions counter %d, want %d", got, res.Partitions)
	}
	if got := counters["partjoin.duplicates_suppressed"]; got != int64(res.Duplicates) {
		t.Errorf("duplicates counter %d, want %d", got, res.Duplicates)
	}
	if got := counters["partjoin.comparisons"]; got != int64(res.Comparisons) {
		t.Errorf("comparisons counter %d, want %d", got, res.Comparisons)
	}
	if got := counters["partjoin.candidates"]; got != int64(len(res.Candidates)) {
		t.Errorf("candidates counter %d, want %d", got, len(res.Candidates))
	}
	var perWorker int64
	for w := 0; w < res.Workers; w++ {
		perWorker += counters[fmt.Sprintf("partjoin.worker.%d.pairs", w)]
	}
	if perWorker != int64(len(res.Candidates)) {
		t.Errorf("per-worker pairs sum %d, want %d", perWorker, len(res.Candidates))
	}
	sum := 0
	for _, p := range res.PerWorker {
		sum += p
	}
	if sum != len(res.Candidates) {
		t.Errorf("Result.PerWorker sums to %d, want %d", sum, len(res.Candidates))
	}
}

func TestPartitionJoinTimeline(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	r := items(randomRects(rng, 150, 100, 10), 0)
	s := items(randomRects(rng, 150, 100, 10), 10000)
	const workers = 2
	rec := timeline.NewWallRecorder(workers)
	res := Join(r, s, Config{Workers: workers, Grid: 5, Timeline: rec})

	spans := 0
	var phases [timeline.NumPhases]int
	for _, proc := range rec.Procs() {
		for _, sp := range proc.Spans {
			switch sp.Kind {
			case timeline.KindCPUSweep:
				spans++
			case timeline.KindPhase:
				if sp.Args.A < 0 || sp.Args.A >= timeline.NumPhases {
					t.Fatalf("phase span with out-of-range phase %d", sp.Args.A)
				}
				if sp.End < sp.Start {
					t.Fatalf("phase span %s ends before it starts", timeline.PhaseName(int(sp.Args.A)))
				}
				phases[sp.Args.A]++
			default:
				t.Fatalf("unexpected span kind %v", sp.Kind)
			}
		}
	}
	if spans != res.Partitions {
		t.Fatalf("%d cpu-sweep spans, want one per joined partition (%d)", spans, res.Partitions)
	}
	// Every worker contributes one sweep-phase span (the fused pipeline
	// phase reports as sweep); a cold join also runs prep and partition
	// phases on every worker — the fill is fused into the pipelined
	// scatter, so no standalone fill span exists — and the owner adds the
	// refine (schedule build) and merge spans on track 0.
	if phases[timeline.PhaseSweep] != workers {
		t.Errorf("%d sweep phase spans, want %d", phases[timeline.PhaseSweep], workers)
	}
	for _, p := range []int{timeline.PhasePrep, timeline.PhasePartition} {
		if phases[p] < workers {
			t.Errorf("%d %s phase spans, want >= %d", phases[p], timeline.PhaseName(p), workers)
		}
	}
	if phases[timeline.PhaseFill] != 0 {
		t.Errorf("%d fill phase spans on a pipelined cold join, want 0", phases[timeline.PhaseFill])
	}
	if phases[timeline.PhaseRefine] < 1 || phases[timeline.PhaseMerge] != 1 {
		t.Errorf("refine=%d merge=%d owner phase spans, want >=1 and 1",
			phases[timeline.PhaseRefine], phases[timeline.PhaseMerge])
	}

	defer func() {
		if recover() == nil {
			t.Fatal("mismatched timeline track count did not panic")
		}
	}()
	Join(r, s, Config{Workers: workers + 1, Timeline: rec})
}

// TestPartitionJoinPhaseTimings pins the always-on PhaseNS contract: the
// sweep and merge buckets are filled on every run, a cold join also pays
// sort/partition/fill, and a clean steady-state re-join skips them.
func TestPartitionJoinPhaseTimings(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	r := items(randomRects(rng, 400, 100, 8), 0)
	s := items(randomRects(rng, 400, 100, 8), 10000)
	cfg := Config{Workers: 2, Grid: 6}
	var j Joiner
	defer j.Close()

	cold := j.Join(r, s, cfg)
	for _, p := range []int{timeline.PhasePrep, timeline.PhasePartition,
		timeline.PhaseSweep, timeline.PhaseMerge} {
		if cold.PhaseNS[p] <= 0 {
			t.Errorf("cold join: phase %s has no time", timeline.PhaseName(p))
		}
	}
	// The pipelined cold build fuses the fill into the scatter and reports
	// the fused phase's wall time separately.
	if cold.PhaseNS[timeline.PhaseFill] != 0 {
		t.Errorf("cold join: fill bucket has %dns, want 0 (fused into scatter)",
			cold.PhaseNS[timeline.PhaseFill])
	}
	if cold.PipelineNS <= 0 {
		t.Errorf("cold join: PipelineNS = %d, want > 0", cold.PipelineNS)
	}
	// The Barrier reference engine keeps the pre-pipeline phase structure.
	var jb Joiner
	defer jb.Close()
	barrier := jb.Join(r, s, Config{Workers: 2, Grid: 6, Barrier: true})
	if barrier.PhaseNS[timeline.PhaseFill] <= 0 || barrier.PipelineNS != 0 {
		t.Errorf("barrier join: fill=%dns pipeline=%dns, want fill > 0 and pipeline 0",
			barrier.PhaseNS[timeline.PhaseFill], barrier.PipelineNS)
	}
	warm := j.Join(r, s, cfg)
	for _, p := range []int{timeline.PhaseSort, timeline.PhasePartition, timeline.PhaseFill} {
		if warm.PhaseNS[p] != 0 {
			t.Errorf("steady-state join: phase %s ran (%dns), want skipped",
				timeline.PhaseName(p), warm.PhaseNS[p])
		}
	}
	if warm.PhaseNS[timeline.PhaseSweep] <= 0 || warm.PhaseNS[timeline.PhasePrep] <= 0 {
		t.Errorf("steady-state join: sweep/prep phases missing: %v", warm.PhaseNS)
	}
	if warm.PipelineNS != 0 {
		t.Errorf("steady-state join: PipelineNS = %d, want 0", warm.PipelineNS)
	}
}

// TestPartitionJoinIntrospection exercises the Config.Introspect extras:
// the top-K work units come out cost-descending and the heat grid folds the
// whole schedule's cost mass.
func TestPartitionJoinIntrospection(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	r := items(randomRects(rng, 600, 100, 8), 0)
	s := items(randomRects(rng, 600, 100, 8), 10000)

	plain := Join(r, s, Config{Workers: 2, Grid: 7})
	if plain.TopTiles != nil || plain.Heat != nil {
		t.Fatal("introspection fields filled without Config.Introspect")
	}

	res := Join(r, s, Config{Workers: 2, Grid: 7, Introspect: true})
	if len(res.TopTiles) == 0 || len(res.TopTiles) > TopTileK {
		t.Fatalf("%d top tiles, want 1..%d", len(res.TopTiles), TopTileK)
	}
	var topSum int64
	for i, tc := range res.TopTiles {
		if i > 0 && tc.Cost > res.TopTiles[i-1].Cost {
			t.Fatalf("top tiles not cost-descending at %d: %+v", i, res.TopTiles)
		}
		if tc.TX < 0 || tc.TX >= res.GX || tc.TY < 0 || tc.TY >= res.GY {
			t.Fatalf("top tile %d out of grid: %+v", i, tc)
		}
		topSum += tc.Cost
	}
	if res.HeatW != 7 || res.HeatH != 7 || len(res.Heat) != 49 {
		t.Fatalf("heat grid %dx%d (%d cells), want 7x7", res.HeatW, res.HeatH, len(res.Heat))
	}
	var heatSum int64
	for _, h := range res.Heat {
		if h < 0 {
			t.Fatal("negative heat cell")
		}
		heatSum += h
	}
	if heatSum < topSum {
		t.Fatalf("heat mass %d < top-tile mass %d", heatSum, topSum)
	}

	// A grid wider than HeatSide downsamples to HeatSide.
	wide := Join(r, s, Config{Workers: 2, Grid: 24, Introspect: true})
	if wide.HeatW != HeatSide || wide.HeatH != HeatSide {
		t.Fatalf("wide grid heat %dx%d, want %dx%d", wide.HeatW, wide.HeatH, HeatSide, HeatSide)
	}

	// Introspection must not break the steady-state allocation contract.
	cfg := Config{Workers: 2, Introspect: true}
	var j Joiner
	defer j.Close()
	j.Join(r, s, cfg)
	if allocs := testing.AllocsPerRun(20, func() { j.Join(r, s, cfg) }); allocs != 0 {
		t.Errorf("introspecting steady-state join: %.1f allocs, want 0", allocs)
	}
}
