package partjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"spjoin/internal/geom"
	"spjoin/internal/rtree"
	"spjoin/internal/tiger"
)

// clusteredItems builds a join workload whose two sides pile up in the
// same gaussian hotspots — the distribution the uniform grid degrades on.
func clusteredItems(n int, sigma float64, seed int64) (r, s []rtree.Item) {
	r = tiger.GaussianClusters(n, 6, sigma, 0.4, seed, seed+1)
	s = tiger.GaussianClusters(n, 6, sigma, 0.4, seed, seed+2)
	return r, s
}

// sortedPairs joins with Sorted set and returns the deterministic
// candidate order for byte-identical comparisons across engines.
func sortedPairs(j *Joiner, r, s []rtree.Item, cfg Config) ([]pairKey, Result) {
	cfg.Sorted = true
	res := j.Join(r, s, cfg)
	out := make([]pairKey, len(res.Candidates))
	for i, c := range res.Candidates {
		out[i] = pairKey{c.R, c.S}
	}
	return out, res
}

// TestRefinedMatchesUnrefined pins the tentpole contract: across skew
// shapes and thresholds, the refined engine returns the exact pair set of
// the unrefined engine (same sorted order), and actually refines when
// forced.
func TestRefinedMatchesUnrefined(t *testing.T) {
	shapes := []struct {
		name string
		r, s []rtree.Item
	}{
		{"clustered", nil, nil}, // filled below
		{"zipf", tiger.ZipfTiles(4000, 8, 1.1, 0.6, 3), tiger.ZipfTiles(4000, 8, 1.1, 0.6, 4)},
		{"diagonal", tiger.DiagonalLine(4000, 2, 0.6, 3), tiger.DiagonalLine(4000, 2, 0.6, 4)},
		{"uniform", tiger.Uniform(4000, 0.6, 3), tiger.Uniform(4000, 0.6, 4)},
	}
	shapes[0].r, shapes[0].s = clusteredItems(4000, 6, 11)
	for _, sh := range shapes {
		for _, thr := range []int64{0, 1, 256, 65536} {
			t.Run(fmt.Sprintf("%s/thr=%d", sh.name, thr), func(t *testing.T) {
				var ju, jr Joiner
				defer ju.Close()
				defer jr.Close()
				base := Config{Workers: 4, RefineThreshold: RefineDisabled}
				refined := Config{Workers: 4, RefineThreshold: thr}
				want, wantRes := sortedPairs(&ju, sh.r, sh.s, base)
				got, gotRes := sortedPairs(&jr, sh.r, sh.s, refined)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("refined pair set differs: %d pairs vs %d", len(got), len(want))
				}
				if wantRes.Subtiles != 0 || wantRes.RefinedTiles != 0 {
					t.Fatalf("disabled refinement reported %d refined tiles", wantRes.RefinedTiles)
				}
				if thr == 1 && gotRes.Subtiles == 0 {
					t.Fatalf("threshold 1 on %s did not refine anything", sh.name)
				}
				if gotRes.Subtiles > 0 && gotRes.Partitions < gotRes.Subtiles {
					t.Fatalf("partitions %d < subtiles %d", gotRes.Partitions, gotRes.Subtiles)
				}
			})
		}
	}
}

// TestRefinedMatchesBrute pins the refined engine to the brute-force
// oracle directly, duplicate-free (toSet fails on any double emission).
func TestRefinedMatchesBrute(t *testing.T) {
	r, s := clusteredItems(1200, 4, 5)
	for _, thr := range []int64{0, 1, 128} {
		for _, grid := range []int{0, 1, 5} {
			res := checkJoin(t, r, s, Config{Workers: 3, Grid: grid, RefineThreshold: thr})
			if thr == 1 && res.Subtiles == 0 {
				t.Errorf("grid %d thr 1: refinement never engaged", grid)
			}
		}
	}
}

// TestRefinedSubtileBoundaries is the exact-boundary case: rectangles
// abutting exactly at subtile boundaries under forced refinement — the
// classic shape for duplicate or lost emissions when the assignment and
// ownership mappings disagree by one ulp. The lattice pitch is chosen so
// rect edges land exactly on subtile edges at several refinement depths.
func TestRefinedSubtileBoundaries(t *testing.T) {
	// World [0,64), grid 1 → root tile 64 wide; refineK=4 puts level-1
	// subtile edges at multiples of 16, level-2 at 4, level-3 at 1. Unit
	// squares at integer corners touch boundaries at every level.
	var rects []geom.Rect
	for y := 0.0; y < 16; y++ {
		for x := 0.0; x < 16; x++ {
			rects = append(rects, geom.NewRect(x, y, x+1, y+1))
		}
	}
	// Pin the grid geometry with two anchors so tile 0 spans [0,64)².
	anchors := []geom.Rect{geom.NewRect(0, 0, 0.5, 0.5), geom.NewRect(63.5, 63.5, 64, 64)}
	r := items(append(append([]geom.Rect(nil), rects...), anchors...), 0)
	s := items(append(append([]geom.Rect(nil), rects...), anchors...), 10000)
	for _, grid := range []int{1, 2, 4} {
		res := checkJoin(t, r, s, Config{Workers: 4, Grid: grid, RefineThreshold: 1})
		if res.Subtiles == 0 {
			t.Fatalf("grid %d: no refinement on the boundary lattice", grid)
		}
	}
	// Shifted by half a unit: edges now cross subtile boundaries instead
	// of touching them.
	for i := range rects {
		rects[i] = geom.NewRect(rects[i].MinX+0.5, rects[i].MinY+0.5, rects[i].MaxX+0.5, rects[i].MaxY+0.5)
	}
	r = items(append(append([]geom.Rect(nil), rects...), anchors...), 0)
	s = items(append(append([]geom.Rect(nil), rects...), anchors...), 20000)
	checkJoin(t, r, s, Config{Workers: 4, Grid: 1, RefineThreshold: 1})
}

// TestRefinedDegenerate covers the corner shapes refinement must survive:
// everything in one tile (and one point), duplicate-heavy stacks, NaN and
// EmptyRect inputs, degenerate axes.
func TestRefinedDegenerate(t *testing.T) {
	t.Run("all-one-point", func(t *testing.T) {
		// 600 identical rects per side: no split can separate them — the
		// zoom rule must stop at the depth cap, not loop or lose pairs.
		rect := geom.NewRect(5, 5, 6, 6)
		rs := make([]geom.Rect, 600)
		for i := range rs {
			rs[i] = rect
		}
		res := checkJoin(t, items(rs, 0), items(rs, 1000), Config{Workers: 2, RefineThreshold: 1})
		if res.Subtiles != 0 && res.RefinedTiles == 0 {
			t.Fatal("subtiles without refined tiles")
		}
	})
	t.Run("vertical-line", func(t *testing.T) {
		// All rects on x=3: the x axis of the root grid collapses
		// (invW=0), so splits must refine y only.
		rng := rand.New(rand.NewSource(9))
		rs := make([]geom.Rect, 800)
		for i := range rs {
			y := rng.Float64() * 10
			rs[i] = geom.NewRect(3, y, 3, y+0.3)
		}
		checkJoin(t, items(rs, 0), items(rs, 2000), Config{Workers: 2, RefineThreshold: 1})
	})
	t.Run("nan-and-empty", func(t *testing.T) {
		rng := rand.New(rand.NewSource(10))
		rs := randomRects(rng, 500, 20, 2)
		nan := 0.0
		nan = nan / nan
		rs = append(rs, geom.Rect{MinX: nan, MinY: nan, MaxX: nan, MaxY: nan}, geom.EmptyRect())
		ss := randomRects(rng, 500, 20, 2)
		ss = append(ss, geom.Rect{MinX: 1, MinY: nan, MaxX: 2, MaxY: nan}, geom.EmptyRect())
		checkJoin(t, items(rs, 0), items(ss, 5000), Config{Workers: 3, RefineThreshold: 1})
	})
	t.Run("duplicate-heavy", func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		base := randomRects(rng, 40, 8, 1)
		var rs []geom.Rect
		for i := 0; i < 25; i++ {
			rs = append(rs, base...)
		}
		checkJoin(t, items(rs, 0), items(rs, 5000), Config{Workers: 2, RefineThreshold: 1})
	})
}

// TestRefinedReuseTiers drives a refined Joiner through the cache tiers
// (clean rejoin, in-tile patch, cross-tile move, threshold change) and
// pins each against brute force and the schedule-reuse expectations.
func TestRefinedReuseTiers(t *testing.T) {
	r, s := clusteredItems(3000, 5, 21)
	rMut := append([]rtree.Item(nil), r...)
	var j Joiner
	defer j.Close()
	cfg := Config{Workers: 4, Sorted: true, RefineThreshold: 0}

	check := func(stage string) Result {
		t.Helper()
		res := j.Join(rMut, s, cfg)
		got := toSet(t, res.Candidates)
		want := bruteSet(rMut, s)
		if len(got) != len(want) {
			t.Fatalf("%s: %d pairs, want %d", stage, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("%s: missing pair %v", stage, k)
			}
		}
		return res
	}

	cold := check("cold")
	if cold.Subtiles == 0 {
		t.Fatal("clustered auto-threshold run did not refine — test premise broken")
	}
	clean := check("clean rejoin")
	if clean.Subtiles != cold.Subtiles || clean.RefinedTiles != cold.RefinedTiles {
		t.Fatalf("clean rejoin changed the schedule: %+v vs %+v", clean, cold)
	}
	// In-tile nudge: patched fast path must re-derive the refinement.
	rMut[0].Rect.MaxX += 1e-9
	check("in-tile patch")
	// Cross-tile move: full recount plus re-refinement.
	rMut[1].Rect = geom.NewRect(0.5, 0.5, 1.0, 1.0)
	check("cross-tile move")
	// Threshold change on otherwise clean inputs must rebuild the schedule.
	cfg.RefineThreshold = RefineDisabled
	off := check("refinement disabled")
	if off.Subtiles != 0 {
		t.Fatalf("disabled refinement still produced %d subtiles", off.Subtiles)
	}
	cfg.RefineThreshold = 0
	on := check("refinement re-enabled")
	if on.Subtiles == 0 {
		t.Fatal("re-enabled refinement produced no subtiles")
	}
}

// TestRefinedZeroAlloc pins the steady-state allocation contract with
// refinement engaged: after warm-up, clean rejoins of a skewed workload
// allocate nothing.
func TestRefinedZeroAlloc(t *testing.T) {
	r, s := clusteredItems(2000, 5, 31)
	var j Joiner
	defer j.Close()
	cfg := Config{Workers: 2, Sorted: true, RefineThreshold: 0}
	res := j.Join(r, s, cfg)
	if res.Subtiles == 0 {
		t.Fatal("workload did not trigger refinement — test premise broken")
	}
	j.Join(r, s, cfg) // settle capacities
	if avg := testing.AllocsPerRun(20, func() {
		j.Join(r, s, cfg)
	}); avg != 0 {
		t.Errorf("steady-state refined join allocates %.1f times per run, want 0", avg)
	}
}

// TestRefinedBeatsUnrefinedClustered is the in-tree guard for the
// acceptance criterion (the full ≥1.5× figure is demonstrated by
// BenchmarkPartitionJoinSkewed{,Refined}): on a heavily clustered
// workload the refined engine must be meaningfully faster than the
// unrefined grid. Median of three keeps CI noise out; the bound here is
// deliberately softer than the benchmark's.
func TestRefinedBeatsUnrefinedClustered(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	r := tiger.GaussianClusters(60000, 4, 2, 0.05, 41, 42)
	s := tiger.GaussianClusters(60000, 4, 2, 0.05, 41, 43)
	var ju, jr Joiner
	defer ju.Close()
	defer jr.Close()
	base := Config{Workers: 4, RefineThreshold: RefineDisabled}
	refined := Config{Workers: 4, RefineThreshold: 0}
	// Warm up both joiners (pool spin-up, buffer growth).
	ju.Join(r, s, base)
	res := jr.Join(r, s, refined)
	if res.Subtiles == 0 {
		t.Fatal("clustered workload did not trigger refinement")
	}

	median := func(j *Joiner, cfg Config) time.Duration {
		var ds []time.Duration
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			j.Join(r, s, cfg)
			ds = append(ds, time.Since(t0))
		}
		if ds[0] > ds[1] {
			ds[0], ds[1] = ds[1], ds[0]
		}
		if ds[1] > ds[2] {
			ds[1], ds[2] = ds[2], ds[1]
		}
		if ds[0] > ds[1] {
			ds[0], ds[1] = ds[1], ds[0]
		}
		return ds[1]
	}
	tu := median(&ju, base)
	tr := median(&jr, refined)
	if float64(tu) < 1.25*float64(tr) {
		t.Errorf("refined %v vs unrefined %v: speedup %.2fx, want >= 1.25x",
			tr, tu, float64(tu)/float64(tr))
	}
	t.Logf("clustered 30k×30k: unrefined %v, refined %v (%.2fx), %d tiles -> %d subtiles",
		tu, tr, float64(tu)/float64(tr), res.RefinedTiles, res.Subtiles)
}
