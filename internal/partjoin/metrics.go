package partjoin

import (
	"fmt"
	"time"

	"spjoin/internal/metrics"
)

// partMetrics holds the pre-resolved instruments of one instrumented
// partition join. Workers accumulate their counts in the workerState and
// the owner flushes once after the join phase, so the tile loop never
// touches shared counters.
type partMetrics struct {
	partitions   *metrics.Counter
	duplicates   *metrics.Counter
	comparisons  *metrics.Counter
	candidates   *metrics.Counter
	refinedTiles *metrics.Counter
	subtiles     *metrics.Counter
	workerPairs  []*metrics.Counter

	gridTiles *metrics.Gauge
	wallMS    *metrics.Gauge
	start     time.Time
}

// newPartMetrics resolves all instruments under the "partjoin." prefix.
func newPartMetrics(reg *metrics.Registry, workers int) *partMetrics {
	m := &partMetrics{
		partitions:   reg.Counter("partjoin.partitions"),
		duplicates:   reg.Counter("partjoin.duplicates_suppressed"),
		comparisons:  reg.Counter("partjoin.comparisons"),
		candidates:   reg.Counter("partjoin.candidates"),
		refinedTiles: reg.Counter("partjoin.refined_tiles"),
		subtiles:     reg.Counter("partjoin.subtiles"),
		gridTiles:    reg.Gauge("partjoin.grid_tiles"),
		wallMS:       reg.Gauge("partjoin.wall_ms"),
		start:        time.Now(),
	}
	for i := 0; i < workers; i++ {
		m.workerPairs = append(m.workerPairs,
			reg.Counter(fmt.Sprintf("partjoin.worker.%d.pairs", i)))
	}
	return m
}

// flushWorker publishes one worker's accumulated counts.
func (m *partMetrics) flushWorker(w int, pairs, dups, comparisons, partitions int64) {
	if m == nil {
		return
	}
	m.workerPairs[w].Add(pairs)
	m.candidates.Add(pairs)
	m.duplicates.Add(dups)
	m.comparisons.Add(comparisons)
	m.partitions.Add(partitions)
}

// finish publishes the end-of-run figures.
func (m *partMetrics) finish(res *Result) {
	if m == nil {
		return
	}
	m.refinedTiles.Add(int64(res.RefinedTiles))
	m.subtiles.Add(int64(res.Subtiles))
	m.gridTiles.Set(float64(res.GX * res.GY))
	m.wallMS.Set(float64(time.Since(m.start)) / float64(time.Millisecond))
}
