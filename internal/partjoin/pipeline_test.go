package partjoin

import (
	"math/rand"
	"testing"

	"spjoin/internal/geom"
)

// TestPipelinedMatchesBarrier drives repeated cold joins through the
// pipelined build across worker counts and grid sizes, pinning the exact
// sorted pair sequence and schedule counters against the barrier engine on
// every round. Each round mutates the inputs so the rebuild exercises the
// per-side repair sort (one side's order broken), full disorder (both
// sides), and clean re-joins in between. Run under -race this is the
// pipeline's concurrency stress: the per-tile readiness frontiers, the
// claim table and the refinement hand-off all operate with real worker
// parallelism.
func TestPipelinedMatchesBarrier(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, workers := range []int{1, 2, 3, 4, 8} {
		for _, grid := range []int{0, 1, 5, 23} {
			r := items(randomRects(rng, 900, 200, 12), 0)
			s := items(randomRects(rng, 900, 200, 12), 10000)
			cfg := Config{Workers: workers, Grid: grid, Sorted: true}
			bcfg := cfg
			bcfg.Barrier = true
			var jp, jb Joiner

			compare := func(stage string) {
				t.Helper()
				res := jp.Join(r, s, cfg)
				want := jb.Join(r, s, bcfg)
				if len(res.Candidates) != len(want.Candidates) {
					t.Fatalf("w=%d g=%d %s: pipelined %d pairs, barrier %d",
						workers, grid, stage, len(res.Candidates), len(want.Candidates))
				}
				for i := range want.Candidates {
					if res.Candidates[i].R != want.Candidates[i].R ||
						res.Candidates[i].S != want.Candidates[i].S {
						t.Fatalf("w=%d g=%d %s: pair %d differs", workers, grid, stage, i)
					}
				}
				if res.Partitions != want.Partitions ||
					res.RefinedTiles != want.RefinedTiles ||
					res.Subtiles != want.Subtiles ||
					res.Duplicates != want.Duplicates {
					t.Fatalf("w=%d g=%d %s: counters differ: parts %d/%d refined %d/%d subs %d/%d dups %d/%d",
						workers, grid, stage,
						res.Partitions, want.Partitions,
						res.RefinedTiles, want.RefinedTiles,
						res.Subtiles, want.Subtiles,
						res.Duplicates, want.Duplicates)
				}
			}

			compare("cold")
			compare("clean-rejoin")
			// Break one side's order: only R re-sorts and recounts.
			r[len(r)/3].Rect.MinX -= 150
			compare("r-order-broken")
			// Break both sides at once.
			r[len(r)/2].Rect.MinX -= 75
			s[len(s)/4].Rect.MinX -= 125
			compare("both-broken")
			// In-place growth (cross-tile): segments rebuilt, order intact.
			s[len(s)/2].Rect.MaxX += 90
			s[len(s)/2].Rect.MaxY += 90
			compare("s-grown")
			jp.Close()
			jb.Close()
		}
	}
}

// TestPipelinedRefinementStress forces deep refinement through the
// pipelined build on a clustered workload and checks the refinement tiers
// compose with the pipeline: subtiles appear, the clean fast path reuses
// the reconstructed schedule allocation-free, and the pair sequence stays
// pinned to the barrier engine.
func TestPipelinedRefinementStress(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	// A dense cluster in one corner plus background noise.
	var rects []geom.Rect
	for i := 0; i < 1200; i++ {
		x := rng.Float64() * 10
		y := rng.Float64() * 10
		rects = append(rects, geom.NewRect(x, y, x+0.5, y+0.5))
	}
	for i := 0; i < 300; i++ {
		x := rng.Float64() * 200
		y := rng.Float64() * 200
		rects = append(rects, geom.NewRect(x, y, x+2, y+2))
	}
	r := items(rects[:700], 0)
	s := items(rects[700:], 10000)

	for _, workers := range []int{1, 3} {
		cfg := Config{Workers: workers, Grid: 8, Sorted: true, RefineThreshold: 64}
		bcfg := cfg
		bcfg.Barrier = true
		var jp, jb Joiner
		res := jp.Join(r, s, cfg)
		want := jb.Join(r, s, bcfg)
		if res.Subtiles == 0 {
			t.Fatalf("w=%d: clustered workload did not refine under the pipeline", workers)
		}
		if res.Subtiles != want.Subtiles || res.RefinedTiles != want.RefinedTiles {
			t.Fatalf("w=%d: refinement differs: %d/%d tiles, %d/%d subtiles",
				workers, res.RefinedTiles, want.RefinedTiles, res.Subtiles, want.Subtiles)
		}
		if len(res.Candidates) != len(want.Candidates) {
			t.Fatalf("w=%d: pipelined %d pairs, barrier %d",
				workers, len(res.Candidates), len(want.Candidates))
		}
		for i := range want.Candidates {
			if res.Candidates[i].R != want.Candidates[i].R ||
				res.Candidates[i].S != want.Candidates[i].S {
				t.Fatalf("w=%d: pair %d differs", workers, i)
			}
		}
		// The reconstructed schedule must serve the clean fast path with
		// zero allocations, exactly like a barrier-built one.
		jp.Join(r, s, cfg)
		if avg := testing.AllocsPerRun(10, func() {
			jp.Join(r, s, cfg)
		}); avg != 0 {
			t.Errorf("w=%d: steady state after pipelined build allocates %.1f/run, want 0",
				workers, avg)
		}
		jp.Close()
		jb.Close()
	}
}
