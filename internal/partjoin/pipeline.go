package partjoin

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"spjoin/internal/geom"
	"spjoin/internal/sim"
	"spjoin/internal/timeline"
)

// Pipelined cold-path build: instead of running scatter, fill and the
// per-tile sweeps as separate full pool barriers, one fused phase does all
// three overlapped. Each worker first scatters its sweep-order chunks of
// both sides directly into the tile segments AND their coordinate planes
// (the fill is fused into the scatter — the rectangle is already in a
// register), publishing a per-worker column frontier as it advances; the
// moment every frontier has passed a tile's column, that tile's segments
// are complete and any worker may claim it from the cost-descending ready
// queue and sweep it while trailing chunks are still scattering. Hot tiles
// routed to refinement are parked in the queue until every scatter has
// landed, then one worker splits them (the same sequential splitSeg walk
// the barrier build uses) and publishes the resulting subtile units for
// the others to drain.
//
// Readiness protocol and memory ordering: the scatter walks a side's
// global sweep order, which ascends by MinX, so a worker that is about to
// place a rectangle whose leftmost tile column is c has already completed
// every write it will ever make to columns < c (a rectangle's span never
// reaches left of its own MinX column). The worker therefore publishes c
// to its frontier cell with an atomic store; a claimer that loads every
// frontier and sees min > col observes — by the store/load
// happens-before of sync/atomic — all segment and plane writes for that
// column. NaN coordinates are the one way column order can break (they
// compare as ordered but clamp to column 0), so the count pass records a
// per-chunk column-monotonicity flag and a run that trips it publishes no
// frontiers at all: tiles then become ready only at the whole-scatter
// rendezvous (the scatDone counter), which degrades the overlap, never
// the result. The refinement hand-off uses the same discipline: the
// owner's splitSeg writes all precede the release store of refineDone,
// and consumers touch the subtile units only after acquiring it.
//
// Exactness: the fused scatter writes the identical idx/planes content the
// barrier scatter+fill pair produces (same chunks, same cursors from the
// same prefix sums), refinement runs the same splitSeg sequence in the
// same ascending-tile order with the same budget, and every work unit —
// root tile or subtile leaf — is swept by exactly one claimer. After the
// phase, pipelineRun reconstructs the canonical largest-first unit
// schedule, so a following clean fast-path join reuses the exact state a
// barrier build would have cached.

// pipeState is the shared coordination state of one fused pipeline phase.
type pipeState struct {
	front []atomic.Int32 // per-worker scatter column frontier (gx = done)
	mono  bool           // frontiers are sound (count saw ascending columns)

	scatDone    atomic.Int32 // workers done scattering
	refineOwner atomic.Int32 // CAS gate electing the refinement runner
	refineDone  atomic.Int32 // release-published when subunits are final
	subCount    int32        // number of subtile units; final under refineDone
	subCursor   atomic.Int64 // claim cursor over the subtile units
}

func (p *pipeState) reset(workers int) {
	if cap(p.front) < workers {
		p.front = make([]atomic.Int32, workers)
	}
	p.front = p.front[:workers]
	for i := range p.front {
		p.front[i].Store(0)
	}
	p.scatDone.Store(0)
	p.refineOwner.Store(0)
	p.refineDone.Store(0)
	p.subCount = 0
	p.subCursor.Store(0)
}

// pipeOrder sorts j.pOrder (indices into j.tiles) by descending tile cost,
// ties on ascending tile id — the claim scan order, so ready tiles are
// taken largest-first.
type pipeOrder struct{ j *Joiner }

func (o *pipeOrder) Len() int { return len(o.j.pOrder) }
func (o *pipeOrder) Less(i, k int) bool {
	a, b := o.j.pOrder[i], o.j.pOrder[k]
	if o.j.cost[a] != o.j.cost[b] {
		return o.j.cost[a] > o.j.cost[b]
	}
	return o.j.tiles[a] < o.j.tiles[b]
}
func (o *pipeOrder) Swap(i, k int) {
	o.j.pOrder[i], o.j.pOrder[k] = o.j.pOrder[k], o.j.pOrder[i]
}

// pipelineRun is the cold build's fused tail: schedule preparation, the
// pipelined pool phase, and the canonical-schedule reconstruction. On
// entry both sides are counted and prefix-summed; on exit the Joiner's
// cached state (segments, planes, refinement arenas, unit schedule) is
// bit-identical to what the barrier phases would have left.
func (j *Joiner) pipelineRun(cfg Config) {
	workers := j.workers

	// Schedule prep, sequential on the owner: non-empty tiles and costs,
	// the cost-descending claim order, and the refinement hand-off (hot
	// tiles parked in the claim table until the scatter rendezvous). Both
	// prep and the closing reconstruction are schedule work — they accrue
	// to the refine bucket like the barrier build's buildUnits block.
	refBefore := j.phaseNS[timeline.PhaseRefine]
	tRef := time.Now()
	if j.rec != nil {
		j.rec.BeginSpan(0, wallSince(j.epoch), timeline.KindPhase,
			sim.SpanArgs{A: timeline.PhaseRefine})
	}
	tiles := j.gx * j.gy
	j.tiles = j.tiles[:0]
	j.cost = j.cost[:0]
	for t := 0; t < tiles; t++ {
		rn := int64(j.rPart.starts[t+1] - j.rPart.starts[t])
		sn := int64(j.sPart.starts[t+1] - j.sPart.starts[t])
		if rn == 0 || sn == 0 {
			continue
		}
		j.tiles = append(j.tiles, int32(t))
		j.cost = append(j.cost, rn*sn+rn+sn)
	}
	j.pipeTrigger, j.pipeRecur = j.resolveThreshold(cfg.RefineThreshold)
	if cap(j.pOrder) < len(j.tiles) {
		j.pOrder = make([]int32, len(j.tiles))
	}
	j.pOrder = j.pOrder[:len(j.tiles)]
	for i := range j.pOrder {
		j.pOrder[i] = int32(i)
	}
	j.pipeOrd.j = j
	sort.Sort(&j.pipeOrd)
	j.ready.Reset(len(j.tiles))

	// Refinement state resets exactly as buildUnits' head does; the units
	// list will collect subtile leaves during the in-phase refinement and
	// the root units afterwards.
	j.units = j.units[:0]
	j.ucost = j.ucost[:0]
	j.refNodes = j.refNodes[:0]
	j.refRIdx = j.refRIdx[:0]
	j.refSIdx = j.refSIdx[:0]
	j.refinedTiles, j.subtiles = 0, 0
	j.refBudget = refineBudgetFactor * (len(j.rPart.idx) + len(j.sPart.idx))
	hot := false
	if j.pipeTrigger >= 0 {
		for i, c := range j.cost {
			if c > j.pipeTrigger {
				j.ready.Defer(i)
				hot = true
			}
		}
	}
	j.pipe.reset(workers)
	j.pipe.mono = j.rPart.monotone(workers) && j.sPart.monotone(workers)
	if !hot {
		j.pipe.refineDone.Store(1)
	}
	if j.rec != nil {
		j.rec.EndSpan(0, wallSince(j.epoch), sim.SpanArgs{}, false)
	}
	j.phaseNS[timeline.PhaseRefine] = refBefore + time.Since(tRef).Nanoseconds()

	// Publish the root schedule as the live-progress total; the in-phase
	// refinement adjusts it (pipeRefine) when hot roots become subtiles.
	j.prog.SetTotal(int64(len(j.tiles)), sumCost(j.cost))

	// The fused phase. Its wall time is reported as Result.PipelineNS;
	// the per-phase buckets receive each worker's busy time instead (the
	// phases overlap, so per-phase wall no longer exists).
	j.phase = phasePipeline
	t0 := time.Now()
	j.pool.Run(j)
	j.pipelineNS = time.Since(t0).Nanoseconds()
	for w := range j.ws[:workers] {
		for p, ns := range j.ws[w].phaseNS {
			j.phaseNS[p] += ns
		}
	}

	// Reconstruct the canonical schedule: the subtile units are already in
	// splitSeg order; every claim-swept root tile joins them, and the
	// largest-first sort (a total order — cost, then tile, then node)
	// leaves the exact unit sequence buildUnits produces, so the clean
	// fast path reuses it verbatim.
	tRef = time.Now()
	if j.rec != nil {
		j.rec.BeginSpan(0, wallSince(j.epoch), timeline.KindPhase,
			sim.SpanArgs{A: timeline.PhaseRefine})
	}
	for i, t := range j.tiles {
		if j.ready.Taken(i) {
			j.units = append(j.units, workUnit{tile: t, node: -1})
			j.ucost = append(j.ucost, j.cost[i])
		}
	}
	j.order.j = j
	sort.Sort(&j.order)
	j.unitsOK = true
	j.cThr = cfg.RefineThreshold
	if j.rec != nil {
		j.rec.EndSpan(0, wallSince(j.epoch), sim.SpanArgs{}, false)
	}
	j.phaseNS[timeline.PhaseRefine] += time.Since(tRef).Nanoseconds()
}

// pipeWorker is one worker's run through the fused phase: scatter+fill its
// chunks, then claim work — ready root tiles largest-first, the refinement
// hand-off once scattering is over, subtile units once published — until
// everything is drained.
func (j *Joiner) pipeWorker(w int) {
	ws := &j.ws[w]
	t0 := time.Now()
	if j.rec != nil {
		j.rec.BeginSpan(w, wallSince(j.epoch), timeline.KindPhase,
			sim.SpanArgs{A: timeline.PhasePartition})
	}
	j.pipeScatter(w)
	if j.rec != nil {
		j.rec.EndSpan(w, wallSince(j.epoch), sim.SpanArgs{}, false)
	}
	ws.phaseNS[timeline.PhasePartition] += time.Since(t0).Nanoseconds()
	workers := int32(j.workers)
	j.pipe.scatDone.Add(1)

	for {
		progress := j.pipeSweepRoots(ws, w)
		if j.pipe.refineDone.Load() == 0 && j.pipe.scatDone.Load() == workers &&
			j.pipe.refineOwner.CompareAndSwap(0, 1) {
			j.pipeRefine(ws, w)
			progress = true
		}
		if j.pipeSweepSubs(ws, w) {
			progress = true
		}
		if !progress {
			if j.pipeDrained(workers) {
				break
			}
			runtime.Gosched()
		}
	}

	ws.pairs = int64(len(ws.cands))
	if j.sortRuns {
		tS := time.Now()
		ws.candSorter.Cands = ws.cands
		sort.Sort(&ws.candSorter)
		ws.candSorter.Cands = nil
		ws.phaseNS[timeline.PhaseSweep] += time.Since(tS).Nanoseconds()
	}
}

// pipeScatter is the fused scatter+fill over this worker's chunks: one
// walk of each side's sweep order writes the tile segment index AND the
// segment's coordinate plane (the barrier build's separate fill pass
// re-gathered every rectangle; here it is already loaded). The frontier
// publishes only while the S side scatters — this worker's R chunk is
// complete by then, so columns left of the S cursor are complete for both
// sides — and only on column advances, so the atomic store runs at most
// gx times.
func (j *Joiner) pipeScatter(w int) {
	tiles := j.gx * j.gy
	sides := [2]struct {
		part  *gridSide
		rects []geom.Rect
		ord   []int32
		codes []int64
	}{
		{&j.rPart, j.rRects, j.rOrd, j.rTile},
		{&j.sPart, j.sRects, j.sOrd, j.sTile},
	}
	fr := &j.pipe.front[w]
	publish := j.pipe.mono
	last := int32(0)
	for si := range sides {
		side := &sides[si]
		cur := side.part.counts[w*tiles : (w+1)*tiles]
		idx := side.part.idx
		planes := &side.part.planes
		lo, hi := j.chunkRange(len(side.ord), w)
		for pos := lo; pos < hi; pos++ {
			i := side.ord[pos]
			x0, y0, x1, y1 := unpackTiles(side.codes[pos])
			if publish && si == 1 {
				if nx := int32(x0); nx > last {
					fr.Store(nx)
					last = nx
				}
			}
			r := side.rects[i]
			if x0 == x1 && y0 == y1 { // the common single-tile rect
				c := y0*j.gx + x0
				p := cur[c]
				idx[p] = i
				planes.SetRect(int(p), r)
				cur[c] = p + 1
				continue
			}
			for ty := y0; ty <= y1; ty++ {
				base := ty * j.gx
				for tx := x0; tx <= x1; tx++ {
					p := cur[base+tx]
					idx[p] = i
					planes.SetRect(int(p), r)
					cur[base+tx] = p + 1
				}
			}
		}
	}
	fr.Store(int32(j.gx))
}

// pipeSweepRoots scans the cost-descending claim order for free, ready
// root tiles and sweeps every one it wins. While scatters are still in
// flight a tile is ready when every worker's frontier has passed its
// column; afterwards every tile is. Reports whether it swept anything.
func (j *Joiner) pipeSweepRoots(ws *workerState, w int) bool {
	workers := int32(j.workers)
	ready := j.pipe.scatDone.Load() == workers
	minFront := int32(j.gx)
	if !ready {
		if !j.pipe.mono {
			return false // frontiers unsound: wait for the rendezvous
		}
		for i := range j.pipe.front {
			if f := j.pipe.front[i].Load(); f < minFront {
				minFront = f
			}
		}
		if minFront == 0 {
			return false
		}
	}
	swept := false
	for _, pi := range j.pOrder {
		i := int(pi)
		if !j.ready.Free(i) {
			continue
		}
		t := int(j.tiles[pi])
		if !ready && int32(t%j.gx) >= minFront {
			continue
		}
		if !j.ready.TryClaim(i) {
			continue
		}
		j.pipeJoinUnit(ws, w, t, -1, j.cost[i])
		swept = true
	}
	return swept
}

// pipeRefine is the elected worker's refinement pass, the in-pipeline
// analogue of buildUnits' splitting: deferred tiles are visited in
// ascending tile order (the budget consumption order the barrier build
// uses), committed splits append their leaf units, failed ones release
// the tile back to the claimers. The arena planes are filled inline — the
// other workers are busy sweeping, and a nested pool phase cannot run
// inside a running phase.
func (j *Joiner) pipeRefine(ws *workerState, w int) {
	tR := time.Now()
	if j.rec != nil {
		j.rec.BeginSpan(w, wallSince(j.epoch), timeline.KindPhase,
			sim.SpanArgs{A: timeline.PhaseRefine})
	}
	var committed, committedCost int64
	for i, t := range j.tiles {
		if !j.ready.Deferred(i) {
			continue
		}
		before := len(j.units)
		if j.refineRoot(t, j.pipeRecur) {
			j.refinedTiles++
			j.subtiles += len(j.units) - before
			committed++
			committedCost += j.cost[i]
		} else {
			j.ready.Release(i)
		}
	}
	j.refRPlanes.Reset(len(j.refRIdx))
	j.refSPlanes.Reset(len(j.refSIdx))
	for pos, ri := range j.refRIdx {
		j.refRPlanes.SetRect(pos, j.rRects[ri])
	}
	for pos, si := range j.refSIdx {
		j.refSPlanes.SetRect(pos, j.sRects[si])
	}
	j.pipe.subCount = int32(len(j.units))
	// Reshape the live-progress total: each committed root leaves the
	// schedule and its subtile leaves (possibly zero, when the split
	// proved every rect dead) enter it.
	j.prog.AddTotal(int64(len(j.units))-committed, sumCost(j.ucost)-committedCost)
	j.pipe.refineDone.Store(1) // release: units/nodes/planes final
	if j.rec != nil {
		j.rec.EndSpan(w, wallSince(j.epoch), sim.SpanArgs{}, false)
	}
	ws.phaseNS[timeline.PhaseRefine] += time.Since(tR).Nanoseconds()
}

// pipeSweepSubs drains published subtile units off the shared cursor.
func (j *Joiner) pipeSweepSubs(ws *workerState, w int) bool {
	if j.pipe.refineDone.Load() == 0 {
		return false // acquire: subCount and the units are not final yet
	}
	n := int64(j.pipe.subCount)
	if n == 0 {
		return false
	}
	swept := false
	for {
		k := j.pipe.subCursor.Add(1) - 1
		if k >= n {
			break
		}
		u := j.units[k]
		j.pipeJoinUnit(ws, w, int(u.tile), u.node, j.ucost[k])
		swept = true
	}
	return swept
}

// pipeJoinUnit sweeps one claimed work unit, with the same per-unit
// timeline span the barrier join phase emits; cost is the unit's
// scheduled estimate, reported to the live-progress slot.
func (j *Joiner) pipeJoinUnit(ws *workerState, w, t int, node int32, cost int64) {
	tU := time.Now()
	var t0 sim.Time
	if j.rec != nil {
		t0 = wallSince(j.epoch)
	}
	before := len(ws.cands)
	var comps int
	if node < 0 {
		comps = j.joinTile(ws, t)
	} else {
		comps = j.joinSub(ws, node)
	}
	ws.parts++
	j.prog.UnitDone(cost)
	if j.rec != nil {
		j.rec.Complete(w, t0, wallSince(j.epoch), timeline.KindCPUSweep, sim.SpanArgs{
			A: int64(t % j.gx), B: int64(t / j.gx),
			C: int64(len(ws.cands) - before), D: int64(comps),
		})
	}
	ws.phaseNS[timeline.PhaseSweep] += time.Since(tU).Nanoseconds()
}

// pipeDrained reports whether the phase can end: all scatters landed, the
// refinement hand-off resolved, no root tile is still claimable and the
// subtile cursor is exhausted. Units claimed by still-sweeping peers are
// fine to leave behind — the pool's phase barrier waits for every worker.
func (j *Joiner) pipeDrained(workers int32) bool {
	if j.pipe.scatDone.Load() != workers || j.pipe.refineDone.Load() == 0 {
		return false
	}
	if j.pipe.subCursor.Load() < int64(j.pipe.subCount) {
		return false
	}
	for i := range j.tiles {
		if j.ready.Free(i) {
			return false
		}
	}
	return true
}
