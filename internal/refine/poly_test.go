package refine

import (
	"math"
	"math/rand"
	"testing"

	"spjoin/internal/geom"
)

func square(x, y, side float64) Polygon {
	return NewPolygon(
		[]float64{x, x + side, x + side, x},
		[]float64{y, y, y + side, y + side},
	)
}

func TestChainBasics(t *testing.T) {
	c := NewChain([]float64{0, 1, 2}, []float64{0, 1, 0})
	if c.NumSegments() != 2 {
		t.Fatalf("NumSegments = %d", c.NumSegments())
	}
	if got := c.Segment(1); got != (Segment{1, 1, 2, 0}) {
		t.Fatalf("Segment(1) = %v", got)
	}
	if got, want := c.Bounds(), geom.NewRect(0, 0, 2, 1); got != want {
		t.Fatalf("Bounds = %v, want %v", got, want)
	}
}

func TestChainValidation(t *testing.T) {
	for _, mk := range []func(){
		func() { NewChain([]float64{1}, []float64{1}) },
		func() { NewChain([]float64{1, 2}, []float64{1}) },
		func() { NewPolygon([]float64{1, 2}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid construction")
				}
			}()
			mk()
		}()
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	p := square(0, 0, 4)
	cases := []struct {
		x, y float64
		want bool
	}{
		{2, 2, true},
		{0, 0, true}, // vertex
		{2, 0, true}, // edge
		{5, 2, false},
		{-1, -1, false},
		{4.0001, 2, false},
	}
	for _, c := range cases {
		if got := p.ContainsPoint(c.x, c.y); got != c.want {
			t.Errorf("ContainsPoint(%g,%g) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
	// Non-convex: an L-shape.
	l := NewPolygon(
		[]float64{0, 4, 4, 2, 2, 0},
		[]float64{0, 0, 2, 2, 4, 4},
	)
	if !l.ContainsPoint(1, 3) {
		t.Error("L-shape must contain (1,3)")
	}
	if l.ContainsPoint(3, 3) {
		t.Error("L-shape must not contain (3,3) (the notch)")
	}
}

func TestShapeIntersectsChainCombos(t *testing.T) {
	zig := ChainShape(NewChain([]float64{0, 2, 4}, []float64{0, 2, 0}))
	cases := []struct {
		name string
		o    Shape
		want bool
	}{
		{"crossing segment", SegmentShape(Segment{2, -1, 2, 3}), true},
		{"distant segment", SegmentShape(Segment{10, 10, 11, 11}), false},
		{"box over middle", BoxShape(geom.NewRect(1.5, 1.5, 2.5, 2.5)), true},
		{"box under the tent", BoxShape(geom.NewRect(1.8, -0.5, 2.2, 0.4)), false},
		{"touching chain", ChainShape(NewChain([]float64{2, 2}, []float64{2, 5})), true},
		{"parallel chain", ChainShape(NewChain([]float64{0, 2, 4}, []float64{-1, 1, -1})), false},
	}
	for _, c := range cases {
		if got := zig.Intersects(c.o); got != c.want {
			t.Errorf("%s: %v, want %v", c.name, got, c.want)
		}
		if got := c.o.Intersects(zig); got != c.want {
			t.Errorf("%s swapped: %v, want %v", c.name, got, c.want)
		}
	}
}

func TestShapeIntersectsPolygonCombos(t *testing.T) {
	poly := PolygonShape(square(0, 0, 4))
	cases := []struct {
		name string
		o    Shape
		want bool
	}{
		{"segment inside", SegmentShape(Segment{1, 1, 2, 2}), true},
		{"segment crossing", SegmentShape(Segment{-1, 2, 5, 2}), true},
		{"segment outside", SegmentShape(Segment{5, 5, 6, 6}), false},
		{"box inside", BoxShape(geom.NewRect(1, 1, 2, 2)), true},
		{"box containing polygon", BoxShape(geom.NewRect(-1, -1, 5, 5)), true},
		{"box outside", BoxShape(geom.NewRect(6, 6, 7, 7)), false},
		{"polygon overlapping", PolygonShape(square(3, 3, 4)), true},
		{"polygon inside", PolygonShape(square(1, 1, 1)), true},
		{"polygon outside", PolygonShape(square(10, 10, 2)), false},
		{"chain through", ChainShape(NewChain([]float64{-1, 2, 5}, []float64{2, 2, 2})), true},
		{"chain fully inside", ChainShape(NewChain([]float64{1, 2, 3}, []float64{1, 2, 1})), true},
	}
	for _, c := range cases {
		if got := poly.Intersects(c.o); got != c.want {
			t.Errorf("%s: %v, want %v", c.name, got, c.want)
		}
		if got := c.o.Intersects(poly); got != c.want {
			t.Errorf("%s swapped: %v, want %v", c.name, got, c.want)
		}
	}
}

func TestShapeStringNewKinds(t *testing.T) {
	if got := ChainShape(NewChain([]float64{0, 1}, []float64{0, 1})).String(); got != "chain(2 points)" {
		t.Errorf("chain String = %q", got)
	}
	if got := PolygonShape(square(0, 0, 1)).String(); got != "polygon(4 vertices)" {
		t.Errorf("polygon String = %q", got)
	}
}

func TestShapeAccessorsNewKinds(t *testing.T) {
	c := ChainShape(NewChain([]float64{0, 1}, []float64{0, 1}))
	if _, ok := c.IsChain(); !ok {
		t.Error("chain accessor")
	}
	if _, ok := c.IsPolygon(); ok {
		t.Error("chain is not polygon")
	}
	p := PolygonShape(square(0, 0, 1))
	if _, ok := p.IsPolygon(); !ok {
		t.Error("polygon accessor")
	}
	if _, ok := p.IsSegment(); ok {
		t.Error("polygon is not segment")
	}
}

func TestChainEquivalentToUnionOfSegments(t *testing.T) {
	// A chain intersects a shape iff any of its segments does (chains are
	// open, they have no interior).
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		xs := make([]float64, 4)
		ys := make([]float64, 4)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = rng.Float64() * 10
		}
		chain := NewChain(xs, ys)
		probe := SegmentShape(Segment{
			rng.Float64() * 10, rng.Float64() * 10,
			rng.Float64() * 10, rng.Float64() * 10,
		})
		want := false
		for i := 0; i < chain.NumSegments(); i++ {
			seg, _ := probe.IsSegment()
			if chain.Segment(i).Intersects(seg) {
				want = true
				break
			}
		}
		if got := ChainShape(chain).Intersects(probe); got != want {
			t.Fatalf("trial %d: chain intersect = %v, want %v", trial, got, want)
		}
	}
}

func TestQuickPolygonContainsConsistentWithBounds(t *testing.T) {
	p := square(2, 2, 6)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		x, y := rng.Float64()*12, rng.Float64()*12
		if p.ContainsPoint(x, y) && !p.Bounds().ContainsPoint(x, y) {
			t.Fatalf("point (%g,%g) inside polygon but outside bounds", x, y)
		}
		// For the axis-parallel square, containment must match the rect.
		want := p.Bounds().ContainsPoint(x, y)
		if got := p.ContainsPoint(x, y); got != want {
			t.Fatalf("square polygon containment (%g,%g) = %v, rect says %v", x, y, got, want)
		}
	}
}

func TestPolygonBoundsDegenerate(t *testing.T) {
	p := NewPolygon([]float64{1, 1, 1}, []float64{1, 1, 1})
	b := p.Bounds()
	if b.MinX != 1 || b.MaxX != 1 || math.IsInf(b.MinX, 0) {
		t.Fatalf("degenerate polygon bounds %v", b)
	}
}
