package refine

import (
	"fmt"

	"spjoin/internal/geom"
)

// Shape is the exact geometry of a spatial object as used by the
// refinement step: a line segment, an axis-parallel box, an open polyline
// (Chain) or a simple polygon. The filter step only ever sees the Bounds;
// the refinement step evaluates Intersects.
type Shape struct {
	kind    shapeKind
	seg     Segment
	box     geom.Rect
	chain   Chain
	polygon Polygon
}

type shapeKind uint8

const (
	segmentKind shapeKind = iota
	boxKind
	chainKind
	polygonKind
)

// SegmentShape wraps a line segment.
func SegmentShape(s Segment) Shape { return Shape{kind: segmentKind, seg: s} }

// BoxShape wraps an axis-parallel box.
func BoxShape(r geom.Rect) Shape { return Shape{kind: boxKind, box: r} }

// ChainShape wraps an open polyline.
func ChainShape(c Chain) Shape { return Shape{kind: chainKind, chain: c} }

// PolygonShape wraps a simple polygon ring.
func PolygonShape(p Polygon) Shape { return Shape{kind: polygonKind, polygon: p} }

// IsSegment reports whether the shape is a segment, returning it.
func (s Shape) IsSegment() (Segment, bool) {
	return s.seg, s.kind == segmentKind
}

// IsBox reports whether the shape is a box, returning it.
func (s Shape) IsBox() (geom.Rect, bool) {
	return s.box, s.kind == boxKind
}

// IsChain reports whether the shape is a polyline, returning it.
func (s Shape) IsChain() (Chain, bool) {
	return s.chain, s.kind == chainKind
}

// IsPolygon reports whether the shape is a polygon, returning it.
func (s Shape) IsPolygon() (Polygon, bool) {
	return s.polygon, s.kind == polygonKind
}

// Bounds returns the shape's MBR.
func (s Shape) Bounds() geom.Rect {
	switch s.kind {
	case segmentKind:
		return s.seg.Bounds()
	case boxKind:
		return s.box
	case chainKind:
		return s.chain.Bounds()
	default:
		return s.polygon.Bounds()
	}
}

// Intersects evaluates the exact join predicate between two shapes. The
// frequent simple combinations use direct predicates; everything involving
// chains or polygons goes through the generic edge/containment test.
func (s Shape) Intersects(o Shape) bool {
	switch {
	case s.kind == segmentKind && o.kind == segmentKind:
		return s.seg.Intersects(o.seg)
	case s.kind == segmentKind && o.kind == boxKind:
		return s.seg.IntersectsRect(o.box)
	case s.kind == boxKind && o.kind == segmentKind:
		return o.seg.IntersectsRect(s.box)
	case s.kind == boxKind && o.kind == boxKind:
		return s.box.Intersects(o.box)
	default:
		return genericIntersects(s, o)
	}
}

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s.kind {
	case segmentKind:
		return fmt.Sprintf("segment(%g,%g -> %g,%g)", s.seg.X1, s.seg.Y1, s.seg.X2, s.seg.Y2)
	case boxKind:
		return "box" + s.box.String()
	case chainKind:
		return fmt.Sprintf("chain(%d points)", len(s.chain.X))
	default:
		return fmt.Sprintf("polygon(%d vertices)", len(s.polygon.X))
	}
}
