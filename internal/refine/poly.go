package refine

import (
	"fmt"

	"spjoin/internal/geom"
)

// Chain is an open polyline — the natural exact geometry of TIGER street,
// river and railway features, which bend. Points are (X[i], Y[i]);
// len(X) == len(Y) >= 2.
type Chain struct {
	X, Y []float64
}

// NewChain builds a polyline from coordinate pairs; it panics on fewer than
// two points or mismatched slices (construction is programmer-controlled).
func NewChain(xs, ys []float64) Chain {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic(fmt.Sprintf("refine: chain needs >= 2 matched points, got %d/%d", len(xs), len(ys)))
	}
	return Chain{X: xs, Y: ys}
}

// Bounds returns the chain's MBR.
func (c Chain) Bounds() geom.Rect {
	r := geom.EmptyRect()
	for i := range c.X {
		r = r.Union(geom.Rect{MinX: c.X[i], MinY: c.Y[i], MaxX: c.X[i], MaxY: c.Y[i]})
	}
	return r
}

// NumSegments returns the number of line segments.
func (c Chain) NumSegments() int { return len(c.X) - 1 }

// Segment returns the i-th segment.
func (c Chain) Segment(i int) Segment {
	return Segment{X1: c.X[i], Y1: c.Y[i], X2: c.X[i+1], Y2: c.Y[i+1]}
}

// Polygon is a simple closed ring (an administrative boundary); the edge
// from the last vertex back to the first is implicit. len >= 3.
type Polygon struct {
	X, Y []float64
}

// NewPolygon builds a ring from coordinate pairs; it panics on fewer than
// three vertices or mismatched slices.
func NewPolygon(xs, ys []float64) Polygon {
	if len(xs) != len(ys) || len(xs) < 3 {
		panic(fmt.Sprintf("refine: polygon needs >= 3 matched vertices, got %d/%d", len(xs), len(ys)))
	}
	return Polygon{X: xs, Y: ys}
}

// Bounds returns the polygon's MBR.
func (p Polygon) Bounds() geom.Rect {
	r := geom.EmptyRect()
	for i := range p.X {
		r = r.Union(geom.Rect{MinX: p.X[i], MinY: p.Y[i], MaxX: p.X[i], MaxY: p.Y[i]})
	}
	return r
}

// NumEdges returns the number of boundary edges (== vertex count).
func (p Polygon) NumEdges() int { return len(p.X) }

// Edge returns the i-th boundary edge.
func (p Polygon) Edge(i int) Segment {
	j := (i + 1) % len(p.X)
	return Segment{X1: p.X[i], Y1: p.Y[i], X2: p.X[j], Y2: p.Y[j]}
}

// ContainsPoint reports whether (x, y) lies inside or on the ring
// (even-odd rule with an on-edge pre-check, so boundary points count as
// contained, matching the closed-set semantics of the other predicates).
func (p Polygon) ContainsPoint(x, y float64) bool {
	for i := 0; i < p.NumEdges(); i++ {
		e := p.Edge(i)
		if orientation(e.X1, e.Y1, e.X2, e.Y2, x, y) == 0 && e.onSegment(x, y) {
			return true
		}
	}
	inside := false
	n := len(p.X)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		xi, yi := p.X[i], p.Y[i]
		xj, yj := p.X[j], p.Y[j]
		if (yi > y) != (yj > y) &&
			x < (xj-xi)*(y-yi)/(yj-yi)+xi {
			inside = !inside
		}
	}
	return inside
}

// shapeEdges enumerates a shape's boundary segments.
func shapeEdges(s Shape) []Segment {
	switch s.kind {
	case segmentKind:
		return []Segment{s.seg}
	case boxKind:
		r := s.box
		return []Segment{
			{r.MinX, r.MinY, r.MaxX, r.MinY},
			{r.MaxX, r.MinY, r.MaxX, r.MaxY},
			{r.MaxX, r.MaxY, r.MinX, r.MaxY},
			{r.MinX, r.MaxY, r.MinX, r.MinY},
		}
	case chainKind:
		out := make([]Segment, s.chain.NumSegments())
		for i := range out {
			out[i] = s.chain.Segment(i)
		}
		return out
	case polygonKind:
		out := make([]Segment, s.polygon.NumEdges())
		for i := range out {
			out[i] = s.polygon.Edge(i)
		}
		return out
	default:
		return nil
	}
}

// containsPoint reports whether an area shape (box or polygon) contains the
// point; open shapes contain nothing.
func shapeContainsPoint(s Shape, x, y float64) bool {
	switch s.kind {
	case boxKind:
		return s.box.ContainsPoint(x, y)
	case polygonKind:
		return s.polygon.ContainsPoint(x, y)
	default:
		return false
	}
}

// aPointOf returns one point of the shape (for containment tests).
func aPointOf(s Shape) (x, y float64) {
	switch s.kind {
	case segmentKind:
		return s.seg.X1, s.seg.Y1
	case boxKind:
		return s.box.MinX, s.box.MinY
	case chainKind:
		return s.chain.X[0], s.chain.Y[0]
	default:
		return s.polygon.X[0], s.polygon.Y[0]
	}
}

// genericIntersects evaluates intersection between any two shapes: their
// MBRs must overlap; then either some pair of boundary edges intersects, or
// one shape lies entirely inside the other (area shapes only).
func genericIntersects(a, b Shape) bool {
	if !a.Bounds().Intersects(b.Bounds()) {
		return false
	}
	ea, eb := shapeEdges(a), shapeEdges(b)
	for _, sa := range ea {
		for _, sb := range eb {
			if sa.Intersects(sb) {
				return true
			}
		}
	}
	// No boundary crossing: intersection only if one contains the other.
	bx, by := aPointOf(b)
	if shapeContainsPoint(a, bx, by) {
		return true
	}
	ax, ay := aPointOf(a)
	return shapeContainsPoint(b, ax, ay)
}
