package refine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spjoin/internal/geom"
)

func TestCostModelRange(t *testing.T) {
	m := DefaultCostModel()
	if got := m.Cost(0); got != 2 {
		t.Errorf("Cost(0) = %v, want 2", got)
	}
	if got := m.Cost(1); got != 18 {
		t.Errorf("Cost(1) = %v, want 18", got)
	}
	if got := m.Cost(0.5); got != 10 {
		t.Errorf("Cost(0.5) = %v, want 10 (paper average)", got)
	}
	if got := m.Cost(-3); got != 2 {
		t.Errorf("Cost(-3) = %v, want clamped 2", got)
	}
	if got := m.Cost(7); got != 18 {
		t.Errorf("Cost(7) = %v, want clamped 18", got)
	}
}

func TestCostForUsesOverlapDegree(t *testing.T) {
	m := DefaultCostModel()
	a := geom.NewRect(0, 0, 2, 2)
	if got := m.CostFor(a, a); got != 18 {
		t.Errorf("identical rects cost %v, want 18", got)
	}
	if got := m.CostFor(a, geom.NewRect(10, 10, 11, 11)); got != 2 {
		t.Errorf("disjoint rects cost %v, want 2", got)
	}
}

func TestSegmentIntersectsBasic(t *testing.T) {
	cases := []struct {
		name string
		a, b Segment
		want bool
	}{
		{"crossing", Segment{0, 0, 2, 2}, Segment{0, 2, 2, 0}, true},
		{"parallel", Segment{0, 0, 2, 0}, Segment{0, 1, 2, 1}, false},
		{"touching endpoint", Segment{0, 0, 1, 1}, Segment{1, 1, 2, 0}, true},
		{"collinear overlapping", Segment{0, 0, 2, 0}, Segment{1, 0, 3, 0}, true},
		{"collinear disjoint", Segment{0, 0, 1, 0}, Segment{2, 0, 3, 0}, false},
		{"T junction", Segment{0, 0, 2, 0}, Segment{1, -1, 1, 0}, true},
		{"near miss", Segment{0, 0, 2, 0}, Segment{1, 0.001, 1, 1}, false},
		{"far apart", Segment{0, 0, 1, 1}, Segment{5, 5, 6, 6}, false},
		{"degenerate point on segment", Segment{1, 1, 1, 1}, Segment{0, 0, 2, 2}, true},
		{"degenerate point off segment", Segment{1, 2, 1, 2}, Segment{0, 0, 2, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("%s (swapped): got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegmentBounds(t *testing.T) {
	s := Segment{3, 1, 0, 2}
	want := geom.NewRect(0, 1, 3, 2)
	if got := s.Bounds(); got != want {
		t.Fatalf("Bounds = %v, want %v", got, want)
	}
}

func TestIntersectsRect(t *testing.T) {
	r := geom.NewRect(0, 0, 2, 2)
	cases := []struct {
		name string
		s    Segment
		want bool
	}{
		{"inside", Segment{0.5, 0.5, 1.5, 1.5}, true},
		{"crossing through", Segment{-1, 1, 3, 1}, true},
		{"endpoint on edge", Segment{2, 1, 3, 1}, true},
		{"outside", Segment{3, 3, 4, 4}, false},
		{"diagonal corner cut", Segment{-0.5, 0.5, 0.5, -0.5}, true},
		{"close but out", Segment{2.1, 0, 2.1, 2}, false},
	}
	for _, c := range cases {
		if got := c.s.IntersectsRect(r); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestQuickSegmentIntersectImpliesBoundsOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(_ int) bool {
		a := Segment{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		b := Segment{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		if a.Intersects(b) && !a.Bounds().Intersects(b.Bounds()) {
			return false // filter property: MBR test admits every true hit
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCostMonotone(t *testing.T) {
	m := DefaultCostModel()
	f := func(a, b float64) bool {
		da, db := clamp01(a), clamp01(b)
		if da > db {
			da, db = db, da
		}
		return m.Cost(da) <= m.Cost(db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func clamp01(x float64) float64 {
	if x != x || x < 0 { // NaN or negative
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
