package refine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"spjoin/internal/geom"
)

func TestShapeBounds(t *testing.T) {
	seg := SegmentShape(Segment{3, 1, 0, 2})
	if got, want := seg.Bounds(), geom.NewRect(0, 1, 3, 2); got != want {
		t.Fatalf("segment bounds %v, want %v", got, want)
	}
	box := BoxShape(geom.NewRect(1, 1, 2, 2))
	if got := box.Bounds(); got != geom.NewRect(1, 1, 2, 2) {
		t.Fatalf("box bounds %v", got)
	}
}

func TestShapeAccessors(t *testing.T) {
	seg := SegmentShape(Segment{0, 0, 1, 1})
	if _, ok := seg.IsSegment(); !ok {
		t.Fatal("segment not a segment")
	}
	if _, ok := seg.IsBox(); ok {
		t.Fatal("segment claims to be a box")
	}
	box := BoxShape(geom.NewRect(0, 0, 1, 1))
	if _, ok := box.IsBox(); !ok {
		t.Fatal("box not a box")
	}
	if _, ok := box.IsSegment(); ok {
		t.Fatal("box claims to be a segment")
	}
}

func TestShapeIntersectsAllKindPairs(t *testing.T) {
	segA := SegmentShape(Segment{0, 0, 2, 2})
	segB := SegmentShape(Segment{0, 2, 2, 0})
	segFar := SegmentShape(Segment{10, 10, 11, 11})
	box := BoxShape(geom.NewRect(1, 1, 3, 3))
	boxFar := BoxShape(geom.NewRect(20, 20, 21, 21))

	cases := []struct {
		name string
		a, b Shape
		want bool
	}{
		{"seg-seg crossing", segA, segB, true},
		{"seg-seg far", segA, segFar, false},
		{"seg-box overlap", segA, box, true},
		{"box-seg overlap", box, segA, true},
		{"seg-box far", segA, boxFar, false},
		{"box-box overlap", box, BoxShape(geom.NewRect(2, 2, 4, 4)), true},
		{"box-box far", box, boxFar, false},
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%s: %v, want %v", c.name, got, c.want)
		}
	}
}

func TestShapeString(t *testing.T) {
	if !strings.Contains(SegmentShape(Segment{}).String(), "segment") {
		t.Fatal("segment String broken")
	}
	if !strings.Contains(BoxShape(geom.NewRect(0, 0, 1, 1)).String(), "box") {
		t.Fatal("box String broken")
	}
}

func TestQuickShapeIntersectImpliesBoundsIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randomShape := func() Shape {
		if rng.Intn(2) == 0 {
			return SegmentShape(Segment{
				rng.Float64() * 10, rng.Float64() * 10,
				rng.Float64() * 10, rng.Float64() * 10,
			})
		}
		x, y := rng.Float64()*10, rng.Float64()*10
		return BoxShape(geom.NewRect(x, y, x+rng.Float64()*3, y+rng.Float64()*3))
	}
	f := func(_ int) bool {
		a, b := randomShape(), randomShape()
		// Filter-correctness: exact intersection implies MBR intersection,
		// and intersection is symmetric.
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		if a.Intersects(b) && !a.Bounds().Intersects(b.Bounds()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
