// Package refine models the refinement step of the spatial join. The paper
// (§4.2) replaces the exact-geometry intersection test by calibrated waiting
// periods: testing one candidate pair costs 10 ms on average, varying
// between 2 ms and 18 ms with the degree of overlap of the two MBRs. This
// package provides that cost model for the simulator, plus a real exact
// predicate (segment intersection) used by the native executor and the
// examples.
package refine

import (
	"spjoin/internal/geom"
	"spjoin/internal/sim"
)

// CostModel maps an MBR overlap degree in [0, 1] to the virtual time of one
// exact intersection test.
type CostModel struct {
	// Base is the minimum test time (paper: 2 ms).
	Base sim.Time
	// Span is added in proportion to the overlap degree (paper: 16 ms, so
	// the maximum is 18 ms and the mean over uniform degrees is 10 ms).
	Span sim.Time
}

// DefaultCostModel returns the paper's calibration.
func DefaultCostModel() CostModel { return CostModel{Base: 2, Span: 16} }

// Cost returns the waiting period for one candidate pair with the given MBR
// overlap degree. Degrees outside [0, 1] are clamped.
func (m CostModel) Cost(degree float64) sim.Time {
	if degree < 0 {
		degree = 0
	} else if degree > 1 {
		degree = 1
	}
	return m.Base + sim.Time(degree)*m.Span
}

// CostFor returns the waiting period for a candidate pair of MBRs.
func (m CostModel) CostFor(r, s geom.Rect) sim.Time {
	return m.Cost(r.OverlapDegree(s))
}

// Segment is a line segment with exact intersection support; street, river
// and railway objects refine to segments.
type Segment struct {
	X1, Y1, X2, Y2 float64
}

// Bounds returns the segment's MBR.
func (s Segment) Bounds() geom.Rect {
	return geom.NewRect(s.X1, s.Y1, s.X2, s.Y2)
}

// orientation returns >0 if (cx,cy) lies left of the directed line a->b,
// <0 if right, 0 if collinear.
func orientation(ax, ay, bx, by, cx, cy float64) float64 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// onSegment reports whether the collinear point (px,py) lies on segment s.
func (s Segment) onSegment(px, py float64) bool {
	return min(s.X1, s.X2) <= px && px <= max(s.X1, s.X2) &&
		min(s.Y1, s.Y2) <= py && py <= max(s.Y1, s.Y2)
}

// Intersects reports whether the closed segments s and t share a point
// (standard orientation-based predicate, handling all collinear cases).
func (s Segment) Intersects(t Segment) bool {
	d1 := orientation(s.X1, s.Y1, s.X2, s.Y2, t.X1, t.Y1)
	d2 := orientation(s.X1, s.Y1, s.X2, s.Y2, t.X2, t.Y2)
	d3 := orientation(t.X1, t.Y1, t.X2, t.Y2, s.X1, s.Y1)
	d4 := orientation(t.X1, t.Y1, t.X2, t.Y2, s.X2, s.Y2)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && s.onSegment(t.X1, t.Y1):
		return true
	case d2 == 0 && s.onSegment(t.X2, t.Y2):
		return true
	case d3 == 0 && t.onSegment(s.X1, s.Y1):
		return true
	case d4 == 0 && t.onSegment(s.X2, s.Y2):
		return true
	}
	return false
}

// IntersectsRect reports whether the segment shares a point with the closed
// rectangle (used for window refinements).
func (s Segment) IntersectsRect(r geom.Rect) bool {
	if r.ContainsPoint(s.X1, s.Y1) || r.ContainsPoint(s.X2, s.Y2) {
		return true
	}
	if !s.Bounds().Intersects(r) {
		return false
	}
	edges := [4]Segment{
		{r.MinX, r.MinY, r.MaxX, r.MinY},
		{r.MaxX, r.MinY, r.MaxX, r.MaxY},
		{r.MaxX, r.MaxY, r.MinX, r.MaxY},
		{r.MinX, r.MaxY, r.MinX, r.MinY},
	}
	for _, e := range edges {
		if s.Intersects(e) {
			return true
		}
	}
	return false
}
