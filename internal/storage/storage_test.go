package storage

import (
	"testing"

	"spjoin/internal/sim"
)

func TestDefaultDiskParams(t *testing.T) {
	p := DefaultDiskParams()
	if p.PageRead != 16 {
		t.Errorf("PageRead = %v, want 16 (9+6+1 ms)", p.PageRead)
	}
	if p.DataRead != 37.5 {
		t.Errorf("DataRead = %v, want 37.5", p.DataRead)
	}
}

func TestDiskForModuloPlacement(t *testing.T) {
	a := NewDiskArray(8, DefaultDiskParams())
	for id := PageID(0); id < 100; id++ {
		if got, want := a.DiskFor(id), int(id)%8; got != want {
			t.Fatalf("DiskFor(%d) = %d, want %d", id, got, want)
		}
	}
	if a.Disks() != 8 {
		t.Fatalf("Disks() = %d, want 8", a.Disks())
	}
}

func TestNewDiskArrayRejectsZeroDisks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 disks")
		}
	}()
	NewDiskArray(0, DefaultDiskParams())
}

func TestReadCostsAndCounters(t *testing.T) {
	k := sim.NewKernel()
	a := NewDiskArray(4, DefaultDiskParams())
	var dirTime, dataTime sim.Time
	k.Spawn("p", func(p *sim.Proc) {
		dirTime = a.Read(p, 0, DirectoryPage)
		dataTime = a.Read(p, 1, DataPage)
	})
	k.Run()
	if dirTime != 16 {
		t.Errorf("directory read = %v, want 16", dirTime)
	}
	if dataTime != 37.5 {
		t.Errorf("data read = %v, want 37.5", dataTime)
	}
	if a.Accesses() != 2 || a.DataAccesses() != 1 {
		t.Errorf("accesses = %d/%d, want 2/1", a.Accesses(), a.DataAccesses())
	}
}

func TestReadInvalidPagePanics(t *testing.T) {
	k := sim.NewKernel()
	a := NewDiskArray(1, DefaultDiskParams())
	panicked := false
	k.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		a.Read(p, InvalidPage, DirectoryPage)
	})
	k.Run()
	if !panicked {
		t.Fatal("read of InvalidPage did not panic")
	}
}

func TestSameDiskQueues(t *testing.T) {
	// Two processors reading pages 0 and 4 on a 4-disk array contend for
	// disk 0; the second read finishes at 32.
	k := sim.NewKernel()
	a := NewDiskArray(4, DefaultDiskParams())
	var end1, end2 sim.Time
	k.Spawn("p1", func(p *sim.Proc) {
		a.Read(p, 0, DirectoryPage)
		end1 = p.Now()
	})
	k.Spawn("p2", func(p *sim.Proc) {
		a.Read(p, 4, DirectoryPage)
		end2 = p.Now()
	})
	k.Run()
	if end1 != 16 || end2 != 32 {
		t.Fatalf("ends = %v, %v; want 16, 32 (same-disk serialization)", end1, end2)
	}
}

func TestDifferentDisksParallel(t *testing.T) {
	k := sim.NewKernel()
	a := NewDiskArray(4, DefaultDiskParams())
	var end1, end2 sim.Time
	k.Spawn("p1", func(p *sim.Proc) {
		a.Read(p, 0, DirectoryPage)
		end1 = p.Now()
	})
	k.Spawn("p2", func(p *sim.Proc) {
		a.Read(p, 1, DirectoryPage)
		end2 = p.Now()
	})
	k.Run()
	if end1 != 16 || end2 != 16 {
		t.Fatalf("ends = %v, %v; want both 16 (independent disks)", end1, end2)
	}
}

func TestSingleDiskBottleneck(t *testing.T) {
	// The d=1 configuration of Figure 9: every read serializes.
	k := sim.NewKernel()
	a := NewDiskArray(1, DefaultDiskParams())
	const procs = 8
	for i := 0; i < procs; i++ {
		k.Spawn("p", func(p *sim.Proc) {
			a.Read(p, PageID(p.ID()), DirectoryPage)
		})
	}
	end := k.Run()
	if end != procs*16 {
		t.Fatalf("end = %v, want %d", end, procs*16)
	}
	if a.BusyTime() != procs*16 {
		t.Fatalf("busy = %v, want %d", a.BusyTime(), procs*16)
	}
}

func TestResetCounters(t *testing.T) {
	k := sim.NewKernel()
	a := NewDiskArray(2, DefaultDiskParams())
	k.Spawn("p", func(p *sim.Proc) {
		a.Read(p, 0, DataPage)
	})
	k.Run()
	a.ResetCounters()
	if a.Accesses() != 0 || a.DataAccesses() != 0 {
		t.Fatal("counters not reset")
	}
}

func TestPageKindString(t *testing.T) {
	if DirectoryPage.String() != "directory" || DataPage.String() != "data" {
		t.Fatal("PageKind.String broken")
	}
	if PageKind(9).String() == "" {
		t.Fatal("unknown kind must still format")
	}
}
