// Package storage models the secondary-storage layer of the paper's test
// environment (§4.2): R*-tree pages live on a simulated disk array, each page
// is mapped to a disk by its page number modulo the number of disks, and a
// read costs a fixed seek + latency + transfer time. Data (leaf) pages are
// clustered with the exact geometry of their entries, so reading a data page
// also reads its cluster and costs more.
package storage

import (
	"fmt"

	"spjoin/internal/metrics"
	"spjoin/internal/sim"
	"spjoin/internal/timeline"
)

// PageID identifies one page of an R*-tree file. IDs are assigned densely in
// creation order, which is exactly what the paper's modulo placement keys on.
type PageID int32

// InvalidPage is the zero-ish sentinel for "no page".
const InvalidPage PageID = -1

// PageKind distinguishes directory pages from data (leaf) pages; the two
// kinds have different read costs because data pages drag in their geometry
// cluster.
type PageKind uint8

const (
	// DirectoryPage is an internal R*-tree node.
	DirectoryPage PageKind = iota
	// DataPage is a leaf node; its read includes the clustered exact
	// geometry (one-to-one relationship per [BK 94]).
	DataPage
)

func (k PageKind) String() string {
	switch k {
	case DirectoryPage:
		return "directory"
	case DataPage:
		return "data"
	default:
		return fmt.Sprintf("PageKind(%d)", uint8(k))
	}
}

// DiskParams are the timing constants of §4.2. The defaults reproduce the
// paper: 9 ms average seek, 6 ms average latency, 1 ms transfer per 4 KB page
// (16 ms per page read) and 37.5 ms for a data page including its average
// 26 KB geometry cluster.
type DiskParams struct {
	PageRead sim.Time // directory page read (seek+latency+transfer)
	DataRead sim.Time // data page read including the geometry cluster
}

// DefaultDiskParams returns the constants used throughout the paper's
// evaluation.
func DefaultDiskParams() DiskParams {
	return DiskParams{PageRead: 16, DataRead: 37.5}
}

// DiskArray simulates d independent disks. Page p is stored on disk
// p mod d; each disk serves requests first-come-first-served, so concurrent
// requests to the same disk queue up — this is the "synchronization at the
// disks" that caps speed-up when d < n (Figure 9).
type DiskArray struct {
	params DiskParams
	disks  []*sim.Resource

	accesses     int64 // total page reads
	dataAccesses int64 // of which data pages

	// Optional observability (see Instrument). The counters are nil-safe;
	// the sink is guarded so disabled tracing costs one branch.
	cDir, cData *metrics.Counter
	sink        metrics.TraceSink
}

// NewDiskArray creates an array of d disks (d >= 1) with the given timing
// parameters.
func NewDiskArray(d int, params DiskParams) *DiskArray {
	if d < 1 {
		panic(fmt.Sprintf("storage: disk array needs at least 1 disk, got %d", d))
	}
	a := &DiskArray{params: params, disks: make([]*sim.Resource, d)}
	for i := range a.disks {
		a.disks[i] = sim.NewResource(fmt.Sprintf("disk%d", i))
	}
	return a
}

// Disks returns the number of disks.
func (a *DiskArray) Disks() int { return len(a.disks) }

// Instrument attaches observability: dir/data count page reads by kind,
// sink (optional) receives one EvDiskRead event per physical read. The
// existing Accesses/DataAccesses counters keep working independently.
func (a *DiskArray) Instrument(dir, data *metrics.Counter, sink metrics.TraceSink) {
	a.cDir, a.cData, a.sink = dir, data, sink
}

// DiskFor returns the disk index holding page id (modulo placement, §4.2).
func (a *DiskArray) DiskFor(id PageID) int { return int(id) % len(a.disks) }

// Read performs one page read on behalf of simulated processor p, queueing
// at the owning disk and advancing virtual time by the service (and any
// queueing) delay. It returns the total time spent.
func (a *DiskArray) Read(p *sim.Proc, id PageID, kind PageKind) sim.Time {
	if id < 0 {
		panic(fmt.Sprintf("storage: read of invalid page %d", id))
	}
	a.accesses++
	service := a.params.PageRead
	isData := int64(0)
	if kind == DataPage {
		service = a.params.DataRead
		a.dataAccesses++
		a.cData.Inc()
		isData = 1
	} else {
		a.cDir.Inc()
	}
	if a.sink != nil {
		a.sink.Emit(metrics.Event{
			Kind: metrics.EvDiskRead, T: float64(p.Now()),
			Worker: int32(p.ID()), Level: -1, A: int64(id), B: isData,
		})
	}
	diskIdx := a.DiskFor(id)
	p.BeginSpan(timeline.KindDiskWait, sim.SpanArgs{A: int64(id), B: isData, C: int64(diskIdx)})
	total := a.disks[diskIdx].Use(p, service)
	// Use ends exactly when the service interval does, so [Now-service, Now]
	// is this read's slot on the disk track (queueing excluded).
	p.ResourceSpan(diskIdx, p.Now()-service, p.Now(), timeline.KindDiskService,
		sim.SpanArgs{A: int64(id), B: isData, C: int64(p.ID())})
	p.EndSpan()
	return total
}

// Accesses returns the total number of page reads so far; this is the
// "number of disk accesses" metric of Figures 5, 7, 8 and 10.
func (a *DiskArray) Accesses() int64 { return a.accesses }

// DataAccesses returns how many of the reads were data pages.
func (a *DiskArray) DataAccesses() int64 { return a.dataAccesses }

// BusyTime returns the summed service time across all disks.
func (a *DiskArray) BusyTime() sim.Time {
	var total sim.Time
	for _, d := range a.disks {
		total += d.Busy
	}
	return total
}

// MaxQueueLen returns the longest current queue across disks (diagnostic).
func (a *DiskArray) MaxQueueLen() int {
	max := 0
	for _, d := range a.disks {
		if l := d.QueueLen(); l > max {
			max = l
		}
	}
	return max
}

// ResetCounters zeroes the access counters (keeps queues/busy state, which
// must be idle between runs anyway).
func (a *DiskArray) ResetCounters() {
	a.accesses = 0
	a.dataAccesses = 0
}
