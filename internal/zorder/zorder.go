// Package zorder implements the spatial-join baseline of Orenstein and
// Manola [OM 88] that the paper contrasts with its R-tree approach: objects
// are approximated by quadtree cells addressed by bit-interleaved z-values,
// stored in sorted order (a B-tree in the original; a sorted slice here,
// which preserves the algorithmic comparison), and joined with a merge over
// the two sorted sequences. A pair qualifies when one object's cell
// contains the other's — only then can the MBRs intersect — and the final
// MBR test removes the remaining false cells.
//
// This implementation uses non-redundant decomposition: each object maps to
// the single smallest quadtree cell fully containing its MBR. Objects
// straddling a quadrant boundary land in a coarse cell and are tested
// against many partners — the known weakness of z-joins that [OM 88]
// mitigates with redundant decomposition and the R-tree join avoids
// entirely; the benchmark makes that cost visible.
package zorder

import (
	"sort"

	"spjoin/internal/geom"
	"spjoin/internal/join"
	"spjoin/internal/rtree"
)

// MaxLevels is the deepest quadtree refinement supported (2 bits of
// z-value per level).
const MaxLevels = 31

// Cell is a quadtree cell as a z-value interval [Lo, Hi]: the range of
// finest-resolution z-addresses below the cell. Two cells are either
// disjoint or nested.
type Cell struct {
	Lo, Hi uint64
}

// Contains reports whether c contains o (or equals it).
func (c Cell) Contains(o Cell) bool { return c.Lo <= o.Lo && o.Hi <= c.Hi }

// Entry is one object prepared for the z-order join.
type Entry struct {
	Cell Cell
	ID   rtree.EntryID
	Rect geom.Rect
}

// interleave spreads the low 31 bits of v to even bit positions.
func interleave(v uint32) uint64 {
	x := uint64(v) & 0x7FFFFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// zValue returns the z-address of the grid cell (gx, gy) at full
// resolution.
func zValue(gx, gy uint32) uint64 {
	return interleave(gx) | interleave(gy)<<1
}

// CellFor returns the smallest quadtree cell over the world square that
// fully contains r, refined to at most levels (1..MaxLevels).
func CellFor(r geom.Rect, world geom.Rect, levels int) Cell {
	if levels < 1 {
		levels = 1
	}
	if levels > MaxLevels {
		levels = MaxLevels
	}
	side := uint32(1) << uint(levels)
	toGrid := func(x, lo, hi float64) uint32 {
		if hi <= lo {
			return 0
		}
		f := (x - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		g := uint32(f * float64(side))
		if g >= side {
			g = side - 1
		}
		return g
	}
	gx1 := toGrid(r.MinX, world.MinX, world.MaxX)
	gy1 := toGrid(r.MinY, world.MinY, world.MaxY)
	gx2 := toGrid(r.MaxX, world.MinX, world.MaxX)
	gy2 := toGrid(r.MaxY, world.MinY, world.MaxY)

	zlo := zValue(gx1, gy1)
	zhi := zValue(gx2, gy2)
	// The smallest common cell corresponds to the longest common prefix of
	// the two corner z-values (in 2-bit steps).
	diff := zlo ^ zhi
	shift := uint(0)
	for diff>>shift != 0 {
		shift += 2
	}
	if shift > uint(2*levels) {
		shift = uint(2 * levels)
	}
	lo := zlo >> shift << shift
	hi := lo | (1<<shift - 1)
	return Cell{Lo: lo, Hi: hi}
}

// Prepare converts items to sorted z-order entries over the given world.
// This corresponds to building the z-value index of [OM 88].
func Prepare(items []rtree.Item, world geom.Rect, levels int) []Entry {
	out := make([]Entry, len(items))
	for i, it := range items {
		out[i] = Entry{Cell: CellFor(it.Rect, world, levels), ID: it.ID, Rect: it.Rect}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Cell, out[j].Cell
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		// Larger (containing) cells first so the merge stack nests.
		return a.Hi > b.Hi
	})
	return out
}

// Join merges two prepared (sorted) entry sequences and emits every pair of
// objects whose cells nest and whose MBRs intersect — the same candidate
// semantics as the R-tree filter join. comparisons counts MBR tests for
// cost comparisons against the R-tree approach.
func Join(rs, ss []Entry, emit func(c join.Candidate)) (comparisons int) {
	var stackR, stackS []Entry
	i, j := 0, 0
	for i < len(rs) || j < len(ss) {
		takeR := j >= len(ss) ||
			(i < len(rs) && (rs[i].Cell.Lo < ss[j].Cell.Lo ||
				(rs[i].Cell.Lo == ss[j].Cell.Lo && rs[i].Cell.Hi >= ss[j].Cell.Hi)))
		if takeR {
			e := rs[i]
			i++
			stackR = popExpired(stackR, e.Cell.Lo)
			stackS = popExpired(stackS, e.Cell.Lo)
			// Every active S-cell contains e's start, hence nests with e.
			for _, o := range stackS {
				comparisons++
				if e.Rect.Intersects(o.Rect) {
					emit(join.Candidate{R: e.ID, S: o.ID, RRect: e.Rect, SRect: o.Rect})
				}
			}
			stackR = append(stackR, e)
		} else {
			e := ss[j]
			j++
			stackR = popExpired(stackR, e.Cell.Lo)
			stackS = popExpired(stackS, e.Cell.Lo)
			for _, o := range stackR {
				comparisons++
				if o.Rect.Intersects(e.Rect) {
					emit(join.Candidate{R: o.ID, S: e.ID, RRect: o.Rect, SRect: e.Rect})
				}
			}
			stackS = append(stackS, e)
		}
	}
	return comparisons
}

// popExpired removes stack entries whose cells end before pos.
func popExpired(stack []Entry, pos uint64) []Entry {
	for len(stack) > 0 && stack[len(stack)-1].Cell.Hi < pos {
		stack = stack[:len(stack)-1]
	}
	return stack
}

// JoinItems is the convenience entry point: prepare both relations over
// their common bounding square and join them.
func JoinItems(rs, ss []rtree.Item, levels int) []join.Candidate {
	world := geom.EmptyRect()
	for _, it := range rs {
		world = world.Union(it.Rect)
	}
	for _, it := range ss {
		world = world.Union(it.Rect)
	}
	if world.IsEmpty() {
		return nil
	}
	var out []join.Candidate
	Join(Prepare(rs, world, levels), Prepare(ss, world, levels),
		func(c join.Candidate) { out = append(out, c) })
	return out
}
