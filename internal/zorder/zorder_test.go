package zorder

import (
	"math/rand"
	"testing"

	"spjoin/internal/geom"
	"spjoin/internal/join"
	"spjoin/internal/rtree"
	"spjoin/internal/tiger"
)

func randItems(n int, seed int64, world, maxSide float64) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		x := rng.Float64() * world
		y := rng.Float64() * world
		items[i] = rtree.Item{
			ID:   rtree.EntryID(i),
			Rect: geom.NewRect(x, y, x+rng.Float64()*maxSide, y+rng.Float64()*maxSide),
		}
	}
	return items
}

type pairKey struct{ r, s rtree.EntryID }

func TestInterleave(t *testing.T) {
	if got := zValue(0, 0); got != 0 {
		t.Fatalf("zValue(0,0) = %d", got)
	}
	if got := zValue(1, 0); got != 1 {
		t.Fatalf("zValue(1,0) = %d, want 1", got)
	}
	if got := zValue(0, 1); got != 2 {
		t.Fatalf("zValue(0,1) = %d, want 2", got)
	}
	if got := zValue(3, 3); got != 15 {
		t.Fatalf("zValue(3,3) = %d, want 15", got)
	}
}

func TestCellForNesting(t *testing.T) {
	world := geom.NewRect(0, 0, 100, 100)
	big := CellFor(geom.NewRect(10, 10, 40, 40), world, 16)
	small := CellFor(geom.NewRect(12, 12, 13, 13), world, 16)
	if !big.Contains(small) && !small.Contains(big) {
		// They overlap spatially, so the quadtree cells must nest.
		t.Fatalf("cells of nested rects do not nest: %+v vs %+v", big, small)
	}
	if big.Hi-big.Lo < small.Hi-small.Lo {
		t.Fatal("bigger rect got a smaller cell")
	}
}

func TestCellForStraddlingCenter(t *testing.T) {
	world := geom.NewRect(0, 0, 100, 100)
	// A tiny rect straddling the world center cannot be refined at all.
	c := CellFor(geom.NewRect(49.9, 49.9, 50.1, 50.1), world, 16)
	if c.Lo != 0 {
		t.Fatalf("straddling rect cell = %+v, want the root cell", c)
	}
}

func TestCellContainsRectAlways(t *testing.T) {
	// Any two rects that intersect must get nesting (comparable) cells.
	rng := rand.New(rand.NewSource(1))
	world := geom.NewRect(0, 0, 100, 100)
	for trial := 0; trial < 2000; trial++ {
		a := randItems(1, int64(trial), 90, 10)[0].Rect
		b := randItems(1, int64(trial)+9999, 90, 10)[0].Rect
		if !a.Intersects(b) {
			continue
		}
		ca := CellFor(a, world, 12)
		cb := CellFor(b, world, 12)
		if !ca.Contains(cb) && !cb.Contains(ca) {
			t.Fatalf("trial %d: intersecting rects %v, %v got disjoint cells %+v, %+v",
				trial, a, b, ca, cb)
		}
	}
	_ = rng
}

func TestJoinMatchesBruteForce(t *testing.T) {
	rs := randItems(500, 2, 100, 5)
	ss := randItems(450, 3, 100, 5)
	got := map[pairKey]bool{}
	for _, c := range JoinItems(rs, ss, 16) {
		k := pairKey{c.R, c.S}
		if got[k] {
			t.Fatalf("duplicate pair %v", k)
		}
		got[k] = true
	}
	want := 0
	for _, r := range rs {
		for _, s := range ss {
			if r.Rect.Intersects(s.Rect) {
				want++
				if !got[pairKey{r.ID, s.ID}] {
					t.Fatalf("missing pair %d/%d", r.ID, s.ID)
				}
			}
		}
	}
	if len(got) != want {
		t.Fatalf("got %d pairs, want %d", len(got), want)
	}
}

func TestJoinMatchesRTreeJoinOnTigerData(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	zPairs := JoinItems(streets, mixed, 20)
	r := rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.73)
	s := rtree.BulkLoadSTR(rtree.DefaultParams(), mixed, 0.73)
	rPairs := join.Sequential(r, s, join.Options{})
	if len(zPairs) != len(rPairs) {
		t.Fatalf("z-join found %d pairs, R-tree join %d", len(zPairs), len(rPairs))
	}
	set := map[pairKey]bool{}
	for _, c := range rPairs {
		set[pairKey{c.R, c.S}] = true
	}
	for _, c := range zPairs {
		if !set[pairKey{c.R, c.S}] {
			t.Fatalf("z-join produced pair %d/%d the R-tree join lacks", c.R, c.S)
		}
	}
}

func TestJoinEmpty(t *testing.T) {
	if got := JoinItems(nil, nil, 16); got != nil {
		t.Fatalf("empty join returned %v", got)
	}
	items := randItems(5, 4, 10, 1)
	if got := JoinItems(items, nil, 16); len(got) != 0 {
		t.Fatalf("one-sided join returned %d pairs", len(got))
	}
}

func TestJoinLevelClamping(t *testing.T) {
	rs := randItems(100, 5, 100, 5)
	ss := randItems(100, 6, 100, 5)
	want := len(JoinItems(rs, ss, 16))
	// Degenerate levels must still produce the complete result (coarser
	// cells only add comparisons, never lose pairs).
	for _, levels := range []int{0, 1, 99} {
		if got := len(JoinItems(rs, ss, levels)); got != want {
			t.Fatalf("levels=%d: %d pairs, want %d", levels, got, want)
		}
	}
}

func TestCoarserCellsMoreComparisons(t *testing.T) {
	rs := randItems(800, 7, 100, 3)
	ss := randItems(800, 8, 100, 3)
	world := geom.NewRect(0, 0, 105, 105)
	fine := Join(Prepare(rs, world, 16), Prepare(ss, world, 16), func(join.Candidate) {})
	coarse := Join(Prepare(rs, world, 2), Prepare(ss, world, 2), func(join.Candidate) {})
	if coarse <= fine {
		t.Fatalf("coarse cells used %d comparisons <= fine %d", coarse, fine)
	}
}

func BenchmarkZOrderJoin(b *testing.B) {
	streets, mixed := tiger.Maps(0.02, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JoinItems(streets, mixed, 20)
	}
}
