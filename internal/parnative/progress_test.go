package parnative

import (
	"testing"

	"spjoin/internal/runtimeobs"
)

// TestJoinProgress pins the tree executor's progress contract: every
// expanded node pair is one unit, children grow the total as they enter
// the deques, and at the drain done == total == the sum of PerWorker.
func TestJoinProgress(t *testing.T) {
	r, s := testTrees(t)
	live := runtimeobs.NewLive()
	prog := live.NewProgress("native")

	for seq, workers := range []int{1, 4} {
		res := Join(r, s, Config{Workers: workers, Progress: prog})
		st, ok := prog.Status()
		if !ok || st.Running {
			t.Fatalf("w=%d: slot not settled: %+v ok=%v", workers, st, ok)
		}
		if st.Seq != uint64(seq+1) {
			t.Fatalf("w=%d: seq %d, want %d", workers, st.Seq, seq+1)
		}
		if st.UnitsDone != st.UnitsTotal || st.CostDone != st.CostTotal {
			t.Fatalf("w=%d: not settled: %+v", workers, st)
		}
		expanded := int64(0)
		for _, n := range res.PerWorker {
			expanded += int64(n)
		}
		if st.UnitsDone != expanded {
			t.Fatalf("w=%d: progress saw %d units, workers expanded %d",
				workers, st.UnitsDone, expanded)
		}
		if st.UnitsDone < int64(res.Tasks) {
			t.Fatalf("w=%d: %d units < %d initial tasks", workers, st.UnitsDone, res.Tasks)
		}
		if st.Frac != 1 || st.ETANS != 0 {
			t.Fatalf("w=%d: settled slot reports frac=%v eta=%d", workers, st.Frac, st.ETANS)
		}
	}
	if got := live.Snapshot(); len(got) != 0 {
		t.Fatalf("idle registry snapshot: %+v", got)
	}
}

// TestJoinProgressObservationOnly pins that attaching a slot does not
// change the (sorted) result.
func TestJoinProgressObservationOnly(t *testing.T) {
	r, s := testTrees(t)
	plain := Join(r, s, Config{Workers: 4, Sorted: true})
	prog := runtimeobs.NewProgress("native")
	observed := Join(r, s, Config{Workers: 4, Sorted: true, Progress: prog})
	if len(plain.Candidates) != len(observed.Candidates) {
		t.Fatalf("progress changed the result: %d vs %d pairs",
			len(plain.Candidates), len(observed.Candidates))
	}
	for i := range plain.Candidates {
		if plain.Candidates[i] != observed.Candidates[i] {
			t.Fatalf("pair %d differs with progress attached", i)
		}
	}
}
