package parnative

import (
	"fmt"
	"runtime"
	"sync"

	"spjoin/internal/join"
	"spjoin/internal/rtree"
)

// JoinPaged runs the parallel filter join out-of-core: both trees live in
// real page files and every node access goes through their (concurrency-
// safe) buffer pools. Task creation and work-stealing scheduling work
// exactly as in Join; each worker drives its own paged source, and the
// first I/O error aborts the whole join at the next scheduling point.
func JoinPaged(r, s *rtree.PagedTree, cfg Config) (Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TaskFactor <= 0 {
		cfg.TaskFactor = 3
	}
	res := Result{Workers: cfg.Workers, PerWorker: make([]int, cfg.Workers)}
	if r.Len() == 0 || s.Len() == 0 {
		return res, nil
	}
	rRoot, err := r.Node(r.Root())
	if err != nil {
		return res, err
	}
	sRoot, err := s.Node(s.Root())
	if err != nil {
		return res, err
	}
	if !rRoot.MBR().Intersects(sRoot.MBR()) {
		return res, nil
	}

	creationSrc, creationErr := join.NewPagedSource(r, s)
	tasks, _, _ := join.CreateTasks(creationSrc, join.NodePair{
		RPage: r.Root(), SPage: s.Root(),
		RLevel: rRoot.Level, SLevel: sRoot.Level,
	}, cfg.Opts, cfg.TaskFactor*cfg.Workers)
	if err := creationErr(); err != nil {
		return res, fmt.Errorf("parnative: task creation: %w", err)
	}
	res.Tasks = len(tasks)
	if len(tasks) == 0 {
		return res, nil
	}

	perWorker := make([][]join.Candidate, cfg.Workers)
	falseHits := make([]int, cfg.Workers)
	workerErrs := make([]error, cfg.Workers)
	sched := newStealScheduler(cfg.Workers, tasks)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			src, srcErr := join.NewPagedSource(r, s)
			var sc join.Scratch
			for {
				p, ok := sched.next(w)
				if !ok {
					return
				}
				res.PerWorker[w]++
				nr := src.Node(join.SideR, p.RPage, p.RLevel)
				ns := src.Node(join.SideS, p.SPage, p.SLevel)
				cands, children, _ := sc.Expand(nr, ns, cfg.Opts)
				if err := srcErr(); err != nil {
					workerErrs[w] = err
					sched.abort()
					return
				}
				if len(cands) > 0 {
					if cfg.Refiner != nil {
						for _, c := range cands {
							if cfg.Refiner(c) {
								perWorker[w] = append(perWorker[w], c)
							} else {
								falseHits[w]++
							}
						}
					} else {
						perWorker[w] = append(perWorker[w], cands...)
					}
				}
				sched.complete(w, children)
			}
		}()
	}
	wg.Wait()
	res.Steals = int(sched.steals.Load())
	for _, err := range workerErrs {
		if err != nil {
			return res, fmt.Errorf("parnative: paged traversal: %w", err)
		}
	}

	total := 0
	for _, cands := range perWorker {
		total += len(cands)
	}
	for _, fh := range falseHits {
		res.FalseHits += fh
	}
	res.Candidates = make([]join.Candidate, 0, total)
	for _, cands := range perWorker {
		res.Candidates = append(res.Candidates, cands...)
	}
	if cfg.Sorted {
		sortCandidates(res.Candidates)
	}
	return res, nil
}
