package parnative

import (
	"runtime"
	"sync"
	"sync/atomic"

	"spjoin/internal/geom"
	"spjoin/internal/rtree"
)

// WindowQueries evaluates a batch of window queries against the tree with
// parallel goroutines (dynamic assignment: each worker takes the next
// pending query). The i-th result slice holds the matching entry ids of
// queries[i], in tree order. workers <= 0 uses all CPUs.
func WindowQueries(t *rtree.Tree, queries []geom.Rect, workers int) [][]rtree.EntryID {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]rtree.EntryID, len(queries))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if int(i) >= len(queries) {
					return
				}
				var ids []rtree.EntryID
				t.Search(queries[i], func(id rtree.EntryID, _ geom.Rect) bool {
					ids = append(ids, id)
					return true
				})
				out[i] = ids
			}
		}()
	}
	wg.Wait()
	return out
}
