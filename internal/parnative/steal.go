package parnative

import (
	"sync"
	"sync/atomic"
	"time"

	"spjoin/internal/join"
	"spjoin/internal/sim"
	"spjoin/internal/timeline"
)

// Work-stealing scheduler for the native executor. Every worker owns a
// deque of pending node pairs: the owner pushes and pops at the top
// (depth-first, preserving local plane-sweep order), idle workers steal
// from the bottom — the least imminent, highest-level pairs, exactly the
// work the paper's task reassignment moves (§3.3 "the processors are
// informed about ... the highest level hl of a pair of subtrees which has
// not yet been joined, and the number ns of such pairs"). Victim selection
// follows the same heuristic: the worker whose remaining work load has the
// largest (level, pairs-at-that-level) report is helped first.
//
// Compared to the seed's single shared atomic task counter, this keeps the
// owner's hot path on an uncontended per-worker lock and lets workers that
// drew small initial tasks take over the unstarted subtrees of overloaded
// ones, instead of idling once the shared counter runs out.

// workerDeque is one worker's pending work load. The slice end is the top
// (owner side); index 0 is the bottom (steal side).
type workerDeque struct {
	mu    sync.Mutex
	items []join.NodePair
}

// pop removes the top pair (the next in the owner's plane-sweep order).
func (d *workerDeque) pop() (join.NodePair, bool) {
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		return join.NodePair{}, false
	}
	item := d.items[n-1]
	d.items = d.items[:n-1]
	d.mu.Unlock()
	return item, true
}

// push adds a node pair's children, given in plane-sweep order; they are
// pushed reversed so the owner pops them in order.
func (d *workerDeque) push(children []join.NodePair) {
	d.mu.Lock()
	for i := len(children) - 1; i >= 0; i-- {
		d.items = append(d.items, children[i])
	}
	d.mu.Unlock()
}

// size returns the current deque length (metrics support).
func (d *workerDeque) size() int {
	d.mu.Lock()
	n := len(d.items)
	d.mu.Unlock()
	return n
}

// report returns the paper's (hl, ns) victim-selection measure: the highest
// subtree level among the pending pairs and how many pairs sit at that
// level. hl is -1 when the deque is empty.
func (d *workerDeque) report() (hl, ns int) {
	d.mu.Lock()
	hl = -1
	for i := range d.items {
		l := d.items[i].MaxLevel()
		if l > hl {
			hl, ns = l, 1
		} else if l == hl {
			ns++
		}
	}
	d.mu.Unlock()
	return hl, ns
}

// stealHalf moves half of the deque (at least one pair) from the bottom
// into buf and returns it, preserving deque order. The remaining items are
// compacted so the owner's capacity is retained.
func (d *workerDeque) stealHalf(buf []join.NodePair) []join.NodePair {
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		return buf[:0]
	}
	take := n / 2
	if take < 1 {
		take = 1
	}
	buf = append(buf[:0], d.items[:take]...)
	copy(d.items, d.items[take:])
	d.items = d.items[:n-take]
	d.mu.Unlock()
	return buf
}

// pushBottom places stolen pairs under the current items, preserving their
// order. The thief's deque is normally empty when this runs (it only steals
// out of work), but other thieves may race it, so the general case is
// handled too.
func (d *workerDeque) pushBottom(items []join.NodePair) {
	d.mu.Lock()
	if len(d.items) == 0 {
		d.items = append(d.items[:0], items...)
	} else {
		merged := make([]join.NodePair, 0, len(items)+len(d.items))
		merged = append(merged, items...)
		merged = append(merged, d.items...)
		d.items = merged
	}
	d.mu.Unlock()
}

// stealScheduler coordinates the worker deques: termination detection via
// an in-flight pair count, sleeping idle workers, and steal bookkeeping.
type stealScheduler struct {
	deques []*workerDeque
	bufs   [][]join.NodePair // per-worker steal scratch

	// inflight counts pairs that are queued or being processed; the join is
	// complete when it reaches zero.
	inflight atomic.Int64
	steals   atomic.Int64
	attempts atomic.Int64
	aborted  atomic.Bool

	// perSteals splits steals by the thief. Slot w is written only from
	// worker w's goroutine (steal runs on the thief), so no atomics are
	// needed; readers wait for the workers to exit first.
	perSteals []int

	// met is the optional observability bundle (nil disables everything
	// beyond the always-on steals/attempts counters above).
	met *nativeMetrics
	// rec, when set, records queue-idle and reassign spans stamped with
	// wall time since epoch. Each worker writes only its own track.
	rec   *timeline.Recorder
	epoch time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	version uint64 // bumped whenever new work appears; guards against lost wake-ups
	waiters int
	done    bool
}

// newStealScheduler distributes the created tasks over the workers in
// contiguous blocks — plane-sweep order, like the paper's static range
// assignment (§3.1) — and lets stealing balance from there.
func newStealScheduler(workers int, tasks []join.NodePair) *stealScheduler {
	s := &stealScheduler{
		deques: make([]*workerDeque, workers),
		bufs:   make([][]join.NodePair, workers),
	}
	s.cond = sync.NewCond(&s.mu)
	base, extra := len(tasks)/workers, len(tasks)%workers
	pos := 0
	for i := range s.deques {
		size := base
		if i < extra {
			size++
		}
		d := &workerDeque{items: make([]join.NodePair, 0, 2*size+8)}
		// Load bottom-up so the top of the deque pops in plane-sweep order.
		for j := pos + size - 1; j >= pos; j-- {
			d.items = append(d.items, tasks[j])
		}
		pos += size
		s.deques[i] = d
	}
	s.inflight.Store(int64(len(tasks)))
	s.done = len(tasks) == 0
	return s
}

// next returns the next pair for worker w: its own top, else stolen work,
// else it sleeps until work appears or the join completes. ok is false when
// the whole join is done (or aborted).
func (s *stealScheduler) next(w int) (join.NodePair, bool) {
	if s.aborted.Load() {
		return join.NodePair{}, false
	}
	if item, ok := s.deques[w].pop(); ok {
		return item, true
	}
	for {
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			return join.NodePair{}, false
		}
		v := s.version
		s.mu.Unlock()

		if item, ok := s.steal(w); ok {
			return item, true
		}

		s.mu.Lock()
		// Only sleep if no work appeared since the version read above;
		// otherwise retry the steal immediately (the producer may have
		// published between our failed steal and this lock).
		if !s.done && s.version == v {
			s.waiters++
			var t0 sim.Time
			if s.rec != nil {
				t0 = wallSince(s.epoch)
			}
			s.cond.Wait()
			if s.rec != nil {
				// The native scheduler broadcasts anonymously, so no waker
				// is recorded (-1), unlike the simulated executor.
				s.rec.Complete(w, t0, wallSince(s.epoch), timeline.KindQueueIdle, sim.SpanArgs{A: -1})
			}
			s.waiters--
		}
		done := s.done
		s.mu.Unlock()
		if done {
			return join.NodePair{}, false
		}
	}
}

// complete finishes one pair processed by worker w, publishing its children
// (in plane-sweep order) and updating termination state.
func (s *stealScheduler) complete(w int, children []join.NodePair) {
	if len(children) > 0 {
		s.deques[w].push(children)
		if s.met != nil {
			s.met.queueDepth.Observe(int64(s.deques[w].size()))
		}
		s.mu.Lock()
		s.version++
		if s.waiters > 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
	// The processed pair leaves flight; its children entered above. Ordering
	// matters: children are visible before the count can reach zero.
	if s.inflight.Add(int64(len(children))-1) == 0 {
		s.finish()
	}
}

// steal picks the victim with the largest (hl, ns) work report, takes half
// of its deque from the bottom, and returns the first stolen pair (the rest
// goes under w's own deque).
func (s *stealScheduler) steal(w int) (join.NodePair, bool) {
	s.attempts.Add(1)
	best, bestHl, bestNs := -1, -1, 0
	for i := range s.deques {
		if i == w {
			continue
		}
		hl, ns := s.deques[i].report()
		if hl < 0 {
			continue
		}
		if hl > bestHl || (hl == bestHl && ns > bestNs) {
			best, bestHl, bestNs = i, hl, ns
		}
	}
	if best < 0 {
		return join.NodePair{}, false
	}
	moved := s.deques[best].stealHalf(s.bufs[w])
	s.bufs[w] = moved[:0]
	if len(moved) == 0 {
		return join.NodePair{}, false // raced: the victim drained meanwhile
	}
	s.steals.Add(1)
	if s.perSteals != nil {
		s.perSteals[w]++
	}
	if s.met != nil {
		s.met.stole(w, best, len(moved))
	}
	if s.rec != nil {
		now := wallSince(s.epoch)
		s.rec.Complete(w, now, now, timeline.KindReassign, sim.SpanArgs{
			A: int64(best), B: int64(len(moved)), C: int64(bestHl), D: int64(bestNs),
		})
		s.rec.AddFlow(w, best, now)
	}
	s.deques[w].pushBottom(moved)
	if item, ok := s.deques[w].pop(); ok {
		return item, true
	}
	// Another thief took everything we just published; treat as a miss.
	return join.NodePair{}, false
}

// finish marks the join complete and wakes every sleeping worker.
func (s *stealScheduler) finish() {
	s.mu.Lock()
	s.done = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// abort stops the join early (worker error): workers drop their remaining
// work at the next scheduling point.
func (s *stealScheduler) abort() {
	s.aborted.Store(true)
	s.finish()
}
