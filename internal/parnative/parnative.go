// Package parnative executes the parallel spatial join with real goroutines
// on the host machine. Where package parjoin reproduces the paper's
// measurements in simulated virtual time, this package delivers the actual
// result set with task parallelism: task creation and dynamic task
// assignment follow §3 (a shared queue drained by workers), and each worker
// runs the sequential [BKS 93] engine on its pairs of subtrees.
package parnative

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"spjoin/internal/join"
	"spjoin/internal/parjoin"
	"spjoin/internal/rtree"
)

// Config controls a native parallel join.
type Config struct {
	// Workers is the number of goroutines (default: GOMAXPROCS).
	Workers int
	// TaskFactor requests at least TaskFactor*Workers tasks from task
	// creation, like the simulated executor (default 3).
	TaskFactor int
	// Opts are the sequential engine's tuning switches.
	Opts join.Options
	// Sorted returns the candidates sorted by (R, S) id so results are
	// deterministic regardless of scheduling.
	Sorted bool
	// Refiner, when set, is the refinement step: it receives every filter
	// candidate and keeps only those passing the exact join predicate.
	// Like in the paper, the worker that found a candidate refines it, so
	// refinement runs in parallel too. The Refiner must be safe for
	// concurrent use (pure functions over immutable geometry are).
	Refiner func(join.Candidate) bool
}

// Result of a native parallel join.
type Result struct {
	// Candidates is the filter-step output.
	Candidates []join.Candidate
	// Tasks is the number of created tasks (m).
	Tasks int
	// Workers is the number of goroutines actually used.
	Workers int
	// PerWorker counts the tasks each worker processed (diagnostic for
	// load-balance inspection).
	PerWorker []int
	// FalseHits counts candidates the Refiner rejected (0 without one).
	FalseHits int
}

// Join runs the parallel filter step of r ⋈ s and returns all candidate
// pairs. The result set is exactly the sequential join's result set.
func Join(r, s *rtree.Tree, cfg Config) Result {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TaskFactor <= 0 {
		cfg.TaskFactor = 3
	}
	tasks, _, _ := parjoin.CreateTasks(r, s, cfg.Opts, cfg.TaskFactor*cfg.Workers)
	res := Result{
		Tasks:     len(tasks),
		Workers:   cfg.Workers,
		PerWorker: make([]int, cfg.Workers),
	}
	if len(tasks) == 0 {
		return res
	}

	perWorker := make([][]join.Candidate, cfg.Workers)
	falseHits := make([]int, cfg.Workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			engine := join.Engine{
				Src:  join.DirectSource{R: r, S: s},
				Opts: cfg.Opts,
				OnCandidate: func(c join.Candidate) {
					if cfg.Refiner != nil && !cfg.Refiner(c) {
						falseHits[w]++
						return
					}
					perWorker[w] = append(perWorker[w], c)
				},
			}
			// Dynamic task assignment: take the next task when idle.
			for {
				i := next.Add(1) - 1
				if int(i) >= len(tasks) {
					return
				}
				res.PerWorker[w]++
				engine.Run(tasks[i])
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, cands := range perWorker {
		total += len(cands)
	}
	for _, fh := range falseHits {
		res.FalseHits += fh
	}
	res.Candidates = make([]join.Candidate, 0, total)
	for _, cands := range perWorker {
		res.Candidates = append(res.Candidates, cands...)
	}
	if cfg.Sorted {
		sortCandidates(res.Candidates)
	}
	return res
}

// sortCandidates orders candidates by (R, S) id for deterministic output.
func sortCandidates(cands []join.Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.R != b.R {
			return a.R < b.R
		}
		return a.S < b.S
	})
}
