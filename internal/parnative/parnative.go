// Package parnative executes the parallel spatial join with real goroutines
// on the host machine. Where package parjoin reproduces the paper's
// measurements in simulated virtual time, this package delivers the actual
// result set with task parallelism: task creation follows §3.1, and the
// created tasks are balanced across workers with per-worker deques plus
// work-stealing whose victim selection mirrors the paper's §3.3 task
// reassignment heuristic (help the worker with the largest remaining
// (level, tasks) work load). Each worker expands node pairs with the
// zero-allocation sequential kernel and emits candidates in batches.
package parnative

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"spjoin/internal/join"
	"spjoin/internal/metrics"
	"spjoin/internal/parjoin"
	"spjoin/internal/rtree"
	"spjoin/internal/runtimeobs"
	"spjoin/internal/sim"
	"spjoin/internal/timeline"
)

// Config controls a native parallel join.
type Config struct {
	// Workers is the number of goroutines (default: GOMAXPROCS).
	Workers int
	// TaskFactor requests at least TaskFactor*Workers tasks from task
	// creation, like the simulated executor (default 3).
	TaskFactor int
	// Opts are the sequential engine's tuning switches.
	Opts join.Options
	// Sorted returns the candidates sorted by (R, S) id so results are
	// deterministic regardless of scheduling.
	Sorted bool
	// Refiner, when set, is the refinement step: it receives every filter
	// candidate and keeps only those passing the exact join predicate.
	// Like in the paper, the worker that found a candidate refines it, so
	// refinement runs in parallel too. The Refiner must be safe for
	// concurrent use (pure functions over immutable geometry are).
	Refiner func(join.Candidate) bool
	// Metrics, when set, receives the run's counters under the "native."
	// prefix. Workers accumulate locally and flush on exit, so the hot
	// expansion loop is not slowed by shared counters.
	Metrics *metrics.Registry
	// Trace, when set, receives one Event per steal (EvTaskStolen) stamped
	// with wall milliseconds since join start. Nil disables emission.
	Trace metrics.TraceSink
	// Timeline, when set, records wall-clock spans (cpu-sweep per expanded
	// pair, refine-wait, queue-idle, reassign) — the lighter native mirror
	// of the simulator's virtual-time profiler. Size it with
	// timeline.NewWallRecorder over the resolved worker count; each worker
	// writes only its own track, so recording needs no locks.
	Timeline *timeline.Recorder
	// Progress, when set, receives live progress: the initial task count
	// is published when the schedule exists, every expanded node pair
	// reports one unit done, and children entering the deques grow the
	// total — so done converges on total exactly as the join drains.
	// Observation-only: a nil slot costs one nil-check per expansion.
	Progress *runtimeobs.Progress
}

// Result of a native parallel join.
type Result struct {
	// Candidates is the filter-step output.
	Candidates []join.Candidate
	// Tasks is the number of created tasks (m).
	Tasks int
	// Workers is the number of goroutines actually used.
	Workers int
	// PerWorker counts the node pairs each worker expanded (diagnostic for
	// load-balance inspection). The sum is the total pairs visited, which
	// is at least Tasks: every task is itself a pair, and deeper pairs are
	// scheduled individually so they can be stolen.
	PerWorker []int
	// Steals counts how often an idle worker took work from a loaded one;
	// StealAttempts additionally counts the failed tries (empty victims,
	// lost races). PerWorkerSteals splits Steals by the thief.
	Steals          int
	StealAttempts   int
	PerWorkerSteals []int
	// FalseHits counts candidates the Refiner rejected (0 without one).
	FalseHits int
	// PhaseNS is the wall time spent in each pipeline phase, indexed by the
	// timeline.Phase* constants. The tree executor fills the subset that
	// applies: prep (sweep-cache build), partition (task creation), sweep
	// (the parallel expansion loop) and merge (result assembly).
	PhaseNS [timeline.NumPhases]int64
}

// Join runs the parallel filter step of r ⋈ s and returns all candidate
// pairs. The result set is exactly the sequential join's result set.
func Join(r, s *rtree.Tree, cfg Config) Result {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TaskFactor <= 0 {
		cfg.TaskFactor = 3
	}
	rec := cfg.Timeline
	if rec != nil {
		if got := len(rec.Procs()); got != cfg.Workers {
			panic(fmt.Sprintf("parnative: Timeline has %d tracks, need %d (size with NewWallRecorder(Workers))",
				got, cfg.Workers))
		}
	}
	// Workers share the in-memory nodes; build every node's sweep cache up
	// front so no lazy construction races inside the join.
	t0 := time.Now()
	epoch := t0
	r.PrepareSweep()
	s.PrepareSweep()
	t1 := time.Now()
	tasks, _, _ := parjoin.CreateTasks(r, s, cfg.Opts, cfg.TaskFactor*cfg.Workers)
	t2 := time.Now()
	if rec != nil {
		// Owner-side phase spans on track 0 (the worker goroutines are not
		// running yet, so the track has a single writer here).
		rec.Complete(0, 0, wallAt(t1, epoch), timeline.KindPhase,
			sim.SpanArgs{A: timeline.PhasePrep})
		rec.Complete(0, wallAt(t1, epoch), wallAt(t2, epoch), timeline.KindPhase,
			sim.SpanArgs{A: timeline.PhasePartition})
	}
	res := Result{
		Tasks:           len(tasks),
		Workers:         cfg.Workers,
		PerWorker:       make([]int, cfg.Workers),
		PerWorkerSteals: make([]int, cfg.Workers),
	}
	res.PhaseNS[timeline.PhasePrep] = t1.Sub(t0).Nanoseconds()
	res.PhaseNS[timeline.PhasePartition] = t2.Sub(t1).Nanoseconds()
	// Live progress: the unit is one expanded node pair at unit cost (the
	// tree walk has no per-pair cost estimate); children entering the
	// deques grow the total, so done meets total exactly at the drain.
	prog := cfg.Progress
	prog.Start()
	prog.SetTotal(int64(len(tasks)), int64(len(tasks)))
	if len(tasks) == 0 {
		prog.Finish()
		return res
	}

	var met *nativeMetrics
	if cfg.Metrics != nil || cfg.Trace != nil {
		met = newNativeMetrics(cfg.Metrics, cfg.Trace, cfg.Workers)
	}
	perWorker := make([][]join.Candidate, cfg.Workers)
	falseHits := make([]int, cfg.Workers)
	sched := newStealScheduler(cfg.Workers, tasks)
	sched.met = met
	sched.perSteals = res.PerWorkerSteals
	if rec != nil {
		sched.rec, sched.epoch = rec, epoch
	}
	src := join.DirectSource{R: r, S: s}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rec != nil {
				// The whole worker loop is one sweep-phase span; expansion
				// and idle spans nest inside it.
				rec.BeginSpan(w, wallSince(epoch), timeline.KindPhase,
					sim.SpanArgs{A: timeline.PhaseSweep})
			}
			var sc join.Scratch
			// Hot-path counts stay in locals; flushed once on exit.
			var pairs, comps, candTotal int64
			for {
				p, ok := sched.next(w)
				if !ok {
					break
				}
				res.PerWorker[w]++
				pairs++
				var t0 sim.Time
				if rec != nil {
					t0 = wallSince(epoch)
				}
				nr := src.Node(join.SideR, p.RPage, p.RLevel)
				ns := src.Node(join.SideS, p.SPage, p.SLevel)
				cands, children, comparisons := sc.Expand(nr, ns, cfg.Opts)
				if rec != nil {
					rec.Complete(w, t0, wallSince(epoch), timeline.KindCPUSweep, sim.SpanArgs{
						A: int64(p.RPage), B: int64(p.SPage), C: int64(p.MaxLevel()), D: int64(comparisons),
					})
				}
				comps += int64(comparisons)
				candTotal += int64(len(cands))
				if len(cands) > 0 {
					if cfg.Refiner != nil {
						r0 := sim.Time(0)
						if rec != nil {
							r0 = wallSince(epoch)
						}
						for _, c := range cands {
							if cfg.Refiner(c) {
								perWorker[w] = append(perWorker[w], c)
							} else {
								falseHits[w]++
							}
						}
						if rec != nil {
							rec.Complete(w, r0, wallSince(epoch), timeline.KindRefineWait,
								sim.SpanArgs{A: int64(len(cands))})
						}
					} else {
						perWorker[w] = append(perWorker[w], cands...)
					}
				}
				if n := len(children); n > 0 {
					prog.AddTotal(int64(n), int64(n))
				}
				prog.UnitDone(1)
				sched.complete(w, children)
			}
			if cfg.Sorted {
				// Sort this worker's run while the others still sort
				// theirs; the single-threaded tail is then only a k-way
				// merge instead of a full sort of the concatenation.
				join.SortCandidates(perWorker[w])
			}
			met.flushWorker(w, pairs, comps, candTotal, int64(falseHits[w]))
			if rec != nil {
				rec.EndSpan(w, wallSince(epoch), sim.SpanArgs{}, false)
			}
		}()
	}
	wg.Wait()
	t3 := time.Now()
	res.PhaseNS[timeline.PhaseSweep] = t3.Sub(t2).Nanoseconds()
	res.Steals = int(sched.steals.Load())
	res.StealAttempts = int(sched.attempts.Load())

	total := 0
	for _, cands := range perWorker {
		total += len(cands)
	}
	for _, fh := range falseHits {
		res.FalseHits += fh
	}
	res.Candidates = make([]join.Candidate, 0, total)
	if cfg.Sorted {
		res.Candidates = join.MergeCandidateRuns(res.Candidates, perWorker)
	} else {
		for _, cands := range perWorker {
			res.Candidates = append(res.Candidates, cands...)
		}
	}
	res.PhaseNS[timeline.PhaseMerge] = time.Since(t3).Nanoseconds()
	if rec != nil {
		rec.Complete(0, wallAt(t3, epoch), wallSince(epoch), timeline.KindPhase,
			sim.SpanArgs{A: timeline.PhaseMerge})
	}
	met.finish(&res)
	prog.Finish()
	return res
}

// wallSince returns wall milliseconds since epoch on the recorder's clock.
func wallSince(epoch time.Time) sim.Time {
	return sim.Time(float64(time.Since(epoch)) / float64(time.Millisecond))
}

// wallAt converts an absolute timestamp to the recorder's clock.
func wallAt(t, epoch time.Time) sim.Time {
	return sim.Time(float64(t.Sub(epoch)) / float64(time.Millisecond))
}

// sortCandidates orders candidates by (R, S) id for deterministic output.
func sortCandidates(cands []join.Candidate) {
	join.SortCandidates(cands)
}
