package parnative

// Concurrency stress for the work-stealing scheduler, meant for `go test
// -race`: a deterministic seedable synthetic workload — a forest of node
// pairs with a precomputed expansion tree — is hammered by concurrent
// workers pushing children and stealing from each other. Every pair must
// be delivered exactly once: a lost pair means dropped join work, a
// duplicated one means duplicated candidates. This extends
// race_repro_test.go, which stresses the same window through real trees.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spjoin/internal/join"
	"spjoin/internal/metrics"
	"spjoin/internal/storage"
)

// synthForest is a deterministic workload: root pairs plus a child table
// keyed by pair ID (stored in RPage). Levels decrease toward the leaves so
// the (hl, ns) victim-selection reports are meaningful.
type synthForest struct {
	roots    []join.NodePair
	children map[storage.PageID][]join.NodePair
	total    int
}

func buildForest(seed int64, roots, maxChildren, depth int) *synthForest {
	rng := rand.New(rand.NewSource(seed))
	f := &synthForest{children: make(map[storage.PageID][]join.NodePair)}
	nextID := storage.PageID(0)
	newPair := func(level int) join.NodePair {
		nextID++
		f.total++
		return join.NodePair{RPage: nextID, SPage: nextID, RLevel: level, SLevel: level}
	}
	var expand func(p join.NodePair, depth int)
	expand = func(p join.NodePair, depth int) {
		if depth == 0 {
			return
		}
		n := rng.Intn(maxChildren + 1)
		kids := make([]join.NodePair, 0, n)
		for i := 0; i < n; i++ {
			c := newPair(depth - 1)
			kids = append(kids, c)
			expand(c, depth-1)
		}
		f.children[p.RPage] = kids
	}
	for i := 0; i < roots; i++ {
		r := newPair(depth)
		f.roots = append(f.roots, r)
		expand(r, depth)
	}
	return f
}

func TestStealSchedulerNoLossNoDuplication(t *testing.T) {
	cases := []struct {
		workers, roots, maxChildren, depth int
		seed                               int64
	}{
		{workers: 4, roots: 8, maxChildren: 6, depth: 4, seed: 1},
		{workers: 16, roots: 2, maxChildren: 8, depth: 5, seed: 2}, // skewed: stealing is the only balance
		{workers: 8, roots: 64, maxChildren: 3, depth: 3, seed: 3},
		{workers: 8, roots: 0, maxChildren: 3, depth: 3, seed: 4},   // empty workload terminates
		{workers: 3, roots: 1, maxChildren: 1, depth: 200, seed: 5}, // deep chain: constant republish
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("w%d_r%d_c%d_d%d_seed%d", tc.workers, tc.roots, tc.maxChildren, tc.depth, tc.seed)
		t.Run(name, func(t *testing.T) {
			f := buildForest(tc.seed, tc.roots, tc.maxChildren, tc.depth)
			reg := metrics.NewRegistry()
			sched := newStealScheduler(tc.workers, f.roots)
			sched.met = newNativeMetrics(reg, nil, tc.workers)

			seen := make([]map[storage.PageID]int, tc.workers)
			var wg sync.WaitGroup
			for w := 0; w < tc.workers; w++ {
				w := w
				seen[w] = make(map[storage.PageID]int)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						p, ok := sched.next(w)
						if !ok {
							return
						}
						seen[w][p.RPage]++
						sched.complete(w, f.children[p.RPage])
					}
				}()
			}
			wg.Wait()

			counts := make(map[storage.PageID]int, f.total)
			for _, m := range seen {
				for id, n := range m {
					counts[id] += n
				}
			}
			delivered := 0
			for id, n := range counts {
				delivered += n
				if n != 1 {
					t.Errorf("pair %d delivered %d times", id, n)
				}
			}
			if delivered != f.total {
				t.Fatalf("delivered %d pairs, workload has %d", delivered, f.total)
			}
			for id := storage.PageID(1); id <= storage.PageID(f.total); id++ {
				if counts[id] == 0 {
					t.Fatalf("pair %d lost", id)
				}
			}
			if sched.inflight.Load() != 0 {
				t.Fatalf("inflight = %d after completion", sched.inflight.Load())
			}
			if att, st := sched.attempts.Load(), sched.steals.Load(); att < st {
				t.Fatalf("steal attempts %d < successes %d", att, st)
			}
			snap := reg.Snapshot()
			if snap.Counters["native.steal.successes"] != sched.steals.Load() {
				t.Fatalf("metrics successes %d, scheduler %d",
					snap.Counters["native.steal.successes"], sched.steals.Load())
			}
		})
	}
}

// TestStealSchedulerRepeatable runs the skewed case many times to widen the
// race window (the -race detector needs the interleavings to occur).
func TestStealSchedulerRepeatable(t *testing.T) {
	f := buildForest(7, 2, 5, 5)
	for round := 0; round < 200; round++ {
		sched := newStealScheduler(8, f.roots)
		var delivered [8]int64
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p, ok := sched.next(w)
					if !ok {
						return
					}
					delivered[w]++
					sched.complete(w, f.children[p.RPage])
				}
			}()
		}
		wg.Wait()
		var total int64
		for _, n := range delivered {
			total += n
		}
		if total != int64(f.total) {
			t.Fatalf("round %d: delivered %d pairs, workload has %d", round, total, f.total)
		}
	}
}
