package parnative

import "sync/atomic"

// Claim states for ReadyQueue slots.
const (
	claimFree     int32 = 0  // available for TryClaim
	claimTaken    int32 = 1  // claimed by a worker
	claimDeferred int32 = -1 // withheld from claiming (Release to free)
)

// ReadyQueue is a claim table that feeds a Pool phase alongside (or
// instead of) a shared cursor: instead of handing out work items in a
// fixed sequence, workers scan for items whose preconditions have been
// met and claim them with a CAS. The queue itself tracks only claim
// state — readiness is the caller's predicate — so producers can keep
// publishing completions while consumers drain, which is what lets a
// pipelined build start sweeping tiles before the last scatter lands.
//
// A slot moves Free → Taken via TryClaim (exactly one winner), and can be
// parked as Deferred (e.g. a tile routed to the refinement scheduler)
// until Release returns it to Free. All transitions are lock-free.
type ReadyQueue struct {
	claims []atomic.Int32
}

// Reset sizes the queue to n slots, all Free. Not safe concurrently with
// claiming; call it between phases.
func (q *ReadyQueue) Reset(n int) {
	if cap(q.claims) < n {
		q.claims = make([]atomic.Int32, n)
	}
	q.claims = q.claims[:n]
	for i := range q.claims {
		q.claims[i].Store(claimFree)
	}
}

// Len returns the number of slots.
func (q *ReadyQueue) Len() int { return len(q.claims) }

// TryClaim attempts to move slot i from Free to Taken; exactly one caller
// wins per Release cycle.
func (q *ReadyQueue) TryClaim(i int) bool {
	return q.claims[i].CompareAndSwap(claimFree, claimTaken)
}

// Defer parks slot i so TryClaim cannot take it until Release.
func (q *ReadyQueue) Defer(i int) { q.claims[i].Store(claimDeferred) }

// Release returns slot i to the Free state.
func (q *ReadyQueue) Release(i int) { q.claims[i].Store(claimFree) }

// Free reports whether slot i is currently claimable.
func (q *ReadyQueue) Free(i int) bool { return q.claims[i].Load() == claimFree }

// Deferred reports whether slot i is parked.
func (q *ReadyQueue) Deferred(i int) bool { return q.claims[i].Load() == claimDeferred }

// Taken reports whether slot i has been claimed.
func (q *ReadyQueue) Taken(i int) bool { return q.claims[i].Load() == claimTaken }
