package parnative

import (
	"math/rand"

	"runtime"
	"sort"
	"spjoin/internal/geom"
	"testing"

	"path/filepath"

	"spjoin/internal/join"
	"spjoin/internal/pagefile"
	"spjoin/internal/rtree"
	"spjoin/internal/tiger"
	"spjoin/internal/timeline"
)

func testTrees(tb testing.TB) (*rtree.Tree, *rtree.Tree) {
	tb.Helper()
	streets, mixed := tiger.Maps(0.02, 42)
	params := rtree.Params{MaxDirEntries: 12, MaxDataEntries: 12, MinFillFrac: 0.4, ReinsertFrac: 0.3}
	return rtree.BulkLoadSTR(params, streets, 0.8),
		rtree.BulkLoadSTR(params, mixed, 0.8)
}

type pairKey struct{ r, s rtree.EntryID }

func toSet(cands []join.Candidate) map[pairKey]bool {
	out := make(map[pairKey]bool, len(cands))
	for _, c := range cands {
		out[pairKey{c.R, c.S}] = true
	}
	return out
}

func TestJoinMatchesSequential(t *testing.T) {
	r, s := testTrees(t)
	want := toSet(join.Sequential(r, s, join.Options{}))
	for _, workers := range []int{1, 2, 4, 8} {
		res := Join(r, s, Config{Workers: workers})
		got := toSet(res.Candidates)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d candidates, want %d", workers, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("workers=%d: missing %v", workers, k)
			}
		}
		if res.Workers != workers {
			t.Fatalf("Workers = %d, want %d", res.Workers, workers)
		}
	}
}

func TestJoinNoDuplicates(t *testing.T) {
	r, s := testTrees(t)
	res := Join(r, s, Config{Workers: 4})
	seen := map[pairKey]bool{}
	for _, c := range res.Candidates {
		k := pairKey{c.R, c.S}
		if seen[k] {
			t.Fatalf("duplicate %v", k)
		}
		seen[k] = true
	}
}

func TestSortedDeterministic(t *testing.T) {
	r, s := testTrees(t)
	a := Join(r, s, Config{Workers: 8, Sorted: true})
	b := Join(r, s, Config{Workers: 8, Sorted: true})
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatal("candidate counts differ")
	}
	for i := range a.Candidates {
		if a.Candidates[i] != b.Candidates[i] {
			t.Fatalf("sorted outputs diverge at %d", i)
		}
	}
	if !sort.SliceIsSorted(a.Candidates, func(i, j int) bool {
		x, y := a.Candidates[i], a.Candidates[j]
		if x.R != y.R {
			return x.R < y.R
		}
		return x.S < y.S
	}) {
		t.Fatal("output not sorted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	r, s := testTrees(t)
	res := Join(r, s, Config{})
	if res.Workers < 1 {
		t.Fatalf("Workers = %d", res.Workers)
	}
	if res.Tasks == 0 {
		t.Fatal("no tasks created")
	}
	if len(res.PerWorker) != res.Workers {
		t.Fatalf("PerWorker len %d, want %d", len(res.PerWorker), res.Workers)
	}
	total := 0
	for _, n := range res.PerWorker {
		total += n
	}
	// PerWorker counts expanded node pairs; every task is at least one pair
	// and deeper pairs are scheduled individually.
	if total < res.Tasks {
		t.Fatalf("per-worker pair counts sum to %d, want >= %d tasks", total, res.Tasks)
	}
}

// TestSortedMatchesSequentialExactly pins the determinism contract: with
// Sorted set, the native parallel join must return a byte-identical
// candidate slice to the sequential engine — same pairs, same order — for
// any worker count and across repeated runs (scheduling noise must never
// leak into the output).
func TestSortedMatchesSequentialExactly(t *testing.T) {
	r, s := testTrees(t)
	want := join.Sequential(r, s, join.Options{})
	sortCandidates(want)
	for _, workers := range []int{1, 2, 8} {
		for run := 0; run < 3; run++ {
			res := Join(r, s, Config{Workers: workers, Sorted: true})
			if len(res.Candidates) != len(want) {
				t.Fatalf("workers=%d run=%d: %d candidates, want %d",
					workers, run, len(res.Candidates), len(want))
			}
			for i := range want {
				if res.Candidates[i] != want[i] {
					t.Fatalf("workers=%d run=%d: candidate %d = %+v, want %+v",
						workers, run, i, res.Candidates[i], want[i])
				}
			}
		}
	}
}

// TestStealingMovesWork drives a skewed task distribution hard enough that
// stealing must kick in at least once across attempts: with many workers and
// few initial tasks, most workers start empty and can only obtain work by
// stealing from the loaded deques.
func TestStealingMovesWork(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	streets, mixed := tiger.Maps(0.3, 42)
	r := rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.73)
	s := rtree.BulkLoadSTR(rtree.DefaultParams(), mixed, 0.73)
	for attempt := 0; attempt < 5; attempt++ {
		// TaskFactor 1 leaves the initial distribution coarse, so load
		// imbalance (and therefore stealing) is likely.
		res := Join(r, s, Config{Workers: 8, TaskFactor: 1})
		if res.Steals > 0 {
			return
		}
	}
	t.Error("no steal occurred in 5 skewed runs; work-stealing appears inert")
}

func TestWorkersShareTasks(t *testing.T) {
	// Needs tasks heavy enough that the first worker cannot drain the queue
	// before the others start; retry a few times since goroutine start-up
	// latency varies with the machine.
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	streets, mixed := tiger.Maps(0.3, 42)
	r := rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.73)
	s := rtree.BulkLoadSTR(rtree.DefaultParams(), mixed, 0.73)
	for attempt := 0; attempt < 5; attempt++ {
		res := Join(r, s, Config{Workers: 4})
		if res.Tasks < 4 {
			t.Skipf("only %d tasks", res.Tasks)
		}
		busy := 0
		for _, n := range res.PerWorker {
			if n > 0 {
				busy++
			}
		}
		if busy >= 2 {
			return
		}
	}
	t.Error("a single worker took every task in 5 attempts; dynamic assignment should spread work")
}

func TestEmptyJoin(t *testing.T) {
	params := rtree.Params{MaxDirEntries: 12, MaxDataEntries: 12, MinFillFrac: 0.4, ReinsertFrac: 0.3}
	empty := rtree.New(params)
	res := Join(empty, empty, Config{Workers: 4})
	if len(res.Candidates) != 0 || res.Tasks != 0 {
		t.Fatalf("empty join produced %d candidates, %d tasks", len(res.Candidates), res.Tasks)
	}
}

func BenchmarkNativeJoin(b *testing.B) {
	streets, mixed := tiger.Maps(0.1, 42)
	r := rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.73)
	s := rtree.BulkLoadSTR(rtree.DefaultParams(), mixed, 0.73)
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "1worker", 4: "4workers"}[workers]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Join(r, s, Config{Workers: workers})
			}
		})
	}
}

func TestRefinerFiltersFalseHits(t *testing.T) {
	r, s := testTrees(t)
	all := Join(r, s, Config{Workers: 4})
	// A refiner that rejects every pair with odd R id.
	refined := Join(r, s, Config{
		Workers: 4,
		Refiner: func(c join.Candidate) bool { return c.R%2 == 0 },
	})
	wantKept := 0
	for _, c := range all.Candidates {
		if c.R%2 == 0 {
			wantKept++
		}
	}
	if len(refined.Candidates) != wantKept {
		t.Fatalf("refined kept %d, want %d", len(refined.Candidates), wantKept)
	}
	if refined.FalseHits != len(all.Candidates)-wantKept {
		t.Fatalf("false hits %d, want %d", refined.FalseHits, len(all.Candidates)-wantKept)
	}
	for _, c := range refined.Candidates {
		if c.R%2 != 0 {
			t.Fatalf("refiner leaked pair %v/%v", c.R, c.S)
		}
	}
}

func TestRefinerAcceptAllIsIdentity(t *testing.T) {
	r, s := testTrees(t)
	plain := Join(r, s, Config{Workers: 4, Sorted: true})
	refined := Join(r, s, Config{
		Workers: 4, Sorted: true,
		Refiner: func(join.Candidate) bool { return true },
	})
	if len(plain.Candidates) != len(refined.Candidates) || refined.FalseHits != 0 {
		t.Fatalf("accept-all refiner changed the result: %d vs %d (fh %d)",
			len(plain.Candidates), len(refined.Candidates), refined.FalseHits)
	}
}

func TestWindowQueriesMatchSequential(t *testing.T) {
	r, _ := testTrees(t)
	rng := rand.New(rand.NewSource(12))
	queries := make([]geom.Rect, 50)
	for i := range queries {
		x, y := rng.Float64()*600, rng.Float64()*600
		queries[i] = geom.NewRect(x, y, x+10, y+10)
	}
	got := WindowQueries(r, queries, 4)
	if len(got) != len(queries) {
		t.Fatalf("result count %d", len(got))
	}
	for i, q := range queries {
		want := map[rtree.EntryID]bool{}
		r.Search(q, func(id rtree.EntryID, _ geom.Rect) bool {
			want[id] = true
			return true
		})
		if len(got[i]) != len(want) {
			t.Fatalf("query %d: %d ids, want %d", i, len(got[i]), len(want))
		}
		for _, id := range got[i] {
			if !want[id] {
				t.Fatalf("query %d: unexpected id %d", i, id)
			}
		}
	}
}

func TestWindowQueriesEmptyBatch(t *testing.T) {
	r, _ := testTrees(t)
	if got := WindowQueries(r, nil, 0); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

func pagedPair(t *testing.T, frames int) (*rtree.PagedTree, *rtree.PagedTree, *rtree.Tree, *rtree.Tree) {
	t.Helper()
	r, s := testTrees(t)
	dir := t.TempDir()
	save := func(tree *rtree.Tree, name string) *rtree.PagedTree {
		pf, err := pagefile.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pf.Close() })
		if err := tree.SaveToPageFile(pf); err != nil {
			t.Fatal(err)
		}
		pt, err := rtree.OpenPagedTree(pf, frames)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	return save(r, "r.spjf"), save(s, "s.spjf"), r, s
}

func TestJoinPagedMatchesInMemory(t *testing.T) {
	pr, ps, r, s := pagedPair(t, 32)
	want := toSet(join.Sequential(r, s, join.Options{}))
	for _, workers := range []int{1, 4} {
		res, err := JoinPaged(pr, ps, Config{Workers: workers, Sorted: true})
		if err != nil {
			t.Fatal(err)
		}
		got := toSet(res.Candidates)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("workers=%d: missing %v", workers, k)
			}
		}
	}
	if pr.Pool().Misses() == 0 {
		t.Fatal("no physical reads")
	}
}

func TestJoinPagedDeterministicSorted(t *testing.T) {
	pr, ps, _, _ := pagedPair(t, 16)
	a, err := JoinPaged(pr, ps, Config{Workers: 8, Sorted: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := JoinPaged(pr, ps, Config{Workers: 8, Sorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatal("sizes differ")
	}
	for i := range a.Candidates {
		if a.Candidates[i] != b.Candidates[i] {
			t.Fatalf("sorted outputs diverge at %d", i)
		}
	}
}

func TestJoinPagedWithRefiner(t *testing.T) {
	pr, ps, _, _ := pagedPair(t, 16)
	all, err := JoinPaged(pr, ps, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	half, err := JoinPaged(pr, ps, Config{
		Workers: 4,
		Refiner: func(c join.Candidate) bool { return c.S%2 == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(half.Candidates)+half.FalseHits != len(all.Candidates) {
		t.Fatalf("refined %d + fh %d != all %d",
			len(half.Candidates), half.FalseHits, len(all.Candidates))
	}
}

// TestJoinPhaseTimings pins the tree executor's PhaseNS buckets: prep,
// partition (task creation), sweep and merge are always filled, and
// PerWorkerSteals splits the steal total by the thief.
func TestJoinPhaseTimings(t *testing.T) {
	r, s := testTrees(t)
	res := Join(r, s, Config{Workers: 4})
	for _, p := range []int{timeline.PhasePrep, timeline.PhasePartition,
		timeline.PhaseSweep, timeline.PhaseMerge} {
		if res.PhaseNS[p] <= 0 {
			t.Errorf("phase %s has no wall time", timeline.PhaseName(p))
		}
	}
	for _, p := range []int{timeline.PhaseSort, timeline.PhaseFill, timeline.PhaseRefine} {
		if res.PhaseNS[p] != 0 {
			t.Errorf("phase %s filled (%dns); the tree executor never runs it",
				timeline.PhaseName(p), res.PhaseNS[p])
		}
	}
	if len(res.PerWorkerSteals) != res.Workers {
		t.Fatalf("PerWorkerSteals has %d slots, want %d", len(res.PerWorkerSteals), res.Workers)
	}
	sum := 0
	for _, n := range res.PerWorkerSteals {
		sum += n
	}
	if sum != res.Steals {
		t.Errorf("PerWorkerSteals sums to %d, want Steals=%d", sum, res.Steals)
	}
}

// TestJoinTimelinePhaseSpans checks the wall recorder carries the phase
// spans the Perfetto export names "phase:<name>".
func TestJoinTimelinePhaseSpans(t *testing.T) {
	r, s := testTrees(t)
	const workers = 3
	rec := timeline.NewWallRecorder(workers)
	Join(r, s, Config{Workers: workers, Timeline: rec})
	var phases [timeline.NumPhases]int
	for _, proc := range rec.Procs() {
		for _, sp := range proc.Spans {
			if sp.Kind != timeline.KindPhase {
				continue
			}
			if sp.Args.A < 0 || sp.Args.A >= timeline.NumPhases {
				t.Fatalf("phase span with out-of-range phase %d", sp.Args.A)
			}
			phases[sp.Args.A]++
		}
	}
	if phases[timeline.PhaseSweep] != workers {
		t.Errorf("%d sweep phase spans, want %d", phases[timeline.PhaseSweep], workers)
	}
	if phases[timeline.PhasePrep] != 1 || phases[timeline.PhasePartition] != 1 ||
		phases[timeline.PhaseMerge] != 1 {
		t.Errorf("owner phase spans prep=%d partition=%d merge=%d, want 1 each",
			phases[timeline.PhasePrep], phases[timeline.PhasePartition], phases[timeline.PhaseMerge])
	}
}
