package parnative

import (
	"sync/atomic"
	"testing"
)

// markTask records which workers ran and sums per-worker contributions.
type markTask struct {
	ran   []atomic.Int64
	total atomic.Int64
}

func (t *markTask) RunWorker(w int) {
	t.ran[w].Add(1)
	t.total.Add(int64(w + 1))
}

func TestPoolRunsEveryWorkerEachPhase(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		task := &markTask{ran: make([]atomic.Int64, workers)}
		const phases = 50
		for i := 0; i < phases; i++ {
			p.Run(task)
		}
		p.Close()
		for w := 0; w < workers; w++ {
			if got := task.ran[w].Load(); got != phases {
				t.Fatalf("workers=%d: worker %d ran %d phases, want %d",
					workers, w, got, phases)
			}
		}
		want := int64(phases * workers * (workers + 1) / 2)
		if got := task.total.Load(); got != want {
			t.Fatalf("workers=%d: total %d, want %d", workers, got, want)
		}
	}
}

// TestPoolPhaseIsBarrier pins that Run does not return before every worker
// finished: each phase reads the counter value the previous phase left.
type barrierTask struct {
	t       *testing.T
	counter atomic.Int64
	start   int64
}

func (b *barrierTask) RunWorker(w int) {
	if got := b.counter.Load(); got < b.start {
		b.t.Errorf("phase started before previous phase completed: %d < %d", got, b.start)
	}
	b.counter.Add(1)
}

func TestPoolPhaseIsBarrier(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	task := &barrierTask{t: t}
	for i := 0; i < 100; i++ {
		task.start = int64(i * workers)
		p.Run(task)
		if got := task.counter.Load(); got != int64((i+1)*workers) {
			t.Fatalf("after phase %d: counter %d, want %d", i, got, (i+1)*workers)
		}
	}
}

func TestPoolRunAllocs(t *testing.T) {
	for _, workers := range []int{1, 3} {
		p := NewPool(workers)
		task := &markTask{ran: make([]atomic.Int64, workers)}
		p.Run(task) // warm up
		allocs := testing.AllocsPerRun(100, func() { p.Run(task) })
		p.Close()
		if allocs != 0 {
			t.Errorf("workers=%d: Run allocated %.1f objects per phase, want 0", workers, allocs)
		}
	}
}
