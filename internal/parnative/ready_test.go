package parnative

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestReadyQueueStates(t *testing.T) {
	var q ReadyQueue
	q.Reset(4)
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	for i := 0; i < 4; i++ {
		if !q.Free(i) {
			t.Fatalf("slot %d not free after Reset", i)
		}
	}
	if !q.TryClaim(1) {
		t.Fatal("first TryClaim failed")
	}
	if q.TryClaim(1) {
		t.Fatal("second TryClaim succeeded on a taken slot")
	}
	if !q.Taken(1) || q.Free(1) {
		t.Fatal("slot 1 should be taken")
	}
	q.Defer(2)
	if q.TryClaim(2) {
		t.Fatal("TryClaim succeeded on a deferred slot")
	}
	if !q.Deferred(2) {
		t.Fatal("slot 2 should be deferred")
	}
	q.Release(2)
	if !q.TryClaim(2) {
		t.Fatal("TryClaim failed after Release")
	}
	// Reset reuses the backing array and frees everything.
	q.Reset(2)
	if q.Len() != 2 || !q.Free(0) || !q.Free(1) {
		t.Fatal("Reset(2) did not free slots")
	}
}

// TestReadyQueueExclusive hammers TryClaim from many goroutines and checks
// every slot is won exactly once. Run under -race this also validates the
// lock-free transitions.
func TestReadyQueueExclusive(t *testing.T) {
	const slots, claimers = 256, 8
	var q ReadyQueue
	q.Reset(slots)
	var wins [slots]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < claimers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < slots; i++ {
				if q.TryClaim(i) {
					wins[i].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for i := range wins {
		if n := wins[i].Load(); n != 1 {
			t.Fatalf("slot %d claimed %d times, want 1", i, n)
		}
	}
}
