package parnative

import "sync"

// PoolTask is one parallel phase executed on a Pool: RunWorker is invoked
// once per worker, concurrently, with the worker index in [0, Workers()).
// Implementations decide how to split the work (contiguous chunks, an
// atomic cursor, ...); the Pool only provides the goroutines.
type PoolTask interface {
	RunWorker(w int)
}

// Pool is a reusable fixed-size worker pool for phase-structured parallel
// algorithms (the partition-based join runs its count, scatter and
// per-tile sweep phases on one). Unlike the per-Join goroutines of the
// tree executor, the pool's workers are spawned once and parked on a
// condition variable between phases, so launching a phase costs no
// goroutine creation and — because tasks are passed as interface pointers,
// not closures — no allocation.
//
// The calling goroutine participates as worker 0: a one-worker pool runs
// every task inline with zero synchronization, and a k-worker pool parks
// only k-1 goroutines. Run and Close must be called from a single
// goroutine (the pool's owner); RunWorker bodies run concurrently with
// each other but never with the owner between phases.
type Pool struct {
	workers int

	mu     sync.Mutex
	wake   sync.Cond // parked workers wait here for the next phase
	done   sync.Cond // the owner waits here for phase completion
	task   PoolTask
	gen    uint64 // phase generation; bumped by Run
	active int    // helper workers still inside the current phase
	closed bool
}

// NewPool starts a pool of the given size (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	p.wake.L = &p.mu
	p.done.L = &p.mu
	for w := 1; w < workers; w++ {
		go p.loop(w)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes t.RunWorker(w) for every worker w and returns when all have
// finished. The caller runs worker 0 itself.
func (p *Pool) Run(t PoolTask) {
	if p.workers == 1 {
		t.RunWorker(0)
		return
	}
	p.mu.Lock()
	p.task = t
	p.gen++
	p.active = p.workers - 1
	p.wake.Broadcast()
	p.mu.Unlock()

	t.RunWorker(0)

	p.mu.Lock()
	for p.active > 0 {
		p.done.Wait()
	}
	p.task = nil
	p.mu.Unlock()
}

// Close terminates the pool's goroutines. The pool must be idle (no Run in
// flight); a closed pool must not be reused.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.wake.Broadcast()
	p.mu.Unlock()
}

// loop is the parked helper worker: wait for a generation bump, run the
// phase, report back.
func (p *Pool) loop(w int) {
	p.mu.Lock()
	gen := uint64(0)
	for {
		for !p.closed && p.gen == gen {
			p.wake.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		gen = p.gen
		t := p.task
		p.mu.Unlock()

		t.RunWorker(w)

		p.mu.Lock()
		p.active--
		if p.active == 0 {
			p.done.Signal()
		}
	}
}
