package parnative

import (
	"testing"

	"spjoin/internal/join"
)

// Stress the complete() publish-before-count window: many workers, tiny
// tasks, repeated runs, comparing candidate counts against sequential.
func TestStressPrematureTermination(t *testing.T) {
	r, s := testTrees(t)
	want := len(join.Sequential(r, s, join.Options{}))
	for i := 0; i < 3000; i++ {
		res := Join(r, s, Config{Workers: 16, TaskFactor: 1})
		if len(res.Candidates) != want {
			t.Fatalf("iteration %d: %d candidates, want %d (premature termination)", i, len(res.Candidates), want)
		}
	}
}
