package parnative

import (
	"fmt"
	"time"

	"spjoin/internal/join"
	"spjoin/internal/metrics"
)

// nativeMetrics holds the pre-resolved instruments of one instrumented
// native join. Workers accumulate their hot-path counts in plain locals
// and flush once at exit, so the expansion loop stays allocation-free and
// uncontended; only steals and trace events touch shared state mid-run.
type nativeMetrics struct {
	join        *join.Metrics
	workerPairs []*metrics.Counter

	stealAttempts  *metrics.Counter
	stealSuccesses *metrics.Counter
	stealMoved     *metrics.Counter
	tasksCreated   *metrics.Counter
	falseHits      *metrics.Counter

	queueDepth *metrics.Histogram
	wallMS     *metrics.Gauge

	sink  metrics.TraceSink
	start time.Time
}

// newNativeMetrics resolves all instruments under the "native." prefix.
func newNativeMetrics(reg *metrics.Registry, sink metrics.TraceSink, workers int) *nativeMetrics {
	m := &nativeMetrics{
		join:           join.NewMetrics(reg, "native.join"),
		stealAttempts:  reg.Counter("native.steal.attempts"),
		stealSuccesses: reg.Counter("native.steal.successes"),
		stealMoved:     reg.Counter("native.steal.pairs_moved"),
		tasksCreated:   reg.Counter("native.tasks.created"),
		falseHits:      reg.Counter("native.false_hits"),
		queueDepth:     reg.Histogram("native.queue.depth", queueDepthBounds),
		wallMS:         reg.Gauge("native.wall_ms"),
		sink:           sink,
		start:          time.Now(),
	}
	for i := 0; i < workers; i++ {
		m.workerPairs = append(m.workerPairs, reg.Counter(fmt.Sprintf("native.worker.%d.pairs", i)))
	}
	return m
}

// queueDepthBounds mirrors the simulated executor's histogram buckets.
var queueDepthBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// now returns the event timestamp: wall milliseconds since join start.
func (m *nativeMetrics) now() float64 {
	return float64(time.Since(m.start)) / float64(time.Millisecond)
}

// flushWorker publishes one worker's accumulated hot-path counts.
func (m *nativeMetrics) flushWorker(w int, pairs, comparisons, cands, falseHits int64) {
	if m == nil {
		return
	}
	m.join.Pairs.Add(pairs)
	m.join.Comparisons.Add(comparisons)
	m.join.Candidates.Add(cands)
	m.falseHits.Add(falseHits)
	m.workerPairs[w].Add(pairs)
}

// stole records one successful steal of moved pairs from victim by thief.
func (m *nativeMetrics) stole(thief, victim, moved int) {
	if m == nil {
		return
	}
	m.stealSuccesses.Inc()
	m.stealMoved.Add(int64(moved))
	if m.sink != nil {
		m.sink.Emit(metrics.Event{
			Kind: metrics.EvTaskStolen, T: m.now(),
			Worker: int32(thief), Level: -1, A: int64(moved), B: int64(victim),
		})
	}
}

// finish publishes the end-of-run figures.
func (m *nativeMetrics) finish(res *Result) {
	if m == nil {
		return
	}
	m.tasksCreated.Add(int64(res.Tasks))
	m.stealAttempts.Add(int64(res.StealAttempts))
	m.wallMS.Set(m.now())
}
