package parjoin

import (
	"math/rand"
	"reflect"
	"testing"

	"spjoin/internal/geom"
)

func testQueries(n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]geom.Rect, n)
	for i := range qs {
		x := rng.Float64() * 600
		y := rng.Float64() * 600
		qs[i] = geom.NewRect(x, y, x+5+rng.Float64()*20, y+5+rng.Float64()*20)
	}
	return qs
}

func TestRunQueriesCorrectCounts(t *testing.T) {
	r, _ := testTrees(t)
	queries := testQueries(40, 1)
	res := RunQueries(r, queries, DefaultConfig(8, 8, 400))
	if len(res.PerQuery) != len(queries) {
		t.Fatalf("PerQuery len %d", len(res.PerQuery))
	}
	for i, q := range queries {
		if want := r.Count(q); res.PerQuery[i] != want {
			t.Fatalf("query %d: %d results, want %d", i, res.PerQuery[i], want)
		}
	}
	if res.ResponseTime <= 0 || res.DiskAccesses == 0 {
		t.Fatalf("suspicious measures: %+v", res)
	}
}

func TestRunQueriesDeterministic(t *testing.T) {
	r, _ := testTrees(t)
	queries := testQueries(30, 2)
	a := RunQueries(r, queries, DefaultConfig(4, 4, 200))
	b := RunQueries(r, queries, DefaultConfig(4, 4, 200))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("query runs differ:\n%+v\n%+v", a, b)
	}
}

func TestRunQueriesParallelSpeedup(t *testing.T) {
	r, _ := testTrees(t)
	queries := testQueries(80, 3)
	t1 := RunQueries(r, queries, DefaultConfig(1, 1, 100)).ResponseTime
	t8 := RunQueries(r, queries, DefaultConfig(8, 8, 800)).ResponseTime
	if t8 >= t1 {
		t.Fatalf("8-processor query batch (%v) not faster than 1 (%v)", t8, t1)
	}
}

func TestRunQueriesBufferOrgs(t *testing.T) {
	r, _ := testTrees(t)
	queries := testQueries(60, 4)
	var counts []int
	for _, org := range []BufferOrg{LocalOrg, GlobalOrg, SharedNothingOrg} {
		cfg := DefaultConfig(4, 4, 200)
		cfg.Buffer = org
		res := RunQueries(r, queries, cfg)
		counts = append(counts, res.Results)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("buffer organizations disagree on results: %v", counts)
	}
}

func TestRunQueriesGlobalBufferSharesPages(t *testing.T) {
	// Overlapping queries touch the same pages; the global buffer should
	// need fewer disk reads than local buffers.
	r, _ := testTrees(t)
	q := testQueries(1, 5)[0]
	queries := make([]geom.Rect, 32)
	for i := range queries {
		queries[i] = q // identical queries: maximal sharing
	}
	local := DefaultConfig(4, 4, 200)
	local.Buffer = LocalOrg
	global := DefaultConfig(4, 4, 200)
	global.Buffer = GlobalOrg
	ld := RunQueries(r, queries, local).DiskAccesses
	gd := RunQueries(r, queries, global).DiskAccesses
	if gd >= ld {
		t.Fatalf("global buffer disk accesses %d >= local %d", gd, ld)
	}
}

func TestRunQueriesEmpty(t *testing.T) {
	r, _ := testTrees(t)
	res := RunQueries(r, nil, DefaultConfig(2, 2, 10))
	if res.Results != 0 || res.DiskAccesses != 0 {
		t.Fatalf("empty batch produced work: %+v", res)
	}
}
