package parjoin

import (
	"spjoin/internal/buffer"
	"spjoin/internal/geom"
	"spjoin/internal/rtree"
	"spjoin/internal/sim"
	"spjoin/internal/storage"
)

// The paper's §5 plans "a larger framework for parallel spatial query
// processing where also other operations such as neighbor and window
// queries are efficiently supported". This file adds that for window
// queries: a batch of window queries is processed by n simulated processors
// with dynamic assignment over the same buffer organizations and disk
// array as the join, reporting the same measures.

// QueryResult summarizes one simulated parallel window-query batch.
type QueryResult struct {
	// ResponseTime is the virtual time until the last query completed.
	ResponseTime sim.Time
	// TotalWork is the summed busy time of all processors.
	TotalWork sim.Time
	// DiskAccesses counts page reads.
	DiskAccesses int64
	// Buffer classifies all page requests.
	Buffer buffer.Stats
	// Results is the number of data entries reported over all queries.
	Results int
	// PerQuery holds each query's result count, in input order.
	PerQuery []int
}

// RunQueries processes the window-query batch against the tree on the
// simulated machine described by cfg (Assign/Reassign are ignored: queries
// are independent tasks, so they are always assigned dynamically, which is
// what the paper's framework would do). Results are deterministic.
func RunQueries(t *rtree.Tree, queries []geom.Rect, cfg Config) QueryResult {
	cfg.validate()
	kernel := sim.NewKernel()
	disk := storage.NewDiskArray(cfg.Disks, cfg.Disk)
	perProc := cfg.BufferPages / cfg.Procs
	if perProc < 1 {
		perProc = 1
	}
	var mgr buffer.Manager
	switch cfg.Buffer {
	case LocalOrg:
		mgr = buffer.NewLocalBuffers(cfg.Procs, perProc, disk, cfg.BufferCosts)
	case GlobalOrg:
		mgr = buffer.NewGlobalBuffer(cfg.Procs, perProc, disk, cfg.BufferCosts)
	case SharedNothingOrg:
		ship := cfg.ShipCost
		if ship <= 0 {
			ship = buffer.DefaultShipCost
		}
		mgr = buffer.NewSharedNothing(cfg.Procs, perProc, disk, cfg.BufferCosts, ship)
	}

	res := QueryResult{PerQuery: make([]int, len(queries))}
	var totalWork sim.Time
	next := 0
	for p := 0; p < cfg.Procs; p++ {
		proc := p
		kernel.Spawn("qproc", func(pr *sim.Proc) {
			for {
				if next >= len(queries) {
					return
				}
				qi := next
				next++
				start := pr.Now()
				pr.Hold(cfg.CPU.TaskQueueOp)
				res.PerQuery[qi] = simWindowQuery(t, queries[qi], pr, proc, mgr, cfg)
				totalWork += pr.Now() - start
			}
		})
	}
	res.ResponseTime = kernel.Run()
	res.TotalWork = totalWork
	res.DiskAccesses = disk.Accesses()
	res.Buffer = mgr.Stats()
	for _, n := range res.PerQuery {
		res.Results += n
	}
	return res
}

// simWindowQuery walks the tree depth-first, charging buffer/disk costs per
// node and CPU per entry test.
func simWindowQuery(t *rtree.Tree, q geom.Rect, pr *sim.Proc, proc int,
	mgr buffer.Manager, cfg Config) int {
	found := 0
	var rec func(page storage.PageID, level int)
	rec = func(page storage.PageID, level int) {
		kind := storage.DirectoryPage
		if level == 0 {
			kind = storage.DataPage
		}
		mgr.Fetch(pr, proc, buffer.PageKey{Tree: 0, Page: page}, kind)
		n := t.Node(page)
		pr.Hold(sim.Time(len(n.Entries)) * cfg.CPU.PerComparison)
		for i := range n.Entries {
			e := &n.Entries[i]
			if !e.Rect.Intersects(q) {
				continue
			}
			if level == 0 {
				found++
			} else {
				rec(e.Child, level-1)
			}
		}
	}
	if t.Len() > 0 {
		rec(t.Root(), t.Node(t.Root()).Level)
	}
	return found
}
