package parjoin

import (
	"math/rand"

	"spjoin/internal/buffer"
	"spjoin/internal/estimate"
	"spjoin/internal/join"
	"spjoin/internal/rtree"
	"spjoin/internal/sim"
	"spjoin/internal/storage"
	"spjoin/internal/timeline"
)

// Run executes one parallel spatial join of trees r and s under cfg and
// returns all measures of the paper's evaluation. The run is completely
// deterministic in (r, s, cfg).
func Run(r, s *rtree.Tree, cfg Config) Result {
	cfg.validate()

	tasks, taskLevel, _ := CreateTasks(r, s, cfg.Join, cfg.TaskFactor*cfg.Procs)

	st := &runState{
		cfg:       cfg,
		trees:     [2]*rtree.Tree{r, s},
		kernel:    sim.NewKernel(),
		taskLevel: taskLevel,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		lastWaker: -1,
	}
	if cfg.Timeline != nil {
		st.rec = cfg.Timeline
		st.kernel.SetTracer(st.rec)
	}
	st.disk = storage.NewDiskArray(cfg.Disks, cfg.Disk)
	perProc := cfg.BufferPages / cfg.Procs
	if perProc < 1 {
		perProc = 1
	}
	switch cfg.Buffer {
	case LocalOrg:
		st.mgr = buffer.NewLocalBuffers(cfg.Procs, perProc, st.disk, cfg.BufferCosts)
	case GlobalOrg:
		st.mgr = buffer.NewGlobalBuffer(cfg.Procs, perProc, st.disk, cfg.BufferCosts)
	case SharedNothingOrg:
		ship := cfg.ShipCost
		if ship <= 0 {
			ship = buffer.DefaultShipCost
		}
		st.mgr = buffer.NewSharedNothing(cfg.Procs, perProc, st.disk, cfg.BufferCosts, ship)
	}

	// Task assignment (phase 2, sequential).
	height := maxInt(r.Height(), s.Height())
	if cfg.Metrics != nil || cfg.Trace != nil {
		st.met = newSimMetrics(st, cfg.Procs, height)
	}
	st.procs = make([]*procState, cfg.Procs)
	var initial [][]join.NodePair
	switch cfg.Assign {
	case StaticRange:
		initial = splitRange(tasks, cfg.Procs)
	case StaticRoundRobin:
		initial = splitRoundRobin(tasks, cfg.Procs)
	case Dynamic:
		st.queue = tasks
		initial = make([][]join.NodePair, cfg.Procs)
	case StaticEstimated:
		initial = estimate.AssignLPT(tasks, estimate.Costs(r, s, tasks), cfg.Procs)
	}
	for i := 0; i < cfg.Procs; i++ {
		ps := newProcState(i, height)
		// Load the initial work load bottom-up so the top of the stack pops
		// in plane-sweep order.
		for j := len(initial[i]) - 1; j >= 0; j-- {
			ps.pending = append(ps.pending, initial[i][j])
		}
		st.procs[i] = ps
	}

	// Phase 3: parallel task execution.
	for i := 0; i < cfg.Procs; i++ {
		ps := st.procs[i]
		st.kernel.Spawn("proc", func(p *sim.Proc) { st.procLoop(ps, p) })
	}
	st.kernel.Run()

	return st.buildResult(tasks)
}

// runState is the shared (virtual) memory of one run.
type runState struct {
	cfg       Config
	trees     [2]*rtree.Tree
	kernel    *sim.Kernel
	disk      *storage.DiskArray
	mgr       buffer.Manager
	procs     []*procState
	taskLevel int
	rng       *rand.Rand
	met       *simMetrics        // nil unless Config.Metrics/Trace are set
	rec       *timeline.Recorder // nil unless Config.Timeline is set

	queue     []join.NodePair // dynamic task queue (drained via queueHead)
	queueHead int

	// lastWaker is the processor whose new pending work triggered the most
	// recent waitCond.Broadcast (-1 for the final "join complete"
	// broadcast) — recorded as the queue-idle span's blocking edge for the
	// critical-path analyzer.
	lastWaker int

	idleCount      int
	waitCond       sim.Cond
	done           bool
	reassignments  int
	pathBufferHits int64
}

// procState is the private state of one simulated processor.
type procState struct {
	id int
	// pending is the work-load deque: the top (end) is popped next, the
	// bottom (front) holds the unstarted, highest-level pairs that task
	// reassignment may take.
	pending []join.NodePair
	// pathBuf[side][level] is the page of the last accessed node per level
	// (the R*-tree path buffer of §2.2).
	pathBuf [2][]storage.PageID
	stats   ProcStats
	cands   []join.Candidate // only with CollectCandidates

	// scratch holds the expansion kernel's reusable buffers.
	scratch join.Scratch
}

func newProcState(id, height int) *procState {
	ps := &procState{id: id}
	for side := 0; side < 2; side++ {
		ps.pathBuf[side] = make([]storage.PageID, height)
		for l := range ps.pathBuf[side] {
			ps.pathBuf[side][l] = storage.InvalidPage
		}
	}
	return ps
}

// procLoop is the body of one simulated processor.
func (st *runState) procLoop(ps *procState, p *sim.Proc) {
	for {
		item, ok := st.nextWork(ps, p)
		if !ok {
			return
		}
		start := p.Now()
		st.process(ps, p, item)
		ps.stats.Busy += p.Now() - start
	}
}

// nextWork returns the next pair for ps to process, waiting for reassignable
// work if necessary. It returns false when the whole join is complete.
func (st *runState) nextWork(ps *procState, p *sim.Proc) (join.NodePair, bool) {
	for {
		if n := len(ps.pending); n > 0 {
			item := ps.pending[n-1]
			ps.pending = ps.pending[:n-1]
			return item, true
		}
		if st.cfg.Assign == Dynamic && st.queueHead < len(st.queue) {
			item := st.queue[st.queueHead]
			st.queueHead++
			ps.stats.Tasks++
			start := p.Now()
			p.BeginSpan(timeline.KindReassign, sim.SpanArgs{A: -1, B: 1})
			p.Hold(st.cfg.CPU.TaskQueueOp + st.cfg.BufferCosts.Lock)
			p.EndSpan()
			ps.stats.Busy += p.Now() - start
			return item, true
		}
		if st.cfg.Reassign != ReassignNone && st.trySteal(ps, p) {
			continue
		}
		// Out of work: remember when; this stands unless work arrives later.
		ps.stats.Finish = p.Now()
		st.idleCount++
		if st.idleCount == st.cfg.Procs {
			st.done = true
			st.lastWaker = -1
			st.waitCond.Broadcast()
			return join.NodePair{}, false
		}
		idleStart := p.Now()
		p.BeginSpan(timeline.KindQueueIdle, sim.SpanArgs{A: -1})
		st.waitCond.Wait(p)
		p.EndSpanArgs(sim.SpanArgs{A: int64(st.lastWaker)})
		st.met.idled(p, ps.id, p.Now()-idleStart)
		if st.done {
			return join.NodePair{}, false
		}
		st.idleCount--
	}
}

// process joins one pair of nodes: fetch both pages, expand, charge CPU,
// refine candidates, push child pairs.
func (st *runState) process(ps *procState, p *sim.Proc, item join.NodePair) {
	depth := len(ps.pending)
	nr := st.fetch(ps, p, join.SideR, item.RPage, item.RLevel)
	ns := st.fetch(ps, p, join.SideS, item.SPage, item.SLevel)

	newCands, children, comparisons := ps.scratch.Expand(nr, ns, st.cfg.Join)
	st.met.pairExpanded(p, ps.id, item, len(newCands), comparisons, depth)
	p.BeginSpan(timeline.KindCPUSweep, sim.SpanArgs{
		A: int64(item.RPage), B: int64(item.SPage),
		C: int64(item.MaxLevel()), D: int64(comparisons),
	})
	p.Hold(sim.Time(comparisons) * st.cfg.CPU.PerComparison)
	p.EndSpan()

	// The refinement of a candidate is executed by the processor that found
	// it (§3); the exact test is modeled by the calibrated waiting period.
	if len(newCands) > 0 {
		p.BeginSpan(timeline.KindRefineWait, sim.SpanArgs{A: int64(len(newCands))})
		for _, c := range newCands {
			p.Hold(st.cfg.Refine.CostFor(c.RRect, c.SRect))
			ps.stats.Candidates++
			if st.cfg.CollectCandidates {
				ps.cands = append(ps.cands, c)
			}
		}
		p.EndSpan()
	}

	if len(children) > 0 {
		// Push in reverse so pops continue in plane-sweep order.
		for i := len(children) - 1; i >= 0; i-- {
			ps.pending = append(ps.pending, children[i])
		}
		// New pending work may satisfy idle processors waiting to help.
		if st.cfg.Reassign != ReassignNone && st.waitCond.WaiterCount() > 0 {
			st.lastWaker = ps.id
			st.waitCond.Broadcast()
		}
	}
}

// fetch brings one node in, going through the path buffer first and then
// the buffer manager (which may go to disk).
func (st *runState) fetch(ps *procState, p *sim.Proc, side buffer.TreeID, page storage.PageID, level int) *rtree.Node {
	if st.cfg.PathBuffer && ps.pathBuf[side][level] == page {
		st.pathBufferHits++
		return st.trees[side].Node(page)
	}
	kind := storage.DirectoryPage
	if level == 0 {
		kind = storage.DataPage
	}
	if st.mgr.Fetch(p, ps.id, buffer.PageKey{Tree: side, Page: page}, kind) == buffer.Miss {
		st.met.diskMiss(level)
	}
	if st.cfg.PathBuffer {
		ps.pathBuf[side][level] = page
	}
	return st.trees[side].Node(page)
}

// stealable reports whether a pending item may be reassigned under the
// configured mode: on the root level only whole unstarted tasks move; on
// all levels every pending subtree pair may move — including pairs of data
// pages, which are the entries of the lowest directory level and the only
// pending work a dynamically assigned processor ever holds.
func (st *runState) stealable(item join.NodePair) bool {
	switch st.cfg.Reassign {
	case ReassignRoot:
		return item.MaxLevel() == st.taskLevel
	case ReassignAll:
		return true
	default:
		return false
	}
}

// workReport computes the (hl, ns) pair a processor reports for victim
// selection: the highest level with stealable pending pairs, and how many
// pairs sit there. ok is false when nothing is stealable.
func (st *runState) workReport(ps *procState) (hl, ns int, ok bool) {
	hl = -1
	for _, item := range ps.pending {
		if !st.stealable(item) {
			continue
		}
		l := item.MaxLevel()
		if l > hl {
			hl, ns = l, 1
		} else if l == hl {
			ns++
		}
	}
	return hl, ns, hl >= 0
}

// trySteal performs one task reassignment: pick a victim, move half of its
// stealable work load (bottom-most pairs first) to ps. Reports whether work
// was transferred.
func (st *runState) trySteal(ps *procState, p *sim.Proc) bool {
	st.met.attempt()
	victim := st.pickVictim(ps)
	if victim == nil {
		return false
	}
	// The victim's (hl, ns) work report goes on the reassign span, so the
	// trace shows what made this victim the one worth helping.
	var hl, ns int
	if st.rec != nil {
		hl, ns, _ = st.workReport(victim)
	}
	moved := st.splitWorkload(victim)
	if len(moved) == 0 {
		return false
	}
	st.reassignments++
	st.met.reassigned(p, ps.id, victim.id, len(moved))
	ps.stats.Stolen += len(moved)
	victim.stats.StolenFrom += len(moved)

	start := p.Now()
	p.BeginSpan(timeline.KindReassign, sim.SpanArgs{
		A: int64(victim.id), B: int64(len(moved)), C: int64(hl), D: int64(ns),
	})
	p.Hold(st.cfg.CPU.ReassignOverhead + st.cfg.BufferCosts.Lock)
	p.EndSpan()
	if st.rec != nil {
		// Flow event: the moved pairs' old owner -> their new owner.
		st.rec.AddFlow(ps.id, victim.id, p.Now())
	}
	ps.stats.Busy += p.Now() - start

	// The moved pairs are in plane-sweep order; push reversed so the thief
	// pops them in order.
	for i := len(moved) - 1; i >= 0; i-- {
		ps.pending = append(ps.pending, moved[i])
	}
	// The thief's new work load is itself reassignable: let other idle
	// processors re-check.
	if st.waitCond.WaiterCount() > 0 {
		st.lastWaker = ps.id
		st.waitCond.Broadcast()
	}
	return true
}

// pickVictim selects the processor to help, or nil. Only processors whose
// stealable pending count reaches MinSteal are eligible ("minimum size of
// the work load which is worth to be divided").
func (st *runState) pickVictim(ps *procState) *procState {
	type cand struct {
		ps     *procState
		hl, ns int
	}
	var cands []cand
	for _, other := range st.procs {
		if other == ps {
			continue
		}
		hl, ns, ok := st.workReport(other)
		if !ok {
			continue
		}
		if st.stealableCount(other) < st.cfg.MinSteal {
			continue
		}
		cands = append(cands, cand{other, hl, ns})
	}
	if len(cands) == 0 {
		return nil
	}
	if st.cfg.Victim == RandomVictim {
		return cands[st.rng.Intn(len(cands))].ps
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.hl > best.hl || (c.hl == best.hl && c.ns > best.ns) {
			best = c
		}
	}
	return best.ps
}

func (st *runState) stealableCount(ps *procState) int {
	n := 0
	for _, item := range ps.pending {
		if st.stealable(item) {
			n++
		}
	}
	return n
}

// splitWorkload removes half of the victim's stealable pairs — the
// bottom-most ones, i.e. the least imminent, highest-level work — and
// returns them in their original (plane-sweep) order.
func (st *runState) splitWorkload(victim *procState) []join.NodePair {
	var eligible []int
	for i, item := range victim.pending {
		if st.stealable(item) {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) < st.cfg.MinSteal {
		return nil
	}
	take := len(eligible) / 2
	if take < 1 {
		take = 1
	}
	takeIdx := eligible[:take]
	moved := make([]join.NodePair, 0, take)
	// The bottom of the stack holds the pairs farthest from execution; they
	// are stored bottom-first, so the selected indices ascend. Collect the
	// stolen pairs in stack-bottom order, which is reverse plane-sweep
	// order (the stack was loaded reversed), then flip to sweep order.
	for _, i := range takeIdx {
		moved = append(moved, victim.pending[i])
	}
	// Remove stolen items from the victim, preserving the rest's order.
	kept := victim.pending[:0]
	j := 0
	for i, item := range victim.pending {
		if j < len(takeIdx) && i == takeIdx[j] {
			j++
			continue
		}
		kept = append(kept, item)
	}
	victim.pending = kept
	// moved currently runs bottom→up the stack = reverse sweep order.
	for a, b := 0, len(moved)-1; a < b; a, b = a+1, b-1 {
		moved[a], moved[b] = moved[b], moved[a]
	}
	return moved
}

// buildResult assembles the Result after the kernel has drained.
func (st *runState) buildResult(tasks []join.NodePair) Result {
	res := Result{
		TasksCreated:     len(tasks),
		TaskLevel:        st.taskLevel,
		Reassignments:    st.reassignments,
		DiskAccesses:     st.disk.Accesses(),
		DataDiskAccesses: st.disk.DataAccesses(),
		Buffer:           st.mgr.Stats(),
		PathBufferHits:   st.pathBufferHits,
		PerProc:          make([]ProcStats, len(st.procs)),
	}
	var sumFinish sim.Time
	for i, ps := range st.procs {
		res.PerProc[i] = ps.stats
		res.Candidates += ps.stats.Candidates
		res.TotalWork += ps.stats.Busy
		sumFinish += ps.stats.Finish
		if ps.stats.Finish > res.ResponseTime {
			res.ResponseTime = ps.stats.Finish
		}
		if i == 0 || ps.stats.Finish < res.FirstFinish {
			res.FirstFinish = ps.stats.Finish
		}
		if st.cfg.CollectCandidates {
			res.CandidateList = append(res.CandidateList, ps.cands...)
		}
	}
	res.AvgFinish = sumFinish / sim.Time(len(st.procs))
	st.met.finish(&res)
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
