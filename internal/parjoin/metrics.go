package parjoin

import (
	"fmt"

	"spjoin/internal/buffer"
	"spjoin/internal/join"
	"spjoin/internal/metrics"
	"spjoin/internal/sim"
)

// simMetrics holds the pre-resolved instruments of one instrumented run.
// Every field is looked up once at run start, so the simulation loop only
// performs plain atomic increments (and, with a sink, event emissions).
// A nil *simMetrics disables everything.
type simMetrics struct {
	join *join.Metrics

	// diskByLevel[l] counts buffer misses (physical reads) of nodes at
	// tree level l — the per-level disk-access breakdown of §4.
	diskByLevel []*metrics.Counter

	procPairs []*metrics.Counter // pairs expanded per processor

	reassignAttempts  *metrics.Counter
	reassignSuccesses *metrics.Counter
	reassignMoved     *metrics.Counter
	pathBufferHits    *metrics.Counter
	tasksCreated      *metrics.Counter
	idleSpans         *metrics.Counter

	queueDepth *metrics.Histogram

	taskLevel   *metrics.Gauge
	responseS   *metrics.Gauge
	firstS      *metrics.Gauge
	avgS        *metrics.Gauge
	totalWorkS  *metrics.Gauge
	totalIdleMS *metrics.Gauge

	sink metrics.TraceSink

	idleMS float64 // accumulated idle span length (virtual ms)
}

// queueDepthBounds buckets pending-deque lengths; the top bucket catches
// pathological pile-ups.
var queueDepthBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// newSimMetrics resolves all instruments against reg (which may be nil if
// only tracing is requested — nil-safe instruments then count into the
// void) and wires the disk array and buffer manager.
func newSimMetrics(st *runState, procs, height int) *simMetrics {
	reg, sink := st.cfg.Metrics, st.cfg.Trace
	m := &simMetrics{
		join:              join.NewMetrics(reg, "sim.join"),
		reassignAttempts:  reg.Counter("sim.reassign.attempts"),
		reassignSuccesses: reg.Counter("sim.reassign.successes"),
		reassignMoved:     reg.Counter("sim.reassign.pairs_moved"),
		pathBufferHits:    reg.Counter("sim.path_buffer.hits"),
		tasksCreated:      reg.Counter("sim.tasks.created"),
		idleSpans:         reg.Counter("sim.idle.spans"),
		queueDepth:        reg.Histogram("sim.queue.depth", queueDepthBounds),
		taskLevel:         reg.Gauge("sim.tasks.level"),
		responseS:         reg.Gauge("sim.response_s"),
		firstS:            reg.Gauge("sim.first_finish_s"),
		avgS:              reg.Gauge("sim.avg_finish_s"),
		totalWorkS:        reg.Gauge("sim.total_work_s"),
		totalIdleMS:       reg.Gauge("sim.idle.total_ms"),
		sink:              sink,
	}
	for l := 0; l < height; l++ {
		m.diskByLevel = append(m.diskByLevel, reg.Counter(fmt.Sprintf("sim.disk.reads.level%d", l)))
	}
	for i := 0; i < procs; i++ {
		m.procPairs = append(m.procPairs, reg.Counter(fmt.Sprintf("sim.proc.%d.pairs", i)))
	}
	st.disk.Instrument(
		reg.Counter("sim.disk.reads.directory"),
		reg.Counter("sim.disk.reads.data"),
		sink,
	)
	st.mgr.Instrument(buffer.NewMetrics(reg, "sim.buffer", sink))
	return m
}

// pairExpanded records one node-pair expansion by processor proc.
func (m *simMetrics) pairExpanded(p *sim.Proc, proc int, item join.NodePair, cands, comparisons, queueDepth int) {
	if m == nil {
		return
	}
	m.join.Pairs.Inc()
	m.join.Comparisons.Add(int64(comparisons))
	m.join.Candidates.Add(int64(cands))
	m.procPairs[proc].Inc()
	m.queueDepth.Observe(int64(queueDepth))
	if m.sink != nil {
		m.sink.Emit(metrics.Event{
			Kind: metrics.EvPairExpanded, T: float64(p.Now()),
			Worker: int32(proc), Level: int32(item.MaxLevel()),
			A: int64(item.RPage), B: int64(item.SPage),
		})
	}
}

// diskMiss records a physical read of a node at the given tree level.
func (m *simMetrics) diskMiss(level int) {
	if m == nil || level >= len(m.diskByLevel) {
		return
	}
	m.diskByLevel[level].Inc()
}

// attempt records one reassignment attempt (successful or not).
func (m *simMetrics) attempt() {
	if m == nil {
		return
	}
	m.reassignAttempts.Inc()
}

// reassigned records one successful task reassignment of moved pairs from
// victim to thief.
func (m *simMetrics) reassigned(p *sim.Proc, thief, victim, moved int) {
	if m == nil {
		return
	}
	m.reassignSuccesses.Inc()
	m.reassignMoved.Add(int64(moved))
	if m.sink != nil {
		m.sink.Emit(metrics.Event{
			Kind: metrics.EvTaskReassigned, T: float64(p.Now()),
			Worker: int32(thief), Level: -1, A: int64(moved), B: int64(victim),
		})
	}
}

// idled records one completed idle span of processor proc.
func (m *simMetrics) idled(p *sim.Proc, proc int, span sim.Time) {
	if m == nil {
		return
	}
	m.idleSpans.Inc()
	m.idleMS += float64(span)
	if m.sink != nil {
		m.sink.Emit(metrics.Event{
			Kind: metrics.EvWorkerIdle, T: float64(p.Now()),
			Worker: int32(proc), Level: -1, F: float64(span),
		})
	}
}

// finish publishes the end-of-run gauges from the assembled Result.
func (m *simMetrics) finish(res *Result) {
	if m == nil {
		return
	}
	m.tasksCreated.Add(int64(res.TasksCreated))
	m.taskLevel.Set(float64(res.TaskLevel))
	m.pathBufferHits.Add(res.PathBufferHits)
	m.responseS.Set(res.ResponseTime.Seconds())
	m.firstS.Set(res.FirstFinish.Seconds())
	m.avgS.Set(res.AvgFinish.Seconds())
	m.totalWorkS.Set(res.TotalWork.Seconds())
	m.totalIdleMS.Set(m.idleMS)
}
