package parjoin

import (
	"spjoin/internal/buffer"
	"spjoin/internal/join"
	"spjoin/internal/sim"
)

// ProcStats holds per-processor outcome measures.
type ProcStats struct {
	// Finish is the virtual time at which the processor went idle for good;
	// the processor finishing last determines the response time.
	Finish sim.Time
	// Busy is the virtual time the processor spent working (CPU, buffer,
	// disk, refinement), excluding idle waiting.
	Busy sim.Time
	// Tasks is the number of root-level tasks the processor started itself
	// (initial assignment plus dynamic queue takes).
	Tasks int
	// StolenFrom counts pairs other processors took from this one.
	StolenFrom int
	// Stolen counts pairs this processor took over from others.
	Stolen int
	// Candidates is the number of filter results this processor produced.
	Candidates int
}

// Result summarizes one parallel join run with every measure the paper's
// evaluation reports.
type Result struct {
	// ResponseTime is the wall-clock (virtual) time between starting the
	// join and computing the last pair, i.e. the maximum Finish.
	ResponseTime sim.Time
	// FirstFinish and AvgFinish complete the Figure 7 view of imbalance.
	FirstFinish sim.Time
	AvgFinish   sim.Time
	// TotalWork is the summed Busy time of all processors ("the total run
	// time of all tasks").
	TotalWork sim.Time
	// DiskAccesses is the total page-read count of the disk array
	// (Figures 5, 7, 8, 10); DataDiskAccesses counts the leaf-page subset.
	DiskAccesses     int64
	DataDiskAccesses int64
	// Buffer classifies all page requests.
	Buffer buffer.Stats
	// PathBufferHits counts node accesses absorbed by the R*-tree path
	// buffers (they never reach the LRU buffer).
	PathBufferHits int64
	// Candidates is the filter-step result count; CandidateList is filled
	// only when Config.CollectCandidates is set.
	Candidates    int
	CandidateList []join.Candidate
	// TasksCreated is m, the number of tasks after task creation.
	TasksCreated int
	// TaskLevel is the tree level of the created tasks' subtree roots.
	TaskLevel int
	// Reassignments counts successful work-load splits.
	Reassignments int
	// PerProc has one entry per processor.
	PerProc []ProcStats
}

// Speedup returns t1/t(n) given the single-processor response time t1.
func (r Result) Speedup(t1 sim.Time) float64 {
	if r.ResponseTime <= 0 {
		return 0
	}
	return float64(t1) / float64(r.ResponseTime)
}
