package parjoin

import (
	"math/rand"

	"reflect"
	"spjoin/internal/buffer"
	"spjoin/internal/refine"
	"spjoin/internal/storage"
	"testing"

	"spjoin/internal/join"
	"spjoin/internal/rtree"
	"spjoin/internal/tiger"
)

// testTrees builds a small but structurally deep pair of trees from the
// synthetic maps (low fanout => height 4-5, so all reassignment levels are
// exercised).
func testTrees(tb testing.TB) (*rtree.Tree, *rtree.Tree) {
	tb.Helper()
	streets, mixed := tiger.Maps(0.02, 42)
	params := rtree.Params{MaxDirEntries: 10, MaxDataEntries: 10, MinFillFrac: 0.4, ReinsertFrac: 0.3}
	r := rtree.BulkLoadSTR(params, streets, 0.8)
	s := rtree.BulkLoadSTR(params, mixed, 0.8)
	return r, s
}

type pairKey struct{ r, s rtree.EntryID }

func candSet(cands []join.Candidate) map[pairKey]bool {
	out := make(map[pairKey]bool, len(cands))
	for _, c := range cands {
		out[pairKey{c.R, c.S}] = true
	}
	return out
}

func TestAllVariantsMatchSequential(t *testing.T) {
	r, s := testTrees(t)
	want := candSet(join.Sequential(r, s, join.Options{}))
	if len(want) == 0 {
		t.Fatal("test workload produced no candidates")
	}
	variants := []string{"lsr", "gsrr", "gd"}
	reassigns := []Reassign{ReassignNone, ReassignRoot, ReassignAll}
	for _, v := range variants {
		for _, ra := range reassigns {
			cfg := DefaultConfig(8, 8, 400).Variant(v)
			cfg.Reassign = ra
			cfg.CollectCandidates = true
			res := Run(r, s, cfg)
			got := candSet(res.CandidateList)
			if len(got) != len(want) {
				t.Fatalf("%s/%v: %d candidates, want %d", v, ra, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("%s/%v: missing candidate %v", v, ra, k)
				}
			}
			if res.Candidates != len(res.CandidateList) {
				t.Fatalf("%s/%v: Candidates=%d, list=%d", v, ra, res.Candidates, len(res.CandidateList))
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	r, s := testTrees(t)
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		cfg := DefaultConfig(8, 8, 400).Variant(v)
		a := Run(r, s, cfg)
		b := Run(r, s, cfg)
		a.CandidateList, b.CandidateList = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two runs differ:\n%+v\n%+v", v, a, b)
		}
	}
}

func TestSingleProcessorWorks(t *testing.T) {
	r, s := testTrees(t)
	want := len(join.Sequential(r, s, join.Options{}))
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		cfg := DefaultConfig(1, 1, 100).Variant(v)
		res := Run(r, s, cfg)
		if res.Candidates != want {
			t.Fatalf("%s: candidates = %d, want %d", v, res.Candidates, want)
		}
		if res.ResponseTime <= 0 {
			t.Fatalf("%s: response time %v", v, res.ResponseTime)
		}
		if len(res.PerProc) != 1 {
			t.Fatalf("%s: PerProc len %d", v, len(res.PerProc))
		}
	}
}

func TestMoreProcessorsFaster(t *testing.T) {
	r, s := testTrees(t)
	cfg1 := DefaultConfig(1, 1, 100)
	cfg8 := DefaultConfig(8, 8, 800)
	t1 := Run(r, s, cfg1).ResponseTime
	t8 := Run(r, s, cfg8).ResponseTime
	if t8 >= t1 {
		t.Fatalf("8 procs (%v) not faster than 1 (%v)", t8, t1)
	}
	// The workload is parallel enough that 8 processors with 8 disks should
	// be at least 3x faster.
	if float64(t1)/float64(t8) < 3 {
		t.Errorf("speed-up only %.2f, want >= 3", float64(t1)/float64(t8))
	}
}

func TestSingleDiskBottleneck(t *testing.T) {
	r, s := testTrees(t)
	t4 := Run(r, s, DefaultConfig(4, 1, 400)).ResponseTime
	t16 := Run(r, s, DefaultConfig(16, 1, 400)).ResponseTime
	// Figure 9's d=1 plateau: quadrupling processors on one disk gains
	// little. Allow up to 40% improvement before failing.
	if float64(t16) < 0.6*float64(t4) {
		t.Errorf("single disk: t(16)=%v much faster than t(4)=%v — disk should bottleneck", t16, t4)
	}
}

func TestGlobalBufferFewerDiskAccesses(t *testing.T) {
	r, s := testTrees(t)
	local := Run(r, s, DefaultConfig(8, 8, 400).Variant("lsr"))
	global := Run(r, s, DefaultConfig(8, 8, 400).Variant("gd"))
	if global.DiskAccesses >= local.DiskAccesses {
		t.Errorf("global buffer disk accesses %d >= local %d",
			global.DiskAccesses, local.DiskAccesses)
	}
}

func TestLargerBufferFewerDiskAccesses(t *testing.T) {
	r, s := testTrees(t)
	small := Run(r, s, DefaultConfig(8, 8, 80))
	large := Run(r, s, DefaultConfig(8, 8, 1600))
	if large.DiskAccesses > small.DiskAccesses {
		t.Errorf("larger buffer increased disk accesses: %d vs %d",
			large.DiskAccesses, small.DiskAccesses)
	}
}

func TestReassignmentBalancesLSR(t *testing.T) {
	r, s := testTrees(t)
	base := DefaultConfig(8, 8, 400).Variant("lsr")
	base.Reassign = ReassignNone
	none := Run(r, s, base)
	base.Reassign = ReassignAll
	all := Run(r, s, base)
	if all.Reassignments == 0 {
		t.Fatal("no reassignments happened under ReassignAll")
	}
	// Load balancing must shrink the idle window of the first finisher
	// relative to the last.
	spreadNone := float64(none.ResponseTime - none.FirstFinish)
	spreadAll := float64(all.ResponseTime - all.FirstFinish)
	if spreadAll >= spreadNone {
		t.Errorf("reassignment did not reduce finish spread: %v -> %v",
			spreadNone, spreadAll)
	}
	if all.ResponseTime >= none.ResponseTime {
		t.Errorf("reassignment did not reduce response time: %v -> %v",
			none.ResponseTime, all.ResponseTime)
	}
}

func TestDynamicRootReassignEqualsNone(t *testing.T) {
	// §4.4: with dynamic task assignment, a reassignment on the root level
	// is a no-op because tasks are requested one by one.
	r, s := testTrees(t)
	cfg := DefaultConfig(8, 8, 400).Variant("gd")
	cfg.Reassign = ReassignNone
	none := Run(r, s, cfg)
	cfg.Reassign = ReassignRoot
	root := Run(r, s, cfg)
	if root.Reassignments != 0 {
		t.Fatalf("gd/root performed %d reassignments, want 0", root.Reassignments)
	}
	if none.ResponseTime != root.ResponseTime || none.DiskAccesses != root.DiskAccesses {
		t.Errorf("gd none vs root differ: rt %v vs %v, disk %d vs %d",
			none.ResponseTime, root.ResponseTime, none.DiskAccesses, root.DiskAccesses)
	}
}

func TestVictimPoliciesBothWork(t *testing.T) {
	r, s := testTrees(t)
	want := Run(r, s, DefaultConfig(4, 4, 200)).Candidates
	for _, v := range []Victim{MostLoaded, RandomVictim} {
		cfg := DefaultConfig(4, 4, 200).Variant("lsr")
		cfg.Reassign = ReassignAll
		cfg.Victim = v
		cfg.Seed = 7
		res := Run(r, s, cfg)
		if res.Candidates != want {
			t.Fatalf("victim %v: candidates = %d, want %d", v, res.Candidates, want)
		}
	}
}

func TestTotalWorkAccounting(t *testing.T) {
	r, s := testTrees(t)
	res := Run(r, s, DefaultConfig(8, 8, 400))
	if res.TotalWork <= 0 {
		t.Fatal("TotalWork not accounted")
	}
	for i, p := range res.PerProc {
		if p.Busy > p.Finish {
			t.Errorf("proc %d: busy %v > finish %v", i, p.Busy, p.Finish)
		}
	}
	if res.FirstFinish > res.AvgFinish || res.AvgFinish > res.ResponseTime {
		t.Errorf("finish ordering violated: %v <= %v <= %v",
			res.FirstFinish, res.AvgFinish, res.ResponseTime)
	}
}

func TestPathBufferReducesBufferTraffic(t *testing.T) {
	r, s := testTrees(t)
	with := DefaultConfig(8, 8, 400)
	without := with
	without.PathBuffer = false
	a := Run(r, s, with)
	b := Run(r, s, without)
	if a.PathBufferHits == 0 {
		t.Fatal("path buffer never hit")
	}
	if b.PathBufferHits != 0 {
		t.Fatal("path buffer hits counted while disabled")
	}
	if a.Buffer.Accesses() >= b.Buffer.Accesses() {
		t.Errorf("path buffer did not reduce buffer traffic: %d vs %d",
			a.Buffer.Accesses(), b.Buffer.Accesses())
	}
}

func TestCreateTasksEnoughTasks(t *testing.T) {
	r, s := testTrees(t)
	tasks, level, comparisons := CreateTasks(r, s, join.Options{}, 24)
	if len(tasks) < 24 {
		// Acceptable only if tasks bottomed out at leaf level.
		if level != 0 {
			t.Fatalf("only %d tasks at level %d, want >= 24 or level 0", len(tasks), level)
		}
	}
	if comparisons <= 0 {
		t.Error("no comparisons counted during creation")
	}
	for _, task := range tasks {
		if task.MaxLevel() > level {
			t.Fatalf("task %+v above reported level %d", task, level)
		}
	}
}

func TestCreateTasksEmptyTrees(t *testing.T) {
	params := rtree.Params{MaxDirEntries: 10, MaxDataEntries: 10, MinFillFrac: 0.4, ReinsertFrac: 0.3}
	empty := rtree.New(params)
	tasks, _, _ := CreateTasks(empty, empty, join.Options{}, 8)
	if tasks != nil {
		t.Fatalf("empty trees produced %d tasks", len(tasks))
	}
	res := Run(empty, empty, DefaultConfig(4, 4, 100))
	if res.Candidates != 0 || res.TasksCreated != 0 {
		t.Fatalf("empty join: %+v", res)
	}
}

func TestSplitRange(t *testing.T) {
	tasks := make([]join.NodePair, 11)
	for i := range tasks {
		tasks[i].RLevel = i // marker
	}
	blocks := splitRange(tasks, 3)
	// 11 = 4+4+3.
	if len(blocks[0]) != 4 || len(blocks[1]) != 4 || len(blocks[2]) != 3 {
		t.Fatalf("block sizes %d/%d/%d, want 4/4/3",
			len(blocks[0]), len(blocks[1]), len(blocks[2]))
	}
	if blocks[0][0].RLevel != 0 || blocks[1][0].RLevel != 4 || blocks[2][0].RLevel != 8 {
		t.Fatal("blocks are not contiguous in order")
	}
}

func TestSplitRoundRobin(t *testing.T) {
	tasks := make([]join.NodePair, 7)
	for i := range tasks {
		tasks[i].RLevel = i
	}
	blocks := splitRoundRobin(tasks, 3)
	if len(blocks[0]) != 3 || len(blocks[1]) != 2 || len(blocks[2]) != 2 {
		t.Fatalf("block sizes %d/%d/%d", len(blocks[0]), len(blocks[1]), len(blocks[2]))
	}
	want0 := []int{0, 3, 6}
	for i, task := range blocks[0] {
		if task.RLevel != want0[i] {
			t.Fatalf("round robin block 0: %v", blocks[0])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	r, s := testTrees(t)
	bad := []Config{
		{Procs: 0, Disks: 1, BufferPages: 10, MinSteal: 1, TaskFactor: 1},
		{Procs: 1, Disks: 0, BufferPages: 10, MinSteal: 1, TaskFactor: 1},
		{Procs: 4, Disks: 1, BufferPages: 2, MinSteal: 1, TaskFactor: 1},
		{Procs: 1, Disks: 1, BufferPages: 10, MinSteal: 0, TaskFactor: 1},
		{Procs: 1, Disks: 1, BufferPages: 10, MinSteal: 1, TaskFactor: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			Run(r, s, cfg)
		}()
	}
}

func TestVariantNames(t *testing.T) {
	cfg := DefaultConfig(2, 2, 10)
	if v := cfg.Variant("lsr"); v.Buffer != LocalOrg || v.Assign != StaticRange {
		t.Error("lsr wrong")
	}
	if v := cfg.Variant("gsrr"); v.Buffer != GlobalOrg || v.Assign != StaticRoundRobin {
		t.Error("gsrr wrong")
	}
	if v := cfg.Variant("gd"); v.Buffer != GlobalOrg || v.Assign != Dynamic {
		t.Error("gd wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown variant did not panic")
		}
	}()
	cfg.Variant("bogus")
}

func TestEnumStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{StaticRange.String(), "static-range"},
		{StaticRoundRobin.String(), "static-round-robin"},
		{Dynamic.String(), "dynamic"},
		{LocalOrg.String(), "local"},
		{GlobalOrg.String(), "global"},
		{ReassignNone.String(), "none"},
		{ReassignRoot.String(), "root-level"},
		{ReassignAll.String(), "all-levels"},
		{MostLoaded.String(), "most-loaded"},
		{RandomVictim.String(), "random"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	if Assignment(9).String() == "" || BufferOrg(9).String() == "" ||
		Reassign(9).String() == "" || Victim(9).String() == "" {
		t.Error("unknown enum values must still format")
	}
}

func TestSpeedupHelper(t *testing.T) {
	res := Result{ResponseTime: 50}
	if got := res.Speedup(100); got != 2 {
		t.Fatalf("Speedup = %g, want 2", got)
	}
	if (Result{}).Speedup(100) != 0 {
		t.Fatal("zero response time must yield 0 speedup")
	}
}

func TestSharedNothingOrgCorrectAndComparable(t *testing.T) {
	r, s := testTrees(t)
	svm := DefaultConfig(8, 8, 400)
	sn := svm
	sn.Buffer = SharedNothingOrg
	resSVM := Run(r, s, svm)
	resSN := Run(r, s, sn)
	if resSN.Candidates != resSVM.Candidates {
		t.Fatalf("shared-nothing candidates %d != SVM %d", resSN.Candidates, resSVM.Candidates)
	}
	if resSN.ResponseTime <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	// The paper's §5 conjecture: comparable performance. Allow a 2x band.
	ratio := float64(resSN.ResponseTime) / float64(resSVM.ResponseTime)
	if ratio > 2 || ratio < 0.5 {
		t.Errorf("shared-nothing/SVM response ratio %.2f outside [0.5, 2]", ratio)
	}
	if SharedNothingOrg.String() != "shared-nothing" {
		t.Error("BufferOrg string missing")
	}
}

func TestQuickRandomConfigsMatchSequential(t *testing.T) {
	// Property: EVERY parallel configuration computes exactly the
	// sequential candidate set. Sample the configuration space.
	r, s := testTrees(t)
	want := len(join.Sequential(r, s, join.Options{}))
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		procs := 1 + rng.Intn(12)
		cfg := Config{
			Procs:       procs,
			Disks:       1 + rng.Intn(12),
			BufferPages: procs * (1 + rng.Intn(60)),
			Buffer:      BufferOrg(rng.Intn(3)),
			Assign:      Assignment(rng.Intn(3)),
			Reassign:    Reassign(rng.Intn(3)),
			Victim:      Victim(rng.Intn(2)),
			MinSteal:    1 + rng.Intn(8),
			TaskFactor:  1 + rng.Intn(6),
			PathBuffer:  rng.Intn(2) == 0,
			Seed:        rng.Int63(),
			CPU:         DefaultCPUParams(),
			Disk:        storage.DefaultDiskParams(),
			BufferCosts: buffer.DefaultCostParams(),
			Refine:      refine.DefaultCostModel(),
		}
		res := Run(r, s, cfg)
		if res.Candidates != want {
			t.Fatalf("trial %d (%+v): %d candidates, want %d", trial, cfg, res.Candidates, want)
		}
		if res.ResponseTime <= 0 || res.TotalWork < res.ResponseTime-1e9 {
			t.Fatalf("trial %d: incoherent times %v / %v", trial, res.ResponseTime, res.TotalWork)
		}
	}
}

func TestResultTaskMetadata(t *testing.T) {
	r, s := testTrees(t)
	res := Run(r, s, DefaultConfig(8, 8, 400))
	if res.TasksCreated < 8 {
		t.Fatalf("TasksCreated = %d, want >= procs", res.TasksCreated)
	}
	// With dynamic assignment every task is taken from the queue; the
	// per-processor Tasks counters must sum to m.
	total := 0
	for _, p := range res.PerProc {
		total += p.Tasks
	}
	if total != res.TasksCreated {
		t.Fatalf("per-proc task takes sum to %d, want %d", total, res.TasksCreated)
	}
}

func TestStolenAccounting(t *testing.T) {
	r, s := testTrees(t)
	cfg := DefaultConfig(8, 8, 400).Variant("lsr")
	cfg.Reassign = ReassignAll
	res := Run(r, s, cfg)
	if res.Reassignments == 0 {
		t.Skip("no reassignments in this draw")
	}
	stolen, stolenFrom := 0, 0
	for _, p := range res.PerProc {
		stolen += p.Stolen
		stolenFrom += p.StolenFrom
	}
	if stolen != stolenFrom {
		t.Fatalf("stolen %d != stolen-from %d", stolen, stolenFrom)
	}
	if stolen == 0 {
		t.Fatal("reassignments recorded but no pairs moved")
	}
}
