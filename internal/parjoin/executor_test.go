package parjoin

import (
	"testing"

	"spjoin/internal/join"
)

// fakeState builds a runState with hand-crafted processor deques for unit
// testing the work-stealing internals without a simulation.
func fakeState(reassign Reassign, taskLevel int, pendings ...[]join.NodePair) *runState {
	st := &runState{
		cfg:       Config{Reassign: reassign, MinSteal: 2, Victim: MostLoaded},
		taskLevel: taskLevel,
	}
	for i, pending := range pendings {
		ps := &procState{id: i, pending: pending}
		st.procs = append(st.procs, ps)
	}
	return st
}

func pairAt(level int) join.NodePair {
	return join.NodePair{RLevel: level, SLevel: level}
}

func TestWorkReport(t *testing.T) {
	st := fakeState(ReassignAll, 2,
		[]join.NodePair{pairAt(2), pairAt(1), pairAt(0), pairAt(0)})
	hl, ns, ok := st.workReport(st.procs[0])
	if !ok || hl != 2 || ns != 1 {
		t.Fatalf("workReport = (%d,%d,%v), want (2,1,true)", hl, ns, ok)
	}
	// Root-only mode counts only task-level pairs.
	st.cfg.Reassign = ReassignRoot
	hl, ns, ok = st.workReport(st.procs[0])
	if !ok || hl != 2 || ns != 1 {
		t.Fatalf("root workReport = (%d,%d,%v)", hl, ns, ok)
	}
	// No stealable work.
	st2 := fakeState(ReassignRoot, 2, []join.NodePair{pairAt(0)})
	if _, _, ok := st2.workReport(st2.procs[0]); ok {
		t.Fatal("workReport found stealable leaf pairs in root mode")
	}
}

func TestSplitWorkloadTakesBottomHalf(t *testing.T) {
	// Stack loaded reversed: bottom (index 0) = last task in sweep order.
	pending := []join.NodePair{
		{RLevel: 1, SLevel: 1, RPage: 5}, // bottom: sweep-last
		{RLevel: 1, SLevel: 1, RPage: 4},
		{RLevel: 1, SLevel: 1, RPage: 3},
		{RLevel: 1, SLevel: 1, RPage: 2}, // top: sweep-next
	}
	st := fakeState(ReassignAll, 1, pending)
	moved := st.splitWorkload(st.procs[0])
	if len(moved) != 2 {
		t.Fatalf("moved %d pairs, want half = 2", len(moved))
	}
	// Bottom-most (pages 5, 4) are taken, returned in sweep order (4, 5).
	if moved[0].RPage != 4 || moved[1].RPage != 5 {
		t.Fatalf("moved = %v, want sweep order pages 4,5", moved)
	}
	// Victim keeps the rest in order.
	left := st.procs[0].pending
	if len(left) != 2 || left[0].RPage != 3 || left[1].RPage != 2 {
		t.Fatalf("victim left with %v", left)
	}
}

func TestSplitWorkloadRespectsMinSteal(t *testing.T) {
	st := fakeState(ReassignAll, 1, []join.NodePair{pairAt(1)})
	if moved := st.splitWorkload(st.procs[0]); moved != nil {
		t.Fatalf("split below MinSteal moved %v", moved)
	}
}

func TestPickVictimMostLoaded(t *testing.T) {
	st := fakeState(ReassignAll, 2,
		[]join.NodePair{}, // thief
		[]join.NodePair{pairAt(0), pairAt(0), pairAt(0)}, // low level
		[]join.NodePair{pairAt(2), pairAt(2)},            // high level
		[]join.NodePair{pairAt(2), pairAt(2), pairAt(2)}, // high level, more
	)
	victim := st.pickVictim(st.procs[0])
	if victim == nil || victim.id != 3 {
		t.Fatalf("picked victim %v, want processor 3 (hl=2, ns=3)", victim)
	}
}

func TestPickVictimExcludesSelfAndEmpty(t *testing.T) {
	st := fakeState(ReassignAll, 1,
		[]join.NodePair{pairAt(1), pairAt(1)},
		[]join.NodePair{},
	)
	// Processor 0 asking: only processor 1 is other, but it has nothing.
	if v := st.pickVictim(st.procs[0]); v != nil {
		t.Fatalf("picked empty victim %d", v.id)
	}
	// Processor 1 asking: processor 0 qualifies.
	if v := st.pickVictim(st.procs[1]); v == nil || v.id != 0 {
		t.Fatal("did not pick the loaded processor")
	}
}

func TestStealableModes(t *testing.T) {
	st := fakeState(ReassignNone, 2)
	if st.stealable(pairAt(2)) {
		t.Fatal("ReassignNone stole")
	}
	st.cfg.Reassign = ReassignRoot
	if !st.stealable(pairAt(2)) || st.stealable(pairAt(1)) {
		t.Fatal("ReassignRoot wrong levels")
	}
	st.cfg.Reassign = ReassignAll
	if !st.stealable(pairAt(0)) || !st.stealable(pairAt(2)) {
		t.Fatal("ReassignAll must take everything")
	}
}
