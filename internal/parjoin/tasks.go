package parjoin

import (
	"spjoin/internal/join"
	"spjoin/internal/rtree"
)

// CreateTasks performs the sequential task-creation phase (§3.1): starting
// from the pair of roots, the trees are expanded level by level — always in
// local plane-sweep order — until at least minTasks pairs of subtrees exist
// or only leaf pairs remain. With realistic trees a single expansion
// suffices and the tasks are the m intersecting pairs of root entries.
//
// The returned level is the maximum subtree level among the tasks (the
// "root level" for reassignment purposes), and comparisons counts the
// rectangle tests spent (the paper treats this initialization as negligible,
// and so does the executor: the cost is reported but not charged).
func CreateTasks(r, s *rtree.Tree, opts join.Options, minTasks int) (tasks []join.NodePair, level int, comparisons int) {
	root, ok := join.RootPair(r, s)
	if !ok {
		return nil, 0, 0
	}
	return join.CreateTasks(join.DirectSource{R: r, S: s}, root, opts, minTasks)
}

// splitRange partitions tasks into n contiguous blocks in plane-sweep order:
// the first (len mod n) processors receive ⌈m/n⌉ tasks, the others ⌊m/n⌋
// (§3.1, static range assignment).
func splitRange(tasks []join.NodePair, n int) [][]join.NodePair {
	out := make([][]join.NodePair, n)
	m := len(tasks)
	base := m / n
	extra := m % n
	pos := 0
	for i := 0; i < n; i++ {
		size := base
		if i < extra {
			size++
		}
		out[i] = tasks[pos : pos+size]
		pos += size
	}
	return out
}

// splitRoundRobin deals tasks to processors round-robin in plane-sweep
// order (§3.3, static round-robin assignment).
func splitRoundRobin(tasks []join.NodePair, n int) [][]join.NodePair {
	out := make([][]join.NodePair, n)
	for i, t := range tasks {
		out[i%n] = append(out[i%n], t)
	}
	return out
}
