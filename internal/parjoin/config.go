// Package parjoin implements the paper's parallel spatial join (§3) on the
// simulated shared-virtual-memory machine: task creation from the roots of
// the two R*-trees, the three task-assignment strategies (static range,
// static round-robin, dynamic), both buffer organizations (local LRU
// buffers, global SVM buffer), and load balancing through task reassignment
// with configurable victim selection. Every run happens in virtual time on
// the deterministic kernel of package sim, so disk accesses, per-processor
// run times, response time and speed-up are exactly reproducible.
package parjoin

import (
	"fmt"

	"spjoin/internal/buffer"
	"spjoin/internal/join"
	"spjoin/internal/metrics"
	"spjoin/internal/refine"
	"spjoin/internal/sim"
	"spjoin/internal/storage"
	"spjoin/internal/timeline"
)

// Assignment selects how tasks reach the processors (§3.1, §3.3).
type Assignment uint8

const (
	// StaticRange gives each processor a contiguous block of tasks in local
	// plane-sweep order ("static range assignment"; the paper pairs it with
	// local buffers: variant lsr).
	StaticRange Assignment = iota
	// StaticRoundRobin deals tasks round-robin in plane-sweep order so that
	// spatially adjacent tasks run on different processors at the same time
	// (variant gsrr with a global buffer).
	StaticRoundRobin
	// Dynamic keeps all tasks in a shared queue; processors take the next
	// task when idle (variant gd).
	Dynamic
	// StaticEstimated balances statically by estimated task cost (LPT bin
	// packing over the estimator of package estimate) — the §3.4
	// alternative the paper dismisses, kept for the comparison experiment.
	StaticEstimated
)

func (a Assignment) String() string {
	switch a {
	case StaticRange:
		return "static-range"
	case StaticRoundRobin:
		return "static-round-robin"
	case Dynamic:
		return "dynamic"
	case StaticEstimated:
		return "static-estimated"
	default:
		return fmt.Sprintf("Assignment(%d)", uint8(a))
	}
}

// BufferOrg selects the buffer organization (§3.2).
type BufferOrg uint8

const (
	// LocalOrg gives every processor a private LRU buffer.
	LocalOrg BufferOrg = iota
	// GlobalOrg forms one logical buffer over all processors' memories.
	GlobalOrg
	// SharedNothingOrg removes the shared memory entirely (§5 future work):
	// each disk belongs to one processor and remote pages are shipped as
	// copies over the interconnect.
	SharedNothingOrg
)

func (b BufferOrg) String() string {
	switch b {
	case LocalOrg:
		return "local"
	case GlobalOrg:
		return "global"
	case SharedNothingOrg:
		return "shared-nothing"
	default:
		return fmt.Sprintf("BufferOrg(%d)", uint8(b))
	}
}

// Reassign selects the task-reassignment (load balancing) mode of §3.4.
type Reassign uint8

const (
	// ReassignNone disables load balancing: a processor that runs out of
	// work stays idle.
	ReassignNone Reassign = iota
	// ReassignRoot lets idle processors take over unstarted tasks (pairs of
	// subtrees on the root level) from a loaded processor.
	ReassignRoot
	// ReassignAll additionally allows splitting work at every directory
	// level: any pending subtree pair may move.
	ReassignAll
)

func (r Reassign) String() string {
	switch r {
	case ReassignNone:
		return "none"
	case ReassignRoot:
		return "root-level"
	case ReassignAll:
		return "all-levels"
	default:
		return fmt.Sprintf("Reassign(%d)", uint8(r))
	}
}

// Victim selects which processor an idle processor helps (§3.4).
type Victim uint8

const (
	// MostLoaded picks the processor with the highest reported work load
	// (hl, ns): the highest level with non-processed subtree pairs, count
	// of pairs there (test series a).
	MostLoaded Victim = iota
	// RandomVictim picks an arbitrary eligible processor, following
	// Shatdal/Naughton (test series b).
	RandomVictim
)

func (v Victim) String() string {
	switch v {
	case MostLoaded:
		return "most-loaded"
	case RandomVictim:
		return "random"
	default:
		return fmt.Sprintf("Victim(%d)", uint8(v))
	}
}

// CPUParams are the virtual-time costs of CPU work.
type CPUParams struct {
	// PerComparison is charged per rectangle intersection test during node
	// expansion (plane sweep / nested loops / restriction).
	PerComparison sim.Time
	// TaskQueueOp is charged per shared-task-queue operation (dynamic
	// assignment only).
	TaskQueueOp sim.Time
	// ReassignOverhead is charged to the idle processor per successful
	// task reassignment (the paper reports at most 100 ms total).
	ReassignOverhead sim.Time
}

// DefaultCPUParams returns the calibration used by the experiments:
// 2 µs per rectangle test, 0.1 ms per task-queue access, 1 ms per
// reassignment.
func DefaultCPUParams() CPUParams {
	return CPUParams{PerComparison: 0.002, TaskQueueOp: 0.1, ReassignOverhead: 1}
}

// Config describes one parallel join run.
type Config struct {
	// Procs is the number of simulated processors n (paper: 1..24).
	Procs int
	// Disks is the number of disks d of the simulated array.
	Disks int
	// BufferPages is the TOTAL LRU capacity over all processors, in R*-tree
	// pages; each processor's share is BufferPages/Procs (at least 1).
	BufferPages int
	// Buffer selects local or global buffer organization.
	Buffer BufferOrg
	// Assign selects the task assignment strategy.
	Assign Assignment
	// Reassign selects the load-balancing mode.
	Reassign Reassign
	// Victim selects the processor-to-help policy.
	Victim Victim
	// MinSteal is the minimum number of pending pairs a victim must have
	// before its work load is split (the "minimum size worth dividing").
	MinSteal int
	// TaskFactor controls task creation: tasks are created from the deepest
	// level at which at least TaskFactor*Procs pairs exist (the paper
	// requires m >> n and descends a level otherwise).
	TaskFactor int
	// PathBuffer enables the per-processor R*-tree path buffers of §2.2.
	PathBuffer bool
	// Seed drives the RandomVictim policy.
	Seed int64

	CPU         CPUParams
	Disk        storage.DiskParams
	BufferCosts buffer.CostParams
	Refine      refine.CostModel
	Join        join.Options

	// ShipCost is the page-shipping cost of the shared-nothing
	// organization (ignored otherwise; 0 uses buffer.DefaultShipCost).
	ShipCost sim.Time

	// CollectCandidates stores every filter result in Result.Candidates
	// (test support; large at full scale).
	CollectCandidates bool

	// Metrics, when set, receives every counter of the run under the
	// "sim." prefix (disk reads by kind and by tree level, buffer access
	// classes, join kernel counters, reassignments, per-processor pairs, a
	// queue-depth histogram, and finish-time gauges). Counting never
	// advances virtual time, so an instrumented run reproduces the
	// uninstrumented Result exactly — the golden-metrics harness pins this.
	Metrics *metrics.Registry
	// Trace, when set, receives one structured Event per join occurrence
	// (pair expanded, buffer hit/miss, disk read, reassignment, idle span)
	// stamped with virtual time. Nil disables all event construction.
	Trace metrics.TraceSink

	// Timeline, when set, records a span per simulated interval (cpu-sweep,
	// disk-wait, buffer accesses, idle waits, reassignments) keyed to
	// virtual time — the input of the Perfetto exporter and the
	// critical-path analyzer. Like Metrics/Trace it is observation-only:
	// recording never advances the clock, so a profiled run reproduces the
	// unprofiled Result bit for bit. Size it with
	// timeline.NewRecorder(Procs, Disks).
	Timeline *timeline.Recorder
}

// DefaultConfig returns the paper's best variant (gd with reassignment on
// all levels) with the default cost calibration: n processors, d disks and
// the given total buffer size.
func DefaultConfig(procs, disks, bufferPages int) Config {
	return Config{
		Procs:       procs,
		Disks:       disks,
		BufferPages: bufferPages,
		Buffer:      GlobalOrg,
		Assign:      Dynamic,
		Reassign:    ReassignAll,
		Victim:      MostLoaded,
		MinSteal:    2,
		TaskFactor:  3,
		PathBuffer:  true,
		CPU:         DefaultCPUParams(),
		Disk:        storage.DefaultDiskParams(),
		BufferCosts: buffer.DefaultCostParams(),
		Refine:      refine.DefaultCostModel(),
	}
}

// Variant returns cfg restyled as one of the paper's three named variants:
// "lsr" (local buffers, static range), "gsrr" (global buffer, static
// round-robin) or "gd" (global buffer, dynamic assignment).
func (c Config) Variant(name string) Config {
	switch name {
	case "lsr":
		c.Buffer, c.Assign = LocalOrg, StaticRange
	case "gsrr":
		c.Buffer, c.Assign = GlobalOrg, StaticRoundRobin
	case "gd":
		c.Buffer, c.Assign = GlobalOrg, Dynamic
	default:
		panic("parjoin: unknown variant " + name)
	}
	return c
}

// validate panics on unusable configurations (programmer error).
func (c Config) validate() {
	if c.Procs < 1 {
		panic(fmt.Sprintf("parjoin: Procs = %d, need >= 1", c.Procs))
	}
	if c.Disks < 1 {
		panic(fmt.Sprintf("parjoin: Disks = %d, need >= 1", c.Disks))
	}
	if c.BufferPages < c.Procs {
		panic(fmt.Sprintf("parjoin: BufferPages = %d < Procs = %d (each processor needs at least one page)",
			c.BufferPages, c.Procs))
	}
	if c.MinSteal < 1 {
		panic(fmt.Sprintf("parjoin: MinSteal = %d, need >= 1", c.MinSteal))
	}
	if c.TaskFactor < 1 {
		panic(fmt.Sprintf("parjoin: TaskFactor = %d, need >= 1", c.TaskFactor))
	}
}
