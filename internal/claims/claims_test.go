package claims

import (
	"bytes"
	"strings"
	"testing"

	"spjoin/internal/runstore"
)

// buildStore assembles a synthetic validated store from (exp, params,
// metrics) triples.
func buildStore(t *testing.T, recs ...runstore.Record) *runstore.Store {
	t.Helper()
	var buf bytes.Buffer
	w := runstore.NewWriter(&buf)
	for _, rec := range recs {
		rec.Seed, rec.Engine = 1, "sim"
		if rec.Scale == 0 {
			rec.Scale = 1
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := runstore.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rec(exp string, params map[string]string, metrics map[string]float64) runstore.Record {
	return runstore.Record{Experiment: exp, Params: params, Metrics: metrics}
}

func cell(exp string, params map[string]string) CellRef {
	return CellRef{Exp: exp, Params: params}
}

func one(t *testing.T, c Claim, s *runstore.Store) Result {
	t.Helper()
	rep := Evaluate([]Claim{c}, s)
	if len(rep.Results) != 1 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	return rep.Results[0]
}

func TestOrdering(t *testing.T) {
	s := buildStore(t,
		rec("f", map[string]string{"v": "gd"}, map[string]float64{"disk": 100}),
		rec("f", map[string]string{"v": "gsrr"}, map[string]float64{"disk": 110}),
		rec("f", map[string]string{"v": "lsr"}, map[string]float64{"disk": 108}),
	)
	c := Claim{ID: "ord", Kind: Ordering, Metric: "disk",
		Groups: [][]CellRef{{cell("f", map[string]string{"v": "gd"}), cell("f", map[string]string{"v": "gsrr"})}}}
	if res := one(t, c, s); !res.Pass {
		t.Fatalf("ascending pair failed: %s", res.Detail)
	}
	// gsrr -> lsr decreases by ~2%: fails at slack 0, passes at slack 5%.
	c.Groups = [][]CellRef{{cell("f", map[string]string{"v": "gsrr"}), cell("f", map[string]string{"v": "lsr"})}}
	res := one(t, c, s)
	if res.Pass {
		t.Fatal("2% decrease passed with zero slack")
	}
	if !strings.Contains(res.Detail, "v=lsr") {
		t.Fatalf("detail must name the offending cell: %s", res.Detail)
	}
	c.Slack = 0.05
	if res := one(t, c, s); !res.Pass {
		t.Fatalf("2%% decrease failed with 5%% slack: %s", res.Detail)
	}
}

func TestRatioAndBounds(t *testing.T) {
	s := buildStore(t,
		rec("f", map[string]string{"r": "all"}, map[string]float64{"t": 60}),
		rec("f", map[string]string{"r": "none"}, map[string]float64{"t": 100}),
	)
	c := Claim{ID: "ratio", Kind: Ratio, Metric: "t", Min: 0.4, Max: 0.8,
		Groups: [][]CellRef{{cell("f", map[string]string{"r": "all"}), cell("f", map[string]string{"r": "none"})}}}
	if res := one(t, c, s); !res.Pass {
		t.Fatalf("ratio 0.6 in [0.4, 0.8] failed: %s", res.Detail)
	}
	c.Max = 0.5
	if res := one(t, c, s); res.Pass {
		t.Fatal("ratio 0.6 passed with max 0.5")
	}
	b := Claim{ID: "bound", Kind: Bound, Metric: "t", Min: 50, Max: 70,
		Groups: [][]CellRef{{cell("f", map[string]string{"r": "all"})}}}
	if res := one(t, b, s); !res.Pass {
		t.Fatalf("bound failed: %s", res.Detail)
	}
	b.Max = 55
	if res := one(t, b, s); res.Pass || !strings.Contains(res.Detail, "r=all") {
		t.Fatalf("bound must fail naming the cell: %+v", res)
	}
}

func TestRatioOrder(t *testing.T) {
	// Gain of X (200/3200 pages) = 2.0; gain of Y = 1.5: X profits more.
	s := buildStore(t,
		rec("f", map[string]string{"v": "x", "b": "200"}, map[string]float64{"disk": 200}),
		rec("f", map[string]string{"v": "x", "b": "3200"}, map[string]float64{"disk": 100}),
		rec("f", map[string]string{"v": "y", "b": "200"}, map[string]float64{"disk": 150}),
		rec("f", map[string]string{"v": "y", "b": "3200"}, map[string]float64{"disk": 100}),
	)
	g := [][]CellRef{{
		cell("f", map[string]string{"v": "x", "b": "200"}), cell("f", map[string]string{"v": "x", "b": "3200"}),
		cell("f", map[string]string{"v": "y", "b": "200"}), cell("f", map[string]string{"v": "y", "b": "3200"}),
	}}
	c := Claim{ID: "ro", Kind: RatioOrder, Metric: "disk", Groups: g}
	if res := one(t, c, s); !res.Pass {
		t.Fatalf("gain 2.0 >= 1.5 failed: %s", res.Detail)
	}
	// Swapped: 1.5 >= 2.0 fails.
	swapped := [][]CellRef{{g[0][2], g[0][3], g[0][0], g[0][1]}}
	c.Groups = swapped
	if res := one(t, c, s); res.Pass {
		t.Fatal("reversed ratio order passed")
	}
}

func TestEqualExact(t *testing.T) {
	s := buildStore(t,
		rec("f", map[string]string{"r": "none"}, map[string]float64{"disk": 16243, "t": 162.8}),
		rec("f", map[string]string{"r": "root"}, map[string]float64{"disk": 16243, "t": 162.8}),
		rec("f", map[string]string{"r": "all"}, map[string]float64{"disk": 16237, "t": 154.5}),
	)
	c := Claim{ID: "eq", Kind: Equal, Metrics: []string{"disk", "t"},
		Groups: [][]CellRef{{cell("f", map[string]string{"r": "root"}), cell("f", map[string]string{"r": "none"})}}}
	if res := one(t, c, s); !res.Pass {
		t.Fatalf("identical cells not equal: %s", res.Detail)
	}
	c.Groups = [][]CellRef{{cell("f", map[string]string{"r": "all"}), cell("f", map[string]string{"r": "none"})}}
	if res := one(t, c, s); res.Pass {
		t.Fatal("different cells compared equal")
	}
}

func TestMonotone(t *testing.T) {
	s := buildStore(t,
		rec("f9", map[string]string{"d": "n", "n": "1"}, map[string]float64{"t": 1000}),
		rec("f9", map[string]string{"d": "n", "n": "2"}, map[string]float64{"t": 520}),
		rec("f9", map[string]string{"d": "n", "n": "10"}, map[string]float64{"t": 130}),
		rec("f9", map[string]string{"d": "n", "n": "24"}, map[string]float64{"t": 60}),
	)
	c := Claim{ID: "mono", Kind: Monotone, Metric: "t", Dir: -1,
		SeriesA: Series{Exp: "f9", Fixed: map[string]string{"d": "n"}, Axis: "n"}}
	if res := one(t, c, s); !res.Pass {
		t.Fatalf("decreasing series failed: %s", res.Detail)
	}
	// Numeric axis order matters: n=10 must sort between 2 and 24. A
	// lexical sort would put "10" first and break monotonicity.
	c.Dir = 1
	if res := one(t, c, s); res.Pass {
		t.Fatal("decreasing series passed as non-decreasing")
	}
}

func TestCrossover(t *testing.T) {
	s := buildStore(t,
		// A (d=8) better at small n, worse at large n.
		rec("f9", map[string]string{"d": "8", "n": "4"}, map[string]float64{"t": 280}),
		rec("f9", map[string]string{"d": "8", "n": "8"}, map[string]float64{"t": 155}),
		rec("f9", map[string]string{"d": "8", "n": "24"}, map[string]float64{"t": 82}),
		rec("f9", map[string]string{"d": "n", "n": "4"}, map[string]float64{"t": 315}),
		rec("f9", map[string]string{"d": "n", "n": "8"}, map[string]float64{"t": 155}),
		rec("f9", map[string]string{"d": "n", "n": "24"}, map[string]float64{"t": 50}),
	)
	c := Claim{ID: "cross", Kind: Crossover, Metric: "t", Slack: 0.02,
		SeriesA: Series{Exp: "f9", Fixed: map[string]string{"d": "8"}, Axis: "n"},
		SeriesB: Series{Exp: "f9", Fixed: map[string]string{"d": "n"}, Axis: "n"}}
	if res := one(t, c, s); !res.Pass {
		t.Fatalf("crossover not detected: %s", res.Detail)
	}
	// Reversed series never cross in the required direction.
	c.SeriesA, c.SeriesB = c.SeriesB, c.SeriesA
	if res := one(t, c, s); res.Pass {
		t.Fatal("reverse crossover passed")
	}
}

func TestMissingCellFailsWithName(t *testing.T) {
	s := buildStore(t, rec("f", map[string]string{"v": "gd"}, map[string]float64{"disk": 1}))
	c := Claim{ID: "miss", Kind: Ordering, Metric: "disk",
		Groups: [][]CellRef{{cell("f", map[string]string{"v": "gd"}), cell("f", map[string]string{"v": "nope"})}}}
	res := one(t, c, s)
	if res.Pass || !strings.Contains(res.Detail, "v=nope") {
		t.Fatalf("missing cell must fail naming it: %+v", res)
	}
}

func TestReportRender(t *testing.T) {
	s := buildStore(t,
		rec("f", map[string]string{"v": "a"}, map[string]float64{"m": 1}),
		rec("f", map[string]string{"v": "b"}, map[string]float64{"m": 2}),
	)
	cs := []Claim{
		{ID: "good", Figure: "Figure 5", Text: "a <= b", Kind: Ordering, Metric: "m",
			Groups: [][]CellRef{{cell("f", map[string]string{"v": "a"}), cell("f", map[string]string{"v": "b"})}}},
		{ID: "bad", Figure: "Figure 5", Text: "b <= a", Kind: Ordering, Metric: "m",
			Groups: [][]CellRef{{cell("f", map[string]string{"v": "b"}), cell("f", map[string]string{"v": "a"})}}},
	}
	rep := Evaluate(cs, s)
	if rep.Passed() != 1 || rep.Failed() != 1 {
		t.Fatalf("passed=%d failed=%d", rep.Passed(), rep.Failed())
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"PASS good", "FAIL bad", "offending cells", "1 passed, 1 failed, 0 skipped, 2 total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestMinScaleSkips(t *testing.T) {
	s := buildStore(t, rec("f", map[string]string{"v": "a"}, map[string]float64{"m": 1}))
	// buildStore stamps Scale = 1; a claim gated at 2 must skip, and a
	// skipped claim counts neither as pass nor fail.
	c := Claim{ID: "gated", Kind: Bound, Metric: "m", Min: 99, Max: 100, MinScale: 2,
		Groups: [][]CellRef{{cell("f", map[string]string{"v": "a"})}}}
	rep := Evaluate([]Claim{c}, s)
	res := rep.Results[0]
	if !res.Skipped || res.Pass {
		t.Fatalf("gated claim not skipped: %+v", res)
	}
	if rep.Failed() != 0 || rep.Skipped() != 1 {
		t.Fatalf("failed=%d skipped=%d", rep.Failed(), rep.Skipped())
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "SKIP gated") {
		t.Fatalf("render missing SKIP line:\n%s", buf.String())
	}
	// At or above MinScale the claim evaluates normally (and here fails).
	c.MinScale = 1
	if res := one(t, c, s); res.Skipped || res.Pass {
		t.Fatalf("claim at MinScale must evaluate: %+v", res)
	}
}

func TestMinScaleUsesStoreMinimum(t *testing.T) {
	// Concatenated stores may mix scales; gating must use the minimum, not
	// whichever record happens to come first.
	full := rec("f", map[string]string{"v": "a"}, map[string]float64{"m": 1})
	full.Scale = 1
	small := rec("g", map[string]string{"v": "a"}, map[string]float64{"m": 1})
	small.Scale = 0.1
	s := buildStore(t, full, small)
	c := Claim{ID: "gated", Kind: Bound, Metric: "m", Min: 0, Max: 2, MinScale: 1,
		Groups: [][]CellRef{{cell("f", map[string]string{"v": "a"})}}}
	if res := one(t, c, s); !res.Skipped {
		t.Fatalf("mixed-scale store (min 0.1) did not skip MinScale-1 claim: %+v", res)
	}
	// Same records in the opposite order must gate identically.
	s = buildStore(t, small, full)
	if res := one(t, c, s); !res.Skipped {
		t.Fatalf("record order changed MinScale gating: %+v", res)
	}
}
