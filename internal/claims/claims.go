// Package claims is the declarative claim engine of the experiment
// observatory: the paper's qualitative results — orderings ("gd needs the
// fewest disk accesses"), monotonicity ("response time keeps falling"),
// ratios within tolerance ("total work rises only slightly"), crossovers
// ("d=8 beats d=n until n > 10") — encoded as data over run-store grid
// cells and evaluated into a pass/fail report that names the offending
// cells. paper.go lists every check-mark EXPERIMENTS.md asserts;
// cmd/experiments -check gates them.
package claims

import (
	"fmt"
	"io"
	"strings"

	"spjoin/internal/runstore"
	"spjoin/internal/stats"
)

// Kind enumerates the predicate shapes.
type Kind uint8

const (
	// Ordering: within each group, the metric is non-decreasing cell to
	// cell (each next value >= previous * (1 - Slack)).
	Ordering Kind = iota
	// Ratio: each group is a pair [A, B]; metric(A)/metric(B) must lie in
	// [Min, Max].
	Ratio
	// RatioOrder: each group is [A1, B1, A2, B2]; the first pair's ratio
	// must be >= the second pair's ratio * (1 - Slack). Encodes "X
	// improves more than Y" claims.
	RatioOrder
	// Equal: each group is a pair [A, B]; every metric in Metrics must
	// agree within AbsTol (0 = exact — the "root-level reassignment is a
	// no-op for gd" claim).
	Equal
	// Bound: each group is a single cell; the metric must lie in
	// [Min, Max].
	Bound
	// Monotone: each series' metric, swept along its axis, moves in
	// direction Dir (+1 non-decreasing, -1 non-increasing) within Slack
	// per step.
	Monotone
	// Crossover: SeriesA and SeriesB, aligned on their shared axis, swap
	// order: A is below B (by more than Slack, relatively) at some axis
	// point and above B (by more than Slack) at a later one.
	Crossover
)

func (k Kind) String() string {
	switch k {
	case Ordering:
		return "ordering"
	case Ratio:
		return "ratio"
	case RatioOrder:
		return "ratio-order"
	case Equal:
		return "equal"
	case Bound:
		return "bound"
	case Monotone:
		return "monotone"
	case Crossover:
		return "crossover"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// CellRef addresses one run-store cell.
type CellRef struct {
	Exp    string
	Params map[string]string
}

func (c CellRef) String() string {
	return (&runstore.Record{Experiment: c.Exp, Params: c.Params}).Key()
}

// Series addresses a sweep: every cell of Exp matching Fixed, ordered by
// the numeric-aware value of the Axis param.
type Series struct {
	Exp   string
	Fixed map[string]string
	Axis  string
}

// Claim is one machine-checked paper claim.
type Claim struct {
	// ID is the stable identifier (e.g. "fig5-gd-fewest-disk"); Figure
	// names the paper figure it reproduces; Text is the prose claim.
	ID, Figure, Text string
	Kind             Kind
	// Metric is the compared measure; Equal uses Metrics (a list).
	Metric  string
	Metrics []string
	// Groups instantiates the predicate over concrete cells (see Kind).
	Groups [][]CellRef
	// SeriesA/SeriesB drive Monotone (A, and B when set) and Crossover.
	SeriesA, SeriesB Series
	// Dir is the Monotone direction: +1 non-decreasing, -1 non-increasing.
	Dir int
	// Slack is the relative slack of Ordering/RatioOrder/Monotone and the
	// significance margin of Crossover.
	Slack float64
	// Min and Max bound Ratio and Bound.
	Min, Max float64
	// AbsTol is Equal's absolute tolerance.
	AbsTol float64
	// MinScale skips the claim (not fails) on stores below this workload
	// scale: some full-scale shapes invert on tiny workloads (buffer
	// floors, shipping overhead vs. near-zero work) — those claims are
	// checked by the weekly full-scale run only.
	MinScale float64
}

// Result is one claim's evaluation.
type Result struct {
	Claim   Claim
	Pass    bool
	Skipped bool   // below the claim's MinScale; neither pass nor fail
	Detail  string // offending cells and values, or a pass summary
}

// Report is the evaluation of a claim set against one run store.
type Report struct {
	Results []Result
}

// Evaluate checks every claim against the store. Claims whose MinScale
// exceeds the store's workload scale are skipped, not failed. JSONL
// stores concatenate, so a store may mix scales; gating uses the minimum
// scale across all records — a claim is only evaluated when every record
// it could touch was run at sufficient scale.
func Evaluate(cs []Claim, s *runstore.Store) *Report {
	scale := 0.0
	for i, rec := range s.Records {
		if i == 0 || rec.Scale < scale {
			scale = rec.Scale
		}
	}
	rep := &Report{}
	for _, c := range cs {
		if c.MinScale > 0 && scale < c.MinScale {
			rep.Results = append(rep.Results, Result{Claim: c, Skipped: true,
				Detail: fmt.Sprintf("requires scale >= %g, store is at %g (checked by the full-scale run)", c.MinScale, scale)})
			continue
		}
		rep.Results = append(rep.Results, evalClaim(c, s))
	}
	return rep
}

// Passed, Failed and Skipped count outcomes.
func (r *Report) Passed() int {
	n := 0
	for _, res := range r.Results {
		if res.Pass {
			n++
		}
	}
	return n
}

func (r *Report) Skipped() int {
	n := 0
	for _, res := range r.Results {
		if res.Skipped {
			n++
		}
	}
	return n
}

func (r *Report) Failed() int { return len(r.Results) - r.Passed() - r.Skipped() }

// Render writes the pass/fail report; failures name the offending cells.
func (r *Report) Render(w io.Writer) {
	for _, res := range r.Results {
		mark := "PASS"
		switch {
		case res.Skipped:
			mark = "SKIP"
		case !res.Pass:
			mark = "FAIL"
		}
		fmt.Fprintf(w, "%s %-32s [%s/%s] %s\n", mark, res.Claim.ID, res.Claim.Figure, res.Claim.Kind, res.Claim.Text)
		if res.Detail != "" {
			fmt.Fprintf(w, "     %s\n", res.Detail)
		}
	}
	fmt.Fprintf(w, "\nclaims: %d passed, %d failed, %d skipped, %d total\n",
		r.Passed(), r.Failed(), r.Skipped(), len(r.Results))
}

func evalClaim(c Claim, s *runstore.Store) Result {
	res := Result{Claim: c}
	var err error
	switch c.Kind {
	case Ordering:
		res.Pass, res.Detail, err = evalOrdering(c, s)
	case Ratio:
		res.Pass, res.Detail, err = evalRatio(c, s)
	case RatioOrder:
		res.Pass, res.Detail, err = evalRatioOrder(c, s)
	case Equal:
		res.Pass, res.Detail, err = evalEqual(c, s)
	case Bound:
		res.Pass, res.Detail, err = evalBound(c, s)
	case Monotone:
		res.Pass, res.Detail, err = evalMonotone(c, s)
	case Crossover:
		res.Pass, res.Detail, err = evalCrossover(c, s)
	default:
		err = fmt.Errorf("unknown predicate kind %v", c.Kind)
	}
	if err != nil {
		res.Pass = false
		res.Detail = err.Error()
	}
	return res
}

func metricOf(s *runstore.Store, ref CellRef, metric string) (float64, error) {
	return s.Metric(ref.Exp, ref.Params, metric)
}

func evalOrdering(c Claim, s *runstore.Store) (bool, string, error) {
	var bad []string
	for _, group := range c.Groups {
		if len(group) < 2 {
			return false, "", fmt.Errorf("ordering group needs >= 2 cells, got %d", len(group))
		}
		prev, err := metricOf(s, group[0], c.Metric)
		if err != nil {
			return false, "", err
		}
		for _, ref := range group[1:] {
			v, err := metricOf(s, ref, c.Metric)
			if err != nil {
				return false, "", err
			}
			if v < prev*(1-c.Slack) {
				bad = append(bad, fmt.Sprintf("%s: %s=%g < %g", ref, c.Metric, v, prev))
			}
			prev = v
		}
	}
	if len(bad) > 0 {
		return false, "offending cells: " + strings.Join(bad, "; "), nil
	}
	return true, fmt.Sprintf("%d group(s) ordered on %s", len(c.Groups), c.Metric), nil
}

func evalRatio(c Claim, s *runstore.Store) (bool, string, error) {
	var bad, vals []string
	for _, group := range c.Groups {
		if len(group) != 2 {
			return false, "", fmt.Errorf("ratio group needs exactly 2 cells, got %d", len(group))
		}
		a, err := metricOf(s, group[0], c.Metric)
		if err != nil {
			return false, "", err
		}
		b, err := metricOf(s, group[1], c.Metric)
		if err != nil {
			return false, "", err
		}
		if b == 0 {
			return false, "", fmt.Errorf("ratio denominator %s: %s = 0", group[1], c.Metric)
		}
		r := a / b
		vals = append(vals, fmt.Sprintf("%.3f", r))
		if r < c.Min || r > c.Max {
			bad = append(bad, fmt.Sprintf("%s / %s: %s ratio %.4f outside [%g, %g]",
				group[0], group[1], c.Metric, r, c.Min, c.Max))
		}
	}
	if len(bad) > 0 {
		return false, "offending cells: " + strings.Join(bad, "; "), nil
	}
	return true, fmt.Sprintf("ratios %s within [%g, %g]", strings.Join(vals, ", "), c.Min, c.Max), nil
}

func evalRatioOrder(c Claim, s *runstore.Store) (bool, string, error) {
	var bad, vals []string
	for _, group := range c.Groups {
		if len(group) != 4 {
			return false, "", fmt.Errorf("ratio-order group needs exactly 4 cells, got %d", len(group))
		}
		var v [4]float64
		for i, ref := range group {
			m, err := metricOf(s, ref, c.Metric)
			if err != nil {
				return false, "", err
			}
			v[i] = m
		}
		if v[1] == 0 || v[3] == 0 {
			return false, "", fmt.Errorf("ratio-order zero denominator in group %v", group)
		}
		r1, r2 := v[0]/v[1], v[2]/v[3]
		vals = append(vals, fmt.Sprintf("%.3f>=%.3f", r1, r2))
		if r1 < r2*(1-c.Slack) {
			bad = append(bad, fmt.Sprintf("%s/%s ratio %.4f < %s/%s ratio %.4f",
				group[0], group[1], r1, group[2], group[3], r2))
		}
	}
	if len(bad) > 0 {
		return false, "offending cells: " + strings.Join(bad, "; "), nil
	}
	return true, strings.Join(vals, ", "), nil
}

func evalEqual(c Claim, s *runstore.Store) (bool, string, error) {
	metrics := c.Metrics
	if len(metrics) == 0 && c.Metric != "" {
		metrics = []string{c.Metric}
	}
	if len(metrics) == 0 {
		return false, "", fmt.Errorf("equal claim lists no metrics")
	}
	var bad []string
	for _, group := range c.Groups {
		if len(group) != 2 {
			return false, "", fmt.Errorf("equal group needs exactly 2 cells, got %d", len(group))
		}
		for _, m := range metrics {
			a, err := metricOf(s, group[0], m)
			if err != nil {
				return false, "", err
			}
			b, err := metricOf(s, group[1], m)
			if err != nil {
				return false, "", err
			}
			if d := a - b; d > c.AbsTol || d < -c.AbsTol {
				bad = append(bad, fmt.Sprintf("%s vs %s: %s %g != %g", group[0], group[1], m, a, b))
			}
		}
	}
	if len(bad) > 0 {
		return false, "offending cells: " + strings.Join(bad, "; "), nil
	}
	return true, fmt.Sprintf("%d pair(s) equal on %s (tol %g)", len(c.Groups), strings.Join(metrics, ","), c.AbsTol), nil
}

func evalBound(c Claim, s *runstore.Store) (bool, string, error) {
	var bad, vals []string
	for _, group := range c.Groups {
		if len(group) != 1 {
			return false, "", fmt.Errorf("bound group needs exactly 1 cell, got %d", len(group))
		}
		v, err := metricOf(s, group[0], c.Metric)
		if err != nil {
			return false, "", err
		}
		vals = append(vals, fmt.Sprintf("%.4g", v))
		if v < c.Min || v > c.Max {
			bad = append(bad, fmt.Sprintf("%s: %s = %g outside [%g, %g]", group[0], c.Metric, v, c.Min, c.Max))
		}
	}
	if len(bad) > 0 {
		return false, "offending cells: " + strings.Join(bad, "; "), nil
	}
	return true, fmt.Sprintf("%s = %s within [%g, %g]", c.Metric, strings.Join(vals, ", "), c.Min, c.Max), nil
}

// seriesPoints resolves a series to (axis value, metric) points in axis
// order.
type point struct {
	X string
	V float64
}

func seriesPoints(s *runstore.Store, ser Series, metric string) ([]point, error) {
	recs := s.Select(ser.Exp, ser.Fixed)
	if len(recs) == 0 {
		return nil, fmt.Errorf("series %s %v: no cells in run store", ser.Exp, ser.Fixed)
	}
	var pts []point
	for _, rec := range recs {
		x, ok := rec.Params[ser.Axis]
		if !ok {
			return nil, fmt.Errorf("series cell %s has no axis %q", rec.Key(), ser.Axis)
		}
		v, ok := rec.Metrics[metric]
		if !ok {
			return nil, fmt.Errorf("series cell %s has no metric %q", rec.Key(), metric)
		}
		pts = append(pts, point{X: x, V: v})
	}
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && runstore.AxisLess(pts[j].X, pts[j-1].X); j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	return pts, nil
}

func evalMonotone(c Claim, s *runstore.Store) (bool, string, error) {
	if c.Dir != 1 && c.Dir != -1 {
		return false, "", fmt.Errorf("monotone claim needs Dir +1 or -1")
	}
	var bad []string
	series := []Series{c.SeriesA}
	if c.SeriesB.Exp != "" {
		series = append(series, c.SeriesB)
	}
	n := 0
	for _, ser := range series {
		pts, err := seriesPoints(s, ser, c.Metric)
		if err != nil {
			return false, "", err
		}
		if len(pts) < 2 {
			return false, "", fmt.Errorf("series %s %v: need >= 2 points, got %d", ser.Exp, ser.Fixed, len(pts))
		}
		n += len(pts)
		for i := 1; i < len(pts); i++ {
			prev, cur := pts[i-1].V, pts[i].V
			ok := true
			if c.Dir > 0 && cur < prev*(1-c.Slack) {
				ok = false
			}
			if c.Dir < 0 && cur > prev*(1+c.Slack) {
				ok = false
			}
			if !ok {
				bad = append(bad, fmt.Sprintf("%s %v: %s=%s -> %s breaks dir %+d (%g -> %g)",
					ser.Exp, ser.Fixed, ser.Axis, pts[i-1].X, pts[i].X, c.Dir, prev, cur))
			}
		}
	}
	if len(bad) > 0 {
		return false, "offending cells: " + strings.Join(bad, "; "), nil
	}
	return true, fmt.Sprintf("%d point(s) monotone (dir %+d, slack %g)", n, c.Dir, c.Slack), nil
}

func evalCrossover(c Claim, s *runstore.Store) (bool, string, error) {
	pa, err := seriesPoints(s, c.SeriesA, c.Metric)
	if err != nil {
		return false, "", err
	}
	pb, err := seriesPoints(s, c.SeriesB, c.Metric)
	if err != nil {
		return false, "", err
	}
	bv := map[string]float64{}
	for _, p := range pb {
		bv[p.X] = p.V
	}
	// Walk A in axis order; record the first and last significant sign.
	firstSign, lastSign := 0, 0
	var firstX, lastX string
	for _, p := range pa {
		vb, ok := bv[p.X]
		if !ok {
			continue
		}
		if stats.RelDiff(p.V, vb) <= c.Slack {
			continue // not a significant difference
		}
		sign := 1
		if p.V < vb {
			sign = -1
		}
		if firstSign == 0 {
			firstSign, firstX = sign, p.X
		}
		lastSign, lastX = sign, p.X
	}
	if firstSign == 0 {
		return false, fmt.Sprintf("series never significantly differ (slack %g)", c.Slack), nil
	}
	if firstSign == -1 && lastSign == 1 {
		return true, fmt.Sprintf("A below B at %s=%s, above at %s=%s",
			c.SeriesA.Axis, firstX, c.SeriesA.Axis, lastX), nil
	}
	return false, fmt.Sprintf("no crossover: sign at %s=%s is %+d, at %s=%s is %+d (want -1 then +1)",
		c.SeriesA.Axis, firstX, firstSign, c.SeriesA.Axis, lastX, lastSign), nil
}
