package claims

// paper.go encodes every check-mark EXPERIMENTS.md asserts as a claim the
// observatory re-checks on each run store. Tolerances are deliberately
// loose enough to hold from -scale 0.1 (the CI gate) to 1.0 (the committed
// tables): the claims pin the paper's *shape* — orderings, factors,
// crossovers — not absolute seconds.

func c5(procs, buffer, variant string) CellRef {
	return CellRef{Exp: "fig5", Params: map[string]string{"procs": procs, "buffer": buffer, "variant": variant}}
}

func c7(variant, reassign string) CellRef {
	return CellRef{Exp: "fig7", Params: map[string]string{"variant": variant, "reassign": reassign}}
}

func c8(variant, victim string) CellRef {
	return CellRef{Exp: "fig8", Params: map[string]string{"variant": variant, "victim": victim}}
}

func c9(n, d string) CellRef {
	return CellRef{Exp: "fig9", Params: map[string]string{"n": n, "d": d}}
}

func csn(n, platform string) CellRef {
	return CellRef{Exp: "sn", Params: map[string]string{"n": n, "platform": platform}}
}

func cest(assignment, reassign string) CellRef {
	return CellRef{Exp: "est", Params: map[string]string{"assignment": assignment, "reassign": reassign}}
}

func cskew(dist, refine string) CellRef {
	return CellRef{Exp: "skew", Params: map[string]string{"dist": dist, "refine": refine}}
}

// Paper returns the claim set covering Table 1 and Figures 5, 7, 8, 9 and
// 10 plus the SN and EST extensions — each entry is one "✓" (or prose
// assertion) from EXPERIMENTS.md.
func Paper() []Claim {
	var cs []Claim

	// ---- Table 1 -------------------------------------------------------
	cs = append(cs, Claim{
		ID: "table1-tree-height", Figure: "Table 1", Kind: Bound,
		Text:   "both R*-trees have the paper's height 3",
		Metric: "height", Min: 3, Max: 3,
		Groups: [][]CellRef{
			{{Exp: "table1", Params: map[string]string{"tree": "streets"}}},
			{{Exp: "table1", Params: map[string]string{"tree": "features"}}},
		},
	})

	// ---- Figure 5 ------------------------------------------------------
	var gdFewest, moreProcs [][]CellRef
	for _, procs := range []string{"8", "24"} {
		for _, buffer := range []string{"200", "800", "3200"} {
			gdFewest = append(gdFewest,
				[]CellRef{c5(procs, buffer, "gd"), c5(procs, buffer, "gsrr")},
				[]CellRef{c5(procs, buffer, "gd"), c5(procs, buffer, "lsr")})
		}
	}
	for _, variant := range []string{"lsr", "gsrr", "gd"} {
		for _, buffer := range []string{"200", "800", "3200"} {
			moreProcs = append(moreProcs, []CellRef{c5("8", buffer, variant), c5("24", buffer, variant)})
		}
	}
	cs = append(cs,
		Claim{
			ID: "fig5-gd-fewest-disk", Figure: "Figure 5", Kind: Ordering,
			Text:   "gd needs the fewest disk accesses at every buffer size",
			Metric: "disk", Slack: 0.01, Groups: gdFewest,
		},
		Claim{
			ID: "fig5-global-profits-more", Figure: "Figure 5", Kind: RatioOrder,
			Text:   "global buffers profit more from growing buffers than local ones",
			Metric: "disk", Slack: 0.02,
			// The n=8 columns EXPERIMENTS.md cites (lsr improves 34%, gsrr
			// 44%, gd 43% from 200 to 3200 pages); at n=24 the per-processor
			// buffer floor distorts tiny scales.
			Groups: [][]CellRef{
				{c5("8", "200", "gd"), c5("8", "3200", "gd"), c5("8", "200", "lsr"), c5("8", "3200", "lsr")},
				{c5("8", "200", "gsrr"), c5("8", "3200", "gsrr"), c5("8", "200", "lsr"), c5("8", "3200", "lsr")},
			},
		},
		Claim{
			ID: "fig5-more-procs-more-disk", Figure: "Figure 5", Kind: Ordering,
			Text:   "more processors need more disk accesses at equal total buffer",
			Metric: "disk", Slack: 0.01, Groups: moreProcs, MinScale: 1,
		},
	)

	// ---- Figure 7 ------------------------------------------------------
	var cutsResponse, spread, work [][]CellRef
	for _, variant := range []string{"lsr", "gsrr", "gd"} {
		cutsResponse = append(cutsResponse, []CellRef{c7(variant, "all"), c7(variant, "none")})
		spread = append(spread, []CellRef{c7(variant, "all"), c7(variant, "none")})
		work = append(work, []CellRef{c7(variant, "all"), c7(variant, "none")})
	}
	cs = append(cs,
		Claim{
			ID: "fig7-reassign-cuts-response", Figure: "Figure 7", Kind: Ordering,
			Text:   "all-level reassignment never worsens the response time",
			Metric: "response_s", Slack: 0.01, Groups: cutsResponse,
		},
		Claim{
			ID: "fig7-reassign-collapses-spread", Figure: "Figure 7", Kind: Ratio,
			Text:   "reassignment collapses the first/last finisher spread",
			Metric: "spread_s", Min: 0, Max: 0.5, Groups: spread,
		},
		Claim{
			ID: "fig7-total-work-slight", Figure: "Figure 7", Kind: Ratio,
			Text:   "total work of all tasks rises only slightly under reassignment",
			Metric: "total_work_s", Min: 0.95, Max: 1.15, Groups: work,
		},
		Claim{
			ID: "fig7-lsr-reassign-extra-disk", Figure: "Figure 7", Kind: Ordering,
			Text:   "with local buffers, reassignment costs extra disk accesses",
			Metric: "disk", Groups: [][]CellRef{{c7("lsr", "none"), c7("lsr", "all")}},
		},
		Claim{
			ID: "fig7-gd-root-noop", Figure: "Figure 7", Kind: Equal,
			Text:    "root-level reassignment is exactly a no-op for gd",
			Metrics: []string{"disk", "response_s", "first_s", "total_work_s"},
			Groups:  [][]CellRef{{c7("gd", "root"), c7("gd", "none")}},
		},
	)

	// ---- Figure 8 ------------------------------------------------------
	cs = append(cs,
		Claim{
			ID: "fig8-lsr-arbitrary-costs", Figure: "Figure 8", Kind: Ordering,
			Text:   "an arbitrary victim costs extra disk accesses with local buffers",
			Metric: "disk", Slack: 0.002,
			Groups: [][]CellRef{{c8("lsr", "loaded"), c8("lsr", "random")}},
		},
		Claim{
			ID: "fig8-global-indifferent", Figure: "Figure 8", Kind: Ratio,
			Text:   "with a global buffer the victim policy costs at most a few percent",
			Metric: "disk", Min: 0.95, Max: 1.05,
			Groups: [][]CellRef{
				{c8("gd", "random"), c8("gd", "loaded")},
				{c8("gsrr", "random"), c8("gsrr", "loaded")},
			},
		},
	)

	// ---- Figure 9 ------------------------------------------------------
	cs = append(cs,
		Claim{
			ID: "fig9-d1-plateau", Figure: "Figure 9", Kind: Ratio,
			Text:   "with one disk the response time flattens from 4 processors on",
			Metric: "response_s", Min: 0.6, Max: 1.02,
			Groups: [][]CellRef{{c9("24", "1"), c9("4", "1")}},
		},
		Claim{
			ID: "fig9-crossover-d8-dn", Figure: "Figure 9", Kind: Crossover,
			Text:   "d=8 beats d=n at few processors and falls behind past n=10",
			Metric: "response_s", Slack: 0.02,
			SeriesA: Series{Exp: "fig9", Fixed: map[string]string{"d": "8"}, Axis: "n"},
			SeriesB: Series{Exp: "fig9", Fixed: map[string]string{"d": "n"}, Axis: "n"},
		},
		Claim{
			ID: "fig9-dn-keeps-falling", Figure: "Figure 9", Kind: Monotone,
			Text:   "with d=n the response time keeps falling to the end",
			Metric: "response_s", Dir: -1, Slack: 0.02,
			SeriesA: Series{Exp: "fig9", Fixed: map[string]string{"d": "n"}, Axis: "n"},
		},
	)

	// ---- Figure 10 -----------------------------------------------------
	cs = append(cs,
		Claim{
			ID: "fig10-dn-speedup-near-linear", Figure: "Figure 10", Kind: Bound,
			Text:   "near-linear speed-up for d=n at 24 processors",
			Metric: "speedup", Min: 15, Max: 24,
			Groups: [][]CellRef{{c9("24", "n")}},
		},
		Claim{
			ID: "fig10-d8-flattens", Figure: "Figure 10", Kind: Ratio,
			Text:   "the d=8 speed-up flattens past ~10 processors",
			Metric: "speedup", Min: 1.0, Max: 1.35,
			Groups: [][]CellRef{{c9("24", "8"), c9("16", "8")}},
		},
		Claim{
			ID: "fig10-disk-falls", Figure: "Figure 10", Kind: Ordering,
			Text:   "disk accesses fall as n grows (the global buffer grows with n)",
			Metric: "disk", Slack: 0.01,
			Groups: [][]CellRef{{c9("24", "n"), c9("16", "n"), c9("8", "n"), c9("1", "n")}},
		},
		Claim{
			ID: "fig10-total-work-bounded", Figure: "Figure 10", Kind: Ratio,
			Text:   "total work rises at most ~16% over the sequential run",
			Metric: "total_work_s", Min: 0.95, Max: 1.20, MinScale: 1,
			Groups: [][]CellRef{
				{c9("4", "n"), c9("1", "n")},
				{c9("8", "n"), c9("1", "n")},
				{c9("24", "n"), c9("1", "n")},
			},
		},
	)

	// ---- Extension SN --------------------------------------------------
	cs = append(cs,
		Claim{
			ID: "sn-comparable", Figure: "Extension SN", Kind: Ratio,
			Text:   "shared-nothing stays close to the SVM platform (n <= 8)",
			Metric: "response_s", Min: 0.85, Max: 1.2,
			Groups: [][]CellRef{
				{csn("4", "sn"), csn("4", "svm")},
				{csn("8", "sn"), csn("8", "svm")},
			},
		},
		Claim{
			ID: "sn-comparable-24", Figure: "Extension SN", Kind: Ratio,
			Text:   "shared-nothing stays within ~12% of SVM at n=24",
			Metric: "response_s", Min: 0.85, Max: 1.15, MinScale: 1,
			Groups: [][]CellRef{{csn("24", "sn"), csn("24", "svm")}},
		},
	)

	// ---- Extension EST -------------------------------------------------
	cs = append(cs,
		Claim{
			ID: "est-real-but-unreliable", Figure: "Extension EST", Kind: Bound,
			Text:   "the task-cost estimator carries real but unreliable signal",
			Metric: "pearson_r", Min: 0.3, Max: 0.95,
			Groups: [][]CellRef{{{Exp: "est", Params: map[string]string{"measure": "correlation"}}}},
		},
		Claim{
			ID: "est-helps-static", Figure: "Extension EST", Kind: Ordering,
			Text:   "LPT on estimates beats a static range assignment",
			Metric: "response_s", MinScale: 1,
			Groups: [][]CellRef{{cest("lpt", "none"), cest("range", "none")}},
		},
		Claim{
			ID: "est-dynamic-matches", Figure: "Extension EST", Kind: Ratio,
			Text:   "dynamic assignment matches LPT without any estimator",
			Metric: "response_s", Min: 0.9, Max: 1.1,
			Groups: [][]CellRef{{cest("dynamic", "all"), cest("lpt", "all")}},
		},
	)

	// ---- Extension SKEW ------------------------------------------------
	// Adaptive tile refinement on the native partition engine: refinement
	// never does more comparison work than the uniform grid on skewed
	// inputs, pays off hard on the extreme level, produces the identical
	// candidate count everywhere, and stays entirely out of the way on
	// uniform data.
	cs = append(cs,
		Claim{
			ID: "skew-refined-no-worse", Figure: "Extension SKEW", Kind: Ordering,
			Text:   "refinement never increases comparisons on clustered inputs",
			Metric: "comparisons", Slack: 0.02,
			Groups: [][]CellRef{
				{cskew("gauss60", "auto"), cskew("gauss60", "off")},
				{cskew("gauss20", "auto"), cskew("gauss20", "off")},
				{cskew("gauss5", "auto"), cskew("gauss5", "off")},
			},
		},
		Claim{
			ID: "skew-extreme-pays", Figure: "Extension SKEW", Kind: Ratio,
			Text:   "on the extreme level refinement cuts comparisons to well under half",
			Metric: "comparisons", Min: 0.05, Max: 0.6,
			Groups: [][]CellRef{{cskew("gauss5", "auto"), cskew("gauss5", "off")}},
		},
		Claim{
			ID: "skew-exact-candidates", Figure: "Extension SKEW", Kind: Equal,
			Text:    "refined and unrefined joins report the identical candidate count",
			Metrics: []string{"candidates"},
			Groups: [][]CellRef{
				{cskew("uniform", "auto"), cskew("uniform", "off")},
				{cskew("gauss60", "auto"), cskew("gauss60", "off")},
				{cskew("gauss20", "auto"), cskew("gauss20", "off")},
				{cskew("gauss5", "auto"), cskew("gauss5", "off")},
			},
		},
		Claim{
			ID: "skew-uniform-noop", Figure: "Extension SKEW", Kind: Equal,
			Text:    "on uniform data the auto threshold never triggers — same schedule, same work",
			Metrics: []string{"comparisons", "candidates", "refined_tiles", "subtiles"},
			Groups:  [][]CellRef{{cskew("uniform", "auto"), cskew("uniform", "off")}},
		},
		Claim{
			ID: "skew-extreme-refines", Figure: "Extension SKEW", Kind: Bound,
			Text:   "the extreme level actually engages refinement",
			Metric: "refined_tiles", Min: 1, Max: 64,
			Groups: [][]CellRef{{cskew("gauss5", "auto")}},
		},
	)

	return cs
}
