package claims

import "testing"

// TestPaperClaimSet pins the acceptance contract: at least 12 claims,
// unique IDs, every asserted figure covered, and each claim structurally
// valid for its predicate kind.
func TestPaperClaimSet(t *testing.T) {
	cs := Paper()
	if len(cs) < 12 {
		t.Fatalf("paper claim set has %d claims, acceptance requires >= 12", len(cs))
	}
	figures := map[string]bool{}
	ids := map[string]bool{}
	for _, c := range cs {
		if c.ID == "" || c.Figure == "" || c.Text == "" {
			t.Errorf("claim %+v missing ID/Figure/Text", c)
		}
		if ids[c.ID] {
			t.Errorf("duplicate claim ID %q", c.ID)
		}
		ids[c.ID] = true
		figures[c.Figure] = true
		switch c.Kind {
		case Monotone, Crossover:
			if c.SeriesA.Exp == "" || c.SeriesA.Axis == "" {
				t.Errorf("%s: series claim without SeriesA", c.ID)
			}
			if c.Kind == Crossover && c.SeriesB.Exp == "" {
				t.Errorf("%s: crossover without SeriesB", c.ID)
			}
		default:
			if len(c.Groups) == 0 {
				t.Errorf("%s: cell claim without groups", c.ID)
			}
		}
		want := map[Kind]int{Ratio: 2, RatioOrder: 4, Equal: 2, Bound: 1}
		if n, ok := want[c.Kind]; ok {
			for _, g := range c.Groups {
				if len(g) != n {
					t.Errorf("%s: %s group has %d cells, want %d", c.ID, c.Kind, len(g), n)
				}
			}
		}
		if c.Kind == Equal && len(c.Metrics) == 0 && c.Metric == "" {
			t.Errorf("%s: equal claim without metrics", c.ID)
		}
		if (c.Kind == Ratio || c.Kind == Bound) && c.Max <= 0 {
			t.Errorf("%s: %s claim without Max bound", c.ID, c.Kind)
		}
	}
	for _, fig := range []string{
		"Table 1", "Figure 5", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
		"Extension SN", "Extension EST", "Extension SKEW",
	} {
		if !figures[fig] {
			t.Errorf("no claim covers %s", fig)
		}
	}
}
