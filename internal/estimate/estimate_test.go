package estimate_test

import (
	"math"
	"testing"

	"spjoin/internal/estimate"
	"spjoin/internal/geom"
	"spjoin/internal/join"
	"spjoin/internal/parjoin"
	"spjoin/internal/rtree"
	"spjoin/internal/tiger"
)

func testTrees(tb testing.TB) (*rtree.Tree, *rtree.Tree) {
	tb.Helper()
	streets, mixed := tiger.Maps(0.02, 42)
	params := rtree.Params{MaxDirEntries: 10, MaxDataEntries: 10, MinFillFrac: 0.4, ReinsertFrac: 0.3}
	return rtree.BulkLoadSTR(params, streets, 0.8),
		rtree.BulkLoadSTR(params, mixed, 0.8)
}

func TestTaskCostNonNegative(t *testing.T) {
	r, s := testTrees(t)
	tasks, _, _ := parjoin.CreateTasks(r, s, join.Options{}, 24)
	costs := estimate.Costs(r, s, tasks)
	if len(costs) != len(tasks) {
		t.Fatalf("Costs len %d, want %d", len(costs), len(tasks))
	}
	positive := 0
	for i, c := range costs {
		if c < 0 || math.IsNaN(c) {
			t.Fatalf("task %d cost %g", i, c)
		}
		if c > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatal("all estimates zero")
	}
}

func TestCostsTrackActualWork(t *testing.T) {
	// The estimate must carry real signal: positive correlation with the
	// true per-task work (measured as candidates produced per task).
	r, s := testTrees(t)
	tasks, _, _ := parjoin.CreateTasks(r, s, join.Options{}, 24)
	costs := estimate.Costs(r, s, tasks)
	actual := make([]float64, len(tasks))
	for i, task := range tasks {
		n := 0
		e := join.Engine{
			Src:         join.DirectSource{R: r, S: s},
			OnCandidate: func(join.Candidate) { n++ },
		}
		e.Run(task)
		actual[i] = float64(n)
	}
	corr := estimate.Correlation(costs, actual)
	// The estimate must carry *some* signal — but only some: the paper's
	// §3.4 point is exactly that good run-time estimation "is difficult to
	// achieve for spatial joins" (clustered data breaks the uniformity
	// assumptions every cheap selectivity model rests on).
	if corr < 0.05 {
		t.Errorf("estimate/actual correlation %.2f, want >= 0.05", corr)
	}
	t.Logf("estimate vs actual candidates: r = %.2f over %d tasks", corr, len(tasks))
}

func TestAssignLPTBalances(t *testing.T) {
	tasks := make([]join.NodePair, 10)
	costs := []float64{9, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	blocks := estimate.AssignLPT(tasks, costs, 2)
	// LPT: the 9-cost task alone (plus possibly one more), everything else
	// on the other processor.
	if len(blocks[0])+len(blocks[1]) != 10 {
		t.Fatalf("tasks lost: %d + %d", len(blocks[0]), len(blocks[1]))
	}
	// Recompute loads by position: we can't see costs from blocks directly,
	// so check sizes: the heavy task's bin should have far fewer tasks.
	small := len(blocks[0])
	if len(blocks[1]) < small {
		small = len(blocks[1])
	}
	if small > 2 {
		t.Fatalf("LPT did not isolate the heavy task: block sizes %d/%d",
			len(blocks[0]), len(blocks[1]))
	}
}

func TestAssignLPTPreservesOrderWithinBlock(t *testing.T) {
	tasks := make([]join.NodePair, 6)
	for i := range tasks {
		tasks[i].RLevel = i // marker
	}
	costs := []float64{3, 2, 5, 1, 4, 2}
	blocks := estimate.AssignLPT(tasks, costs, 2)
	for _, b := range blocks {
		for i := 1; i < len(b); i++ {
			if b[i].RLevel < b[i-1].RLevel {
				t.Fatalf("block not in plane-sweep order: %v", b)
			}
		}
	}
}

func TestAssignLPTMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	estimate.AssignLPT(make([]join.NodePair, 3), []float64{1}, 2)
}

func TestCorrelation(t *testing.T) {
	if got := estimate.Correlation([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %g", got)
	}
	if got := estimate.Correlation([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %g", got)
	}
	if got := estimate.Correlation([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant series correlation = %g, want 0", got)
	}
	if got := estimate.Correlation([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("short series correlation = %g, want 0", got)
	}
	if got := estimate.Correlation([]float64{1, 2}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("mismatched series correlation = %g, want 0", got)
	}
}

func TestStaticEstimatedAssignmentRuns(t *testing.T) {
	r, s := testTrees(t)
	cfg := parjoin.DefaultConfig(8, 8, 400)
	cfg.Assign = parjoin.StaticEstimated
	cfg.Buffer = parjoin.LocalOrg
	cfg.Reassign = parjoin.ReassignNone
	res := parjoin.Run(r, s, cfg)
	want := parjoin.Run(r, s, parjoin.DefaultConfig(8, 8, 400))
	if res.Candidates != want.Candidates {
		t.Fatalf("estimated assignment found %d candidates, want %d",
			res.Candidates, want.Candidates)
	}
	if parjoin.StaticEstimated.String() != "static-estimated" {
		t.Error("Assignment string missing")
	}
}

func TestDynamicBeatsEstimatedStatic(t *testing.T) {
	// The paper's §3.4 conclusion: dynamic assignment with task
	// reassignment balances better than a static assignment built on cheap
	// cost estimates. Verify gd/all-levels finishes no later than the
	// LPT-estimated static assignment.
	r, s := testTrees(t)
	lptCfg := parjoin.DefaultConfig(8, 8, 400)
	lptCfg.Buffer = parjoin.LocalOrg
	lptCfg.Assign = parjoin.StaticEstimated
	lptCfg.Reassign = parjoin.ReassignNone
	lpt := parjoin.Run(r, s, lptCfg)

	gd := parjoin.Run(r, s, parjoin.DefaultConfig(8, 8, 400))
	if gd.ResponseTime > lpt.ResponseTime {
		t.Errorf("dynamic+reassign response %.1f > estimated-static %.1f",
			float64(gd.ResponseTime), float64(lpt.ResponseTime))
	}
	t.Logf("response: estimated-static %.1f s, dynamic+reassign %.1f s",
		lpt.ResponseTime.Seconds(), gd.ResponseTime.Seconds())
}

// TestAnalyzeSet pins the set-statistics pass: means over finite rects
// only, EmptyRect MBR for unusable input.
func TestAnalyzeSet(t *testing.T) {
	items := func(rects ...geom.Rect) []rtree.Item {
		out := make([]rtree.Item, len(rects))
		for i, r := range rects {
			out[i] = rtree.Item{ID: rtree.EntryID(i), Rect: r}
		}
		return out
	}
	for _, tc := range []struct {
		name       string
		in         []rtree.Item
		n          int
		avgW, avgH float64
	}{
		{"empty", nil, 0, 0, 0},
		{"single", items(geom.NewRect(0, 0, 4, 2)), 1, 4, 2},
		{"two", items(geom.NewRect(0, 0, 4, 2), geom.NewRect(10, 10, 12, 18)), 2, 3, 5},
		{"skips inverted", items(geom.NewRect(0, 0, 2, 2), geom.Rect{MinX: 5, MinY: 5, MaxX: 1, MaxY: 1}), 1, 2, 2},
		{"skips nan", items(geom.NewRect(0, 0, 2, 2), geom.Rect{MinX: math.NaN(), MaxX: 1, MaxY: 1}), 1, 2, 2},
	} {
		st := estimate.AnalyzeSet(tc.in)
		if st.N != tc.n || st.AvgW != tc.avgW || st.AvgH != tc.avgH {
			t.Errorf("%s: got {N:%d AvgW:%g AvgH:%g}, want {N:%d AvgW:%g AvgH:%g}",
				tc.name, st.N, st.AvgW, st.AvgH, tc.n, tc.avgW, tc.avgH)
		}
	}
}

// TestSelectivityModel is the table-driven check of the §3.4 selectivity
// figure over hand-constructed SetStats.
func TestSelectivityModel(t *testing.T) {
	set := func(n int, w, h float64, mbr geom.Rect) estimate.SetStats {
		return estimate.SetStats{N: n, AvgW: w, AvgH: h, MBR: mbr}
	}
	world := geom.NewRect(0, 0, 100, 100)
	for _, tc := range []struct {
		name     string
		r, s     estimate.SetStats
		sel      float64
		selBelow float64 // upper bound when the exact value is model-dependent
	}{
		// (wR+wS)(hR+hS)/(W·H) = (1+1)(1+1)/10000 with full overlap.
		{"uniform small rects", set(100, 1, 1, world), set(100, 1, 1, world), 4.0 / 10000, 0},
		// Rectangles as large as the window intersect almost surely: clamps to 1.
		{"huge rects clamp", set(10, 100, 100, world), set(10, 100, 100, world), 1, 0},
		// Disjoint MBRs cannot produce pairs.
		{"disjoint worlds", set(50, 1, 1, geom.NewRect(0, 0, 10, 10)), set(50, 1, 1, geom.NewRect(20, 20, 30, 30)), 0, 0},
		// Either side empty: zero, not NaN.
		{"empty side", set(0, 0, 0, geom.EmptyRect()), set(50, 1, 1, world), 0, 0},
		// Partial overlap scales both sides down by their window fraction.
		{"half overlap", set(100, 1, 1, geom.NewRect(0, 0, 100, 100)), set(100, 1, 1, geom.NewRect(50, 0, 150, 100)), 0, 4.0 / 10000},
		// Degenerate window (sets touch on a line): the zero-area window
		// holds no population under the area-fraction model — zero, and
		// crucially not NaN from the W·H division.
		{"line contact", set(10, 1, 1, geom.NewRect(0, 0, 50, 100)), set(10, 1, 1, geom.NewRect(50, 0, 100, 100)), 0, 0},
	} {
		got := estimate.Selectivity(tc.r, tc.s)
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Fatalf("%s: selectivity %g out of [0,1]", tc.name, got)
		}
		if tc.selBelow > 0 {
			if got <= tc.sel || got > tc.selBelow {
				t.Errorf("%s: selectivity %g, want in (%g, %g]", tc.name, got, tc.sel, tc.selBelow)
			}
		} else if math.Abs(got-tc.sel) > 1e-12 {
			t.Errorf("%s: selectivity %g, want %g", tc.name, got, tc.sel)
		}
		pairs := estimate.ExpectedPairs(tc.r, tc.s)
		if pairs < 0 || math.IsNaN(pairs) {
			t.Errorf("%s: expected pairs %g", tc.name, pairs)
		}
	}
}

// TestExpectedPairsTracksActual sanity-checks the model against a real
// workload: the estimate must land within an order of magnitude of the
// true candidate count (the model is coarse by design).
func TestExpectedPairsTracksActual(t *testing.T) {
	streets, mixed := tiger.Maps(0.05, 42)
	got := float64(len(join.Sequential(
		rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.8),
		rtree.BulkLoadSTR(rtree.DefaultParams(), mixed, 0.8), join.Options{})))
	est := estimate.ExpectedPairs(estimate.AnalyzeSet(streets), estimate.AnalyzeSet(mixed))
	if est <= 0 {
		t.Fatalf("expected pairs %g, want positive", est)
	}
	if ratio := est / got; ratio < 0.1 || ratio > 10 {
		t.Errorf("estimate %g vs actual %g (ratio %.2f), want within 10x", est, got, ratio)
	}
}
