// Package estimate implements the alternative the paper's §3.4 dismisses:
// "One solution to the problem would be to use a good estimation of the run
// time for each task and to modify the size of the work loads according to
// this estimation. However, this is difficult to achieve for spatial
// joins." This package builds that estimator — a selectivity model over the
// MBR statistics of a task's two subtrees — plus an LPT (longest processing
// time first) task assignment based on it, so the experiment harness can
// quantify how close estimation-based static balancing comes to the paper's
// dynamic reassignment, and where it falls short.
package estimate

import (
	"math"
	"sort"

	"spjoin/internal/geom"
	"spjoin/internal/join"
	"spjoin/internal/rtree"
)

// Estimator precomputes per-tree statistics (average fanout, average object
// extents) once, then prices tasks from only their two subtree root nodes —
// keeping the per-task cost negligible, because an estimator that descends
// the subtrees would itself cost a noticeable share of the join, which is
// exactly the paper's objection to the approach.
type Estimator struct {
	r, s   *rtree.Tree
	rStats treeAgg
	sStats treeAgg
}

// treeAgg caches what the estimator needs about one tree.
type treeAgg struct {
	avgLeafEntries float64 // data entries per data page
	avgFanout      float64 // children per directory page
	avgW, avgH     float64 // mean object extents
}

// NewEstimator scans both trees once (their leaves, for object extents).
func NewEstimator(r, s *rtree.Tree) *Estimator {
	return &Estimator{r: r, s: s, rStats: aggregate(r), sStats: aggregate(s)}
}

func aggregate(t *rtree.Tree) treeAgg {
	var a treeAgg
	st := t.Stats()
	if st.DataPages > 0 {
		a.avgLeafEntries = float64(st.DataEntries) / float64(st.DataPages)
	}
	if st.DirectoryPages > 0 {
		a.avgFanout = float64(st.DataPages+st.DirectoryPages-1) / float64(st.DirectoryPages)
	} else {
		a.avgFanout = 1
	}
	var sw, sh float64
	n := 0
	t.Walk(func(node *rtree.Node) {
		if node.Level != 0 {
			return
		}
		for i := range node.Entries {
			r := node.Entries[i].Rect
			sw += r.MaxX - r.MinX
			sh += r.MaxY - r.MinY
			n++
		}
	})
	if n > 0 {
		a.avgW = sw / float64(n)
		a.avgH = sh / float64(n)
	}
	return a
}

// entriesUnder approximates the number of data entries below a node.
func (a treeAgg) entriesUnder(n *rtree.Node) float64 {
	if n.Level == 0 {
		return float64(len(n.Entries))
	}
	est := float64(len(n.Entries)) * a.avgLeafEntries
	for l := 1; l < n.Level; l++ {
		est *= a.avgFanout
	}
	return est
}

// TaskCost estimates the relative execution cost of joining the subtree
// pair as the expected number of candidate pairs: objects of both sides
// falling into the common window, times the probability that two random
// rectangles of the trees' average extents intersect inside it
// (the classical (wR+wS)(hR+hS)/(W·H) selectivity model).
func (e *Estimator) TaskCost(task join.NodePair) float64 {
	nr := e.r.Node(task.RPage)
	ns := e.s.Node(task.SPage)
	mr, ms := nr.MBR(), ns.MBR()
	inter := mr.Intersection(ms)
	if inter.IsEmpty() {
		return 0
	}
	nR := e.rStats.entriesUnder(nr) * fractionIn(mr, inter)
	nS := e.sStats.entriesUnder(ns) * fractionIn(ms, inter)
	w := inter.MaxX - inter.MinX
	h := inter.MaxY - inter.MinY
	p := 1.0
	if w > 0 && h > 0 {
		p = (e.rStats.avgW + e.sStats.avgW) * (e.rStats.avgH + e.sStats.avgH) / (w * h)
		if p > 1 {
			p = 1
		}
	}
	return nR * nS * p
}

// fractionIn approximates the share of a subtree's objects lying in the
// window by the area fraction of its MBR covered by the window.
func fractionIn(mbr, window geom.Rect) float64 {
	area := mbr.Area()
	if area <= 0 {
		return 1
	}
	f := mbr.OverlapArea(window) / area
	if f > 1 {
		return 1
	}
	return f
}

// TaskCost is the convenience form constructing a throwaway Estimator; for
// pricing many tasks use NewEstimator + Costs.
func TaskCost(r, s *rtree.Tree, task join.NodePair) float64 {
	return NewEstimator(r, s).TaskCost(task)
}

// Costs prices a whole task list with one precomputation pass.
func Costs(r, s *rtree.Tree, tasks []join.NodePair) []float64 {
	e := NewEstimator(r, s)
	out := make([]float64, len(tasks))
	for i, t := range tasks {
		out[i] = e.TaskCost(t)
	}
	return out
}

// AssignLPT distributes tasks over n processors by longest-processing-time-
// first bin packing on the given cost estimates: tasks are taken in
// descending estimated cost and each goes to the currently least-loaded
// processor. This is the classic estimation-based static balancing the
// paper argues against; within each processor the tasks are re-sorted into
// their original (plane-sweep) order to preserve what locality remains.
func AssignLPT(tasks []join.NodePair, costs []float64, n int) [][]join.NodePair {
	if len(costs) != len(tasks) {
		panic("estimate: costs and tasks length mismatch")
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })

	loads := make([]float64, n)
	assigned := make([][]int, n)
	for _, ti := range order {
		best := 0
		for p := 1; p < n; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		loads[best] += costs[ti]
		assigned[best] = append(assigned[best], ti)
	}

	out := make([][]join.NodePair, n)
	for p := range assigned {
		sort.Ints(assigned[p]) // restore plane-sweep order within the block
		for _, ti := range assigned[p] {
			out[p] = append(out[p], tasks[ti])
		}
	}
	return out
}

// SetStats summarizes one rectangle set for the set-level selectivity
// model: cardinality, mean extents, and the finite MBR. It is the flat-set
// analogue of treeAgg, for callers (the planner, the flight recorder) that
// have item slices rather than built trees.
type SetStats struct {
	N          int // rectangles with finite, non-inverted extents
	AvgW, AvgH float64
	MBR        geom.Rect
}

// AnalyzeSet computes SetStats in one pass. Rectangles with NaN
// coordinates or inverted extents are skipped — they join with nothing
// and would poison the means.
func AnalyzeSet(items []rtree.Item) SetStats {
	st := SetStats{MBR: geom.EmptyRect()}
	var sw, sh float64
	for i := range items {
		r := &items[i].Rect
		if !(r.MinX <= r.MaxX && r.MinY <= r.MaxY) {
			continue
		}
		st.N++
		sw += r.MaxX - r.MinX
		sh += r.MaxY - r.MinY
		st.MBR = st.MBR.Union(*r)
	}
	if st.N > 0 {
		st.AvgW = sw / float64(st.N)
		st.AvgH = sh / float64(st.N)
	}
	return st
}

// Selectivity estimates the probability that a random R rectangle
// intersects a random S rectangle: the classical uniform model
// (wR+wS)(hR+hS)/(W·H) evaluated over the intersection window of the two
// MBRs, scaled by the fraction of each side expected inside the window.
// The result is clamped to [0, 1]; either side empty yields 0.
func Selectivity(r, s SetStats) float64 {
	if r.N == 0 || s.N == 0 {
		return 0
	}
	pairs := ExpectedPairs(r, s)
	sel := pairs / (float64(r.N) * float64(s.N))
	if sel > 1 {
		return 1
	}
	return sel
}

// ExpectedPairs estimates the candidate count of r ⋈ s under the same
// model: objects of both sides falling into the common window, times the
// average-extent intersection probability inside it. A degenerate window
// (the sets touch on a line or point) keeps p = 1 for the objects in it.
func ExpectedPairs(r, s SetStats) float64 {
	if r.N == 0 || s.N == 0 {
		return 0
	}
	window := r.MBR.Intersection(s.MBR)
	if window.IsEmpty() {
		return 0
	}
	nR := float64(r.N) * fractionIn(r.MBR, window)
	nS := float64(s.N) * fractionIn(s.MBR, window)
	w := window.MaxX - window.MinX
	h := window.MaxY - window.MinY
	p := 1.0
	if w > 0 && h > 0 {
		p = (r.AvgW + s.AvgW) * (r.AvgH + s.AvgH) / (w * h)
		if p > 1 {
			p = 1
		}
	}
	return nR * nS * p
}

// Correlation returns the Pearson correlation coefficient between two
// series (0 if undefined). The harness uses it to report how well the
// estimates track the actual per-task run times.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / (math.Sqrt(vx) * math.Sqrt(vy))
}
