package geom

import (
	"math"
	"math/rand"
	"testing"
)

// eachKernel runs fn once per selectable kernel path, restoring auto
// dispatch afterwards. On a purego build (or a CPU without AVX2) both
// subtests exercise the scalar path — which is exactly the point: the
// contract must hold wherever the test runs.
func eachKernel(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	defer SetKernel("auto")
	for _, mode := range []string{"auto", "purego"} {
		if err := SetKernel(mode); err != nil {
			t.Fatal(err)
		}
		t.Run("kernel="+mode, fn)
	}
}

// degenerateRects is the adversarial input set shared by the planes tests:
// NaN coordinates in every slot, the canonical EmptyRect, finite inverted
// rects, touching edges and one-ulp misses around a [10,20]² query.
func degenerateRects() []Rect {
	nan := math.NaN()
	eps := math.Nextafter(0, 1)
	return []Rect{
		{MinX: nan, MinY: 0, MaxX: 10, MaxY: 10},
		{MinX: 0, MinY: nan, MaxX: 10, MaxY: 10},
		{MinX: 0, MinY: 0, MaxX: nan, MaxY: 10},
		{MinX: 0, MinY: 0, MaxX: 10, MaxY: nan},
		{MinX: nan, MinY: nan, MaxX: nan, MaxY: nan},
		EmptyRect(),
		{MinX: 15, MinY: 0, MaxX: 5, MaxY: 30},  // inverted x over the query
		{MinX: 0, MinY: 18, MaxX: 30, MaxY: 12}, // inverted y over the query
		NewRect(0, 0, 10, 10),                   // corner touch at (10,10)
		NewRect(20, 20, 30, 30),                 // corner touch at (20,20)
		NewRect(0, 10, 10, 20),                  // edge touch
		NewRect(0, 0, 10-eps, 10),               // one-ulp miss in x
		NewRect(10, math.Nextafter(20, 21), 20, 30),
		NewRect(-1e300, -1e300, 1e300, 1e300), // enormous cover-all
		NewRect(10, 10, 20, 20),               // exact query duplicate
	}
}

// checkPlanesAgainstScalar asserts IntersectBatchPlanes agrees bit for bit
// with the scalar Intersects predicate, with and without the quantized
// prefilter, on the active kernel path.
func checkPlanesAgainstScalar(t *testing.T, q Rect, rects []Rect, quantBounds Rect) {
	t.Helper()
	var p Planes
	p.FromRects(rects)
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			p.Quantize(quantBounds)
		}
		mask := make([]uint64, MaskWords(len(rects)))
		for i := range mask {
			mask[i] = ^uint64(0) // poison: words must be fully overwritten
		}
		n := IntersectBatchPlanes(q, &p, mask)
		want := 0
		for i, r := range rects {
			scalar := q.Intersects(r)
			if scalar {
				want++
			}
			if maskBit(mask, i) != scalar {
				t.Fatalf("quant=%v bit %d: planes=%v scalar=%v (q=%v r=%v)",
					pass == 1, i, maskBit(mask, i), scalar, q, r)
			}
		}
		if n != want {
			t.Fatalf("quant=%v: IntersectBatchPlanes returned %d, scalar count %d", pass == 1, n, want)
		}
		if len(rects)&63 != 0 && len(mask) > 0 {
			if last := mask[len(mask)-1]; last>>(uint(len(rects))&63) != 0 {
				t.Fatalf("trailing bits of last word not zero: %064b", last)
			}
		}
	}
}

func TestIntersectBatchPlanesRandom(t *testing.T) {
	eachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			n := rng.Intn(200)
			rects := make([]Rect, n)
			for i := range rects {
				rects[i] = randomRect(rng)
			}
			checkPlanesAgainstScalar(t, randomRect(rng), rects, NewRect(0, 0, 110, 110))
		}
	})
}

// TestIntersectBatchPlanesSizes covers lengths straddling the 4-lane
// vector groups, the scalar remainder, and the 64-bit word boundary.
func TestIntersectBatchPlanesSizes(t *testing.T) {
	eachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 32, 63, 64, 65, 67, 127, 128, 129, 200} {
			rects := make([]Rect, n)
			for i := range rects {
				rects[i] = randomRect(rng)
			}
			checkPlanesAgainstScalar(t, NewRect(20, 20, 80, 80), rects, NewRect(0, 0, 110, 110))
		}
	})
}

// TestIntersectBatchPlanesDegenerate pins the NaN/EmptyRect/inverted/
// touching-edge contract on both kernel paths, in both query directions,
// including degenerate quantization bounds.
func TestIntersectBatchPlanesDegenerate(t *testing.T) {
	eachKernel(t, func(t *testing.T) {
		all := degenerateRects()
		q := NewRect(10, 10, 20, 20)
		for _, bounds := range []Rect{
			NewRect(0, 0, 30, 30),                 // tight
			NewRect(-1e300, -1e300, 1e300, 1e300), // huge: scale collapses fine rects to few cells
			{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5},  // degenerate: scale 0
			EmptyRect(),                           // inverted bounds: scale 0
		} {
			checkPlanesAgainstScalar(t, q, all, bounds)
			for _, r := range all {
				checkPlanesAgainstScalar(t, r, all, bounds)
			}
		}
	})
}

// TestQuantOutwardRounding pins the rounding rule that makes the prefilter
// conservative: mins round down, maxes round up, NaN maps to the widest
// cell for its role, and for every value qDown(v) <= qUp(v).
func TestQuantOutwardRounding(t *testing.T) {
	origin, scale := quantParams(0, 255) // identity-ish mapping: 1 unit per cell
	if origin != 0 || scale != 1 {
		t.Fatalf("quantParams(0,255) = %g, %g; want 0, 1", origin, scale)
	}
	cases := []struct {
		v        float64
		down, up uint8
	}{
		{0, 0, 0},
		{0.25, 0, 1},
		{1, 1, 1},
		{254.5, 254, 255},
		{300, 255, 255}, // clamp high
		{-3, 0, 0},      // clamp low
		{math.NaN(), 0, 255},
		{math.Inf(1), 255, 255},
		{math.Inf(-1), 0, 0},
	}
	for _, c := range cases {
		if got := qDown(c.v, origin, scale); got != c.down {
			t.Errorf("qDown(%g) = %d, want %d", c.v, got, c.down)
		}
		if got := qUp(c.v, origin, scale); got != c.up {
			t.Errorf("qUp(%g) = %d, want %d", c.v, got, c.up)
		}
	}
	// Degenerate axes collapse to scale 0.
	for _, b := range [][2]float64{{5, 5}, {7, 3}, {math.Inf(-1), math.Inf(1)}, {math.NaN(), 4}} {
		if _, s := quantParams(b[0], b[1]); s != 0 {
			t.Errorf("quantParams(%g,%g) scale = %g, want 0", b[0], b[1], s)
		}
	}
}

// TestQuantConservative is the property the whole prefilter rests on:
// under any bounds, every exactly-intersecting pair also passes the
// quantized byte test.
func TestQuantConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		var p Planes
		r := randomRect(rng)
		p.FromRects([]Rect{r})
		bounds := NewRect(rng.Float64()*50, rng.Float64()*50, 50+rng.Float64()*60, 50+rng.Float64()*60)
		p.Quantize(bounds)
		q := randomRect(rng)
		if !q.Intersects(r) {
			continue
		}
		qq := p.quantQuery(q)
		if !(p.qMinX[0] <= qq[2] && qq[0] <= p.qMaxX[0] &&
			p.qMinY[0] <= qq[3] && qq[1] <= p.qMaxY[0]) {
			t.Fatalf("exact intersection rejected by quant gate: q=%v r=%v bounds=%v", q, r, bounds)
		}
	}
}

// TestPlanesSetRectQuantSync verifies point mutations keep a quantized
// Planes conservative.
func TestPlanesSetRectQuantSync(t *testing.T) {
	var p Planes
	p.FromRects([]Rect{NewRect(0, 0, 1, 1), NewRect(2, 2, 3, 3)})
	bounds := NewRect(0, 0, 100, 100)
	p.Quantize(bounds)
	moved := NewRect(40, 40, 60, 60)
	p.SetRect(1, moved)
	var fresh Planes
	fresh.FromRects([]Rect{p.RectAt(0), p.RectAt(1)})
	fresh.Quantize(bounds)
	for i := 0; i < 2; i++ {
		if p.qMinX[i] != fresh.qMinX[i] || p.qMinY[i] != fresh.qMinY[i] ||
			p.qMaxX[i] != fresh.qMaxX[i] || p.qMaxY[i] != fresh.qMaxY[i] {
			t.Fatalf("lane %d quant bytes diverge after SetRect", i)
		}
	}
	if p.RectAt(1) != moved {
		t.Fatalf("RectAt(1) = %v, want %v", p.RectAt(1), moved)
	}
}

// TestPlanesGather verifies Gather carries rects and the quant mirror.
func TestPlanesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var src Planes
	rects := make([]Rect, 50)
	for i := range rects {
		rects[i] = randomRect(rng)
	}
	src.FromRects(rects)
	src.Quantize(NewRect(0, 0, 110, 110))
	sel := []int32{49, 0, 17, 17, 3}
	var dst Planes
	dst.Gather(&src, sel)
	if dst.Len() != len(sel) || !dst.HasQuant() {
		t.Fatalf("gather: len=%d quant=%v", dst.Len(), dst.HasQuant())
	}
	for i, s := range sel {
		if dst.RectAt(i) != rects[s] {
			t.Fatalf("gather lane %d: %v != %v", i, dst.RectAt(i), rects[s])
		}
		if dst.qMinX[i] != src.qMinX[s] || dst.qMaxY[i] != src.qMaxY[s] {
			t.Fatalf("gather lane %d: quant bytes not carried", i)
		}
	}
}

// TestSweepPairsPlanesOracle pins SweepPairsPlanes to SweepPairsSoA:
// identical pair sets, pair order, and comparison counts, on both kernel
// paths, across sizes straddling the remainder boundaries.
func TestSweepPairsPlanesOracle(t *testing.T) {
	eachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(41))
		for trial := 0; trial < 120; trial++ {
			nr, ns := rng.Intn(70), rng.Intn(70)
			rs := make([]Rect, nr)
			ss := make([]Rect, ns)
			for i := range rs {
				rs[i] = randomRect(rng)
			}
			for i := range ss {
				ss[i] = randomRect(rng)
			}
			if trial%5 == 0 { // mix in degenerate rects
				for _, d := range degenerateRects() {
					if len(rs) > 0 && rng.Intn(2) == 0 {
						rs[rng.Intn(len(rs))] = d
					}
					if len(ss) > 0 {
						ss[rng.Intn(len(ss))] = d
					}
				}
			}
			checkSweepPlanesOracle(t, rs, ss)
		}
	})
}

func checkSweepPlanesOracle(t *testing.T, rs, ss []Rect) {
	t.Helper()
	ri := make([]int32, len(rs))
	si := make([]int32, len(ss))
	for i := range ri {
		ri[i] = int32(i)
	}
	for i := range si {
		si[i] = int32(i)
	}
	SortOrderByMinX(rs, ri)
	SortOrderByMinX(ss, si)
	wantPairs, wantComps := SweepPairsSoA(rs, ss, ri, si, nil)
	var rp, sp Planes
	rp.FromRects(rs)
	sp.FromRects(ss)
	gotPairs, gotComps := SweepPairsPlanes(&rp, &sp, ri, si, nil)
	if gotComps != wantComps {
		t.Fatalf("comparisons: planes=%d soa=%d", gotComps, wantComps)
	}
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("pairs: planes=%d soa=%d", len(gotPairs), len(wantPairs))
	}
	for i := range gotPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("pair %d: planes=%v soa=%v", i, gotPairs[i], wantPairs[i])
		}
	}
	// Dense variant: the same sweep in position space over planes gathered
	// into sweep order; position pairs map back through the orders.
	var rd, sd Planes
	rd.Gather(&rp, ri)
	sd.Gather(&sp, si)
	densePairs, denseComps := SweepPairsPlanesDense(&rd, &sd, nil)
	if denseComps != wantComps {
		t.Fatalf("dense comparisons: %d != %d", denseComps, wantComps)
	}
	if len(densePairs) != len(wantPairs) {
		t.Fatalf("dense pairs: %d != %d", len(densePairs), len(wantPairs))
	}
	for i, h := range densePairs {
		if got := (IndexPair{R: ri[h.R], S: si[h.S]}); got != wantPairs[i] {
			t.Fatalf("dense pair %d: %v (mapped %v) != %v", i, h, got, wantPairs[i])
		}
	}
}

// TestPlanesView pins the zero-copy subrange view: the batch kernel over a
// view (quantized mirror included) must agree with the scalar predicate
// over the corresponding rect subslice, for spans straddling word and
// vector-group boundaries.
func TestPlanesView(t *testing.T) {
	eachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(77))
		rects := make([]Rect, 150)
		for i := range rects {
			rects[i] = randomRect(rng)
		}
		var p Planes
		p.FromRects(rects)
		p.Quantize(NewRect(0, 0, 110, 110))
		q := NewRect(20, 20, 80, 80)
		for _, span := range [][2]int{{0, 150}, {10, 74}, {64, 150}, {37, 37}, {149, 150}, {3, 68}} {
			v := p.View(span[0], span[1])
			sub := rects[span[0]:span[1]]
			if v.Len() != len(sub) || v.HasQuant() != p.HasQuant() {
				t.Fatalf("view %v: len=%d quant=%v", span, v.Len(), v.HasQuant())
			}
			mask := make([]uint64, MaskWords(v.Len()))
			for i := range mask {
				mask[i] = ^uint64(0)
			}
			n := IntersectBatchPlanes(q, &v, mask)
			want := 0
			for i, r := range sub {
				scalar := q.Intersects(r)
				if scalar {
					want++
				}
				if maskBit(mask, i) != scalar {
					t.Fatalf("view %v bit %d: planes=%v scalar=%v", span, i, maskBit(mask, i), scalar)
				}
			}
			if n != want {
				t.Fatalf("view %v: count %d != %d", span, n, want)
			}
		}
	})
}

func TestKernelDispatch(t *testing.T) {
	defer SetKernel("auto")
	if err := SetKernel("purego"); err != nil {
		t.Fatal(err)
	}
	if got := KernelName(); got != "purego" {
		t.Fatalf("KernelName after purego = %q", got)
	}
	if err := SetKernel("bogus"); err == nil {
		t.Fatal("SetKernel(bogus) did not error")
	}
	if err := SetKernel("auto"); err != nil {
		t.Fatal(err)
	}
	name := KernelName()
	if name != "avx2" && name != "purego" {
		t.Fatalf("KernelName = %q", name)
	}
}

func FuzzIntersectBatchPlanes(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		defer SetKernel("auto")
		rs, ss := fuzzRects(data)
		all := append(rs, ss...)
		if len(all) == 0 {
			return
		}
		q := all[0]
		var p Planes
		p.FromRects(all)
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				p.Quantize(NewRect(0, 0, 40, 40))
			}
			var ref []uint64
			for _, mode := range []string{"auto", "purego"} {
				SetKernel(mode)
				mask := make([]uint64, MaskWords(len(all)))
				n := IntersectBatchPlanes(q, &p, mask)
				want := 0
				for i, r := range all {
					scalar := q.Intersects(r)
					if scalar {
						want++
					}
					if maskBit(mask, i) != scalar {
						t.Fatalf("quant=%v %s: bit %d disagrees with scalar", pass == 1, mode, i)
					}
				}
				if n != want {
					t.Fatalf("quant=%v %s: count %d != %d", pass == 1, mode, n, want)
				}
				if ref == nil {
					ref = mask
				} else {
					for i := range mask {
						if mask[i] != ref[i] {
							t.Fatalf("quant=%v: kernel paths disagree at word %d", pass == 1, i)
						}
					}
				}
			}
		}
	})
}

func FuzzSweepPairsPlanes(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, ss := fuzzRects(data)
		checkSweepPlanesOracle(t, rs, ss)
	})
}

func BenchmarkIntersectBatchPlanes(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	rects := make([]Rect, 128)
	for i := range rects {
		rects[i] = randomRect(rng)
	}
	var p Planes
	p.FromRects(rects)
	q := NewRect(25, 25, 75, 75)
	mask := make([]uint64, MaskWords(p.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectBatchPlanes(q, &p, mask)
	}
}

// BenchmarkIntersectBatchPlanesQuant is the same block with the quantized
// prefilter active and a query that misses most of the data, the case the
// gate is built for.
func BenchmarkIntersectBatchPlanesQuant(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	rects := make([]Rect, 128)
	for i := range rects {
		rects[i] = randomRect(rng)
	}
	var p Planes
	p.FromRects(rects)
	p.Quantize(NewRect(0, 0, 110, 110))
	q := NewRect(105, 105, 109, 109)
	mask := make([]uint64, MaskWords(p.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectBatchPlanes(q, &p, mask)
	}
}

func BenchmarkSweepPairsPlanes(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const n = 256
	rs := make([]Rect, n)
	ss := make([]Rect, n)
	for i := range rs {
		rs[i] = randomRect(rng)
		ss[i] = randomRect(rng)
	}
	ri := make([]int32, n)
	si := make([]int32, n)
	for i := range ri {
		ri[i], si[i] = int32(i), int32(i)
	}
	SortOrderByMinX(rs, ri)
	SortOrderByMinX(ss, si)
	var rp, sp Planes
	rp.FromRects(rs)
	sp.FromRects(ss)
	out := make([]IndexPair, 0, 4*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ = SweepPairsPlanes(&rp, &sp, ri, si, out[:0])
	}
}

// BenchmarkSweepPairsPlanesDense is the position-space sweep the partition
// join runs per tile: both sides gathered into sweep order, no index
// indirection.
func BenchmarkSweepPairsPlanesDense(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const n = 256
	rs := make([]Rect, n)
	ss := make([]Rect, n)
	for i := range rs {
		rs[i] = randomRect(rng)
		ss[i] = randomRect(rng)
	}
	ri := make([]int32, n)
	si := make([]int32, n)
	for i := range ri {
		ri[i], si[i] = int32(i), int32(i)
	}
	SortOrderByMinX(rs, ri)
	SortOrderByMinX(ss, si)
	var rp, sp, rd, sd Planes
	rp.FromRects(rs)
	sp.FromRects(ss)
	rd.Gather(&rp, ri)
	sd.Gather(&sp, si)
	out := make([]IndexPair, 0, 4*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ = SweepPairsPlanesDense(&rd, &sd, out[:0])
	}
}
