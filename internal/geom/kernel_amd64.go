//go:build amd64 && !purego

package geom

// AVX2 kernel bindings. The assembly (kernel_amd64.s) implements the exact
// 4-wide float64 intersection test and the 64-wide quantized byte gate;
// this file owns the CPU feature detection that decides whether they may
// run. Builds with -tags purego exclude both files and fall back to the
// scalar kernels (kernel_fallback.go), which is also the forced path of
// SetKernel("purego").

// avx2Available reports whether the CPU supports AVX2 and the OS has
// enabled 256-bit vector state. Detected once at init.
var avx2Available = detectAVX2()

// detectAVX2 runs the standard three-step check without external
// dependencies: AVX + OSXSAVE in CPUID.1:ECX, XMM+YMM state enabled in
// XCR0 (XGETBV), and AVX2 in CPUID.7.0:EBX.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 { // XMM and YMM state both OS-managed
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// intersectBlocks evaluates the exact closed-rectangle test of query
// q = {MinX, MinY, MaxX, MaxY} against lanes [0, n) of the four planes,
// n a positive multiple of 4 (at most 64), and returns the result bits in
// lane order. NaN compares false in every predicate (VCMPPD LE_OQ), so
// NaN and EmptyRect lanes never set their bit — identical to intersect1.
//
//go:noescape
func intersectBlocks(q *[4]float64, minx, miny, maxx, maxy *float64, n int) uint64

// quantGate64 evaluates the quantized byte prefilter for a fixed window
// of 64 lanes starting at the given plane pointers, returning one bit per
// lane. Callers only test the result against zero; lanes past the logical
// end are garbage (the padding growQuant guarantees makes the overread
// safe, and a spurious survivor merely disables a skip).
//
//go:noescape
func quantGate64(q *[4]uint8, minx, miny, maxx, maxy *uint8) uint64

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)
