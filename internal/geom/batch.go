package geom

import "math/bits"

// MaskWords returns the number of uint64 words a bitmask over n rectangles
// needs (one bit per rectangle).
func MaskWords(n int) int { return (n + 63) >> 6 }

// intersect1 is the branchless single-rect intersection test: it returns 1
// iff r and the query box (qMinX..qMaxY) share at least one point, with the
// exact closed-rectangle semantics of Rect.Intersects. Each of the four
// min/max comparisons compiles to a flag-setting instruction feeding a
// bitwise AND, so the test carries no data-dependent branch; the query
// coordinates are passed as scalars so they stay in registers across a
// block.
func intersect1(qMinX, qMinY, qMaxX, qMaxY float64, r *Rect) uint64 {
	return b2u(r.MinX <= qMaxX) & b2u(qMinX <= r.MaxX) &
		b2u(r.MinY <= qMaxY) & b2u(qMinY <= r.MaxY)
}

// b2u converts a comparison result to 0/1 without a visible branch (the
// compiler lowers this pattern to SETcc on amd64).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// IntersectBatch tests the query rectangle q against every rectangle of
// rects and writes the outcomes as a bitmask into out: bit i%64 of
// out[i/64] is set iff rects[i] intersects q. The predicate is exactly
// Rect.Intersects, bit for bit — touching edges count; rectangles with a
// NaN coordinate and the canonical EmptyRect never match on either side
// (every comparison against NaN or crossed infinities is false); finite
// inverted rectangles behave however the four scalar comparisons say, same
// as Rect.Intersects. It returns the number of intersecting rectangles.
//
// This is the batch micro-kernel of the filter step: the rect slice is the
// structure-of-arrays view the R*-tree sweep cache and the partition engine
// already hold, rectangles are processed in 8-wide blocks whose compare
// chains overlap in flight, and the result is a bitmask the caller walks in
// whatever order it needs (entry order, plane-sweep order) without
// re-testing. out must hold at least MaskWords(len(rects)) words; every
// used word is fully overwritten, trailing bits of the last word are zero.
func IntersectBatch(q Rect, rects []Rect, out []uint64) int {
	n := len(rects)
	words := MaskWords(n)
	if words == 0 {
		return 0
	}
	out = out[:words]
	qMinX, qMinY, qMaxX, qMaxY := q.MinX, q.MinY, q.MaxX, q.MaxY
	count := 0
	for wi := 0; wi < words; wi++ {
		base := wi << 6
		end := base + 64
		if end > n {
			end = n
		}
		var word uint64
		i := base
		for ; i+8 <= end; i += 8 {
			// One 8-wide block per iteration, issued as two 4-wide
			// compare groups so the block's 32 coordinate loads don't
			// all have to be live at once (which would spill).
			blk := rects[i : i+8 : i+8]
			m := intersect1(qMinX, qMinY, qMaxX, qMaxY, &blk[0]) |
				intersect1(qMinX, qMinY, qMaxX, qMaxY, &blk[1])<<1 |
				intersect1(qMinX, qMinY, qMaxX, qMaxY, &blk[2])<<2 |
				intersect1(qMinX, qMinY, qMaxX, qMaxY, &blk[3])<<3
			m |= (intersect1(qMinX, qMinY, qMaxX, qMaxY, &blk[4]) |
				intersect1(qMinX, qMinY, qMaxX, qMaxY, &blk[5])<<1 |
				intersect1(qMinX, qMinY, qMaxX, qMaxY, &blk[6])<<2 |
				intersect1(qMinX, qMinY, qMaxX, qMaxY, &blk[7])<<3) << 4
			word |= m << (uint(i-base) & 63)
		}
		for ; i < end; i++ {
			word |= intersect1(qMinX, qMinY, qMaxX, qMaxY, &rects[i]) << (uint(i-base) & 63)
		}
		out[wi] = word
		count += bits.OnesCount64(word)
	}
	return count
}
