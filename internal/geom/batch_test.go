package geom

import (
	"math"
	"math/rand"
	"testing"
)

// maskBit reads bit i of a bitmask written by IntersectBatch.
func maskBit(mask []uint64, i int) bool {
	return mask[i>>6]>>(uint(i)&63)&1 != 0
}

// checkBatchAgainstScalar asserts that IntersectBatch over rects agrees
// bit-for-bit with the scalar Intersects test, and that the returned count
// matches the popcount of the mask.
func checkBatchAgainstScalar(t *testing.T, q Rect, rects []Rect) {
	t.Helper()
	mask := make([]uint64, MaskWords(len(rects)))
	// Poison the mask so "word fully overwritten" is actually tested.
	for i := range mask {
		mask[i] = ^uint64(0)
	}
	n := IntersectBatch(q, rects, mask)
	want := 0
	for i, r := range rects {
		scalar := q.Intersects(r)
		if scalar {
			want++
		}
		if maskBit(mask, i) != scalar {
			t.Fatalf("bit %d: batch=%v scalar=%v (q=%v r=%v)",
				i, maskBit(mask, i), scalar, q, r)
		}
	}
	if n != want {
		t.Fatalf("IntersectBatch returned %d, scalar count %d", n, want)
	}
	if len(rects)&63 != 0 && len(mask) > 0 {
		last := mask[len(mask)-1]
		if last>>(uint(len(rects))&63) != 0 {
			t.Fatalf("trailing bits of last word not zero: %064b", last)
		}
	}
}

func TestIntersectBatchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		rects := make([]Rect, n)
		for i := range rects {
			rects[i] = randomRect(rng)
		}
		checkBatchAgainstScalar(t, randomRect(rng), rects)
	}
}

// TestIntersectBatchTouchingEdges pins the closed-rectangle semantics on
// adversarial inputs where the query and the rects share only an edge or a
// corner, or miss by the smallest representable amount.
func TestIntersectBatchTouchingEdges(t *testing.T) {
	q := NewRect(10, 10, 20, 20)
	eps := math.Nextafter(0, 1)
	rects := []Rect{
		NewRect(0, 0, 10, 10),                            // corner touch at (10,10)
		NewRect(20, 20, 30, 30),                          // corner touch at (20,20)
		NewRect(0, 10, 10, 20),                           // left edge touch
		NewRect(20, 10, 30, 20),                          // right edge touch
		NewRect(10, 0, 20, 10),                           // bottom edge touch
		NewRect(10, 20, 20, 30),                          // top edge touch
		NewRect(0, 0, 10-eps, 10),                        // miss by one ulp in x
		NewRect(0, 0, 10, 10-eps),                        // miss by one ulp in y
		NewRect(math.Nextafter(20, 21), 10, 30, 20),      // miss past right edge
		NewRect(10, math.Nextafter(20, 21), 20, 30),      // miss past top edge
		{MinX: 15, MinY: 15, MaxX: 15, MaxY: 15},         // degenerate point inside
		{MinX: 20, MinY: 20, MaxX: 20, MaxY: 20},         // degenerate point on corner
		{MinX: 9, MinY: 9, MaxX: 9, MaxY: 9},             // degenerate point outside
		NewRect(-1e300, -1e300, 1e300, 1e300),            // enormous cover-all
		NewRect(10, 10, 20, 20),                          // exact duplicate of q
	}
	checkBatchAgainstScalar(t, q, rects)
	// Symmetric direction: each rect as the query against the rest.
	for _, r := range rects {
		checkBatchAgainstScalar(t, r, rects)
	}
}

// TestIntersectBatchNaNAndEmpty pins the degenerate-input contract: NaN
// coordinates and the canonical EmptyRect never match on either side, and
// finite inverted rectangles behave exactly like the scalar predicate
// (which can report them as intersecting when both coordinate ranges
// overlap).
func TestIntersectBatchNaNAndEmpty(t *testing.T) {
	nan := math.NaN()
	good := NewRect(0, 0, 100, 100)
	never := []Rect{
		{MinX: nan, MinY: 0, MaxX: 10, MaxY: 10},
		{MinX: 0, MinY: nan, MaxX: 10, MaxY: 10},
		{MinX: 0, MinY: 0, MaxX: nan, MaxY: 10},
		{MinX: 0, MinY: 0, MaxX: 10, MaxY: nan},
		{MinX: nan, MinY: nan, MaxX: nan, MaxY: nan},
		EmptyRect(),
	}
	inverted := []Rect{
		{MinX: 10, MinY: 0, MaxX: 0, MaxY: 10}, // inverted x, ranges overlap good
		{MinX: 0, MinY: 10, MaxX: 10, MaxY: 0}, // inverted y, ranges overlap good
	}
	all := append(append(append([]Rect{}, never...), inverted...), good)

	// The NaN/EmptyRect bits stay zero in the batch; everything, inverted
	// rects included, agrees with the scalar predicate bit for bit.
	mask := make([]uint64, MaskWords(len(all)))
	IntersectBatch(good, all, mask)
	for i := range never {
		if maskBit(mask, i) {
			t.Fatalf("NaN/empty rect %v matched", all[i])
		}
	}
	if !maskBit(mask, len(all)-1) {
		t.Fatal("valid rect bit not set")
	}
	checkBatchAgainstScalar(t, good, all)

	// NaN/EmptyRect as the query: nothing matches, ever.
	for _, q := range never {
		if n := IntersectBatch(q, all, mask); n != 0 {
			t.Fatalf("query %v matched %d rects, want 0", q, n)
		}
		checkBatchAgainstScalar(t, q, all)
	}
	for _, q := range inverted {
		checkBatchAgainstScalar(t, q, all)
	}
}

func TestIntersectBatchSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Cover the block boundaries of the 8-wide unroll and the 64-bit words.
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 63, 64, 65, 127, 128, 129, 200} {
		rects := make([]Rect, n)
		for i := range rects {
			rects[i] = randomRect(rng)
		}
		checkBatchAgainstScalar(t, NewRect(20, 20, 80, 80), rects)
	}
}

func FuzzIntersectBatch(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, ss := fuzzRects(data)
		all := append(rs, ss...)
		if len(all) == 0 {
			return
		}
		q := all[0]
		mask := make([]uint64, MaskWords(len(all)))
		n := IntersectBatch(q, all, mask)
		want := 0
		for i, r := range all {
			scalar := q.Intersects(r)
			if scalar {
				want++
			}
			if maskBit(mask, i) != scalar {
				t.Fatalf("bit %d disagrees with scalar Intersects", i)
			}
		}
		if n != want {
			t.Fatalf("count %d != scalar count %d", n, want)
		}
	})
}

// BenchmarkIntersectBatch measures the batch kernel against the scalar loop
// it replaces, on a node-sized block of rects (~quarter hit rate).
func BenchmarkIntersectBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	rects := make([]Rect, 128)
	for i := range rects {
		rects[i] = randomRect(rng)
	}
	q := NewRect(25, 25, 75, 75)
	mask := make([]uint64, MaskWords(len(rects)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectBatch(q, rects, mask)
	}
}

func BenchmarkIntersectScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	rects := make([]Rect, 128)
	for i := range rects {
		rects[i] = randomRect(rng)
	}
	q := NewRect(25, 25, 75, 75)
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		for j := range rects {
			if q.Intersects(rects[j]) {
				n++
			}
		}
	}
	_ = n
}
