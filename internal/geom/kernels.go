package geom

import (
	"fmt"
	"math/bits"
)

// Kernel dispatch. The filter kernels over Planes exist twice: a pure-Go
// scalar implementation that runs everywhere, and an AVX2 implementation
// (kernel_amd64.s) selected at init when the CPU and OS support 256-bit
// vector state. The two are semantically identical — the vector code
// evaluates the same closed-rectangle predicate, bit for bit, including
// NaN and EmptyRect never matching — so dispatch is purely a performance
// decision. SetKernel("purego") forces the fallback at runtime for A/B
// runs; builds with -tags purego never compile the assembly at all.

var useAVX2 = avx2Available

// KernelName returns the active kernel path: "avx2" or "purego".
func KernelName() string {
	if useAVX2 {
		return "avx2"
	}
	return "purego"
}

// SetKernel selects the kernel path: "auto" picks the best the CPU
// supports, "purego" forces the scalar fallback. It returns an error for
// unknown modes. Not safe to call concurrently with running kernels.
func SetKernel(mode string) error {
	switch mode {
	case "auto":
		useAVX2 = avx2Available
	case "purego":
		useAVX2 = false
	default:
		return fmt.Errorf("geom: unknown kernel %q (want auto or purego)", mode)
	}
	return nil
}

// IntersectBatchPlanes is IntersectBatch over a coordinate-plane view:
// bit i%64 of out[i/64] is set iff rectangle i of p intersects q, under
// exactly the Rect.Intersects predicate (touching edges count; NaN and
// EmptyRect never match). out must hold at least MaskWords(p.Len())
// words; used words are fully overwritten with zero trailing bits. It
// returns the number of intersecting rectangles.
//
// When p carries a quantized mirror, each 64-rectangle block first runs
// the byte-compare prefilter; blocks with no quantized survivor skip the
// exact float64 test entirely. The prefilter is conservative (outward
// rounding), so the result mask is unchanged — only the work to compute
// it shrinks.
func IntersectBatchPlanes(q Rect, p *Planes, out []uint64) int {
	n := p.Len()
	words := MaskWords(n)
	if words == 0 {
		return 0
	}
	out = out[:words]
	var qq [4]uint8
	if p.quantized {
		qq = p.quantQuery(q)
	}
	count := 0
	if useAVX2 {
		qv := [4]float64{q.MinX, q.MinY, q.MaxX, q.MaxY}
		for wi := 0; wi < words; wi++ {
			base := wi << 6
			cnt := n - base
			if cnt > 64 {
				cnt = 64
			}
			if p.quantized && quantGate64(&qq, &p.qMinX[base], &p.qMinY[base], &p.qMaxX[base], &p.qMaxY[base]) == 0 {
				out[wi] = 0
				continue
			}
			full := cnt &^ 3
			var word uint64
			if full > 0 {
				word = intersectBlocks(&qv, &p.MinX[base], &p.MinY[base], &p.MaxX[base], &p.MaxY[base], full)
			}
			for i := base + full; i < base+cnt; i++ {
				word |= intersectLane(q, p, i) << (uint(i-base) & 63)
			}
			out[wi] = word
			count += bits.OnesCount64(word)
		}
		return count
	}
	for wi := 0; wi < words; wi++ {
		base := wi << 6
		end := base + 64
		if end > n {
			end = n
		}
		if p.quantized && quantGateGo(&qq, p, base, end) == 0 {
			out[wi] = 0
			continue
		}
		var word uint64
		for i := base; i < end; i++ {
			word |= intersectLane(q, p, i) << (uint(i-base) & 63)
		}
		out[wi] = word
		count += bits.OnesCount64(word)
	}
	return count
}

// intersectLane is the branchless single-lane exact test over the planes
// (the SoA twin of intersect1).
func intersectLane(q Rect, p *Planes, i int) uint64 {
	return b2u(p.MinX[i] <= q.MaxX) & b2u(q.MinX <= p.MaxX[i]) &
		b2u(p.MinY[i] <= q.MaxY) & b2u(q.MinY <= p.MaxY[i])
}

// quantGateGo is the scalar form of the quantized prefilter over lanes
// [lo, hi): the returned word is nonzero iff any lane survives the
// byte-compare test. Used on the fallback path so the quantized gate
// behaves identically (conservatively) on every build.
func quantGateGo(qq *[4]uint8, p *Planes, lo, hi int) uint64 {
	var word uint64
	for i := lo; i < hi; i++ {
		m := b2u(p.qMinX[i] <= qq[2]) & b2u(qq[0] <= p.qMaxX[i]) &
			b2u(p.qMinY[i] <= qq[3]) & b2u(qq[1] <= p.qMaxY[i])
		word |= m << (uint(i-lo) & 63)
	}
	return word
}

// SweepPairsPlanesDense sweeps all of r against all of s, both already in
// ascending (MinX, MinY) order at positions 0..Len-1, and appends every
// intersecting pair to out as position pairs. This is the segment form of
// the sweep the partition join runs per tile: both sides are contiguous
// coordinate-plane slices (tile segments come out of the counting sort
// already sweep-sorted and densely packed), so every load in the scan is
// a step through a dense float64 stream — no index indirection, no
// striding. Pair set, order and the comparison count equal
// SweepPairsSoA over the same rectangles with identity index slices.
func SweepPairsPlanesDense(r, s *Planes, out []IndexPair) ([]IndexPair, int) {
	rMinX, rMinY, rMaxX, rMaxY := r.MinX, r.MinY, r.MaxX, r.MaxY
	sMinX, sMinY, sMaxX, sMaxY := s.MinX, s.MinY, s.MaxX, s.MaxY
	// Pin the sibling planes to the MinX lengths so the scans' bounds
	// checks vanish (the loop conditions already guard len(\*MinX)).
	rMinY, rMaxX, rMaxY = rMinY[:len(rMinX)], rMaxX[:len(rMinX)], rMaxY[:len(rMinX)]
	sMinY, sMaxX, sMaxY = sMinY[:len(sMinX)], sMaxX[:len(sMinX)], sMaxY[:len(sMinX)]
	comparisons := 0
	i, j := 0, 0
	for i < len(rMinX) && j < len(sMinX) {
		if rMinX[i] <= sMinX[j] {
			tMaxX, tMinY, tMaxY := rMaxX[i], rMinY[i], rMaxY[i]
			for k := j; k < len(sMinX); k++ {
				if sMinX[k] > tMaxX {
					break
				}
				comparisons++
				if tMinY <= sMaxY[k] && sMinY[k] <= tMaxY {
					out = append(out, IndexPair{R: int32(i), S: int32(k)})
				}
			}
			i++
		} else {
			tMaxX, tMinY, tMaxY := sMaxX[j], sMinY[j], sMaxY[j]
			for k := i; k < len(rMinX); k++ {
				if rMinX[k] > tMaxX {
					break
				}
				comparisons++
				if rMinY[k] <= tMaxY && tMinY <= rMaxY[k] {
					out = append(out, IndexPair{R: int32(k), S: int32(j)})
				}
			}
			j++
		}
	}
	return out, comparisons
}

// SweepPairsPlanes is SweepPairsSoA over coordinate-plane views: ri and si
// index into r and s and must be sorted by ascending (MinX, MinY, index).
// Every intersecting pair is appended to out in local plane-sweep order as
// original (ri, si) indices; the grown slice is returned with the number
// of rectangle pairs tested. Pair set, pair order and comparison count are
// identical to SweepPairsSoA on the same rectangles — the planes layout
// only changes how the coordinates are loaded (each inner scan reads one
// dense float64 stream per plane instead of striding 32-byte rects).
func SweepPairsPlanes(r, s *Planes, ri, si []int32, out []IndexPair) ([]IndexPair, int) {
	rMinX, rMinY, rMaxX, rMaxY := r.MinX, r.MinY, r.MaxX, r.MaxY
	sMinX, sMinY, sMaxX, sMaxY := s.MinX, s.MinY, s.MaxX, s.MaxY
	comparisons := 0
	i, j := 0, 0
	for i < len(ri) && j < len(si) {
		if rMinX[ri[i]] <= sMinX[si[j]] {
			oi := ri[i]
			tMaxX, tMinY, tMaxY := rMaxX[oi], rMinY[oi], rMaxY[oi]
			for k := j; k < len(si); k++ {
				c := si[k]
				if sMinX[c] > tMaxX {
					break
				}
				comparisons++
				if tMinY <= sMaxY[c] && sMinY[c] <= tMaxY {
					out = append(out, IndexPair{R: oi, S: c})
				}
			}
			i++
		} else {
			oj := si[j]
			tMaxX, tMinY, tMaxY := sMaxX[oj], sMinY[oj], sMaxY[oj]
			for k := i; k < len(ri); k++ {
				c := ri[k]
				if rMinX[c] > tMaxX {
					break
				}
				comparisons++
				if rMinY[c] <= tMaxY && tMinY <= rMaxY[c] {
					out = append(out, IndexPair{R: c, S: oj})
				}
			}
			j++
		}
	}
	return out, comparisons
}
