// Package geom provides the planar geometric primitives used by the spatial
// join: axis-parallel rectangles (MBRs), their set operations, and the
// two-sequence plane-sweep algorithm of Brinkhoff/Kriegel/Seeger that
// enumerates intersecting pairs in "local plane-sweep order".
package geom

import (
	"fmt"
	"math"
)

// Rect is a closed axis-parallel rectangle given by its lower-left corner
// (MinX, MinY) and its upper-right corner (MaxX, MaxY). A Rect with
// MinX > MaxX or MinY > MaxY is empty.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanned by two arbitrary corner points.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// EmptyRect returns the canonical empty rectangle. It behaves as the neutral
// element of Union.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r contains no point.
func (r Rect) IsEmpty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// Valid reports whether r is a well-formed, non-empty rectangle with finite
// coordinates.
func (r Rect) Valid() bool {
	return !r.IsEmpty() &&
		!math.IsInf(r.MinX, 0) && !math.IsInf(r.MinY, 0) &&
		!math.IsInf(r.MaxX, 0) && !math.IsInf(r.MaxY, 0) &&
		!math.IsNaN(r.MinX) && !math.IsNaN(r.MinY) &&
		!math.IsNaN(r.MaxX) && !math.IsNaN(r.MaxY)
}

// Intersects reports whether the closed rectangles r and s share at least one
// point. Touching edges count as intersection, matching the candidate test of
// the filter step.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether the point (x, y) lies in the closed
// rectangle r.
func (r Rect) ContainsPoint(x, y float64) bool {
	return r.MinX <= x && x <= r.MaxX && r.MinY <= y && y <= r.MaxY
}

// Area returns the area of r; an empty rectangle has area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Margin returns half the perimeter of r (the R*-tree "margin" measure).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Intersection returns the common part of r and s. The result is empty if
// the rectangles do not intersect.
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// OverlapArea returns the area of the intersection of r and s.
func (r Rect) OverlapArea(s Rect) float64 {
	return r.Intersection(s).Area()
}

// Enlargement returns by how much the area of r grows when s is added.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// CenterX returns the x-coordinate of the center of r.
func (r Rect) CenterX() float64 { return (r.MinX + r.MaxX) / 2 }

// CenterY returns the y-coordinate of the center of r.
func (r Rect) CenterY() float64 { return (r.MinY + r.MaxY) / 2 }

// CenterDist2 returns the squared distance between the centers of r and s.
// The R*-tree reinsertion step sorts entries by this measure.
func (r Rect) CenterDist2(s Rect) float64 {
	dx := r.CenterX() - s.CenterX()
	dy := r.CenterY() - s.CenterY()
	return dx*dx + dy*dy
}

// OverlapDegree returns a measure in [0, 1] of how strongly r and s overlap:
// the area of their intersection divided by the area of their union (Jaccard
// index). Two intersecting rectangles whose union has zero area (degenerate
// on degenerate) have degree 1. The paper's refinement-cost model (§4.2)
// scales the waiting period of the exact test by this degree.
func (r Rect) OverlapDegree(s Rect) float64 {
	if !r.Intersects(s) {
		return 0
	}
	inter := r.OverlapArea(s)
	union := r.Area() + s.Area() - inter
	if union <= 0 {
		return 1
	}
	d := inter / union
	if d > 1 {
		d = 1
	}
	return d
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g | %g,%g]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}
