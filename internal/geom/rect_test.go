package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	if r.MinX != 1 || r.MinY != 2 || r.MaxX != 5 || r.MaxY != 7 {
		t.Fatalf("NewRect did not normalize corners: %v", r)
	}
	if r.IsEmpty() {
		t.Fatalf("normalized rect reported empty: %v", r)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect is not empty")
	}
	if e.Area() != 0 {
		t.Fatalf("empty rect area = %g, want 0", e.Area())
	}
	if e.Margin() != 0 {
		t.Fatalf("empty rect margin = %g, want 0", e.Margin())
	}
	if e.Valid() {
		t.Fatal("empty rect must not be Valid")
	}
	r := NewRect(0, 0, 1, 1)
	if got := e.Union(r); got != r {
		t.Fatalf("EmptyRect.Union(r) = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Fatalf("r.Union(EmptyRect) = %v, want %v", got, r)
	}
}

func TestIntersectsBasic(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	cases := []struct {
		name string
		b    Rect
		want bool
	}{
		{"disjoint right", NewRect(3, 0, 4, 2), false},
		{"disjoint above", NewRect(0, 3, 2, 4), false},
		{"overlap", NewRect(1, 1, 3, 3), true},
		{"contained", NewRect(0.5, 0.5, 1.5, 1.5), true},
		{"containing", NewRect(-1, -1, 3, 3), true},
		{"touch edge", NewRect(2, 0, 3, 2), true},
		{"touch corner", NewRect(2, 2, 3, 3), true},
		{"identical", a, true},
		{"degenerate point inside", NewRect(1, 1, 1, 1), true},
		{"degenerate point outside", NewRect(5, 5, 5, 5), false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%s: Intersects = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("%s: Intersects not symmetric", c.name)
		}
	}
}

func TestContains(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	if !a.Contains(NewRect(2, 3, 4, 5)) {
		t.Error("Contains inner rect failed")
	}
	if !a.Contains(a) {
		t.Error("rect must contain itself")
	}
	if a.Contains(NewRect(2, 3, 11, 5)) {
		t.Error("Contains must reject protruding rect")
	}
	if !a.ContainsPoint(0, 0) || !a.ContainsPoint(10, 10) {
		t.Error("ContainsPoint must include boundary")
	}
	if a.ContainsPoint(10.0001, 5) {
		t.Error("ContainsPoint accepted outside point")
	}
}

func TestAreaMargin(t *testing.T) {
	r := NewRect(1, 2, 4, 6)
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %g, want 12", got)
	}
	if got := r.Margin(); got != 7 {
		t.Errorf("Margin = %g, want 7", got)
	}
}

func TestIntersectionUnion(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 1, 6, 3)
	got := a.Intersection(b)
	want := NewRect(2, 1, 4, 3)
	if got != want {
		t.Errorf("Intersection = %v, want %v", got, want)
	}
	u := a.Union(b)
	wantU := NewRect(0, 0, 6, 4)
	if u != wantU {
		t.Errorf("Union = %v, want %v", u, wantU)
	}
	// Disjoint intersection is the canonical empty rect.
	c := NewRect(10, 10, 11, 11)
	if !a.Intersection(c).IsEmpty() {
		t.Error("Intersection of disjoint rects must be empty")
	}
}

func TestEnlargement(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	if got := a.Enlargement(NewRect(1, 1, 2, 2)); got != 0 {
		t.Errorf("Enlargement of contained rect = %g, want 0", got)
	}
	if got := a.Enlargement(NewRect(0, 0, 4, 2)); got != 4 {
		t.Errorf("Enlargement = %g, want 4", got)
	}
}

func TestOverlapDegree(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	if got := a.OverlapDegree(NewRect(5, 5, 6, 6)); got != 0 {
		t.Errorf("disjoint degree = %g, want 0", got)
	}
	if got := a.OverlapDegree(a); got != 1 {
		t.Errorf("identical degree = %g, want 1", got)
	}
	// Jaccard: intersection 2, union 6.
	if got := a.OverlapDegree(NewRect(1, 0, 3, 2)); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("half overlap degree = %g, want 1/3", got)
	}
	// Degenerate point inside a proper rect: zero intersection area over
	// positive union area.
	if got := a.OverlapDegree(NewRect(1, 1, 1, 1)); got != 0 {
		t.Errorf("degenerate-in-square degree = %g, want 0", got)
	}
	// Degenerate on degenerate at the same spot: degree 1 by convention.
	p := NewRect(1, 1, 1, 1)
	if got := p.OverlapDegree(p); got != 1 {
		t.Errorf("degenerate-on-degenerate degree = %g, want 1", got)
	}
}

func TestCenterDist2(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(3, 4, 3, 4) // center (3,4), a center (1,1) -> dx=2 dy=3
	if got := a.CenterDist2(b); got != 13 {
		t.Errorf("CenterDist2 = %g, want 13", got)
	}
}

func TestRectString(t *testing.T) {
	if s := NewRect(0, 0, 1, 2).String(); s == "" {
		t.Fatal("String returned empty")
	}
}

// randomRect draws a small random rectangle inside [0,100)^2.
func randomRect(rng *rand.Rand) Rect {
	x := rng.Float64() * 100
	y := rng.Float64() * 100
	return NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
}

func TestQuickIntersectionSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(_ int) bool {
		a, b := randomRect(rng), randomRect(rng)
		return a.Intersects(b) == b.Intersects(a) &&
			a.OverlapArea(b) == b.OverlapArea(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(_ int) bool {
		a, b := randomRect(rng), randomRect(rng)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectionContained(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(_ int) bool {
		a, b := randomRect(rng), randomRect(rng)
		in := a.Intersection(b)
		if in.IsEmpty() {
			return !a.Intersects(b)
		}
		return a.Contains(in) && b.Contains(in) && a.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickAreaIdentity(t *testing.T) {
	// inclusion–exclusion upper bound: area(union) >= area(a)+area(b)-overlap.
	rng := rand.New(rand.NewSource(4))
	f := func(_ int) bool {
		a, b := randomRect(rng), randomRect(rng)
		return a.Union(b).Area() >= a.Area()+b.Area()-a.OverlapArea(b)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapDegreeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(_ int) bool {
		a, b := randomRect(rng), randomRect(rng)
		d := a.OverlapDegree(b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValid(t *testing.T) {
	if !NewRect(0, 0, 1, 1).Valid() {
		t.Error("unit rect must be valid")
	}
	if (Rect{MinX: math.NaN(), MaxX: 1, MinY: 0, MaxY: 1}).Valid() {
		t.Error("NaN rect must be invalid")
	}
	if (Rect{MinX: 0, MaxX: math.Inf(1), MinY: 0, MaxY: 1}).Valid() {
		t.Error("infinite rect must be invalid")
	}
}
