package geom

import "math"

// Planes is the structure-of-arrays coordinate-plane view of a rectangle
// sequence: the i-th rectangle is (MinX[i], MinY[i], MaxX[i], MaxY[i]).
// Splitting the coordinates into per-axis planes is what lets the filter
// kernels test several rectangles per instruction — each plane is a dense
// float64 stream a 4-wide compare can load directly, where the []Rect
// layout would need a gather.
//
// A Planes may additionally carry a quantized low-precision mirror: one
// uint8 per axis per rectangle, rounded outward (mins down, maxes up) over
// fixed bounds, so the byte-compare prefilter is conservative — every pair
// that intersects exactly also intersects in quantized space. See Quantize.
//
// The zero value is an empty Planes ready for use; Reset/SetRect/Gather
// reuse capacity and perform no allocation in steady state.
type Planes struct {
	MinX, MinY, MaxX, MaxY []float64

	// Quantized mirror (present iff quantized). The byte slices are
	// allocated with at least 64 bytes of capacity padding past the
	// length so the fixed-width vector gate may overread; the padding
	// content is irrelevant (spurious survivors only disable a skip).
	qMinX, qMinY, qMaxX, qMaxY []uint8
	// Outward quantization parameters: q = clamp((v-origin)*scale).
	qOrgX, qOrgY     float64
	qScaleX, qScaleY float64
	quantized        bool
}

// Len returns the number of rectangles.
func (p *Planes) Len() int { return len(p.MinX) }

// HasQuant reports whether the quantized mirror is present.
func (p *Planes) HasQuant() bool { return p.quantized }

// Reset sizes the planes for n rectangles, reusing capacity and keeping
// any prefix contents that were already present (callers overwrite the
// lanes they own). The quantized mirror is dropped.
func (p *Planes) Reset(n int) {
	p.MinX = growFloats(p.MinX, n)
	p.MinY = growFloats(p.MinY, n)
	p.MaxX = growFloats(p.MaxX, n)
	p.MaxY = growFloats(p.MaxY, n)
	p.quantized = false
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		out := make([]float64, n)
		copy(out, s)
		return out
	}
	return s[:n]
}

// SetRect stores rectangle r at index i. If the quantized mirror is
// present it is kept in sync (outward rounding under the stored bounds),
// so point mutations of a quantized Planes stay conservative.
func (p *Planes) SetRect(i int, r Rect) {
	p.MinX[i] = r.MinX
	p.MinY[i] = r.MinY
	p.MaxX[i] = r.MaxX
	p.MaxY[i] = r.MaxY
	if p.quantized {
		p.qMinX[i] = qDown(r.MinX, p.qOrgX, p.qScaleX)
		p.qMinY[i] = qDown(r.MinY, p.qOrgY, p.qScaleY)
		p.qMaxX[i] = qUp(r.MaxX, p.qOrgX, p.qScaleX)
		p.qMaxY[i] = qUp(r.MaxY, p.qOrgY, p.qScaleY)
	}
}

// RectAt returns rectangle i (the exact float64 coordinates).
func (p *Planes) RectAt(i int) Rect {
	return Rect{MinX: p.MinX[i], MinY: p.MinY[i], MaxX: p.MaxX[i], MaxY: p.MaxY[i]}
}

// View returns the subrange [lo, hi) of p as a Planes sharing p's backing
// arrays — no copying, valid as long as p's planes are not reallocated.
// The quantized mirror (and its bounds) is carried over when present; the
// vector gate's 64-byte overread stays inside the parent allocation
// because the parent's capacity padding extends past any view's end.
func (p *Planes) View(lo, hi int) Planes {
	v := Planes{
		MinX: p.MinX[lo:hi],
		MinY: p.MinY[lo:hi],
		MaxX: p.MaxX[lo:hi],
		MaxY: p.MaxY[lo:hi],
	}
	if p.quantized {
		v.qMinX = p.qMinX[lo:hi]
		v.qMinY = p.qMinY[lo:hi]
		v.qMaxX = p.qMaxX[lo:hi]
		v.qMaxY = p.qMaxY[lo:hi]
		v.qOrgX, v.qOrgY = p.qOrgX, p.qOrgY
		v.qScaleX, v.qScaleY = p.qScaleX, p.qScaleY
		v.quantized = true
	}
	return v
}

// FromRects fills the planes from an array-of-structs rect slice,
// dropping any quantized mirror.
func (p *Planes) FromRects(rects []Rect) {
	p.Reset(len(rects))
	for i := range rects {
		r := &rects[i]
		p.MinX[i] = r.MinX
		p.MinY[i] = r.MinY
		p.MaxX[i] = r.MaxX
		p.MaxY[i] = r.MaxY
	}
}

// Gather fills p with src's rectangles at the selected indices, reusing
// p's capacity. The quantized mirror (and its bounds) is carried over when
// src has one — the bytes were rounded outward under bounds independent of
// position, so a gathered subset stays conservative.
func (p *Planes) Gather(src *Planes, sel []int32) {
	p.Reset(len(sel))
	for i, s := range sel {
		p.MinX[i] = src.MinX[s]
		p.MinY[i] = src.MinY[s]
		p.MaxX[i] = src.MaxX[s]
		p.MaxY[i] = src.MaxY[s]
	}
	if src.quantized {
		p.qMinX = growQuant(p.qMinX, len(sel))
		p.qMinY = growQuant(p.qMinY, len(sel))
		p.qMaxX = growQuant(p.qMaxX, len(sel))
		p.qMaxY = growQuant(p.qMaxY, len(sel))
		for i, s := range sel {
			p.qMinX[i] = src.qMinX[s]
			p.qMinY[i] = src.qMinY[s]
			p.qMaxX[i] = src.qMaxX[s]
			p.qMaxY[i] = src.qMaxY[s]
		}
		p.qOrgX, p.qOrgY = src.qOrgX, src.qOrgY
		p.qScaleX, p.qScaleY = src.qScaleX, src.qScaleY
		p.quantized = true
	}
}

// Quantize builds the quantized uint8 mirror of the current rectangles
// over the given bounds (typically the MBR of the set). The rounding is
// outward — mins round down, maxes round up, NaN maps to the widest value
// for its role — which makes the byte prefilter conservative: if two
// rectangles intersect under the exact float64 predicate, their quantized
// images intersect too. Coordinates outside the bounds clamp to the edge
// cells, so the mirror stays valid (just less selective) for rectangles
// drifting out of bounds. Degenerate or non-finite bounds collapse the
// axis (scale 0): every value maps to cell 0 and the gate never rejects.
func (p *Planes) Quantize(bounds Rect) {
	n := p.Len()
	p.qMinX = growQuant(p.qMinX, n)
	p.qMinY = growQuant(p.qMinY, n)
	p.qMaxX = growQuant(p.qMaxX, n)
	p.qMaxY = growQuant(p.qMaxY, n)
	p.qOrgX, p.qScaleX = quantParams(bounds.MinX, bounds.MaxX)
	p.qOrgY, p.qScaleY = quantParams(bounds.MinY, bounds.MaxY)
	for i := 0; i < n; i++ {
		p.qMinX[i] = qDown(p.MinX[i], p.qOrgX, p.qScaleX)
		p.qMinY[i] = qDown(p.MinY[i], p.qOrgY, p.qScaleY)
		p.qMaxX[i] = qUp(p.MaxX[i], p.qOrgX, p.qScaleX)
		p.qMaxY[i] = qUp(p.MaxY[i], p.qOrgY, p.qScaleY)
	}
	p.quantized = true
}

// growQuant sizes a quantized plane, always keeping at least 64 bytes of
// capacity beyond the length: the vector gate loads fixed 64-byte windows
// from any in-range word base, so the overread must stay inside the
// allocation.
func growQuant(s []uint8, n int) []uint8 {
	if cap(s) < n+64 {
		return make([]uint8, n, n+64)
	}
	return s[:n]
}

// quantParams derives one axis' quantization mapping from its bounds.
func quantParams(lo, hi float64) (origin, scale float64) {
	w := hi - lo
	if !(w > 0) || math.IsInf(w, 0) || math.IsInf(lo, 0) {
		return 0, 0 // degenerate: everything maps to cell 0
	}
	return lo, 255 / w
}

// qDown quantizes a lower bound: round down, clamp to [0,255], NaN and
// -Inf map to 0 (the most permissive lower cell).
func qDown(v, origin, scale float64) uint8 {
	t := (v - origin) * scale
	if !(t > 0) { // NaN, -Inf, or <= 0
		return 0
	}
	if t >= 255 {
		return 255
	}
	return uint8(t) // truncation == floor for t > 0
}

// qUp quantizes an upper bound: round up, clamp to [0,255], NaN and +Inf
// map to 255 (the most permissive upper cell).
func qUp(v, origin, scale float64) uint8 {
	t := math.Ceil((v - origin) * scale)
	if !(t < 255) { // NaN, +Inf, or >= 255
		return 255
	}
	if t <= 0 {
		return 0
	}
	return uint8(t)
}

// quantQuery returns the query rectangle's outward-rounded image under p's
// quantization: {MinX, MinY, MaxX, MaxY} with mins rounded down and maxes
// rounded up, so the gate test (data.min <= q.max && q.min <= data.max,
// per axis, in bytes) is a superset of the exact predicate.
func (p *Planes) quantQuery(q Rect) [4]uint8 {
	return [4]uint8{
		qDown(q.MinX, p.qOrgX, p.qScaleX),
		qDown(q.MinY, p.qOrgY, p.qScaleY),
		qUp(q.MaxX, p.qOrgX, p.qScaleX),
		qUp(q.MaxY, p.qOrgY, p.qScaleY),
	}
}
