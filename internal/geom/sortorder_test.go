package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// checkSortOrder sorts a copy of order both ways and requires the
// quicksort/insertion hybrid to match the reference sort exactly (the
// order is total thanks to the index tiebreak, so the result is unique).
func checkSortOrder(t *testing.T, rects []Rect, order []int32) {
	t.Helper()
	got := append([]int32(nil), order...)
	SortOrderByMinX(rects, got)
	want := append([]int32(nil), order...)
	sort.Slice(want, func(i, j int) bool {
		return rectLess(rects[want[i]], rects[want[j]], int(want[i]), int(want[j]))
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("n=%d: position %d: got index %d, want %d", len(order), i, got[i], want[i])
		}
	}
}

func TestSortOrderByMinXLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 47, 48, 49, 100, 1000, 5000} {
		rects := make([]Rect, n)
		order := make([]int32, n)
		for i := range rects {
			rects[i] = randomRect(rng)
			order[i] = int32(i)
		}
		checkSortOrder(t, rects, order)

		// Heavy ties: every rect shares MinX, exercising the MinY and
		// index tiebreaks through the quicksort path.
		tied := make([]Rect, n)
		for i := range tied {
			tied[i] = NewRect(1, float64(i%7), 2, 10)
		}
		checkSortOrder(t, tied, order)

		// Already sorted (the adaptive fast path) and reverse sorted.
		sorted := append([]int32(nil), order...)
		SortOrderByMinX(rects, sorted)
		checkSortOrder(t, rects, sorted)
		rev := make([]int32, n)
		for i := range rev {
			rev[i] = sorted[n-1-i]
		}
		checkSortOrder(t, rects, rev)
	}
}
