package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// checkSortOrder sorts a copy of order both ways and requires the
// quicksort/insertion hybrid to match the reference sort exactly (the
// order is total thanks to the index tiebreak, so the result is unique).
func checkSortOrder(t *testing.T, rects []Rect, order []int32) {
	t.Helper()
	got := append([]int32(nil), order...)
	SortOrderByMinX(rects, got)
	want := append([]int32(nil), order...)
	sort.Slice(want, func(i, j int) bool {
		return rectLess(rects[want[i]], rects[want[j]], int(want[i]), int(want[j]))
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("n=%d: position %d: got index %d, want %d", len(order), i, got[i], want[i])
		}
	}
}

// checkSortOrderScratch mirrors checkSortOrder for the scratch-buffer
// repair variant, alternating nil and reused scratch buffers.
func checkSortOrderScratch(t *testing.T, rects []Rect, order []int32, scratch []int32) []int32 {
	t.Helper()
	got := append([]int32(nil), order...)
	scratch = SortOrderByMinXScratch(rects, got, scratch)
	want := append([]int32(nil), order...)
	sort.Slice(want, func(i, j int) bool {
		return rectLess(rects[want[i]], rects[want[j]], int(want[i]), int(want[j]))
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("n=%d: position %d: got index %d, want %d", len(order), i, got[i], want[i])
		}
	}
	return scratch
}

func TestSortOrderByMinXScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var scratch []int32
	for _, n := range []int{0, 1, 2, 47, 48, 49, 100, 1000, 5000} {
		rects := make([]Rect, n)
		order := make([]int32, n)
		for i := range rects {
			rects[i] = randomRect(rng)
			order[i] = int32(i)
		}
		// Random permutation (likely the quicksort fallback for large n).
		scratch = checkSortOrderScratch(t, rects, order, scratch)

		// Sorted baseline, then sparse disturbances of growing size: the
		// repair path must produce the same unique total order.
		sorted := append([]int32(nil), order...)
		SortOrderByMinX(rects, sorted)
		scratch = checkSortOrderScratch(t, rects, sorted, scratch)
		for _, k := range []int{1, 3, n / 8} {
			if k <= 0 || n < 2 {
				continue
			}
			dist := append([]int32(nil), sorted...)
			for j := 0; j < k; j++ {
				a, b := rng.Intn(n), rng.Intn(n)
				dist[a], dist[b] = dist[b], dist[a]
			}
			scratch = checkSortOrderScratch(t, rects, dist, scratch)
		}

		// Reverse order forces the heavy-disorder fallback.
		rev := make([]int32, n)
		for i := range rev {
			rev[i] = sorted[n-1-i]
		}
		scratch = checkSortOrderScratch(t, rects, rev, scratch)

		// Heavy MinX ties exercise the tiebreak through the repair merge.
		tied := make([]Rect, n)
		for i := range tied {
			tied[i] = NewRect(1, float64(i%7), 2, 10)
		}
		scratch = checkSortOrderScratch(t, tied, order, scratch)
	}
}

func TestSortOrderByMinXScratchZeroAlloc(t *testing.T) {
	const n = 4096
	rng := rand.New(rand.NewSource(13))
	rects := make([]Rect, n)
	order := make([]int32, n)
	for i := range rects {
		rects[i] = randomRect(rng)
		order[i] = int32(i)
	}
	SortOrderByMinX(rects, order)
	scratch := make([]int32, n)
	allocs := testing.AllocsPerRun(20, func() {
		order[10], order[2000] = order[2000], order[10]
		scratch = SortOrderByMinXScratch(rects, order, scratch)
	})
	if allocs != 0 {
		t.Fatalf("repair sort allocated %.1f times per run, want 0", allocs)
	}
}

func TestSortOrderByMinXLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 47, 48, 49, 100, 1000, 5000} {
		rects := make([]Rect, n)
		order := make([]int32, n)
		for i := range rects {
			rects[i] = randomRect(rng)
			order[i] = int32(i)
		}
		checkSortOrder(t, rects, order)

		// Heavy ties: every rect shares MinX, exercising the MinY and
		// index tiebreaks through the quicksort path.
		tied := make([]Rect, n)
		for i := range tied {
			tied[i] = NewRect(1, float64(i%7), 2, 10)
		}
		checkSortOrder(t, tied, order)

		// Already sorted (the adaptive fast path) and reverse sorted.
		sorted := append([]int32(nil), order...)
		SortOrderByMinX(rects, sorted)
		checkSortOrder(t, rects, sorted)
		rev := make([]int32, n)
		for i := range rev {
			rev[i] = sorted[n-1-i]
		}
		checkSortOrder(t, rects, rev)
	}
}
