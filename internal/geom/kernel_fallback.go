//go:build !amd64 || purego

package geom

// Scalar-only build: no vector kernels are compiled, dispatch is pinned to
// the pure-Go path. The stubs below exist so kernels.go typechecks; they
// are unreachable because useAVX2 can never become true when
// avx2Available is a false constant.

const avx2Available = false

func intersectBlocks(q *[4]float64, minx, miny, maxx, maxy *float64, n int) uint64 {
	panic("geom: vector kernel called on a purego build")
}

func quantGate64(q *[4]uint8, minx, miny, maxx, maxy *uint8) uint64 {
	panic("geom: vector kernel called on a purego build")
}
