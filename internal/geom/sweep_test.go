package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// collectSweep runs SweepPairs over the given (unsorted) rect slices after
// sorting copies by MinX, and returns the produced pairs in original-index
// space plus the order in which they were produced.
func collectSweep(t *testing.T, rs, ss []Rect) []Pair {
	t.Helper()
	ri := identity(len(rs))
	si := identity(len(ss))
	SortRectsByMinX(rs, ri)
	SortRectsByMinX(ss, si)
	var pairs []Pair
	SweepPairsIndexed(rs, ss, ri, si, func(r, s int) bool {
		pairs = append(pairs, Pair{R: r, S: s})
		return true
	})
	return pairs
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func pairSet(pairs []Pair) map[Pair]bool {
	m := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		m[p] = true
	}
	return m
}

func TestSweepPairsPaperExample(t *testing.T) {
	// Mirrors the structure of Figure 1: three R rects, two S rects with
	// known intersections.
	rs := []Rect{
		NewRect(0, 0, 2, 2), // r1
		NewRect(3, 0, 5, 2), // r2
		NewRect(6, 0, 8, 2), // r3
	}
	ss := []Rect{
		NewRect(1, 1, 4, 3),   // s1 intersects r1, r2
		NewRect(4.5, 0, 7, 1), // s2 intersects r2, r3
	}
	got := pairSet(collectSweep(t, rs, ss))
	want := pairSet([]Pair{{0, 0}, {1, 0}, {1, 1}, {2, 1}})
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d: %v", len(got), len(want), got)
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing pair %v", p)
		}
	}
}

func TestSweepPairsEmptyInputs(t *testing.T) {
	if n := SweepPairs(nil, nil, func(int, int) bool { t.Fatal("visited"); return true }); n != 0 {
		t.Fatalf("comparisons = %d, want 0", n)
	}
	rs := []Rect{NewRect(0, 0, 1, 1)}
	if n := SweepPairs(rs, nil, func(int, int) bool { t.Fatal("visited"); return true }); n != 0 {
		t.Fatalf("comparisons = %d, want 0", n)
	}
	if n := SweepPairs(nil, rs, func(int, int) bool { t.Fatal("visited"); return true }); n != 0 {
		t.Fatalf("comparisons = %d, want 0", n)
	}
}

func TestSweepPairsEarlyAbort(t *testing.T) {
	rs := []Rect{NewRect(0, 0, 10, 10), NewRect(1, 1, 9, 9)}
	ss := []Rect{NewRect(2, 2, 8, 8), NewRect(3, 3, 7, 7)}
	count := 0
	SweepPairs(rs, ss, func(int, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("visitor called %d times after abort, want 1", count)
	}
}

func TestSweepMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nr, ns := rng.Intn(40), rng.Intn(40)
		rs := make([]Rect, nr)
		ss := make([]Rect, ns)
		for i := range rs {
			rs[i] = randomRect(rng)
		}
		for i := range ss {
			ss[i] = randomRect(rng)
		}
		got := pairSet(collectSweep(t, rs, ss))
		var want []Pair
		BruteForcePairs(rs, ss, func(r, s int) bool {
			want = append(want, Pair{r, s})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: sweep found %d pairs, brute force %d",
				trial, len(got), len(want))
		}
		for _, p := range want {
			if !got[p] {
				t.Fatalf("trial %d: sweep missed pair %v", trial, p)
			}
		}
	}
}

func TestSweepComparisonsAtMostBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rs := make([]Rect, 30)
		ss := make([]Rect, 30)
		for i := range rs {
			rs[i] = randomRect(rng)
		}
		for i := range ss {
			ss[i] = randomRect(rng)
		}
		ri, si := identity(len(rs)), identity(len(ss))
		SortRectsByMinX(rs, ri)
		SortRectsByMinX(ss, si)
		sweepCmp := SweepPairsIndexed(rs, ss, ri, si, func(int, int) bool { return true })
		bruteCmp := BruteForcePairs(rs, ss, func(int, int) bool { return true })
		if sweepCmp > bruteCmp {
			t.Fatalf("trial %d: sweep used %d comparisons > brute force %d",
				trial, sweepCmp, bruteCmp)
		}
	}
}

func TestSweepOrderIsByMinX(t *testing.T) {
	// The local plane-sweep order: pairs must be produced in non-decreasing
	// order of the sweep-line stop positions. We verify the weaker but
	// sufficient invariant that the max of the two MinX values per produced
	// pair never exceeds the sweep position of later stops by checking the
	// sequence of min(MinX) per pair is "almost" sorted: each pair's anchor
	// rectangle (the one the sweep stopped at) has non-decreasing MinX.
	rng := rand.New(rand.NewSource(11))
	rs := make([]Rect, 60)
	ss := make([]Rect, 60)
	for i := range rs {
		rs[i] = randomRect(rng)
		ss[i] = randomRect(rng)
	}
	ri, si := identity(len(rs)), identity(len(ss))
	SortRectsByMinX(rs, ri)
	SortRectsByMinX(ss, si)
	var anchors []float64
	SweepPairsIndexed(rs, ss, ri, si, func(r, s int) bool {
		a := rs[r].MinX
		if ss[s].MinX < a {
			a = ss[s].MinX
		}
		anchors = append(anchors, a)
		return true
	})
	if !sort.Float64sAreSorted(anchors) {
		t.Fatalf("sweep anchors not sorted: %v", anchors)
	}
}

func TestSortRectsByMinXDeterministicTies(t *testing.T) {
	rects := []Rect{
		NewRect(1, 5, 2, 6),
		NewRect(1, 3, 2, 4),
		NewRect(1, 3, 9, 9),
	}
	idx := identity(3)
	SortRectsByMinX(rects, idx)
	// MinX all equal; order by MinY then index: rect1 (y=3,i=1), rect2
	// (y=3,i=2), rect0 (y=5).
	want := []int{1, 2, 0}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("tie-broken order = %v, want %v", idx, want)
		}
	}
}

func BenchmarkSweepPairs1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rs := make([]Rect, 1000)
	ss := make([]Rect, 1000)
	for i := range rs {
		rs[i] = randomRect(rng)
		ss[i] = randomRect(rng)
	}
	ri, si := identity(len(rs)), identity(len(ss))
	SortRectsByMinX(rs, ri)
	SortRectsByMinX(ss, si)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SweepPairsIndexed(rs, ss, ri, si, func(int, int) bool { return true })
	}
}

func BenchmarkBruteForcePairs1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rs := make([]Rect, 1000)
	ss := make([]Rect, 1000)
	for i := range rs {
		rs[i] = randomRect(rng)
		ss[i] = randomRect(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForcePairs(rs, ss, func(int, int) bool { return true })
	}
}

func TestSweepAllIdenticalRects(t *testing.T) {
	// Adversarial: every rectangle identical — the sweep must emit the full
	// cross product exactly once.
	r := NewRect(1, 1, 2, 2)
	rs := make([]Rect, 20)
	ss := make([]Rect, 15)
	for i := range rs {
		rs[i] = r
	}
	for i := range ss {
		ss[i] = r
	}
	got := pairSet(collectSweep(t, rs, ss))
	if len(got) != 20*15 {
		t.Fatalf("identical rects: %d pairs, want %d", len(got), 20*15)
	}
}

func TestSweepTouchingOnlyAtX(t *testing.T) {
	// Rectangles that touch exactly at their x-boundaries must pair.
	rs := []Rect{NewRect(0, 0, 1, 1)}
	ss := []Rect{NewRect(1, 0, 2, 1)}
	got := pairSet(collectSweep(t, rs, ss))
	if !got[Pair{0, 0}] {
		t.Fatal("x-touching rectangles not paired")
	}
}

func identity32(n int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

// runSoA sorts fresh order slices and runs the SoA sweep, returning its
// pairs and comparison count.
func runSoA(rs, ss []Rect) ([]IndexPair, int) {
	ri, si := identity32(len(rs)), identity32(len(ss))
	SortOrderByMinX(rs, ri)
	SortOrderByMinX(ss, si)
	return SweepPairsSoA(rs, ss, ri, si, nil)
}

// checkSoAAgainstOracles verifies the three contracts of SweepPairsSoA on
// one input: (1) the pair set equals BruteForcePairs' (correctness), (2) the
// emission order and (3) the comparison count equal SweepPairsIndexed's on
// the same sorted views (the simulated cost model depends on the count, so
// the batch kernel must not drift from the visitor kernel by a single test).
func checkSoAAgainstOracles(t *testing.T, rs, ss []Rect) {
	t.Helper()
	got, gotCmp := runSoA(rs, ss)

	var brute []Pair
	BruteForcePairs(rs, ss, func(r, s int) bool {
		brute = append(brute, Pair{r, s})
		return true
	})
	gotSet := make(map[Pair]bool, len(got))
	for _, p := range got {
		gotSet[Pair{int(p.R), int(p.S)}] = true
	}
	if len(got) != len(brute) || len(gotSet) != len(brute) {
		t.Fatalf("SoA sweep found %d pairs (%d unique), brute force %d",
			len(got), len(gotSet), len(brute))
	}
	for _, p := range brute {
		if !gotSet[p] {
			t.Fatalf("SoA sweep missed pair %v", p)
		}
	}

	ri, si := identity(len(rs)), identity(len(ss))
	SortRectsByMinX(rs, ri)
	SortRectsByMinX(ss, si)
	var ref []Pair
	refCmp := SweepPairsIndexed(rs, ss, ri, si, func(r, s int) bool {
		ref = append(ref, Pair{r, s})
		return true
	})
	if gotCmp != refCmp {
		t.Fatalf("SoA sweep counted %d comparisons, SweepPairsIndexed %d", gotCmp, refCmp)
	}
	for i, p := range got {
		if int(p.R) != ref[i].R || int(p.S) != ref[i].S {
			t.Fatalf("emission order diverges at %d: SoA %v, indexed %v", i, p, ref[i])
		}
	}
}

func TestSweepSoAMatchesOraclesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		rs := make([]Rect, rng.Intn(40))
		ss := make([]Rect, rng.Intn(40))
		for i := range rs {
			rs[i] = randomRect(rng)
		}
		for i := range ss {
			ss[i] = randomRect(rng)
		}
		checkSoAAgainstOracles(t, rs, ss)
	}
}

func TestSweepSoAEdgeCases(t *testing.T) {
	ident := NewRect(1, 1, 2, 2)
	same := make([]Rect, 10)
	for i := range same {
		same[i] = ident
	}
	cases := [][2][]Rect{
		{nil, nil},
		{{ident}, nil},
		{nil, {ident}},
		{same, same[:7]}, // full cross product
		{{NewRect(0, 0, 1, 1)}, {NewRect(1, 0, 2, 1)}},       // x-touching
		{{NewRect(0, 0, 1, 1)}, {NewRect(2, 0, 3, 1)}},       // disjoint in x
		{{NewRect(0, 0, 1, 1)}, {NewRect(0.5, 2, 1.5, 3)}},   // x-overlap, y-disjoint
		{{NewRect(0, 0, 10, 1), NewRect(0, 5, 10, 6)}, same}, // long spanners
	}
	for i, c := range cases {
		rs := append([]Rect(nil), c[0]...)
		ss := append([]Rect(nil), c[1]...)
		checkSoAAgainstOracles(t, rs, ss)
		if i == 0 {
			out, cmp := runSoA(rs, ss)
			if len(out) != 0 || cmp != 0 {
				t.Fatal("empty inputs produced work")
			}
		}
	}
}

func TestSweepSoAReusesOutBuffer(t *testing.T) {
	// The zero-allocation contract: with a cap-sufficient out slice the SoA
	// sweep must append into it rather than allocate a fresh backing array.
	rs := []Rect{NewRect(0, 0, 2, 2), NewRect(1, 0, 3, 2)}
	ss := []Rect{NewRect(0, 1, 2, 3), NewRect(1, 1, 3, 3)}
	buf := make([]IndexPair, 0, 16)
	ri, si := identity32(len(rs)), identity32(len(ss))
	SortOrderByMinX(rs, ri)
	SortOrderByMinX(ss, si)
	out, _ := SweepPairsSoA(rs, ss, ri, si, buf)
	if len(out) == 0 {
		t.Fatal("no pairs found")
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("SoA sweep abandoned the provided buffer despite sufficient capacity")
	}
}

// fuzzRects decodes raw fuzz bytes into two small rect sets with
// intersection-rich integer coordinates (small grid, modest extents).
func fuzzRects(data []byte) (rs, ss []Rect) {
	if len(data) == 0 {
		return nil, nil
	}
	nr := int(data[0]) % 24
	data = data[1:]
	decode := func() []Rect {
		var out []Rect
		for len(data) >= 4 {
			x := float64(data[0] % 32)
			y := float64(data[1] % 32)
			w := float64(data[2] % 8)
			h := float64(data[3] % 8)
			data = data[4:]
			out = append(out, NewRect(x, y, x+w, y+h))
		}
		return out
	}
	all := decode()
	if nr > len(all) {
		nr = len(all)
	}
	return all[:nr], all[nr:]
}

func FuzzSweepSoAOracle(f *testing.F) {
	f.Add([]byte{2, 0, 0, 4, 4, 1, 1, 4, 4, 3, 3, 2, 2, 8, 8, 1, 1})
	f.Add([]byte{0})
	f.Add([]byte{7, 5, 5, 0, 0, 5, 5, 0, 0, 5, 5, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, ss := fuzzRects(data)
		checkSoAAgainstOracles(t, rs, ss)
	})
}

func BenchmarkSweepPairsSoA1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rs := make([]Rect, 1000)
	ss := make([]Rect, 1000)
	for i := range rs {
		rs[i] = randomRect(rng)
		ss[i] = randomRect(rng)
	}
	ri, si := identity32(len(rs)), identity32(len(ss))
	SortOrderByMinX(rs, ri)
	SortOrderByMinX(ss, si)
	out := make([]IndexPair, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ = SweepPairsSoA(rs, ss, ri, si, out[:0])
	}
}
