package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// collectSweep runs SweepPairs over the given (unsorted) rect slices after
// sorting copies by MinX, and returns the produced pairs in original-index
// space plus the order in which they were produced.
func collectSweep(t *testing.T, rs, ss []Rect) []Pair {
	t.Helper()
	ri := identity(len(rs))
	si := identity(len(ss))
	SortRectsByMinX(rs, ri)
	SortRectsByMinX(ss, si)
	var pairs []Pair
	SweepPairsIndexed(rs, ss, ri, si, func(r, s int) bool {
		pairs = append(pairs, Pair{R: r, S: s})
		return true
	})
	return pairs
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func pairSet(pairs []Pair) map[Pair]bool {
	m := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		m[p] = true
	}
	return m
}

func TestSweepPairsPaperExample(t *testing.T) {
	// Mirrors the structure of Figure 1: three R rects, two S rects with
	// known intersections.
	rs := []Rect{
		NewRect(0, 0, 2, 2), // r1
		NewRect(3, 0, 5, 2), // r2
		NewRect(6, 0, 8, 2), // r3
	}
	ss := []Rect{
		NewRect(1, 1, 4, 3),   // s1 intersects r1, r2
		NewRect(4.5, 0, 7, 1), // s2 intersects r2, r3
	}
	got := pairSet(collectSweep(t, rs, ss))
	want := pairSet([]Pair{{0, 0}, {1, 0}, {1, 1}, {2, 1}})
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d: %v", len(got), len(want), got)
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing pair %v", p)
		}
	}
}

func TestSweepPairsEmptyInputs(t *testing.T) {
	if n := SweepPairs(nil, nil, func(int, int) bool { t.Fatal("visited"); return true }); n != 0 {
		t.Fatalf("comparisons = %d, want 0", n)
	}
	rs := []Rect{NewRect(0, 0, 1, 1)}
	if n := SweepPairs(rs, nil, func(int, int) bool { t.Fatal("visited"); return true }); n != 0 {
		t.Fatalf("comparisons = %d, want 0", n)
	}
	if n := SweepPairs(nil, rs, func(int, int) bool { t.Fatal("visited"); return true }); n != 0 {
		t.Fatalf("comparisons = %d, want 0", n)
	}
}

func TestSweepPairsEarlyAbort(t *testing.T) {
	rs := []Rect{NewRect(0, 0, 10, 10), NewRect(1, 1, 9, 9)}
	ss := []Rect{NewRect(2, 2, 8, 8), NewRect(3, 3, 7, 7)}
	count := 0
	SweepPairs(rs, ss, func(int, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("visitor called %d times after abort, want 1", count)
	}
}

func TestSweepMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nr, ns := rng.Intn(40), rng.Intn(40)
		rs := make([]Rect, nr)
		ss := make([]Rect, ns)
		for i := range rs {
			rs[i] = randomRect(rng)
		}
		for i := range ss {
			ss[i] = randomRect(rng)
		}
		got := pairSet(collectSweep(t, rs, ss))
		var want []Pair
		BruteForcePairs(rs, ss, func(r, s int) bool {
			want = append(want, Pair{r, s})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: sweep found %d pairs, brute force %d",
				trial, len(got), len(want))
		}
		for _, p := range want {
			if !got[p] {
				t.Fatalf("trial %d: sweep missed pair %v", trial, p)
			}
		}
	}
}

func TestSweepComparisonsAtMostBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rs := make([]Rect, 30)
		ss := make([]Rect, 30)
		for i := range rs {
			rs[i] = randomRect(rng)
		}
		for i := range ss {
			ss[i] = randomRect(rng)
		}
		ri, si := identity(len(rs)), identity(len(ss))
		SortRectsByMinX(rs, ri)
		SortRectsByMinX(ss, si)
		sweepCmp := SweepPairsIndexed(rs, ss, ri, si, func(int, int) bool { return true })
		bruteCmp := BruteForcePairs(rs, ss, func(int, int) bool { return true })
		if sweepCmp > bruteCmp {
			t.Fatalf("trial %d: sweep used %d comparisons > brute force %d",
				trial, sweepCmp, bruteCmp)
		}
	}
}

func TestSweepOrderIsByMinX(t *testing.T) {
	// The local plane-sweep order: pairs must be produced in non-decreasing
	// order of the sweep-line stop positions. We verify the weaker but
	// sufficient invariant that the max of the two MinX values per produced
	// pair never exceeds the sweep position of later stops by checking the
	// sequence of min(MinX) per pair is "almost" sorted: each pair's anchor
	// rectangle (the one the sweep stopped at) has non-decreasing MinX.
	rng := rand.New(rand.NewSource(11))
	rs := make([]Rect, 60)
	ss := make([]Rect, 60)
	for i := range rs {
		rs[i] = randomRect(rng)
		ss[i] = randomRect(rng)
	}
	ri, si := identity(len(rs)), identity(len(ss))
	SortRectsByMinX(rs, ri)
	SortRectsByMinX(ss, si)
	var anchors []float64
	SweepPairsIndexed(rs, ss, ri, si, func(r, s int) bool {
		a := rs[r].MinX
		if ss[s].MinX < a {
			a = ss[s].MinX
		}
		anchors = append(anchors, a)
		return true
	})
	if !sort.Float64sAreSorted(anchors) {
		t.Fatalf("sweep anchors not sorted: %v", anchors)
	}
}

func TestSortRectsByMinXDeterministicTies(t *testing.T) {
	rects := []Rect{
		NewRect(1, 5, 2, 6),
		NewRect(1, 3, 2, 4),
		NewRect(1, 3, 9, 9),
	}
	idx := identity(3)
	SortRectsByMinX(rects, idx)
	// MinX all equal; order by MinY then index: rect1 (y=3,i=1), rect2
	// (y=3,i=2), rect0 (y=5).
	want := []int{1, 2, 0}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("tie-broken order = %v, want %v", idx, want)
		}
	}
}

func BenchmarkSweepPairs1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rs := make([]Rect, 1000)
	ss := make([]Rect, 1000)
	for i := range rs {
		rs[i] = randomRect(rng)
		ss[i] = randomRect(rng)
	}
	ri, si := identity(len(rs)), identity(len(ss))
	SortRectsByMinX(rs, ri)
	SortRectsByMinX(ss, si)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SweepPairsIndexed(rs, ss, ri, si, func(int, int) bool { return true })
	}
}

func BenchmarkBruteForcePairs1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rs := make([]Rect, 1000)
	ss := make([]Rect, 1000)
	for i := range rs {
		rs[i] = randomRect(rng)
		ss[i] = randomRect(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForcePairs(rs, ss, func(int, int) bool { return true })
	}
}

func TestSweepAllIdenticalRects(t *testing.T) {
	// Adversarial: every rectangle identical — the sweep must emit the full
	// cross product exactly once.
	r := NewRect(1, 1, 2, 2)
	rs := make([]Rect, 20)
	ss := make([]Rect, 15)
	for i := range rs {
		rs[i] = r
	}
	for i := range ss {
		ss[i] = r
	}
	got := pairSet(collectSweep(t, rs, ss))
	if len(got) != 20*15 {
		t.Fatalf("identical rects: %d pairs, want %d", len(got), 20*15)
	}
}

func TestSweepTouchingOnlyAtX(t *testing.T) {
	// Rectangles that touch exactly at their x-boundaries must pair.
	rs := []Rect{NewRect(0, 0, 1, 1)}
	ss := []Rect{NewRect(1, 0, 2, 1)}
	got := pairSet(collectSweep(t, rs, ss))
	if !got[Pair{0, 0}] {
		t.Fatal("x-touching rectangles not paired")
	}
}
