package geom

import "sort"

// Pair identifies one intersecting pair produced by the plane sweep: the
// indices refer to the two input sequences (R index, S index).
type Pair struct {
	R, S int
}

// SortRectsByMinX sorts idx so that rects[idx[i]].MinX is non-decreasing.
// The R*-tree node join sorts entries by their lower x-coordinate before
// sweeping (§2.2 of the paper).
func SortRectsByMinX(rects []Rect, idx []int) {
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := rects[idx[a]], rects[idx[b]]
		if ra.MinX != rb.MinX {
			return ra.MinX < rb.MinX
		}
		// Tie-break on MinY and then index for determinism.
		if ra.MinY != rb.MinY {
			return ra.MinY < rb.MinY
		}
		return idx[a] < idx[b]
	})
}

// SweepVisitor receives each intersecting pair discovered by SweepPairs, in
// local plane-sweep order. Returning false aborts the sweep early.
type SweepVisitor func(r, s int) bool

// SweepPairs enumerates all intersecting pairs between the rectangle
// sequences rs and ss using the plane-sweep technique of §2.2: both
// sequences must be sorted by ascending MinX (use SortRectsByMinX). The
// sweep-line moves to the unprocessed rectangle with the smallest MinX; the
// other sequence is then scanned from its current front until a rectangle
// starts beyond the sweep rectangle's MaxX. Pairs are emitted in local
// plane-sweep order. comparisons returns the number of rectangle pairs that
// were tested for intersection, which drives the CPU cost model.
//
// The function performs no allocation beyond the visitor's own work.
func SweepPairs(rs, ss []Rect, visit SweepVisitor) (comparisons int) {
	i, j := 0, 0 // next unmarked rectangle in each sequence
	for i < len(rs) && j < len(ss) {
		if rs[i].MinX <= ss[j].MinX {
			t := rs[i]
			// Scan S starting at j until a rectangle starts past t.MaxX.
			for k := j; k < len(ss) && ss[k].MinX <= t.MaxX; k++ {
				comparisons++
				if yOverlap(t, ss[k]) {
					if !visit(i, k) {
						return comparisons
					}
				}
			}
			i++
		} else {
			t := ss[j]
			for k := i; k < len(rs) && rs[k].MinX <= t.MaxX; k++ {
				comparisons++
				if yOverlap(rs[k], t) {
					if !visit(k, j) {
						return comparisons
					}
				}
			}
			j++
		}
	}
	return comparisons
}

// yOverlap tests the y-extents only: within the sweep the x-overlap is
// already guaranteed by the scan condition MinX <= t.MaxX together with the
// sorted order (every scanned rectangle starts at or after t.MinX).
func yOverlap(a, b Rect) bool {
	return a.MinY <= b.MaxY && b.MinY <= a.MaxY
}

// SweepPairsIndexed is SweepPairs over index views: ri and si are index
// slices into rects r and s, each sorted by ascending MinX. The visitor
// receives original indices (ri[i], si[j]).
func SweepPairsIndexed(r, s []Rect, ri, si []int, visit SweepVisitor) (comparisons int) {
	i, j := 0, 0
	for i < len(ri) && j < len(si) {
		if r[ri[i]].MinX <= s[si[j]].MinX {
			t := r[ri[i]]
			for k := j; k < len(si) && s[si[k]].MinX <= t.MaxX; k++ {
				comparisons++
				if yOverlap(t, s[si[k]]) {
					if !visit(ri[i], si[k]) {
						return comparisons
					}
				}
			}
			i++
		} else {
			t := s[si[j]]
			for k := i; k < len(ri) && r[ri[k]].MinX <= t.MaxX; k++ {
				comparisons++
				if yOverlap(r[ri[k]], t) {
					if !visit(ri[k], si[j]) {
						return comparisons
					}
				}
			}
			j++
		}
	}
	return comparisons
}

// BruteForcePairs enumerates all intersecting pairs by testing every
// combination. It exists as the correctness oracle for SweepPairs in tests
// and as the nested-loops baseline for the ablation benchmarks.
func BruteForcePairs(rs, ss []Rect, visit SweepVisitor) (comparisons int) {
	for i := range rs {
		for j := range ss {
			comparisons++
			if rs[i].Intersects(ss[j]) {
				if !visit(i, j) {
					return comparisons
				}
			}
		}
	}
	return comparisons
}
