package geom

// Pair identifies one intersecting pair produced by the plane sweep: the
// indices refer to the two input sequences (R index, S index).
type Pair struct {
	R, S int
}

// IndexPair is one intersecting pair found by SweepPairsSoA; the indices
// refer to the rect slices the sweep ran over.
type IndexPair struct {
	R, S int32
}

// rectLess is the total order the plane sweep requires: ascending MinX, ties
// broken on MinY and then on the original index for determinism.
func rectLess(a, b Rect, ia, ib int) bool {
	if a.MinX != b.MinX {
		return a.MinX < b.MinX
	}
	if a.MinY != b.MinY {
		return a.MinY < b.MinY
	}
	return ia < ib
}

// SortRectsByMinX sorts idx so that rects[idx[i]].MinX is non-decreasing.
// The R*-tree node join sorts entries by their lower x-coordinate before
// sweeping (§2.2 of the paper). Node entry lists are short (at most the
// directory fanout), so a binary-insertion sort beats the reflection-based
// sort.Slice and performs no allocation.
func SortRectsByMinX(rects []Rect, idx []int) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		r := rects[v]
		lo, hi := 0, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if rectLess(r, rects[idx[mid]], v, idx[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		copy(idx[lo+1:i+1], idx[lo:i])
		idx[lo] = v
	}
}

// SortOrderByMinX is SortRectsByMinX over an int32 order slice — the form
// the R*-tree node sweep cache stores. Allocation-free, and adaptive for
// long inputs: an already-ordered slice (e.g. the previous join's order
// over unchanged data) is verified in one linear pass and returned as-is,
// so steady-state re-sorts cost O(n).
func SortOrderByMinX(rects []Rect, order []int32) {
	if len(order) <= orderSortCutoff {
		insertionSortOrder(rects, order)
		return
	}
	if orderIsSorted(rects, order) {
		return
	}
	quickSortOrder(rects, order)
}

// orderSortCutoff is the length at or below which binary-insertion sort
// beats quicksort partitioning (node-sized lists sit below it).
const orderSortCutoff = 48

// repairMaxFrac bounds the repair path of SortOrderByMinXScratch: with more
// than 1/repairMaxFrac of the elements displaced the extract-and-merge
// repair loses to a straight quicksort, so the function falls back.
const repairMaxFrac = 4

// SortOrderByMinXScratch is SortOrderByMinX with a caller-provided scratch
// buffer that enables a repair strategy for nearly-sorted inputs: one scan
// compacts the leading ascending run in place and extracts the displaced
// elements into scratch; the (few) displaced elements are sorted on their
// own and merged back from the tail, so a k-element disturbance of an
// n-element order costs O(n + k log k) instead of a full O(n log n) sort.
// This is the partition join's order-maintenance workhorse — a mutated
// input typically displaces a handful of rectangles out of an otherwise
// intact sweep order. Inputs with more than a quarter of their elements
// displaced fall back to quicksort. Returns the (possibly grown) scratch
// buffer for reuse; passing nil scratch is allowed.
func SortOrderByMinXScratch(rects []Rect, order []int32, scratch []int32) []int32 {
	n := len(order)
	if n <= orderSortCutoff {
		insertionSortOrder(rects, order)
		return scratch
	}
	if cap(scratch) < n {
		scratch = make([]int32, n)
	}
	scratch = scratch[:n]
	// Split scan: order[:k] accumulates the kept ascending subsequence,
	// scratch[:d] the elements that broke it. Reads stay ahead of writes
	// (k+d == i), so the compaction is safe in place.
	k, d := 0, 0
	for i := 0; i < n; i++ {
		v := order[i]
		if k > 0 {
			p := order[k-1]
			if rectLess(rects[v], rects[p], int(v), int(p)) {
				scratch[d] = v
				d++
				continue
			}
		}
		order[k] = v
		k++
	}
	if d == 0 {
		return scratch // already sorted
	}
	if d > n/repairMaxFrac {
		// Heavily disordered: restore the permutation and sort outright.
		copy(order[k:], scratch[:d])
		quickSortOrder(rects, order)
		return scratch
	}
	if d <= orderSortCutoff {
		insertionSortOrder(rects, scratch[:d])
	} else {
		quickSortOrder(rects, scratch[:d])
	}
	// Backward merge of order[:k] and scratch[:d] into order[:n]: writing
	// from the tail never clobbers an unread kept element because the write
	// position stays at least d slots ahead of the read position.
	i, jd := k-1, d-1
	for pos := n - 1; jd >= 0; pos-- {
		if i >= 0 && rectLess(rects[scratch[jd]], rects[order[i]], int(scratch[jd]), int(order[i])) {
			order[pos] = order[i]
			i--
		} else {
			order[pos] = scratch[jd]
			jd--
		}
	}
	return scratch
}

// insertionSortOrder is a binary-insertion sort over the order slice.
func insertionSortOrder(rects []Rect, order []int32) {
	for i := 1; i < len(order); i++ {
		v := order[i]
		r := rects[v]
		lo, hi := 0, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if rectLess(r, rects[order[mid]], int(v), int(order[mid])) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		copy(order[lo+1:i+1], order[lo:i])
		order[lo] = v
	}
}

func orderIsSorted(rects []Rect, order []int32) bool {
	if len(order) == 0 {
		return true
	}
	// Carry the previous rect through the scan so each step gathers one
	// rect, not two; this check runs on every steady-state re-sort.
	prev := &rects[order[0]]
	pi := order[0]
	for i := 1; i < len(order); i++ {
		cur := &rects[order[i]]
		ci := order[i]
		if cur.MinX < prev.MinX ||
			(cur.MinX == prev.MinX &&
				(cur.MinY < prev.MinY || (cur.MinY == prev.MinY && ci < pi))) {
			return false
		}
		prev, pi = cur, ci
	}
	return true
}

// quickSortOrder is a median-of-three quicksort with direct rect-key
// comparisons (no sort.Interface indirection); the unique index tiebreak
// in rectLess makes the order total, so equal-key pathologies cannot
// arise. Recurses on the smaller partition to bound stack depth.
func quickSortOrder(rects []Rect, order []int32) {
	for len(order) > orderSortCutoff {
		p := partitionOrder(rects, order)
		if p < len(order)-p-1 {
			quickSortOrder(rects, order[:p])
			order = order[p+1:]
		} else {
			quickSortOrder(rects, order[p+1:])
			order = order[:p]
		}
	}
	insertionSortOrder(rects, order)
}

// partitionOrder partitions order around the median of its first, middle
// and last keys, returning the pivot's final position.
func partitionOrder(rects []Rect, order []int32) int {
	n := len(order)
	mid := n / 2
	if rectLess(rects[order[mid]], rects[order[0]], int(order[mid]), int(order[0])) {
		order[0], order[mid] = order[mid], order[0]
	}
	if rectLess(rects[order[n-1]], rects[order[0]], int(order[n-1]), int(order[0])) {
		order[0], order[n-1] = order[n-1], order[0]
	}
	if rectLess(rects[order[n-1]], rects[order[mid]], int(order[n-1]), int(order[mid])) {
		order[mid], order[n-1] = order[n-1], order[mid]
	}
	order[mid], order[n-1] = order[n-1], order[mid] // pivot to the end
	pv := order[n-1]
	pr := rects[pv]
	i := 0
	for k := 0; k < n-1; k++ {
		if rectLess(rects[order[k]], pr, int(order[k]), int(pv)) {
			order[i], order[k] = order[k], order[i]
			i++
		}
	}
	order[i], order[n-1] = order[n-1], order[i]
	return i
}

// SweepVisitor receives each intersecting pair discovered by SweepPairs, in
// local plane-sweep order. Returning false aborts the sweep early.
type SweepVisitor func(r, s int) bool

// SweepPairs enumerates all intersecting pairs between the rectangle
// sequences rs and ss using the plane-sweep technique of §2.2: both
// sequences must be sorted by ascending MinX (use SortRectsByMinX). The
// sweep-line moves to the unprocessed rectangle with the smallest MinX; the
// other sequence is then scanned from its current front until a rectangle
// starts beyond the sweep rectangle's MaxX. Pairs are emitted in local
// plane-sweep order. comparisons returns the number of rectangle pairs that
// were tested for intersection, which drives the CPU cost model.
//
// The function performs no allocation beyond the visitor's own work.
func SweepPairs(rs, ss []Rect, visit SweepVisitor) (comparisons int) {
	i, j := 0, 0 // next unmarked rectangle in each sequence
	for i < len(rs) && j < len(ss) {
		if rs[i].MinX <= ss[j].MinX {
			t := rs[i]
			// Scan S starting at j until a rectangle starts past t.MaxX.
			for k := j; k < len(ss) && ss[k].MinX <= t.MaxX; k++ {
				comparisons++
				if yOverlap(t, ss[k]) {
					if !visit(i, k) {
						return comparisons
					}
				}
			}
			i++
		} else {
			t := ss[j]
			for k := i; k < len(rs) && rs[k].MinX <= t.MaxX; k++ {
				comparisons++
				if yOverlap(rs[k], t) {
					if !visit(k, j) {
						return comparisons
					}
				}
			}
			j++
		}
	}
	return comparisons
}

// yOverlap tests the y-extents only: within the sweep the x-overlap is
// already guaranteed by the scan condition MinX <= t.MaxX together with the
// sorted order (every scanned rectangle starts at or after t.MinX).
func yOverlap(a, b Rect) bool {
	return a.MinY <= b.MaxY && b.MinY <= a.MaxY
}

// SweepPairsIndexed is SweepPairs over index views: ri and si are index
// slices into rects r and s, each sorted by ascending MinX. The visitor
// receives original indices (ri[i], si[j]).
func SweepPairsIndexed(r, s []Rect, ri, si []int, visit SweepVisitor) (comparisons int) {
	i, j := 0, 0
	for i < len(ri) && j < len(si) {
		if r[ri[i]].MinX <= s[si[j]].MinX {
			t := r[ri[i]]
			for k := j; k < len(si) && s[si[k]].MinX <= t.MaxX; k++ {
				comparisons++
				if yOverlap(t, s[si[k]]) {
					if !visit(ri[i], si[k]) {
						return comparisons
					}
				}
			}
			i++
		} else {
			t := s[si[j]]
			for k := i; k < len(ri) && r[ri[k]].MinX <= t.MaxX; k++ {
				comparisons++
				if yOverlap(r[ri[k]], t) {
					if !visit(ri[k], si[j]) {
						return comparisons
					}
				}
			}
			j++
		}
	}
	return comparisons
}

// SweepPairsSoA is the allocation-free batch form of SweepPairsIndexed,
// operating on structure-of-arrays rect views: ri and si index into r and s
// and must be sorted by ascending MinX (the R*-tree node sweep cache stores
// exactly this order). Every intersecting pair is appended to out — in local
// plane-sweep order, as original (ri, si) indices — and the grown slice is
// returned together with the number of rectangle pairs tested, which is
// identical to SweepPairsIndexed's count on the same inputs.
//
// Compared to the visitor form it performs no indirect calls in the inner
// loop: the sweep rectangle's bounds are held in locals and each scan is a
// straight compare-and-append, which is what lets the join kernel run a
// node pair without touching the heap (pass a cap-sufficient out).
func SweepPairsSoA(r, s []Rect, ri, si []int32, out []IndexPair) ([]IndexPair, int) {
	comparisons := 0
	i, j := 0, 0
	for i < len(ri) && j < len(si) {
		if r[ri[i]].MinX <= s[si[j]].MinX {
			t := r[ri[i]]
			tMaxX, tMinY, tMaxY := t.MaxX, t.MinY, t.MaxY
			oi := ri[i]
			for k := j; k < len(si); k++ {
				c := s[si[k]]
				if c.MinX > tMaxX {
					break
				}
				comparisons++
				if tMinY <= c.MaxY && c.MinY <= tMaxY {
					out = append(out, IndexPair{R: oi, S: si[k]})
				}
			}
			i++
		} else {
			t := s[si[j]]
			tMaxX, tMinY, tMaxY := t.MaxX, t.MinY, t.MaxY
			oj := si[j]
			for k := i; k < len(ri); k++ {
				c := r[ri[k]]
				if c.MinX > tMaxX {
					break
				}
				comparisons++
				if c.MinY <= tMaxY && tMinY <= c.MaxY {
					out = append(out, IndexPair{R: ri[k], S: oj})
				}
			}
			j++
		}
	}
	return out, comparisons
}

// BruteForcePairs enumerates all intersecting pairs by testing every
// combination. It exists as the correctness oracle for SweepPairs in tests
// and as the nested-loops baseline for the ablation benchmarks.
func BruteForcePairs(rs, ss []Rect, visit SweepVisitor) (comparisons int) {
	for i := range rs {
		for j := range ss {
			comparisons++
			if rs[i].Intersects(ss[j]) {
				if !visit(i, j) {
					return comparisons
				}
			}
		}
	}
	return comparisons
}
