//go:build amd64 && !purego

#include "textflag.h"

// func intersectBlocks(q *[4]float64, minx, miny, maxx, maxy *float64, n int) uint64
//
// Exact 4-wide closed-rectangle test. q holds the query as
// {MinX, MinY, MaxX, MaxY}; the planes hold the data rectangles. A lane's
// bit is set iff
//
//	minx[i] <= q.MaxX && q.MinX <= maxx[i] &&
//	miny[i] <= q.MaxY && q.MinY <= maxy[i]
//
// evaluated with VCMPPD predicate LE_OQ (0x12): quiet, ordered, so any
// NaN operand yields false — exactly the scalar semantics. n must be a
// positive multiple of 4, at most 64 (the caller covers the remainder
// lanes in Go).
TEXT ·intersectBlocks(SB), NOSPLIT, $0-56
	MOVQ q+0(FP), AX
	VBROADCASTSD 0(AX), Y0  // q.MinX
	VBROADCASTSD 8(AX), Y1  // q.MinY
	VBROADCASTSD 16(AX), Y2 // q.MaxX
	VBROADCASTSD 24(AX), Y3 // q.MaxY
	MOVQ minx+8(FP), SI
	MOVQ miny+16(FP), DI
	MOVQ maxx+24(FP), R8
	MOVQ maxy+32(FP), R9
	MOVQ n+40(FP), R11
	XORQ BX, BX             // result word
	XORQ CX, CX             // lane index (CL doubles as the shift count)

loop:
	VMOVUPD (SI)(CX*8), Y4
	VCMPPD  $0x12, Y2, Y4, Y4 // minx <= q.MaxX
	VMOVUPD (R8)(CX*8), Y5
	VCMPPD  $0x12, Y5, Y0, Y5 // q.MinX <= maxx
	VANDPD  Y5, Y4, Y4
	VMOVUPD (DI)(CX*8), Y6
	VCMPPD  $0x12, Y3, Y6, Y6 // miny <= q.MaxY
	VMOVUPD (R9)(CX*8), Y7
	VCMPPD  $0x12, Y7, Y1, Y7 // q.MinY <= maxy
	VANDPD  Y7, Y6, Y6
	VANDPD  Y6, Y4, Y4
	VMOVMSKPD Y4, AX
	SHLQ    CL, AX            // CL = lane index, 0..60
	ORQ     AX, BX
	ADDQ    $4, CX
	CMPQ    CX, R11
	JLT     loop

	VZEROUPPER
	MOVQ BX, ret+48(FP)
	RET

// func quantGate64(q *[4]uint8, minx, miny, maxx, maxy *uint8) uint64
//
// Quantized byte prefilter over a fixed 64-lane window: the same four-way
// test as above on the uint8 mirrors, using the unsigned-compare identity
// a <= b  <=>  min(a, b) == a (VPMINUB + VPCMPEQB; AVX2 has no unsigned
// byte compare). Two 32-byte groups, one VPMOVMSKB each. Reads exactly
// 64 bytes per plane regardless of the logical length — growQuant pads
// the allocations, and trailing garbage bits only cost a skipped skip.
TEXT ·quantGate64(SB), NOSPLIT, $0-48
	MOVQ q+0(FP), AX
	VPBROADCASTB 0(AX), Y0 // q.MinX
	VPBROADCASTB 1(AX), Y1 // q.MinY
	VPBROADCASTB 2(AX), Y2 // q.MaxX
	VPBROADCASTB 3(AX), Y3 // q.MaxY
	MOVQ minx+8(FP), SI
	MOVQ miny+16(FP), DI
	MOVQ maxx+24(FP), R8
	MOVQ maxy+32(FP), R9

	// Lanes 0..31.
	VMOVDQU  (SI), Y4
	VPMINUB  Y2, Y4, Y5
	VPCMPEQB Y4, Y5, Y4    // minx <= q.MaxX
	VMOVDQU  (R8), Y5
	VPMINUB  Y5, Y0, Y6
	VPCMPEQB Y0, Y6, Y6    // q.MinX <= maxx
	VPAND    Y6, Y4, Y4
	VMOVDQU  (DI), Y5
	VPMINUB  Y3, Y5, Y6
	VPCMPEQB Y5, Y6, Y5    // miny <= q.MaxY
	VPAND    Y5, Y4, Y4
	VMOVDQU  (R9), Y5
	VPMINUB  Y5, Y1, Y6
	VPCMPEQB Y1, Y6, Y6    // q.MinY <= maxy
	VPAND    Y6, Y4, Y4
	VPMOVMSKB Y4, BX

	// Lanes 32..63.
	VMOVDQU  32(SI), Y4
	VPMINUB  Y2, Y4, Y5
	VPCMPEQB Y4, Y5, Y4
	VMOVDQU  32(R8), Y5
	VPMINUB  Y5, Y0, Y6
	VPCMPEQB Y0, Y6, Y6
	VPAND    Y6, Y4, Y4
	VMOVDQU  32(DI), Y5
	VPMINUB  Y3, Y5, Y6
	VPCMPEQB Y5, Y6, Y5
	VPAND    Y5, Y4, Y4
	VMOVDQU  32(R9), Y5
	VPMINUB  Y5, Y1, Y6
	VPCMPEQB Y1, Y6, Y6
	VPAND    Y6, Y4, Y4
	VPMOVMSKB Y4, AX
	SHLQ     $32, AX
	ORQ      AX, BX

	VZEROUPPER
	MOVQ BX, ret+40(FP)
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
