package sim

import "testing"

// spanCall records one Tracer invocation for assertion.
type spanCall struct {
	op         string // "begin", "end", "proc", "res"
	proc       int
	start, end Time
	kind       SpanKind
	args       SpanArgs
	setArgs    bool
}

type recordingTracer struct{ calls []spanCall }

func (r *recordingTracer) BeginSpan(proc int, at Time, kind SpanKind, args SpanArgs) {
	r.calls = append(r.calls, spanCall{op: "begin", proc: proc, start: at, kind: kind, args: args})
}
func (r *recordingTracer) EndSpan(proc int, at Time, args SpanArgs, setArgs bool) {
	r.calls = append(r.calls, spanCall{op: "end", proc: proc, end: at, args: args, setArgs: setArgs})
}
func (r *recordingTracer) ProcSpan(proc int, start, end Time, kind SpanKind, args SpanArgs) {
	r.calls = append(r.calls, spanCall{op: "proc", proc: proc, start: start, end: end, kind: kind, args: args})
}
func (r *recordingTracer) ResourceSpan(res int, start, end Time, kind SpanKind, args SpanArgs) {
	r.calls = append(r.calls, spanCall{op: "res", proc: res, start: start, end: end, kind: kind, args: args})
}

// TestTracerReceivesSpans drives every Proc span hook once and checks the
// tracer sees the right processor ids, virtual times and args.
func TestTracerReceivesSpans(t *testing.T) {
	k := NewKernel()
	tr := &recordingTracer{}
	k.SetTracer(tr)
	k.Spawn("p0", func(p *Proc) {
		p.BeginSpan(3, SpanArgs{A: 7})
		p.Hold(10)
		p.EndSpan()

		p.BeginSpan(4, SpanArgs{A: 1})
		p.Hold(5)
		p.EndSpanArgs(SpanArgs{A: 42})

		start := p.Now()
		p.Hold(2)
		p.Span(start, 1, SpanArgs{B: 9})

		p.ResourceSpan(2, 11, 13, 5, SpanArgs{C: -1})
	})
	k.Run()

	want := []spanCall{
		{op: "begin", proc: 0, start: 0, kind: 3, args: SpanArgs{A: 7}},
		{op: "end", proc: 0, end: 10},
		{op: "begin", proc: 0, start: 10, kind: 4, args: SpanArgs{A: 1}},
		{op: "end", proc: 0, end: 15, args: SpanArgs{A: 42}, setArgs: true},
		{op: "proc", proc: 0, start: 15, end: 17, kind: 1, args: SpanArgs{B: 9}},
		{op: "res", proc: 2, start: 11, end: 13, kind: 5, args: SpanArgs{C: -1}},
	}
	if len(tr.calls) != len(want) {
		t.Fatalf("got %d tracer calls, want %d: %+v", len(tr.calls), len(want), tr.calls)
	}
	for i, w := range want {
		if tr.calls[i] != w {
			t.Errorf("call %d = %+v, want %+v", i, tr.calls[i], w)
		}
	}
}

// TestSpanHooksWithoutTracer pins the zero-cost-off contract: every hook is
// a no-op (not a panic) when no tracer is installed.
func TestSpanHooksWithoutTracer(t *testing.T) {
	k := NewKernel()
	k.Spawn("p0", func(p *Proc) {
		p.BeginSpan(0, SpanArgs{})
		p.Hold(1)
		p.EndSpan()
		p.EndSpanArgs(SpanArgs{A: 1}) // unbalanced on purpose: still a no-op
		p.Span(0, 1, SpanArgs{})
		p.ResourceSpan(0, 0, 1, 2, SpanArgs{})
	})
	if end := k.Run(); end != 1 {
		t.Fatalf("response time %v, want 1", end)
	}
}

// TestTracerProcIDs checks spans land on the spawning processor's id even
// with several interleaved processes.
func TestTracerProcIDs(t *testing.T) {
	k := NewKernel()
	tr := &recordingTracer{}
	k.SetTracer(tr)
	for i := 0; i < 3; i++ {
		k.Spawn("p", func(p *Proc) {
			p.BeginSpan(0, SpanArgs{A: int64(p.ID())})
			p.Hold(Time(p.ID() + 1))
			p.EndSpan()
		})
	}
	k.Run()
	begins := 0
	for _, c := range tr.calls {
		if c.op != "begin" {
			continue
		}
		begins++
		if c.args.A != int64(c.proc) {
			t.Errorf("span on proc %d carries args.A=%d", c.proc, c.args.A)
		}
	}
	if begins != 3 {
		t.Fatalf("got %d begin calls, want 3", begins)
	}
}
