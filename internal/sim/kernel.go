// Package sim is a small deterministic process-oriented discrete-event
// simulation kernel. It stands in for the paper's KSR1 hardware: simulated
// processors are processes, disks are FCFS resources, and every cost of the
// paper's model (disk reads, buffer accesses, CPU work, waiting periods of
// the refinement step) advances a shared virtual clock.
//
// Processes are goroutines, but the kernel runs exactly one at a time and
// orders wake-ups by (virtual time, schedule sequence number), so a
// simulation run is bit-for-bit reproducible regardless of GOMAXPROCS.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in milliseconds. The paper quotes all of its cost
// constants in milliseconds, so this keeps configuration literal.
type Time float64

// Seconds converts a virtual duration to seconds for reporting.
func (t Time) Seconds() float64 { return float64(t) / 1000 }

// event wakes a parked process at a point in virtual time.
type event struct {
	at  Time
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// SpanKind tags a traced interval. The kernel treats it as opaque; the set
// of kinds belongs to the driver (package timeline defines the canonical
// ones: cpu-sweep, disk-wait, local-buffer, ...).
type SpanKind uint8

// SpanArgs is flat, fixed-size per-span metadata so that emission never
// allocates. The meaning of the four slots depends on the SpanKind (page
// ids, tree levels, (hl, ns) work reports, victim indices, ...).
type SpanArgs struct {
	A, B, C, D int64
}

// Tracer receives span boundaries from simulated processes. All methods are
// invoked from inside the (single-threaded) simulation, ordered by virtual
// time, so implementations need no locking for kernel-driven traffic.
type Tracer interface {
	// BeginSpan opens a span on proc's timeline at virtual time at.
	BeginSpan(proc int, at Time, kind SpanKind, args SpanArgs)
	// EndSpan closes proc's most recently opened span at virtual time at.
	// With setArgs, args replace the ones given at BeginSpan (for metadata
	// only known when the interval ends, e.g. who woke an idle processor).
	EndSpan(proc int, at Time, args SpanArgs, setArgs bool)
	// ProcSpan records a complete span [start, end] on proc's timeline.
	ProcSpan(proc int, start, end Time, kind SpanKind, args SpanArgs)
	// ResourceSpan records a complete span [start, end] on the timeline of
	// an auxiliary resource (e.g. one disk of the array), identified by res.
	ResourceSpan(res int, start, end Time, kind SpanKind, args SpanArgs)
}

// Kernel owns the virtual clock and the event queue. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	yield  chan struct{}
	procs  []*Proc
	live   int // spawned but not yet finished
	tracer Tracer
}

// NewKernel returns an empty simulation.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetTracer installs t as the span consumer (nil detaches). When no tracer
// is installed, every span hook is a single nil-check branch — the
// simulation pays nothing for the capability.
func (k *Kernel) SetTracer(t Tracer) { k.tracer = t }

// schedule enqueues a wake-up for p at time t (t must be >= now).
func (k *Kernel) schedule(t Time, p *Proc) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule into the past: %v < %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, event{at: t, seq: k.seq, p: p})
}

// Proc is a simulated process. All its methods must be called from within
// the process's own body function.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}
	state  procState
}

type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateParked  // waiting for a scheduled event
	stateBlocked // waiting for an external wake (resource, cond)
	stateDone
)

// ID returns the process's spawn index (0-based, in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the diagnostic name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// BeginSpan opens a span of the given kind on this process's timeline. It
// is a no-op without an installed tracer. Spans may nest; each BeginSpan
// must be paired with an EndSpan (or EndSpanArgs).
func (p *Proc) BeginSpan(kind SpanKind, args SpanArgs) {
	if t := p.k.tracer; t != nil {
		t.BeginSpan(p.id, p.k.now, kind, args)
	}
}

// EndSpan closes the most recently opened span at the current virtual time.
func (p *Proc) EndSpan() {
	if t := p.k.tracer; t != nil {
		t.EndSpan(p.id, p.k.now, SpanArgs{}, false)
	}
}

// EndSpanArgs closes the most recently opened span and replaces its args —
// for metadata only known once the interval is over (e.g. which processor
// ended an idle wait).
func (p *Proc) EndSpanArgs(args SpanArgs) {
	if t := p.k.tracer; t != nil {
		t.EndSpan(p.id, p.k.now, args, true)
	}
}

// Span records a complete span from start to the current virtual time on
// this process's timeline — for intervals whose kind is only known at the
// end (e.g. a buffer access classified after the directory lookup).
func (p *Proc) Span(start Time, kind SpanKind, args SpanArgs) {
	if t := p.k.tracer; t != nil {
		t.ProcSpan(p.id, start, p.k.now, kind, args)
	}
}

// ResourceSpan records a complete span [start, end] on resource timeline
// res (e.g. the service interval of one disk of the array).
func (p *Proc) ResourceSpan(res int, start, end Time, kind SpanKind, args SpanArgs) {
	if t := p.k.tracer; t != nil {
		t.ResourceSpan(res, start, end, kind, args)
	}
}

// Spawn creates a process that starts executing body at the current virtual
// time once Run is called (or immediately if the simulation is running).
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		resume: make(chan struct{}),
		state:  stateNew,
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume
		p.state = stateRunning
		body(p)
		p.state = stateDone
		k.live--
		k.yield <- struct{}{}
	}()
	k.schedule(k.now, p)
	p.state = stateRunnable
	return p
}

// Run drives the simulation until no events remain. It returns the final
// virtual time. If processes are still blocked on a resource or condition
// when the event queue drains, the simulation is deadlocked; Run panics with
// a description naming the stuck processes, since that always indicates a
// bug in the model.
func (k *Kernel) Run() Time {
	for k.events.Len() > 0 {
		ev := heap.Pop(&k.events).(event)
		if ev.p.state == stateDone {
			continue
		}
		k.now = ev.at
		ev.p.state = stateRunning
		ev.p.resume <- struct{}{}
		<-k.yield
	}
	if k.live > 0 {
		var stuck []string
		for _, p := range k.procs {
			if p.state != stateDone {
				stuck = append(stuck, p.name)
			}
		}
		panic(fmt.Sprintf("sim: deadlock at t=%v, %d blocked process(es): %v",
			k.now, k.live, stuck))
	}
	return k.now
}

// park yields control back to the kernel until the process is woken by an
// event (Hold) or an external wake (Resource/Cond).
func (p *Proc) park(s procState) {
	p.state = s
	p.k.yield <- struct{}{}
	<-p.resume
	p.state = stateRunning
}

// Hold advances the process by d units of virtual time. Other processes may
// run in the meantime. A non-positive d yields without advancing the clock,
// which still gives earlier-scheduled events a chance to run first.
func (p *Proc) Hold(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.schedule(p.k.now+d, p)
	p.park(stateParked)
}

// Yield reschedules the process at the current time, letting any other
// process with a pending event at the same instant run first.
func (p *Proc) Yield() { p.Hold(0) }

// block parks the process without a scheduled wake-up; something else must
// call wake.
func (p *Proc) block() { p.park(stateBlocked) }

// wake schedules a blocked process to resume at the current virtual time.
func (p *Proc) wake() {
	p.state = stateRunnable
	p.k.schedule(p.k.now, p)
}

// Resource is an exclusive FCFS server (for example one disk of the array).
// Waiting processes are served strictly in arrival order.
type Resource struct {
	name    string
	busy    bool
	waiters []*Proc

	// Busy accumulates total virtual time the resource spent serving via
	// Use; it measures utilization and thus saturation (the d=1 bottleneck
	// of Figure 9).
	Busy Time
}

// NewResource returns an idle resource with a diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Acquire blocks p until it holds the resource.
func (r *Resource) Acquire(p *Proc) {
	if !r.busy {
		r.busy = true
		return
	}
	r.waiters = append(r.waiters, p)
	p.block()
	// When woken by Release the resource has been handed to us directly.
}

// Release hands the resource to the longest-waiting process, or marks it
// idle. It must be called by the current holder.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		next.wake() // resource stays busy, ownership transfers
		return
	}
	r.busy = false
}

// Use acquires the resource, holds it for service time d, and releases it.
// It returns the total virtual time spent including queueing delay.
func (r *Resource) Use(p *Proc, d Time) Time {
	start := p.Now()
	r.Acquire(p)
	p.Hold(d)
	r.Busy += d
	r.Release()
	return p.Now() - start
}

// QueueLen returns the number of processes currently waiting (excluding the
// holder).
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Cond is a waiting room: processes block on it and are woken explicitly.
// Used for "idle processor waits for work / for help requests" protocols.
type Cond struct {
	waiters []*Proc
}

// Wait blocks p until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.block()
}

// Signal wakes the longest-waiting process, if any. It reports whether a
// process was woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	next := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	next.wake()
	return true
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		p.wake()
	}
	c.waiters = c.waiters[:0]
}

// WaiterCount returns the number of blocked processes.
func (c *Cond) WaiterCount() int { return len(c.waiters) }
