package sim

import (
	"reflect"
	"testing"
)

func TestHoldAdvancesClock(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("p", func(p *Proc) {
		p.Hold(10)
		p.Hold(5.5)
		end = p.Now()
	})
	final := k.Run()
	if end != 15.5 {
		t.Errorf("process ended at %v, want 15.5", end)
	}
	if final != 15.5 {
		t.Errorf("Run returned %v, want 15.5", final)
	}
}

func TestNegativeHoldClampsToZero(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Hold(-3)
		if p.Now() != 0 {
			t.Errorf("clock moved to %v on negative hold", p.Now())
		}
	})
	k.Run()
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		var trace []string
		k := NewKernel()
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Hold(10)
				trace = append(trace, "a")
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Hold(10)
				trace = append(trace, "b")
			}
		})
		k.Run()
		return trace
	}
	first := run()
	// Same virtual times: spawn/schedule order breaks ties, so "a" always
	// precedes "b" at each step.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("trace = %v, want %v", first, want)
	}
	for i := 0; i < 10; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d diverged: %v vs %v", i, got, first)
		}
	}
}

func TestSpawnDuringRun(t *testing.T) {
	k := NewKernel()
	var childEnd Time
	k.Spawn("parent", func(p *Proc) {
		p.Hold(5)
		k.Spawn("child", func(c *Proc) {
			c.Hold(7)
			childEnd = c.Now()
		})
		p.Hold(1)
	})
	k.Run()
	if childEnd != 12 {
		t.Errorf("child ended at %v, want 12", childEnd)
	}
}

func TestResourceFCFS(t *testing.T) {
	k := NewKernel()
	r := NewResource("disk")
	var order []int
	var times []Time
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			// All three request at t=0; they must be served in spawn order,
			// 10 time units each.
			r.Use(p, 10)
			order = append(order, i)
			times = append(times, p.Now())
		})
	}
	k.Run()
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Fatalf("service order = %v, want [0 1 2]", order)
	}
	if !reflect.DeepEqual(times, []Time{10, 20, 30}) {
		t.Fatalf("completion times = %v, want [10 20 30]", times)
	}
	if r.Busy != 30 {
		t.Fatalf("resource busy time = %v, want 30", r.Busy)
	}
}

func TestResourceQueueingDelayReported(t *testing.T) {
	k := NewKernel()
	r := NewResource("disk")
	var waited Time
	k.Spawn("first", func(p *Proc) { r.Use(p, 16) })
	k.Spawn("second", func(p *Proc) {
		waited = r.Use(p, 16)
	})
	k.Run()
	if waited != 32 {
		t.Fatalf("second process total time = %v, want 32 (16 queue + 16 service)", waited)
	}
}

func TestResourceInterleavedAcquireRelease(t *testing.T) {
	k := NewKernel()
	r := NewResource("r")
	var got []Time
	k.Spawn("a", func(p *Proc) {
		r.Acquire(p)
		p.Hold(3)
		r.Release()
		got = append(got, p.Now())
	})
	k.Spawn("b", func(p *Proc) {
		p.Hold(1)
		r.Acquire(p)
		p.Hold(3)
		r.Release()
		got = append(got, p.Now())
	})
	k.Run()
	if !reflect.DeepEqual(got, []Time{3, 6}) {
		t.Fatalf("completion times = %v, want [3 6]", got)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	k := NewKernel()
	var c Cond
	var woken []string
	for _, name := range []string{"w1", "w2"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			c.Wait(p)
			woken = append(woken, name)
		})
	}
	k.Spawn("signaler", func(p *Proc) {
		p.Hold(10)
		if c.WaiterCount() != 2 {
			t.Errorf("waiter count = %d, want 2", c.WaiterCount())
		}
		if !c.Signal() {
			t.Error("Signal found no waiter")
		}
		p.Hold(10)
		c.Broadcast()
	})
	k.Run()
	if !reflect.DeepEqual(woken, []string{"w1", "w2"}) {
		t.Fatalf("wake order = %v, want [w1 w2]", woken)
	}
}

func TestSignalEmptyCond(t *testing.T) {
	var c Cond
	if c.Signal() {
		t.Fatal("Signal on empty cond reported a wake")
	}
	c.Broadcast() // must not panic
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run did not panic on deadlock")
		}
	}()
	k := NewKernel()
	var c Cond
	k.Spawn("stuck", func(p *Proc) {
		c.Wait(p) // never signaled
	})
	k.Run()
}

func TestScheduleIntoPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("schedule into the past did not panic")
		}
	}()
	k := NewKernel()
	k.now = 100
	k.schedule(50, &Proc{k: k})
}

func TestYieldOrdering(t *testing.T) {
	// A process that yields at the same instant lets an already-scheduled
	// peer run first.
	k := NewKernel()
	var trace []string
	k.Spawn("a", func(p *Proc) {
		p.Hold(10)
		trace = append(trace, "a1")
		p.Yield()
		trace = append(trace, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		p.Hold(10)
		trace = append(trace, "b")
	})
	k.Run()
	want := []string{"a1", "b", "a2"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestProcIdentity(t *testing.T) {
	k := NewKernel()
	p0 := k.Spawn("zero", func(p *Proc) {})
	p1 := k.Spawn("one", func(p *Proc) {})
	if p0.ID() != 0 || p1.ID() != 1 {
		t.Errorf("IDs = %d,%d want 0,1", p0.ID(), p1.ID())
	}
	if p0.Name() != "zero" || p1.Name() != "one" {
		t.Errorf("names = %q,%q", p0.Name(), p1.Name())
	}
	k.Run()
}

func TestTimeSeconds(t *testing.T) {
	if Time(1500).Seconds() != 1.5 {
		t.Fatalf("Seconds conversion wrong: %v", Time(1500).Seconds())
	}
}

func TestManyProcessesStress(t *testing.T) {
	k := NewKernel()
	r := NewResource("shared")
	const n = 200
	finished := 0
	for i := 0; i < n; i++ {
		k.Spawn("w", func(p *Proc) {
			for j := 0; j < 5; j++ {
				r.Use(p, 1)
				p.Hold(0.5)
			}
			finished++
		})
	}
	end := k.Run()
	if finished != n {
		t.Fatalf("finished = %d, want %d", finished, n)
	}
	// The resource serializes n*5 units of 1ms work, so the end time is at
	// least 1000.
	if end < 1000 {
		t.Fatalf("end time %v too small for serialized load", end)
	}
	if r.Busy != n*5 {
		t.Fatalf("busy = %v, want %d", r.Busy, n*5)
	}
}
