package exp

import (
	"bytes"
	"strings"
	"testing"

	"spjoin/internal/metrics"
	"spjoin/internal/runstore"
)

// testWorkload is small enough for fast experiment smoke runs.
func testWorkload(tb testing.TB) *Workload {
	tb.Helper()
	return NewWorkload(0.02, 42)
}

func TestAllExperimentsRender(t *testing.T) {
	w := testWorkload(t)
	for _, e := range All() {
		if e.Name == "fig9" || e.Name == "fig10" {
			continue // covered by TestFigure9And10Shared (slower)
		}
		var buf bytes.Buffer
		e.Run(w, &buf)
		if buf.Len() == 0 {
			t.Errorf("%s rendered nothing", e.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("fig5"); !ok {
		t.Fatal("fig5 not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus experiment found")
	}
	if len(All()) != 12 {
		t.Fatalf("expected 12 experiments, got %d", len(All()))
	}
}

func TestTable1Content(t *testing.T) {
	w := testWorkload(t)
	var buf bytes.Buffer
	Table1(w, &buf)
	out := buf.String()
	for _, want := range []string{"height", "data entries", "data pages", "directory pages", "m (number of tasks)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Content(t *testing.T) {
	var buf bytes.Buffer
	Table2(testWorkload(t), &buf)
	for _, want := range []string{"own buffer", "other processor", "disk", "refinement"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestFigure9And10Shared(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure-9 sweep")
	}
	w := testWorkload(t)
	var buf9, buf10 bytes.Buffer
	Fig9(w, &buf9)
	if w.fig9 == nil {
		t.Fatal("figure-9 data not memoized")
	}
	memo := w.fig9
	Fig10(w, &buf10)
	if w.fig9 != memo {
		t.Fatal("Fig10 recomputed instead of reusing the Fig9 runs")
	}
	if buf9.Len() == 0 || buf10.Len() == 0 {
		t.Fatal("figures rendered nothing")
	}
}

func TestFig9ShapeProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	w := NewWorkload(0.05, 42)
	d := w.figure9()
	last := len(d.procs) - 1
	// d=n: response time at n=24 much lower than at n=1.
	if sp := float64(d.response[2][0]) / float64(d.response[2][last]); sp < 6 {
		t.Errorf("d=n speed-up at n=24 only %.1f, want >= 6", sp)
	}
	// d=1 must be the slowest configuration at n=24.
	if d.response[0][last] < d.response[2][last] {
		t.Errorf("d=1 (%v) faster than d=n (%v) at n=24",
			d.response[0][last], d.response[2][last])
	}
	// d=1 plateau: from n=4 on, adding processors gains little.
	idx4 := indexOf(d.procs, 4)
	if idx4 < 0 {
		t.Fatal("n=4 not measured")
	}
	if float64(d.response[0][last]) < 0.5*float64(d.response[0][idx4]) {
		t.Errorf("d=1: t(24)=%v less than half of t(4)=%v — should plateau",
			d.response[0][last], d.response[0][idx4])
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func TestWorkloadHelpers(t *testing.T) {
	w := testWorkload(t)
	if got := w.Pages(800, 8); got < 8 {
		t.Fatalf("pages = %d, must be >= procs", got)
	}
	if !strings.Contains(w.Describe(), "scale") {
		t.Fatal("Describe missing scale")
	}
}

func TestInsertedWorkloadMatchesBulk(t *testing.T) {
	bulk := NewWorkload(0.01, 42)
	ins := NewInsertedWorkload(0.01, 42)
	if bulk.R.Len() != ins.R.Len() || bulk.S.Len() != ins.S.Len() {
		t.Fatal("workload builders disagree on cardinality")
	}
	if err := ins.R.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := ins.S.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestExtensionExperimentsRender(t *testing.T) {
	w := testWorkload(t)
	var buf bytes.Buffer
	ExpSN(w, &buf)
	if !strings.Contains(buf.String(), "SN t(n)") {
		t.Fatal("sn experiment rendered nothing useful")
	}
	buf.Reset()
	ExpEst(w, &buf)
	out := buf.String()
	if !strings.Contains(out, "Pearson") || !strings.Contains(out, "dynamic") {
		t.Fatalf("est experiment output incomplete:\n%s", out)
	}
}

// TestSkewExperiment pins the skew extension's own contracts: the cells
// record deterministic counters (two recordings are identical), refined
// and unrefined cells agree on the candidate count for every
// distribution, and the rendered table carries the whole skew ladder.
func TestSkewExperiment(t *testing.T) {
	record := func() (string, string) {
		w := testWorkload(t)
		w.Rec = NewRecording(w.Seed, w.Scale, "test")
		var buf, store bytes.Buffer
		ExpSkew(w, &buf)
		if _, err := w.Rec.WriteStore(&store); err != nil {
			t.Fatal(err)
		}
		return buf.String(), store.String()
	}
	out, store1 := record()
	for _, want := range []string{"uniform", "gauss60", "gauss20", "gauss5", "refined tiles"} {
		if !strings.Contains(out, want) {
			t.Errorf("skew table missing %q:\n%s", want, out)
		}
	}
	if _, store2 := record(); store1 != store2 {
		t.Error("skew recording is not run-to-run deterministic")
	}
	s, err := runstore.Read(strings.NewReader(store1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 8 {
		t.Fatalf("skew recorded %d cells, want 8", s.Len())
	}
	for _, rec := range s.Records {
		if rec.Engine != "partjoin" {
			t.Errorf("skew cell %v stamped engine %q, want partjoin", rec.Params, rec.Engine)
		}
	}
	for _, dist := range []string{"uniform", "gauss60", "gauss20", "gauss5"} {
		off, err1 := s.Metric("skew", map[string]string{"dist": dist, "refine": "off"}, "candidates")
		auto, err2 := s.Metric("skew", map[string]string{"dist": dist, "refine": "auto"}, "candidates")
		if err1 != nil || err2 != nil {
			t.Fatalf("missing skew cells for %s: %v %v", dist, err1, err2)
		}
		if off != auto {
			t.Errorf("%s: candidate counts diverge refined vs unrefined: %v vs %v", dist, auto, off)
		}
	}
}

// TestMetricsObservationOnly asserts the two contracts of the metrics
// layer: an instrumented run reproduces the uninstrumented Result exactly
// (counting never advances virtual time), and the registry's counters agree
// with the simulator's own accounting.
func TestMetricsObservationOnly(t *testing.T) {
	w := testWorkload(t)
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		plain := w.run(w.config(8, 8, 800).Variant(v))

		reg := metrics.NewRegistry()
		sink := metrics.NewCountingSink(false)
		cfg := w.config(8, 8, 800).Variant(v)
		cfg.Metrics = reg
		cfg.Trace = sink
		res := w.run(cfg)

		if res.ResponseTime != plain.ResponseTime || res.DiskAccesses != plain.DiskAccesses ||
			res.Candidates != plain.Candidates || res.Buffer != plain.Buffer {
			t.Fatalf("%s: instrumented run diverged from plain run:\n%+v\nvs\n%+v", v, res, plain)
		}

		snap := reg.Snapshot()
		disk := snap.Counters["sim.disk.reads.directory"] + snap.Counters["sim.disk.reads.data"]
		if disk != res.DiskAccesses {
			t.Errorf("%s: registry disk reads %d, result %d", v, disk, res.DiskAccesses)
		}
		if got := sink.Count(metrics.EvDiskRead); got != res.DiskAccesses {
			t.Errorf("%s: trace disk-read events %d, result %d", v, got, res.DiskAccesses)
		}
		if got := snap.Counters["sim.buffer.misses"]; got != res.Buffer.Misses {
			t.Errorf("%s: registry buffer misses %d, result %d", v, got, res.Buffer.Misses)
		}
		if got := snap.Counters["sim.join.candidates"]; got != int64(res.Candidates) {
			t.Errorf("%s: registry candidates %d, result %d", v, got, res.Candidates)
		}
		if got := snap.Gauges["sim.response_s"]; got != res.ResponseTime.Seconds() {
			t.Errorf("%s: registry response %v, result %v", v, got, res.ResponseTime.Seconds())
		}
	}
}

func TestRecordingRejectsDuplicateCell(t *testing.T) {
	rc := NewRecording(1, 1, "test")
	params := map[string]string{"v": "gd"}
	rc.Add("fig5", params, map[string]float64{"disk": 1})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	rc.Add("fig5", params, map[string]float64{"disk": 2})
}
