package exp

import (
	"fmt"
	"io"

	"spjoin/internal/partjoin"
	"spjoin/internal/rtree"
	"spjoin/internal/stats"
	"spjoin/internal/tiger"
)

// skewWorkers pins the worker count for the skew cells. The refinement
// auto threshold is a fair-share rule (hot means "bigger than a worker's
// fair share"), so the recorded tile decomposition — and with it every
// counter below — is only a pure function of the inputs at a fixed
// worker count.
const skewWorkers = 4

// skewN is the per-side cardinality at the workload scale: 60,000 per
// side (120,000 rectangles joined) at scale 1.0, floored so smoke scales
// still exercise the refinement machinery.
func skewN(scale float64) int {
	n := int(60000 * scale)
	if n < 500 {
		n = 500
	}
	return n
}

// skewDists enumerates the skew ladder: the uniform baseline plus three
// gaussian-cluster levels of increasing concentration (smaller sigma =
// hotter tiles). Both join sides share cluster centers (same centerSeed)
// so the hot spots actually collide — the Join Product Skew case.
var skewDists = []struct {
	name  string
	sigma float64
}{
	{"uniform", 0},
	{"gauss60", 60},
	{"gauss20", 20},
	{"gauss5", 5},
}

// skewSides generates one distribution's two join sides at the workload's
// seed and scale.
func skewSides(w *Workload, sigma float64) (r, s []rtree.Item) {
	n := skewN(w.Scale)
	const maxSide = 0.1
	if sigma == 0 {
		return tiger.Uniform(n, maxSide, w.Seed+1), tiger.Uniform(n, maxSide, w.Seed+2)
	}
	return tiger.GaussianClusters(n, 6, sigma, maxSide, w.Seed, w.Seed+1),
		tiger.GaussianClusters(n, 6, sigma, maxSide, w.Seed, w.Seed+2)
}

// ExpSkew measures what adaptive tile refinement does to the partition
// engine across the skew ladder: with refinement off the hottest tile
// pays a quadratic sweep, with the auto threshold hot tiles split into
// subtiles until every work unit is back in the sweep sweet spot. Only
// deterministic counters are recorded (comparisons, candidates,
// duplicates, work units, refined tiles, subtiles — never wall time), so
// the cells digest-diff across runs and machines.
func ExpSkew(w *Workload, out io.Writer) {
	n := skewN(w.Scale)
	t := stats.NewTable(fmt.Sprintf(
		"Extension: skew-adaptive tile refinement; partition engine, %d+%d rects, %d workers",
		n, n, skewWorkers),
		"distribution", "refine", "comparisons", "candidates", "work units", "refined tiles", "subtiles")
	for _, d := range skewDists {
		r, s := skewSides(w, d.sigma)
		for _, ref := range []struct {
			label string
			thr   int64
		}{
			{"off", partjoin.RefineDisabled},
			{"auto", 0},
		} {
			res := partjoin.Join(r, s, partjoin.Config{
				Workers:         skewWorkers,
				RefineThreshold: ref.thr,
				Sorted:          true,
			})
			t.AddRow(d.name, ref.label, res.Comparisons, len(res.Candidates),
				res.Partitions, res.RefinedTiles, res.Subtiles)
			if w.Rec != nil {
				w.Rec.AddEngine("partjoin", "skew",
					map[string]string{"dist": d.name, "refine": ref.label},
					map[string]float64{
						"comparisons":   float64(res.Comparisons),
						"candidates":    float64(len(res.Candidates)),
						"duplicates":    float64(res.Duplicates),
						"units":         float64(res.Partitions),
						"refined_tiles": float64(res.RefinedTiles),
						"subtiles":      float64(res.Subtiles),
					})
			}
		}
	}
	t.Render(out)
}
