package exp

import (
	"fmt"
	"io"

	"spjoin/internal/timeline"
)

// ExpTimeline runs the best variant (gd, reassignment on all levels) with
// the span profiler attached and reports the critical-path attribution and
// the utilization/skew tables. It also checks the profiler's two contracts
// in place: observation-only (the profiled run reproduces the unprofiled
// Result exactly) and determinism (two profiled runs produce equal span
// digests).
func ExpTimeline(w *Workload, out io.Writer) {
	plain := w.run(w.config(8, 8, 800))

	rec := timeline.NewRecorder(8, 8)
	cfg := w.config(8, 8, 800)
	cfg.Timeline = rec
	res := w.run(cfg)

	rec2 := timeline.NewRecorder(8, 8)
	cfg2 := w.config(8, 8, 800)
	cfg2.Timeline = rec2
	w.run(cfg2)

	identical := res.ResponseTime == plain.ResponseTime && res.DiskAccesses == plain.DiskAccesses &&
		res.Candidates == plain.Candidates && res.Buffer == plain.Buffer
	fmt.Fprintf(out, "profiled run reproduces unprofiled result: %v\n", identical)
	fmt.Fprintf(out, "run-to-run span digests equal: %v (%d spans)\n\n",
		rec.Digest() == rec2.Digest(), rec.SpanCount())

	rep := timeline.Analyze(rec, res.ResponseTime)
	rep.Render(out)
}
