package exp

import (
	"fmt"
	"io"

	"spjoin/internal/metrics"
	"spjoin/internal/stats"
)

// ExpMetrics runs the three buffer variants of §4.3 with the metrics layer
// attached and reports the registry's view of each run next to the
// simulator's own Result figures. The two columns must agree exactly: the
// counters observe the simulation, they never advance virtual time, so an
// instrumented run is bit-identical to an uninstrumented one.
func ExpMetrics(w *Workload, out io.Writer) {
	t := stats.NewTable("Metrics registry vs. simulator results; n=d=8, buffer 800 pages, reassignment on all levels "+
		"(every pair must match: instrumentation is observation-only)",
		"variant", "measure", "result", "registry")
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		reg := metrics.NewRegistry()
		sink := metrics.NewCountingSink(false)
		cfg := w.config(8, 8, 800).Variant(v)
		cfg.Metrics = reg
		cfg.Trace = sink
		res := w.run(cfg)
		snap := reg.Snapshot()

		disk := snap.Counters["sim.disk.reads.directory"] + snap.Counters["sim.disk.reads.data"]
		t.AddRow(v, "disk accesses", res.DiskAccesses, disk)
		t.AddRow(v, "disk accesses (trace)", res.DiskAccesses, sink.Count(metrics.EvDiskRead))
		t.AddRow(v, "buffer misses", res.Buffer.Misses, snap.Counters["sim.buffer.misses"])
		t.AddRow(v, "local hits", res.Buffer.LocalHits, snap.Counters["sim.buffer.local_hits"])
		t.AddRow(v, "remote hits", res.Buffer.RemoteHits, snap.Counters["sim.buffer.remote_hits"])
		t.AddRow(v, "candidates", res.Candidates, snap.Counters["sim.join.candidates"])
		t.AddRow(v, "reassignments", res.Reassignments, snap.Counters["sim.reassign.successes"])
		t.AddRow(v, "response [s]", fmt.Sprintf("%.3f", res.ResponseTime.Seconds()),
			fmt.Sprintf("%.3f", snap.Gauges["sim.response_s"]))
	}
	t.Render(out)
}
