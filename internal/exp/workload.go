// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§4) from the synthetic TIGER-like maps.
// Each experiment renders rows comparable to the paper's plots; absolute
// values differ (synthetic data, simulated machine) but the qualitative
// shape — who wins, by what factor, where curves flatten — reproduces.
package exp

import (
	"fmt"

	"spjoin/internal/parjoin"
	"spjoin/internal/rtree"
	"spjoin/internal/sim"
	"spjoin/internal/tiger"
)

// Workload holds the two R*-trees every experiment joins, plus memoized
// results for figure pairs that share runs (Figures 9 and 10).
type Workload struct {
	R, S  *rtree.Tree
	Scale float64
	Seed  int64

	// Rec, when set, records every experiment cell into a run store
	// (cmd/experiments -out). Recording is observation-only: attaching the
	// per-run registry and span recorder never changes the results.
	Rec *Recording

	fig9 *fig9Data // lazily computed, shared by Figures 9 and 10
}

// NewWorkload generates both maps at the given scale and builds their
// R*-trees. The trees are bulk-loaded at the 73% fill the paper's
// dynamically built trees exhibit (Table 1: 131,443 entries in 6,968 pages
// of capacity 26 ≈ 0.73), which reproduces the paper's page counts while
// keeping full-scale setup fast.
func NewWorkload(scale float64, seed int64) *Workload {
	streets, mixed := tiger.Maps(scale, seed)
	return &Workload{
		R:     rtree.BulkLoadSTR(rtree.DefaultParams(), streets, 0.73),
		S:     rtree.BulkLoadSTR(rtree.DefaultParams(), mixed, 0.73),
		Scale: scale,
		Seed:  seed,
	}
}

// NewInsertedWorkload builds the trees by dynamic R*-tree insertion instead
// of bulk loading (slower, used by the Table 1 cross-check and the STR
// ablation).
func NewInsertedWorkload(scale float64, seed int64) *Workload {
	streets, mixed := tiger.Maps(scale, seed)
	r := rtree.New(rtree.DefaultParams())
	for _, it := range streets {
		r.Insert(it.ID, it.Rect)
	}
	s := rtree.New(rtree.DefaultParams())
	for _, it := range mixed {
		s.Insert(it.ID, it.Rect)
	}
	return &Workload{R: r, S: s, Scale: scale, Seed: seed}
}

// Pages scales one of the paper's absolute buffer sizes (given in R*-tree
// pages at full scale) to this workload's scale, keeping at least one page
// per processor.
func (w *Workload) Pages(fullScalePages, procs int) int {
	n := int(float64(fullScalePages) * w.Scale)
	if n < procs {
		n = procs
	}
	return n
}

// config returns the default configuration against this workload.
func (w *Workload) config(procs, disks, fullScaleBufferPages int) parjoin.Config {
	return parjoin.DefaultConfig(procs, disks, w.Pages(fullScaleBufferPages, procs))
}

// run executes one parallel join against the workload.
func (w *Workload) run(cfg parjoin.Config) parjoin.Result {
	return parjoin.Run(w.R, w.S, cfg)
}

// fig9Data holds the shared measurement series of Figures 9 and 10:
// response time, disk accesses and total work as functions of the number of
// processors for the three disk configurations d=1, d=8, d=n.
type fig9Data struct {
	procs []int
	// indexed [diskConfig][procIdx]; diskConfig 0: d=1, 1: d=8, 2: d=n.
	response  [3][]sim.Time
	disk      [3][]int64
	totalWork [3][]sim.Time
}

var fig9DiskConfigs = [3]string{"d=1", "d=8", "d=n"}

// fig9Procs is the processor counts measured (the paper sweeps 1..24; the
// sampled grid keeps the curve shape at a fraction of the runs).
var fig9Procs = []int{1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24}

// figure9 computes (or returns memoized) Figure 9/10 measurements: the best
// variant (gd, reassignment on all levels) with buffer capacity growing
// linearly at 100 pages per processor.
func (w *Workload) figure9() *fig9Data {
	if w.fig9 != nil {
		return w.fig9
	}
	d := &fig9Data{procs: fig9Procs}
	labels := [3]string{"1", "8", "n"}
	for ci := range fig9DiskConfigs {
		for _, n := range fig9Procs {
			disks := 0
			switch ci {
			case 0:
				disks = 1
			case 1:
				disks = 8
			case 2:
				disks = n
			}
			res := w.runRec("fig9",
				map[string]string{"n": fmt.Sprint(n), "d": labels[ci]},
				w.config(n, disks, 100*n))
			d.response[ci] = append(d.response[ci], res.ResponseTime)
			d.disk[ci] = append(d.disk[ci], res.DiskAccesses)
			d.totalWork[ci] = append(d.totalWork[ci], res.TotalWork)
		}
	}
	if w.Rec != nil {
		// Speed-up t(1)/t(n) is derivable only once the full sweep is in;
		// amend it onto every fig9 cell so Figure 10 claims read it directly.
		for ci := range fig9DiskConfigs {
			t1 := float64(d.response[ci][0])
			for i, n := range fig9Procs {
				sp := 0.0
				if rt := float64(d.response[ci][i]); rt > 0 {
					sp = t1 / rt
				}
				w.Rec.Amend("fig9", map[string]string{"n": fmt.Sprint(n), "d": labels[ci]}, "speedup", sp)
			}
		}
	}
	w.fig9 = d
	return d
}

// Describe returns a one-line summary of the workload.
func (w *Workload) Describe() string {
	return fmt.Sprintf("scale %g (|R|=%d, |S|=%d objects), seed %d",
		w.Scale, w.R.Len(), w.S.Len(), w.Seed)
}
