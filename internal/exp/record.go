package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"spjoin/internal/metrics"
	"spjoin/internal/parjoin"
	"spjoin/internal/runstore"
	"spjoin/internal/sim"
	"spjoin/internal/stats"
	"spjoin/internal/timeline"
)

// Recording collects run-store records while the experiments execute.
// Records are buffered in memory so later passes can amend cells — the
// Figure 10 speed-up needs t(1), known only after the whole sweep — and
// the store is then written in one deterministic pass.
type Recording struct {
	Seed   int64
	Scale  float64
	GitRev string
	recs   []runstore.Record
	index  map[string]int
}

// NewRecording starts an empty recording with the workload provenance
// every record is stamped with.
func NewRecording(seed int64, scale float64, gitRev string) *Recording {
	return &Recording{Seed: seed, Scale: scale, GitRev: gitRev, index: map[string]int{}}
}

// Add appends one bare record (derived cells such as the estimator
// correlation, or tree statistics that are not join runs).
func (rc *Recording) Add(exp string, params map[string]string, ms map[string]float64) {
	rc.AddEngine("sim", exp, params, ms)
}

// AddEngine appends one bare record stamped with an explicit engine —
// the skew experiment's cells run the native partition engine, not the
// simulator, and the store schema requires the provenance to say so.
func (rc *Recording) AddEngine(engine, exp string, params map[string]string, ms map[string]float64) {
	rec := runstore.Record{
		Experiment: exp,
		Params:     params,
		Seed:       rc.Seed,
		Scale:      rc.Scale,
		Engine:     engine,
		GitRev:     rc.GitRev,
		Metrics:    ms,
	}
	key := rec.Key()
	if _, dup := rc.index[key]; dup {
		// Fail at the recording site: a silent overwrite here would only
		// surface much later as runstore.Read rejecting the duplicate cell.
		panic(fmt.Sprintf("exp: duplicate record for cell %s", key))
	}
	rc.index[key] = len(rc.recs)
	rc.recs = append(rc.recs, rec)
}

// Amend sets one metric on an already-recorded cell.
func (rc *Recording) Amend(exp string, params map[string]string, metric string, v float64) {
	key := (&runstore.Record{Experiment: exp, Params: params}).Key()
	i, ok := rc.index[key]
	if !ok {
		panic(fmt.Sprintf("exp: amend of unrecorded cell %s", key))
	}
	rc.recs[i].Metrics[metric] = v
}

// Len returns the number of buffered records.
func (rc *Recording) Len() int { return len(rc.recs) }

// WriteStore flushes the buffered records as a validated JSONL run store,
// returning the number of records written.
func (rc *Recording) WriteStore(w io.Writer) (int, error) {
	rw := runstore.NewWriter(w)
	for _, rec := range rc.recs {
		if err := rw.Write(rec); err != nil {
			return rw.Count(), err
		}
	}
	return rw.Count(), rw.Flush()
}

// addRun flattens one join run — result figures, buffer classes, per-kind
// timeline totals — plus the full-registry and span-recorder digests that
// pin the run's complete observable behavior.
func (rc *Recording) addRun(exp string, params map[string]string,
	res parjoin.Result, reg *metrics.Registry, tl *timeline.Recorder) {
	ms := map[string]float64{
		"response_s":         res.ResponseTime.Seconds(),
		"first_s":            res.FirstFinish.Seconds(),
		"avg_s":              res.AvgFinish.Seconds(),
		"spread_s":           (res.ResponseTime - res.FirstFinish).Seconds(),
		"total_work_s":       res.TotalWork.Seconds(),
		"disk":               float64(res.DiskAccesses),
		"disk_data":          float64(res.DataDiskAccesses),
		"buffer_local_hits":  float64(res.Buffer.LocalHits),
		"buffer_remote_hits": float64(res.Buffer.RemoteHits),
		"buffer_misses":      float64(res.Buffer.Misses),
		"path_buffer_hits":   float64(res.PathBufferHits),
		"candidates":         float64(res.Candidates),
		"tasks":              float64(res.TasksCreated),
		"task_level":         float64(res.TaskLevel),
		"reassignments":      float64(res.Reassignments),
	}
	busy := make([]float64, len(res.PerProc))
	for i, p := range res.PerProc {
		busy[i] = p.Busy.Seconds()
	}
	ms["proc_busy_skew"] = stats.Summarize(busy).Skew()
	totals := tl.KindTotals()
	// Flatten exactly the simulator's kinds: the committed run stores pin
	// this metric set per cell, and wall-only kinds (KindPhase) are never
	// emitted by simulated runs anyway.
	for k := sim.SpanKind(0); k < timeline.NumSimKinds; k++ {
		ms["timeline."+timeline.KindName(k)+"_ms"] = float64(totals[k])
	}
	rc.Add(exp, params, ms)
	rec := &rc.recs[len(rc.recs)-1]
	rec.MetricsDigest = registryDigest(reg)
	rec.TimelineDigest = tl.Digest()
	rec.Spans = tl.SpanCount()
}

// registryDigest hashes the registry's full JSON dump (every counter,
// gauge and histogram bucket, not just the flattened metrics).
func registryDigest(reg *metrics.Registry) string {
	h := sha256.New()
	if err := reg.WriteJSON(h); err != nil {
		return ""
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runRec runs one join; when a recording is attached it instruments the
// run with a fresh registry and span recorder (observation-only — results
// are bit-identical with or without, pinned by the golden tests) and
// records the cell.
func (w *Workload) runRec(exp string, params map[string]string, cfg parjoin.Config) parjoin.Result {
	if w.Rec == nil {
		return w.run(cfg)
	}
	reg := metrics.NewRegistry()
	tl := timeline.NewRecorder(cfg.Procs, cfg.Disks)
	cfg.Metrics = reg
	cfg.Timeline = tl
	res := parjoin.Run(w.R, w.S, cfg)
	w.Rec.addRun(exp, params, res, reg, tl)
	return res
}

// reassignLabel maps a reassignment mode to its grid-axis value.
func reassignLabel(r parjoin.Reassign) string {
	switch r {
	case parjoin.ReassignRoot:
		return "root"
	case parjoin.ReassignAll:
		return "all"
	default:
		return "none"
	}
}

// victimLabel maps a victim policy to its grid-axis value.
func victimLabel(v parjoin.Victim) string {
	if v == parjoin.RandomVictim {
		return "random"
	}
	return "loaded"
}
