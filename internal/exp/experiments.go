package exp

import (
	"fmt"
	"io"

	"spjoin/internal/buffer"
	"spjoin/internal/estimate"
	"spjoin/internal/join"
	"spjoin/internal/parjoin"
	"spjoin/internal/stats"
	"spjoin/internal/storage"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// Name is the CLI identifier (table1, fig5, ...).
	Name string
	// Title describes what the paper reports there.
	Title string
	// Run executes the experiment against w and renders rows to out.
	Run func(w *Workload, out io.Writer)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: Parameters of the R*-trees", Table1},
		{"table2", "Table 2: Parameters of the simulated machine", Table2},
		{"fig5", "Figure 5: Disk accesses vs. buffer size (8 and 24 processors)", Fig5},
		{"fig7", "Figure 7: Run times and disk accesses with/without task reassignment", Fig7},
		{"fig8", "Figure 8: Victim selection: most-loaded vs. arbitrary processor", Fig8},
		{"fig9", "Figure 9: Response time vs. number of processors (d=1, 8, n)", Fig9},
		{"fig10", "Figure 10: Speed-up and disk accesses vs. number of processors", Fig10},
		{"sn", "Extension (§5 future work): shared-virtual-memory vs. shared-nothing", ExpSN},
		{"est", "Extension (§3.4): estimation-based static balancing vs. dynamic reassignment", ExpEst},
		{"skew", "Extension: skew-adaptive tile refinement on the native partition engine", ExpSkew},
		{"metrics", "Cross-check: metrics registry vs. simulator results (observation-only instrumentation)", ExpMetrics},
		{"timeline", "Cross-check: span profiler — critical path, utilization/skew, determinism (observation-only)", ExpTimeline},
	}
}

// ByName finds an experiment by CLI name.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table1 reports the R*-tree parameters the paper's Table 1 lists, plus m
// (the number of tasks) computed from the actual root pages.
func Table1(w *Workload, out io.Writer) {
	s1, s2 := w.R.Stats(), w.S.Stats()
	m, _, _ := taskCount(w)
	t := stats.NewTable("Table 1: Parameters of the R*-trees (paper: tree1/tree2 = 3/3 height, "+
		"131443/127312 entries, 6968/6778 data pages, 95/92 directory pages, m=404)",
		"", "tree1 (streets)", "tree2 (mixed)")
	t.AddRow("height", s1.Height, s2.Height)
	t.AddRow("number of data entries", s1.DataEntries, s2.DataEntries)
	t.AddRow("number of data pages", s1.DataPages, s2.DataPages)
	t.AddRow("number of directory pages", s1.DirectoryPages, s2.DirectoryPages)
	t.AddRow("avg page utilization", fmt.Sprintf("%.0f%%", s1.AvgLeafFill*100),
		fmt.Sprintf("%.0f%%", s2.AvgLeafFill*100))
	t.AddRow("m (number of tasks)", m, m)
	t.Render(out)
	if w.Rec != nil {
		w.Rec.Add("table1", map[string]string{"tree": "streets"}, map[string]float64{
			"height": float64(s1.Height), "data_entries": float64(s1.DataEntries),
			"data_pages": float64(s1.DataPages), "dir_pages": float64(s1.DirectoryPages),
			"avg_leaf_fill": s1.AvgLeafFill, "m_tasks": float64(m)})
		w.Rec.Add("table1", map[string]string{"tree": "features"}, map[string]float64{
			"height": float64(s2.Height), "data_entries": float64(s2.DataEntries),
			"data_pages": float64(s2.DataPages), "dir_pages": float64(s2.DirectoryPages),
			"avg_leaf_fill": s2.AvgLeafFill, "m_tasks": float64(m)})
	}
}

func taskCount(w *Workload) (m, level, comparisons int) {
	tasks, level, comparisons := parjoin.CreateTasks(w.R, w.S, parjoin.DefaultConfig(1, 1, 1).Join, 2)
	return len(tasks), level, comparisons
}

// Table2 reports the simulated machine's cost parameters, mirroring the
// paper's KSR1 memory table and §4.2 disk/refinement calibration.
func Table2(w *Workload, out io.Writer) {
	bc := buffer.DefaultCostParams()
	dp := storage.DefaultDiskParams()
	cpu := parjoin.DefaultCPUParams()
	t := stats.NewTable("Table 2: Simulated machine parameters (paper: KSR1 — local memory ≈ 10× faster than remote)",
		"component", "cost")
	t.AddRow("page in own buffer", fmt.Sprintf("%.2f ms", float64(bc.LocalHit)))
	t.AddRow("page in other processor's buffer", fmt.Sprintf("%.2f ms", float64(bc.RemoteHit)))
	t.AddRow("buffer directory lock", fmt.Sprintf("%.2f ms", float64(bc.Lock)))
	t.AddRow("directory page from disk", fmt.Sprintf("%.1f ms (9 seek + 6 latency + 1 transfer)", float64(dp.PageRead)))
	t.AddRow("data page + geometry cluster from disk", fmt.Sprintf("%.1f ms", float64(dp.DataRead)))
	t.AddRow("rectangle comparison (CPU)", fmt.Sprintf("%.3f ms", float64(cpu.PerComparison)))
	t.AddRow("task queue operation", fmt.Sprintf("%.2f ms", float64(cpu.TaskQueueOp)))
	t.AddRow("exact geometry test (refinement)", "2–18 ms by MBR overlap degree")
	t.Render(out)
}

// fig5Sizes are the paper's total buffer sizes in pages (full scale).
var fig5Sizes = []int{200, 400, 800, 1600, 2400, 3200}

// Fig5 measures total disk accesses as a function of the LRU buffer size
// for the three variants, with 8 and with 24 processors (d = n, task
// reassignment on the root level, per §4.3).
func Fig5(w *Workload, out io.Writer) {
	for _, procs := range []int{8, 24} {
		t := stats.NewTable(
			fmt.Sprintf("Figure 5: disk accesses, %d processors and %d disks (paper: gd < gsrr ≈ lsr; global buffer gains more from large buffers)", procs, procs),
			"buffer [pages]", "lsr", "gsrr", "gd")
		for _, size := range fig5Sizes {
			row := make([]interface{}, 0, 4)
			row = append(row, w.Pages(size, procs))
			for _, v := range []string{"lsr", "gsrr", "gd"} {
				cfg := w.config(procs, procs, size).Variant(v)
				cfg.Reassign = parjoin.ReassignRoot
				res := w.runRec("fig5", map[string]string{
					"procs": fmt.Sprint(procs), "buffer": fmt.Sprint(size), "variant": v}, cfg)
				row = append(row, res.DiskAccesses)
			}
			t.AddRow(row...)
		}
		t.Render(out)
	}
}

// Fig7 measures the effect of task reassignment: per-processor run times
// (first/average/last finisher) and disk accesses for every variant ×
// reassignment mode; 8 processors, 8 disks, 800 buffer pages (§4.4).
func Fig7(w *Workload, out io.Writer) {
	t := stats.NewTable("Figure 7: run time [s] (first/avg/last) and disk accesses; buffer 800 pages, n=d=8 "+
		"(paper: reassignment shrinks the last finisher sharply for lsr/gsrr, mildly for gd; root = none for gd)",
		"variant", "reassign", "first", "avg", "last", "total work", "disk", "reassignments")
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		for _, ra := range []parjoin.Reassign{parjoin.ReassignNone, parjoin.ReassignRoot, parjoin.ReassignAll} {
			cfg := w.config(8, 8, 800).Variant(v)
			cfg.Reassign = ra
			res := w.runRec("fig7", map[string]string{"variant": v, "reassign": reassignLabel(ra)}, cfg)
			t.AddRow(v, ra.String(),
				res.FirstFinish.Seconds(), res.AvgFinish.Seconds(),
				res.ResponseTime.Seconds(), res.TotalWork.Seconds(),
				res.DiskAccesses, res.Reassignments)
		}
	}
	t.Render(out)
}

// Fig8 compares the two victim-selection strategies (§4.4, test series a/b):
// reassignment to the most loaded processor vs. an arbitrary one.
func Fig8(w *Workload, out io.Writer) {
	t := stats.NewTable("Figure 8: disk accesses by victim selection; n=d=8, buffer 800 pages, reassignment on all levels "+
		"(paper: arbitrary victims cost extra disk accesses only with local buffers)",
		"variant", "a: most-loaded", "b: arbitrary")
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		row := []interface{}{v}
		for _, vict := range []parjoin.Victim{parjoin.MostLoaded, parjoin.RandomVictim} {
			cfg := w.config(8, 8, 800).Variant(v)
			cfg.Reassign = parjoin.ReassignAll
			cfg.Victim = vict
			cfg.Seed = w.Seed
			res := w.runRec("fig8", map[string]string{"variant": v, "victim": victimLabel(vict)}, cfg)
			row = append(row, res.DiskAccesses)
		}
		t.AddRow(row...)
	}
	t.Render(out)
}

// Fig9 reports the response time of the best variant (gd, reassignment on
// all levels) against the number of processors for d = 1, 8, n; the buffer
// grows linearly with 100 pages per processor (§4.5).
func Fig9(w *Workload, out io.Writer) {
	d := w.figure9()
	t := stats.NewTable("Figure 9: response time [s] vs. processors; buffer = 100 pages/processor "+
		"(paper: d=1 flattens beyond 4 processors at ≈550 s; d=n keeps falling to 62.8 s at n=24)",
		"n", "d=1", "d=8", "d=n", "total work d=n [s]")
	for i, n := range d.procs {
		t.AddRow(n,
			d.response[0][i].Seconds(),
			d.response[1][i].Seconds(),
			d.response[2][i].Seconds(),
			d.totalWork[2][i].Seconds())
	}
	t.Render(out)
}

// Fig10 reports the speed-up t(1)/t(n) for the same runs plus the disk
// accesses of the d=n series (§4.5; paper: linear speed-up for d=n, 22.6 at
// n=24, disk accesses falling as the global buffer grows).
func Fig10(w *Workload, out io.Writer) {
	d := w.figure9()
	t := stats.NewTable("Figure 10: speed-up and disk accesses vs. processors "+
		"(paper: d=n speed-up 22.6 at n=24; d=8 flattens past 10 processors)",
		"n", "speedup d=1", "speedup d=8", "speedup d=n", "disk d=n")
	t1 := [3]float64{
		float64(d.response[0][0]),
		float64(d.response[1][0]),
		float64(d.response[2][0]),
	}
	for i, n := range d.procs {
		row := []interface{}{n}
		for ci := 0; ci < 3; ci++ {
			sp := 0.0
			if rt := float64(d.response[ci][i]); rt > 0 {
				sp = t1[ci] / rt
			}
			row = append(row, sp)
		}
		row = append(row, d.disk[2][i])
		t.AddRow(row...)
	}
	t.Render(out)
}

// ExpSN goes beyond the paper's figures into its §5 future work: the same
// best-variant join run on the SVM platform (global buffer) and on a
// shared-nothing platform where every disk belongs to one processor and
// remote pages are shipped as copies. The paper conjectures upcoming
// shared-nothing machines "will be comparable to a state-of-the-art
// SVM-architecture with respect to their performance".
func ExpSN(w *Workload, out io.Writer) {
	t := stats.NewTable("Extension: SVM (global buffer) vs. shared-nothing (page shipping); gd, reassignment on all levels, d=n, buffer 100·n",
		"n", "SVM t(n) [s]", "SN t(n) [s]", "SN/SVM", "SVM disk", "SN disk")
	for _, n := range []int{1, 4, 8, 16, 24} {
		svm := w.runRec("sn", map[string]string{"n": fmt.Sprint(n), "platform": "svm"},
			w.config(n, n, 100*n))
		cfgSN := w.config(n, n, 100*n)
		cfgSN.Buffer = parjoin.SharedNothingOrg
		sn := w.runRec("sn", map[string]string{"n": fmt.Sprint(n), "platform": "sn"}, cfgSN)
		ratio := 0.0
		if svm.ResponseTime > 0 {
			ratio = float64(sn.ResponseTime) / float64(svm.ResponseTime)
		}
		t.AddRow(n, svm.ResponseTime.Seconds(), sn.ResponseTime.Seconds(),
			ratio, svm.DiskAccesses, sn.DiskAccesses)
	}
	t.Render(out)
}

// ExpEst probes the alternative the paper's §3.4 dismisses: statically
// balancing work loads by estimated task cost. It reports (a) how well a
// cheap selectivity-based estimate tracks the actual per-task work, and
// (b) how estimation-based LPT assignment compares against naive range
// assignment and against dynamic assignment with task reassignment.
func ExpEst(w *Workload, out io.Writer) {
	tasks, _, _ := parjoin.CreateTasks(w.R, w.S, join.Options{}, 3*8)
	costs := estimate.Costs(w.R, w.S, tasks)
	actual := make([]float64, len(tasks))
	for i, task := range tasks {
		n := 0
		e := join.Engine{
			Src:         join.DirectSource{R: w.R, S: w.S},
			OnCandidate: func(join.Candidate) { n++ },
		}
		e.Run(task)
		actual[i] = float64(n)
	}
	corr := estimate.Correlation(costs, actual)
	if w.Rec != nil {
		w.Rec.Add("est", map[string]string{"measure": "correlation"},
			map[string]float64{"pearson_r": corr, "tasks": float64(len(tasks))})
	}
	fmt.Fprintf(out, "estimate vs actual per-task work: Pearson r = %.2f over %d tasks\n", corr, len(tasks))
	fmt.Fprintf(out, "(the paper's §3.4 argument: cheap estimates track clustered spatial work poorly)\n\n")

	t := stats.NewTable("Extension: static assignments vs. dynamic reassignment; local buffers, n=d=8, buffer 800 pages",
		"assignment", "reassign", "first [s]", "avg [s]", "last [s]", "disk")
	rows := []struct {
		name, key string
		assign    parjoin.Assignment
		reassign  parjoin.Reassign
	}{
		{"static range", "range", parjoin.StaticRange, parjoin.ReassignNone},
		{"static estimated (LPT)", "lpt", parjoin.StaticEstimated, parjoin.ReassignNone},
		{"static estimated (LPT)", "lpt", parjoin.StaticEstimated, parjoin.ReassignAll},
		{"dynamic", "dynamic", parjoin.Dynamic, parjoin.ReassignAll},
	}
	for _, r := range rows {
		cfg := w.config(8, 8, 800)
		cfg.Buffer = parjoin.LocalOrg
		cfg.Assign = r.assign
		cfg.Reassign = r.reassign
		res := w.runRec("est", map[string]string{
			"assignment": r.key, "reassign": reassignLabel(r.reassign)}, cfg)
		t.AddRow(r.name, r.reassign.String(),
			res.FirstFinish.Seconds(), res.AvgFinish.Seconds(),
			res.ResponseTime.Seconds(), res.DiskAccesses)
	}
	t.Render(out)
}
