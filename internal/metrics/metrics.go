// Package metrics is the observability layer of the join pipeline: typed
// counters, gauges and fixed-bucket histograms registered by name in a
// Registry, plus a structured trace of join events (package-level type
// Event / TraceSink in trace.go).
//
// The design contract, mirroring the paper's evaluation (§4) where every
// reported figure is a counter — disk accesses, per-processor run time,
// response time, task reassignments:
//
//   - Steady-state increments are allocation-free: Counter.Inc/Add,
//     Gauge.Set and Histogram.Observe are single atomic operations on
//     memory allocated at registration time.
//   - Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
//     *Histogram or *Registry are no-ops (or zero values), so pipeline
//     layers thread instruments unconditionally and pay one predictable
//     branch when metrics are disabled.
//   - Export is deterministic: Snapshot and WriteJSON order instruments
//     by name, so two runs with equal counters produce byte-identical
//     JSON — the property the golden-metrics regression harness asserts.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use; a nil *Counter ignores all operations.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n may be any value, but counters are conventionally
// monotonic; use a Gauge for values that go down).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 instantaneous value (virtual times, rates). The zero
// value is ready; a nil *Gauge ignores all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts int64 observations into fixed buckets. Bucket i counts
// observations v <= Bounds[i]; one implicit overflow bucket counts the
// rest. All storage is allocated at registration, so Observe is a bounded
// scan plus one atomic increment. A nil *Histogram ignores observations.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// newHistogram copies bounds (which must be strictly ascending).
func newHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one value. Bucket edges are inclusive upper bounds: a
// value exactly equal to Bounds[i] lands in bucket i, not the next one —
// the boundary-observation regression test pins this.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistSnapshot is the exported state of one histogram.
type HistSnapshot struct {
	Bounds []int64 `json:"bounds"` // bucket upper bounds; one overflow bucket follows
	Counts []int64 `json:"counts"` // len(Bounds)+1 entries
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a Registry, ordered for
// deterministic JSON encoding (encoding/json sorts map keys).
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Names returns all instrument names of the snapshot, sorted, with a
// one-letter kind prefix resolved by the caller via the maps. Helper for
// table rendering.
func (s Snapshot) Names() (counters, gauges, histograms []string) {
	for name := range s.Counters {
		counters = append(counters, name)
	}
	for name := range s.Gauges {
		gauges = append(gauges, name)
	}
	for name := range s.Histograms {
		histograms = append(histograms, name)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return counters, gauges, histograms
}

// Registry holds named instruments. Registration (the Counter, Gauge and
// Histogram lookups) takes a mutex and may allocate; the returned
// instruments are then free of the registry on the hot path. Lookups are
// idempotent: the same name always returns the same instrument. A nil
// *Registry returns nil instruments, which are themselves no-ops — so a
// pipeline layer can hold an optional registry and instrument
// unconditionally.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if new (bounds are ignored on re-lookup).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot copies the current state of every instrument.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		snap.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.n.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON. The output is
// deterministic: equal registry states produce byte-identical documents.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
