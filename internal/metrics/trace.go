package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// EventKind identifies one kind of structured join event.
type EventKind uint8

const (
	// EvPairExpanded: a node pair was expanded by a worker/processor.
	// Level is the pair's max level; A/B are the R/S page numbers.
	EvPairExpanded EventKind = iota
	// EvBufferLocalHit: a page request was served from the requester's own
	// buffer (A = page, B = tree id).
	EvBufferLocalHit
	// EvBufferRemoteHit: served from another processor's partition of the
	// global buffer, or shipped from its home in the shared-nothing
	// organization (A = page, B = tree id).
	EvBufferRemoteHit
	// EvBufferMiss: the page was not resident anywhere and had to be read
	// from disk (A = page, B = tree id).
	EvBufferMiss
	// EvBufferEvict: a resident page was evicted to make room
	// (A = evicted page, B = tree id).
	EvBufferEvict
	// EvDiskRead: one physical page fetch (A = page, B = 1 for a data
	// page with its geometry cluster, 0 for a directory page).
	EvDiskRead
	// EvTaskStolen: a native work-stealing success (Worker = thief,
	// A = pairs moved, B = victim worker).
	EvTaskStolen
	// EvTaskReassigned: a simulated §3.4 task reassignment (Worker =
	// helped/idle processor, A = pairs moved, B = victim processor).
	EvTaskReassigned
	// EvWorkerIdle: a worker left an idle span (F = span length — virtual
	// ms in the simulator).
	EvWorkerIdle
)

// String returns the JSONL event name.
func (k EventKind) String() string {
	switch k {
	case EvPairExpanded:
		return "pair-expanded"
	case EvBufferLocalHit:
		return "buffer-local-hit"
	case EvBufferRemoteHit:
		return "buffer-remote-hit"
	case EvBufferMiss:
		return "buffer-miss"
	case EvBufferEvict:
		return "buffer-evict"
	case EvDiskRead:
		return "disk-read"
	case EvTaskStolen:
		return "task-stolen"
	case EvTaskReassigned:
		return "task-reassigned"
	case EvWorkerIdle:
		return "worker-idle"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one structured join event. The struct is fixed-size and flat so
// emission never allocates on the producer side; sinks decide how to encode
// it. T is the event time — virtual milliseconds in the simulator, wall
// milliseconds since join start in the native executor. Worker is the
// processor/goroutine index (-1 when not applicable). The meaning of
// Level, A, B and F depends on Kind (see the kind constants).
type Event struct {
	Kind   EventKind
	T      float64
	Worker int32
	Level  int32
	A, B   int64
	F      float64
}

// TraceSink consumes events. Emission sites guard with a nil check, so an
// uninstalled sink costs one branch and the event struct is never built —
// tracing is compiled out of the hot path when disabled. Sinks must be
// safe for concurrent use (the native executor emits from many
// goroutines).
type TraceSink interface {
	Emit(Event)
}

// JSONLSink writes one JSON object per event line. It buffers internally;
// call Flush (or Close) when the run completes. Safe for concurrent use.
//
// Write errors do not stop the join (emission sites have no error path);
// the first underlying io.Writer error is latched instead and reported by
// Err, Flush and Close, so drivers notice a torn trace file.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	n   int64
	err error
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
}

// Emit implements TraceSink.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	b := s.buf[:0]
	b = append(b, `{"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","t":`...)
	b = strconv.AppendFloat(b, e.T, 'f', 3, 64)
	b = append(b, `,"w":`...)
	b = strconv.AppendInt(b, int64(e.Worker), 10)
	b = append(b, `,"lvl":`...)
	b = strconv.AppendInt(b, int64(e.Level), 10)
	b = append(b, `,"a":`...)
	b = strconv.AppendInt(b, e.A, 10)
	b = append(b, `,"b":`...)
	b = strconv.AppendInt(b, e.B, 10)
	if e.F != 0 {
		b = append(b, `,"f":`...)
		b = strconv.AppendFloat(b, e.F, 'f', 3, 64)
	}
	b = append(b, '}', '\n')
	if _, err := s.w.Write(b); err != nil && s.err == nil {
		s.err = err
	}
	s.buf = b
	s.n++
	s.mu.Unlock()
}

// Events returns how many events were written.
func (s *JSONLSink) Events() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write error seen by Emit or Flush (nil if none).
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush drains the internal buffer to the underlying writer and returns
// the first error of the sink's lifetime.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *JSONLSink) flushLocked() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes the sink and returns the first error of its lifetime. It
// does not close the underlying writer (the sink does not own it).
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// CountingSink counts events by kind; test and diagnostic support.
type CountingSink struct {
	mu     sync.Mutex
	counts map[EventKind]int64
	events []Event
	keep   bool
}

// NewCountingSink returns a sink that tallies events; with keep it also
// retains every event in order.
func NewCountingSink(keep bool) *CountingSink {
	return &CountingSink{counts: make(map[EventKind]int64), keep: keep}
}

// Emit implements TraceSink.
func (s *CountingSink) Emit(e Event) {
	s.mu.Lock()
	s.counts[e.Kind]++
	if s.keep {
		s.events = append(s.events, e)
	}
	s.mu.Unlock()
}

// Count returns how many events of kind k were seen.
func (s *CountingSink) Count(k EventKind) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[k]
}

// Total returns the total event count.
func (s *CountingSink) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, c := range s.counts {
		n += c
	}
	return n
}

// Events returns the retained events (nil unless created with keep).
func (s *CountingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
