package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry snapshot in the OpenMetrics text
// exposition format (the Prometheus scrape format): counters with a
// `_total` sample suffix, gauges as plain samples, histograms as
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`, and a
// terminating `# EOF` line. Instrument names are sanitized (every
// character outside [a-zA-Z0-9_:] becomes '_', so "sim.disk.reads.data"
// exposes as "sim_disk_reads_data"); distinct instruments whose names
// collide after sanitization are rejected with an error rather than
// emitted as duplicate families.
//
// Like WriteJSON the output is deterministic: instruments are emitted in
// sorted sanitized-name order, so equal registry states produce
// byte-identical expositions. cmd/spjoin serves this on the -pprof mux at
// /metrics; the round-trip test parses the exposition back into a
// Snapshot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	// Distinct instrument names may sanitize to the same metric family
	// ("a.b" and "a_b" both expose as "a_b"); emitting both would produce
	// duplicate TYPE lines and duplicate series — an invalid exposition
	// Prometheus rejects at scrape time. Refuse up front, naming the clash.
	families := map[string]string{}
	checkFamily := func(name string) error {
		n := SanitizeMetricName(name)
		if prior, ok := families[n]; ok && prior != name {
			return fmt.Errorf("metrics: instruments %q and %q both sanitize to Prometheus family %q", prior, name, n)
		}
		families[n] = name
		return nil
	}
	for name := range snap.Counters {
		if err := checkFamily(name); err != nil {
			return err
		}
	}
	for name := range snap.Gauges {
		if err := checkFamily(name); err != nil {
			return err
		}
	}
	for name := range snap.Histograms {
		if err := checkFamily(name); err != nil {
			return err
		}
	}

	var b []byte

	counters := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		counters = append(counters, name)
	}
	sort.Slice(counters, func(i, j int) bool {
		return SanitizeMetricName(counters[i]) < SanitizeMetricName(counters[j])
	})
	for _, name := range counters {
		n := SanitizeMetricName(name)
		b = append(b, "# TYPE "...)
		b = append(b, n...)
		b = append(b, " counter\n"...)
		b = append(b, n...)
		b = append(b, "_total "...)
		b = strconv.AppendInt(b, snap.Counters[name], 10)
		b = append(b, '\n')
	}

	gauges := make([]string, 0, len(snap.Gauges))
	for name := range snap.Gauges {
		gauges = append(gauges, name)
	}
	sort.Slice(gauges, func(i, j int) bool {
		return SanitizeMetricName(gauges[i]) < SanitizeMetricName(gauges[j])
	})
	for _, name := range gauges {
		n := SanitizeMetricName(name)
		b = append(b, "# TYPE "...)
		b = append(b, n...)
		b = append(b, " gauge\n"...)
		b = append(b, n...)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, snap.Gauges[name], 'g', -1, 64)
		b = append(b, '\n')
	}

	hists := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hists = append(hists, name)
	}
	sort.Slice(hists, func(i, j int) bool {
		return SanitizeMetricName(hists[i]) < SanitizeMetricName(hists[j])
	})
	for _, name := range hists {
		h := snap.Histograms[name]
		n := SanitizeMetricName(name)
		b = append(b, "# TYPE "...)
		b = append(b, n...)
		b = append(b, " histogram\n"...)
		var cum int64
		for i, c := range h.Counts {
			cum += c
			b = append(b, n...)
			b = append(b, `_bucket{le="`...)
			if i < len(h.Bounds) {
				b = strconv.AppendInt(b, h.Bounds[i], 10)
			} else {
				b = append(b, "+Inf"...)
			}
			b = append(b, `"} `...)
			b = strconv.AppendInt(b, cum, 10)
			b = append(b, '\n')
		}
		b = append(b, n...)
		b = append(b, "_sum "...)
		b = strconv.AppendInt(b, h.Sum, 10)
		b = append(b, '\n')
		b = append(b, n...)
		b = append(b, "_count "...)
		b = strconv.AppendInt(b, h.Count, 10)
		b = append(b, '\n')
	}

	b = append(b, "# EOF\n"...)
	_, err := w.Write(b)
	return err
}

// SanitizeMetricName maps an instrument name onto the Prometheus metric
// name charset [a-zA-Z0-9_:], replacing every other rune with '_' and
// prefixing a leading digit with '_'.
func SanitizeMetricName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			sb.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			sb.WriteByte('_')
		}
		sb.WriteRune(r)
	}
	return sb.String()
}
