package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
)

func TestJSONLSinkValidLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Kind: EvDiskRead, T: 12.5, Worker: 3, Level: 1, A: 55, B: 1})
	s.Emit(Event{Kind: EvWorkerIdle, T: 100, Worker: -1, Level: -1, F: 3.25})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Events() != 2 {
		t.Fatalf("event count = %d", s.Events())
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	var lines []map[string]interface{}
	for sc.Scan() {
		var m map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0]["ev"] != "disk-read" || lines[0]["a"] != float64(55) || lines[0]["b"] != float64(1) {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if lines[1]["ev"] != "worker-idle" || lines[1]["f"] != 3.25 {
		t.Fatalf("line 1 = %v", lines[1])
	}
}

func TestJSONLSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Emit(Event{Kind: EvPairExpanded, Worker: int32(w), A: int64(i)})
			}
		}()
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	n := 0
	for sc.Scan() {
		var m map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("interleaved write corrupted line %d: %v", n, err)
		}
		n++
	}
	if n != 1600 {
		t.Fatalf("got %d lines, want 1600", n)
	}
}

// failingWriter accepts the first n bytes, then fails every write.
type failingWriter struct {
	n       int
	wrote   int
	failure error
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.wrote+len(p) > w.n {
		ok := w.n - w.wrote
		if ok < 0 {
			ok = 0
		}
		w.wrote += ok
		return ok, w.failure
	}
	w.wrote += len(p)
	return len(p), nil
}

func TestJSONLSinkLatchesWriteError(t *testing.T) {
	wantErr := errors.New("disk full")
	// The sink buffers 64 KiB internally, so the failure surfaces once the
	// buffer spills (or on Flush). Emit enough to spill.
	fw := &failingWriter{n: 100, failure: wantErr}
	s := NewJSONLSink(fw)
	for i := 0; i < 2000; i++ {
		s.Emit(Event{Kind: EvDiskRead, T: float64(i), A: int64(i)})
	}
	s.Emit(Event{Kind: EvDiskRead}) // past the failure: must not clobber the latch
	if err := s.Err(); !errors.Is(err, wantErr) {
		t.Fatalf("Err() = %v, want %v", err, wantErr)
	}
	if err := s.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close() = %v, want the latched %v", err, wantErr)
	}
}

func TestJSONLSinkFlushSurfacesError(t *testing.T) {
	wantErr := errors.New("pipe closed")
	fw := &failingWriter{n: 10, failure: wantErr}
	s := NewJSONLSink(fw)
	s.Emit(Event{Kind: EvBufferMiss, A: 7}) // fits in the internal buffer
	if err := s.Err(); err != nil {
		t.Fatalf("error latched before any underlying write: %v", err)
	}
	if err := s.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("Flush() = %v, want %v", err, wantErr)
	}
	if err := s.Err(); !errors.Is(err, wantErr) {
		t.Fatalf("Err() after Flush = %v, want %v", err, wantErr)
	}
}

func TestJSONLSinkCloseCleanRun(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Kind: EvBufferMiss})
	if err := s.Close(); err != nil {
		t.Fatalf("Close on healthy sink: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("Close must flush buffered events")
	}
}

func TestCountingSink(t *testing.T) {
	s := NewCountingSink(true)
	s.Emit(Event{Kind: EvBufferMiss})
	s.Emit(Event{Kind: EvBufferMiss})
	s.Emit(Event{Kind: EvTaskStolen, A: 4})
	if s.Count(EvBufferMiss) != 2 || s.Count(EvTaskStolen) != 1 || s.Total() != 3 {
		t.Fatalf("counts wrong: miss=%d stolen=%d total=%d",
			s.Count(EvBufferMiss), s.Count(EvTaskStolen), s.Total())
	}
	evs := s.Events()
	if len(evs) != 3 || evs[2].A != 4 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EvPairExpanded, EvBufferLocalHit, EvBufferRemoteHit, EvBufferMiss,
		EvBufferEvict, EvDiskRead, EvTaskStolen, EvTaskReassigned, EvWorkerIdle,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}
