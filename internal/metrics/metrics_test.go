package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("re-lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Load(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []int64{1, 2})
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(3)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must be inert")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []int64{1, 4, 16})
	for _, v := range []int64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["q"]
	want := []int64{2, 2, 2, 2} // (<=1)=0,1 (<=4)=2,4 (<=16)=5,16 (over)=17,1000
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 8 || snap.Sum != 0+1+2+4+5+16+17+1000 {
		t.Fatalf("count/sum = %d/%d", snap.Count, snap.Sum)
	}
}

// TestHistogramBoundaryObservations pins the bucket-edge semantics with
// exact-boundary values only: v equal to Bounds[i] counts in bucket i, never
// in bucket i+1. A regression to an exclusive upper bound (v >= bounds[i])
// would shift every observation here one bucket up.
func TestHistogramBoundaryObservations(t *testing.T) {
	r := NewRegistry()
	bounds := []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	h := r.Histogram("edge", bounds)
	for _, v := range bounds {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["edge"]
	for i := range bounds {
		if snap.Counts[i] != 1 {
			t.Errorf("bucket le%d = %d, want exactly 1 (counts %v)", bounds[i], snap.Counts[i], snap.Counts)
		}
	}
	if over := snap.Counts[len(bounds)]; over != 0 {
		t.Errorf("overflow bucket = %d, want 0: a boundary value leaked past its bucket", over)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds must panic")
		}
	}()
	NewRegistry().Histogram("bad", []int64{4, 1})
}

// TestSteadyStateZeroAlloc pins the package contract: increments and
// observations never allocate once the instrument exists.
func TestSteadyStateZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{1, 8, 64})
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(7)
	}); n != 0 {
		t.Fatalf("steady-state instruments allocate %v allocs/op, want 0", n)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", []int64{10})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j % 20))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("hist", nil).Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

// TestWriteJSONDeterministic asserts two equal registries export
// byte-identical documents — the golden-metrics harness relies on it.
func TestWriteJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z.last").Add(3)
		r.Counter("a.first").Add(1)
		r.Gauge("mid").Set(4.465)
		r.Histogram("depth", []int64{1, 2, 4}).Observe(3)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("JSON export not deterministic:\n%s\nvs\n%s", b1.Bytes(), b2.Bytes())
	}
	var snap Snapshot
	if err := json.Unmarshal(b1.Bytes(), &snap); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if snap.Counters["a.first"] != 1 || snap.Counters["z.last"] != 3 {
		t.Fatalf("round-trip lost counters: %+v", snap)
	}
}

func TestSnapshotNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Counter("a")
	r.Gauge("g")
	r.Histogram("h", []int64{1})
	cs, gs, hs := r.Snapshot().Names()
	if strings.Join(cs, ",") != "a,b" || strings.Join(gs, ",") != "g" || strings.Join(hs, ",") != "h" {
		t.Fatalf("names = %v %v %v", cs, gs, hs)
	}
}
