package metrics

import (
	"bufio"
	"bytes"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"sim.disk.reads.data", "sim_disk_reads_data"},
		{"partjoin.worker.0.pairs", "partjoin_worker_0_pairs"},
		{"already_fine:ok", "already_fine:ok"},
		{"9starts.with.digit", "_9starts_with_digit"},
		{"weird-chars/σ", "weird_chars__"},
	}
	for _, c := range cases {
		if got := SanitizeMetricName(c.in); got != c.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// parseExposition parses the OpenMetrics text back into a Snapshot keyed
// by sanitized names — the round-trip half of the exposition test.
func parseExposition(t *testing.T, data []byte) Snapshot {
	t.Helper()
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	types := map[string]string{}
	sawEOF := false
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Text()
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		switch {
		case strings.Contains(name, "_bucket{le="):
			base, rest, _ := strings.Cut(name, "_bucket{le=\"")
			le := strings.TrimSuffix(rest, "\"}")
			h := snap.Histograms[base]
			cum, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", value, err)
			}
			// De-cumulate against the running total so far.
			var prev int64
			for _, c := range h.Counts {
				prev += c
			}
			h.Counts = append(h.Counts, cum-prev)
			if le != "+Inf" {
				bound, err := strconv.ParseInt(le, 10, 64)
				if err != nil {
					t.Fatalf("le %q: %v", le, err)
				}
				h.Bounds = append(h.Bounds, bound)
			}
			snap.Histograms[base] = h
		case strings.HasSuffix(name, "_sum") && types[strings.TrimSuffix(name, "_sum")] == "histogram":
			base := strings.TrimSuffix(name, "_sum")
			h := snap.Histograms[base]
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			h.Sum = v
			snap.Histograms[base] = h
		case strings.HasSuffix(name, "_count") && types[strings.TrimSuffix(name, "_count")] == "histogram":
			base := strings.TrimSuffix(name, "_count")
			h := snap.Histograms[base]
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			h.Count = v
			snap.Histograms[base] = h
		case strings.HasSuffix(name, "_total"):
			base := strings.TrimSuffix(name, "_total")
			if types[base] != "counter" {
				t.Fatalf("sample %q without counter TYPE", name)
			}
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			snap.Counters[base] = v
		default:
			if types[name] != "gauge" {
				t.Fatalf("sample %q without gauge TYPE", name)
			}
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatal(err)
			}
			snap.Gauges[name] = v
		}
	}
	if !sawEOF {
		t.Fatal("exposition missing terminating # EOF")
	}
	return snap
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.disk.reads.data").Add(346)
	reg.Counter("sim.disk.reads.directory").Add(230)
	reg.Counter("partjoin.worker.0.pairs").Add(56)
	reg.Gauge("sim.response_s").Set(2.691)
	reg.Gauge("partjoin.wall_ms").Set(1.5)
	h := reg.Histogram("sim.queue.depth", []int64{1, 4, 16})
	for _, v := range []int64{0, 1, 2, 5, 17, 100} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := parseExposition(t, buf.Bytes())

	want := reg.Snapshot()
	wantSan := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	for name, v := range want.Counters {
		wantSan.Counters[SanitizeMetricName(name)] = v
	}
	for name, v := range want.Gauges {
		wantSan.Gauges[SanitizeMetricName(name)] = v
	}
	for name, v := range want.Histograms {
		wantSan.Histograms[SanitizeMetricName(name)] = v
	}
	if !reflect.DeepEqual(got.Counters, wantSan.Counters) {
		t.Errorf("counters round-trip:\ngot  %v\nwant %v", got.Counters, wantSan.Counters)
	}
	if !reflect.DeepEqual(got.Gauges, wantSan.Gauges) {
		t.Errorf("gauges round-trip:\ngot  %v\nwant %v", got.Gauges, wantSan.Gauges)
	}
	if !reflect.DeepEqual(got.Histograms, wantSan.Histograms) {
		t.Errorf("histograms round-trip:\ngot  %+v\nwant %+v", got.Histograms, wantSan.Histograms)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		reg.Counter("b.two").Add(2)
		reg.Counter("a.one").Inc()
		reg.Gauge("z.last").Set(9)
		reg.Histogram("m.hist", []int64{10}).Observe(3)
		return reg
	}
	var b1, b2 bytes.Buffer
	if err := build().WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	// Sanitized-sorted order: a.one before b.two, histogram buckets cumulative.
	out := b1.String()
	if strings.Index(out, "a_one_total") > strings.Index(out, "b_two_total") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE a_one counter", "a_one_total 1",
		"# TYPE z_last gauge", "z_last 9",
		`m_hist_bucket{le="10"} 1`, `m_hist_bucket{le="+Inf"} 1`,
		"m_hist_sum 3", "m_hist_count 1", "# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "# EOF\n" {
		t.Fatalf("empty exposition = %q", got)
	}
}

func ExampleRegistry_WritePrometheus() {
	reg := NewRegistry()
	reg.Counter("sim.join.candidates").Add(56)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # TYPE sim_join_candidates counter
	// sim_join_candidates_total 56
	// # EOF
}

func TestWritePrometheusRejectsSanitizeCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b").Inc()
	reg.Counter("a_b").Inc()
	var buf bytes.Buffer
	err := reg.WritePrometheus(&buf)
	if err == nil {
		t.Fatal("colliding instrument names did not error")
	}
	for _, want := range []string{"a.b", "a_b"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("collision error %q does not name %q", err, want)
		}
	}
	// Collisions across instrument kinds are just as invalid.
	reg2 := NewRegistry()
	reg2.Counter("x.y").Inc()
	reg2.Gauge("x_y").Set(1)
	if err := reg2.WritePrometheus(&buf); err == nil {
		t.Fatal("cross-kind collision did not error")
	}
}
