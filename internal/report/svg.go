package report

import (
	"fmt"
	"strconv"
	"strings"

	"spjoin/internal/runstore"
)

// The charts are hand-rolled SVG: fixed canvas, fixed-precision
// coordinates, series in declared order — byte-deterministic for a given
// store, so goldens pin them exactly.

const (
	svgW, svgH                 = 640.0, 420.0
	plotL, plotT, plotR, plotB = 60.0, 34.0, 612.0, 368.0
)

type xy struct{ X, Y float64 }

type series struct {
	Name  string
	Color string
	Pts   []xy
}

// fnum formats a coordinate with fixed precision (determinism).
func fnum(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// flabel formats a tick label compactly ("0.5", "24").
func flabel(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// lineChart renders one titled line chart with linear axes from the
// origin to (xMax, yMax).
func lineChart(title, xLabel, yLabel string, xMax, yMax float64, xTicks, yTicks []float64, extra string, ss []series) string {
	sx := func(x float64) float64 { return plotL + x/xMax*(plotR-plotL) }
	sy := func(y float64) float64 { return plotB - y/yMax*(plotB-plotT) }
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g" font-family="sans-serif" font-size="12">`+"\n", svgW, svgH, svgW, svgH)
	fmt.Fprintf(&sb, `<rect width="%g" height="%g" fill="white"/>`+"\n", svgW, svgH)
	fmt.Fprintf(&sb, `<text x="%s" y="18" text-anchor="middle" font-size="14">%s</text>`+"\n", fnum((plotL+plotR)/2), title)
	// Grid and ticks.
	for _, t := range yTicks {
		y := sy(t)
		fmt.Fprintf(&sb, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#ddd"/>`+"\n", fnum(plotL), fnum(y), fnum(plotR), fnum(y))
		fmt.Fprintf(&sb, `<text x="%s" y="%s" text-anchor="end">%s</text>`+"\n", fnum(plotL-6), fnum(y+4), flabel(t))
	}
	for _, t := range xTicks {
		x := sx(t)
		fmt.Fprintf(&sb, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#ddd"/>`+"\n", fnum(x), fnum(plotT), fnum(x), fnum(plotB))
		fmt.Fprintf(&sb, `<text x="%s" y="%s" text-anchor="middle">%s</text>`+"\n", fnum(x), fnum(plotB+16), flabel(t))
	}
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="black"/>`+"\n", fnum(plotL), fnum(plotT), fnum(plotL), fnum(plotB))
	fmt.Fprintf(&sb, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="black"/>`+"\n", fnum(plotL), fnum(plotB), fnum(plotR), fnum(plotB))
	fmt.Fprintf(&sb, `<text x="%s" y="%s" text-anchor="middle">%s</text>`+"\n", fnum((plotL+plotR)/2), fnum(svgH-8), xLabel)
	fmt.Fprintf(&sb, `<text x="14" y="%s" text-anchor="middle" transform="rotate(-90 14 %s)">%s</text>`+"\n", fnum((plotT+plotB)/2), fnum((plotT+plotB)/2), yLabel)
	sb.WriteString(extraScaled(extra, sx, sy))
	// Series polylines, markers and legend.
	for i, s := range ss {
		var pts []string
		for _, p := range s.Pts {
			pts = append(pts, fnum(sx(p.X))+","+fnum(sy(p.Y)))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", strings.Join(pts, " "), s.Color)
		for _, p := range s.Pts {
			fmt.Fprintf(&sb, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", fnum(sx(p.X)), fnum(sy(p.Y)), s.Color)
		}
		ly := plotT + 10 + float64(i)*18
		fmt.Fprintf(&sb, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="2"/>`+"\n", fnum(plotL+12), fnum(ly), fnum(plotL+40), fnum(ly), s.Color)
		fmt.Fprintf(&sb, `<text x="%s" y="%s">%s</text>`+"\n", fnum(plotL+46), fnum(ly+4), s.Name)
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// extraScaled renders the "ideal" reference line: a dashed diagonal given
// in data coordinates encoded as "x1,y1,x2,y2" (empty = none).
func extraScaled(extra string, sx, sy func(float64) float64) string {
	if extra == "" {
		return ""
	}
	var x1, y1, x2, y2 float64
	fmt.Sscanf(extra, "%g,%g,%g,%g", &x1, &y1, &x2, &y2)
	return fmt.Sprintf(`<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#999" stroke-dasharray="5,4"/>`+"\n",
		fnum(sx(x1)), fnum(sy(y1)), fnum(sx(x2)), fnum(sy(y2)))
}

// fig9Series extracts one metric of the Figure 9/10 sweep as chart series
// (one per disk configuration), x = number of processors.
func fig9Series(s *runstore.Store, metric string, transform func(n, v float64) float64) ([]series, float64, error) {
	g, err := fig9Grid(s)
	if err != nil {
		return nil, 0, err
	}
	colors := map[string]string{"1": "#d62728", "8": "#1f77b4", "n": "#2ca02c"}
	var out []series
	xMax := 0.0
	for _, d := range []string{"1", "8", "n"} {
		ser := series{Name: "d=" + d, Color: colors[d]}
		for _, n := range g.Rows {
			v, ok := g.Metric(n, d, metric)
			if !ok {
				return nil, 0, fmt.Errorf("fig9 cell (n=%s, d=%s) missing %s", n, d, metric)
			}
			x, _ := strconv.ParseFloat(n, 64)
			if x > xMax {
				xMax = x
			}
			ser.Pts = append(ser.Pts, xy{X: x, Y: transform(x, v)})
		}
		out = append(out, ser)
	}
	return out, xMax, nil
}

// SpeedupSVG charts speed-up vs. processors for d = 1, 8, n with the
// ideal linear speed-up as a dashed reference.
func SpeedupSVG(s *runstore.Store) (string, error) {
	ss, xMax, err := fig9Series(s, "speedup", func(_, v float64) float64 { return v })
	if err != nil {
		return "", err
	}
	ticks := axisTicks(xMax)
	return lineChart("Speed-up vs. processors (gd, reassign all, buffer 100·n)",
		"processors n", "speed-up t(1)/t(n)", xMax, xMax, ticks, ticks,
		fmt.Sprintf("1,1,%g,%g", xMax, xMax), ss), nil
}

// EfficiencySVG charts parallel efficiency (speed-up divided by n).
func EfficiencySVG(s *runstore.Store) (string, error) {
	ss, xMax, err := fig9Series(s, "speedup", func(n, v float64) float64 {
		if n == 0 {
			return 0
		}
		return v / n
	})
	if err != nil {
		return "", err
	}
	return lineChart("Parallel efficiency vs. processors",
		"processors n", "efficiency speed-up/n", xMax, 1.1,
		axisTicks(xMax), []float64{0, 0.25, 0.5, 0.75, 1},
		fmt.Sprintf("1,1,%g,1", xMax), ss), nil
}

// axisTicks picks round tick positions for a 0..max axis.
func axisTicks(max float64) []float64 {
	step := 4.0
	if max <= 10 {
		step = 2
	}
	ticks := []float64{1}
	for t := step; t <= max; t += step {
		ticks = append(ticks, t)
	}
	return ticks
}
