package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spjoin/internal/runstore"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleStore builds a small synthetic store covering every section.
func sampleStore(t *testing.T) *runstore.Store {
	t.Helper()
	var buf bytes.Buffer
	w := runstore.NewWriter(&buf)
	add := func(exp string, params map[string]string, ms map[string]float64) {
		t.Helper()
		if err := w.Write(runstore.Record{
			Experiment: exp, Params: params, Seed: 42, Scale: 1, Engine: "sim",
			GitRev: "abc123", Metrics: ms,
		}); err != nil {
			t.Fatal(err)
		}
	}
	run := func(resp, first, work, disk float64) map[string]float64 {
		return map[string]float64{
			"response_s": resp, "first_s": first, "avg_s": (resp + first) / 2,
			"total_work_s": work, "disk": disk,
		}
	}
	for _, procs := range []string{"8", "24"} {
		for _, buffer := range []string{"200", "800"} {
			for i, v := range []string{"lsr", "gsrr", "gd"} {
				base := 26000.0
				if buffer == "800" {
					base = 19000
				}
				if procs == "24" {
					base += 9000
				}
				add("fig5", map[string]string{"procs": procs, "buffer": buffer, "variant": v},
					map[string]float64{"disk": base - float64(i)*700})
			}
		}
	}
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		for i, ra := range []string{"none", "root", "all"} {
			add("fig7", map[string]string{"variant": v, "reassign": ra},
				run(291.6-float64(i)*58, 124.2+float64(i)*25, 1330+float64(i)*32, 19002+float64(i)*330))
		}
	}
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		add("fig8", map[string]string{"variant": v, "victim": "loaded"}, map[string]float64{"disk": 19679})
		add("fig8", map[string]string{"variant": v, "victim": "random"}, map[string]float64{"disk": 20046})
	}
	t1 := 1083.5
	for _, n := range []struct {
		n string
		f float64
	}{{"1", 1}, {"4", 3.5}, {"8", 7}} {
		for _, d := range []string{"1", "8", "n"} {
			resp := t1 / n.f
			if d == "1" && n.n != "1" {
				resp = 600
			}
			add("fig9", map[string]string{"n": n.n, "d": d},
				map[string]float64{"response_s": resp, "total_work_s": 1100 + n.f*20,
					"disk": 19000 - n.f*500, "speedup": t1 / resp})
		}
	}
	for _, n := range []string{"1", "8"} {
		add("sn", map[string]string{"n": n, "platform": "svm"}, run(154.5, 150, 1200, 16237))
		add("sn", map[string]string{"n": n, "platform": "sn"}, run(170.2, 165, 1250, 18264))
	}
	add("est", map[string]string{"measure": "correlation"}, map[string]float64{"pearson_r": 0.64, "tasks": 609})
	add("est", map[string]string{"assignment": "range", "reassign": "none"}, run(291.6, 124.2, 1330, 19002))
	add("est", map[string]string{"assignment": "lpt", "reassign": "none"}, run(190.5, 147.8, 1340, 20254))
	add("est", map[string]string{"assignment": "lpt", "reassign": "all"}, run(180.2, 180.1, 1390, 20671))
	add("est", map[string]string{"assignment": "dynamic", "reassign": "all"}, run(181.5, 180.7, 1395, 20407))
	skew := func(comps, cands, units, refined, subtiles float64) map[string]float64 {
		return map[string]float64{"comparisons": comps, "candidates": cands,
			"duplicates": 0, "units": units, "refined_tiles": refined, "subtiles": subtiles}
	}
	for _, c := range []struct {
		dist             string
		off, auto        float64
		cands            float64
		units, ref, subt float64
	}{
		{"uniform", 22173, 22173, 106, 729, 0, 0},
		{"gauss60", 59849, 59849, 1912, 588, 0, 0},
		{"gauss20", 259164, 259164, 1194, 300, 0, 0},
		{"gauss5", 2115908, 792680, 19084, 1190, 8, 1133},
	} {
		add("skew", map[string]string{"dist": c.dist, "refine": "off"}, skew(c.off, c.cands, c.units, 0, 0))
		add("skew", map[string]string{"dist": c.dist, "refine": "auto"}, skew(c.auto, c.cands, c.units, c.ref, c.subt))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := runstore.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// golden compares got against testdata/name, rewriting with -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/report -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from golden; run go test ./internal/report -update and review the diff.\n--- got ---\n%s", name, got)
	}
}

func TestMarkdownGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Markdown(&buf, sampleStore(t)); err != nil {
		t.Fatal(err)
	}
	golden(t, "report.md", buf.String())
}

func TestSpeedupSVGGolden(t *testing.T) {
	svg, err := SpeedupSVG(sampleStore(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg xmlns=") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatalf("not a standalone SVG document:\n%.120s", svg)
	}
	golden(t, "speedup.svg", svg)
}

func TestEfficiencySVGGolden(t *testing.T) {
	svg, err := EfficiencySVG(sampleStore(t))
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "efficiency.svg", svg)
}

func TestRenderDeterministic(t *testing.T) {
	s := sampleStore(t)
	a, err := SpeedupSVG(s)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SpeedupSVG(s)
	if a != b {
		t.Fatal("SVG render not deterministic")
	}
	var ba, bb bytes.Buffer
	if err := Markdown(&ba, s); err != nil {
		t.Fatal(err)
	}
	if err := Markdown(&bb, s); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatal("markdown render not deterministic")
	}
}

func TestRegen(t *testing.T) {
	s := sampleStore(t)
	var doc strings.Builder
	doc.WriteString("# Title\n\nprose kept\n\n")
	for _, sec := range Sections() {
		doc.WriteString(beginMarker(sec.Name) + "\nstale\n" + endMarker(sec.Name) + "\n\nmore prose\n\n")
	}
	out, err := Regen([]byte(doc.String()), s)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	if strings.Contains(text, "stale") {
		t.Fatal("stale content survived regen")
	}
	if !strings.Contains(text, "prose kept") || strings.Count(text, "more prose") != len(Sections()) {
		t.Fatal("prose outside markers was not preserved")
	}
	fig7, err := Fig7Table(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, fig7) {
		t.Fatal("regen did not inline the fig7 table")
	}
	// Regen is idempotent: running again changes nothing.
	again, err := Regen(out, s)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != text {
		t.Fatal("regen not idempotent")
	}
	// A missing marker is an error naming the section.
	if _, err := Regen([]byte("no markers"), s); err == nil || !strings.Contains(err.Error(), "fig5") {
		t.Fatalf("missing marker not reported: %v", err)
	}
}

func TestHeatmapSVG(t *testing.T) {
	cells := []int64{0, 1, 2, 3, 4, 5}
	svg, err := HeatmapSVG("tile cost", 3, 2, cells)
	if err != nil {
		t.Fatalf("HeatmapSVG: %v", err)
	}
	if !strings.HasPrefix(svg, "<svg xmlns=") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatalf("not a standalone SVG document:\n%.120s", svg)
	}
	if got := strings.Count(svg, "<rect"); got != 1+6 {
		t.Fatalf("rect count=%d, want background + 6 cells", got)
	}
	// Zero cell stays white; hottest cell is the full red.
	if !strings.Contains(svg, `fill="#ffffff"`) || !strings.Contains(svg, `fill="#c81818"`) {
		t.Fatalf("ramp endpoints missing:\n%s", svg)
	}
	if !strings.Contains(svg, "3x2 cells, max 5") {
		t.Fatalf("caption missing:\n%s", svg)
	}
	// Deterministic.
	svg2, _ := HeatmapSVG("tile cost", 3, 2, cells)
	if svg2 != svg {
		t.Fatalf("HeatmapSVG is not deterministic")
	}
	if _, err := HeatmapSVG("x", 0, 2, cells); err == nil {
		t.Fatalf("accepted zero-width grid")
	}
	if _, err := HeatmapSVG("x", 4, 2, cells); err == nil {
		t.Fatalf("accepted short cell slice")
	}
}
