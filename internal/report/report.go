// Package report renders the observatory's human-facing artifacts from a
// validated run store: the measured markdown tables of EXPERIMENTS.md,
// deterministic SVG speed-up/efficiency charts (no external dependencies,
// golden-file tested), and the marker-based regeneration that rewrites
// the measured sections of EXPERIMENTS.md in place. Everything is a pure
// function of the store, so two identical stores render byte-identical
// artifacts.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"spjoin/internal/runstore"
)

// Section is one regenerable block: a marker name and its generator.
type Section struct {
	Name string
	Gen  func(s *runstore.Store) (string, error)
}

// Sections lists every measured block of EXPERIMENTS.md in document order.
func Sections() []Section {
	return []Section{
		{"fig5", Fig5Table},
		{"fig7", Fig7Table},
		{"fig8", Fig8Table},
		{"fig9", Fig9Table},
		{"fig10", Fig10Table},
		{"sn", SNTable},
		{"est", ESTTable},
		{"skew", SkewTable},
	}
}

// Markdown renders the full observatory report: every measured table in
// paper order, headed by the store's provenance.
func Markdown(w io.Writer, s *runstore.Store) error {
	if s.Len() == 0 {
		return fmt.Errorf("report: empty run store")
	}
	r := s.Records[0]
	fmt.Fprintf(w, "# Observatory report\n\n")
	fmt.Fprintf(w, "Generated from a run store of %d cells (scale %g, seed %d, engine %s",
		s.Len(), r.Scale, r.Seed, r.Engine)
	if r.GitRev != "" {
		fmt.Fprintf(w, ", rev %s", r.GitRev)
	}
	fmt.Fprintf(w, ").\n")
	titles := map[string]string{
		"fig5":  "Figure 5 — disk accesses vs. buffer size",
		"fig7":  "Figure 7 — task reassignment",
		"fig8":  "Figure 8 — victim selection",
		"fig9":  "Figure 9 — response time vs. processors",
		"fig10": "Figure 10 — speed-up and disk accesses",
		"sn":    "Extension SN — SVM vs. shared-nothing",
		"est":   "Extension EST — estimation-based balancing",
		"skew":  "Extension SKEW — skew-adaptive tile refinement",
	}
	for _, sec := range Sections() {
		body, err := sec.Gen(s)
		if err != nil {
			return fmt.Errorf("report: section %s: %w", sec.Name, err)
		}
		fmt.Fprintf(w, "\n## %s\n\n%s", titles[sec.Name], body)
	}
	return nil
}

// commas formats a float that carries an integer count with thousands
// separators ("16,243").
func commas(v float64) string {
	s := fmt.Sprintf("%.0f", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// table renders a markdown table from a header and rows.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(header, " | ") + " |\n")
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("|" + strings.Join(sep, "|") + "|\n")
	for _, row := range rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// Fig5Table renders disk accesses per buffer size: one column per
// (variant, procs) combination, matching the committed layout.
func Fig5Table(s *runstore.Store) (string, error) {
	header := []string{"buffer", "lsr (8)", "gsrr (8)", "gd (8)", "lsr (24)", "gsrr (24)", "gd (24)"}
	g8, err := s.Grid("fig5", "buffer", "variant", map[string]string{"procs": "8"})
	if err != nil {
		return "", err
	}
	g24, err := s.Grid("fig5", "buffer", "variant", map[string]string{"procs": "24"})
	if err != nil {
		return "", err
	}
	var rows [][]string
	for _, buffer := range g8.Rows {
		row := []string{buffer}
		for _, g := range []*runstore.Grid{g8, g24} {
			for _, v := range []string{"lsr", "gsrr", "gd"} {
				d, ok := g.Metric(buffer, v, "disk")
				if !ok {
					return "", fmt.Errorf("fig5 cell (buffer=%s, variant=%s) missing", buffer, v)
				}
				row = append(row, commas(d))
			}
		}
		rows = append(rows, row)
	}
	return table(header, rows), nil
}

// Fig7Table renders run times and disk accesses per variant × reassign.
func Fig7Table(s *runstore.Store) (string, error) {
	header := []string{"variant", "reassign", "first", "avg", "last", "total work", "disk"}
	var rows [][]string
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		for _, ra := range []string{"none", "root", "all"} {
			rec, ok := s.Find("fig7", map[string]string{"variant": v, "reassign": ra})
			if !ok {
				return "", fmt.Errorf("fig7 cell (variant=%s, reassign=%s) missing", v, ra)
			}
			m := rec.Metrics
			rows = append(rows, []string{v, ra,
				fmt.Sprintf("%.1f", m["first_s"]), fmt.Sprintf("%.1f", m["avg_s"]),
				fmt.Sprintf("%.1f", m["response_s"]), fmt.Sprintf("%.0f", m["total_work_s"]),
				commas(m["disk"])})
		}
	}
	return table(header, rows), nil
}

// Fig8Table renders disk accesses per variant × victim policy.
func Fig8Table(s *runstore.Store) (string, error) {
	header := []string{"variant", "a: most-loaded", "b: arbitrary"}
	var rows [][]string
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		row := []string{v}
		for _, vict := range []string{"loaded", "random"} {
			d, err := s.Metric("fig8", map[string]string{"variant": v, "victim": vict}, "disk")
			if err != nil {
				return "", err
			}
			row = append(row, commas(d))
		}
		rows = append(rows, row)
	}
	return table(header, rows), nil
}

// fig9Grid groups the shared Figure 9/10 sweep (rows n, cols d).
func fig9Grid(s *runstore.Store) (*runstore.Grid, error) {
	return s.Grid("fig9", "n", "d", nil)
}

// Fig9Table renders response time per n × disk configuration.
func Fig9Table(s *runstore.Store) (string, error) {
	g, err := fig9Grid(s)
	if err != nil {
		return "", err
	}
	header := []string{"n", "d=1", "d=8", "d=n", "total work d=n [s]"}
	var rows [][]string
	for _, n := range g.Rows {
		row := []string{n}
		for _, d := range []string{"1", "8", "n"} {
			v, ok := g.Metric(n, d, "response_s")
			if !ok {
				return "", fmt.Errorf("fig9 cell (n=%s, d=%s) missing", n, d)
			}
			row = append(row, fmt.Sprintf("%.1f", v))
		}
		tw, ok := g.Metric(n, "n", "total_work_s")
		if !ok {
			return "", fmt.Errorf("fig9 cell (n=%s, d=n) missing total_work_s", n)
		}
		row = append(row, fmt.Sprintf("%.1f", tw))
		rows = append(rows, row)
	}
	return table(header, rows), nil
}

// Fig10Table renders the speed-up series plus the d=n disk accesses.
func Fig10Table(s *runstore.Store) (string, error) {
	g, err := fig9Grid(s)
	if err != nil {
		return "", err
	}
	header := []string{"n", "speed-up d=1", "speed-up d=8", "speed-up d=n", "disk (d=n)"}
	var rows [][]string
	for _, n := range g.Rows {
		row := []string{n}
		for _, d := range []string{"1", "8", "n"} {
			v, ok := g.Metric(n, d, "speedup")
			if !ok {
				return "", fmt.Errorf("fig9 cell (n=%s, d=%s) missing speedup", n, d)
			}
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		dk, ok := g.Metric(n, "n", "disk")
		if !ok {
			return "", fmt.Errorf("fig9 cell (n=%s, d=n) missing disk", n)
		}
		row = append(row, commas(dk))
		rows = append(rows, row)
	}
	return table(header, rows), nil
}

// SNTable renders the SVM vs. shared-nothing comparison.
func SNTable(s *runstore.Store) (string, error) {
	header := []string{"n = d", "SVM t(n) [s]", "SN t(n) [s]", "SN/SVM", "SVM disk", "SN disk"}
	g, err := s.Grid("sn", "n", "platform", nil)
	if err != nil {
		return "", err
	}
	var rows [][]string
	for _, n := range g.Rows {
		svm, ok1 := g.Metric(n, "svm", "response_s")
		snT, ok2 := g.Metric(n, "sn", "response_s")
		svmD, ok3 := g.Metric(n, "svm", "disk")
		snD, ok4 := g.Metric(n, "sn", "disk")
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return "", fmt.Errorf("sn cell n=%s incomplete", n)
		}
		ratio := 0.0
		if svm > 0 {
			ratio = snT / svm
		}
		rows = append(rows, []string{n,
			fmt.Sprintf("%.1f", svm), fmt.Sprintf("%.1f", snT), fmt.Sprintf("%.2f", ratio),
			commas(svmD), commas(snD)})
	}
	return table(header, rows), nil
}

// estNames maps the assignment axis to display names.
var estNames = map[string]string{
	"range":   "static range",
	"lpt":     "static estimated (LPT)",
	"dynamic": "dynamic",
}

// ESTTable renders the estimator correlation plus the assignment table.
func ESTTable(s *runstore.Store) (string, error) {
	r, err := s.Metric("est", map[string]string{"measure": "correlation"}, "pearson_r")
	if err != nil {
		return "", err
	}
	header := []string{"assignment", "reassign", "first [s]", "last [s]", "disk"}
	recs := s.Select("est", nil)
	// Deterministic order: range < lpt < dynamic, then reassign none < all.
	rank := map[string]int{"range": 0, "lpt": 1, "dynamic": 2}
	raRank := map[string]int{"none": 0, "root": 1, "all": 2}
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i].Params, recs[j].Params
		if rank[a["assignment"]] != rank[b["assignment"]] {
			return rank[a["assignment"]] < rank[b["assignment"]]
		}
		return raRank[a["reassign"]] < raRank[b["reassign"]]
	})
	var rows [][]string
	for _, rec := range recs {
		if rec.Params["measure"] == "correlation" {
			continue
		}
		m := rec.Metrics
		rows = append(rows, []string{
			estNames[rec.Params["assignment"]], rec.Params["reassign"],
			fmt.Sprintf("%.1f", m["first_s"]), fmt.Sprintf("%.1f", m["response_s"]),
			commas(m["disk"])})
	}
	return fmt.Sprintf("Estimate vs. actual per-task work: Pearson r = **%.2f**.\n\n%s",
		r, table(header, rows)), nil
}

// skewDistOrder fixes the skew ladder's display order (mild to extreme);
// lexical sorting would interleave the sigma levels.
var skewDistOrder = []string{"uniform", "gauss60", "gauss20", "gauss5"}

// SkewTable renders the partition engine's refinement cells: comparisons
// with the refinement off and on the auto threshold, the resulting tile
// decomposition, and the candidate count both must agree on.
func SkewTable(s *runstore.Store) (string, error) {
	header := []string{"distribution", "comparisons (off)", "comparisons (auto)",
		"auto/off", "refined tiles", "subtiles", "candidates"}
	var rows [][]string
	for _, dist := range skewDistOrder {
		var m [2]map[string]float64
		for i, refine := range []string{"off", "auto"} {
			recs := s.Select("skew", map[string]string{"dist": dist, "refine": refine})
			if len(recs) != 1 {
				return "", fmt.Errorf("skew cell dist=%s refine=%s: %d records", dist, refine, len(recs))
			}
			m[i] = recs[0].Metrics
		}
		off, auto := m[0], m[1]
		if off["candidates"] != auto["candidates"] {
			return "", fmt.Errorf("skew dist=%s: candidate counts diverge (%v vs %v)",
				dist, off["candidates"], auto["candidates"])
		}
		ratio := 1.0
		if off["comparisons"] > 0 {
			ratio = auto["comparisons"] / off["comparisons"]
		}
		rows = append(rows, []string{dist,
			commas(off["comparisons"]), commas(auto["comparisons"]),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.0f", auto["refined_tiles"]), fmt.Sprintf("%.0f", auto["subtiles"]),
			commas(auto["candidates"])})
	}
	return table(header, rows), nil
}
