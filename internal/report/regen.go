package report

import (
	"fmt"
	"strings"

	"spjoin/internal/runstore"
)

// Markers bracket each generated block in EXPERIMENTS.md:
//
//	<!-- generated:fig5 (make experiments-regen) -->
//	...table...
//	<!-- /generated:fig5 -->
//
// Regen replaces everything between the markers (exclusive) with the
// section's freshly rendered content.

func beginMarker(name string) string {
	return fmt.Sprintf("<!-- generated:%s (make experiments-regen) -->", name)
}

func endMarker(name string) string {
	return fmt.Sprintf("<!-- /generated:%s -->", name)
}

// Regen rewrites every marked measured section of doc from the run store.
// A missing or out-of-order marker pair is an error naming the section —
// regeneration must never silently skip a table.
func Regen(doc []byte, s *runstore.Store) ([]byte, error) {
	text := string(doc)
	for _, sec := range Sections() {
		begin, end := beginMarker(sec.Name), endMarker(sec.Name)
		bi := strings.Index(text, begin)
		if bi < 0 {
			return nil, fmt.Errorf("report: marker %q not found", begin)
		}
		ei := strings.Index(text, end)
		if ei < 0 {
			return nil, fmt.Errorf("report: marker %q not found", end)
		}
		if ei < bi {
			return nil, fmt.Errorf("report: markers for section %s out of order", sec.Name)
		}
		body, err := sec.Gen(s)
		if err != nil {
			return nil, fmt.Errorf("report: section %s: %w", sec.Name, err)
		}
		text = text[:bi+len(begin)] + "\n" + body + text[ei:]
	}
	return []byte(text), nil
}
