package report

import (
	"fmt"
	"strings"
)

// HeatmapSVG renders a w×h cell grid as a standalone SVG heatmap — the
// graphical twin of the flight recorder's ASCII tile-cost heat. Cell (0,0)
// is the bottom-left of the joined space (matching the partition grid's
// tile numbering); intensity is linear in cell value relative to the
// hottest cell, on a white→red ramp with zero cells left white. Like the
// observatory charts it is byte-deterministic for a given input.
func HeatmapSVG(title string, w, h int, cells []int64) (string, error) {
	if w <= 0 || h <= 0 {
		return "", fmt.Errorf("report: heatmap grid %dx%d", w, h)
	}
	if len(cells) < w*h {
		return "", fmt.Errorf("report: heatmap needs %d cells, got %d", w*h, len(cells))
	}
	var maxC int64
	for _, c := range cells[:w*h] {
		if c > maxC {
			maxC = c
		}
	}
	// Square cells sized to the plot area; the grid is centered.
	cell := (plotR - plotL) / float64(w)
	if vc := (plotB - plotT) / float64(h); vc < cell {
		cell = vc
	}
	gridW, gridH := cell*float64(w), cell*float64(h)
	x0 := plotL + ((plotR-plotL)-gridW)/2
	y0 := plotT + ((plotB-plotT)-gridH)/2

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g" font-family="sans-serif" font-size="12">`+"\n", svgW, svgH, svgW, svgH)
	fmt.Fprintf(&sb, `<rect width="%g" height="%g" fill="white"/>`+"\n", svgW, svgH)
	fmt.Fprintf(&sb, `<text x="%s" y="20" text-anchor="middle" font-size="14">%s</text>`+"\n", fnum(svgW/2), title)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := cells[y*w+x]
			// Row y=0 at the bottom, like the tile grid.
			px := x0 + float64(x)*cell
			py := y0 + float64(h-1-y)*cell
			fmt.Fprintf(&sb, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s" stroke="#ccc" stroke-width="0.5"/>`+"\n",
				fnum(px), fnum(py), fnum(cell), fnum(cell), heatColor(c, maxC))
		}
	}
	fmt.Fprintf(&sb, `<text x="%s" y="%s" text-anchor="middle" fill="#555">%dx%d cells, max %d</text>`+"\n",
		fnum(svgW/2), fnum(svgH-8), w, h, maxC)
	sb.WriteString("</svg>\n")
	return sb.String(), nil
}

// heatColor maps a cell value to a white→red ramp; zero stays white so
// untouched tiles read as absent rather than cold.
func heatColor(c, maxC int64) string {
	if c <= 0 || maxC <= 0 {
		return "#ffffff"
	}
	t := float64(c) / float64(maxC)
	// White (255,255,255) → red (200,24,24).
	g := int(255 - t*(255-24))
	r := int(255 - t*(255-200))
	return fmt.Sprintf("#%02x%02x%02x", r, g, g)
}
