// Package buffer implements the buffer organizations compared in §3.2 of the
// paper: per-processor local LRU buffers, and a global buffer realized on
// shared virtual memory as the union of the local buffers with a page
// directory. The LRU replacement policy follows Gray/Reuter [GR 93].
//
// Buffers track only page identities and charge virtual-time costs; the
// actual node data stays in the in-memory node store of package rtree.
package buffer

import (
	"fmt"

	"spjoin/internal/storage"
)

// TreeID distinguishes the two join operands' page spaces.
type TreeID uint8

// PageKey identifies a page globally: tree file plus page number.
type PageKey struct {
	Tree TreeID
	Page storage.PageID
}

func (k PageKey) String() string {
	return fmt.Sprintf("t%d/p%d", k.Tree, k.Page)
}

// lruEntry is one resident page in an LRU list.
type lruEntry struct {
	key        PageKey
	prev, next *lruEntry
	pins       int
}

// LRU is a fixed-capacity page table with least-recently-used replacement
// and optional pinning. The zero value is unusable; create with NewLRU.
type LRU struct {
	capacity int
	table    map[PageKey]*lruEntry
	head     *lruEntry // most recently used
	tail     *lruEntry // least recently used
}

// NewLRU returns an empty buffer holding at most capacity pages
// (capacity >= 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		panic(fmt.Sprintf("buffer: LRU capacity %d < 1", capacity))
	}
	return &LRU{capacity: capacity, table: make(map[PageKey]*lruEntry, capacity)}
}

// Capacity returns the maximum number of resident pages.
func (b *LRU) Capacity() int { return b.capacity }

// Len returns the number of resident pages.
func (b *LRU) Len() int { return len(b.table) }

// Contains reports residency without touching the LRU order.
func (b *LRU) Contains(key PageKey) bool {
	_, ok := b.table[key]
	return ok
}

// Touch promotes key to most-recently-used if resident and reports whether
// it was a hit.
func (b *LRU) Touch(key PageKey) bool {
	e, ok := b.table[key]
	if !ok {
		return false
	}
	b.moveToFront(e)
	return true
}

// Insert makes key resident as the most-recently-used page, evicting the
// least-recently-used unpinned page if the buffer is full. It returns the
// evicted key and whether an eviction happened. Inserting a resident key
// just promotes it. Insert panics if the buffer is full of pinned pages,
// since that means the caller leaked pins.
func (b *LRU) Insert(key PageKey) (evicted PageKey, didEvict bool) {
	if e, ok := b.table[key]; ok {
		b.moveToFront(e)
		return PageKey{}, false
	}
	if len(b.table) >= b.capacity {
		victim := b.tail
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil {
			panic("buffer: all pages pinned, cannot evict")
		}
		b.remove(victim)
		evicted, didEvict = victim.key, true
	}
	e := &lruEntry{key: key}
	b.pushFront(e)
	b.table[key] = e
	return evicted, didEvict
}

// Drop removes key from the buffer if resident (regardless of pins);
// used when an owning partition must invalidate a page.
func (b *LRU) Drop(key PageKey) bool {
	e, ok := b.table[key]
	if !ok {
		return false
	}
	b.remove(e)
	return true
}

// Pin marks a resident page non-evictable (counted; callers must unpin as
// many times as they pinned). It reports whether the page was resident.
func (b *LRU) Pin(key PageKey) bool {
	e, ok := b.table[key]
	if !ok {
		return false
	}
	e.pins++
	return true
}

// Unpin releases one pin. It panics if the page is not resident or not
// pinned, which indicates a caller bug.
func (b *LRU) Unpin(key PageKey) {
	e, ok := b.table[key]
	if !ok || e.pins == 0 {
		panic("buffer: Unpin of unpinned page " + key.String())
	}
	e.pins--
}

// Keys returns resident keys from most to least recently used (diagnostic,
// test support).
func (b *LRU) Keys() []PageKey {
	out := make([]PageKey, 0, len(b.table))
	for e := b.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

func (b *LRU) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
	if b.tail == nil {
		b.tail = e
	}
}

func (b *LRU) remove(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	delete(b.table, e.key)
}

func (b *LRU) moveToFront(e *lruEntry) {
	if b.head == e {
		return
	}
	b.remove(e)
	b.pushFront(e)
	b.table[e.key] = e
}
