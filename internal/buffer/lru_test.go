package buffer

import (
	"reflect"
	"testing"
	"testing/quick"

	"spjoin/internal/storage"
)

func key(tree TreeID, page int) PageKey {
	return PageKey{Tree: tree, Page: storage.PageID(page)}
}

func TestLRUBasicEviction(t *testing.T) {
	b := NewLRU(3)
	for i := 0; i < 3; i++ {
		if _, evict := b.Insert(key(0, i)); evict {
			t.Fatalf("unexpected eviction inserting %d", i)
		}
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	evicted, didEvict := b.Insert(key(0, 3))
	if !didEvict || evicted != key(0, 0) {
		t.Fatalf("evicted %v/%v, want t0/p0", evicted, didEvict)
	}
	if b.Contains(key(0, 0)) {
		t.Fatal("evicted page still resident")
	}
}

func TestLRUTouchPromotes(t *testing.T) {
	b := NewLRU(3)
	b.Insert(key(0, 0))
	b.Insert(key(0, 1))
	b.Insert(key(0, 2))
	if !b.Touch(key(0, 0)) {
		t.Fatal("Touch of resident page returned miss")
	}
	// Now 1 is least recently used.
	evicted, _ := b.Insert(key(0, 3))
	if evicted != key(0, 1) {
		t.Fatalf("evicted %v, want t0/p1", evicted)
	}
}

func TestLRUTouchMiss(t *testing.T) {
	b := NewLRU(2)
	if b.Touch(key(0, 9)) {
		t.Fatal("Touch of absent page returned hit")
	}
}

func TestLRUInsertExistingPromotes(t *testing.T) {
	b := NewLRU(2)
	b.Insert(key(0, 0))
	b.Insert(key(0, 1))
	if _, didEvict := b.Insert(key(0, 0)); didEvict {
		t.Fatal("re-insert evicted")
	}
	evicted, _ := b.Insert(key(0, 2))
	if evicted != key(0, 1) {
		t.Fatalf("evicted %v, want t0/p1 after promote", evicted)
	}
}

func TestLRUKeysOrder(t *testing.T) {
	b := NewLRU(3)
	b.Insert(key(0, 0))
	b.Insert(key(0, 1))
	b.Insert(key(0, 2))
	b.Touch(key(0, 0))
	want := []PageKey{key(0, 0), key(0, 2), key(0, 1)}
	if got := b.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestLRUDistinctTreesDistinctKeys(t *testing.T) {
	b := NewLRU(4)
	b.Insert(key(0, 7))
	b.Insert(key(1, 7))
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (same page number, different trees)", b.Len())
	}
}

func TestLRUPinPreventsEviction(t *testing.T) {
	b := NewLRU(2)
	b.Insert(key(0, 0))
	b.Insert(key(0, 1))
	if !b.Pin(key(0, 1)) {
		t.Fatal("Pin of resident page failed")
	}
	// p1 would be LRU victim after touching p0... set order: promote 1? No:
	// current order MRU=1, LRU=0; pin 1, insert 2 evicts 0 normally. Make 1
	// the LRU by touching 0.
	b.Touch(key(0, 0))
	evicted, didEvict := b.Insert(key(0, 2))
	if !didEvict || evicted != key(0, 0) {
		t.Fatalf("evicted %v/%v, want unpinned t0/p0", evicted, didEvict)
	}
	if !b.Contains(key(0, 1)) {
		t.Fatal("pinned page was evicted")
	}
	b.Unpin(key(0, 1))
}

func TestLRUAllPinnedPanics(t *testing.T) {
	b := NewLRU(1)
	b.Insert(key(0, 0))
	b.Pin(key(0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when evicting from fully pinned buffer")
		}
	}()
	b.Insert(key(0, 1))
}

func TestLRUUnpinUnpinnedPanics(t *testing.T) {
	b := NewLRU(1)
	b.Insert(key(0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on spurious Unpin")
		}
	}()
	b.Unpin(key(0, 0))
}

func TestLRUPinAbsent(t *testing.T) {
	b := NewLRU(1)
	if b.Pin(key(0, 5)) {
		t.Fatal("Pin of absent page returned true")
	}
}

func TestLRUDrop(t *testing.T) {
	b := NewLRU(2)
	b.Insert(key(0, 0))
	if !b.Drop(key(0, 0)) {
		t.Fatal("Drop of resident page failed")
	}
	if b.Contains(key(0, 0)) || b.Len() != 0 {
		t.Fatal("page still resident after Drop")
	}
	if b.Drop(key(0, 0)) {
		t.Fatal("Drop of absent page returned true")
	}
}

func TestLRUCapacityOnePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLRU(0) did not panic")
		}
	}()
	NewLRU(0)
}

func TestLRUNeverExceedsCapacity(t *testing.T) {
	f := func(pages []uint8) bool {
		b := NewLRU(8)
		for _, p := range pages {
			b.Insert(key(0, int(p)))
			if b.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLRUKeysMatchTable(t *testing.T) {
	f := func(pages []uint8) bool {
		b := NewLRU(4)
		for _, p := range pages {
			b.Insert(key(0, int(p)%16))
		}
		keys := b.Keys()
		if len(keys) != b.Len() {
			return false
		}
		seen := map[PageKey]bool{}
		for _, k := range keys {
			if seen[k] || !b.Contains(k) {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
