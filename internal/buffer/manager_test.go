package buffer

import (
	"testing"

	"spjoin/internal/sim"
	"spjoin/internal/storage"
)

func newDisk(d int) *storage.DiskArray {
	return storage.NewDiskArray(d, storage.DefaultDiskParams())
}

func TestLocalBuffersMissThenHit(t *testing.T) {
	k := sim.NewKernel()
	disk := newDisk(4)
	mgr := NewLocalBuffers(2, 4, disk, DefaultCostParams())
	var classes []Class
	k.Spawn("p0", func(p *sim.Proc) {
		classes = append(classes, mgr.Fetch(p, 0, key(0, 1), storage.DirectoryPage))
		classes = append(classes, mgr.Fetch(p, 0, key(0, 1), storage.DirectoryPage))
	})
	k.Run()
	if classes[0] != Miss || classes[1] != LocalHit {
		t.Fatalf("classes = %v, want [miss local-hit]", classes)
	}
	if disk.Accesses() != 1 {
		t.Fatalf("disk accesses = %d, want 1", disk.Accesses())
	}
	s := mgr.Stats()
	if s.LocalHits != 1 || s.Misses != 1 || s.RemoteHits != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", s.HitRate())
	}
}

func TestLocalBuffersIndependence(t *testing.T) {
	// The §3.1 pathology: both processors read the same page from disk
	// because they cannot see each other's buffers.
	k := sim.NewKernel()
	disk := newDisk(4)
	mgr := NewLocalBuffers(2, 4, disk, DefaultCostParams())
	k.Spawn("p0", func(p *sim.Proc) {
		mgr.Fetch(p, 0, key(0, 1), storage.DirectoryPage)
	})
	k.Spawn("p1", func(p *sim.Proc) {
		p.Hold(100) // well after p0 finished its read
		mgr.Fetch(p, 1, key(0, 1), storage.DirectoryPage)
	})
	k.Run()
	if disk.Accesses() != 2 {
		t.Fatalf("disk accesses = %d, want 2 (independent local buffers)", disk.Accesses())
	}
	if !mgr.Resident(0, key(0, 1)) || !mgr.Resident(1, key(0, 1)) {
		t.Fatal("page should be resident in both local buffers")
	}
}

func TestGlobalBufferRemoteHit(t *testing.T) {
	k := sim.NewKernel()
	disk := newDisk(4)
	mgr := NewGlobalBuffer(2, 4, disk, DefaultCostParams())
	var p1Class Class
	k.Spawn("p0", func(p *sim.Proc) {
		mgr.Fetch(p, 0, key(0, 1), storage.DirectoryPage)
	})
	k.Spawn("p1", func(p *sim.Proc) {
		p.Hold(100)
		p1Class = mgr.Fetch(p, 1, key(0, 1), storage.DirectoryPage)
	})
	k.Run()
	if p1Class != RemoteHit {
		t.Fatalf("p1 class = %v, want remote-hit", p1Class)
	}
	if disk.Accesses() != 1 {
		t.Fatalf("disk accesses = %d, want 1 (page resident once)", disk.Accesses())
	}
	if mgr.Owner(key(0, 1)) != 0 {
		t.Fatalf("owner = %d, want 0", mgr.Owner(key(0, 1)))
	}
}

func TestGlobalBufferCoalescesConcurrentMisses(t *testing.T) {
	// Two processors request the same absent page at the same virtual time:
	// only one disk read must happen; the second waits and takes a hit.
	k := sim.NewKernel()
	disk := newDisk(4)
	mgr := NewGlobalBuffer(2, 4, disk, DefaultCostParams())
	var classes [2]Class
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("p", func(p *sim.Proc) {
			classes[i] = mgr.Fetch(p, i, key(0, 1), storage.DirectoryPage)
		})
	}
	k.Run()
	if disk.Accesses() != 1 {
		t.Fatalf("disk accesses = %d, want 1 (coalesced)", disk.Accesses())
	}
	if classes[0] != Miss {
		t.Fatalf("first requester class = %v, want miss", classes[0])
	}
	if classes[1] != RemoteHit {
		t.Fatalf("second requester class = %v, want remote-hit", classes[1])
	}
}

func TestGlobalBufferPageAtMostOnce(t *testing.T) {
	// Even with many processors touching the same pages, each page is
	// resident exactly once.
	k := sim.NewKernel()
	disk := newDisk(4)
	mgr := NewGlobalBuffer(4, 8, disk, DefaultCostParams())
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("p", func(p *sim.Proc) {
			for page := 0; page < 8; page++ {
				mgr.Fetch(p, i, key(0, page), storage.DirectoryPage)
				p.Hold(1)
			}
		})
	}
	k.Run()
	if got := mgr.ResidentPages(); got != 8 {
		t.Fatalf("resident pages = %d, want 8", got)
	}
	if disk.Accesses() != 8 {
		t.Fatalf("disk accesses = %d, want 8", disk.Accesses())
	}
}

func TestGlobalBufferEvictionUpdatesDirectory(t *testing.T) {
	k := sim.NewKernel()
	disk := newDisk(4)
	mgr := NewGlobalBuffer(1, 2, disk, DefaultCostParams())
	k.Spawn("p0", func(p *sim.Proc) {
		mgr.Fetch(p, 0, key(0, 0), storage.DirectoryPage)
		mgr.Fetch(p, 0, key(0, 1), storage.DirectoryPage)
		mgr.Fetch(p, 0, key(0, 2), storage.DirectoryPage) // evicts page 0
		if mgr.Owner(key(0, 0)) != -1 {
			t.Error("evicted page still in directory")
		}
		// Re-fetch must be a miss again.
		if c := mgr.Fetch(p, 0, key(0, 0), storage.DirectoryPage); c != Miss {
			t.Errorf("refetch class = %v, want miss", c)
		}
	})
	k.Run()
	if disk.Accesses() != 4 {
		t.Fatalf("disk accesses = %d, want 4", disk.Accesses())
	}
}

func TestGlobalBufferLocalVsRemoteCost(t *testing.T) {
	costs := DefaultCostParams()
	k := sim.NewKernel()
	disk := newDisk(4)
	mgr := NewGlobalBuffer(2, 4, disk, costs)
	var localTime, remoteTime sim.Time
	k.Spawn("p0", func(p *sim.Proc) {
		mgr.Fetch(p, 0, key(0, 1), storage.DirectoryPage)
		start := p.Now()
		mgr.Fetch(p, 0, key(0, 1), storage.DirectoryPage)
		localTime = p.Now() - start
	})
	k.Spawn("p1", func(p *sim.Proc) {
		p.Hold(200)
		start := p.Now()
		mgr.Fetch(p, 1, key(0, 1), storage.DirectoryPage)
		remoteTime = p.Now() - start
	})
	k.Run()
	approx := func(got, want sim.Time) bool {
		d := float64(got - want)
		return d < 1e-9 && d > -1e-9
	}
	if !approx(localTime, costs.Lock+costs.LocalHit) {
		t.Errorf("local hit time = %v, want %v", localTime, costs.Lock+costs.LocalHit)
	}
	if !approx(remoteTime, costs.Lock+costs.RemoteHit) {
		t.Errorf("remote hit time = %v, want %v", remoteTime, costs.Lock+costs.RemoteHit)
	}
}

func TestGlobalLessDiskThanLocalOnSharedWorkload(t *testing.T) {
	// The paper's core buffer claim: when processors share pages, the
	// global buffer performs fewer disk accesses than local buffers.
	run := func(global bool) int64 {
		k := sim.NewKernel()
		disk := newDisk(4)
		var mgr Manager
		if global {
			mgr = NewGlobalBuffer(4, 16, disk, DefaultCostParams())
		} else {
			mgr = NewLocalBuffers(4, 16, disk, DefaultCostParams())
		}
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn("p", func(p *sim.Proc) {
				for page := 0; page < 12; page++ {
					mgr.Fetch(p, i, key(0, page), storage.DirectoryPage)
					p.Hold(0.5)
				}
			})
		}
		k.Run()
		return disk.Accesses()
	}
	local, global := run(false), run(true)
	if global >= local {
		t.Fatalf("global buffer accesses %d >= local %d", global, local)
	}
	if global != 12 {
		t.Fatalf("global accesses = %d, want 12 (each page once)", global)
	}
}

func TestManagersRejectZeroProcs(t *testing.T) {
	for _, mk := range []func(){
		func() { NewLocalBuffers(0, 1, newDisk(1), DefaultCostParams()) },
		func() { NewGlobalBuffer(0, 1, newDisk(1), DefaultCostParams()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for 0 processors")
				}
			}()
			mk()
		}()
	}
}

func TestClassString(t *testing.T) {
	if LocalHit.String() != "local-hit" || RemoteHit.String() != "remote-hit" || Miss.String() != "miss" {
		t.Fatal("Class.String broken")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class must format")
	}
}

func TestStatsAccessesEmpty(t *testing.T) {
	var s Stats
	if s.Accesses() != 0 || s.HitRate() != 0 {
		t.Fatal("zero stats must report zero")
	}
}
