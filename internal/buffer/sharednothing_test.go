package buffer

import (
	"testing"

	"spjoin/internal/sim"
	"spjoin/internal/storage"
)

func TestSharedNothingHome(t *testing.T) {
	disk := newDisk(4)
	s := NewSharedNothing(4, 8, disk, DefaultCostParams(), DefaultShipCost)
	// 4 disks, 4 procs: page p -> disk p%4 -> home p%4.
	for p := 0; p < 16; p++ {
		if got := s.Home(key(0, p)); got != p%4 {
			t.Fatalf("Home(page %d) = %d, want %d", p, got, p%4)
		}
	}
}

func TestSharedNothingOwnDiskMiss(t *testing.T) {
	k := sim.NewKernel()
	disk := newDisk(2)
	s := NewSharedNothing(2, 4, disk, DefaultCostParams(), DefaultShipCost)
	var c Class
	k.Spawn("p0", func(p *sim.Proc) {
		c = s.Fetch(p, 0, key(0, 0), storage.DirectoryPage) // home(0) = 0
	})
	end := k.Run()
	if c != Miss {
		t.Fatalf("class = %v, want miss", c)
	}
	if end != 16 {
		t.Fatalf("own-disk read took %v, want 16 (no shipping)", end)
	}
	if !s.Resident(0, key(0, 0)) {
		t.Fatal("page not cached at home")
	}
}

func TestSharedNothingRemoteColdRead(t *testing.T) {
	k := sim.NewKernel()
	disk := newDisk(2)
	s := NewSharedNothing(2, 4, disk, DefaultCostParams(), DefaultShipCost)
	var c Class
	k.Spawn("p0", func(p *sim.Proc) {
		c = s.Fetch(p, 0, key(0, 1), storage.DirectoryPage) // home(1) = 1
	})
	end := k.Run()
	if c != Miss {
		t.Fatalf("class = %v, want miss", c)
	}
	if end != 16+DefaultShipCost {
		t.Fatalf("remote cold read took %v, want 17.5 (disk + ship)", end)
	}
	// Both home and requester hold copies afterwards.
	if !s.Resident(0, key(0, 1)) || !s.Resident(1, key(0, 1)) {
		t.Fatal("copies missing after shipped read")
	}
}

func TestSharedNothingShippedHit(t *testing.T) {
	k := sim.NewKernel()
	disk := newDisk(2)
	s := NewSharedNothing(2, 4, disk, DefaultCostParams(), DefaultShipCost)
	var c Class
	k.Spawn("p1", func(p *sim.Proc) {
		s.Fetch(p, 1, key(0, 1), storage.DirectoryPage) // home read, cached at 1
	})
	k.Spawn("p0", func(p *sim.Proc) {
		p.Hold(100)
		c = s.Fetch(p, 0, key(0, 1), storage.DirectoryPage)
	})
	k.Run()
	if c != RemoteHit {
		t.Fatalf("class = %v, want remote-hit (shipped from home's buffer)", c)
	}
	if disk.Accesses() != 1 {
		t.Fatalf("disk accesses = %d, want 1", disk.Accesses())
	}
}

func TestSharedNothingReplication(t *testing.T) {
	// Unlike the global buffer, shipped copies replicate: after both procs
	// touch the page, both cache it, and re-reads are local everywhere.
	k := sim.NewKernel()
	disk := newDisk(2)
	s := NewSharedNothing(2, 4, disk, DefaultCostParams(), DefaultShipCost)
	var reread [2]Class
	k.Spawn("p1", func(p *sim.Proc) {
		s.Fetch(p, 1, key(0, 1), storage.DirectoryPage)
		p.Hold(50)
		reread[1] = s.Fetch(p, 1, key(0, 1), storage.DirectoryPage)
	})
	k.Spawn("p0", func(p *sim.Proc) {
		p.Hold(20)
		s.Fetch(p, 0, key(0, 1), storage.DirectoryPage)
		p.Hold(50)
		reread[0] = s.Fetch(p, 0, key(0, 1), storage.DirectoryPage)
	})
	k.Run()
	if reread[0] != LocalHit || reread[1] != LocalHit {
		t.Fatalf("rereads = %v, want both local", reread)
	}
}

func TestSharedNothingRejectsZeroProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 processors")
		}
	}()
	NewSharedNothing(0, 1, newDisk(1), DefaultCostParams(), DefaultShipCost)
}

func TestSharedNothingHomeEvictionForcesReread(t *testing.T) {
	// Tiny home buffer: once the home evicts the page, a third processor
	// must trigger a fresh disk read (the home re-reads and ships).
	k := sim.NewKernel()
	disk := newDisk(3)
	s := NewSharedNothing(3, 1, disk, DefaultCostParams(), DefaultShipCost)
	k.Spawn("p1", func(p *sim.Proc) {
		// Home of page 1 is processor 1.
		s.Fetch(p, 1, key(0, 1), storage.DirectoryPage) // read + cache
		s.Fetch(p, 1, key(0, 4), storage.DirectoryPage) // evicts page 1 (capacity 1)
	})
	k.Spawn("p0", func(p *sim.Proc) {
		p.Hold(200)
		c := s.Fetch(p, 0, key(0, 1), storage.DirectoryPage)
		if c != Miss {
			t.Errorf("after home eviction, class = %v, want miss", c)
		}
	})
	k.Run()
	if disk.Accesses() != 3 {
		t.Fatalf("disk accesses = %d, want 3 (two home reads + re-read)", disk.Accesses())
	}
}
