package buffer

import (
	"fmt"

	"spjoin/internal/sim"
	"spjoin/internal/storage"
	"spjoin/internal/timeline"
)

// Class categorizes one page access by where it was satisfied.
type Class uint8

const (
	// LocalHit means the page was resident in the requesting processor's
	// own buffer (or partition of the global buffer).
	LocalHit Class = iota
	// RemoteHit means the page was resident in another processor's
	// partition of the global buffer and was read over the interconnect.
	RemoteHit
	// Miss means the page had to be read from disk.
	Miss
)

func (c Class) String() string {
	switch c {
	case LocalHit:
		return "local-hit"
	case RemoteHit:
		return "remote-hit"
	case Miss:
		return "miss"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// CostParams are the virtual-time costs of buffer accesses, derived from the
// paper's Table 2: accessing the own buffer is about 10 times faster than
// accessing the main memory of another processor. The Lock cost models the
// synchronization needed by the shared page directory of the global buffer.
type CostParams struct {
	LocalHit  sim.Time // read a page from the own buffer
	RemoteHit sim.Time // read a page from another processor's memory
	Lock      sim.Time // one acquire/release of the directory lock
}

// DefaultCostParams returns the costs used by the experiments: 0.1 ms for a
// local page (4 KB at 40 MB/s), 1.0 ms for a remote page (the paper's
// "factor of about 10"), 0.02 ms per directory lock operation.
func DefaultCostParams() CostParams {
	return CostParams{LocalHit: 0.1, RemoteHit: 1.0, Lock: 0.02}
}

// Stats counts accesses by class.
type Stats struct {
	LocalHits  int64
	RemoteHits int64
	Misses     int64
}

// Accesses returns the total number of page requests.
func (s Stats) Accesses() int64 { return s.LocalHits + s.RemoteHits + s.Misses }

// HitRate returns the fraction of requests served without disk I/O.
func (s Stats) HitRate() float64 {
	total := s.Accesses()
	if total == 0 {
		return 0
	}
	return float64(s.LocalHits+s.RemoteHits) / float64(total)
}

// Manager is a buffer organization: it satisfies page requests from
// simulated processors, charging virtual time for buffer, interconnect and
// disk work.
type Manager interface {
	// Fetch makes the page usable by processor proc (0-based processor
	// index) and returns how the request was satisfied.
	Fetch(p *sim.Proc, proc int, key PageKey, kind storage.PageKind) Class
	// Stats returns the access counters so far.
	Stats() Stats
	// Instrument attaches optional observability (nil detaches). It must
	// not change the manager's timing or replacement behavior.
	Instrument(m *Metrics)
}

// LocalBuffers is the organization of §3.1: every processor has a private
// LRU buffer and no knowledge of its peers' buffers, so the same page may be
// resident (and read from disk) many times.
type LocalBuffers struct {
	disk  *storage.DiskArray
	costs CostParams
	bufs  []*LRU
	stats Stats
	met   *Metrics
}

// NewLocalBuffers creates n private buffers of perProcCapacity pages each.
func NewLocalBuffers(n, perProcCapacity int, disk *storage.DiskArray, costs CostParams) *LocalBuffers {
	if n < 1 {
		panic("buffer: need at least one processor")
	}
	l := &LocalBuffers{disk: disk, costs: costs, bufs: make([]*LRU, n)}
	for i := range l.bufs {
		l.bufs[i] = NewLRU(perProcCapacity)
	}
	return l
}

// Fetch implements Manager.
func (l *LocalBuffers) Fetch(p *sim.Proc, proc int, key PageKey, kind storage.PageKind) Class {
	buf := l.bufs[proc]
	if buf.Touch(key) {
		l.stats.LocalHits++
		l.met.access(LocalHit, p, proc, key)
		p.BeginSpan(timeline.KindLocalBuffer, sim.SpanArgs{A: int64(key.Page), B: int64(key.Tree)})
		p.Hold(l.costs.LocalHit)
		p.EndSpan()
		return LocalHit
	}
	l.stats.Misses++
	l.met.access(Miss, p, proc, key)
	l.disk.Read(p, key.Page, kind)
	if evicted, didEvict := buf.Insert(key); didEvict {
		l.met.evict(p, proc, evicted)
	}
	return Miss
}

// Stats implements Manager.
func (l *LocalBuffers) Stats() Stats { return l.stats }

// Instrument implements Manager.
func (l *LocalBuffers) Instrument(m *Metrics) { l.met = m }

// Resident reports whether proc's buffer holds key (test support).
func (l *LocalBuffers) Resident(proc int, key PageKey) bool {
	return l.bufs[proc].Contains(key)
}

// GlobalBuffer is the organization of §3.2: the union of the per-processor
// buffers forms one logical buffer. A shared directory maps each resident
// page to the processor whose memory holds it, so a page is resident at most
// once. Reading a page from another processor's memory costs the remote
// access time; the directory itself costs a lock per operation. Concurrent
// misses on the same page coalesce: the second requester waits for the
// in-flight disk read instead of issuing its own.
type GlobalBuffer struct {
	disk    *storage.DiskArray
	costs   CostParams
	parts   []*LRU          // partition per processor
	dir     map[PageKey]int // resident page -> owning processor
	pending map[PageKey]*sim.Cond
	stats   Stats
	met     *Metrics
}

// NewGlobalBuffer creates a global buffer over n partitions of
// perProcCapacity pages each (total capacity n*perProcCapacity).
func NewGlobalBuffer(n, perProcCapacity int, disk *storage.DiskArray, costs CostParams) *GlobalBuffer {
	if n < 1 {
		panic("buffer: need at least one processor")
	}
	g := &GlobalBuffer{
		disk:    disk,
		costs:   costs,
		parts:   make([]*LRU, n),
		dir:     make(map[PageKey]int),
		pending: make(map[PageKey]*sim.Cond),
	}
	for i := range g.parts {
		g.parts[i] = NewLRU(perProcCapacity)
	}
	return g
}

// Fetch implements Manager.
func (g *GlobalBuffer) Fetch(p *sim.Proc, proc int, key PageKey, kind storage.PageKind) Class {
	for {
		start := p.Now()
		p.Hold(g.costs.Lock) // directory lookup under lock
		if owner, ok := g.dir[key]; ok {
			g.parts[owner].Touch(key)
			if owner == proc {
				g.stats.LocalHits++
				g.met.access(LocalHit, p, proc, key)
				p.Hold(g.costs.LocalHit)
				p.Span(start, timeline.KindLocalBuffer, sim.SpanArgs{A: int64(key.Page), B: int64(key.Tree)})
				return LocalHit
			}
			g.stats.RemoteHits++
			g.met.access(RemoteHit, p, proc, key)
			p.Hold(g.costs.RemoteHit)
			p.Span(start, timeline.KindRemoteBuffer, sim.SpanArgs{A: int64(key.Page), B: int64(key.Tree), C: int64(owner)})
			return RemoteHit
		}
		if cond, ok := g.pending[key]; ok {
			// Another processor is reading this page right now; wait for it
			// and re-check (the page will normally be resident then).
			cond.Wait(p)
			// No disk of our own: the wait was for the in-flight read.
			isData := int64(0)
			if kind == storage.DataPage {
				isData = 1
			}
			p.Span(start, timeline.KindDiskWait, sim.SpanArgs{A: int64(key.Page), B: isData, C: -1})
			continue
		}
		// We are the reader of record for this page.
		cond := &sim.Cond{}
		g.pending[key] = cond
		g.stats.Misses++
		g.met.access(Miss, p, proc, key)
		// The lock sliver before the read shows up as a (tiny) buffer span;
		// the read itself is tagged by the storage layer.
		p.Span(start, timeline.KindLocalBuffer, sim.SpanArgs{A: int64(key.Page), B: int64(key.Tree)})
		g.disk.Read(p, key.Page, kind)
		if evicted, didEvict := g.insertAsOwner(proc, key); didEvict {
			g.met.evict(p, proc, evicted)
		}
		delete(g.pending, key)
		cond.Broadcast()
		return Miss
	}
}

// insertAsOwner places key in proc's partition, maintaining the directory.
func (g *GlobalBuffer) insertAsOwner(proc int, key PageKey) (PageKey, bool) {
	evicted, didEvict := g.parts[proc].Insert(key)
	if didEvict {
		delete(g.dir, evicted)
	}
	g.dir[key] = proc
	return evicted, didEvict
}

// Stats implements Manager.
func (g *GlobalBuffer) Stats() Stats { return g.stats }

// Instrument implements Manager.
func (g *GlobalBuffer) Instrument(m *Metrics) { g.met = m }

// Owner returns which processor's memory holds key, or -1 (test support).
func (g *GlobalBuffer) Owner(key PageKey) int {
	if owner, ok := g.dir[key]; ok {
		return owner
	}
	return -1
}

// ResidentPages returns the total number of resident pages across all
// partitions.
func (g *GlobalBuffer) ResidentPages() int { return len(g.dir) }
