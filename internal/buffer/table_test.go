package buffer

// Table-driven traces against hand-computed expectations: LRU eviction
// order, pin/unpin edge cases, and the local-vs-global hit accounting of
// §3.2 — each trace is small enough to verify on paper, and each case
// cross-checks the new metrics counters against the managers' own Stats.

import (
	"testing"

	"spjoin/internal/metrics"
	"spjoin/internal/sim"
	"spjoin/internal/storage"
)

// lruOp is one step of an LRU trace.
type lruOp struct {
	op        string // "insert", "touch", "pin", "unpin", "drop"
	page      int
	wantEvict int  // page expected to be evicted by an insert; -1 for none
	wantOK    bool // expected return of touch/drop/pin
}

func ins(page, wantEvict int) lruOp { return lruOp{op: "insert", page: page, wantEvict: wantEvict} }

func TestLRUTraceTable(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		ops      []lruOp
		wantKeys []int // expected MRU→LRU order after the trace
	}{
		{
			name:     "fill then evict in FIFO order without touches",
			capacity: 3,
			ops:      []lruOp{ins(1, -1), ins(2, -1), ins(3, -1), ins(4, 1), ins(5, 2)},
			wantKeys: []int{5, 4, 3},
		},
		{
			name:     "touch promotes and changes the victim",
			capacity: 3,
			ops: []lruOp{
				ins(1, -1), ins(2, -1), ins(3, -1),
				{op: "touch", page: 1, wantOK: true},
				ins(4, 2), // 2 is now LRU, not 1
			},
			wantKeys: []int{4, 1, 3},
		},
		{
			name:     "reinserting a resident page only promotes it",
			capacity: 2,
			ops:      []lruOp{ins(1, -1), ins(2, -1), ins(1, -1), ins(3, 2)},
			wantKeys: []int{3, 1},
		},
		{
			name:     "touch of absent page is a clean miss",
			capacity: 2,
			ops: []lruOp{
				ins(1, -1),
				{op: "touch", page: 9, wantOK: false},
				ins(2, -1), ins(3, 1),
			},
			wantKeys: []int{3, 2},
		},
		{
			name:     "pinned page survives eviction pressure",
			capacity: 3,
			ops: []lruOp{
				ins(1, -1), ins(2, -1), ins(3, -1),
				{op: "pin", page: 1, wantOK: true},
				ins(4, 2), // 1 is LRU but pinned: 2 goes instead
				ins(5, 3),
				{op: "unpin", page: 1},
				ins(6, 1), // unpinned again: now 1 is evictable
			},
			wantKeys: []int{6, 5, 4},
		},
		{
			name:     "drop frees a slot regardless of position",
			capacity: 2,
			ops: []lruOp{
				ins(1, -1), ins(2, -1),
				{op: "drop", page: 2, wantOK: true},
				{op: "drop", page: 9, wantOK: false},
				ins(3, -1), // no eviction: drop made room
			},
			wantKeys: []int{3, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewLRU(tc.capacity)
			for i, op := range tc.ops {
				switch op.op {
				case "insert":
					evicted, didEvict := b.Insert(key(0, op.page))
					if op.wantEvict < 0 && didEvict {
						t.Fatalf("op %d: insert %d evicted %v, want none", i, op.page, evicted)
					}
					if op.wantEvict >= 0 && (!didEvict || evicted != key(0, op.wantEvict)) {
						t.Fatalf("op %d: insert %d evicted %v/%v, want page %d",
							i, op.page, evicted, didEvict, op.wantEvict)
					}
				case "touch":
					if got := b.Touch(key(0, op.page)); got != op.wantOK {
						t.Fatalf("op %d: touch %d = %v, want %v", i, op.page, got, op.wantOK)
					}
				case "pin":
					if got := b.Pin(key(0, op.page)); got != op.wantOK {
						t.Fatalf("op %d: pin %d = %v, want %v", i, op.page, got, op.wantOK)
					}
				case "unpin":
					b.Unpin(key(0, op.page))
				case "drop":
					if got := b.Drop(key(0, op.page)); got != op.wantOK {
						t.Fatalf("op %d: drop %d = %v, want %v", i, op.page, got, op.wantOK)
					}
				}
			}
			keys := b.Keys()
			if len(keys) != len(tc.wantKeys) {
				t.Fatalf("final keys %v, want pages %v", keys, tc.wantKeys)
			}
			for i, want := range tc.wantKeys {
				if keys[i] != key(0, want) {
					t.Fatalf("final keys %v, want pages %v", keys, tc.wantKeys)
				}
			}
			if b.Len() != len(tc.wantKeys) {
				t.Fatalf("Len() = %d, want %d", b.Len(), len(tc.wantKeys))
			}
		})
	}
}

func TestLRUPinEdgeCases(t *testing.T) {
	t.Run("pin of absent page reports false", func(t *testing.T) {
		b := NewLRU(2)
		if b.Pin(key(0, 1)) {
			t.Fatal("pin of absent page succeeded")
		}
	})
	t.Run("unpin of unpinned page panics", func(t *testing.T) {
		b := NewLRU(2)
		b.Insert(key(0, 1))
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		b.Unpin(key(0, 1))
	})
	t.Run("unpin of absent page panics", func(t *testing.T) {
		b := NewLRU(2)
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		b.Unpin(key(0, 7))
	})
	t.Run("pins are counted, not boolean", func(t *testing.T) {
		b := NewLRU(2)
		b.Insert(key(0, 1))
		b.Pin(key(0, 1))
		b.Pin(key(0, 1))
		b.Unpin(key(0, 1))
		// Still pinned once: filling the buffer must evict page 2, not 1.
		b.Insert(key(0, 2))
		if evicted, didEvict := b.Insert(key(0, 3)); !didEvict || evicted != key(0, 2) {
			t.Fatalf("evicted %v/%v, want page 2 (page 1 still pinned)", evicted, didEvict)
		}
		b.Unpin(key(0, 1))
		if evicted, didEvict := b.Insert(key(0, 4)); !didEvict || evicted != key(0, 1) {
			t.Fatalf("evicted %v/%v, want page 1 after final unpin", evicted, didEvict)
		}
	})
	t.Run("insert into fully pinned buffer panics", func(t *testing.T) {
		b := NewLRU(2)
		b.Insert(key(0, 1))
		b.Insert(key(0, 2))
		b.Pin(key(0, 1))
		b.Pin(key(0, 2))
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		b.Insert(key(0, 3))
	})
}

// fetchStep is one page request of an accounting trace: processor proc
// requests page at a strictly later virtual time than every prior step
// (sequenced by per-step delays, so classification is deterministic).
type fetchStep struct {
	proc int
	page int
	want Class
}

// TestHitAccountingTable replays the same single-tree fetch trace against
// both buffer organizations and checks every step's classification, the
// final Stats, the eviction count, and that the metrics counters agree
// with all of them. Expectations are hand-computed LRU traces.
func TestHitAccountingTable(t *testing.T) {
	cases := []struct {
		name        string
		procs       int
		perProcCap  int
		steps       []fetchStep
		wantLocal   Stats // expected LocalBuffers stats
		wantGlobal  Stats // expected GlobalBuffer stats
		evictLocal  int64 // expected evictions, LocalBuffers
		evictGlobal int64 // expected evictions, GlobalBuffer
	}{
		{
			name:  "shared page: local buffers read twice, global once",
			procs: 2, perProcCap: 2,
			steps: []fetchStep{
				{proc: 0, page: 1, want: Miss},
				{proc: 1, page: 1, want: Miss}, // global: RemoteHit
				{proc: 0, page: 1, want: LocalHit},
				{proc: 1, page: 1, want: LocalHit}, // global: RemoteHit (owner 0)
			},
			wantLocal:  Stats{LocalHits: 2, Misses: 2},
			wantGlobal: Stats{LocalHits: 1, RemoteHits: 2, Misses: 1},
		},
		{
			name:  "eviction churn in one processor",
			procs: 1, perProcCap: 2,
			steps: []fetchStep{
				{proc: 0, page: 1, want: Miss},
				{proc: 0, page: 2, want: Miss},
				{proc: 0, page: 3, want: Miss}, // evicts 1
				{proc: 0, page: 1, want: Miss}, // evicts 2
				{proc: 0, page: 3, want: LocalHit},
			},
			wantLocal:   Stats{LocalHits: 1, Misses: 4},
			wantGlobal:  Stats{LocalHits: 1, Misses: 4},
			evictLocal:  2,
			evictGlobal: 2,
		},
		{
			name:  "global buffer aggregates capacity across partitions",
			procs: 2, perProcCap: 1,
			steps: []fetchStep{
				{proc: 0, page: 1, want: Miss},
				{proc: 1, page: 2, want: Miss},
				// Local: proc 0 re-reads page 2 from disk, evicting page 1
				// from its one-page buffer — and then re-reads 1, evicting 2.
				// Global: page 2 lives in proc 1's partition (remote hit, no
				// copy), so page 1 stays resident and step 4 is a local hit.
				{proc: 0, page: 2, want: Miss}, // global: RemoteHit
				{proc: 0, page: 1, want: Miss}, // global: LocalHit
				{proc: 1, page: 2, want: LocalHit},
			},
			wantLocal:   Stats{LocalHits: 1, Misses: 4},
			wantGlobal:  Stats{LocalHits: 2, RemoteHits: 1, Misses: 2},
			evictLocal:  2, // proc 0: page 1 evicted by 2, then 2 by 1
			evictGlobal: 0, // remote hits never copy, nothing overflows
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, global := range []bool{false, true} {
				name := "local"
				if global {
					name = "global"
				}
				k := sim.NewKernel()
				disk := storage.NewDiskArray(2, storage.DefaultDiskParams())
				var mgr Manager
				if global {
					mgr = NewGlobalBuffer(tc.procs, tc.perProcCap, disk, DefaultCostParams())
				} else {
					mgr = NewLocalBuffers(tc.procs, tc.perProcCap, disk, DefaultCostParams())
				}
				reg := metrics.NewRegistry()
				sink := metrics.NewCountingSink(false)
				mgr.Instrument(NewMetrics(reg, "buf", sink))

				got := make([]Class, len(tc.steps))
				// One proc drives the whole trace sequentially in virtual
				// time so the steps are strictly ordered.
				k.Spawn("driver", func(p *sim.Proc) {
					for i, st := range tc.steps {
						got[i] = mgr.Fetch(p, st.proc, key(0, st.page), storage.DirectoryPage)
						p.Hold(50)
					}
				})
				k.Run()

				want := tc.wantLocal
				wantEvict := tc.evictLocal
				if global {
					want = tc.wantGlobal
					wantEvict = tc.evictGlobal
				}
				stats := mgr.Stats()
				if stats != want {
					t.Fatalf("%s: stats %+v, want %+v (classes %v)", name, stats, want, got)
				}
				if !global {
					for i, st := range tc.steps {
						if got[i] != st.want {
							t.Fatalf("local: step %d (proc %d page %d) = %v, want %v",
								i, st.proc, st.page, got[i], st.want)
						}
					}
				}

				snap := reg.Snapshot()
				if snap.Counters["buf.local_hits"] != stats.LocalHits ||
					snap.Counters["buf.remote_hits"] != stats.RemoteHits ||
					snap.Counters["buf.misses"] != stats.Misses {
					t.Fatalf("%s: metrics %v disagree with stats %+v", name, snap.Counters, stats)
				}
				if snap.Counters["buf.evictions"] != wantEvict {
					t.Fatalf("%s: evictions %d, want %d", name, snap.Counters["buf.evictions"], wantEvict)
				}
				hits := sink.Count(metrics.EvBufferLocalHit) + sink.Count(metrics.EvBufferRemoteHit)
				if hits != stats.LocalHits+stats.RemoteHits ||
					sink.Count(metrics.EvBufferMiss) != stats.Misses ||
					sink.Count(metrics.EvBufferEvict) != wantEvict {
					t.Fatalf("%s: trace events disagree: hits %d misses %d evicts %d vs stats %+v/%d",
						name, hits, sink.Count(metrics.EvBufferMiss), sink.Count(metrics.EvBufferEvict),
						stats, wantEvict)
				}
			}
		})
	}
}
