package buffer

import (
	"spjoin/internal/metrics"
	"spjoin/internal/sim"
)

// Metrics bundles the observability instruments of one buffer manager:
// counters per access class plus evictions, and an optional trace sink
// receiving one event per access (local/remote/miss) and per eviction.
// All fields are nil-safe; a nil *Metrics disables everything. The
// manager's own Stats counters — which the golden-metrics harness pins —
// are maintained independently and never change behavior.
type Metrics struct {
	LocalHits  *metrics.Counter
	RemoteHits *metrics.Counter
	Misses     *metrics.Counter
	Evictions  *metrics.Counter
	Sink       metrics.TraceSink
}

// NewMetrics registers the buffer instruments under prefix (for example
// "sim.buffer") in reg and returns the bundle. A nil registry yields
// nil-safe instruments, so callers may pass their optional registry
// straight through.
func NewMetrics(reg *metrics.Registry, prefix string, sink metrics.TraceSink) *Metrics {
	return &Metrics{
		LocalHits:  reg.Counter(prefix + ".local_hits"),
		RemoteHits: reg.Counter(prefix + ".remote_hits"),
		Misses:     reg.Counter(prefix + ".misses"),
		Evictions:  reg.Counter(prefix + ".evictions"),
		Sink:       sink,
	}
}

// access records one classified page request at virtual time t.
func (m *Metrics) access(class Class, p *sim.Proc, proc int, key PageKey) {
	if m == nil {
		return
	}
	var kind metrics.EventKind
	switch class {
	case LocalHit:
		m.LocalHits.Inc()
		kind = metrics.EvBufferLocalHit
	case RemoteHit:
		m.RemoteHits.Inc()
		kind = metrics.EvBufferRemoteHit
	default:
		m.Misses.Inc()
		kind = metrics.EvBufferMiss
	}
	if m.Sink != nil {
		m.Sink.Emit(metrics.Event{
			Kind: kind, T: float64(p.Now()), Worker: int32(proc), Level: -1,
			A: int64(key.Page), B: int64(key.Tree),
		})
	}
}

// evict records one eviction of key at virtual time t.
func (m *Metrics) evict(p *sim.Proc, proc int, key PageKey) {
	if m == nil {
		return
	}
	m.Evictions.Inc()
	if m.Sink != nil {
		m.Sink.Emit(metrics.Event{
			Kind: metrics.EvBufferEvict, T: float64(p.Now()), Worker: int32(proc),
			Level: -1, A: int64(key.Page), B: int64(key.Tree),
		})
	}
}
