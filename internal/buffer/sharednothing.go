package buffer

import (
	"spjoin/internal/sim"
	"spjoin/internal/storage"
	"spjoin/internal/timeline"
)

// SharedNothing models the architecture of the paper's §5 future work: no
// shared (virtual) memory — every disk is attached to exactly one home
// processor, and a page can only be read from disk by its home. Other
// processors obtain copies by page shipping over the interconnect, and may
// cache shipped copies in their private buffers (so, unlike the global
// buffer, a page can be resident many times).
//
// Cost model: an own-buffer hit costs LocalHit; a copy shipped from the
// home's buffer costs Ship (one message round trip plus the transfer —
// more than the SVM remote access); a cold page costs the home disk read
// plus Ship when the requester is not the home.
type SharedNothing struct {
	disk  *storage.DiskArray
	costs CostParams
	ship  sim.Time
	bufs  []*LRU
	stats Stats
	met   *Metrics
}

// DefaultShipCost is the page-shipping cost used by the experiments:
// heavier than the 1 ms SVM remote access because shared-nothing needs an
// explicit request/response message pair around the transfer.
const DefaultShipCost sim.Time = 1.5

// NewSharedNothing creates the shared-nothing buffer layer: n private
// buffers of perProcCapacity pages. Page homes derive from the disk
// placement (disk i belongs to processor i mod n).
func NewSharedNothing(n, perProcCapacity int, disk *storage.DiskArray, costs CostParams, ship sim.Time) *SharedNothing {
	if n < 1 {
		panic("buffer: need at least one processor")
	}
	s := &SharedNothing{disk: disk, costs: costs, ship: ship, bufs: make([]*LRU, n)}
	for i := range s.bufs {
		s.bufs[i] = NewLRU(perProcCapacity)
	}
	return s
}

// Home returns the processor owning key's disk.
func (s *SharedNothing) Home(key PageKey) int {
	return s.disk.DiskFor(key.Page) % len(s.bufs)
}

// Fetch implements Manager.
func (s *SharedNothing) Fetch(p *sim.Proc, proc int, key PageKey, kind storage.PageKind) Class {
	if s.bufs[proc].Touch(key) {
		s.stats.LocalHits++
		s.met.access(LocalHit, p, proc, key)
		p.BeginSpan(timeline.KindLocalBuffer, sim.SpanArgs{A: int64(key.Page), B: int64(key.Tree)})
		p.Hold(s.costs.LocalHit)
		p.EndSpan()
		return LocalHit
	}
	home := s.Home(key)
	if home == proc {
		// Own disk: plain read into the own buffer.
		s.stats.Misses++
		s.met.access(Miss, p, proc, key)
		s.disk.Read(p, key.Page, kind)
		s.insert(p, proc, key)
		return Miss
	}
	if s.bufs[home].Touch(key) {
		// The home still caches the page: ship a copy.
		s.stats.RemoteHits++
		s.met.access(RemoteHit, p, proc, key)
		p.BeginSpan(timeline.KindRemoteBuffer, sim.SpanArgs{A: int64(key.Page), B: int64(key.Tree), C: int64(home)})
		p.Hold(s.ship)
		p.EndSpan()
		s.insert(p, proc, key)
		return RemoteHit
	}
	// Cold: the home must read its disk, then ship. The requester spends
	// the disk time (waiting for the home's response) plus the shipping.
	s.stats.Misses++
	s.met.access(Miss, p, proc, key)
	s.disk.Read(p, key.Page, kind)
	p.BeginSpan(timeline.KindRemoteBuffer, sim.SpanArgs{A: int64(key.Page), B: int64(key.Tree), C: int64(home)})
	p.Hold(s.ship)
	p.EndSpan()
	s.insert(p, home, key)
	s.insert(p, proc, key)
	return Miss
}

// insert places key in owner's buffer, recording any eviction.
func (s *SharedNothing) insert(p *sim.Proc, owner int, key PageKey) {
	if evicted, didEvict := s.bufs[owner].Insert(key); didEvict {
		s.met.evict(p, owner, evicted)
	}
}

// Stats implements Manager.
func (s *SharedNothing) Stats() Stats { return s.stats }

// Instrument implements Manager.
func (s *SharedNothing) Instrument(m *Metrics) { s.met = m }

// Resident reports whether proc's buffer caches key (test support).
func (s *SharedNothing) Resident(proc int, key PageKey) bool {
	return s.bufs[proc].Contains(key)
}
