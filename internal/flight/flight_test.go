package flight

import (
	"encoding/json"
	"testing"
	"time"

	"spjoin/internal/partjoin"
	"spjoin/internal/timeline"
)

func sampleRecord(i int) Record {
	rec := Record{
		Start:  time.Unix(1700000000+int64(i), 0).UTC(),
		WallNS: int64(1e6 * (i + 1)),
		Engine: "partition",
		Plan: Plan{
			Source: "auto", Engine: "partition",
			Grid: 24, Workers: 4,
			NR: 1000 * (i + 1), NS: 2000, Skew: 5.5, Rep: 1.2, Selectivity: 1e-4,
		},
		NR: 1000 * (i + 1), NS: 2000,
		Candidates: 300 + i, Duplicates: 10,
		GX: 24, GY: 24, Partitions: 100 + i,
		WorkerPairs:  []int64{80, 90, 70, int64(60 + i)},
		WorkerSteals: []int64{0, 1, 0, 2},
		TopTiles:     []partjoin.TileCost{{TX: 3, TY: 4, Refined: true, Cost: int64(500 + i)}},
		HeatW:        2, HeatH: 2,
		Heat: []int64{1, 2, 3, int64(4 + i)},
	}
	rec.PhaseNS[timeline.PhaseSweep] = int64(8e5)
	rec.PhaseNS[timeline.PhasePrep] = int64(1e5)
	return rec
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	if _, ok := r.Last(); ok {
		t.Fatalf("Last on empty recorder returned ok")
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("Snapshot on empty recorder: %d records", len(got))
	}
	for i := 0; i < 5; i++ {
		rec := sampleRecord(i)
		if seq := r.Add(&rec); seq != uint64(i+1) {
			t.Fatalf("Add %d: seq=%d", i, seq)
		}
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("Len=%d Total=%d, want 3/5", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot: %d records", len(snap))
	}
	// Oldest first: records 3, 4, 5 survive the wraparound.
	for i, rec := range snap {
		if rec.Seq != uint64(i+3) {
			t.Errorf("snap[%d].Seq=%d, want %d", i, rec.Seq, i+3)
		}
		if rec.Candidates != 300+int(rec.Seq)-1 {
			t.Errorf("seq %d: candidates=%d", rec.Seq, rec.Candidates)
		}
	}
	last, ok := r.Last()
	if !ok || last.Seq != 5 {
		t.Fatalf("Last: ok=%v seq=%d", ok, last.Seq)
	}
	// Deep copies: mutating the snapshot must not touch the ring.
	snap[2].Heat[0] = -99
	last2, _ := r.Last()
	if last2.Heat[0] == -99 {
		t.Fatalf("Snapshot aliases the ring's heat buffer")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	rec := sampleRecord(0)
	if seq := r.Add(&rec); seq != 0 {
		t.Fatalf("nil Add: seq=%d", seq)
	}
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("nil Len/Total non-zero")
	}
	if _, ok := r.Last(); ok {
		t.Fatalf("nil Last returned ok")
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil Snapshot non-nil")
	}
	Observe(nil, &rec) // must not panic
}

// A warm recorder reuses its slot buffers: after one full lap with
// same-shaped records, Add allocates nothing.
func TestRecorderAddZeroAllocWarm(t *testing.T) {
	r := NewRecorder(4)
	rec := sampleRecord(1)
	for i := 0; i < 8; i++ {
		r.Add(&rec)
	}
	allocs := testing.AllocsPerRun(100, func() { r.Add(&rec) })
	if allocs != 0 {
		t.Fatalf("warm Add allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	rec := sampleRecord(2)
	rec.Seq = 7
	buf, err := json.Marshal(&rec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Record
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Seq != 7 || back.Engine != "partition" || back.Plan.Grid != 24 ||
		back.PhaseNS[timeline.PhaseSweep] != rec.PhaseNS[timeline.PhaseSweep] ||
		len(back.Heat) != 4 || back.TopTiles[0].Cost != rec.TopTiles[0].Cost {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestWorkersFallback(t *testing.T) {
	rec := sampleRecord(0)
	if rec.Workers() != 4 {
		t.Fatalf("Workers from pairs: %d", rec.Workers())
	}
	rec.WorkerPairs = nil
	if rec.Workers() != rec.Plan.Workers {
		t.Fatalf("Workers fallback: %d", rec.Workers())
	}
}
