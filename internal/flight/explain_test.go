package flight

import (
	"strings"
	"testing"

	"spjoin/internal/metrics"
	"spjoin/internal/timeline"
)

func TestExplainPartitionReport(t *testing.T) {
	rec := sampleRecord(0)
	rec.Seq = 3
	rec.RefinedTiles = 2
	rec.Subtiles = 18
	var sb strings.Builder
	Explain(&sb, &rec)
	out := sb.String()
	for _, want := range []string{
		"JOIN #3", "engine=partition",
		"plan (auto): engine=partition grid=24x24",
		"skew=5.50", "selectivity=0.0001",
		"est. pairs", "drift",
		"filter: candidates=300",
		"partition: grid=24x24", "refined_tiles=2 subtiles=18",
		"phases (measured",
		"sweep", "prep",
		"workers (pairs):",
		"W0", "(steals 1)",
		"top work units", "tile (3,4) cost=500  refined",
		"tile cost heat (24x24 grid -> 2x2 cells",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n%s", want, out)
		}
	}
	// Skipped phases stay out of the waterfall.
	if strings.Contains(out, "\n  sort") {
		t.Errorf("skipped sort phase rendered\n%s", out)
	}
	// Heatmap: hottest cell renders '@', zero would be ' ' (none here).
	if !strings.Contains(out, "@") {
		t.Errorf("heatmap missing hottest glyph\n%s", out)
	}
	// Deterministic: same record, same bytes.
	var sb2 strings.Builder
	Explain(&sb2, &rec)
	if sb2.String() != out {
		t.Fatalf("Explain is not deterministic")
	}
}

// A pipelined cold build's phase buckets are per-worker busy time, so the
// waterfall must switch to busy shares and emit the pipeline-overlap row
// instead of wall shares that would sum past 100%.
func TestExplainPipelinedReport(t *testing.T) {
	rec := sampleRecord(0)
	rec.WallNS = 1e6
	// Busy time across 4 workers exceeds the fused phase's wall time.
	rec.PhaseNS = [timeline.NumPhases]int64{}
	rec.PhaseNS[timeline.PhasePrep] = 1e5
	rec.PhaseNS[timeline.PhasePartition] = 6e5
	rec.PhaseNS[timeline.PhaseRefine] = 2e5
	rec.PhaseNS[timeline.PhaseSweep] = 1.6e6
	rec.PipelineNS = 8e5
	var sb strings.Builder
	Explain(&sb, &rec)
	out := sb.String()
	for _, want := range []string{
		"phases (pipelined: 2.50ms busy across 1.00ms wall):",
		"partition",
		"pipeline", "wall for 2.40ms busy", "(3.00x overlap)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pipelined report missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "phases (measured") {
		t.Errorf("pipelined record rendered the wall-share header\n%s", out)
	}
	// The non-pipelined header and semantics stay intact for barrier runs.
	rec.PipelineNS = 0
	var sb2 strings.Builder
	Explain(&sb2, &rec)
	if !strings.Contains(sb2.String(), "phases (measured") {
		t.Errorf("barrier record lost the wall-share header\n%s", sb2.String())
	}
}

func TestExplainTreeReport(t *testing.T) {
	rec := Record{
		Seq: 1, WallNS: 2e6, Engine: "tree",
		Plan: Plan{Source: "forced", Engine: "tree", Workers: 4},
		NR:   500, NS: 600,
		Candidates: 123,
		Tasks:      40, Steals: 3, StealAttempts: 9,
		WorkerPairs:  []int64{30, 40, 20, 33},
		WorkerSteals: []int64{1, 0, 2, 0},
	}
	rec.PhaseNS[timeline.PhasePrep] = 1e5
	rec.PhaseNS[timeline.PhasePartition] = 2e5
	rec.PhaseNS[timeline.PhaseSweep] = 1.5e6
	rec.PhaseNS[timeline.PhaseMerge] = 1e5
	var sb strings.Builder
	Explain(&sb, &rec)
	out := sb.String()
	for _, want := range []string{
		"engine=tree",
		"plan (forced): engine=tree workers=4",
		"tree: tasks=40 steals=3 attempts=9",
		"sweep", "merge",
		"(steals 2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "grid=") {
		t.Errorf("tree report leaked partition fields\n%s", out)
	}
	if strings.Contains(out, "tile cost heat") {
		t.Errorf("tree report rendered a heatmap\n%s", out)
	}
}

func TestExplainEmptyRecord(t *testing.T) {
	var sb strings.Builder
	Explain(&sb, &Record{Seq: 1, Engine: "partition"})
	out := sb.String()
	if !strings.Contains(out, "plan: (not captured)") {
		t.Errorf("missing plan placeholder\n%s", out)
	}
	if strings.Contains(out, "phases") || strings.Contains(out, "workers") {
		t.Errorf("empty record rendered timing sections\n%s", out)
	}
}

func TestObserveExportsMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := sampleRecord(0)
	Observe(reg, &rec)
	Observe(reg, &rec)
	if got := reg.Counter("flight.joins").Load(); got != 2 {
		t.Fatalf("flight.joins=%d, want 2", got)
	}
	if got := reg.Histogram("flight.phase_us.sweep", phaseBounds).Count(); got != 2 {
		t.Fatalf("sweep histogram count=%d, want 2", got)
	}
	// Skipped phases observe nothing.
	if got := reg.Histogram("flight.phase_us.sort", phaseBounds).Count(); got != 0 {
		t.Fatalf("sort histogram count=%d, want 0", got)
	}
	if got := reg.Gauge("plan.engine_partition").Load(); got != 1 {
		t.Fatalf("plan.engine_partition=%v", got)
	}
	if got := reg.Gauge("plan.grid").Load(); got != 24 {
		t.Fatalf("plan.grid=%v", got)
	}
	if got := reg.Gauge("plan.skew").Load(); got != 5.5 {
		t.Fatalf("plan.skew=%v", got)
	}
	if got := reg.Gauge("plan.replication").Load(); got != 1.2 {
		t.Fatalf("plan.replication=%v", got)
	}
	// A record without a captured plan leaves the plan gauges alone.
	rec2 := sampleRecord(1)
	rec2.Plan = Plan{}
	rec2.Plan.Engine = ""
	Observe(reg, &rec2)
	if got := reg.Gauge("plan.grid").Load(); got != 24 {
		t.Fatalf("plan.grid overwritten by planless record: %v", got)
	}
	// The export must survive a Prometheus render (name sanitization).
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, want := range []string{"flight_joins", "flight_phase_us_sweep", "plan_grid"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{500, "500ns"},
		{1500, "1.5µs"},
		{2_340_000, "2.34ms"},
		{1_500_000_000, "1.50s"},
	}
	for _, c := range cases {
		if got := fmtDur(c.ns); got != c.want {
			t.Errorf("fmtDur(%d)=%q, want %q", c.ns, got, c.want)
		}
	}
}
