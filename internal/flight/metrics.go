package flight

import (
	"spjoin/internal/metrics"
	"spjoin/internal/timeline"
)

// phaseBounds are the histogram bucket boundaries for per-phase latency in
// microseconds: 50µs to 1s, roughly ×2.5 per step — wide enough to cover a
// corpus-scale join phase and a toy test alike.
var phaseBounds = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1000000}

// Observe exports one captured execution to the metrics registry:
// per-phase latency histograms (flight.phase_us.<phase>), the join
// counter, and gauges mirroring the most recent plan so an OpenMetrics
// scrape shows what the planner last decided and why. Nil-safe on reg.
func Observe(reg *metrics.Registry, rec *Record) {
	if reg == nil || rec == nil {
		return
	}
	reg.Counter("flight.joins").Inc()
	reg.Histogram("flight.wall_us", phaseBounds).Observe(rec.WallNS / 1000)
	for p := 0; p < timeline.NumPhases; p++ {
		if ns := rec.PhaseNS[p]; ns > 0 {
			reg.Histogram("flight.phase_us."+timeline.PhaseName(p), phaseBounds).Observe(ns / 1000)
		}
	}
	if h := &rec.Health; h.Sampled {
		reg.Counter("runtimeobs.windows").Inc()
		if n := h.AnomalyCount(); n > 0 {
			reg.Counter("runtimeobs.anomalies").Add(int64(n))
		}
		work, gc, sched, cont := h.Shares()
		reg.Gauge("runtimeobs.work_share").Set(work)
		reg.Gauge("runtimeobs.gc_pause_share").Set(gc)
		reg.Gauge("runtimeobs.sched_delay_share").Set(sched)
		reg.Gauge("runtimeobs.contention_share").Set(cont)
		reg.Gauge("runtimeobs.gc_pause_ns").Set(float64(h.GCPauseNS))
		reg.Gauge("runtimeobs.sched_delay_ns").Set(float64(h.SchedDelayNS))
		reg.Gauge("runtimeobs.mutex_wait_ns").Set(float64(h.MutexWaitNS))
		reg.Gauge("runtimeobs.alloc_bytes").Set(float64(h.AllocBytes))
		reg.Gauge("runtimeobs.heap_bytes").Set(float64(h.HeapBytes))
		reg.Gauge("runtimeobs.goroutines").Set(float64(h.GoroutinesEnd))
	}
	if rec.Plan.Engine == "" {
		return
	}
	enginePartition := 0.0
	if rec.Plan.Engine == "partition" {
		enginePartition = 1
	}
	reg.Gauge("plan.engine_partition").Set(enginePartition)
	reg.Gauge("plan.grid").Set(float64(rec.Plan.Grid))
	reg.Gauge("plan.workers").Set(float64(rec.Plan.Workers))
	reg.Gauge("plan.refine_threshold").Set(float64(rec.Plan.RefineThreshold))
	reg.Gauge("plan.skew").Set(rec.Plan.Skew)
	reg.Gauge("plan.replication").Set(rec.Plan.Rep)
	reg.Gauge("plan.selectivity").Set(rec.Plan.Selectivity)
}
