// Package flight is the always-on flight recorder of the wall-clock join
// engines: a bounded ring buffer holding the last N join executions — the
// plan that drove each one, per-phase wall timings, per-worker pair and
// steal counts, and (when the engine was asked to introspect) the tile-cost
// top-K and heat grid. Where internal/metrics aggregates over a process
// lifetime and internal/timeline records one run in full span detail, this
// package answers the operational question in between: "why was *this*
// join slow?" — hours later, without having asked in advance.
//
// Design contract:
//
//   - Bounded. NewRecorder(n) holds exactly the last n records; slot
//     buffers are reused across laps of the ring, so a warm recorder adds
//     records without allocating.
//   - Nil-safe. A nil *Recorder ignores Add and reports nothing, so call
//     sites need no guards — the same convention as the metrics sinks.
//   - Passive. The engines know nothing about this package; the driver
//     (cmd/spjoin, a future join server) assembles a Record from the
//     engine's Result and the planner's Decision and hands it over.
//
// The EXPLAIN ANALYZE renderer over one Record lives in explain.go; the
// OpenMetrics phase-latency export in metrics.go.
package flight

import (
	"sync"
	"time"

	"spjoin/internal/partjoin"
	"spjoin/internal/runtimeobs"
	"spjoin/internal/timeline"
)

// Plan is the captured planning decision and the statistics that drove it
// (a flattened snapshot of plan.Stats + plan.Decision, JSON-friendly so
// /debug/joins can serve it verbatim).
type Plan struct {
	// Source is how the plan came to be: "auto" (the planner decided) or
	// "forced" (the caller pinned the engine); empty when the driver
	// recorded no plan at all.
	Source string `json:"source,omitempty"`
	Engine string `json:"engine,omitempty"`

	Grid            int   `json:"grid,omitempty"`
	RefineThreshold int64 `json:"refine_threshold,omitempty"`
	Workers         int   `json:"workers,omitempty"`

	// The driving statistics (plan.Analyze); zero when Source is "forced"
	// and the driver skipped the probe pass.
	NR          int     `json:"nr,omitempty"`
	NS          int     `json:"ns,omitempty"`
	Skew        float64 `json:"skew,omitempty"`
	Rep         float64 `json:"rep,omitempty"`
	Selectivity float64 `json:"selectivity,omitempty"`
	Probe       int     `json:"probe,omitempty"`
}

// Record is one captured join execution.
type Record struct {
	// Seq numbers records monotonically across the recorder's lifetime
	// (the ring keeps only the last N, but Seq exposes how many ran).
	Seq   uint64    `json:"seq"`
	Start time.Time `json:"start"`
	// WallNS is the join's end-to-end wall time as the driver measured it
	// (including tree builds for the tree engine — everything the caller
	// waited for).
	WallNS int64 `json:"wall_ns"`
	// Engine is the engine that executed: "partition" or "tree".
	Engine string `json:"engine"`
	Plan   Plan   `json:"plan"`

	// Input cardinalities as executed.
	NR int `json:"nr"`
	NS int `json:"ns"`

	// Filter-step figures.
	Candidates  int `json:"candidates"`
	Comparisons int `json:"comparisons,omitempty"`
	Duplicates  int `json:"duplicates,omitempty"`

	// Partition-engine shape (zero for the tree engine).
	GX           int `json:"gx,omitempty"`
	GY           int `json:"gy,omitempty"`
	Partitions   int `json:"partitions,omitempty"`
	RefinedTiles int `json:"refined_tiles,omitempty"`
	Subtiles     int `json:"subtiles,omitempty"`

	// Tree-engine shape (zero for the partition engine).
	Tasks         int `json:"tasks,omitempty"`
	Steals        int `json:"steals,omitempty"`
	StealAttempts int `json:"steal_attempts,omitempty"`

	// PhaseNS is the engine's per-phase attribution, indexed by the
	// timeline.Phase* constants. For a barrier or steady-state run every
	// bucket is that phase's wall time; for a pipelined cold build (see
	// PipelineNS) the overlapped phases report per-worker busy time
	// instead, so the buckets no longer tile the wall clock.
	PhaseNS [timeline.NumPhases]int64 `json:"phase_ns"`

	// PipelineNS is the wall time of the partition engine's fused
	// scatter+fill+sweep pipeline phase; zero when the build ran with
	// barriers or on the steady-state fast path. Nonzero means the phase
	// buckets overlap in time and EXPLAIN renders a busy-time waterfall
	// with a pipeline-overlap row.
	PipelineNS int64 `json:"pipeline_ns,omitempty"`

	// Per-worker figures: candidate pairs emitted, and (tree engine)
	// steals performed as the thief.
	WorkerPairs  []int64 `json:"worker_pairs,omitempty"`
	WorkerSteals []int64 `json:"worker_steals,omitempty"`

	// Tile-cost introspection (partition engine under Introspect).
	TopTiles []partjoin.TileCost `json:"top_tiles,omitempty"`
	HeatW    int                 `json:"heat_w,omitempty"`
	HeatH    int                 `json:"heat_h,omitempty"`
	Heat     []int64             `json:"heat,omitempty"`

	// Health is the runtime health window the driver sampled around the
	// join (runtimeobs.Sampler); Health.Sampled false means no sampler
	// was attached. A value type, so the ring's slot reuse copies it for
	// free alongside the scalars.
	Health runtimeobs.Health `json:"health"`
}

// Workers returns the worker count the execution used (from the per-worker
// pair table, falling back to the plan).
func (r *Record) Workers() int {
	if len(r.WorkerPairs) > 0 {
		return len(r.WorkerPairs)
	}
	return r.Plan.Workers
}

// Recorder is the bounded ring. Create with NewRecorder; the zero value is
// unusable (capacity 0 records nothing), a nil *Recorder is a no-op sink.
type Recorder struct {
	mu   sync.Mutex
	ring []Record
	seq  uint64 // total records ever added
	next int    // ring slot the next Add writes
}

// NewRecorder returns a recorder keeping the last n joins (minimum 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{ring: make([]Record, n)}
}

// Add captures one execution: rec is copied into the ring (the caller
// keeps ownership of rec and its slices) and its assigned sequence number
// is returned. Slot buffers are reused lap over lap, so a warm recorder
// does not allocate unless a record's slices outgrow the slot's. Nil-safe:
// a nil receiver returns 0 without touching rec.
func (r *Recorder) Add(rec *Record) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.seq++
	slot := &r.ring[r.next]
	r.next = (r.next + 1) % len(r.ring)

	// Detach the slot's buffers, copy the scalar fields, then refill the
	// buffers from rec — reusing their capacity across ring laps.
	pairs, steals := slot.WorkerPairs[:0], slot.WorkerSteals[:0]
	tops, heat := slot.TopTiles[:0], slot.Heat[:0]
	*slot = *rec
	slot.Seq = r.seq
	slot.WorkerPairs = append(pairs, rec.WorkerPairs...)
	slot.WorkerSteals = append(steals, rec.WorkerSteals...)
	slot.TopTiles = append(tops, rec.TopTiles...)
	slot.Heat = append(heat, rec.Heat...)
	seq := r.seq
	r.mu.Unlock()
	return seq
}

// Len returns how many records the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(min64(r.seq, uint64(len(r.ring))))
}

// Total returns the lifetime record count (Seq of the newest record).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Last returns a deep copy of the newest record (ok=false when empty).
func (r *Recorder) Last() (Record, bool) {
	if r == nil {
		return Record{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq == 0 {
		return Record{}, false
	}
	idx := (r.next - 1 + len(r.ring)) % len(r.ring)
	return deepCopy(&r.ring[idx]), true
}

// Snapshot returns deep copies of the held records, oldest first.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(min64(r.seq, uint64(len(r.ring))))
	out := make([]Record, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, deepCopy(&r.ring[(start+i)%len(r.ring)]))
	}
	return out
}

// deepCopy detaches a record from the ring's reused buffers.
func deepCopy(rec *Record) Record {
	out := *rec
	out.WorkerPairs = append([]int64(nil), rec.WorkerPairs...)
	out.WorkerSteals = append([]int64(nil), rec.WorkerSteals...)
	out.TopTiles = append([]partjoin.TileCost(nil), rec.TopTiles...)
	out.Heat = append([]int64(nil), rec.Heat...)
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
