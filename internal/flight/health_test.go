package flight

import (
	"strings"
	"testing"

	"spjoin/internal/metrics"
	"spjoin/internal/runtimeobs"
)

// sampleHealth fabricates a sampled window: 10ms wall across 4 workers
// with visible GC, scheduler and contention shares — the gc-pause share
// (8%) trips its 5% anomaly threshold.
func sampleHealth() runtimeobs.Health {
	h := runtimeobs.Health{
		Sampled:         true,
		WallNS:          10_000_000,
		Workers:         4,
		GCPauseNS:       800_000,   // 8% of wall -> anomaly
		SchedDelayNS:    2_000_000, // /4 workers = 5% of wall
		MutexWaitNS:     400_000,   // /4 workers = 1% of wall
		GCCPUNS:         1_500_000,
		AllocBytes:      3 << 20,
		HeapBytes:       64 << 20,
		GCCycles:        2,
		GoroutinesStart: 9,
		GoroutinesEnd:   9,
	}
	h.Attribute()
	return h
}

// TestExplainHealthSection pins the EXPLAIN "runtime health" section: the
// four attribution rows, the raw GC/goroutine detail, and the anomaly line.
func TestExplainHealthSection(t *testing.T) {
	rec := sampleRecord(0)
	rec.Health = sampleHealth()
	var sb strings.Builder
	Explain(&sb, &rec)
	out := sb.String()
	for _, want := range []string{
		"runtime health (10.00ms wall, 4 workers):",
		"work", "gc-pause", "sched-delay", "contention",
		"gc-pause       800.0µs   8.0%",
		"sched-delay    500.0µs   5.0%",
		"contention     100.0µs   1.0%",
		"work            8.60ms  86.0%",
		"gc: 2 cycle(s), 1.50ms cpu, 800.0µs pause; alloc 3.00MiB, heap 64.00MiB",
		"goroutines: 9 -> 9",
		"anomalies: gc-pause share 8.0% > 5.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("health section missing %q\n%s", want, out)
		}
	}
}

// TestExplainHealthAbsent pins that an unsampled record renders no
// health section at all.
func TestExplainHealthAbsent(t *testing.T) {
	rec := sampleRecord(0)
	var sb strings.Builder
	Explain(&sb, &rec)
	if strings.Contains(sb.String(), "runtime health") {
		t.Fatalf("unsampled record rendered a health section\n%s", sb.String())
	}
}

// TestObserveExportsHealth pins the runtimeobs.* OpenMetrics export.
func TestObserveExportsHealth(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := sampleRecord(0)
	rec.Health = sampleHealth()
	Observe(reg, &rec)
	if got := reg.Counter("runtimeobs.windows").Load(); got != 1 {
		t.Fatalf("runtimeobs.windows=%d, want 1", got)
	}
	if got := reg.Counter("runtimeobs.anomalies").Load(); got != 1 {
		t.Fatalf("runtimeobs.anomalies=%d, want 1", got)
	}
	if got := reg.Gauge("runtimeobs.gc_pause_share").Load(); got != 0.08 {
		t.Fatalf("gc_pause_share=%v, want 0.08", got)
	}
	if got := reg.Gauge("runtimeobs.work_share").Load(); got != 0.86 {
		t.Fatalf("work_share=%v, want 0.86", got)
	}
	if got := reg.Gauge("runtimeobs.goroutines").Load(); got != 9 {
		t.Fatalf("goroutines=%v", got)
	}
	if got := reg.Gauge("runtimeobs.heap_bytes").Load(); got != float64(64<<20) {
		t.Fatalf("heap_bytes=%v", got)
	}

	// An unsampled record must leave the health metrics untouched.
	rec2 := sampleRecord(1)
	Observe(reg, &rec2)
	if got := reg.Counter("runtimeobs.windows").Load(); got != 1 {
		t.Fatalf("unsampled record bumped runtimeobs.windows to %d", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, want := range []string{"runtimeobs_windows", "runtimeobs_gc_pause_share"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestRecordHealthRoundTrip pins that the ring's slot reuse copies the
// value-typed Health with the record and that deep snapshots carry it.
func TestRecordHealthRoundTrip(t *testing.T) {
	r := NewRecorder(2)
	rec := sampleRecord(0)
	rec.Health = sampleHealth()
	r.Add(&rec)
	got := r.Snapshot()
	if len(got) != 1 || !got[0].Health.Sampled {
		t.Fatalf("snapshot lost the health window: %+v", got)
	}
	if got[0].Health != rec.Health {
		t.Fatalf("health differs after ring round trip:\n%+v\n%+v", got[0].Health, rec.Health)
	}
}
