package flight

import (
	"fmt"
	"io"
	"strings"
	"time"

	"spjoin/internal/stats"
	"spjoin/internal/timeline"
)

// Explain renders one captured execution as an EXPLAIN ANALYZE report:
// the plan and the statistics that drove it, the phase waterfall, the
// worker-skew table, and (when the engine introspected) the costliest
// work units and an ASCII tile-cost heatmap. Output is deterministic for
// a given record, so tests can pin it.
func Explain(w io.Writer, rec *Record) {
	fmt.Fprintf(w, "JOIN #%d  engine=%s  wall=%s\n",
		rec.Seq, rec.Engine, fmtDur(rec.WallNS))
	explainPlan(w, rec)
	explainShape(w, rec)
	explainPhases(w, rec)
	explainHealth(w, rec)
	explainWorkers(w, rec)
	explainTiles(w, rec)
	explainHeat(w, rec)
}

func explainPlan(w io.Writer, rec *Record) {
	p := &rec.Plan
	if p.Engine == "" {
		fmt.Fprintf(w, "plan: (not captured)\n")
		return
	}
	fmt.Fprintf(w, "plan (%s): engine=%s", p.Source, p.Engine)
	if p.Engine == "partition" {
		ref := "off"
		switch {
		case p.RefineThreshold == 0:
			ref = "auto"
		case p.RefineThreshold > 0:
			ref = fmt.Sprintf("%d", p.RefineThreshold)
		}
		fmt.Fprintf(w, " grid=%dx%d refine=%s", p.Grid, p.Grid, ref)
	}
	fmt.Fprintf(w, " workers=%d\n", p.Workers)
	if p.NR > 0 || p.NS > 0 {
		fmt.Fprintf(w, "  stats: nr=%d ns=%d skew=%.2f rep=%.2f selectivity=%.3g",
			p.NR, p.NS, p.Skew, p.Rep, p.Selectivity)
		if est := p.Selectivity * float64(p.NR) * float64(p.NS); est > 0 && rec.Candidates > 0 {
			fmt.Fprintf(w, " (est. pairs %.3g, actual %d, drift %.2fx)",
				est, rec.Candidates, float64(rec.Candidates)/est)
		}
		fmt.Fprintf(w, "\n")
	}
}

func explainShape(w io.Writer, rec *Record) {
	fmt.Fprintf(w, "input: nr=%d ns=%d\n", rec.NR, rec.NS)
	fmt.Fprintf(w, "filter: candidates=%d", rec.Candidates)
	if rec.Comparisons > 0 {
		fmt.Fprintf(w, " comparisons=%d", rec.Comparisons)
	}
	if rec.Duplicates > 0 {
		fmt.Fprintf(w, " duplicates=%d", rec.Duplicates)
	}
	fmt.Fprintf(w, "\n")
	switch rec.Engine {
	case "partition":
		fmt.Fprintf(w, "partition: grid=%dx%d units=%d refined_tiles=%d subtiles=%d\n",
			rec.GX, rec.GY, rec.Partitions, rec.RefinedTiles, rec.Subtiles)
	case "tree":
		fmt.Fprintf(w, "tree: tasks=%d steals=%d attempts=%d\n",
			rec.Tasks, rec.Steals, rec.StealAttempts)
	}
}

func explainPhases(w io.Writer, rec *Record) {
	var total int64
	for _, ns := range rec.PhaseNS {
		total += ns
	}
	if total == 0 {
		return
	}
	if rec.PipelineNS > 0 {
		explainPipelinedPhases(w, rec, total)
		return
	}
	fmt.Fprintf(w, "phases (measured %s of %s wall):\n", fmtDur(total), fmtDur(rec.WallNS))
	for p := 0; p < timeline.NumPhases; p++ {
		ns := rec.PhaseNS[p]
		if ns == 0 {
			continue // phase skipped (e.g. steady-state reuse, tree engine)
		}
		share := float64(ns) / float64(total)
		fmt.Fprintf(w, "  %-9s %10s %5.1f%% %s\n",
			timeline.PhaseName(p), fmtDur(ns), share*100, bar(share, 30))
	}
}

// explainPipelinedPhases renders the waterfall for a pipelined cold build.
// The fused scatter/refine/sweep phases ran concurrently, so their buckets
// hold per-worker busy time rather than wall slices — shares of the wall
// would sum past 100%. Instead each row's share is of total busy time
// (summing to 100% by construction), and a trailing pipeline row reports
// the fused phase's actual wall time against the busy work it absorbed.
func explainPipelinedPhases(w io.Writer, rec *Record, busy int64) {
	fmt.Fprintf(w, "phases (pipelined: %s busy across %s wall):\n",
		fmtDur(busy), fmtDur(rec.WallNS))
	for p := 0; p < timeline.NumPhases; p++ {
		ns := rec.PhaseNS[p]
		if ns == 0 {
			continue // phase skipped (fill is fused into partition here)
		}
		share := float64(ns) / float64(busy)
		fmt.Fprintf(w, "  %-9s %10s %5.1f%% %s\n",
			timeline.PhaseName(p), fmtDur(ns), share*100, bar(share, 30))
	}
	fused := rec.PhaseNS[timeline.PhasePartition] +
		rec.PhaseNS[timeline.PhaseFill] +
		rec.PhaseNS[timeline.PhaseRefine] +
		rec.PhaseNS[timeline.PhaseSweep]
	fmt.Fprintf(w, "  %-9s %10s  wall for %s busy", "pipeline",
		fmtDur(rec.PipelineNS), fmtDur(fused))
	if fused > rec.PipelineNS {
		fmt.Fprintf(w, " (%.2fx overlap)", float64(fused)/float64(rec.PipelineNS))
	}
	fmt.Fprintf(w, "\n")
}

// explainHealth renders the runtime health window (runtimeobs.Sampler)
// the driver bracketed around the join: the wall clock attributed across
// useful work, GC stop-the-world pauses, scheduler run-queue delay and
// lock contention, plus the raw runtime deltas and any anomaly flags.
func explainHealth(w io.Writer, rec *Record) {
	h := &rec.Health
	if !h.Sampled {
		return
	}
	fmt.Fprintf(w, "runtime health (%s wall, %d workers):\n",
		fmtDur(h.WallNS), h.Workers)
	work, gc, sched, cont := h.Shares()
	rows := []struct {
		name  string
		ns    int64
		share float64
	}{
		{"work", h.WorkNS, work},
		{"gc-pause", h.GCNS, gc},
		{"sched-delay", h.SchedNS, sched},
		{"contention", h.ContentionNS, cont},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-11s %10s %5.1f%% %s\n",
			r.name, fmtDur(r.ns), r.share*100, bar(r.share, 30))
	}
	fmt.Fprintf(w, "  gc: %d cycle(s), %s cpu, %s pause; alloc %s, heap %s\n",
		h.GCCycles, fmtDur(h.GCCPUNS), fmtDur(h.GCPauseNS),
		fmtBytes(h.AllocBytes), fmtBytes(h.HeapBytes))
	fmt.Fprintf(w, "  goroutines: %d -> %d\n", h.GoroutinesStart, h.GoroutinesEnd)
	if a := h.Anomalies(); len(a) > 0 {
		fmt.Fprintf(w, "  anomalies: %s\n", strings.Join(a, "; "))
	}
}

// fmtBytes renders a byte count at a human scale.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

func explainWorkers(w io.Writer, rec *Record) {
	if len(rec.WorkerPairs) < 2 {
		return
	}
	vals := make([]float64, len(rec.WorkerPairs))
	var maxPairs int64 = 1
	for i, p := range rec.WorkerPairs {
		vals[i] = float64(p)
		if p > maxPairs {
			maxPairs = p
		}
	}
	sum := stats.Summarize(vals)
	fmt.Fprintf(w, "workers (pairs): min=%.0f max=%.0f mean=%.1f skew=%.2f\n",
		sum.Min, sum.Max, sum.Mean, sum.Skew())
	for i, p := range rec.WorkerPairs {
		fmt.Fprintf(w, "  W%-3d %s %d", i, bar(float64(p)/float64(maxPairs), 24), p)
		if i < len(rec.WorkerSteals) && rec.WorkerSteals[i] > 0 {
			fmt.Fprintf(w, "  (steals %d)", rec.WorkerSteals[i])
		}
		fmt.Fprintf(w, "\n")
	}
}

func explainTiles(w io.Writer, rec *Record) {
	if len(rec.TopTiles) == 0 {
		return
	}
	fmt.Fprintf(w, "top work units (by estimated cost):\n")
	for _, t := range rec.TopTiles {
		kind := ""
		if t.Refined {
			kind = "  refined"
		}
		fmt.Fprintf(w, "  tile (%d,%d) cost=%d%s\n", t.TX, t.TY, t.Cost, kind)
	}
}

// heatRamp maps a cell's share of the hottest cell to a glyph; index 0 is
// "truly zero", the rest spread linearly.
const heatRamp = " .:-=+*#%@"

func explainHeat(w io.Writer, rec *Record) {
	if rec.HeatW <= 0 || rec.HeatH <= 0 || len(rec.Heat) < rec.HeatW*rec.HeatH {
		return
	}
	var maxC int64
	for _, c := range rec.Heat {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return
	}
	fmt.Fprintf(w, "tile cost heat (%dx%d grid -> %dx%d cells, @ = hottest):\n",
		rec.GX, rec.GY, rec.HeatW, rec.HeatH)
	for y := rec.HeatH - 1; y >= 0; y-- { // row 0 is the bottom of the space
		fmt.Fprintf(w, "  |")
		for x := 0; x < rec.HeatW; x++ {
			c := rec.Heat[y*rec.HeatW+x]
			g := 0
			if c > 0 {
				g = 1 + int(int64(len(heatRamp)-2)*c/maxC)
			}
			fmt.Fprintf(w, "%c", heatRamp[g])
		}
		fmt.Fprintf(w, "|\n")
	}
}

// bar renders share (0..1) as a fixed-width block bar; at least one block
// for any non-zero share so small phases stay visible.
func bar(share float64, width int) string {
	n := int(share*float64(width) + 0.5)
	if n < 1 && share > 0 {
		n = 1
	}
	if n > width {
		n = width
	}
	return strings.Repeat("▇", n)
}

// fmtDur formats nanoseconds at millisecond-or-better precision without
// trailing noise (time.Duration's default prints 1.234567ms).
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
	return fmt.Sprintf("%dns", ns)
}
