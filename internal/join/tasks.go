package join

// CreateTasks performs the paper's sequential task-creation phase (§3.1)
// against any node source: starting from the root pair, node pairs are
// expanded level by level — always in local plane-sweep order — until at
// least minTasks pairs of subtrees exist or only leaf pairs remain.
//
// The returned level is the maximum subtree level among the tasks (the
// "root level" for reassignment purposes); comparisons counts the rectangle
// tests spent.
func CreateTasks(src Source, root NodePair, opts Options, minTasks int) (tasks []NodePair, level int, comparisons int) {
	var sc Scratch
	tasks = []NodePair{root}
	for len(tasks) < minTasks {
		next := make([]NodePair, 0, 4*len(tasks))
		expandedAny := false
		for _, p := range tasks {
			if p.RLevel == 0 && p.SLevel == 0 {
				next = append(next, p) // leaf pairs cannot be divided further
				continue
			}
			expandedAny = true
			nr := src.Node(SideR, p.RPage, p.RLevel)
			ns := src.Node(SideS, p.SPage, p.SLevel)
			cands, children, comp := sc.Expand(nr, ns, opts)
			if len(cands) > 0 {
				panic("join: candidate emitted during task creation")
			}
			comparisons += comp
			next = append(next, children...)
		}
		tasks = next
		if !expandedAny {
			break
		}
	}
	for _, t := range tasks {
		if l := t.MaxLevel(); l > level {
			level = l
		}
	}
	return tasks, level, comparisons
}
