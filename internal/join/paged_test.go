package join

import (
	"path/filepath"
	"testing"

	"spjoin/internal/pagefile"
	"spjoin/internal/rtree"
	"spjoin/internal/tiger"
)

func pagedTrees(t *testing.T, frames int) (*rtree.PagedTree, *rtree.PagedTree, *rtree.Tree, *rtree.Tree) {
	t.Helper()
	streets, mixed := tiger.Maps(0.01, 42)
	r := rtree.BulkLoadSTR(smallParams(), streets, 0.8)
	s := rtree.BulkLoadSTR(smallParams(), mixed, 0.8)
	dir := t.TempDir()
	save := func(tree *rtree.Tree, name string) *rtree.PagedTree {
		pf, err := pagefile.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pf.Close() })
		if err := tree.SaveToPageFile(pf); err != nil {
			t.Fatal(err)
		}
		pt, err := rtree.OpenPagedTree(pf, frames)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	return save(r, "r.spjf"), save(s, "s.spjf"), r, s
}

func TestPagedSequentialMatchesInMemory(t *testing.T) {
	pr, ps, r, s := pagedTrees(t, 32)
	want := candidateSet(Sequential(r, s, Options{}))
	got, stats, err := PagedSequential(pr, ps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotSet := candidateSet(got)
	if len(gotSet) != len(want) {
		t.Fatalf("paged join found %d pairs, in-memory %d", len(gotSet), len(want))
	}
	for k := range want {
		if !gotSet[k] {
			t.Fatalf("paged join missed %v", k)
		}
	}
	if stats.Reads() == 0 {
		t.Fatal("no physical reads recorded")
	}
	if stats.RHits+stats.RMisses == 0 || stats.SHits+stats.SMisses == 0 {
		t.Fatalf("one-sided I/O stats: %+v", stats)
	}
}

func TestPagedSequentialSmallPoolMoreReads(t *testing.T) {
	prBig, psBig, _, _ := pagedTrees(t, 256)
	_, big, err := PagedSequential(prBig, psBig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prSmall, psSmall, _, _ := pagedTrees(t, 2)
	_, small, err := PagedSequential(prSmall, psSmall, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if small.Reads() <= big.Reads() {
		t.Fatalf("tiny pool reads %d <= big pool reads %d", small.Reads(), big.Reads())
	}
}

func TestPagedSequentialEmptyTrees(t *testing.T) {
	empty := rtree.New(smallParams())
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "e.spjf"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if err := empty.SaveToPageFile(pf); err != nil {
		t.Fatal(err)
	}
	pt, err := rtree.OpenPagedTree(pf, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := PagedSequential(pt, pt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty paged join returned %d pairs", len(got))
	}
}
