package join

import "sort"

// candidateLess orders candidates by (R, S) id — the deterministic output
// order of every Sorted join variant.
func candidateLess(a, b *Candidate) bool {
	if a.R != b.R {
		return a.R < b.R
	}
	return a.S < b.S
}

// SortCandidates orders candidates by (R, S) id in place.
func SortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		return candidateLess(&cands[i], &cands[j])
	})
}

// CandidateSorter is the reusable sort.Interface form of SortCandidates:
// allocation-sensitive callers keep one per worker and pass its pointer to
// sort.Sort, which boxes no closure and allocates nothing.
type CandidateSorter struct{ Cands []Candidate }

func (s *CandidateSorter) Len() int { return len(s.Cands) }
func (s *CandidateSorter) Less(i, j int) bool {
	return candidateLess(&s.Cands[i], &s.Cands[j])
}
func (s *CandidateSorter) Swap(i, j int) {
	s.Cands[i], s.Cands[j] = s.Cands[j], s.Cands[i]
}

// MergeCandidateRuns k-way-merges runs — each already sorted by (R, S) id —
// into dst and returns it. Together with per-worker sorting, this replaces
// a full sort of the concatenated result: each worker sorts only its own
// run (in parallel), and the single-threaded tail is a linear merge instead
// of an O(n log n) sort.
//
// The merge consumes the runs: every run slice is advanced to empty. Ties
// break toward the lower run index, so the result is deterministic even if
// the same (R, S) pair appears in several runs. The scan over run heads is
// linear in the number of runs, which is the worker count — small enough
// that a loser tree would cost more than it saves. With sufficient dst
// capacity the merge performs no allocation.
func MergeCandidateRuns(dst []Candidate, runs [][]Candidate) []Candidate {
	for {
		best := -1
		for i := range runs {
			if len(runs[i]) == 0 {
				continue
			}
			if best < 0 || candidateLess(&runs[i][0], &runs[best][0]) {
				best = i
			}
		}
		if best < 0 {
			return dst
		}
		dst = append(dst, runs[best][0])
		runs[best] = runs[best][1:]
	}
}
