package join

import (
	"math/rand"
	"reflect"
	"testing"

	"spjoin/internal/rtree"
)

// TestMergeCandidateRunsMatchesFullSort pins that per-run sorting plus the
// k-way merge reproduces exactly the order of a full sort of the
// concatenation, over random run shapes (empty runs, singleton runs,
// skewed sizes included).
func TestMergeCandidateRunsMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(9)
		runs := make([][]Candidate, k)
		var all []Candidate
		for i := range runs {
			n := rng.Intn(20)
			for j := 0; j < n; j++ {
				c := Candidate{
					R: rtree.EntryID(rng.Intn(12)),
					S: rtree.EntryID(rng.Intn(12)),
				}
				runs[i] = append(runs[i], c)
				all = append(all, c)
			}
			SortCandidates(runs[i])
		}
		SortCandidates(all)
		got := MergeCandidateRuns(make([]Candidate, 0, len(all)), runs)
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d: merge order differs from full sort\n got %v\nwant %v",
				trial, got, all)
		}
	}
}

func TestMergeCandidateRunsEmpty(t *testing.T) {
	if got := MergeCandidateRuns(nil, nil); len(got) != 0 {
		t.Fatalf("merge of no runs returned %v", got)
	}
	if got := MergeCandidateRuns(nil, make([][]Candidate, 4)); len(got) != 0 {
		t.Fatalf("merge of empty runs returned %v", got)
	}
}
