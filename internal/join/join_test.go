package join

import (
	"math/rand"
	"spjoin/internal/buffer"
	"testing"

	"spjoin/internal/geom"
	"spjoin/internal/rtree"
	"spjoin/internal/storage"
)

func smallParams() rtree.Params {
	return rtree.Params{MaxDirEntries: 6, MaxDataEntries: 6, MinFillFrac: 0.4, ReinsertFrac: 0.3}
}

func randItems(n int, seed int64, world, maxSide float64) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		x := rng.Float64() * world
		y := rng.Float64() * world
		items[i] = rtree.Item{
			ID:   rtree.EntryID(i),
			Rect: geom.NewRect(x, y, x+rng.Float64()*maxSide, y+rng.Float64()*maxSide),
		}
	}
	return items
}

func buildTree(t *testing.T, items []rtree.Item) *rtree.Tree {
	t.Helper()
	tr := rtree.New(smallParams())
	for _, it := range items {
		tr.Insert(it.ID, it.Rect)
	}
	if err := tr.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	return tr
}

type pairKey struct{ r, s rtree.EntryID }

func bruteForceJoin(rs, ss []rtree.Item) map[pairKey]bool {
	out := map[pairKey]bool{}
	for _, r := range rs {
		for _, s := range ss {
			if r.Rect.Intersects(s.Rect) {
				out[pairKey{r.ID, s.ID}] = true
			}
		}
	}
	return out
}

func candidateSet(cands []Candidate) map[pairKey]bool {
	out := make(map[pairKey]bool, len(cands))
	for _, c := range cands {
		out[pairKey{c.R, c.S}] = true
	}
	return out
}

func assertSameSet(t *testing.T, got map[pairKey]bool, want map[pairKey]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("candidate count %d, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing candidate %v", k)
		}
	}
}

func TestSequentialMatchesBruteForce(t *testing.T) {
	rs := randItems(400, 1, 100, 5)
	ss := randItems(350, 2, 100, 5)
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	got := candidateSet(Sequential(tr, ts, Options{}))
	assertSameSet(t, got, bruteForceJoin(rs, ss))
}

func TestSequentialNoDuplicates(t *testing.T) {
	rs := randItems(300, 3, 50, 5)
	ss := randItems(300, 4, 50, 5)
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	cands := Sequential(tr, ts, Options{})
	seen := map[pairKey]bool{}
	for _, c := range cands {
		k := pairKey{c.R, c.S}
		if seen[k] {
			t.Fatalf("duplicate candidate %v", k)
		}
		seen[k] = true
	}
}

func TestOptionsDoNotChangeResult(t *testing.T) {
	rs := randItems(300, 5, 100, 6)
	ss := randItems(280, 6, 100, 6)
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	want := candidateSet(Sequential(tr, ts, Options{}))
	variants := []Options{
		{DisableRestriction: true},
		{NestedLoops: true},
		{DisableRestriction: true, NestedLoops: true},
	}
	for i, opts := range variants {
		got := candidateSet(Sequential(tr, ts, opts))
		if len(got) != len(want) {
			t.Fatalf("variant %d: %d candidates, want %d", i, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("variant %d missing %v", i, k)
			}
		}
	}
}

func TestRestrictionReducesComparisons(t *testing.T) {
	rs := randItems(2000, 7, 100, 3)
	ss := randItems(2000, 8, 100, 3)
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	count := func(opts Options) int {
		total := 0
		root, _ := RootPair(tr, ts)
		e := Engine{
			Src:           DirectSource{R: tr, S: ts},
			Opts:          opts,
			OnComparisons: func(n int) { total += n },
		}
		e.Run(root)
		return total
	}
	sweep := count(Options{})
	nested := count(Options{NestedLoops: true})
	if sweep >= nested {
		t.Errorf("plane sweep used %d comparisons, nested loops %d — sweep should win", sweep, nested)
	}
}

func TestUnequalHeightTrees(t *testing.T) {
	rs := randItems(500, 9, 100, 5)
	ss := randItems(10, 10, 100, 5) // tiny tree, lower height
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	if tr.Height() == ts.Height() {
		t.Skip("trees accidentally same height")
	}
	got := candidateSet(Sequential(tr, ts, Options{}))
	assertSameSet(t, got, bruteForceJoin(rs, ss))
	// And mirrored.
	got2 := candidateSet(Sequential(ts, tr, Options{}))
	want2 := map[pairKey]bool{}
	for k := range bruteForceJoin(ss, rs) {
		want2[k] = true
	}
	assertSameSet(t, got2, want2)
}

func TestEmptyTrees(t *testing.T) {
	empty := rtree.New(smallParams())
	full := buildTree(t, randItems(50, 11, 10, 2))
	if got := Sequential(empty, full, Options{}); got != nil {
		t.Errorf("empty R side returned %d candidates", len(got))
	}
	if got := Sequential(full, empty, Options{}); got != nil {
		t.Errorf("empty S side returned %d candidates", len(got))
	}
	if got := Sequential(empty, empty, Options{}); got != nil {
		t.Errorf("both empty returned %d candidates", len(got))
	}
}

func TestDisjointTrees(t *testing.T) {
	rs := randItems(50, 12, 10, 1)
	ss := make([]rtree.Item, 50)
	for i, it := range randItems(50, 13, 10, 1) {
		r := it.Rect
		ss[i] = rtree.Item{ID: it.ID,
			Rect: geom.NewRect(r.MinX+1000, r.MinY+1000, r.MaxX+1000, r.MaxY+1000)}
	}
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	if got := Sequential(tr, ts, Options{}); len(got) != 0 {
		t.Fatalf("disjoint trees returned %d candidates", len(got))
	}
	if _, ok := RootPair(tr, ts); ok {
		t.Fatal("RootPair returned ok for disjoint trees")
	}
}

func TestSelfJoin(t *testing.T) {
	items := randItems(200, 14, 50, 4)
	tr := buildTree(t, items)
	got := candidateSet(Sequential(tr, tr, Options{}))
	want := bruteForceJoin(items, items)
	assertSameSet(t, got, want)
	// Every object intersects itself, so at least n candidates.
	if len(got) < len(items) {
		t.Fatalf("self join returned %d < %d candidates", len(got), len(items))
	}
}

func TestSTRTreeJoin(t *testing.T) {
	rs := randItems(1000, 15, 100, 4)
	ss := randItems(900, 16, 100, 4)
	tr := rtree.BulkLoadSTR(smallParams(), rs, 0.8)
	ts := rtree.BulkLoadSTR(smallParams(), ss, 0.8)
	got := candidateSet(Sequential(tr, ts, Options{}))
	assertSameSet(t, got, bruteForceJoin(rs, ss))
}

func TestCandidateRectsReported(t *testing.T) {
	rs := []rtree.Item{{ID: 1, Rect: geom.NewRect(0, 0, 2, 2)}}
	ss := []rtree.Item{{ID: 9, Rect: geom.NewRect(1, 1, 3, 3)}}
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	cands := Sequential(tr, ts, Options{})
	if len(cands) != 1 {
		t.Fatalf("got %d candidates", len(cands))
	}
	c := cands[0]
	if c.R != 1 || c.S != 9 || c.RRect != rs[0].Rect || c.SRect != ss[0].Rect {
		t.Fatalf("candidate = %+v", c)
	}
}

// countingSource wraps a Source and records every access.
type countingSource struct {
	inner    Source
	accesses []storage.PageID
}

func (c *countingSource) Node(side buffer.TreeID, page storage.PageID, level int) *rtree.Node {
	c.accesses = append(c.accesses, page)
	return c.inner.Node(side, page, level)
}

func TestEngineAccessCountBounded(t *testing.T) {
	// Every stack pop fetches exactly two nodes, so the access count is even
	// and at least 2 for a non-empty join; the engine must not refetch nodes
	// beyond its pair visits.
	rs := randItems(300, 17, 100, 3)
	ss := randItems(300, 18, 100, 3)
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	src := &countingSource{inner: DirectSource{R: tr, S: ts}}
	root, ok := RootPair(tr, ts)
	if !ok {
		t.Skip("no root pair in this draw")
	}
	pairs := 0
	e := Engine{
		Src:         src,
		OnCandidate: func(Candidate) {},
	}
	// Count pairs visited via a parallel run with a counting stack.
	e.Run(root)
	if len(src.accesses) == 0 || len(src.accesses)%2 != 0 {
		t.Fatalf("access count %d must be positive and even", len(src.accesses))
	}
	_ = pairs
}

func TestExpandComparisonsReported(t *testing.T) {
	rs := randItems(100, 19, 50, 4)
	ss := randItems(100, 20, 50, 4)
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	root, ok := RootPair(tr, ts)
	if !ok {
		t.Skip("no overlap")
	}
	total := 0
	e := Engine{
		Src:           DirectSource{R: tr, S: ts},
		OnCandidate:   func(Candidate) {},
		OnComparisons: func(n int) { total += n },
	}
	e.Run(root)
	if total <= 0 {
		t.Fatalf("comparisons = %d, want > 0", total)
	}
}

func TestNodePairMaxLevel(t *testing.T) {
	p := NodePair{RLevel: 2, SLevel: 1}
	if p.MaxLevel() != 2 {
		t.Fatalf("MaxLevel = %d, want 2", p.MaxLevel())
	}
	p = NodePair{RLevel: 0, SLevel: 3}
	if p.MaxLevel() != 3 {
		t.Fatalf("MaxLevel = %d, want 3", p.MaxLevel())
	}
}

func TestCreateTasksGeneric(t *testing.T) {
	rs := randItems(800, 21, 100, 4)
	ss := randItems(800, 22, 100, 4)
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	root, ok := RootPair(tr, ts)
	if !ok {
		t.Skip("no overlap")
	}
	src := DirectSource{R: tr, S: ts}
	tasks, level, comparisons := CreateTasks(src, root, Options{}, 16)
	if comparisons <= 0 {
		t.Fatal("no comparisons counted")
	}
	if len(tasks) < 16 && level != 0 {
		t.Fatalf("%d tasks at level %d", len(tasks), level)
	}
	// Joining every task must reproduce the sequential result.
	got := map[pairKey]bool{}
	for _, task := range tasks {
		e := Engine{Src: src, OnCandidate: func(c Candidate) {
			got[pairKey{c.R, c.S}] = true
		}}
		e.Run(task)
	}
	assertSameSet(t, got, bruteForceJoin(rs, ss))
}

func TestCreateTasksLeafOnlyTrees(t *testing.T) {
	// Trees of height 1: the root pair is leaf/leaf and cannot divide.
	rs := randItems(4, 23, 10, 2)
	ss := randItems(4, 24, 10, 2)
	tr, ts := buildTree(t, rs), buildTree(t, ss)
	root, ok := RootPair(tr, ts)
	if !ok {
		t.Skip("no overlap")
	}
	tasks, level, _ := CreateTasks(DirectSource{R: tr, S: ts}, root, Options{}, 8)
	if level != 0 {
		t.Fatalf("level = %d, want 0", level)
	}
	if len(tasks) == 0 {
		t.Fatal("no tasks at all")
	}
}
