package join

import (
	"fmt"

	"spjoin/internal/buffer"
	"spjoin/internal/rtree"
	"spjoin/internal/storage"
)

// Out-of-core join: the same [BKS 93] filter join over trees persisted in
// real page files, with node accesses going through real buffer pools.

// pagedSource adapts two PagedTrees to the Source interface, capturing the
// first I/O error (the traversal then degenerates to empty nodes and
// terminates quickly).
type pagedSource struct {
	r, s *rtree.PagedTree
	err  error
}

func (p *pagedSource) Node(side buffer.TreeID, page storage.PageID, level int) *rtree.Node {
	if p.err != nil {
		return &rtree.Node{Page: page, Level: level}
	}
	var n *rtree.Node
	var err error
	if side == SideR {
		n, err = p.r.Node(page)
	} else {
		n, err = p.s.Node(page)
	}
	if err != nil {
		p.err = err
		return &rtree.Node{Page: page, Level: level}
	}
	return n
}

// NewPagedSource returns a Source over two persisted trees plus an error
// check to call after the traversal. The source is for use by a single
// goroutine; create one per worker (the underlying buffer pools are safe
// for concurrent use).
func NewPagedSource(r, s *rtree.PagedTree) (Source, func() error) {
	src := &pagedSource{r: r, s: s}
	return src, func() error { return src.err }
}

// PagedIOStats reports the physical I/O of an out-of-core join.
type PagedIOStats struct {
	RHits, RMisses int64
	SHits, SMisses int64
}

// Reads returns the number of physical page reads.
func (s PagedIOStats) Reads() int64 { return s.RMisses + s.SMisses }

// PagedSequential runs the filter join over two persisted trees, buffering
// through their pools, and returns the candidates plus physical I/O
// statistics.
func PagedSequential(r, s *rtree.PagedTree, opts Options) ([]Candidate, PagedIOStats, error) {
	var stats PagedIOStats
	rHits0, rMiss0 := r.Pool().Hits(), r.Pool().Misses()
	sHits0, sMiss0 := s.Pool().Hits(), s.Pool().Misses()

	if r.Len() == 0 || s.Len() == 0 {
		return nil, stats, nil
	}
	rRoot, err := r.Node(r.Root())
	if err != nil {
		return nil, stats, err
	}
	sRoot, err := s.Node(s.Root())
	if err != nil {
		return nil, stats, err
	}
	if !rRoot.MBR().Intersects(sRoot.MBR()) {
		return nil, stats, nil
	}

	src := &pagedSource{r: r, s: s}
	var out []Candidate
	e := Engine{
		Src:         src,
		Opts:        opts,
		OnCandidate: func(c Candidate) { out = append(out, c) },
	}
	e.Run(NodePair{
		RPage: r.Root(), SPage: s.Root(),
		RLevel: rRoot.Level, SLevel: sRoot.Level,
	})
	if src.err != nil {
		return nil, stats, fmt.Errorf("join: paged traversal: %w", src.err)
	}
	stats.RHits = r.Pool().Hits() - rHits0
	stats.RMisses = r.Pool().Misses() - rMiss0
	stats.SHits = s.Pool().Hits() - sHits0
	stats.SMisses = s.Pool().Misses() - sMiss0
	return out, stats, nil
}
