// Package join implements the sequential R*-tree spatial join of Brinkhoff,
// Kriegel and Seeger [BKS 93], the starting point of the paper's parallel
// algorithms. Two R*-trees are traversed synchronously depth-first; at every
// node pair the qualifying (intersecting) entry pairs are computed with the
// two CPU tuning techniques of §2.2:
//
//  1. search-space restriction: only entries intersecting the intersection
//     of the two nodes' MBRs can contribute;
//  2. a plane-sweep over the entries sorted by lower x-value, which emits
//     the qualifying pairs in "local plane-sweep order" — the order in which
//     pages are subsequently read, preserving spatial locality in the LRU
//     buffer.
//
// The same expansion primitive drives the parallel executors of packages
// parjoin and parnative.
package join

import (
	"spjoin/internal/buffer"
	"spjoin/internal/geom"
	"spjoin/internal/metrics"
	"spjoin/internal/rtree"
	"spjoin/internal/storage"
)

// Side names the two join operands; it doubles as the buffer-layer tree id.
const (
	SideR buffer.TreeID = 0
	SideS buffer.TreeID = 1
)

// Source provides node access during the join. Implementations may charge
// virtual-time or real costs per access (buffers, disks, path buffers); the
// returned node data is always the in-memory truth.
type Source interface {
	Node(side buffer.TreeID, page storage.PageID, level int) *rtree.Node
}

// DirectSource reads nodes straight from the trees with no cost accounting.
type DirectSource struct {
	R, S *rtree.Tree
}

// Node implements Source.
func (d DirectSource) Node(side buffer.TreeID, page storage.PageID, _ int) *rtree.Node {
	if side == SideR {
		return d.R.Node(page)
	}
	return d.S.Node(page)
}

// Candidate is one result of the filter step: a pair of data entries whose
// MBRs intersect. The refinement step decides whether it is an answer or a
// false hit.
type Candidate struct {
	R, S         rtree.EntryID
	RRect, SRect geom.Rect
}

// NodePair references two subtrees whose roots' MBRs intersect — the unit
// of work throughout the parallel algorithms ("a task refers to performing
// the sequential algorithm on a pair of subtrees").
type NodePair struct {
	RPage, SPage   storage.PageID
	RLevel, SLevel int
}

// MaxLevel returns the higher of the two node levels; reassignable work is
// ranked by it.
func (p NodePair) MaxLevel() int {
	if p.RLevel > p.SLevel {
		return p.RLevel
	}
	return p.SLevel
}

// Options toggles the §2.2 tuning techniques, kept switchable for the
// ablation benchmarks.
type Options struct {
	// DisableRestriction skips the search-space restriction.
	DisableRestriction bool
	// NestedLoops replaces the plane-sweep by the quadratic nested-loops
	// pair enumeration (which also destroys the plane-sweep page order).
	NestedLoops bool
}

// Scratch holds the reusable buffers of the node-pair expansion kernel.
// A zero Scratch is ready to use; after a few expansions the buffers reach
// steady-state capacity and Expand performs no heap allocation per node
// pair. A Scratch is for use by a single goroutine (one per worker).
type Scratch struct {
	rIdx, sIdx []int32          // restricted entry sets
	rMask      []uint64         // batch-intersect bitmask, R side / one-sided
	sMask      []uint64         // batch-intersect bitmask, S side
	hits       []geom.IndexPair // sweep output batch
	cands      []Candidate      // leaf/leaf results of the last Expand
	pairs      []NodePair       // directory results of the last Expand
}

// growMask returns m resized to hold a bitmask over n rects, reallocating
// only when the capacity is insufficient (steady state: never).
func growMask(m []uint64, n int) []uint64 {
	w := geom.MaskWords(n)
	if cap(m) < w {
		return make([]uint64, w, w+8)
	}
	return m[:w]
}

// Expand computes the qualifying child pairs of the node pair (nr, ns) in
// local plane-sweep order. Leaf/leaf pairs are returned as candidates; all
// other combinations as NodePairs to descend into. Nodes of unequal level
// (possible with trees of different height) descend on the deeper side
// only. comparisons is the number of rectangle comparisons performed, which
// drives the CPU cost model — it is a function of the nodes and opts alone,
// never of the caching or batching below.
//
// The returned slices are views into the scratch, valid until the next
// Expand call; callers must copy what they keep.
//
// The kernel reads each node through its sweep cache (rtree.Node.SweepView):
// the SoA rect view, the MinX-sorted entry order, and the MBR are computed
// once per node at build/load time, so steady-state expansion neither sorts
// nor copies entry rectangles. Restricting a set of entries that is already
// in sweep order yields the restricted set in sweep order, which is what
// lets the cached order replace the per-visit sort of the original code.
func (sc *Scratch) Expand(nr, ns *rtree.Node, opts Options) (cands []Candidate, pairs []NodePair, comparisons int) {
	sc.cands = sc.cands[:0]
	sc.pairs = sc.pairs[:0]
	switch {
	case nr.Level == 0 && ns.Level == 0:
		comparisons = sc.expandEqual(nr, ns, opts, true)
		return sc.cands, nil, comparisons
	case nr.Level == ns.Level:
		comparisons = sc.expandEqual(nr, ns, opts, false)
		return nil, sc.pairs, comparisons
	case nr.Level > ns.Level:
		comparisons = sc.expandOneSided(nr, ns, opts, true)
		return nil, sc.pairs, comparisons
	default: // ns deeper on the R side
		comparisons = sc.expandOneSided(ns, nr, opts, false)
		return nil, sc.pairs, comparisons
	}
}

// expandEqual enumerates intersecting entry pairs of two same-level nodes
// into sc.cands (leaf) or sc.pairs (directory).
func (sc *Scratch) expandEqual(nr, ns *rtree.Node, opts Options, leaf bool) int {
	comparisons := 0
	rRects, rOrder, rMBR := nr.SweepView()
	sRects, sOrder, sMBR := ns.SweepView()
	rPlanes, _, _ := nr.PlanesView()
	sPlanes, _, _ := ns.PlanesView()

	if opts.NestedLoops {
		// Ablation baseline: quadratic enumeration in entry order (which
		// also destroys the plane-sweep page order).
		rIdx, sIdx := sc.rIdx[:0], sc.sIdx[:0]
		if opts.DisableRestriction {
			for i := range rRects {
				rIdx = append(rIdx, int32(i))
			}
			for j := range sRects {
				sIdx = append(sIdx, int32(j))
			}
		} else {
			inter := rMBR.Intersection(sMBR)
			comparisons += len(rRects) + len(sRects)
			for i := range rRects {
				if rRects[i].Intersects(inter) {
					rIdx = append(rIdx, int32(i))
				}
			}
			for j := range sRects {
				if sRects[j].Intersects(inter) {
					sIdx = append(sIdx, int32(j))
				}
			}
		}
		sc.rIdx, sc.sIdx = rIdx, sIdx
		for _, i := range rIdx {
			for _, j := range sIdx {
				comparisons++
				if rRects[i].Intersects(sRects[j]) {
					sc.emit(nr, ns, i, j, leaf)
				}
			}
		}
		return comparisons
	}

	// Technique (i): restrict both entry sets to the intersection of the
	// node MBRs. The tests run through the vectorized batch kernel over the
	// cached coordinate planes (the predicate is bit-identical to
	// Rect.Intersects, so the comparison count is unchanged — the quantized
	// prefilter only skips computing blocks whose bits are all zero);
	// walking the cached order against the bitmask keeps the restricted
	// sets in ascending MinX for free.
	rIdx, sIdx := sc.rIdx[:0], sc.sIdx[:0]
	if opts.DisableRestriction {
		rIdx = append(rIdx, rOrder...)
		sIdx = append(sIdx, sOrder...)
	} else {
		inter := rMBR.Intersection(sMBR)
		comparisons += len(rRects) + len(sRects)
		sc.rMask = growMask(sc.rMask, len(rRects))
		sc.sMask = growMask(sc.sMask, len(sRects))
		geom.IntersectBatchPlanes(inter, rPlanes, sc.rMask)
		geom.IntersectBatchPlanes(inter, sPlanes, sc.sMask)
		for _, i := range rOrder {
			if sc.rMask[i>>6]>>(uint(i)&63)&1 != 0 {
				rIdx = append(rIdx, i)
			}
		}
		for _, j := range sOrder {
			if sc.sMask[j>>6]>>(uint(j)&63)&1 != 0 {
				sIdx = append(sIdx, j)
			}
		}
	}
	sc.rIdx, sc.sIdx = rIdx, sIdx

	// Technique (ii): plane-sweep in ascending MinX over the coordinate
	// planes.
	var n int
	sc.hits, n = geom.SweepPairsPlanes(rPlanes, sPlanes, rIdx, sIdx, sc.hits[:0])
	comparisons += n
	for _, h := range sc.hits {
		sc.emit(nr, ns, h.R, h.S, leaf)
	}
	return comparisons
}

// emit records one qualifying entry pair (i of nr, j of ns).
func (sc *Scratch) emit(nr, ns *rtree.Node, i, j int32, leaf bool) {
	er, es := &nr.Entries[i], &ns.Entries[j]
	if leaf {
		sc.cands = append(sc.cands, Candidate{
			R: er.Obj, S: es.Obj, RRect: er.Rect, SRect: es.Rect,
		})
		return
	}
	sc.pairs = append(sc.pairs, NodePair{
		RPage: er.Child, SPage: es.Child,
		RLevel: nr.Level - 1, SLevel: ns.Level - 1,
	})
}

// expandOneSided enumerates the entries of the deeper node that intersect
// the other subtree's MBR, in ascending MinX (sweep order). rDeeper says
// which side descends.
func (sc *Scratch) expandOneSided(deep, other *rtree.Node, opts Options, rDeeper bool) int {
	rects, order, _ := deep.SweepView()
	_, _, otherMBR := other.SweepView()
	comparisons := len(rects)
	if opts.NestedLoops {
		// Entry order instead of sweep order.
		for i := range rects {
			if rects[i].Intersects(otherMBR) {
				sc.emitOneSided(deep, other, int32(i), rDeeper)
			}
		}
		return comparisons
	}
	// Batch-test the whole node against the other subtree's MBR through the
	// vectorized planes kernel, then walk the cached order against the
	// bitmask (sweep order, same predicate).
	planes, _, _ := deep.PlanesView()
	sc.rMask = growMask(sc.rMask, len(rects))
	geom.IntersectBatchPlanes(otherMBR, planes, sc.rMask)
	for _, i := range order {
		if sc.rMask[i>>6]>>(uint(i)&63)&1 != 0 {
			sc.emitOneSided(deep, other, i, rDeeper)
		}
	}
	return comparisons
}

// emitOneSided records a pair descending into entry i of the deeper node.
func (sc *Scratch) emitOneSided(deep, other *rtree.Node, i int32, rDeeper bool) {
	e := &deep.Entries[i]
	if rDeeper {
		sc.pairs = append(sc.pairs, NodePair{
			RPage: e.Child, SPage: other.Page,
			RLevel: deep.Level - 1, SLevel: other.Level,
		})
		return
	}
	sc.pairs = append(sc.pairs, NodePair{
		RPage: other.Page, SPage: e.Child,
		RLevel: other.Level, SLevel: deep.Level - 1,
	})
}

// Expand is the callback form of Scratch.Expand, kept for call sites outside
// the hot path. It allocates a scratch per call; performance-sensitive
// callers hold a Scratch (or an Engine) instead.
func Expand(nr, ns *rtree.Node, opts Options,
	emitCandidate func(Candidate), emitPair func(NodePair)) (comparisons int) {
	var sc Scratch
	cands, pairs, comparisons := sc.Expand(nr, ns, opts)
	for _, c := range cands {
		emitCandidate(c)
	}
	for _, p := range pairs {
		emitPair(p)
	}
	return comparisons
}

// Metrics bundles the filter-join counters of one Engine (or any caller of
// the expansion kernel): node pairs expanded, rectangle comparisons (the
// paper's CPU cost driver), candidates emitted. All fields are nil-safe.
type Metrics struct {
	Pairs       *metrics.Counter
	Comparisons *metrics.Counter
	Candidates  *metrics.Counter
}

// NewMetrics registers the join counters under prefix (for example
// "sim.join") in reg. A nil registry yields inert instruments.
func NewMetrics(reg *metrics.Registry, prefix string) *Metrics {
	return &Metrics{
		Pairs:       reg.Counter(prefix + ".pairs_expanded"),
		Comparisons: reg.Counter(prefix + ".comparisons"),
		Candidates:  reg.Counter(prefix + ".candidates"),
	}
}

// observe records one expansion; kept out of line so Engine.Run's loop
// stays branch-light when Met is nil.
func (m *Metrics) observe(cands, comparisons int) {
	m.Pairs.Inc()
	m.Comparisons.Add(int64(comparisons))
	m.Candidates.Add(int64(cands))
}

// Engine runs the sequential [BKS 93] filter join depth-first from the two
// roots. Costs are whatever the Source charges; comparisons are reported
// through OnComparisons if set.
//
// The engine owns a Scratch and a traversal stack, both reused across Run
// calls: a warmed-up engine performs zero heap allocations per node pair
// (the candidate hooks may of course allocate on their side). Engines are
// for use by a single goroutine — give each worker its own.
type Engine struct {
	Src  Source
	Opts Options
	// OnCandidates, when set, receives each leaf pair's filter results as
	// one batch (a view valid only during the call) — the cheapest hook for
	// bulk consumers. Otherwise OnCandidate receives them one at a time.
	OnCandidates  func([]Candidate)
	OnCandidate   func(Candidate)
	OnComparisons func(int) // optional CPU accounting hook
	// Met, when set, receives the run's counters (pairs expanded,
	// comparisons, candidates). Costs one branch per node pair when nil.
	Met *Metrics

	scratch Scratch
	stack   []NodePair
}

// Run joins the subtrees rooted at the given pair (normally the two roots).
// It performs a depth-first traversal; at every node pair, qualifying child
// pairs are visited in local plane-sweep order.
func (e *Engine) Run(root NodePair) {
	// Explicit stack; children pushed in reverse so they pop in sweep order.
	stack := append(e.stack[:0], root)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		nr := e.Src.Node(SideR, p.RPage, p.RLevel)
		ns := e.Src.Node(SideS, p.SPage, p.SLevel)
		cands, children, comparisons := e.scratch.Expand(nr, ns, e.Opts)
		if len(cands) > 0 {
			// The candidate-hook dispatch is per batch, not per candidate.
			if e.OnCandidates != nil {
				e.OnCandidates(cands)
			} else if e.OnCandidate != nil {
				for _, c := range cands {
					e.OnCandidate(c)
				}
			}
		}
		if e.OnComparisons != nil {
			e.OnComparisons(comparisons)
		}
		if e.Met != nil {
			e.Met.observe(len(cands), comparisons)
		}
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i])
		}
	}
	e.stack = stack[:0]
}

// RootPair returns the NodePair of two trees' roots, or false if the trees
// cannot join (either empty or with disjoint MBRs).
func RootPair(r, s *rtree.Tree) (NodePair, bool) {
	if r.Len() == 0 || s.Len() == 0 || !r.MBR().Intersects(s.MBR()) {
		return NodePair{}, false
	}
	return NodePair{
		RPage: r.Root(), SPage: s.Root(),
		RLevel: r.Node(r.Root()).Level, SLevel: s.Node(s.Root()).Level,
	}, true
}

// Sequential runs the whole filter join of trees r and s with a
// cost-free source and returns the candidate set. This is the correctness
// baseline every parallel variant must reproduce.
func Sequential(r, s *rtree.Tree, opts Options) []Candidate {
	var out []Candidate
	root, ok := RootPair(r, s)
	if !ok {
		return nil
	}
	e := Engine{
		Src:          DirectSource{R: r, S: s},
		Opts:         opts,
		OnCandidates: func(cs []Candidate) { out = append(out, cs...) },
	}
	e.Run(root)
	return out
}
