// Package join implements the sequential R*-tree spatial join of Brinkhoff,
// Kriegel and Seeger [BKS 93], the starting point of the paper's parallel
// algorithms. Two R*-trees are traversed synchronously depth-first; at every
// node pair the qualifying (intersecting) entry pairs are computed with the
// two CPU tuning techniques of §2.2:
//
//  1. search-space restriction: only entries intersecting the intersection
//     of the two nodes' MBRs can contribute;
//  2. a plane-sweep over the entries sorted by lower x-value, which emits
//     the qualifying pairs in "local plane-sweep order" — the order in which
//     pages are subsequently read, preserving spatial locality in the LRU
//     buffer.
//
// The same expansion primitive drives the parallel executors of packages
// parjoin and parnative.
package join

import (
	"spjoin/internal/buffer"
	"spjoin/internal/geom"
	"spjoin/internal/rtree"
	"spjoin/internal/storage"
)

// Side names the two join operands; it doubles as the buffer-layer tree id.
const (
	SideR buffer.TreeID = 0
	SideS buffer.TreeID = 1
)

// Source provides node access during the join. Implementations may charge
// virtual-time or real costs per access (buffers, disks, path buffers); the
// returned node data is always the in-memory truth.
type Source interface {
	Node(side buffer.TreeID, page storage.PageID, level int) *rtree.Node
}

// DirectSource reads nodes straight from the trees with no cost accounting.
type DirectSource struct {
	R, S *rtree.Tree
}

// Node implements Source.
func (d DirectSource) Node(side buffer.TreeID, page storage.PageID, _ int) *rtree.Node {
	if side == SideR {
		return d.R.Node(page)
	}
	return d.S.Node(page)
}

// Candidate is one result of the filter step: a pair of data entries whose
// MBRs intersect. The refinement step decides whether it is an answer or a
// false hit.
type Candidate struct {
	R, S         rtree.EntryID
	RRect, SRect geom.Rect
}

// NodePair references two subtrees whose roots' MBRs intersect — the unit
// of work throughout the parallel algorithms ("a task refers to performing
// the sequential algorithm on a pair of subtrees").
type NodePair struct {
	RPage, SPage   storage.PageID
	RLevel, SLevel int
}

// MaxLevel returns the higher of the two node levels; reassignable work is
// ranked by it.
func (p NodePair) MaxLevel() int {
	if p.RLevel > p.SLevel {
		return p.RLevel
	}
	return p.SLevel
}

// Options toggles the §2.2 tuning techniques, kept switchable for the
// ablation benchmarks.
type Options struct {
	// DisableRestriction skips the search-space restriction.
	DisableRestriction bool
	// NestedLoops replaces the plane-sweep by the quadratic nested-loops
	// pair enumeration (which also destroys the plane-sweep page order).
	NestedLoops bool
}

// Expand computes the qualifying child pairs of the node pair (nr, ns) in
// local plane-sweep order. Leaf/leaf pairs are emitted as candidates; all
// other combinations as NodePairs to descend into. Nodes of unequal level
// (possible with trees of different height) descend on the deeper side
// only. The returned count is the number of rectangle comparisons performed,
// which drives the CPU cost model.
func Expand(nr, ns *rtree.Node, opts Options,
	emitCandidate func(Candidate), emitPair func(NodePair)) (comparisons int) {
	switch {
	case nr.Level == 0 && ns.Level == 0:
		return expandEqual(nr, ns, opts, func(er, es *rtree.Entry) {
			emitCandidate(Candidate{R: er.Obj, S: es.Obj, RRect: er.Rect, SRect: es.Rect})
		})
	case nr.Level == ns.Level:
		return expandEqual(nr, ns, opts, func(er, es *rtree.Entry) {
			emitPair(NodePair{
				RPage: er.Child, SPage: es.Child,
				RLevel: nr.Level - 1, SLevel: ns.Level - 1,
			})
		})
	case nr.Level > ns.Level:
		return expandOneSided(nr, ns.MBR(), opts, func(er *rtree.Entry) {
			emitPair(NodePair{
				RPage: er.Child, SPage: ns.Page,
				RLevel: nr.Level - 1, SLevel: ns.Level,
			})
		})
	default: // ns deeper on the R side
		return expandOneSided(ns, nr.MBR(), opts, func(es *rtree.Entry) {
			emitPair(NodePair{
				RPage: nr.Page, SPage: es.Child,
				RLevel: nr.Level, SLevel: ns.Level - 1,
			})
		})
	}
}

// expandEqual enumerates intersecting entry pairs of two same-level nodes.
func expandEqual(nr, ns *rtree.Node, opts Options, emit func(er, es *rtree.Entry)) int {
	comparisons := 0
	rRects := entryRects(nr)
	sRects := entryRects(ns)

	// Technique (i): restrict both entry sets to the intersection of the
	// node MBRs.
	rIdx := allIndices(len(rRects))
	sIdx := allIndices(len(sRects))
	if !opts.DisableRestriction {
		inter := nr.MBR().Intersection(ns.MBR())
		comparisons += len(rRects) + len(sRects)
		rIdx = filterIndices(rRects, rIdx, inter)
		sIdx = filterIndices(sRects, sIdx, inter)
	}

	if opts.NestedLoops {
		for _, i := range rIdx {
			for _, j := range sIdx {
				comparisons++
				if rRects[i].Intersects(sRects[j]) {
					emit(&nr.Entries[i], &ns.Entries[j])
				}
			}
		}
		return comparisons
	}

	// Technique (ii): plane-sweep in ascending MinX.
	geom.SortRectsByMinX(rRects, rIdx)
	geom.SortRectsByMinX(sRects, sIdx)
	comparisons += geom.SweepPairsIndexed(rRects, sRects, rIdx, sIdx,
		func(i, j int) bool {
			emit(&nr.Entries[i], &ns.Entries[j])
			return true
		})
	return comparisons
}

// expandOneSided enumerates the entries of node n that intersect the other
// subtree's MBR, in ascending MinX (sweep order).
func expandOneSided(n *rtree.Node, other geom.Rect, opts Options, emit func(e *rtree.Entry)) int {
	comparisons := 0
	rects := entryRects(n)
	idx := allIndices(len(rects))
	if !opts.NestedLoops {
		geom.SortRectsByMinX(rects, idx)
	}
	for _, i := range idx {
		comparisons++
		if rects[i].Intersects(other) {
			emit(&n.Entries[i])
		}
	}
	return comparisons
}

func entryRects(n *rtree.Node) []geom.Rect {
	rects := make([]geom.Rect, len(n.Entries))
	for i := range n.Entries {
		rects[i] = n.Entries[i].Rect
	}
	return rects
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func filterIndices(rects []geom.Rect, idx []int, window geom.Rect) []int {
	out := idx[:0]
	for _, i := range idx {
		if rects[i].Intersects(window) {
			out = append(out, i)
		}
	}
	return out
}

// Engine runs the sequential [BKS 93] filter join depth-first from the two
// roots. Costs are whatever the Source charges; comparisons are reported
// through OnComparisons if set.
type Engine struct {
	Src           Source
	Opts          Options
	OnCandidate   func(Candidate) // receives every filter-step result
	OnComparisons func(int)       // optional CPU accounting hook
}

// Run joins the subtrees rooted at the given pair (normally the two roots).
// It performs a depth-first traversal; at every node pair, qualifying child
// pairs are visited in local plane-sweep order.
func (e *Engine) Run(root NodePair) {
	// Explicit stack; children pushed in reverse so they pop in sweep order.
	stack := []NodePair{root}
	var children []NodePair
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		nr := e.Src.Node(SideR, p.RPage, p.RLevel)
		ns := e.Src.Node(SideS, p.SPage, p.SLevel)
		children = children[:0]
		comparisons := Expand(nr, ns, e.Opts,
			func(c Candidate) {
				if e.OnCandidate != nil {
					e.OnCandidate(c)
				}
			},
			func(np NodePair) { children = append(children, np) })
		if e.OnComparisons != nil {
			e.OnComparisons(comparisons)
		}
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i])
		}
	}
}

// RootPair returns the NodePair of two trees' roots, or false if the trees
// cannot join (either empty or with disjoint MBRs).
func RootPair(r, s *rtree.Tree) (NodePair, bool) {
	if r.Len() == 0 || s.Len() == 0 || !r.MBR().Intersects(s.MBR()) {
		return NodePair{}, false
	}
	return NodePair{
		RPage: r.Root(), SPage: s.Root(),
		RLevel: r.Node(r.Root()).Level, SLevel: s.Node(s.Root()).Level,
	}, true
}

// Sequential runs the whole filter join of trees r and s with a
// cost-free source and returns the candidate set. This is the correctness
// baseline every parallel variant must reproduce.
func Sequential(r, s *rtree.Tree, opts Options) []Candidate {
	var out []Candidate
	root, ok := RootPair(r, s)
	if !ok {
		return nil
	}
	e := Engine{
		Src:         DirectSource{R: r, S: s},
		Opts:        opts,
		OnCandidate: func(c Candidate) { out = append(out, c) },
	}
	e.Run(root)
	return out
}
