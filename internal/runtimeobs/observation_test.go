// Package runtimeobs_test holds the cross-package observation-only proof:
// it imports the engines, which the library package cannot.
package runtimeobs_test

import (
	"testing"
	"time"

	"spjoin/internal/metrics"
	"spjoin/internal/partjoin"
	"spjoin/internal/rtree"
	"spjoin/internal/runtimeobs"
	"spjoin/internal/tiger"
)

// goldenCounters are the deterministic partjoin metrics a fixed Sorted
// join must reproduce bit-identically run over run (wall_ms is excluded:
// it is nondeterministic with or without sampling).
var goldenCounters = []string{
	"partjoin.partitions",
	"partjoin.duplicates_suppressed",
	"partjoin.comparisons",
	"partjoin.candidates",
	"partjoin.refined_tiles",
	"partjoin.subtiles",
}

func joinOnce(tb testing.TB, r, s []rtree.Item, sample bool) ([]int64, map[string]int64, runtimeobs.Health) {
	tb.Helper()
	var j partjoin.Joiner
	defer j.Close()
	reg := metrics.NewRegistry()
	cfg := partjoin.Config{
		Workers: 4, Sorted: true, RefineThreshold: 1,
		Metrics: reg,
	}
	var sampler *runtimeobs.Sampler
	if sample {
		sampler = runtimeobs.NewSampler()
		cfg.Progress = runtimeobs.NewProgress("partition")
	}
	t0 := time.Now()
	sampler.Begin()
	res := j.Join(r, s, cfg)
	health := sampler.End(time.Since(t0).Nanoseconds(), res.Workers)

	pairs := make([]int64, 0, 2*len(res.Candidates))
	for _, c := range res.Candidates {
		pairs = append(pairs, int64(c.R), int64(c.S))
	}
	counters := make(map[string]int64)
	for _, name := range goldenCounters {
		counters[name] = reg.Counter(name).Load()
	}
	return pairs, counters, health
}

// TestHealthObservationOnly is the acceptance pin for the tentpole: a run
// bracketed by the health sampler with a live-progress slot attached
// produces the exact pair sequence and golden metrics of an unsampled
// run — observation changes nothing but what is observed.
func TestHealthObservationOnly(t *testing.T) {
	r := tiger.GaussianClusters(3000, 4, 2, 0.05, 41, 42)
	s := tiger.GaussianClusters(3000, 4, 2, 0.05, 41, 43)

	plainPairs, plainCounters, plainHealth := joinOnce(t, r, s, false)
	obsPairs, obsCounters, obsHealth := joinOnce(t, r, s, true)

	if plainHealth.Sampled {
		t.Fatal("unsampled run reported a health window")
	}
	if !obsHealth.Sampled {
		t.Fatal("sampled run reported no health window")
	}
	if got := obsHealth.WorkNS + obsHealth.GCNS + obsHealth.SchedNS + obsHealth.ContentionNS; got != obsHealth.WallNS {
		t.Fatalf("attribution does not tile the wall: %d != %d", got, obsHealth.WallNS)
	}

	if len(plainPairs) != len(obsPairs) {
		t.Fatalf("pair count differs: %d unsampled, %d sampled",
			len(plainPairs)/2, len(obsPairs)/2)
	}
	for i := range plainPairs {
		if plainPairs[i] != obsPairs[i] {
			t.Fatalf("pair sequence diverges at element %d: %d vs %d",
				i, plainPairs[i], obsPairs[i])
		}
	}
	for _, name := range goldenCounters {
		if plainCounters[name] != obsCounters[name] {
			t.Fatalf("%s differs: %d unsampled, %d sampled",
				name, plainCounters[name], obsCounters[name])
		}
	}
}
