package runtimeobs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live-progress publisher of one join slot: the engines
// bump atomic units-done/units-total counters (work units and their
// estimated sweep cost) as the schedule drains, and Status derives a
// completion fraction and an ETA at any moment — including mid-join, from
// another goroutine, which is the whole point.
//
// The hot path is UnitDone: one nil-check and two atomic adds, nothing
// else — no locks, no time reads, no allocation. Start, Finish and Status
// are cold-path operations and take a mutex so the identity fields (seq,
// start time, running flag) read consistently.
//
// A slot is reusable across joins (Start resets the counters), so a
// long-lived driver allocates one Progress per engine once and the steady
// state publishes progress allocation-free. A nil *Progress ignores every
// call.
type Progress struct {
	mu        sync.Mutex
	engine    string
	seq       uint64
	running   bool
	startedAt time.Time

	unitsDone  atomic.Int64
	unitsTotal atomic.Int64
	costDone   atomic.Int64
	costTotal  atomic.Int64
}

// NewProgress returns a standalone (unregistered) slot for the engine.
// Drivers that want the slot served by /debug/joins/live use Live.NewProgress.
func NewProgress(engine string) *Progress {
	return &Progress{engine: engine}
}

// Start opens a new join window on the slot: counters reset, the sequence
// number advances, and Status reports the slot as in-flight until Finish.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.seq++
	p.running = true
	p.startedAt = time.Now()
	p.mu.Unlock()
	p.unitsDone.Store(0)
	p.unitsTotal.Store(0)
	p.costDone.Store(0)
	p.costTotal.Store(0)
}

// SetTotal publishes the schedule size: units work units whose estimated
// costs sum to cost. Engines call it once the schedule is built; a
// schedule that grows later (refinement, task expansion) adjusts with
// AddTotal.
func (p *Progress) SetTotal(units, cost int64) {
	if p == nil {
		return
	}
	p.unitsTotal.Store(units)
	p.costTotal.Store(cost)
}

// AddTotal adjusts the published schedule by a (possibly negative) delta —
// refined tiles replaced by their subtile leaves, tree tasks spawning
// children.
func (p *Progress) AddTotal(units, cost int64) {
	if p == nil {
		return
	}
	p.unitsTotal.Add(units)
	p.costTotal.Add(cost)
}

// UnitDone records one completed work unit of the given estimated cost.
// This is the engines' hot-path call: nil-check plus two atomic adds.
func (p *Progress) UnitDone(cost int64) {
	if p == nil {
		return
	}
	p.unitsDone.Add(1)
	p.costDone.Add(cost)
}

// Finish closes the window; the slot keeps its final counters for Status
// until the next Start.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.running = false
	p.mu.Unlock()
}

// Status is one observable moment of a Progress slot.
type Status struct {
	Engine    string    `json:"engine"`
	Seq       uint64    `json:"seq"`
	Running   bool      `json:"running"`
	StartedAt time.Time `json:"started_at"`
	ElapsedNS int64     `json:"elapsed_ns"`

	UnitsDone  int64 `json:"units_done"`
	UnitsTotal int64 `json:"units_total"`
	CostDone   int64 `json:"cost_done"`
	CostTotal  int64 `json:"cost_total"`

	// Frac is the cost-weighted completion fraction (0..1). ETANS estimates
	// the remaining wall time by scaling the elapsed time with the pending
	// cost ratio; -1 while no cost has completed yet. Because the engines
	// schedule largest-cost-first, the estimate converges from above early
	// in the join rather than oscillating.
	Frac  float64 `json:"frac"`
	ETANS int64   `json:"eta_ns"`
}

// Status reports the slot's current state; ok is false for a slot that
// never started (or a nil receiver).
func (p *Progress) Status() (Status, bool) {
	if p == nil {
		return Status{}, false
	}
	p.mu.Lock()
	st := Status{
		Engine:    p.engine,
		Seq:       p.seq,
		Running:   p.running,
		StartedAt: p.startedAt,
	}
	p.mu.Unlock()
	if st.Seq == 0 {
		return Status{}, false
	}
	st.ElapsedNS = time.Since(st.StartedAt).Nanoseconds()
	st.UnitsDone = p.unitsDone.Load()
	st.UnitsTotal = p.unitsTotal.Load()
	st.CostDone = p.costDone.Load()
	st.CostTotal = p.costTotal.Load()
	st.ETANS = -1
	if st.CostTotal > 0 {
		f := float64(st.CostDone) / float64(st.CostTotal)
		if f > 1 {
			f = 1
		}
		st.Frac = f
	}
	if st.CostDone > 0 && st.CostTotal > st.CostDone {
		st.ETANS = int64(float64(st.ElapsedNS) *
			float64(st.CostTotal-st.CostDone) / float64(st.CostDone))
	} else if st.CostDone >= st.CostTotal && st.CostTotal > 0 {
		st.ETANS = 0
	}
	return st, true
}

// Live is the registry behind /debug/joins/live: every Progress slot it
// hands out is tracked, and Snapshot reports the in-flight ones. A nil
// *Live hands out nil slots and snapshots empty, so a driver without the
// endpoint wires nothing.
type Live struct {
	mu    sync.Mutex
	slots []*Progress
}

// NewLive returns an empty registry.
func NewLive() *Live { return &Live{} }

// NewProgress allocates a reusable slot for the engine and registers it.
func (l *Live) NewProgress(engine string) *Progress {
	if l == nil {
		return nil
	}
	p := NewProgress(engine)
	l.mu.Lock()
	l.slots = append(l.slots, p)
	l.mu.Unlock()
	return p
}

// Snapshot reports the currently in-flight joins, in slot registration
// order. Finished and never-started slots are omitted.
func (l *Live) Snapshot() []Status {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	slots := append([]*Progress(nil), l.slots...)
	l.mu.Unlock()
	out := make([]Status, 0, len(slots))
	for _, p := range slots {
		if st, ok := p.Status(); ok && st.Running {
			out = append(out, st)
		}
	}
	return out
}
