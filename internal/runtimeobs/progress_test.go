package runtimeobs

import (
	"sync"
	"testing"
)

// TestProgressLifecycle pins the counter and ETA math across one window.
func TestProgressLifecycle(t *testing.T) {
	p := NewProgress("partition")
	if _, ok := p.Status(); ok {
		t.Fatal("never-started slot reported a status")
	}
	p.Start()
	p.SetTotal(4, 100)
	st, ok := p.Status()
	if !ok || !st.Running || st.Engine != "partition" || st.Seq != 1 {
		t.Fatalf("bad started status: %+v ok=%v", st, ok)
	}
	if st.ETANS != -1 || st.Frac != 0 {
		t.Fatalf("empty window should have unknown ETA: %+v", st)
	}

	p.UnitDone(60)
	p.UnitDone(15)
	st, _ = p.Status()
	if st.UnitsDone != 2 || st.UnitsTotal != 4 || st.CostDone != 75 || st.CostTotal != 100 {
		t.Fatalf("counters wrong: %+v", st)
	}
	if st.Frac != 0.75 {
		t.Fatalf("frac %v, want 0.75", st.Frac)
	}
	if st.ETANS < 0 {
		t.Fatalf("pending window must estimate an ETA: %+v", st)
	}
	// elapsed * remaining/done = elapsed/3; pin the ratio loosely.
	if st.ETANS > st.ElapsedNS {
		t.Fatalf("ETA %d exceeds elapsed %d at 75%% done", st.ETANS, st.ElapsedNS)
	}

	// A refined root pruned with no surviving leaves retracts its unit and
	// cost from the schedule; the remaining unit finishes the window with
	// done == total on both axes.
	p.AddTotal(-1, -20)
	p.UnitDone(5)
	p.Finish()
	st, _ = p.Status()
	if st.Running {
		t.Fatal("finished slot still running")
	}
	if st.UnitsDone != 3 || st.UnitsTotal != 3 || st.CostDone != 80 || st.CostTotal != 80 {
		t.Fatalf("final accounting wrong: %+v", st)
	}
	if st.Frac != 1 || st.ETANS != 0 {
		t.Fatalf("complete window must report frac=1 eta=0: %+v", st)
	}
}

// TestProgressReuse pins that Start resets a slot for the next join and
// bumps the sequence number so pollers can tell windows apart.
func TestProgressReuse(t *testing.T) {
	p := NewProgress("native")
	p.Start()
	p.SetTotal(10, 10)
	for i := 0; i < 10; i++ {
		p.UnitDone(1)
	}
	p.Finish()
	p.Start()
	st, ok := p.Status()
	if !ok || st.Seq != 2 || !st.Running {
		t.Fatalf("reused slot wrong: %+v", st)
	}
	if st.UnitsDone != 0 || st.UnitsTotal != 0 || st.CostDone != 0 || st.CostTotal != 0 {
		t.Fatalf("Start did not reset counters: %+v", st)
	}
}

// TestProgressNil pins that every method ignores a nil receiver.
func TestProgressNil(t *testing.T) {
	var p *Progress
	p.Start()
	p.SetTotal(1, 1)
	p.AddTotal(1, 1)
	p.UnitDone(1)
	p.Finish()
	if _, ok := p.Status(); ok {
		t.Fatal("nil slot reported a status")
	}
}

// TestProgressZeroAlloc pins the hot path: UnitDone never allocates, and a
// full Start/SetTotal/Finish window on a reused slot doesn't either.
func TestProgressZeroAlloc(t *testing.T) {
	p := NewProgress("partition")
	p.Start()
	p.SetTotal(1, 1)
	p.UnitDone(1)
	p.Finish()
	if a := testing.AllocsPerRun(100, func() { p.UnitDone(1) }); a != 0 {
		t.Fatalf("UnitDone allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		p.Start()
		p.SetTotal(8, 80)
		p.UnitDone(10)
		p.Finish()
	}); a != 0 {
		t.Fatalf("progress window allocates %.1f/op", a)
	}
}

// TestLiveSnapshot pins the registry contract: only running slots appear,
// in registration order, and a nil registry hands out nil slots.
func TestLiveSnapshot(t *testing.T) {
	l := NewLive()
	a := l.NewProgress("partition")
	b := l.NewProgress("native")
	if got := l.Snapshot(); len(got) != 0 {
		t.Fatalf("idle registry snapshot %v", got)
	}
	a.Start()
	a.SetTotal(2, 2)
	b.Start()
	if got := l.Snapshot(); len(got) != 2 ||
		got[0].Engine != "partition" || got[1].Engine != "native" {
		t.Fatalf("snapshot wrong: %+v", got)
	}
	b.Finish()
	if got := l.Snapshot(); len(got) != 1 || got[0].Engine != "partition" {
		t.Fatalf("finished slot still visible: %+v", got)
	}
	a.Finish()
	if got := l.Snapshot(); len(got) != 0 {
		t.Fatalf("all-finished snapshot %v", got)
	}

	var nilLive *Live
	if p := nilLive.NewProgress("x"); p != nil {
		t.Fatal("nil registry handed out a real slot")
	}
	if got := nilLive.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot %v", got)
	}
}

// TestProgressConcurrent hammers one slot from publisher and poller
// goroutines; run under -race this pins the locking discipline.
func TestProgressConcurrent(t *testing.T) {
	l := NewLive()
	p := l.NewProgress("partition")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			l.Snapshot()
			p.Status()
		}
	}()
	for j := 0; j < 20; j++ {
		p.Start()
		p.SetTotal(100, 1000)
		var pub sync.WaitGroup
		for w := 0; w < 4; w++ {
			pub.Add(1)
			go func() {
				defer pub.Done()
				for i := 0; i < 25; i++ {
					p.UnitDone(10)
				}
			}()
		}
		pub.Wait()
		if st, _ := p.Status(); st.UnitsDone != 100 || st.CostDone != 1000 {
			t.Fatalf("lost updates: %+v", st)
		}
		p.Finish()
	}
	close(stop)
	wg.Wait()
}
