package runtimeobs

import "testing"

// BenchmarkSamplerWindow prices one Begin/End health window in isolation:
// two runtime/metrics reads reduced to scalars (~3µs on the reference
// machine), 0 allocs steady state. This is the fixed per-join cost the
// engine-level BenchmarkPartitionJoinHealth adds on top of its progress
// publishing.
func BenchmarkSamplerWindow(b *testing.B) {
	s := NewSampler()
	s.Begin()
	s.End(1000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Begin()
		s.End(1000, 4)
	}
}

// BenchmarkProgressUnitDone prices the engines' hot-path call: one
// nil-check and two atomic adds (uncontended here; the engine benchmarks
// price the contended case).
func BenchmarkProgressUnitDone(b *testing.B) {
	p := NewProgress("bench")
	p.Start()
	p.SetTotal(int64(b.N), int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.UnitDone(1)
	}
}
