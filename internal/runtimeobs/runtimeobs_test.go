package runtimeobs

import (
	"runtime/metrics"
	"strings"
	"testing"
)

// TestSamplerWindow pins the basic contract: a bracketed window samples,
// the attribution tiles the wall clock exactly, and the raw deltas are
// non-negative (every sampled series is cumulative).
func TestSamplerWindow(t *testing.T) {
	s := NewSampler()
	s.Begin()
	// Churn some allocation so the window has something to observe.
	sink := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	h := s.End(1_000_000, 4)
	if !h.Sampled {
		t.Fatal("window not sampled")
	}
	if h.WallNS != 1_000_000 || h.Workers != 4 {
		t.Fatalf("window identity wrong: %+v", h)
	}
	if got := h.WorkNS + h.GCNS + h.SchedNS + h.ContentionNS; got != h.WallNS {
		t.Fatalf("attribution does not tile the wall: %d != %d (%+v)", got, h.WallNS, h)
	}
	for name, v := range map[string]int64{
		"gc_pause":    h.GCPauseNS,
		"sched_delay": h.SchedDelayNS,
		"mutex_wait":  h.MutexWaitNS,
		"gc_cpu":      h.GCCPUNS,
		"alloc":       h.AllocBytes,
		"gc_cycles":   h.GCCycles,
	} {
		if v < 0 {
			t.Fatalf("%s delta negative: %d", name, v)
		}
	}
	// The alloc series is assembled from per-P caches and can lag a little;
	// require most of the churn to show, not a byte-exact match.
	if h.AllocBytes < 256*4096/2 {
		t.Fatalf("alloc delta %d missed the window's %d bytes", h.AllocBytes, 256*4096)
	}
	if h.GoroutinesStart <= 0 || h.GoroutinesEnd <= 0 {
		t.Fatalf("goroutine counts absent: %+v", h)
	}
}

// TestSamplerNilAndUnbegun pins the no-op paths: a nil sampler and an End
// without Begin both return an unsampled zero Health.
func TestSamplerNilAndUnbegun(t *testing.T) {
	var nilS *Sampler
	nilS.Begin() // must not panic
	if h := nilS.End(5, 1); h.Sampled || h != (Health{}) {
		t.Fatalf("nil sampler returned %+v", h)
	}
	s := NewSampler()
	if h := s.End(5, 1); h.Sampled {
		t.Fatalf("End without Begin sampled: %+v", h)
	}
	s.Begin()
	s.End(5, 1)
	if h := s.End(5, 1); h.Sampled {
		t.Fatalf("second End reused a consumed Begin: %+v", h)
	}
}

// TestSamplerZeroAlloc pins the steady-state contract: after the warm-up
// in NewSampler, a Begin/End window allocates nothing.
func TestSamplerZeroAlloc(t *testing.T) {
	s := NewSampler()
	s.Begin()
	s.End(1000, 2)
	allocs := testing.AllocsPerRun(50, func() {
		s.Begin()
		s.End(1000, 2)
	})
	if allocs != 0 {
		t.Fatalf("sampler window allocates %.1f/op, want 0", allocs)
	}
}

// TestHistTotalNS pins the histogram reduction on fabricated buckets,
// including the ±Inf edge buckets runtime histograms carry.
func TestHistTotalNS(t *testing.T) {
	// metrics.Sample with a histogram can only come from metrics.Read, so
	// reduce a real one and check plausibility instead of exact values.
	samples := []metrics.Sample{{Name: gcPausesName}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindFloat64Histogram {
		t.Skip("toolchain lacks " + gcPausesName)
	}
	total := histTotalNS(&samples[0])
	if total < 0 {
		t.Fatalf("negative histogram total %d", total)
	}
	// A second read must be monotonically non-decreasing (cumulative series).
	metrics.Read(samples)
	if again := histTotalNS(&samples[0]); again < total {
		t.Fatalf("histogram total went backwards: %d then %d", total, again)
	}
}

// TestAttributeClamps pins the attribution math on fabricated deltas: each
// interference class is clamped to the remaining wall and work is the
// residue, so pathological deltas can never attribute more than the wall.
func TestAttributeClamps(t *testing.T) {
	h := Health{Sampled: true, WallNS: 1000, Workers: 2,
		GCPauseNS: 400, SchedDelayNS: 600, MutexWaitNS: 200}
	h.Attribute()
	// gc 400, sched 600/2=300, contention 200/2=100, work 200.
	if h.GCNS != 400 || h.SchedNS != 300 || h.ContentionNS != 100 || h.WorkNS != 200 {
		t.Fatalf("attribution wrong: %+v", h)
	}

	over := Health{Sampled: true, WallNS: 1000, Workers: 1,
		GCPauseNS: 5000, SchedDelayNS: 5000, MutexWaitNS: 5000}
	over.Attribute()
	if over.GCNS != 1000 || over.SchedNS != 0 || over.ContentionNS != 0 || over.WorkNS != 0 {
		t.Fatalf("clamping failed: %+v", over)
	}
	if got := over.GCNS + over.SchedNS + over.ContentionNS + over.WorkNS; got != over.WallNS {
		t.Fatalf("clamped attribution does not tile: %d", got)
	}
}

// TestAnomalies pins the threshold flags and their zero-alloc counter.
func TestAnomalies(t *testing.T) {
	clean := Health{Sampled: true, WallNS: 1_000_000, Workers: 4,
		GoroutinesStart: 10, GoroutinesEnd: 10}
	clean.Attribute()
	if n := clean.AnomalyCount(); n != 0 {
		t.Fatalf("clean window counts %d anomalies", n)
	}
	if a := clean.Anomalies(); len(a) != 0 {
		t.Fatalf("clean window reports %v", a)
	}

	hot := Health{Sampled: true, WallNS: 1_000_000, Workers: 1,
		GCPauseNS:    100_000, // 10% > 5%
		SchedDelayNS: 150_000, // 15% > 10%
		MutexWaitNS:  80_000,  // 8% > 5%
		GoroutinesStart: 10, GoroutinesEnd: 40}
	hot.Attribute()
	if n := hot.AnomalyCount(); n != 4 {
		t.Fatalf("hot window counts %d anomalies, want 4: %v", n, hot.Anomalies())
	}
	got := strings.Join(hot.Anomalies(), "; ")
	for _, want := range []string{
		"gc-pause share 10.0% > 5.0%",
		"sched-delay share 15.0% > 10.0%",
		"contention share 8.0% > 5.0%",
		"goroutines grew",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("anomalies missing %q: %s", want, got)
		}
	}
}

// TestShares pins the share computation.
func TestShares(t *testing.T) {
	h := Health{Sampled: true, WallNS: 1000, Workers: 1, GCPauseNS: 250}
	h.Attribute()
	work, gc, sched, cont := h.Shares()
	if work != 0.75 || gc != 0.25 || sched != 0 || cont != 0 {
		t.Fatalf("shares wrong: %v %v %v %v", work, gc, sched, cont)
	}
	var zero Health
	if w, g, s, c := zero.Shares(); w != 0 || g != 0 || s != 0 || c != 0 {
		t.Fatal("zero-wall shares must be zero")
	}
}
