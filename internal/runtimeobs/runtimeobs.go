// Package runtimeobs is the join-scoped runtime health observatory: it
// answers whether a slow join was slow because of the join (work, skew) or
// because of the Go runtime underneath it (GC pauses, scheduler delay,
// lock contention). Two independent layers:
//
//   - Sampler snapshots runtime/metrics around a join window — GC pause
//     and scheduler-latency histogram deltas, mutex wait, alloc/heap and
//     goroutine counts — and reduces the deltas to a Health record that
//     attributes the window's wall time across work / GC / sched-delay /
//     contention and flags anomalies (e.g. GC pause share over 5%).
//   - Progress (progress.go) is the always-on live-progress layer: atomic
//     units-done/units-total counters the engines publish per work unit,
//     with an ETA derived from the cost-descending schedule.
//
// Both layers are observation-only by construction: they read runtime
// counters and engine-published atomics, never influence scheduling, and a
// nil *Sampler or *Progress is a no-op so call sites need no guards. After
// a warm-up read the Sampler performs zero heap allocations per window
// (runtime/metrics reuses histogram buckets across reads), which is what
// lets the 0-alloc join benchmarks run fully sampled.
//
// The package deliberately imports nothing from the engines — partjoin,
// parnative and flight import it, not the other way around.
package runtimeobs

import (
	"math"
	"runtime/metrics"
)

// The runtime/metrics series one health window consumes. Names missing
// from the running toolchain read as KindBad and are skipped, so the
// sampler degrades gracefully instead of panicking on older runtimes.
const (
	gcPausesName  = "/sched/pauses/total/gc:seconds"    // histogram: GC stop-the-world pauses
	schedLatName  = "/sched/latencies:seconds"          // histogram: runnable-goroutine wait
	mutexWaitName = "/sync/mutex/wait/total:seconds"    // total time blocked on mutexes
	gcCPUName     = "/cpu/classes/gc/total:cpu-seconds" // CPU seconds spent in the GC
	heapAllocName = "/gc/heap/allocs:bytes"             // cumulative allocated bytes
	heapObjName   = "/memory/classes/heap/objects:bytes"
	gcCycleName   = "/gc/cycles/total:gc-cycles"
	goroutineName = "/sched/goroutines:goroutines"
)

// Anomaly thresholds: a window whose attributed share exceeds these is
// flagged in Health.Anomalies (and counted by Health.AnomalyCount).
const (
	// GCAnomalyShare flags GC pauses eating more than 5% of the window.
	GCAnomalyShare = 0.05
	// SchedAnomalyShare flags per-worker scheduler delay above 10%.
	SchedAnomalyShare = 0.10
	// ContentionAnomalyShare flags per-worker mutex wait above 5%.
	ContentionAnomalyShare = 0.05
)

// snap is one reduced reading of every sampled series: histogram series
// are collapsed to scalar nanosecond totals at read time, because
// runtime/metrics reuses the histogram bucket buffers across reads.
type snap struct {
	gcPauseNS  int64
	schedNS    int64
	mutexNS    int64
	gcCPUNS    int64
	allocBytes int64
	heapBytes  int64
	gcCycles   int64
	goroutines int64
}

// Sampler snapshots the runtime metrics around one join window at a time.
// Create with NewSampler (which pays the one allocating warm-up read);
// Begin and End are then allocation-free. A Sampler serves one window at a
// time — the same single-goroutine discipline as a partjoin.Joiner. A nil
// *Sampler ignores Begin and returns an unsampled Health from End.
type Sampler struct {
	samples []metrics.Sample
	begin   snap
	began   bool
}

// NewSampler prepares a sampler: resolves the metric names against the
// running toolchain and performs the warm-up read that sizes the reused
// histogram buffers.
func NewSampler() *Sampler {
	s := &Sampler{samples: []metrics.Sample{
		{Name: gcPausesName},
		{Name: schedLatName},
		{Name: mutexWaitName},
		{Name: gcCPUName},
		{Name: heapAllocName},
		{Name: heapObjName},
		{Name: gcCycleName},
		{Name: goroutineName},
	}}
	metrics.Read(s.samples) // warm-up: allocates the histogram buffers once
	s.read()
	return s
}

// Begin snapshots the runtime state at the start of a join window.
func (s *Sampler) Begin() {
	if s == nil {
		return
	}
	s.begin = s.read()
	s.began = true
}

// End snapshots the runtime state at the end of the window and returns the
// Health record for it: the raw deltas plus the wall-time attribution.
// wallNS is the window's wall time as the caller measured it; workers the
// parallelism degree (process-wide delay and wait totals are divided by it
// to approximate their per-wall impact). Nil-safe: a nil *Sampler — or an
// End without a Begin — returns a zero Health with Sampled == false.
func (s *Sampler) End(wallNS int64, workers int) Health {
	if s == nil || !s.began {
		return Health{}
	}
	s.began = false
	end := s.read()
	h := Health{
		Sampled:         true,
		WallNS:          wallNS,
		Workers:         workers,
		GCPauseNS:       end.gcPauseNS - s.begin.gcPauseNS,
		SchedDelayNS:    end.schedNS - s.begin.schedNS,
		MutexWaitNS:     end.mutexNS - s.begin.mutexNS,
		GCCPUNS:         end.gcCPUNS - s.begin.gcCPUNS,
		AllocBytes:      end.allocBytes - s.begin.allocBytes,
		HeapBytes:       end.heapBytes,
		GCCycles:        end.gcCycles - s.begin.gcCycles,
		GoroutinesStart: s.begin.goroutines,
		GoroutinesEnd:   end.goroutines,
	}
	h.Attribute()
	return h
}

// read performs one metrics read and reduces it to scalars immediately
// (the histogram buffers are owned by the samples slice and overwritten by
// the next read).
func (s *Sampler) read() snap {
	metrics.Read(s.samples)
	var out snap
	for i := range s.samples {
		sm := &s.samples[i]
		switch sm.Name {
		case gcPausesName:
			out.gcPauseNS = histTotalNS(sm)
		case schedLatName:
			out.schedNS = histTotalNS(sm)
		case mutexWaitName:
			out.mutexNS = secondsNS(sm)
		case gcCPUName:
			out.gcCPUNS = secondsNS(sm)
		case heapAllocName:
			out.allocBytes = uintValue(sm)
		case heapObjName:
			out.heapBytes = uintValue(sm)
		case gcCycleName:
			out.gcCycles = uintValue(sm)
		case goroutineName:
			out.goroutines = uintValue(sm)
		}
	}
	return out
}

// histTotalNS reduces a cumulative duration histogram to an approximate
// total in nanoseconds: Σ count×midpoint per bucket, with the open-ended
// edge buckets collapsed onto their finite boundary. The approximation is
// monotone in the true total and exact enough for attribution shares.
func histTotalNS(sm *metrics.Sample) int64 {
	if sm.Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := sm.Value.Float64Histogram()
	if h == nil || len(h.Buckets) < 2 {
		return 0
	}
	var total float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		total += float64(c) * mid
	}
	return int64(total * 1e9)
}

// secondsNS reads a float64 seconds series as nanoseconds.
func secondsNS(sm *metrics.Sample) int64 {
	if sm.Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return int64(sm.Value.Float64() * 1e9)
}

// uintValue reads a uint64 series, saturating into int64.
func uintValue(sm *metrics.Sample) int64 {
	if sm.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	v := sm.Value.Uint64()
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// Health is one join window's runtime health record: the raw deltas the
// Sampler observed and the wall-time attribution derived from them. All
// fields are scalars (no slices), so the record embeds into reused ring
// slots and deep copies by plain struct assignment.
type Health struct {
	// Sampled reports whether a sampler actually bracketed the window;
	// false means every other field is zero.
	Sampled bool `json:"sampled"`
	// WallNS and Workers are the window the attribution tiles.
	WallNS  int64 `json:"wall_ns,omitempty"`
	Workers int   `json:"workers,omitempty"`

	// Raw deltas over the window. SchedDelayNS and MutexWaitNS are summed
	// across all goroutines of the process (runtime/metrics has no
	// per-goroutine scope), so their per-wall impact is approximated by
	// dividing by Workers in the attribution below.
	GCPauseNS       int64 `json:"gc_pause_ns,omitempty"`
	SchedDelayNS    int64 `json:"sched_delay_ns,omitempty"`
	MutexWaitNS     int64 `json:"mutex_wait_ns,omitempty"`
	GCCPUNS         int64 `json:"gc_cpu_ns,omitempty"`
	AllocBytes      int64 `json:"alloc_bytes,omitempty"`
	HeapBytes       int64 `json:"heap_bytes,omitempty"`
	GCCycles        int64 `json:"gc_cycles,omitempty"`
	GoroutinesStart int64 `json:"goroutines_start,omitempty"`
	GoroutinesEnd   int64 `json:"goroutines_end,omitempty"`

	// Wall-time attribution: WorkNS + GCNS + SchedNS + ContentionNS ==
	// WallNS by construction (each interference class is clamped to what
	// remains, work is the residue).
	WorkNS       int64 `json:"work_ns,omitempty"`
	GCNS         int64 `json:"gc_attr_ns,omitempty"`
	SchedNS      int64 `json:"sched_attr_ns,omitempty"`
	ContentionNS int64 `json:"contention_attr_ns,omitempty"`
}

// Attribute (re)derives the wall-time attribution from the raw deltas:
// GC stop-the-world pauses stall every worker so they charge at full wall
// value; scheduler delay and mutex wait are process-wide sums, charged at
// their per-worker average; work is whatever wall time remains. Each class
// is clamped to the remaining wall so the four always tile WallNS exactly.
func (h *Health) Attribute() {
	rem := h.WallNS
	if rem < 0 {
		rem = 0
	}
	w := int64(h.Workers)
	if w < 1 {
		w = 1
	}
	gc := clampNS(h.GCPauseNS, rem)
	rem -= gc
	sched := clampNS(h.SchedDelayNS/w, rem)
	rem -= sched
	cont := clampNS(h.MutexWaitNS/w, rem)
	rem -= cont
	h.GCNS, h.SchedNS, h.ContentionNS, h.WorkNS = gc, sched, cont, rem
}

func clampNS(v, lim int64) int64 {
	if v < 0 {
		return 0
	}
	if v > lim {
		return lim
	}
	return v
}

// Shares returns the attribution as fractions of the window's wall time.
func (h *Health) Shares() (work, gc, sched, contention float64) {
	if h.WallNS <= 0 {
		return 0, 0, 0, 0
	}
	w := float64(h.WallNS)
	return float64(h.WorkNS) / w, float64(h.GCNS) / w,
		float64(h.SchedNS) / w, float64(h.ContentionNS) / w
}

// AnomalyCount reports how many anomaly thresholds the window breached,
// without allocating (the counting mirror of Anomalies).
func (h *Health) AnomalyCount() int {
	n := 0
	_, gc, sched, cont := h.Shares()
	if gc > GCAnomalyShare {
		n++
	}
	if sched > SchedAnomalyShare {
		n++
	}
	if cont > ContentionAnomalyShare {
		n++
	}
	if h.goroutinesGrew() {
		n++
	}
	return n
}

// Anomalies describes each breached threshold; empty for a clean window.
// Allocates — report-path only.
func (h *Health) Anomalies() []string {
	var out []string
	_, gc, sched, cont := h.Shares()
	if gc > GCAnomalyShare {
		out = append(out, pctAnomaly("gc-pause share", gc, GCAnomalyShare))
	}
	if sched > SchedAnomalyShare {
		out = append(out, pctAnomaly("sched-delay share", sched, SchedAnomalyShare))
	}
	if cont > ContentionAnomalyShare {
		out = append(out, pctAnomaly("contention share", cont, ContentionAnomalyShare))
	}
	if h.goroutinesGrew() {
		out = append(out, "goroutines grew across the window")
	}
	return out
}

// goroutinesGrew flags a window that leaked more goroutines than the join
// itself plausibly runs (its own workers plus slack for runtime helpers).
func (h *Health) goroutinesGrew() bool {
	if !h.Sampled {
		return false
	}
	w := int64(h.Workers)
	if w < 1 {
		w = 1
	}
	return h.GoroutinesEnd > h.GoroutinesStart+w+4
}

func pctAnomaly(what string, share, limit float64) string {
	return what + " " + pct(share) + " > " + pct(limit)
}

// pct formats a fraction as a percentage with one decimal, without fmt (so
// the anomaly path stays cheap and dependency-free).
func pct(f float64) string {
	tenths := int64(f*1000 + 0.5)
	whole, frac := tenths/10, tenths%10
	buf := make([]byte, 0, 8)
	buf = appendInt(buf, whole)
	buf = append(buf, '.', byte('0'+frac), '%')
	return string(buf)
}

func appendInt(buf []byte, v int64) []byte {
	if v >= 10 {
		buf = appendInt(buf, v/10)
	}
	return append(buf, byte('0'+v%10))
}
