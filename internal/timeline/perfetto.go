package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"spjoin/internal/sim"
)

// Perfetto / Chrome trace-event export. The emitted JSON is the "JSON
// Array Format" object form ({"traceEvents": [...]}) understood by
// ui.perfetto.dev and chrome://tracing: one process per machine component
// (processors, disks), one thread (track) per simulated processor or disk,
// complete ("X") events per span with microsecond timestamps, and flow
// ("s"/"f") events linking a reassigned task's old and new owner.
//
// The writer is hand-rolled over append/strconv so the byte stream is
// deterministic: equal recorders produce byte-identical files.

// pids of the two exported process groups.
const (
	pidProcs = 0
	pidDisks = 1
)

// argNames maps each span kind to the display names of its (up to four)
// args; empty names are omitted from the export.
var argNames = [NumKinds][4]string{
	KindCPUSweep:     {"r_page", "s_page", "level", "comparisons"},
	KindDiskWait:     {"page", "data", "disk", ""},
	KindLocalBuffer:  {"page", "tree", "", ""},
	KindRemoteBuffer: {"page", "tree", "owner", ""},
	KindQueueIdle:    {"waker", "", "", ""},
	KindReassign:     {"victim", "moved", "hl", "ns"},
	KindRefineWait:   {"candidates", "", "", ""},
	KindDiskService:  {"page", "data", "reader", ""},
	KindPhase:        {"phase", "", "", ""},
}

// WritePerfetto writes the whole recorded timeline as trace-event JSON.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	e := &errWriter{w: w}
	var buf []byte

	// ts is in microseconds in the trace-event format; the recorder's
	// clock is milliseconds.
	appendTS := func(b []byte, t sim.Time) []byte {
		return strconv.AppendFloat(b, float64(t)*1000, 'f', 3, 64)
	}

	e.write([]byte("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"))
	first := true
	emit := func(b []byte) {
		if !first {
			e.write([]byte(",\n"))
		}
		first = false
		e.write(b)
	}

	// Metadata: process and thread names, so Perfetto labels the tracks.
	procsLabel := "simulated processors (virtual time)"
	if r.unit == "wall" {
		procsLabel = "native workers (wall time)"
	}
	buf = fmt.Appendf(buf[:0],
		`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`,
		pidProcs, procsLabel)
	emit(buf)
	if len(r.disks) > 0 {
		buf = fmt.Appendf(buf[:0],
			`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"simulated disks"}}`,
			pidDisks)
		emit(buf)
	}
	for _, group := range []struct {
		pid    int
		tracks []Track
	}{{pidProcs, r.procs}, {pidDisks, r.disks}} {
		for tid := range group.tracks {
			buf = fmt.Appendf(buf[:0],
				`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`,
				group.pid, tid, group.tracks[tid].Name)
			emit(buf)
		}
	}

	// Spans as complete events.
	for _, group := range []struct {
		pid    int
		tracks []Track
	}{{pidProcs, r.procs}, {pidDisks, r.disks}} {
		for tid := range group.tracks {
			for _, s := range group.tracks[tid].Spans {
				buf = append(buf[:0], `{"name":"`...)
				if s.Kind == KindPhase {
					// Phase spans carry their phase in arg A; naming the
					// event after it gives Perfetto distinct slices per
					// pipeline stage instead of one opaque "phase" name.
					buf = append(buf, "phase:"...)
					buf = append(buf, PhaseName(int(s.Args.A))...)
				} else {
					buf = append(buf, KindName(s.Kind)...)
				}
				buf = append(buf, `","cat":"span","ph":"X","ts":`...)
				buf = appendTS(buf, s.Start)
				buf = append(buf, `,"dur":`...)
				buf = appendTS(buf, s.End-s.Start)
				buf = append(buf, `,"pid":`...)
				buf = strconv.AppendInt(buf, int64(group.pid), 10)
				buf = append(buf, `,"tid":`...)
				buf = strconv.AppendInt(buf, int64(tid), 10)
				buf = append(buf, `,"args":{`...)
				names := argNames[0]
				if int(s.Kind) < len(argNames) {
					names = argNames[s.Kind]
				}
				vals := [4]int64{s.Args.A, s.Args.B, s.Args.C, s.Args.D}
				sep := false
				for i, name := range names {
					if name == "" {
						continue
					}
					if sep {
						buf = append(buf, ',')
					}
					sep = true
					buf = append(buf, '"')
					buf = append(buf, name...)
					buf = append(buf, `":`...)
					buf = strconv.AppendInt(buf, vals[i], 10)
				}
				buf = append(buf, `}}`...)
				emit(buf)
			}
		}
	}

	// Flows: one s/f pair per reassignment, binding to the enclosing (or
	// next) slice on each side.
	id := 0
	for tid := range r.procs {
		for _, f := range r.procs[tid].Flows {
			id++
			buf = fmt.Appendf(buf[:0],
				`{"name":"reassign","cat":"flow","ph":"s","id":%d,"ts":`, id)
			buf = appendTS(buf, f.At)
			buf = fmt.Appendf(buf, `,"pid":%d,"tid":%d}`, pidProcs, f.From)
			emit(buf)
			buf = fmt.Appendf(buf[:0],
				`{"name":"reassign","cat":"flow","ph":"f","bp":"e","id":%d,"ts":`, id)
			buf = appendTS(buf, f.ToAt)
			buf = fmt.Appendf(buf, `,"pid":%d,"tid":%d}`, pidProcs, tid)
			emit(buf)
		}
	}

	e.write([]byte("\n]}\n"))
	return e.err
}

// traceEvent is the schema subset ValidateTraceEvents checks.
type traceEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Pid  *int             `json:"pid"`
	Tid  *int             `json:"tid"`
	Ts   *float64         `json:"ts"`
	Dur  *float64         `json:"dur"`
	ID   *json.RawMessage `json:"id"`
	Args json.RawMessage  `json:"args"`
}

// ValidateTraceEvents checks data against the trace-event JSON schema
// subset this package emits: a top-level traceEvents array whose entries
// have a name and a known phase, with ts/dur on complete events, ids on
// flow events, and names on metadata events. The CI smoke job and the
// golden-timeline tests run every exported trace through this.
func ValidateTraceEvents(data []byte) error {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("timeline: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("timeline: trace has no traceEvents array")
	}
	for i, raw := range doc.TraceEvents {
		var ev traceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("timeline: event %d malformed: %w", i, err)
		}
		if ev.Name == "" {
			return fmt.Errorf("timeline: event %d has no name", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("timeline: event %d (%s) lacks pid/tid", i, ev.Name)
		}
		switch ev.Ph {
		case "X":
			if ev.Ts == nil || ev.Dur == nil {
				return fmt.Errorf("timeline: complete event %d (%s) lacks ts/dur", i, ev.Name)
			}
			if *ev.Dur < 0 {
				return fmt.Errorf("timeline: complete event %d (%s) has negative dur", i, ev.Name)
			}
		case "s", "f", "t":
			if ev.Ts == nil || ev.ID == nil {
				return fmt.Errorf("timeline: flow event %d (%s) lacks ts/id", i, ev.Name)
			}
		case "M":
			if len(ev.Args) == 0 {
				return fmt.Errorf("timeline: metadata event %d (%s) lacks args", i, ev.Name)
			}
		default:
			return fmt.Errorf("timeline: event %d (%s) has unsupported phase %q", i, ev.Name, ev.Ph)
		}
	}
	return nil
}
