// Package timeline is the span profiler of the join pipeline: a recorder of
// per-processor (and per-disk) time intervals keyed to the deterministic
// virtual clock of package sim, a Perfetto/Chrome trace-event exporter, and
// a critical-path / load-balance analyzer over the recorded spans.
//
// Where package metrics answers "how many" (counters, histograms), this
// package answers "when, where, and on whose critical path": every interval
// a simulated processor spends is tagged as one of the span kinds below, so
// the paper's per-processor run-time figures (Figs. 7-12) become an
// inspectable Gantt chart.
//
// Design contract, matching the metrics layer:
//
//   - Zero cost when off. Call sites emit through sim.Proc span hooks,
//     which are one nil-check branch without an installed tracer. No event
//     struct is built, nothing allocates.
//   - Observation only. Recording never advances virtual time, so a
//     profiled simulation reproduces the unprofiled Result bit for bit.
//   - Single-writer tracks. Each processor's span list is appended only
//     while that processor runs (the sim kernel is single-threaded; the
//     native executor gives each worker its own track), so recording needs
//     no locks.
//   - Deterministic output. Spans are exported in track order; two runs of
//     the same workload produce byte-identical traces and equal digests —
//     the golden-timeline harness pins this.
package timeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"

	"spjoin/internal/sim"
)

// The canonical span kinds. Processor tracks use the first seven; disk
// tracks carry KindDiskService intervals (the service time, excluding
// queueing, of one physical read).
const (
	// KindCPUSweep is node-pair expansion CPU time (the plane-sweep /
	// nested-loop comparisons). Args: A=R page, B=S page, C=max level,
	// D=comparisons.
	KindCPUSweep sim.SpanKind = iota
	// KindDiskWait is time waiting for a physical page read, including
	// queueing at the disk. Args: A=page, B=1 for a data page, C=disk
	// index (-1 when waiting on another processor's in-flight read).
	KindDiskWait
	// KindLocalBuffer is a page access served from the processor's own
	// buffer (including directory-lock time). Args: A=page, B=tree.
	KindLocalBuffer
	// KindRemoteBuffer is a page access served from another processor's
	// memory (SVM remote read or shared-nothing page shipping).
	// Args: A=page, B=tree, C=owner/home processor.
	KindRemoteBuffer
	// KindQueueIdle is time spent idle, waiting for reassignable work.
	// Args: A=the processor whose new work ended the wait (-1 for the
	// final "join complete" broadcast).
	KindQueueIdle
	// KindReassign is work-acquisition overhead: a §3.3 task reassignment
	// (args: A=victim, B=pairs moved, C=hl, D=ns — the victim's work
	// report) or a shared-task-queue take (A=-1, B=1).
	KindReassign
	// KindRefineWait is the waiting period modeling the exact geometry
	// test of the refinement step. Args: A=candidates refined.
	KindRefineWait
	// KindDiskService is one disk's service interval for a physical read
	// (disk tracks only). Args: A=page, B=1 for a data page, C=reader.
	KindDiskService

	// KindPhase is one worker's share of a wall-clock engine phase
	// (partition's mirror/sort/scatter/fill/refine/sweep pipeline, the
	// native tree executor's prepare/taskgen). Wall recorders only — the
	// simulator never emits it, which keeps the run store's flattened
	// metric set (NumSimKinds) stable. Args: A=phase id (Phase*).
	KindPhase

	// NumKinds bounds the kind enumeration (analyzer array sizing).
	NumKinds
)

// NumSimKinds bounds the kinds the deterministic simulator emits (the
// original eight). The experiment run store flattens exactly these into
// "timeline.<kind>_ms" metrics, so appending wall-only kinds after
// KindDiskService does not change any recorded cell.
const NumSimKinds = KindPhase

// KindNames maps span kinds to their display/export names.
var KindNames = [NumKinds]string{
	"cpu-sweep",
	"disk-wait",
	"local-buffer",
	"remote-buffer",
	"queue-idle",
	"reassign",
	"refine-wait",
	"disk-service",
	"phase",
}

// KindName returns the display name of k ("?" for unknown kinds).
func KindName(k sim.SpanKind) string {
	if int(k) < len(KindNames) {
		return KindNames[k]
	}
	return "?"
}

// The canonical phases of a wall-clock join execution, shared by the
// engines' Result.PhaseNS arrays, the KindPhase span arg and the flight
// recorder's EXPLAIN waterfall. The partition engine uses all seven; the
// native tree executor maps its pipeline onto the subset that applies
// (prep = sweep-cache build, partition = task creation).
const (
	// PhasePrep is input synchronization: partjoin's SoA mirroring and
	// mirror-check/verify passes, parnative's PrepareSweep.
	PhasePrep = iota
	// PhaseSort is the global sweep-order sort (cold or mutated inputs).
	PhaseSort
	// PhasePartition is work decomposition: the counting-sort count and
	// scatter passes, or tree task creation.
	PhasePartition
	// PhaseFill fills the tile-segment coordinate planes.
	PhaseFill
	// PhaseRefine is adaptive tile refinement: hot-tile splitting plus the
	// refinement-arena plane fill.
	PhaseRefine
	// PhaseSweep is the parallel join itself (tile sweeps / node-pair
	// expansion).
	PhaseSweep
	// PhaseMerge is result assembly (concatenation or the sorted k-way
	// merge) on the owner goroutine.
	PhaseMerge

	// NumPhases bounds the phase enumeration (PhaseNS array sizing).
	NumPhases
)

// PhaseNames maps wall-join phases to their display/export names.
var PhaseNames = [NumPhases]string{
	"prep", "sort", "partition", "fill", "refine", "sweep", "merge",
}

// PhaseName returns the display name of phase p ("?" when out of range).
func PhaseName(p int) string {
	if p >= 0 && p < len(PhaseNames) {
		return PhaseNames[p]
	}
	return "?"
}

// Span is one recorded interval. Times are the recorder's clock —
// virtual milliseconds in the simulator, wall milliseconds since join
// start in the native executor.
type Span struct {
	Kind       sim.SpanKind
	Start, End sim.Time
	Args       sim.SpanArgs
}

// Duration returns End-Start.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Flow is a causal edge between tracks: work recorded on track From at
// time At arrived at the owning (destination) track at time ToAt. Flows
// link a reassigned task's old and new owner in the Perfetto export.
type Flow struct {
	From     int
	At, ToAt sim.Time
}

// Track is one timeline row: a processor or a disk. Spans are appended in
// start order by a single writer; Flows are edges terminating here.
type Track struct {
	Name  string
	Spans []Span
	Flows []Flow
	open  []int32 // stack of open span indices (BeginSpan/EndSpan nesting)
}

// Recorder accumulates the spans of one run. Create with NewRecorder (sim,
// virtual time) or NewWallRecorder (native executor, wall time); a nil
// *Recorder must never be installed as a sim.Tracer — drivers guard with
// `if rec != nil` before SetTracer, mirroring the metrics sinks.
type Recorder struct {
	unit  string // "virtual" or "wall"
	procs []Track
	disks []Track
}

// NewRecorder returns a virtual-time recorder with one track per simulated
// processor and one per disk.
func NewRecorder(procs, disks int) *Recorder {
	r := &Recorder{unit: "virtual", procs: make([]Track, procs), disks: make([]Track, disks)}
	for i := range r.procs {
		r.procs[i].Name = fmt.Sprintf("P%d", i)
	}
	for i := range r.disks {
		r.disks[i].Name = fmt.Sprintf("disk%d", i)
	}
	return r
}

// NewWallRecorder returns a wall-clock recorder with one track per native
// worker (no disk tracks — the native executor joins in-memory trees).
func NewWallRecorder(workers int) *Recorder {
	r := &Recorder{unit: "wall", procs: make([]Track, workers)}
	for i := range r.procs {
		r.procs[i].Name = fmt.Sprintf("W%d", i)
	}
	return r
}

// Unit returns the clock the spans are keyed to: "virtual" or "wall".
func (r *Recorder) Unit() string { return r.unit }

// Procs returns the processor/worker tracks.
func (r *Recorder) Procs() []Track { return r.procs }

// Disks returns the disk tracks.
func (r *Recorder) Disks() []Track { return r.disks }

// SpanCount returns the total number of recorded spans across all tracks.
func (r *Recorder) SpanCount() int {
	n := 0
	for i := range r.procs {
		n += len(r.procs[i].Spans)
	}
	for i := range r.disks {
		n += len(r.disks[i].Spans)
	}
	return n
}

// BeginSpan implements sim.Tracer.
func (r *Recorder) BeginSpan(proc int, at sim.Time, kind sim.SpanKind, args sim.SpanArgs) {
	t := &r.procs[proc]
	t.open = append(t.open, int32(len(t.Spans)))
	t.Spans = append(t.Spans, Span{Kind: kind, Start: at, End: at, Args: args})
}

// EndSpan implements sim.Tracer.
func (r *Recorder) EndSpan(proc int, at sim.Time, args sim.SpanArgs, setArgs bool) {
	t := &r.procs[proc]
	n := len(t.open)
	if n == 0 {
		panic(fmt.Sprintf("timeline: EndSpan on %s without open span", t.Name))
	}
	s := &t.Spans[t.open[n-1]]
	t.open = t.open[:n-1]
	s.End = at
	if setArgs {
		s.Args = args
	}
}

// ProcSpan implements sim.Tracer.
func (r *Recorder) ProcSpan(proc int, start, end sim.Time, kind sim.SpanKind, args sim.SpanArgs) {
	t := &r.procs[proc]
	t.Spans = append(t.Spans, Span{Kind: kind, Start: start, End: end, Args: args})
}

// ResourceSpan implements sim.Tracer.
func (r *Recorder) ResourceSpan(res int, start, end sim.Time, kind sim.SpanKind, args sim.SpanArgs) {
	t := &r.disks[res]
	t.Spans = append(t.Spans, Span{Kind: kind, Start: start, End: end, Args: args})
}

// AddFlow records a causal edge: work left track from at time at and
// arrived at track to (at the same instant in the simulator). The edge is
// stored on the destination track, so concurrent native thieves each write
// only their own track.
func (r *Recorder) AddFlow(to, from int, at sim.Time) {
	r.procs[to].Flows = append(r.procs[to].Flows, Flow{From: from, At: at, ToAt: at})
}

// Complete records a finished span on track proc — the native executor's
// entry point, where workers stamp wall-clock times themselves.
func (r *Recorder) Complete(proc int, start, end sim.Time, kind sim.SpanKind, args sim.SpanArgs) {
	r.ProcSpan(proc, start, end, kind, args)
}

// CloseOpen force-closes any dangling BeginSpan at time at (defensive;
// a well-formed run leaves no span open).
func (r *Recorder) CloseOpen(at sim.Time) {
	for i := range r.procs {
		t := &r.procs[i]
		for _, idx := range t.open {
			t.Spans[idx].End = at
		}
		t.open = t.open[:0]
	}
}

// MaxEnd returns the latest span end across all tracks (the wall "response
// time" of a native run; equals the simulated response time for a
// simulated run's busy spans).
func (r *Recorder) MaxEnd() sim.Time {
	var max sim.Time
	for _, tracks := range [][]Track{r.procs, r.disks} {
		for i := range tracks {
			for _, s := range tracks[i].Spans {
				if s.End > max {
					max = s.End
				}
			}
		}
	}
	return max
}

// KindTotals returns the summed span duration per kind across all
// processor and disk tracks. The run store flattens these into
// "timeline.<kind>_ms" metrics, so a run-store diff localizes a
// regression to the span kind (disk-wait, cpu-sweep, ...) that grew.
func (r *Recorder) KindTotals() [NumKinds]sim.Time {
	var totals [NumKinds]sim.Time
	for _, tracks := range [][]Track{r.procs, r.disks} {
		for i := range tracks {
			for _, s := range tracks[i].Spans {
				if int(s.Kind) < len(totals) {
					totals[s.Kind] += s.Duration()
				}
			}
		}
	}
	return totals
}

// Digest returns a SHA-256 hex digest over the canonical serialization of
// every span and flow. Two identical runs of the deterministic simulator
// produce equal digests; the golden-timeline test pins the seed workload's.
func (r *Recorder) Digest() string {
	h := sha256.New()
	var buf []byte
	appendTime := func(t sim.Time) {
		buf = strconv.AppendFloat(buf, float64(t), 'g', -1, 64)
		buf = append(buf, '|')
	}
	appendInt := func(v int64) {
		buf = strconv.AppendInt(buf, v, 10)
		buf = append(buf, '|')
	}
	for _, tracks := range [][]Track{r.procs, r.disks} {
		for i := range tracks {
			t := &tracks[i]
			buf = append(buf[:0], t.Name...)
			buf = append(buf, '\n')
			h.Write(buf)
			for _, s := range t.Spans {
				buf = buf[:0]
				appendInt(int64(s.Kind))
				appendTime(s.Start)
				appendTime(s.End)
				appendInt(s.Args.A)
				appendInt(s.Args.B)
				appendInt(s.Args.C)
				appendInt(s.Args.D)
				buf = append(buf, '\n')
				h.Write(buf)
			}
			for _, f := range t.Flows {
				buf = append(buf[:0], 'f', '|')
				appendInt(int64(f.From))
				appendTime(f.At)
				appendTime(f.ToAt)
				buf = append(buf, '\n')
				h.Write(buf)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeString is a small io helper that funnels the exporter's errors.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) write(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}
