package timeline

import (
	"fmt"
	"io"
	"sort"

	"spjoin/internal/sim"
	"spjoin/internal/stats"
)

// Critical-path and load-balance analysis over a recorded timeline.
//
// The response time of a parallel join is the finish time of the last
// processor (§4's "response time"). Walking that processor's track
// backwards attributes every moment of the response time to a span kind;
// whenever the walk reaches a queue-idle span, the blocking edge is
// followed to the processor that produced the work that ended the wait
// (the recorded waker), and the walk continues on that track — so time an
// idle processor spent waiting is charged to whatever the producer was
// doing meanwhile (typically disk-wait or cpu-sweep), which is exactly the
// sense in which that work was on the critical path. Moments covered by no
// span are reported as "untracked"; the attribution always sums to the
// response time.

// KindShare is one row of the critical-path attribution.
type KindShare struct {
	Kind  string
	Time  sim.Time
	Share float64 // fraction of the response time
}

// TrackUtil is the utilization summary of one processor or disk track.
type TrackUtil struct {
	Name string
	// Busy is the summed duration of non-idle spans.
	Busy sim.Time
	// BusyFrac is Busy / response time.
	BusyFrac float64
	// IdleTail is the span between the track's last non-idle activity and
	// the response time — the §3.3 "processors finishing early" tail that
	// task reassignment shrinks.
	IdleTail sim.Time
}

// Report is the analyzer's result.
type Report struct {
	// Unit is the recorder's clock ("virtual" or "wall").
	Unit string
	// Response is the analyzed response time (ms).
	Response sim.Time
	// LastFinisher is the track the critical-path walk started on.
	LastFinisher string
	// Attribution has one entry per span kind on the critical path (zero
	// rows omitted) plus an "untracked" row; it sums to Response.
	Attribution []KindShare
	// PathJumps counts blocking edges followed between tracks.
	PathJumps int
	// Procs and Disks summarize per-track utilization.
	Procs []TrackUtil
	Disks []TrackUtil
	// MaxMeanRatio is max/mean processor busy time — the load-balance skew
	// (1.0 = perfectly balanced).
	MaxMeanRatio float64
}

// Analyze walks the recorded timeline and produces the critical-path
// attribution and the utilization/skew report. response is the run's
// response time; pass rec.MaxEnd() when no simulator Result is at hand.
func Analyze(rec *Recorder, response sim.Time) *Report {
	rep := &Report{Unit: rec.Unit(), Response: response}

	procs := rec.Procs()
	last := lastFinisher(procs)
	if last >= 0 {
		rep.LastFinisher = procs[last].Name
		byKind, untracked, jumps := criticalPath(procs, last, response)
		rep.PathJumps = jumps
		for k := sim.SpanKind(0); k < NumKinds; k++ {
			if byKind[k] > 0 {
				rep.Attribution = append(rep.Attribution, share(KindNames[k], byKind[k], response))
			}
		}
		rep.Attribution = append(rep.Attribution, share("untracked", untracked, response))
		sort.SliceStable(rep.Attribution, func(i, j int) bool {
			return rep.Attribution[i].Time > rep.Attribution[j].Time
		})
	}

	var sumBusy, maxBusy sim.Time
	for i := range procs {
		u := trackUtil(&procs[i], response)
		rep.Procs = append(rep.Procs, u)
		sumBusy += u.Busy
		if u.Busy > maxBusy {
			maxBusy = u.Busy
		}
	}
	if len(procs) > 0 && sumBusy > 0 {
		rep.MaxMeanRatio = float64(maxBusy) / (float64(sumBusy) / float64(len(procs)))
	}
	disks := rec.Disks()
	for i := range disks {
		rep.Disks = append(rep.Disks, trackUtil(&disks[i], response))
	}
	return rep
}

func share(kind string, t, response sim.Time) KindShare {
	s := KindShare{Kind: kind, Time: t}
	if response > 0 {
		s.Share = float64(t) / float64(response)
	}
	return s
}

// lastFinisher returns the track whose last non-idle span ends latest
// (ties go to the lowest index, matching the deterministic simulator), or
// -1 when nothing was recorded.
func lastFinisher(procs []Track) int {
	best, bestEnd := -1, sim.Time(-1)
	for i := range procs {
		for j := len(procs[i].Spans) - 1; j >= 0; j-- {
			s := procs[i].Spans[j]
			if s.Kind == KindQueueIdle {
				continue
			}
			if s.End > bestEnd {
				best, bestEnd = i, s.End
			}
			break
		}
	}
	return best
}

// criticalPath walks backwards from (procs[start], response) and attributes
// each moment to a span kind, following queue-idle spans' waker edges.
func criticalPath(procs []Track, start int, response sim.Time) (byKind [NumKinds]sim.Time, untracked sim.Time, jumps int) {
	const eps = 1e-9
	cur := start
	t := response
	// guard bounds the walk: each non-jump step consumes time, and jumps
	// are bounded by the number of recorded spans in any sane timeline.
	guard := 0
	maxSteps := 16
	for i := range procs {
		maxSteps += 2 * len(procs[i].Spans)
	}
	for t > eps {
		guard++
		if guard > maxSteps {
			// Defensive: a waker cycle would livelock the walk; charge the
			// remainder to queue-idle and stop.
			byKind[KindQueueIdle] += t
			return byKind, untracked, jumps
		}
		s, ok := spanBefore(&procs[cur], t)
		if !ok {
			untracked += t
			return byKind, untracked, jumps
		}
		if s.End < t-eps {
			untracked += t - s.End
			t = s.End
			continue
		}
		if s.Kind == KindQueueIdle {
			waker := int(s.Args.A)
			if waker >= 0 && waker < len(procs) && waker != cur {
				// Blocking edge: the waker's activity up to t explains the
				// wait; continue there without consuming time.
				cur = waker
				jumps++
				continue
			}
			// Unknown waker (initial idle, final broadcast): charge the
			// idle itself.
		}
		dur := t - s.Start
		if dur < 0 {
			dur = 0
		}
		byKind[s.Kind] += dur
		t = s.Start
	}
	return byKind, untracked, jumps
}

// spanBefore returns the latest span on tr that starts strictly before t.
func spanBefore(tr *Track, t sim.Time) (Span, bool) {
	spans := tr.Spans
	// Spans are appended in start order; binary-search the first span with
	// Start >= t, the answer is its predecessor.
	lo, hi := 0, len(spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if spans[mid].Start < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Span{}, false
	}
	return spans[lo-1], true
}

// trackUtil computes one track's utilization summary.
func trackUtil(tr *Track, response sim.Time) TrackUtil {
	u := TrackUtil{Name: tr.Name}
	var lastBusy sim.Time
	for _, s := range tr.Spans {
		if s.Kind == KindQueueIdle {
			continue
		}
		u.Busy += s.Duration()
		if s.End > lastBusy {
			lastBusy = s.End
		}
	}
	if response > 0 {
		u.BusyFrac = float64(u.Busy) / float64(response)
		if tail := response - lastBusy; tail > 0 {
			u.IdleTail = tail
		}
	}
	return u
}

// Render prints the report as aligned tables plus the compact
// "critical-path:" line scripts/timeline_diff.sh compares.
func (r *Report) Render(w io.Writer) {
	clock := "virtual"
	if r.Unit == "wall" {
		clock = "wall"
	}
	t := stats.NewTable(
		fmt.Sprintf("Critical path (%s response %.3f s, last finisher %s, %d blocking edges)",
			clock, r.Response.Seconds(), r.LastFinisher, r.PathJumps),
		"kind", "time [ms]", "share")
	for _, a := range r.Attribution {
		t.AddRow(a.Kind, fmt.Sprintf("%.3f", float64(a.Time)), fmt.Sprintf("%.1f%%", a.Share*100))
	}
	t.Render(w)

	u := stats.NewTable(
		fmt.Sprintf("Per-processor utilization (max/mean load ratio %.3f)", r.MaxMeanRatio),
		"track", "busy [ms]", "busy", "idle tail [ms]")
	for _, p := range r.Procs {
		u.AddRow(p.Name, fmt.Sprintf("%.3f", float64(p.Busy)),
			fmt.Sprintf("%.1f%%", p.BusyFrac*100), fmt.Sprintf("%.3f", float64(p.IdleTail)))
	}
	u.Render(w)

	if len(r.Disks) > 0 {
		d := stats.NewTable("Per-disk utilization", "track", "busy [ms]", "busy")
		for _, p := range r.Disks {
			d.AddRow(p.Name, fmt.Sprintf("%.3f", float64(p.Busy)), fmt.Sprintf("%.1f%%", p.BusyFrac*100))
		}
		d.Render(w)
	}

	fmt.Fprintln(w, r.AttributionLine())
}

// AttributionLine returns the one-line machine-readable attribution,
// e.g. "critical-path: disk-wait=62.0% cpu-sweep=20.1% ... untracked=0.0%".
// scripts/timeline_diff.sh diffs this line against a committed snapshot.
func (r *Report) AttributionLine() string {
	line := "critical-path:"
	for _, a := range r.Attribution {
		line += fmt.Sprintf(" %s=%.1f%%", a.Kind, a.Share*100)
	}
	return line
}

// AttributionSum returns the summed attribution (which Analyze guarantees
// equals the response time; the golden tests assert it).
func (r *Report) AttributionSum() sim.Time {
	var sum sim.Time
	for _, a := range r.Attribution {
		sum += a.Time
	}
	return sum
}
