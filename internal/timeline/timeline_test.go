package timeline

import (
	"bytes"
	"strings"
	"testing"

	"spjoin/internal/sim"
)

// buildSample fills a 2-processor, 1-disk recorder with a small but
// representative timeline: P0 works the whole run, P1 idles waiting on P0,
// then finishes last after a reassignment.
//
//	P0: [0,10 cpu-sweep] [10,26 disk-wait]            [26,30 cpu-sweep]
//	P1: [0,26 queue-idle waker=0] [26,27 reassign] [27,40 cpu-sweep]
//	disk0: [10,26 disk-service]
func buildSample() *Recorder {
	r := NewRecorder(2, 1)
	r.ProcSpan(0, 0, 10, KindCPUSweep, sim.SpanArgs{A: 1, B: 2, C: 1, D: 50})
	r.ProcSpan(0, 10, 26, KindDiskWait, sim.SpanArgs{A: 3, B: 0, C: 0})
	r.ProcSpan(0, 26, 30, KindCPUSweep, sim.SpanArgs{A: 4, B: 5, C: 0, D: 20})
	r.ProcSpan(1, 0, 26, KindQueueIdle, sim.SpanArgs{A: 0})
	r.ProcSpan(1, 26, 27, KindReassign, sim.SpanArgs{A: 0, B: 2, C: 1, D: 2})
	r.ProcSpan(1, 27, 40, KindCPUSweep, sim.SpanArgs{A: 6, B: 7, C: 0, D: 30})
	r.ResourceSpan(0, 10, 26, KindDiskService, sim.SpanArgs{A: 3, B: 0, C: 0})
	r.AddFlow(1, 0, 26)
	return r
}

func TestBeginEndNesting(t *testing.T) {
	r := NewRecorder(1, 0)
	r.BeginSpan(0, 0, KindCPUSweep, sim.SpanArgs{A: 1})
	r.BeginSpan(0, 2, KindDiskWait, sim.SpanArgs{A: 2})
	r.EndSpan(0, 5, sim.SpanArgs{}, false)
	r.EndSpan(0, 9, sim.SpanArgs{A: 99}, true)
	spans := r.Procs()[0].Spans
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Spans are stored in begin order; the outer one closed last.
	outer, inner := spans[0], spans[1]
	if outer.Kind != KindCPUSweep || outer.Start != 0 || outer.End != 9 || outer.Args.A != 99 {
		t.Errorf("outer span %+v wrong (want cpu-sweep [0,9] args.A=99 via setArgs)", outer)
	}
	if inner.Kind != KindDiskWait || inner.Start != 2 || inner.End != 5 || inner.Args.A != 2 {
		t.Errorf("inner span %+v wrong (want disk-wait [2,5] args.A=2 kept)", inner)
	}
}

func TestEndSpanWithoutOpenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EndSpan with no open span must panic")
		}
	}()
	NewRecorder(1, 0).EndSpan(0, 1, sim.SpanArgs{}, false)
}

func TestCloseOpenAndMaxEnd(t *testing.T) {
	r := NewRecorder(1, 0)
	r.BeginSpan(0, 3, KindQueueIdle, sim.SpanArgs{A: -1})
	r.CloseOpen(8)
	s := r.Procs()[0].Spans[0]
	if s.End != 8 {
		t.Fatalf("dangling span end %v, want 8", s.End)
	}
	if got := r.MaxEnd(); got != 8 {
		t.Fatalf("MaxEnd %v, want 8", got)
	}
}

func TestDigestDeterministicAndSensitive(t *testing.T) {
	a, b := buildSample(), buildSample()
	if a.Digest() != b.Digest() {
		t.Fatal("identical recorders produced different digests")
	}
	b.ProcSpan(1, 40, 41, KindCPUSweep, sim.SpanArgs{})
	if a.Digest() == b.Digest() {
		t.Fatal("digest ignored an extra span")
	}
}

func TestKindTotals(t *testing.T) {
	totals := buildSample().KindTotals()
	want := map[sim.SpanKind]sim.Time{
		KindCPUSweep:    10 + 4 + 13,
		KindDiskWait:    16,
		KindQueueIdle:   26,
		KindReassign:    1,
		KindDiskService: 16,
	}
	for k, wantT := range want {
		if totals[k] != wantT {
			t.Errorf("KindTotals[%s] = %v, want %v", KindName(k), totals[k], wantT)
		}
	}
	if totals[KindRefineWait] != 0 || totals[KindLocalBuffer] != 0 {
		t.Errorf("unobserved kinds must total 0: %v", totals)
	}
}

func TestPerfettoExportValidatesAndIsDeterministic(t *testing.T) {
	r := buildSample()
	var buf1, buf2 bytes.Buffer
	if err := r.WritePerfetto(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePerfetto(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two exports of the same recorder differ")
	}
	if err := ValidateTraceEvents(buf1.Bytes()); err != nil {
		t.Fatalf("export fails own validation: %v", err)
	}
	out := buf1.String()
	for _, want := range []string{
		`"name":"P0"`, `"name":"P1"`, `"name":"disk0"`,
		`"name":"cpu-sweep"`, `"name":"disk-service"`,
		`"ph":"s"`, `"ph":"f"`, // the reassignment flow pair
		`"comparisons":50`, `"waker":0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export lacks %s", want)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"no array":      `{"displayTimeUnit":"ms"}`,
		"unnamed":       `{"traceEvents":[{"ph":"X","pid":0,"tid":0,"ts":1,"dur":1}]}`,
		"no pid":        `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":1}]}`,
		"no ts":         `{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0}]}`,
		"negative dur":  `{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0,"ts":1,"dur":-1}]}`,
		"flow no id":    `{"traceEvents":[{"name":"x","ph":"s","pid":0,"tid":0,"ts":1}]}`,
		"meta no args":  `{"traceEvents":[{"name":"x","ph":"M","pid":0,"tid":0}]}`,
		"unknown phase": `{"traceEvents":[{"name":"x","ph":"Z","pid":0,"tid":0}]}`,
	}
	for name, data := range cases {
		if err := ValidateTraceEvents([]byte(data)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	ok := `{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0,"ts":1,"dur":1,"args":{}}]}`
	if err := ValidateTraceEvents([]byte(ok)); err != nil {
		t.Errorf("minimal valid trace rejected: %v", err)
	}
}

func TestAnalyzeAttributionSumsToResponse(t *testing.T) {
	r := buildSample()
	const response = 40.0
	rep := Analyze(r, response)
	if got := float64(rep.AttributionSum()); got != response {
		t.Fatalf("attribution sums to %v, want %v", got, response)
	}
	if rep.LastFinisher != "P1" {
		t.Errorf("last finisher %s, want P1", rep.LastFinisher)
	}
	// The walk runs back P1's cpu-sweep and reassign, then follows the
	// queue-idle span's waker edge to P0 — one jump, and P1's 26 ms wait
	// shows up as P0's disk-wait + cpu-sweep instead of idle time.
	if rep.PathJumps != 1 {
		t.Errorf("path jumps %d, want 1", rep.PathJumps)
	}
	byKind := map[string]float64{}
	for _, a := range rep.Attribution {
		byKind[a.Kind] = float64(a.Time)
	}
	want := map[string]float64{
		"cpu-sweep": 13 + 4 + 6, // P1 [27,40] + P0 [26,30] + P0 tail of [0,10] after the jump
		"reassign":  1,
		"disk-wait": 16,
		"untracked": 0,
	}
	for kind, w := range want {
		if byKind[kind] != w {
			t.Errorf("attribution[%s] = %v, want %v (full: %v)", kind, byKind[kind], w, byKind)
		}
	}
	if byKind["queue-idle"] != 0 {
		t.Errorf("queue-idle charged %v on the critical path despite a known waker", byKind["queue-idle"])
	}
}

func TestAnalyzeUntrackedGap(t *testing.T) {
	r := NewRecorder(1, 0)
	r.ProcSpan(0, 0, 4, KindCPUSweep, sim.SpanArgs{})
	r.ProcSpan(0, 9, 12, KindCPUSweep, sim.SpanArgs{})
	rep := Analyze(r, 12)
	var untracked float64
	for _, a := range rep.Attribution {
		if a.Kind == "untracked" {
			untracked = float64(a.Time)
		}
	}
	if untracked != 5 {
		t.Fatalf("untracked %v, want the [4,9] gap = 5", untracked)
	}
	if got := float64(rep.AttributionSum()); got != 12 {
		t.Fatalf("attribution sums to %v, want 12", got)
	}
}

func TestAnalyzeUtilizationAndSkew(t *testing.T) {
	r := buildSample()
	rep := Analyze(r, 40)
	if len(rep.Procs) != 2 || len(rep.Disks) != 1 {
		t.Fatalf("got %d proc / %d disk utils", len(rep.Procs), len(rep.Disks))
	}
	// P0 busy 30 (all spans), P1 busy 14 (idle span excluded).
	if got := float64(rep.Procs[0].Busy); got != 30 {
		t.Errorf("P0 busy %v, want 30", got)
	}
	if got := float64(rep.Procs[1].Busy); got != 14 {
		t.Errorf("P1 busy %v, want 14", got)
	}
	if got := float64(rep.Procs[0].IdleTail); got != 10 {
		t.Errorf("P0 idle tail %v, want 10 (busy until 30, response 40)", got)
	}
	wantRatio := 30.0 / 22.0
	if got := rep.MaxMeanRatio; got < wantRatio-1e-9 || got > wantRatio+1e-9 {
		t.Errorf("max/mean ratio %v, want %v", got, wantRatio)
	}
	if got := float64(rep.Disks[0].Busy); got != 16 {
		t.Errorf("disk0 busy %v, want 16", got)
	}
}

func TestRenderAndAttributionLine(t *testing.T) {
	rep := Analyze(buildSample(), 40)
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Critical path", "Per-processor utilization", "Per-disk utilization", "critical-path:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
	line := rep.AttributionLine()
	if !strings.HasPrefix(line, "critical-path:") || !strings.Contains(line, "cpu-sweep=") {
		t.Errorf("attribution line malformed: %s", line)
	}
}

// TestWallRecorder covers the native executor's shape: no disk tracks, W
// names, Complete as the entry point.
func TestWallRecorder(t *testing.T) {
	r := NewWallRecorder(2)
	if r.Unit() != "wall" || len(r.Disks()) != 0 {
		t.Fatalf("wall recorder shape wrong: unit=%s disks=%d", r.Unit(), len(r.Disks()))
	}
	r.Complete(1, 0, 2, KindCPUSweep, sim.SpanArgs{D: 5})
	if r.Procs()[1].Name != "W1" || r.SpanCount() != 1 {
		t.Fatalf("complete span not recorded on W1")
	}
	var buf bytes.Buffer
	if err := r.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceEvents(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "native workers (wall time)") {
		t.Error("wall export lacks the native process label")
	}
}

// TestPhaseSpansExport pins the wall-only KindPhase spans: the Perfetto
// export names each slice "phase:<name>" after its arg, the trace passes
// the schema check, and the simulator-facing NumSimKinds boundary excludes
// the kind from the run store's flattened metric set.
func TestPhaseSpansExport(t *testing.T) {
	r := NewWallRecorder(2)
	r.BeginSpan(0, 0, KindPhase, sim.SpanArgs{A: PhasePrep})
	r.EndSpan(0, 2, sim.SpanArgs{}, false)
	r.ProcSpan(0, 2, 9, KindPhase, sim.SpanArgs{A: PhaseSweep})
	r.ProcSpan(0, 3, 8, KindCPUSweep, sim.SpanArgs{A: 1, B: 2})
	r.ProcSpan(1, 2, 10, KindPhase, sim.SpanArgs{A: PhaseSweep})

	var buf bytes.Buffer
	if err := r.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceEvents(buf.Bytes()); err != nil {
		t.Fatalf("phase trace fails validation: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"phase:prep"`, `"phase:sweep"`, `"cpu-sweep"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export lacks %s", want)
		}
	}
	if strings.Contains(out, `"phase:?"`) {
		t.Error("export contains an unnamed phase")
	}

	if NumSimKinds != KindPhase {
		t.Fatalf("NumSimKinds = %d no longer excludes exactly the wall-only kinds", NumSimKinds)
	}
	if got := KindName(KindPhase); got != "phase" {
		t.Fatalf("KindName(KindPhase) = %q", got)
	}
	if got := PhaseName(NumPhases); got != "?" {
		t.Fatalf("PhaseName out of range = %q", got)
	}
}
