package plan_test

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"spjoin/internal/geom"
	"spjoin/internal/parnative"
	"spjoin/internal/partjoin"
	"spjoin/internal/plan"
	"spjoin/internal/rtree"
	"spjoin/internal/tiger"
)

var update = flag.Bool("update", false, "rewrite testdata/decisions.json from the current planner")

// corpus is the committed planner workload set: every regime the decision
// rules distinguish, generated deterministically so the golden file is
// stable. The same set feeds the ≤1.5×-of-best regression test.
func corpus() []struct {
	name string
	r, s []rtree.Item
} {
	bigRects := func(n int, seed int64) []rtree.Item {
		// Rectangles spanning ~1/8 of the world: every one overlaps a
		// 2–3-tile block of the probe grid, the replication regime where
		// the grid engine drowns in duplicates.
		items := tiger.Uniform(n, 1, seed)
		for i := range items {
			items[i].Rect.MaxX = items[i].Rect.MinX + tiger.World/8
			items[i].Rect.MaxY = items[i].Rect.MinY + tiger.World/8
		}
		return items
	}
	return []struct {
		name string
		r, s []rtree.Item
	}{
		{"tiger-maps", nil, nil}, // filled below: tiger.Maps needs both at once
		{"uniform", tiger.Uniform(24000, 0.3, 1), tiger.Uniform(24000, 0.3, 2)},
		{"clustered-mild", tiger.GaussianClusters(24000, 8, 60, 0.3, 7, 1), tiger.GaussianClusters(24000, 8, 60, 0.3, 7, 2)},
		{"clustered-extreme", tiger.GaussianClusters(24000, 4, 2, 0.05, 41, 42), tiger.GaussianClusters(24000, 4, 2, 0.05, 41, 43)},
		{"diagonal", tiger.DiagonalLine(24000, 3, 0.3, 1), tiger.DiagonalLine(24000, 3, 0.3, 2)},
		{"big-rects", bigRects(3000, 5), bigRects(3000, 6)},
		{"tiny", tiger.Uniform(400, 0.5, 9), tiger.Uniform(400, 0.5, 10)},
	}
}

func fullCorpus() []struct {
	name string
	r, s []rtree.Item
} {
	c := corpus()
	c[0].r, c[0].s = tiger.Maps(0.05, 42)
	return c
}

// goldenEntry is one committed planner verdict: the (rounded) statistics
// Analyze measured and the Decision derived from them at maxWorkers=8.
type goldenEntry struct {
	Name    string  `json:"name"`
	NR      int     `json:"nr"`
	NS      int     `json:"ns"`
	Skew    float64 `json:"skew"`
	Rep     float64 `json:"rep"`
	Engine  string  `json:"engine"`
	Grid    int     `json:"grid"`
	Refine  int64   `json:"refine"`
	Workers int     `json:"workers"`
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func observe() []goldenEntry {
	var out []goldenEntry
	for _, c := range fullCorpus() {
		st := plan.Analyze(c.r, c.s)
		d := plan.Decide(st, 8)
		out = append(out, goldenEntry{
			Name: c.name, NR: st.NR, NS: st.NS,
			Skew: round3(st.Skew), Rep: round3(st.Rep),
			Engine: d.Engine.String(), Grid: d.Grid,
			Refine: d.RefineThreshold, Workers: d.Workers,
		})
	}
	return out
}

// TestGoldenDecisions pins the planner end to end: input statistics and
// the derived plan for every corpus workload, committed in
// testdata/decisions.json. Run with -update after a deliberate tuning
// change and review the diff — an unreviewed drift here is a planner
// regression.
func TestGoldenDecisions(t *testing.T) {
	got := observe()
	path := filepath.Join("testdata", "decisions.json")
	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", path, len(got))
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d entries, corpus has %d (re-run with -update)", len(want), len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s:\n  got  %+v\n  want %+v", got[i].Name, got[i], want[i])
		}
	}
}

// TestDecideRules pins the individual decision rules against synthetic
// statistics, independent of the generators.
func TestDecideRules(t *testing.T) {
	cases := []struct {
		name string
		st   plan.Stats
		max  int
		want plan.Decision
	}{
		{
			"uniform-large",
			plan.Stats{NR: 50000, NS: 50000, Skew: 1.3, Rep: 1.1, Probe: 16},
			8,
			plan.Decision{Engine: plan.EnginePartition, Grid: partjoin.AutoGrid(100000, 6), RefineThreshold: partjoin.RefineDisabled, Workers: 6},
		},
		{
			"skewed-large",
			plan.Stats{NR: 50000, NS: 50000, Skew: 20, Rep: 1.1, Probe: 16},
			8,
			plan.Decision{Engine: plan.EnginePartition, Grid: partjoin.AutoGridSkewed(100000, 6, 20), RefineThreshold: 0, Workers: 6},
		},
		{
			"replicated",
			plan.Stats{NR: 50000, NS: 50000, Skew: 1.5, Rep: 9, Probe: 16},
			8,
			plan.Decision{Engine: plan.EngineTree, Workers: 6},
		},
		{
			"tiny",
			plan.Stats{NR: 300, NS: 300, Skew: 1.2, Rep: 1.0, Probe: 16},
			8,
			plan.Decision{Engine: plan.EnginePartition, Grid: partjoin.AutoGrid(600, 1), RefineThreshold: partjoin.RefineDisabled, Workers: 1},
		},
		{
			"zero-workers-clamped",
			plan.Stats{NR: 50000, NS: 50000, Skew: 1.3, Rep: 1.1, Probe: 16},
			0,
			plan.Decision{Engine: plan.EnginePartition, Grid: partjoin.AutoGrid(100000, 1), RefineThreshold: partjoin.RefineDisabled, Workers: 1},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := plan.Decide(c.st, c.max); got != c.want {
				t.Errorf("Decide(%+v, %d) = %+v, want %+v", c.st, c.max, got, c.want)
			}
		})
	}
}

// TestAnalyzeDegenerate checks Analyze survives the inputs that would
// poison the statistics: empty sides, NaN rectangles, inverted extents,
// and a zero-extent world (all rectangles identical points).
func TestAnalyzeDegenerate(t *testing.T) {
	if st := plan.Analyze(nil, nil); st.Skew != 1 || st.Rep != 1 {
		t.Errorf("empty input: %+v, want neutral skew/rep", st)
	}
	nan := math.NaN()
	bad := []rtree.Item{
		{ID: 0, Rect: geom.NewRect(nan, nan, nan, nan)},
		{ID: 1, Rect: geom.Rect{MinX: 5, MinY: 5, MaxX: 1, MaxY: 1}},
	}
	if st := plan.Analyze(bad, nil); st.Skew != 1 || st.Rep != 1 {
		t.Errorf("all-invalid input: %+v, want neutral skew/rep", st)
	}
	pt := geom.NewRect(7, 7, 7, 7)
	same := []rtree.Item{{ID: 0, Rect: pt}, {ID: 1, Rect: pt}}
	st := plan.Analyze(same, same)
	if math.IsNaN(st.Skew) || math.IsNaN(st.Rep) {
		t.Errorf("zero-extent world produced NaN stats: %+v", st)
	}
	mixed := append([]rtree.Item{}, bad...)
	mixed = append(mixed, tiger.Uniform(1000, 0.5, 1)...)
	st = plan.Analyze(mixed, tiger.Uniform(1000, 0.5, 2))
	if st.Rep < 1 || math.IsNaN(st.Skew) {
		t.Errorf("mixed valid/invalid input produced bad stats: %+v", st)
	}
}

// execDecision runs a plan the way cmd/spjoin -engine=auto does, so the
// regression test times the real dispatch surface.
func execDecision(d plan.Decision, r, s []rtree.Item) {
	switch d.Engine {
	case plan.EngineTree:
		rt := rtree.BulkLoadSTR(rtree.DefaultParams(), r, 0.73)
		st := rtree.BulkLoadSTR(rtree.DefaultParams(), s, 0.73)
		parnative.Join(rt, st, parnative.Config{Workers: d.Workers})
	default:
		partjoin.Join(r, s, partjoin.Config{
			Workers:         d.Workers,
			Grid:            d.Grid,
			RefineThreshold: d.RefineThreshold,
		})
	}
}

func medianOf3(f func()) time.Duration {
	var ts []time.Duration
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		f()
		ts = append(ts, time.Since(t0))
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts[1]
}

// TestAutoWithinFactorOfBest is the planner's contract: on every corpus
// workload, executing the auto plan is never more than 1.5× slower than
// the best fixed engine (partition with refinement off, partition with
// refinement auto, or the tree join including its build). The auto plan
// IS one of those configurations, so the test fails only when the planner
// picks a regime badly — timing noise cannot push a plan past 1.5× of
// itself under median-of-3.
func TestAutoWithinFactorOfBest(t *testing.T) {
	if testing.Short() {
		t.Skip("timing regression test; skipped in -short")
	}
	const maxWorkers = 4
	for _, c := range fullCorpus() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			fixed := []struct {
				name string
				d    plan.Decision
			}{
				{"partition", plan.Decision{Engine: plan.EnginePartition, RefineThreshold: partjoin.RefineDisabled, Workers: maxWorkers}},
				{"partition-refined", plan.Decision{Engine: plan.EnginePartition, RefineThreshold: 0, Workers: maxWorkers}},
				{"tree", plan.Decision{Engine: plan.EngineTree, Workers: maxWorkers}},
			}
			best := time.Duration(math.MaxInt64)
			bestName := ""
			for _, f := range fixed {
				f := f
				got := medianOf3(func() { execDecision(f.d, c.r, c.s) })
				if got < best {
					best, bestName = got, f.name
				}
			}
			d := plan.Decide(plan.Analyze(c.r, c.s), maxWorkers)
			auto := medianOf3(func() { execDecision(d, c.r, c.s) })
			limit := best + best/2
			t.Logf("auto(%v) %v vs best %s %v", d, auto, bestName, best)
			if auto > limit {
				t.Errorf("auto plan %v took %v, more than 1.5x the best fixed engine %s (%v)",
					d, auto, bestName, best)
			}
		})
	}
}

// TestAnalyzeSelectivity checks the §3.4 selectivity figure rides along in
// the planner statistics: in (0, 1] for a real workload, 0 for unusable
// input, never NaN.
func TestAnalyzeSelectivity(t *testing.T) {
	r, s := tiger.Maps(0.02, 42)
	st := plan.Analyze(r, s)
	if math.IsNaN(st.Selectivity) || st.Selectivity <= 0 || st.Selectivity > 1 {
		t.Errorf("selectivity %g, want in (0, 1]", st.Selectivity)
	}
	if est := st.Selectivity * float64(st.NR) * float64(st.NS); est < 1 {
		t.Errorf("expected pairs %g, want >= 1 on overlapping maps", est)
	}
	if st := plan.Analyze(nil, nil); st.Selectivity != 0 {
		t.Errorf("empty input selectivity %g, want 0", st.Selectivity)
	}
}
